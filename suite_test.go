package looppoint

import (
	"testing"

	"looppoint/internal/core"
	"looppoint/internal/timing"
	"looppoint/internal/workloads"
)

// TestEveryWorkloadEndToEnd pushes every registered workload — all 14
// SPEC app.inputs, all 9 NPB kernels, and the demos — through the
// complete pipeline (record, DCFG, profile, cluster, extract checkpoints,
// simulate regions, simulate full, extrapolate) at test scale, under both
// wait policies. It is the canary for workload-specific pipeline
// breakage before the expensive full-input benchmark runs.
func TestEveryWorkloadEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("suite sweep skipped in -short mode")
	}
	cfg := core.DefaultConfig()
	cfg.SliceUnit = 4000
	for _, spec := range workloads.All() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			t.Parallel()
			for _, policy := range []WaitPolicy{Passive, Active} {
				input := workloads.InputTest
				if spec.Suite == "npb" {
					input = workloads.ClassA
				}
				app, err := spec.Build(workloads.BuildParams{Input: input, Policy: policy})
				if err != nil {
					t.Fatalf("%v: build: %v", policy, err)
				}
				rep, err := core.Run(app.Prog, cfg, timing.Gainestown(app.Prog.NumThreads()),
					core.RunOpts{SimulateFull: true, Parallel: true})
				if err != nil {
					t.Fatalf("%v: run: %v", policy, err)
				}
				if rep.RuntimeErrPct > 35 {
					t.Errorf("%v: runtime error %.2f%% implausibly high at test scale (%s)",
						policy, rep.RuntimeErrPct, rep.Summary())
				}
				if len(rep.Selection.Points) == 0 {
					t.Errorf("%v: no looppoints", policy)
				}
			}
		})
	}
}
