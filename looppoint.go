// Package looppoint is the public entry point of this repository's
// from-scratch Go reproduction of
//
//	Sabu, Patil, Heirman, Carlson.
//	"LoopPoint: Checkpoint-driven Sampled Simulation for Multi-threaded
//	Applications." HPCA 2022.
//
// LoopPoint reduces a long-running multi-threaded application to a small
// set of representative regions ("looppoints") that can be simulated in
// parallel and extrapolated to whole-program performance — independent of
// the synchronization primitives the application uses. The methodology:
//
//  1. Record the application once as a pinball (a deterministic,
//     replayable user-level checkpoint) under a flow-controlled scheduler
//     so every thread makes equal forward progress.
//  2. Replay it to build a dynamic control-flow graph, identify loops by
//     dominator analysis, and choose stable worker-loop headers in the
//     main binary as region markers.
//  3. Replay it again to collect per-thread basic-block vectors, slicing
//     at loop entries after every N×SliceUnit filtered instructions
//     (synchronization-library code executes but is never counted).
//     Region boundaries are (PC, count) pairs, valid even under
//     spin-loops.
//  4. Concatenate per-thread BBVs, project to 100 dimensions, cluster
//     with k-means + BIC (maxK = 50), and pick the region nearest each
//     centroid as a looppoint with an Equation-2 work multiplier.
//  5. Simulate each looppoint (unconstrained, with warmup) on the timing
//     model and reconstruct whole-program metrics with Equation 1.
//
// The repository also implements every substrate the paper depends on —
// a mini-ISA with an OpenMP-like runtime, pinball record/replay, a
// Sniper-like multicore timing simulator — plus the baselines it compares
// against (BarrierPoint, naive multi-threaded SimPoint, time-based
// sampling) and a harness regenerating each figure and table of the
// evaluation. See DESIGN.md for the full inventory.
//
// Quick start:
//
//	w, _ := looppoint.BuildWorkload("demo-matrix-1", looppoint.WorkloadOptions{})
//	rep, _ := looppoint.Evaluate(w, looppoint.DefaultConfig(), looppoint.EvalOptions{CompareFull: true})
//	fmt.Println(rep.Summary())
package looppoint

import (
	"fmt"
	"os"
	"path/filepath"

	"looppoint/internal/core"
	"looppoint/internal/harness"
	"looppoint/internal/omp"
	"looppoint/internal/pinball"
	"looppoint/internal/simpoint"
	"looppoint/internal/timing"
	"looppoint/internal/workloads"
)

// Config holds the methodology parameters (slice size, maxK, projection
// dimensions, seed, flow-control window, warmup and region-simulation
// modes). Zero values fall back to the paper's defaults at this
// repository's scale.
type Config = core.Config

// Report is the outcome of an end-to-end evaluation: the selected
// looppoints, their simulations, the extrapolated prediction, and — when
// the full run was simulated — the error figures.
type Report = core.Report

// Selection is a clustered region selection with multipliers.
type Selection = core.Selection

// SimConfig describes the simulated system.
type SimConfig = timing.Config

// WaitPolicy mirrors OMP_WAIT_POLICY.
type WaitPolicy = omp.WaitPolicy

// Wait policies.
const (
	Passive = omp.Passive
	Active  = omp.Active
)

// DefaultConfig returns the paper's parameters (100 K-instruction
// per-thread slices, maxK 50, 100 projected dimensions).
func DefaultConfig() Config { return core.DefaultConfig() }

// Selectors lists the registered selection engines (Config.Selector):
// the classic "simpoint" medoid rule, the two-phase "stratified"
// sampler, and the prior-work baselines.
func Selectors() []string { return simpoint.SelectorNames() }

// Gainestown returns the paper's Table I system configuration for n cores.
func Gainestown(n int) SimConfig { return timing.Gainestown(n) }

// InOrderSystem returns the in-order-core variant used by the
// microarchitecture-portability experiment (Figure 5b).
func InOrderSystem(n int) SimConfig { return timing.InOrderConfig(n) }

// Workload is a buildable benchmark instance.
type Workload struct {
	App *workloads.App
}

// Name returns the workload's registered name.
func (w *Workload) Name() string { return w.App.Spec.Name }

// Threads returns the thread count it was built for.
func (w *Workload) Threads() int { return w.App.Prog.NumThreads() }

// WorkloadOptions parameterize workload construction.
type WorkloadOptions struct {
	// Threads defaults to 8 (xz pins its own counts, as in the paper).
	Threads int
	// Input is "test", "train" or "ref" for SPEC and "A", "C" or "D"
	// for NPB; defaults to train / C.
	Input string
	// Policy is the OpenMP wait policy (default passive).
	Policy WaitPolicy
}

// Workloads lists the registered workload names (SPEC CPU2017 speed
// subset, NPB 3.3, and the demo applications).
func Workloads() []string {
	var names []string
	for _, s := range workloads.All() {
		names = append(names, s.Name)
	}
	return names
}

// BuildWorkload constructs a workload by name.
func BuildWorkload(name string, opts WorkloadOptions) (*Workload, error) {
	spec, ok := workloads.Lookup(name)
	if !ok {
		return nil, fmt.Errorf("looppoint: unknown workload %q (see looppoint.Workloads())", name)
	}
	app, err := spec.Build(workloads.BuildParams{
		Threads: opts.Threads,
		Input:   workloads.InputClass(opts.Input),
		Policy:  opts.Policy,
	})
	if err != nil {
		return nil, err
	}
	return &Workload{App: app}, nil
}

// EvalOptions control an evaluation.
type EvalOptions struct {
	// CompareFull also simulates the entire application in detail to
	// compute prediction errors (skip for ref-scale inputs).
	CompareFull bool
	// Serial disables concurrent region simulation.
	Serial bool
	// Parallelism bounds the number of concurrently simulated
	// looppoints (0 = one pool worker per CPU). The prediction is
	// byte-identical at every setting; only host time changes.
	Parallelism int
	// System overrides the simulated system (default: Gainestown with
	// one core per thread).
	System *SimConfig
}

// Evaluate runs the complete LoopPoint flow on a workload: analyze,
// select, simulate the looppoints, extrapolate, and optionally compare
// against the full detailed simulation.
func Evaluate(w *Workload, cfg Config, opts EvalOptions) (*Report, error) {
	simCfg := timing.Gainestown(w.Threads())
	if opts.System != nil {
		simCfg = *opts.System
	}
	return core.Run(w.App.Prog, cfg, simCfg, core.RunOpts{
		SimulateFull: opts.CompareFull,
		Parallel:     !opts.Serial,
		Width:        opts.Parallelism,
	})
}

// Analyze performs the up-front analysis and region selection only —
// what the paper calls "where to simulate" — without any timing
// simulation. Useful for ref-scale inputs.
func Analyze(w *Workload, cfg Config) (*Selection, error) {
	a, err := core.Analyze(w.App.Prog, cfg)
	if err != nil {
		return nil, err
	}
	return core.Select(a)
}

// TheoreticalSpeedups returns the instruction-count speedups of a
// selection (serial and parallel, Section V-B).
func TheoreticalSpeedups(sel *Selection) (serial, parallel float64) {
	s := core.ComputeTheoretical(sel)
	return s.TheoreticalSerial, s.TheoreticalParallel
}

// Experiments returns a harness evaluator for regenerating the paper's
// figures programmatically (the lpreport command wraps the same API).
func Experiments(quick bool) *harness.Evaluator {
	return harness.NewEvaluator(harness.Options{Quick: quick})
}

// ExportSelection writes a selection's portable description — markers,
// multipliers, provenance — as JSON (the shareable .Data-directory
// analogue of the paper's artifact).
func ExportSelection(sel *Selection, path string) error {
	return sel.File().SaveJSON(path)
}

// ExportRegionPinballs extracts every looppoint's region checkpoint
// (with warmup prefix) in one replay sweep and writes one .pinball file
// per looppoint into dir, returning the file paths. Another user can
// simulate the files with timing.SimulateCheckpoint or
// `lpsim -checkpoint` without rerunning the analysis.
func ExportRegionPinballs(sel *Selection, dir string) ([]string, error) {
	a := sel.Analysis
	var specs []pinball.RegionSpec
	for _, lp := range sel.Points {
		r := lp.Region
		warm := r.StartICount
		if r.Index > 0 {
			warm = a.Profile.Regions[r.Index-1].StartICount
		}
		specs = append(specs, pinball.RegionSpec{
			Name:            fmt.Sprintf("%s.r%d", a.Prog.Name, r.Index),
			WarmupStartStep: warm,
			StartStep:       r.StartICount,
			EndStep:         r.EndICount,
			Start:           r.Start,
			End:             r.End,
		})
	}
	pbs, err := a.Pinball.ExtractRegions(a.Prog, specs)
	if err != nil {
		return nil, err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	var paths []string
	for _, pb := range pbs {
		path := filepath.Join(dir, pb.Name+".pinball")
		if err := pb.Save(path); err != nil {
			return nil, err
		}
		paths = append(paths, path)
	}
	return paths, nil
}
