package looppoint

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// goRun executes one of the repository's commands via `go run`.
func goRun(t *testing.T, args ...string) string {
	t.Helper()
	out, err := goRunEnv(nil, args...)
	if err != nil {
		t.Fatalf("go run %v: %v\n%s", args, err, out)
	}
	return out
}

// goRunEnv executes a command with extra environment variables and
// returns its combined output and exit error (nil on success) — the
// variant fault-tolerance tests use to assert on nonzero exits.
func goRunEnv(env []string, args ...string) (string, error) {
	cmd := exec.Command("go", append([]string{"run"}, args...)...)
	cmd.Env = append(os.Environ(), env...)
	out, err := cmd.CombinedOutput()
	return string(out), err
}

func TestCmdLooppointList(t *testing.T) {
	out := goRun(t, "./cmd/looppoint", "-list")
	for _, want := range []string{"603.bwaves_s.1", "657.xz_s.2", "npb-mg", "demo-matrix-1"} {
		if !strings.Contains(out, want) {
			t.Errorf("-list missing %s", want)
		}
	}
}

func TestCmdLooppointDemoEndToEnd(t *testing.T) {
	out := goRun(t, "./cmd/looppoint", "-p", "demo-matrix-1", "-n", "4", "-i", "test")
	for _, want := range []string{"regions profiled", "looppoints selected", "runtime error", "theoretical speedup"} {
		if !strings.Contains(out, want) {
			t.Errorf("driver output missing %q:\n%s", want, out)
		}
	}
}

func TestCmdLpprofile(t *testing.T) {
	out := goRun(t, "./cmd/lpprofile", "-p", "demo-matrix-1", "-n", "4", "-i", "test", "-slice", "2000", "-regions")
	if !strings.Contains(out, "selected looppoints") || !strings.Contains(out, "all regions") {
		t.Errorf("lpprofile output incomplete:\n%s", out)
	}
	csv := goRun(t, "./cmd/lpprofile", "-p", "demo-matrix-1", "-n", "4", "-i", "test", "-csv")
	if !strings.Contains(csv, "region,start,end") {
		t.Errorf("lpprofile CSV header missing:\n%s", csv)
	}
}

func TestCmdLpsim(t *testing.T) {
	out := goRun(t, "./cmd/lpsim", "-p", "demo-matrix-1", "-n", "4", "-i", "test")
	for _, want := range []string{"instructions", "cycles", "IPC", "L2 MPKI"} {
		if !strings.Contains(out, want) {
			t.Errorf("lpsim output missing %q:\n%s", want, out)
		}
	}
	inorder := goRun(t, "./cmd/lpsim", "-p", "demo-matrix-1", "-n", "4", "-i", "test", "-inorder")
	if !strings.Contains(inorder, "inorder") {
		t.Errorf("in-order flag ignored:\n%s", inorder)
	}
	periodic := goRun(t, "./cmd/lpsim", "-p", "demo-matrix-1", "-n", "4", "-i", "test", "-periodic", "500:5000")
	if !strings.Contains(periodic, "cycles") {
		t.Errorf("periodic mode broken:\n%s", periodic)
	}
}

func TestCmdLpreportTables(t *testing.T) {
	out := goRun(t, "./cmd/lpreport", "-figures", "tables")
	for _, want := range []string{"Table I", "Table II", "Table III", "Gainestown"} {
		if !strings.Contains(out, want) {
			t.Errorf("lpreport tables missing %q", want)
		}
	}
}

func TestCmdCheckpointWorkflow(t *testing.T) {
	dir := t.TempDir()
	out := goRun(t, "./cmd/lpprofile", "-p", "demo-matrix-2", "-n", "4", "-i", "test",
		"-slice", "3000", "-save-regions", dir, "-save-pinball", dir+"/whole.pinball")
	if !strings.Contains(out, "wrote whole-program pinball") || !strings.Contains(out, ".pinball (region") {
		t.Fatalf("lpprofile did not export checkpoints:\n%s", out)
	}
	// Find an exported region pinball and simulate it with lpsim.
	var region string
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "wrote ") && strings.Contains(line, ".r") {
			region = strings.Fields(line)[1]
			break
		}
	}
	if region == "" {
		t.Fatalf("no region pinball path in output:\n%s", out)
	}
	sim := goRun(t, "./cmd/lpsim", "-p", "demo-matrix-2", "-n", "4", "-i", "test",
		"-checkpoint", region)
	if !strings.Contains(sim, "cycles") || !strings.Contains(sim, "IPC") {
		t.Fatalf("lpsim checkpoint output incomplete:\n%s", sim)
	}
	constrained := goRun(t, "./cmd/lpsim", "-p", "demo-matrix-2", "-n", "4", "-i", "test",
		"-checkpoint", region, "-constrained")
	if !strings.Contains(constrained, "cycles") {
		t.Fatalf("lpsim constrained output incomplete:\n%s", constrained)
	}
	// Directory mode: every pinball in the directory simulates on the
	// worker pool, with per-file lines and an aggregate speedup summary.
	dirSim := goRun(t, "./cmd/lpsim", "-p", "demo-matrix-2", "-n", "4", "-i", "test",
		"-checkpoint", dir, "-j", "4")
	for _, want := range []string{"checkpoints of demo-matrix-2", "speedup", "host wall", ".pinball"} {
		if !strings.Contains(dirSim, want) {
			t.Fatalf("lpsim directory checkpoint output missing %q:\n%s", want, dirSim)
		}
	}
	// The zero-copy mapped loader must report the same per-file results
	// as the copying loader, in the same name order, at any -j width.
	mmapSim := goRun(t, "./cmd/lpsim", "-p", "demo-matrix-2", "-n", "4", "-i", "test",
		"-checkpoint", dir, "-j", "2", "-mmap")
	if reportLines(dirSim) != reportLines(mmapSim) {
		t.Fatalf("-mmap directory sweep reports differ from the copying loader:\n--- copy:\n%s\n--- mmap:\n%s",
			dirSim, mmapSim)
	}
}

// reportLines strips the host-timing fields ([host ...], wall-clock
// summary) from a directory-sweep report, leaving only the
// deterministic simulation results for comparison across runs.
func reportLines(out string) string {
	var keep []string
	for _, line := range strings.Split(out, "\n") {
		if i := strings.Index(line, "[host"); i >= 0 {
			line = strings.TrimRight(line[:i], " ")
		}
		if strings.Contains(line, "host wall") || strings.Contains(line, "speedup") ||
			strings.Contains(line, "workers") {
			continue
		}
		keep = append(keep, line)
	}
	return strings.Join(keep, "\n")
}

// TestCmdLpsimQuarantine corrupts one exported region pinball and
// requires directory-mode lpsim to quarantine it, finish the remaining
// checkpoints, and gate its exit status on -min-coverage.
func TestCmdLpsimQuarantine(t *testing.T) {
	dir := t.TempDir()
	out := goRun(t, "./cmd/lpprofile", "-p", "demo-matrix-2", "-n", "4", "-i", "test",
		"-slice", "3000", "-save-regions", dir, "-verify")
	if !strings.Contains(out, "verified") {
		t.Fatalf("lpprofile -verify did not confirm the artifacts:\n%s", out)
	}
	pinballs, err := filepath.Glob(filepath.Join(dir, "*.pinball"))
	if err != nil || len(pinballs) < 2 {
		t.Fatalf("need >= 2 exported pinballs, got %v (%v)", pinballs, err)
	}
	// Flip one bit in the middle of the first pinball.
	data, err := os.ReadFile(pinballs[0])
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x10
	if err := os.WriteFile(pinballs[0], data, 0o644); err != nil {
		t.Fatal(err)
	}

	// Tolerant threshold: the sweep quarantines the bad pinball, keeps
	// going, and exits zero.
	sim, err := goRunEnv(nil, "./cmd/lpsim", "-p", "demo-matrix-2", "-n", "4", "-i", "test",
		"-checkpoint", dir, "-min-coverage", "0.5")
	if err != nil {
		t.Fatalf("lpsim with tolerant -min-coverage failed: %v\n%s", err, sim)
	}
	for _, want := range []string{"QUARANTINED", "quarantined    1 of", "checkpoints of demo-matrix-2"} {
		if !strings.Contains(sim, want) {
			t.Errorf("quarantine output missing %q:\n%s", want, sim)
		}
	}

	// Default threshold (1.0): same sweep must exit nonzero.
	strict, err := goRunEnv(nil, "./cmd/lpsim", "-p", "demo-matrix-2", "-n", "4", "-i", "test",
		"-checkpoint", dir)
	if err == nil {
		t.Fatalf("lpsim accepted lost coverage at -min-coverage 1.0:\n%s", strict)
	}
	if !strings.Contains(strict, "below -min-coverage") {
		t.Errorf("strict run does not explain the coverage failure:\n%s", strict)
	}
}

// TestCmdLpsimEnvFaultRetry injects a transient region fault through the
// FAULTS_PLAN environment and requires -retries to absorb it.
func TestCmdLpsimEnvFaultRetry(t *testing.T) {
	dir := t.TempDir()
	goRun(t, "./cmd/lpprofile", "-p", "demo-matrix-2", "-n", "4", "-i", "test",
		"-slice", "3000", "-save-regions", dir)
	env := []string{"FAULTS_PLAN=lpsim.region:transient:1:1", "FAULTS_SEED=1"}

	// Without retries the injected fault quarantines a checkpoint.
	out, err := goRunEnv(env, "./cmd/lpsim", "-p", "demo-matrix-2", "-n", "4", "-i", "test",
		"-checkpoint", dir, "-min-coverage", "0.1")
	if err != nil {
		t.Fatalf("faulted sweep failed outright: %v\n%s", err, out)
	}
	if !strings.Contains(out, "QUARANTINED") {
		t.Fatalf("injected fault did not quarantine a checkpoint:\n%s", out)
	}

	// With an attempt budget the retry absorbs the transient fault.
	out, err = goRunEnv(env, "./cmd/lpsim", "-p", "demo-matrix-2", "-n", "4", "-i", "test",
		"-checkpoint", dir, "-retries", "3")
	if err != nil {
		t.Fatalf("sweep with -retries failed: %v\n%s", err, out)
	}
	if strings.Contains(out, "QUARANTINED") {
		t.Errorf("-retries 3 did not absorb the transient fault:\n%s", out)
	}
}

// TestCmdLpreportQuickHeadersGolden runs the whole quick report on
// test-class inputs with a parallel pool and pins the section headers
// against a golden file: every experiment must be present, titled as
// the paper's artifact, and unaffected by the -j width.
func TestCmdLpreportQuickHeadersGolden(t *testing.T) {
	out := goRun(t, "./cmd/lpreport", "-quick", "-input", "test", "-slice", "2000", "-j", "4")
	var got strings.Builder
	for _, line := range strings.Split(out, "\n") {
		for _, prefix := range []string{"Table ", "Fig", "Section ", "SecV", "Ablation:"} {
			if strings.HasPrefix(line, prefix) {
				got.WriteString(line)
				got.WriteByte('\n')
				break
			}
		}
	}
	want, err := os.ReadFile("testdata/lpreport_quick_headers.golden")
	if err != nil {
		t.Fatal(err)
	}
	if got.String() != string(want) {
		t.Errorf("section headers differ from testdata/lpreport_quick_headers.golden:\ngot:\n%swant:\n%s",
			got.String(), want)
	}
}

func TestCmdLpprofileDisasmAndDot(t *testing.T) {
	out := goRun(t, "./cmd/lpprofile", "-p", "demo-matrix-1", "-n", "2", "-i", "test", "-disasm")
	if !strings.Contains(out, "image main") || !strings.Contains(out, "routine omp_barrier") {
		t.Fatalf("disassembly incomplete:\n%.400s", out)
	}
	dir := t.TempDir()
	dot := dir + "/g.dot"
	goRun(t, "./cmd/lpprofile", "-p", "demo-matrix-1", "-n", "2", "-i", "test", "-slice", "3000", "-dot", dot)
	data, err := os.ReadFile(dot)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "digraph dcfg {") {
		t.Fatalf("bad DOT file: %.100s", data)
	}
}

func TestCmdTraceWorkflow(t *testing.T) {
	dir := t.TempDir()
	trace := dir + "/demo.trace"
	out := goRun(t, "./cmd/lpsim", "-p", "demo-matrix-1", "-n", "4", "-i", "test",
		"-dump-trace", trace)
	if !strings.Contains(out, "record trace") {
		t.Fatalf("trace dump output: %s", out)
	}
	sim := goRun(t, "./cmd/lpsim", "-n", "4", "-from-trace", trace)
	if !strings.Contains(sim, "CPI stack") || !strings.Contains(sim, "instructions") {
		t.Fatalf("trace-driven output incomplete:\n%s", sim)
	}
}
