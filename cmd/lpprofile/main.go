// Command lpprofile runs only the "where to simulate" half of LoopPoint:
// it records a workload as a pinball, replays it for DCFG/loop analysis
// and BBV collection, clusters the regions, and prints the selected
// looppoints with their (PC, count) boundaries and multipliers — without
// any timing simulation. Useful for ref-scale inputs and for inspecting
// the region structure of a workload.
//
// The clustering stage fans out over a worker pool (-j N; 0 = one worker
// per CPU) and the selection is byte-identical at every width. -slowpath
// forces the naive reference engines for cross-checking; -pprof-cpu /
// -pprof-heap write standard runtime/pprof profiles.
package main

import (
	"flag"
	"fmt"
	"os"

	"looppoint"
	"looppoint/internal/core"
	"looppoint/internal/faults"
	"looppoint/internal/pinball"
	"looppoint/internal/prof"
	"looppoint/internal/results"
)

func main() {
	var (
		program    = flag.String("p", "demo-matrix-1", "program to profile")
		ncores     = flag.Int("n", 8, "number of threads")
		inputClass = flag.String("i", "", "input class")
		waitPolicy = flag.String("w", "passive", "wait policy: passive or active")
		sliceUnit  = flag.Uint64("slice", 0, "per-thread slice unit (default 100000)")
		maxK       = flag.Int("maxk", 0, "maximum clusters (default 50)")
		selector   = flag.String("selector", "", "selection engine: simpoint, stratified, barrierpoint, timebased (default simpoint)")
		budget     = flag.Int("budget", 0, "stratified engine: total region draw budget (0 = 2x cluster count)")
		regions    = flag.Bool("regions", false, "also dump every profiled region")
		csv        = flag.Bool("csv", false, "emit CSV instead of a table")
		saveWhole  = flag.String("save-pinball", "", "save the whole-program pinball to this file")
		saveDir    = flag.String("save-regions", "", "extract each looppoint's region pinball into this directory")
		disasm     = flag.Bool("disasm", false, "print the generated program's disassembly and exit")
		jsonOut    = flag.String("json", "", "write the selection (markers + multipliers) as JSON to this file")
		dot        = flag.String("dot", "", "write the dynamic control-flow graph as Graphviz DOT to this file")
		verify     = flag.Bool("verify", false, "re-load every artifact written this run and check its integrity (checksums, version, structure)")
		jobs       = flag.Int("j", 0, "worker count for the checkpoint-parallel analysis front-end (DCFG/BBV replay shards; 0 = serial) and the clustering stage (0 = one worker per CPU); profile and selection are byte-identical at every setting")
		ckEvery    = flag.Uint64("checkpoint-every", 0, "shard width in schedule steps for the -j analysis sharding (0 = a deterministic default derived from the recording length)")
		slowPath   = flag.Bool("slowpath", false, "force the naive reference paths (per-instruction engine, serial naive clustering) instead of the fast ones; identical output, slower")
		pprofCPU   = flag.String("pprof-cpu", "", "write a CPU profile to this file")
		pprofHeap  = flag.String("pprof-heap", "", "write a heap profile to this file at exit")
	)
	flag.Parse()

	stopProf, err := prof.Start(*pprofCPU, *pprofHeap)
	if err != nil {
		fail(err)
	}
	defer stopProf()

	// FAULTS_PLAN/FAULTS_SEED inject deterministic faults without
	// recompiling (see internal/faults).
	if plan, err := faults.FromEnv(); err != nil {
		fail(err)
	} else if plan != nil {
		faults.Enable(plan)
	}

	policy := looppoint.Passive
	if *waitPolicy == "active" {
		policy = looppoint.Active
	}
	w, err := looppoint.BuildWorkload(*program, looppoint.WorkloadOptions{
		Threads: *ncores, Input: *inputClass, Policy: policy,
	})
	if err != nil {
		fail(err)
	}
	cfg := looppoint.DefaultConfig()
	if *sliceUnit != 0 {
		cfg.SliceUnit = *sliceUnit
	}
	if *maxK != 0 {
		cfg.MaxK = *maxK
	}
	cfg.ClusterWorkers = *jobs
	cfg.AnalyzeWorkers = *jobs
	cfg.CheckpointEvery = *ckEvery
	cfg.SlowPath = *slowPath
	cfg.Selector = *selector
	cfg.SampleBudget = *budget
	if *disasm {
		if err := w.App.Prog.Disassemble(os.Stdout); err != nil {
			fail(err)
		}
		return
	}
	sel, err := looppoint.Analyze(w, cfg)
	if err != nil {
		fail(err)
	}
	if *dot != "" {
		fdot, err := os.Create(*dot)
		if err != nil {
			fail(err)
		}
		if err := sel.Analysis.Graph.WriteDOT(fdot, sel.Analysis.Loops); err != nil {
			fail(err)
		}
		if err := fdot.Close(); err != nil {
			fail(err)
		}
		fmt.Printf("wrote DCFG to %s\n", *dot)
	}
	var savedPinballs []string
	if *saveWhole != "" {
		if err := sel.Analysis.Pinball.Save(*saveWhole); err != nil {
			fail(err)
		}
		fmt.Printf("wrote whole-program pinball to %s\n", *saveWhole)
		savedPinballs = append(savedPinballs, *saveWhole)
	}
	if *saveDir != "" {
		paths, err := looppoint.ExportRegionPinballs(sel, *saveDir)
		if err != nil {
			fail(err)
		}
		for i, path := range paths {
			lp := sel.Points[i]
			fmt.Printf("wrote %s (region %v..%v)\n", path, lp.Region.Start, lp.Region.End)
		}
		savedPinballs = append(savedPinballs, paths...)
	}
	if *jsonOut != "" {
		if err := sel.File().SaveJSON(*jsonOut); err != nil {
			fail(err)
		}
		fmt.Printf("wrote selection to %s\n", *jsonOut)
	}
	if *verify {
		// Read every artifact back through the same integrity-checked
		// loaders downstream tools use, so torn or corrupted writes are
		// caught now instead of mid-campaign.
		for _, path := range savedPinballs {
			if _, err := pinball.Load(path); err != nil {
				fail(fmt.Errorf("verify: %w", err))
			}
		}
		if *jsonOut != "" {
			f, err := os.Open(*jsonOut)
			if err != nil {
				fail(fmt.Errorf("verify: %w", err))
			}
			_, lerr := core.LoadSelectionFile(f)
			f.Close()
			if lerr != nil {
				fail(fmt.Errorf("verify %s: %w", *jsonOut, lerr))
			}
		}
		n := len(savedPinballs)
		if *jsonOut != "" {
			n++
		}
		fmt.Printf("verified %d artifact(s)\n", n)
	}

	prof := sel.Analysis.Profile
	fmt.Printf("%s: %d threads, %d instructions (%d filtered), %d regions, %d markers, %d loops\n",
		w.Name(), w.Threads(), prof.TotalICount, prof.TotalFiltered,
		len(prof.Regions), len(sel.Analysis.Markers), len(sel.Analysis.Loops.Loops))

	serial, parallel := looppoint.TheoreticalSpeedups(sel)
	fmt.Printf("theoretical speedup: %.1fx serial, %.1fx parallel\n\n", serial, parallel)

	t := &results.Table{
		Title:   "selected looppoints",
		Headers: []string{"region", "start", "end", "filtered instrs", "multiplier", "cluster size", "spread"},
	}
	for _, lp := range sel.Points {
		t.AddRow(lp.Region.Index, lp.Region.Start.String(), lp.Region.End.String(),
			lp.Region.Filtered, lp.Multiplier, lp.ClusterSize, lp.Spread)
	}
	emit(t, *csv)

	if *regions {
		// Non-clustering engines (e.g. timebased) carry no k-means result;
		// recover each region's stratum from the sample's membership lists.
		cluster := make([]int, len(prof.Regions))
		for i := range cluster {
			cluster[i] = -1
		}
		if sel.Result != nil {
			cluster = sel.Result.Assign
		} else if sel.Sample != nil {
			for h, st := range sel.Sample.Strata {
				for _, m := range st.Members {
					if m >= 0 && m < len(cluster) {
						cluster[m] = h
					}
				}
			}
		}
		rt := &results.Table{
			Title:   "all regions",
			Headers: []string{"region", "start", "end", "filtered", "unfiltered", "cluster"},
		}
		for i, r := range prof.Regions {
			rt.AddRow(r.Index, r.Start.String(), r.End.String(), r.Filtered,
				r.UnfilteredLen(), cluster[i])
		}
		emit(rt, *csv)
	}
}

func emit(t *results.Table, csv bool) {
	if csv {
		fmt.Print(t.CSV())
	} else {
		fmt.Println(t.String())
	}
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "lpprofile: %v\n", err)
	os.Exit(1)
}
