// Command looppoint is the end-to-end driver, mirroring the paper
// artifact's run-looppoint.py: it profiles the selected programs, chooses
// representative regions, launches the region simulations, extrapolates
// whole-program performance, and prints error and speedup numbers.
//
// Usage examples (mirroring the artifact appendix):
//
//	looppoint -p demo-matrix-1 -n 8
//	looppoint -p demo-matrix-2,demo-matrix-3 -w active -i test
//	looppoint -p 603.bwaves_s.1 -i train -w passive
//	looppoint -p 657.xz_s.2 -i ref --no-fullsim
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"text/tabwriter"

	"looppoint"
)

func main() {
	var (
		programs   = flag.String("p", "demo-matrix-1", "comma-separated programs (<suite>-<application>-<input-num> style names; see -list)")
		ncores     = flag.Int("n", 8, "number of threads/cores")
		inputClass = flag.String("i", "", "input class (test/train/ref for SPEC, A/C/D for NPB; default test for demo, train/C otherwise)")
		waitPolicy = flag.String("w", "passive", "OpenMP wait policy: passive or active")
		noFull     = flag.Bool("no-fullsim", false, "skip the full-application reference simulation (use for ref inputs)")
		serial     = flag.Bool("serial", false, "simulate regions back-to-back instead of in parallel")
		sliceUnit  = flag.Uint64("slice", 0, "per-thread slice unit in instructions (default 100000)")
		maxK       = flag.Int("maxk", 0, "maximum clusters (default 50)")
		selector   = flag.String("selector", "", "selection engine: "+strings.Join(looppoint.Selectors(), ", ")+" (default simpoint)")
		budget     = flag.Int("budget", 0, "stratified engine: total region draw budget (default 2x cluster count)")
		confidence = flag.Float64("confidence", 0, "confidence level for extrapolated intervals, in (0,1) (default 0.95)")
		inorder    = flag.Bool("inorder", false, "simulate on the in-order core model")
		native     = flag.Bool("native", false, "run the application functionally without any sampling or timing (smoke test)")
		list       = flag.Bool("list", false, "list available programs and exit")
		jobs       = flag.Int("j", 0, "worker count for the checkpoint-parallel analysis front-end and the clustering stage (0 = serial analysis, one clustering worker per CPU); results are byte-identical at every setting")
		ckEvery    = flag.Uint64("checkpoint-every", 0, "shard width in schedule steps for the -j analysis sharding (0 = a deterministic default derived from the recording length)")
	)
	flag.Parse()

	if *list {
		for _, n := range looppoint.Workloads() {
			fmt.Println(n)
		}
		return
	}

	var policy looppoint.WaitPolicy = looppoint.Passive
	if *waitPolicy == "active" {
		policy = looppoint.Active
	} else if *waitPolicy != "passive" {
		fatalf("unknown wait policy %q", *waitPolicy)
	}

	cfg := looppoint.DefaultConfig()
	if *sliceUnit != 0 {
		cfg.SliceUnit = *sliceUnit
	}
	if *maxK != 0 {
		cfg.MaxK = *maxK
	}
	cfg.Selector = *selector
	cfg.SampleBudget = *budget
	cfg.Confidence = *confidence
	cfg.AnalyzeWorkers = *jobs
	cfg.ClusterWorkers = *jobs
	cfg.CheckpointEvery = *ckEvery

	for _, name := range strings.Split(*programs, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		input := *inputClass
		if input == "" && strings.HasPrefix(name, "demo-") {
			input = "test"
		}
		w, err := looppoint.BuildWorkload(name, looppoint.WorkloadOptions{
			Threads: *ncores, Input: input, Policy: policy,
		})
		if err != nil {
			fatalf("%v", err)
		}
		if *native {
			fmt.Printf("[%s] built for %d threads; native mode runs no simulation\n", name, w.Threads())
			continue
		}
		opts := looppoint.EvalOptions{CompareFull: !*noFull, Serial: *serial}
		if *inorder {
			sys := looppoint.InOrderSystem(w.Threads())
			opts.System = &sys
		}
		rep, err := looppoint.Evaluate(w, cfg, opts)
		if err != nil {
			fatalf("%s: %v", name, err)
		}
		printReport(rep)
	}
}

func printReport(rep *looppoint.Report) {
	fmt.Printf("=== %s ===\n", rep.Name)
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	prof := rep.Selection.Analysis.Profile
	fmt.Fprintf(tw, "regions profiled\t%d\n", len(prof.Regions))
	fmt.Fprintf(tw, "looppoints selected\t%d\n", len(rep.Selection.Points))
	fmt.Fprintf(tw, "total instructions\t%d (filtered %d)\n", prof.TotalICount, prof.TotalFiltered)
	fmt.Fprintf(tw, "predicted runtime\t%.6f s (%.0f cycles)\n", rep.Predicted.Seconds, rep.Predicted.Cycles)
	if iv := rep.Intervals; iv != nil {
		fmt.Fprintf(tw, "runtime %.0f%% CI\t%.6f ± %.6f s\n", iv.Level*100, iv.Seconds.Mean, iv.Seconds.HalfWidth)
		fmt.Fprintf(tw, "cycles %.0f%% CI\t%.0f ± %.0f\n", iv.Level*100, iv.Cycles.Mean, iv.Cycles.HalfWidth)
		if rep.Full != nil {
			covered := "outside"
			if iv.Seconds.Covers(rep.Full.RuntimeSeconds()) {
				covered = "inside"
			}
			fmt.Fprintf(tw, "measured vs CI\t%s the interval\n", covered)
		}
	}
	if rep.Full != nil {
		fmt.Fprintf(tw, "measured runtime\t%.6f s\n", rep.Full.RuntimeSeconds())
		fmt.Fprintf(tw, "runtime error\t%.2f %%\n", rep.RuntimeErrPct)
		fmt.Fprintf(tw, "branch MPKI |diff|\t%.3f\n", rep.BranchMPKIDiff)
		fmt.Fprintf(tw, "L2 MPKI |diff|\t%.3f\n", rep.L2MPKIDiff)
		fmt.Fprintf(tw, "actual speedup\t%.1fx serial / %.1fx parallel\n",
			rep.Speedups.ActualSerial, rep.Speedups.ActualParallel)
	}
	fmt.Fprintf(tw, "theoretical speedup\t%.1fx serial / %.1fx parallel\n",
		rep.Speedups.TheoreticalSerial, rep.Speedups.TheoreticalParallel)
	if total := rep.Predicted.Stack.Total(); total > 0 {
		st := rep.Predicted.Stack
		fmt.Fprintf(tw, "predicted CPI stack\tbase %.0f%%, ifetch %.0f%%, mem %.0f%%, branch %.0f%%, compute %.0f%%, sync %.0f%%\n",
			st.Base/total*100, st.Ifetch/total*100, st.Memory/total*100,
			st.Branch/total*100, st.Compute/total*100, st.Sync/total*100)
	}
	tw.Flush()
	fmt.Println("looppoints (region, boundaries, multiplier):")
	for _, lp := range rep.Selection.Points {
		fmt.Printf("  r%-4d %v .. %v  x%.2f (cluster of %d)\n",
			lp.Region.Index, lp.Region.Start, lp.Region.End, lp.Multiplier, lp.ClusterSize)
	}
	fmt.Println()
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "looppoint: "+format+"\n", args...)
	os.Exit(1)
}
