// Command lpcoord is the campaign coordinator: it shards one campaign —
// a set of sampling jobs, regions × experiments — across a fleet of
// lpserved workers and drives it to completion through worker crashes,
// hangs, overload storms, and corrupt responses (DESIGN.md §14).
//
// Jobs are content-addressed; dispatch is lease-based with seeded
// full-jitter retry backoff and work stealing; completed results land in
// a checksummed content-addressed cache and an fsync'd journal, so a
// killed coordinator resumes (-resume) without re-simulating anything it
// finished.
//
//	lpcoord -workers http://host1:8347,http://host2:8347 \
//	        -apps npb-cg,npb-ft -class analyze -input test -threads 4
//	lpcoord -workers ... -campaign spec.json -out report.txt
//	lpcoord -workers ... -campaign spec.json \
//	        -resume campaign.jsonl -cache cachedir    # survives kill -9
//
// The report (stdout or -out) is deterministic: byte-identical across
// fleet shapes, steal schedules, retries, and resumes. The stats line on
// stderr carries the operational story (dispatches, steals, cache hits).
// Exit status: 0 when every job completed, 1 on failed jobs or a bad
// invocation.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"looppoint/internal/campaign"
	"looppoint/internal/faults"
	"looppoint/internal/serve"
)

func main() {
	var (
		workersFlag = flag.String("workers", "", "comma-separated worker base URLs (e.g. http://127.0.0.1:8347,http://...)")
		specPath    = flag.String("campaign", "", `campaign spec file: {"jobs":[{"class":"analyze","app":"npb-cg",...},...]} (empty: build from -apps)`)
		apps        = flag.String("apps", "", "comma-separated workload names to build a campaign from (ignored with -campaign)")
		class       = flag.String("class", serve.ClassAnalyze, "job class for -apps campaigns: analyze, simulate, or report")
		input       = flag.String("input", "", "input class for -apps campaigns (empty = evaluator default)")
		threads     = flag.Int("threads", 0, "thread count for -apps campaigns (0 = evaluator default)")
		policy      = flag.String("policy", "", "OMP wait policy for -apps campaigns: passive (default) or active")
		core        = flag.String("core", "", "core model for -apps campaigns: ooo (default) or inorder")
		full        = flag.Bool("full", false, "also run whole-program simulation (report class)")

		tag     = flag.String("tag", "default", "campaign tag: distinct tags never share keys, caches, or journals")
		out     = flag.String("out", "", "write the report here (empty: stdout)")
		resume  = flag.String("resume", "", "campaign journal path: completions are fsync'd here and restored on restart (empty disables)")
		cache   = flag.String("cache", "", "content-addressed result cache directory (empty: in-memory only)")
		lease   = flag.Duration("lease", campaign.DefaultLease, "dispatch lease; an expired lease re-enqueues the job on another worker")
		reqTO   = flag.Duration("request-timeout", 0, "claim HTTP timeout (0 = 2×lease)")
		maxAtt  = flag.Int("max-attempts", 0, "dispatch attempts per job before it fails (0 = max(8, 4×workers))")
		dup     = flag.Int("dup", campaign.DefaultMaxDuplicates, "max concurrent dispatches per job (original + steals)")
		wInfl   = flag.Int("worker-inflight", campaign.DefaultWorkerInflight, "concurrent dispatches per worker")
		backoff = flag.Duration("backoff", campaign.DefaultBackoff, "base retry backoff (full-jittered capped doubling)")
		maxBO   = flag.Duration("max-backoff", campaign.DefaultMaxBackoff, "retry backoff cap")
		seed    = flag.Uint64("seed", 1, "jitter seed: one seed reproduces the campaign's whole retry schedule")

		brFailures = flag.Int("breaker-failures", serve.DefaultFailureThreshold, "consecutive dispatch failures that trip a worker's circuit breaker")
		brOpen     = flag.Duration("breaker-open", serve.DefaultOpenFor, "how long a tripped worker breaker holds open before probing")
		brProbes   = flag.Int("breaker-probes", serve.DefaultHalfOpenProbes, "half-open probe slots per worker breaker")
		probeIvl   = flag.Duration("probe-interval", campaign.DefaultProbeInterval, "/readyz health-probe period")

		timeout = flag.Duration("timeout", 0, "overall campaign deadline (0 = none)")
		verbose = flag.Bool("v", false, "log dispatch/retry/steal progress to stderr")
	)
	flag.Parse()

	if plan, err := faults.FromEnv(); err != nil {
		fatalf("%v", err)
	} else if plan != nil {
		faults.Enable(plan)
	}

	var clients []campaign.WorkerClient
	var workerURLs []string
	for _, u := range strings.Split(*workersFlag, ",") {
		if u = strings.TrimSpace(u); u != "" {
			clients = append(clients, campaign.NewHTTPWorker("", u))
			workerURLs = append(workerURLs, strings.TrimRight(u, "/"))
		}
	}
	if len(clients) == 0 {
		fatalf("no workers: pass -workers with at least one lpserved base URL")
	}

	spec, err := buildSpec(*specPath, *apps, *class, *input, *threads, *policy, *core, *full)
	if err != nil {
		fatalf("%v", err)
	}

	cfg := campaign.Config{
		Tag: *tag, Lease: *lease, RequestTimeout: *reqTO,
		MaxAttempts: *maxAtt, MaxDuplicates: *dup, WorkerInflight: *wInfl,
		Backoff: *backoff, MaxBackoff: *maxBO, Seed: *seed,
		Breaker: serve.BreakerOpts{
			FailureThreshold: *brFailures, OpenFor: *brOpen, HalfOpenProbes: *brProbes,
		},
		ProbeInterval: *probeIvl,
		CacheDir:      *cache,
		JournalPath:   *resume,
	}
	if *verbose {
		cfg.Log = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "lpcoord: "+format+"\n", args...)
		}
	}

	coord, err := campaign.New(cfg, clients)
	if err != nil {
		fatalf("%v", err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	fmt.Fprintf(os.Stderr, "lpcoord: campaign %q: %d jobs across %d workers\n",
		*tag, len(spec.Jobs), len(clients))
	rep, err := coord.Run(ctx, spec)
	if rep != nil {
		fmt.Fprintf(os.Stderr, "lpcoord: %s%s\n", rep.Stats.Line(), fleetProgressLine(workerURLs))
	}
	if err != nil {
		fatalf("campaign interrupted: %v", err)
	}

	rendered := rep.Render()
	if *out == "" {
		fmt.Print(rendered)
	} else if werr := os.WriteFile(*out, []byte(rendered), 0o644); werr != nil {
		fatalf("write report: %v", werr)
	}
	if rep.Stats.Failed > 0 {
		fatalf("%d of %d jobs failed", rep.Stats.Failed, rep.Stats.Jobs)
	}
}

// buildSpec loads the campaign from a spec file, or builds one from the
// -apps cross-product flags.
func buildSpec(path, apps, class, input string, threads int, policy, core string, full bool) (campaign.Spec, error) {
	var spec campaign.Spec
	if path != "" {
		data, err := os.ReadFile(path)
		if err != nil {
			return spec, fmt.Errorf("read campaign spec: %w", err)
		}
		if err := json.Unmarshal(data, &spec); err != nil {
			return spec, fmt.Errorf("parse campaign spec %s: %w", path, err)
		}
	} else {
		for _, app := range strings.Split(apps, ",") {
			if app = strings.TrimSpace(app); app != "" {
				spec.Jobs = append(spec.Jobs, serve.JobRequest{
					Class: class, App: app, Input: input, Threads: threads,
					Policy: policy, Core: core, Full: full,
				})
			}
		}
	}
	if len(spec.Jobs) == 0 {
		return spec, fmt.Errorf("empty campaign: pass -campaign or -apps")
	}
	return spec, nil
}

// fleetProgressLine polls every worker's GET /v1/stats and folds the
// durable-progress counters into one " progress_saves=… recoveries=…"
// suffix for the campaign stats line, so an operator sees how much work
// crash recovery saved without visiting each worker. Best-effort: dead
// workers (the chaos drill kills some) are skipped and counted.
func fleetProgressLine(workerURLs []string) string {
	hc := &http.Client{Timeout: 2 * time.Second}
	var saves, fails, recov, steps, falls uint64
	unreachable := 0
	for _, base := range workerURLs {
		resp, err := hc.Get(base + "/v1/stats")
		if err != nil {
			unreachable++
			continue
		}
		var st serve.Stats
		derr := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&st)
		resp.Body.Close()
		if derr != nil || resp.StatusCode != http.StatusOK {
			unreachable++
			continue
		}
		saves += st.ProgressSaves
		fails += st.ProgressSaveFailures
		recov += st.Recoveries
		steps += st.RecoveryStepsSaved
		falls += st.LadderFalls
	}
	return fmt.Sprintf(" progress_saves=%d progress_save_failures=%d recoveries=%d recovery_steps_saved=%d ladder_falls=%d workers_unreachable=%d",
		saves, fails, recov, steps, falls, unreachable)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "lpcoord: "+format+"\n", args...)
	os.Exit(1)
}
