// Command lpreport regenerates the paper's evaluation: every figure
// (1, 3, 4, 5a, 5b, 6, 7, 8, 9, 10), the configuration and workload
// tables (I–III), the Section II naive-SimPoint and Section V-A1
// constrained-replay measurements, and the design-choice ablations.
//
//	lpreport -quick                  # representative subset, minutes
//	lpreport                         # full suites (much longer)
//	lpreport -figures 5a,8,9         # selected experiments only
//	lpreport -out results/           # also write per-figure text files
//	lpreport -quick -j 8             # 8 evaluation workers, same output
//
// The -j flag bounds the worker pool that experiments fan out on — and,
// within each evaluation, the clustering stage's BBV projections and
// k=1..maxK BIC sweep; reports are byte-identical at every -j setting.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"looppoint/internal/faults"
	"looppoint/internal/harness"
	"looppoint/internal/prof"
	"looppoint/internal/workloads"
)

type experiment struct {
	name string
	run  func(e *harness.Evaluator) (string, error)
}

func main() {
	var (
		quick     = flag.Bool("quick", false, "use representative workload subsets")
		figures   = flag.String("figures", "all", "comma-separated experiments: tables,1,3,4,5a,5b,6,7,8,9,10,naive,constrained,hybrid,engines,ablations or all")
		outDir    = flag.String("out", "", "directory to also write per-figure text files into")
		threads   = flag.Int("n", 8, "SPEC thread count")
		jobs      = flag.Int("j", 0, "worker-pool width for parallel evaluation (0 = one worker per CPU); output is identical at every setting")
		input     = flag.String("input", "", "override every experiment's input class (e.g. test) — smoke runs only")
		slice     = flag.Uint64("slice", 0, "override the per-thread slice unit (0 = default)")
		verbose   = flag.Bool("v", false, "log per-application progress")
		slowPath  = flag.Bool("slowpath", false, "force the per-instruction reference engine instead of the block-batched fast path (identical reports, slower)")
		resume    = flag.String("resume", "", "journal completed evaluations to this file and skip ones already journaled — a killed run restarts where it stopped")
		degraded  = flag.Bool("degraded", false, "tolerate per-region simulation failures: drop the region, reweight the prediction, and mark the report degraded")
		retries   = flag.Int("retries", 1, "attempts per region simulation (transient failures are retried with backoff)")
		regionTO  = flag.Duration("region-timeout", 0, "per-attempt time limit for one region simulation (0 = none)")
		minCov    = flag.Float64("min-coverage", 0, "degraded mode: minimum surviving fraction of extrapolation weight (0 = default 0.9, negative = no floor)")
		selector  = flag.String("selector", "", "selection engine for every experiment (default simpoint); the engines experiment always sweeps all of them")
		budget    = flag.Int("budget", 0, "stratified engine: total region draw budget (0 = 2x cluster count)")
		confid    = flag.Float64("confidence", 0, "confidence level for extrapolated intervals (0 = 0.95)")
		pprofCPU  = flag.String("pprof-cpu", "", "write a CPU profile to this file")
		pprofHeap = flag.String("pprof-heap", "", "write a heap profile to this file at exit")
	)
	flag.Parse()

	// FAULTS_PLAN/FAULTS_SEED inject deterministic faults without
	// recompiling (see internal/faults).
	if plan, err := faults.FromEnv(); err != nil {
		fmt.Fprintf(os.Stderr, "lpreport: %v\n", err)
		os.Exit(1)
	} else if plan != nil {
		faults.Enable(plan)
	}

	stopProf, err := prof.Start(*pprofCPU, *pprofHeap)
	if err != nil {
		fmt.Fprintf(os.Stderr, "lpreport: %v\n", err)
		os.Exit(1)
	}
	defer stopProf()

	opts := harness.Options{
		Quick:         *quick,
		Threads:       *threads,
		Parallelism:   *jobs,
		SliceUnit:     *slice,
		InputOverride: workloads.InputClass(*input),
		SlowPath:      *slowPath,
		Resume:        *resume,
		Degraded:      *degraded,
		Retries:       *retries,
		RegionTimeout: *regionTO,
		MinCoverage:   *minCov,
		Selector:      *selector,
		SampleBudget:  *budget,
		Confidence:    *confid,
	}
	if *verbose {
		opts.Log = os.Stderr
	}
	e := harness.NewEvaluator(opts)
	defer e.Close()
	logf := func(format string, args ...any) {
		if opts.Log != nil {
			fmt.Fprintf(opts.Log, format+"\n", args...)
		}
	}

	exps := []experiment{
		{"tables", func(e *harness.Evaluator) (string, error) {
			return harness.TableI() + "\n" + harness.TableII() + "\n" + harness.TableIII(), nil
		}},
		{"1", wrap(e.Fig1)},
		{"3", wrap(e.Fig3)},
		{"4", wrap(e.Fig4)},
		{"5a", wrap(e.Fig5a)},
		{"5b", wrap(e.Fig5b)},
		{"6", wrap(e.Fig6)},
		{"7", wrap(e.Fig7)},
		{"8", wrap(e.Fig8)},
		{"9", wrap(e.Fig9)},
		{"10", wrap(e.Fig10)},
		{"naive", wrap(e.NaiveSimPoint)},
		{"constrained", wrap(e.Constrained)},
		{"hybrid", wrap(e.Hybrid)},
		{"engines", func(e *harness.Evaluator) (string, error) {
			res, err := e.Engines(nil)
			if err != nil {
				return "", err
			}
			return res.Render(), nil
		}},
		{"ablations", runAblations},
	}

	want := map[string]bool{}
	for _, f := range strings.Split(*figures, ",") {
		want[strings.TrimSpace(f)] = true
	}
	all := want["all"]

	for _, exp := range exps {
		if !all && !want[exp.name] {
			continue
		}
		logf("stage %s: starting (j=%d)", exp.name, e.Opts.Parallelism)
		start := time.Now()
		out, err := exp.run(e)
		if err != nil {
			fmt.Fprintf(os.Stderr, "lpreport: %s: %v\n", exp.name, err)
			os.Exit(1)
		}
		logf("stage %s: done in %v", exp.name, time.Since(start).Round(time.Millisecond))
		fmt.Printf("%s\n[%s took %v]\n\n", out, exp.name, time.Since(start).Round(time.Millisecond))
		if *outDir != "" {
			if err := os.MkdirAll(*outDir, 0o755); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			path := filepath.Join(*outDir, "fig"+exp.name+".txt")
			if err := os.WriteFile(path, []byte(out), 0o644); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
	}
}

type renderer interface{ Render() string }

// wrap adapts a figure function to the experiment signature.
func wrap[T renderer](fn func() (T, error)) func(*harness.Evaluator) (string, error) {
	return func(*harness.Evaluator) (string, error) {
		res, err := fn()
		if err != nil {
			return "", err
		}
		return res.Render(), nil
	}
}

func runAblations(e *harness.Evaluator) (string, error) {
	var b strings.Builder
	for _, fn := range []func() (*harness.AblationResult, error){
		e.AblationSpinFilter,
		e.AblationGlobalBBV,
		e.AblationFlowControl,
		e.AblationSliceSize,
		e.AblationMaxK,
		e.AblationWarmup,
		e.AblationPrefetcher,
		e.AblationVariableSlices,
	} {
		res, err := fn()
		if err != nil {
			return "", err
		}
		b.WriteString(res.Render())
		b.WriteByte('\n')
	}
	return b.String(), nil
}
