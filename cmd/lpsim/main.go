// Command lpsim runs the timing simulator directly: a fully detailed
// simulation of a workload, a single (PC, count)-delimited region, or a
// periodic time-based-sampling run, on the Gainestown-like out-of-order
// model or the in-order model. It is the "how to simulate" half of the
// methodology, exposed for experimentation.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"looppoint"
	"looppoint/internal/bbv"
	"looppoint/internal/faults"
	"looppoint/internal/pinball"
	"looppoint/internal/pool"
	"looppoint/internal/prof"
	"looppoint/internal/stats"
	"looppoint/internal/timing"
)

func main() {
	var (
		program    = flag.String("p", "demo-matrix-1", "program to simulate")
		ncores     = flag.Int("n", 8, "number of threads/cores")
		inputClass = flag.String("i", "", "input class")
		waitPolicy = flag.String("w", "passive", "wait policy: passive or active")
		inorder    = flag.Bool("inorder", false, "use the in-order core model")
		start      = flag.String("start", "", "region start marker as pc:count (hex pc ok); empty = program start")
		end        = flag.String("end", "", "region end marker as pc:count; empty = program end")
		cold       = flag.Bool("cold", false, "skip functional warmup for region simulation")
		periodic   = flag.String("periodic", "", "time-based sampling as detail:period instruction counts")
		trace      = flag.Uint64("trace", 0, "emit an IPC trace sampled every N instructions")
		checkpoint = flag.String("checkpoint", "", "simulate a saved region pinball, or every *.pinball in a directory (from lpprofile -save-regions); build flags must match the profiling run")
		jobs       = flag.Int("j", 0, "worker-pool width for directory checkpoint simulation (0 = one worker per CPU)")
		mmapLoad   = flag.Bool("mmap", false, "load pinballs through a read-only memory mapping (zero-copy fast path; falls back to a normal read where unsupported)")
		constrain  = flag.Bool("constrained", false, "with -checkpoint: constrained replay instead of unconstrained simulation")
		dumpTrace  = flag.String("dump-trace", "", "record the workload and write an instruction trace to this file (no timing simulation)")
		fromTrace  = flag.String("from-trace", "", "run a timing-only simulation of a trace file (-n selects the core count; no workload executes)")
		slowPath   = flag.Bool("slowpath", false, "force the per-instruction reference engine instead of the block-batched fast path (identical statistics, slower)")
		retries    = flag.Int("retries", 1, "attempts per checkpoint simulation in directory mode (transient failures are retried with backoff)")
		regionTO   = flag.Duration("region-timeout", 0, "per-attempt time limit for one checkpoint simulation in directory mode (0 = none)")
		minCov     = flag.Float64("min-coverage", 1.0, "directory mode: minimum fraction of checkpoints that must simulate; bad pinballs are quarantined and the rest continue, but falling below this exits nonzero")
		confid     = flag.Float64("confidence", 0.95, "directory mode: level for the across-checkpoint IPC confidence interval")
		pprofCPU   = flag.String("pprof-cpu", "", "write a CPU profile to this file")
		pprofHeap  = flag.String("pprof-heap", "", "write a heap profile to this file at exit")
	)
	flag.Parse()

	if *mmapLoad && !pinball.MmapSupported {
		fmt.Fprintln(os.Stderr, "lpsim: -mmap is not supported on this platform; pinballs will be loaded through the copying loader (results are identical)")
	}

	// FAULTS_PLAN/FAULTS_SEED inject deterministic faults without
	// recompiling (see internal/faults).
	if plan, err := faults.FromEnv(); err != nil {
		fail(err)
	} else if plan != nil {
		faults.Enable(plan)
	}

	stopProf, err := prof.Start(*pprofCPU, *pprofHeap)
	if err != nil {
		fail(err)
	}
	defer stopProf()

	if *fromTrace != "" {
		cfg := timing.Gainestown(*ncores)
		if *inorder {
			cfg = timing.InOrderConfig(*ncores)
		}
		f, err := os.Open(*fromTrace)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		st, err := timing.SimulateTrace(cfg, f)
		if err != nil {
			fail(err)
		}
		printStats(fmt.Sprintf("trace %s", *fromTrace), cfg, st, nil)
		return
	}

	policy := looppoint.Passive
	if *waitPolicy == "active" {
		policy = looppoint.Active
	}
	w, err := looppoint.BuildWorkload(*program, looppoint.WorkloadOptions{
		Threads: *ncores, Input: *inputClass, Policy: policy,
	})
	if err != nil {
		fail(err)
	}
	cfg := timing.Gainestown(w.Threads())
	if *inorder {
		cfg = timing.InOrderConfig(w.Threads())
	}
	sim, err := timing.New(cfg, w.App.Prog)
	if err != nil {
		fail(err)
	}
	sim.SlowPath = *slowPath
	if *trace > 0 {
		sim.Trace = timing.NewIPCTrace(*trace)
	}

	if *dumpTrace != "" {
		pb, err := pinball.Record(w.App.Prog, 1, 4096)
		if err != nil {
			fail(err)
		}
		f, err := os.Create(*dumpTrace)
		if err != nil {
			fail(err)
		}
		tw, err := timing.NewTraceWriter(f)
		if err != nil {
			fail(err)
		}
		if _, err := pb.Replay(w.App.Prog, tw); err != nil {
			fail(err)
		}
		if err := tw.Close(); err != nil {
			fail(err)
		}
		if err := f.Close(); err != nil {
			fail(err)
		}
		fmt.Printf("wrote %d-record trace to %s\n", tw.Records(), *dumpTrace)
		return
	}

	var st *timing.Stats
	switch {
	case *checkpoint != "":
		if fi, err := os.Stat(*checkpoint); err == nil && fi.IsDir() {
			simulateCheckpointDir(w, cfg, *checkpoint, dirOpts{
				jobs: *jobs, constrain: *constrain, slowPath: *slowPath,
				retries: *retries, regionTimeout: *regionTO, minCoverage: *minCov,
				confidence: *confid, mmap: *mmapLoad,
			})
			return
		}
		pb, err := loadPinball(*checkpoint, *mmapLoad)
		if err != nil {
			fail(err)
		}
		if pb.NumThreads != w.Threads() {
			fail(fmt.Errorf("checkpoint recorded with %d threads, program built with %d; pass matching -p/-n/-i/-w flags",
				pb.NumThreads, w.Threads()))
		}
		if *constrain {
			st, err = sim.SimulateConstrained(pb)
		} else {
			st, err = sim.SimulateCheckpoint(pb)
		}
		if err != nil {
			fail(err)
		}
	case *periodic != "":
		d, p, err := parsePair(*periodic)
		if err != nil {
			fail(err)
		}
		st, err = sim.SimulatePeriodic(d, p)
		if err != nil {
			fail(err)
		}
	default:
		startM, err := parseMarker(*start, bbv.Marker{})
		if err != nil {
			fail(err)
		}
		endM, err := parseMarker(*end, bbv.Marker{IsEnd: true})
		if err != nil {
			fail(err)
		}
		warm := timing.WarmupFunctional
		if *cold {
			warm = timing.WarmupNone
		}
		st, err = sim.SimulateRegion(startM, endM, warm)
		if err != nil {
			fail(err)
		}
	}

	printStats(w.Name(), cfg, st, sim.Trace)
}

// dirOpts bundles the directory-mode knobs.
type dirOpts struct {
	jobs          int
	constrain     bool
	slowPath      bool
	retries       int
	regionTimeout time.Duration
	minCoverage   float64
	confidence    float64
	mmap          bool
}

// loadPinball loads one pinball via the flag-selected path: the default
// copying loader, or the zero-copy mapped loader under -mmap.
func loadPinball(path string, mmap bool) (*pinball.Pinball, error) {
	if mmap {
		return pinball.LoadMapped(path)
	}
	return pinball.Load(path)
}

// simulateCheckpointDir simulates every region pinball in dir on a
// bounded worker pool — the checkpoint-driven parallel simulation of
// Section III-J: checkpoints make the regions independent, so they can
// be farmed out to as many workers as the host offers. Per-file lines
// print in name order regardless of which worker finished first.
//
// The sweep is fault-tolerant: a pinball that fails to load or simulate
// (after -retries attempts) is quarantined — reported and skipped — and
// the remaining checkpoints still complete. The exit status is nonzero
// only when the surviving fraction falls below -min-coverage.
func simulateCheckpointDir(w *looppoint.Workload, cfg timing.Config, dir string, opts dirOpts) {
	files, err := filepath.Glob(filepath.Join(dir, "*.pinball"))
	if err != nil {
		fail(err)
	}
	if len(files) == 0 {
		fail(fmt.Errorf("no *.pinball files in %s", dir))
	}
	sort.Strings(files)
	width := opts.jobs
	if width <= 0 {
		width = pool.DefaultWidth()
	}
	fmt.Fprintf(os.Stderr, "lpsim: simulating %d checkpoints with %d workers\n", len(files), width)

	type regionRun struct {
		st   *timing.Stats
		host time.Duration
	}
	wall := time.Now()

	// Stage 1: load every pinball concurrently on the same worker width
	// (decode is CPU work worth parallelizing since the slab fast path;
	// -mmap additionally skips the file-buffer copy). A pinball that
	// fails to load is quarantined here and skipped by the simulate
	// stage; results stay index-ordered, so reports print in name order
	// no matter which worker finished first.
	type loaded struct {
		pb   *pinball.Pinball
		host time.Duration
	}
	pbs, loadErrs, err := pool.MapWith(context.Background(), len(files), pool.Options{
		Width:    width,
		Attempts: opts.retries,
		Degraded: true,
	},
		func(_ context.Context, i int) (loaded, error) {
			start := time.Now()
			pb, err := loadPinball(files[i], opts.mmap)
			if err != nil {
				return loaded{}, err
			}
			if pb.NumThreads != w.Threads() {
				return loaded{}, fmt.Errorf("%s: recorded with %d threads, program built with %d",
					files[i], pb.NumThreads, w.Threads())
			}
			return loaded{pb: pb, host: time.Since(start)}, nil
		})
	if err != nil {
		fail(err)
	}

	// Stage 2: simulate the surviving checkpoints. Each worker reuses
	// one Simulator across all the regions it draws (timing-state
	// arenas); the identity tests pin reused reports byte-identical to
	// fresh construction at every width.
	sims := &sync.Pool{}
	getSim := func() (*timing.Simulator, error) {
		if v := sims.Get(); v != nil {
			sim := v.(*timing.Simulator)
			if err := sim.Reset(w.App.Prog); err == nil {
				return sim, nil
			}
		}
		return timing.New(cfg, w.App.Prog)
	}
	runs, errs, err := pool.MapWith(context.Background(), len(files), pool.Options{
		Width:       width,
		Attempts:    opts.retries,
		ItemTimeout: opts.regionTimeout,
		Degraded:    true,
	},
		func(_ context.Context, i int) (regionRun, error) {
			if loadErrs[i] != nil {
				return regionRun{}, loadErrs[i]
			}
			if err := faults.Check("lpsim.region"); err != nil {
				return regionRun{}, err
			}
			start := time.Now()
			sim, err := getSim()
			if err != nil {
				return regionRun{}, err
			}
			defer sims.Put(sim)
			sim.SlowPath = opts.slowPath
			var st *timing.Stats
			if opts.constrain {
				st, err = sim.SimulateConstrained(pbs[i].pb)
			} else {
				st, err = sim.SimulateCheckpoint(pbs[i].pb)
			}
			if err != nil {
				return regionRun{}, fmt.Errorf("%s: %w", files[i], err)
			}
			return regionRun{st: st, host: pbs[i].host + time.Since(start)}, nil
		})
	if err != nil {
		fail(err)
	}
	elapsed := time.Since(wall)

	var serial time.Duration
	var insns uint64
	var cycles, seconds float64
	var quarantined int
	var ipcs []float64
	for i, r := range runs {
		if errs[i] != nil {
			quarantined++
			fmt.Printf("%-32s QUARANTINED: %v\n", filepath.Base(files[i]), errs[i])
			continue
		}
		serial += r.host
		insns += r.st.Instructions
		cycles += r.st.Cycles
		seconds += r.st.RuntimeSeconds()
		ipcs = append(ipcs, r.st.IPC())
		fmt.Printf("%-32s %12d insns  IPC %6.3f  runtime %.6f s  [host %v]\n",
			filepath.Base(files[i]), r.st.Instructions, r.st.IPC(),
			r.st.RuntimeSeconds(), r.host.Round(time.Millisecond))
	}
	fmt.Printf("\n%d checkpoints of %s on %d-core %v system, %d workers:\n",
		len(runs)-quarantined, w.Name(), cfg.Cores, cfg.Kind, width)
	fmt.Printf("  instructions   %d\n", insns)
	fmt.Printf("  cycles         %.0f\n", cycles)
	fmt.Printf("  region runtime %.6f s @ %.2f GHz (summed)\n", seconds, cfg.FreqGHz)
	if len(ipcs) >= 2 && opts.confidence > 0 && opts.confidence < 1 {
		iv := stats.MeanInterval(ipcs, opts.confidence)
		fmt.Printf("  IPC per ckpt   %.3f ± %.3f (%.0f%% CI over %d checkpoints)\n",
			iv.Mean, iv.HalfWidth, opts.confidence*100, len(ipcs))
	}
	if elapsed > 0 {
		fmt.Printf("  host wall      %v (serial-equivalent %v, speedup %.2fx)\n",
			elapsed.Round(time.Millisecond), serial.Round(time.Millisecond),
			float64(serial)/float64(elapsed))
	}
	if quarantined > 0 {
		coverage := float64(len(files)-quarantined) / float64(len(files))
		fmt.Printf("  quarantined    %d of %d checkpoints (coverage %.1f%%)\n",
			quarantined, len(files), coverage*100)
		if coverage < opts.minCoverage {
			fail(fmt.Errorf("coverage %.1f%% below -min-coverage %.1f%%",
				coverage*100, opts.minCoverage*100))
		}
	}
}

func printStats(label string, cfg timing.Config, st *timing.Stats, trace *timing.IPCTrace) {
	fmt.Printf("%s on %d-core %v system:\n", label, cfg.Cores, cfg.Kind)
	fmt.Printf("  instructions  %d\n", st.Instructions)
	fmt.Printf("  cycles        %.0f\n", st.Cycles)
	fmt.Printf("  runtime       %.6f s @ %.2f GHz\n", st.RuntimeSeconds(), cfg.FreqGHz)
	fmt.Printf("  IPC           %.3f\n", st.IPC())
	fmt.Printf("  branch MPKI   %.3f (%d/%d)\n", st.BranchMPKI(), st.BranchMisses, st.Branches)
	fmt.Printf("  L1D MPKI      %.3f\n", st.L1DMPKI())
	fmt.Printf("  L2 MPKI       %.3f\n", st.L2MPKI())
	fmt.Printf("  L3 MPKI       %.3f\n", st.L3MPKI())
	fmt.Printf("  coherence inv %d, futex waits %d\n", st.CoherenceInvalidations, st.FutexWaits)
	if total := st.Stack.Total(); total > 0 {
		fmt.Println("  CPI stack (share of core-busy cycles):")
		for _, c := range []struct {
			name string
			v    float64
		}{
			{"base", st.Stack.Base}, {"ifetch", st.Stack.Ifetch},
			{"memory", st.Stack.Memory}, {"branch", st.Stack.Branch},
			{"compute", st.Stack.Compute}, {"sync", st.Stack.Sync},
		} {
			fmt.Printf("    %-8s %6.2f%%\n", c.name, c.v/total*100)
		}
	}
	if trace != nil {
		fmt.Println("IPC trace:")
		for _, s := range trace.Samples {
			fmt.Printf("  %12d %8.0f %.3f\n", s.Instructions, s.Cycles, s.IPC)
		}
	}
}

func parseMarker(s string, def bbv.Marker) (bbv.Marker, error) {
	if s == "" {
		return def, nil
	}
	pc, count, err := parsePair(s)
	if err != nil {
		return bbv.Marker{}, err
	}
	return bbv.Marker{PC: pc, Count: count}, nil
}

func parsePair(s string) (uint64, uint64, error) {
	parts := strings.SplitN(s, ":", 2)
	if len(parts) != 2 {
		return 0, 0, fmt.Errorf("want a:b, got %q", s)
	}
	a, err := strconv.ParseUint(strings.TrimPrefix(parts[0], "0x"), pickBase(parts[0]), 64)
	if err != nil {
		return 0, 0, err
	}
	b, err := strconv.ParseUint(parts[1], 10, 64)
	if err != nil {
		return 0, 0, err
	}
	return a, b, nil
}

func pickBase(s string) int {
	if strings.HasPrefix(s, "0x") {
		return 16
	}
	return 10
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "lpsim: %v\n", err)
	os.Exit(1)
}
