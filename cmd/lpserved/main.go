// Command lpserved serves the sampling pipeline as a resilient daemon:
// profiling/clustering/simulation jobs arrive as HTTP/JSON, run on the
// shared memoizing evaluator, and are protected by the internal/serve
// stack — admission control with a bounded queue and 429 load shedding,
// per-class circuit breakers, per-request deadlines, a server-wide
// retry budget, and graceful SIGTERM drain that checkpoints unfinished
// jobs for resubmission.
//
//	lpserved -quick -slice 2000            # fast smoke configuration
//	lpserved -addr 127.0.0.1:0             # ephemeral port, printed at boot
//	curl localhost:8347/readyz
//	curl -d '{"class":"analyze","app":"npb-cg","input":"test"}' localhost:8347/v1/jobs
//
// Endpoints: GET /healthz (liveness + counters + breaker states),
// GET /readyz (flips to 503 the moment drain starts), GET /v1/stats
// (bare counter snapshot, including the durable-progress and recovery
// counters), POST /v1/jobs (synchronous; the response is the job's
// result or a typed outcome). On SIGTERM/SIGINT the daemon stops
// admitting, drains in-flight work up to -drain-deadline, checkpoints
// whatever could not finish to -pending, and exits 0.
//
// Crash recovery: with -progress-dir set, analysis epochs and finished
// region simulations checkpoint durably as jobs run, and at boot the
// previous process's -pending checkpoint is resubmitted automatically —
// a kill -9 mid-job costs at most one epoch of lost work.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"looppoint/internal/core"
	"looppoint/internal/faults"
	"looppoint/internal/harness"
	"looppoint/internal/serve"
	"looppoint/internal/workloads"
)

func main() {
	var (
		addr = flag.String("addr", "127.0.0.1:8347", "listen address (port 0 picks an ephemeral port, printed at boot)")

		maxInflight = flag.Int("max-inflight", 0, "maximum concurrently running jobs (0 = one per CPU)")
		queueDepth  = flag.Int("queue-depth", 0, "admitted-but-waiting job bound; beyond it requests are shed with 429 (0 = 2×max-inflight)")
		deadline    = flag.Duration("deadline", serve.DefaultDeadline, "per-request deadline when the client sets none")
		maxDeadline = flag.Duration("max-deadline", serve.DefaultMaxDeadline, "cap on client-requested deadlines")
		drainDL     = flag.Duration("drain-deadline", serve.DefaultDrainDeadline, "SIGTERM drain bound before unfinished jobs are cancelled and checkpointed")
		pending     = flag.String("pending", "lpserved.pending.jsonl", "drain checkpoint file for jobs the daemon gave up on (empty disables); resubmitted at next boot")

		progressDir   = flag.String("progress-dir", "", "durable mid-job checkpoint directory: analysis epochs and finished region simulations persist here, and a restarted daemon resumes them instead of redoing the work (empty disables)")
		progressEvery = flag.Uint64("progress-every", 0, "durable-epoch length in schedule steps (0 = the analysis shard width)")

		retryBudget = flag.Float64("retry-budget", serve.DefaultRetryBudget, "maximum banked retry tokens (negative disables job retries)")
		retryRatio  = flag.Float64("retry-ratio", serve.DefaultRetryRatio, "retry tokens earned per admitted job")
		maxRetries  = flag.Int("max-retries", serve.DefaultMaxRetries, "cap on client-requested extra attempts per job")

		brFailures = flag.Int("breaker-failures", serve.DefaultFailureThreshold, "consecutive failures that trip a job class's circuit breaker")
		brOpen     = flag.Duration("breaker-open", serve.DefaultOpenFor, "how long a tripped breaker holds open before probing")
		brProbes   = flag.Int("breaker-probes", serve.DefaultHalfOpenProbes, "half-open probe slots (and successes required to close)")

		quick    = flag.Bool("quick", false, "use representative workload subsets")
		jobs     = flag.Int("j", 0, "worker-pool width inside each evaluation (0 = one worker per CPU)")
		slice    = flag.Uint64("slice", 0, "override the per-thread slice unit (0 = default)")
		input    = flag.String("input", "", "override every job's input class (e.g. test) — smoke runs only")
		slowPath = flag.Bool("slowpath", false, "force the per-instruction reference engine")
		resume   = flag.String("resume", "", "evaluator resume journal: completed evaluations persist across restarts")
		degraded = flag.Bool("degraded", false, "tolerate per-region simulation failures inside evaluations")
		retries  = flag.Int("retries", 1, "attempts per region simulation inside an evaluation")
		verbose  = flag.Bool("v", false, "log evaluator progress to stderr")
	)
	flag.Parse()

	if plan, err := faults.FromEnv(); err != nil {
		fmt.Fprintf(os.Stderr, "lpserved: %v\n", err)
		os.Exit(1)
	} else if plan != nil {
		faults.Enable(plan)
	}

	progress := &core.ProgressStats{}
	opts := harness.Options{
		Quick:         *quick,
		Parallelism:   *jobs,
		SliceUnit:     *slice,
		InputOverride: workloads.InputClass(*input),
		SlowPath:      *slowPath,
		Resume:        *resume,
		Degraded:      *degraded,
		Retries:       *retries,
		ProgressDir:   *progressDir,
		ProgressEvery: *progressEvery,
		Progress:      progress,
	}
	if *verbose {
		opts.Log = os.Stderr
	}
	e := harness.NewEvaluator(opts)

	srv := serve.New(serve.Config{
		MaxInflight:     *maxInflight,
		QueueDepth:      *queueDepth,
		DefaultDeadline: *deadline,
		MaxDeadline:     *maxDeadline,
		DrainDeadline:   *drainDL,
		MaxRetries:      *maxRetries,
		RetryBudget:     *retryBudget,
		RetryRatio:      *retryRatio,
		Breaker: serve.BreakerOpts{
			FailureThreshold: *brFailures,
			OpenFor:          *brOpen,
			HalfOpenProbes:   *brProbes,
		},
		PendingPath: *pending,
		Progress:    progress,
		Log:         os.Stderr,
	}, serve.EvaluatorRunner(e))
	srv.Start()

	// Boot-time crash recovery: jobs the previous process checkpointed at
	// drain (or was killed holding) are re-enqueued before the listener
	// opens, and the consumed checkpoint is renamed aside so a boot loop
	// cannot resubmit the same work twice. The evaluations themselves
	// resume from -progress-dir epochs, so re-running a killed job costs
	// at most one epoch of lost work.
	if *pending != "" {
		jobs, err := serve.LoadPendingCheckpoint(*pending)
		if err != nil && os.IsNotExist(err) {
			// No checkpoint: clean previous shutdown or first boot.
		} else {
			if err != nil {
				// Partial decode still yields the valid prefix; resubmit it.
				fmt.Fprintf(os.Stderr, "lpserved: pending checkpoint %s: %v (resubmitting the %d job(s) that decoded)\n",
					*pending, err, len(jobs))
			}
			accepted, rejected := srv.Resubmit(jobs)
			aside := *pending + ".resubmitted"
			if rerr := os.Rename(*pending, aside); rerr != nil && !os.IsNotExist(rerr) {
				fmt.Fprintf(os.Stderr, "lpserved: cannot move consumed checkpoint aside: %v\n", rerr)
			}
			fmt.Printf("lpserved: resubmitted=%d rejected=%d from %s (moved to %s)\n",
				accepted, rejected, *pending, aside)
		}
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "lpserved: %v\n", err)
		os.Exit(1)
	}
	// The smoke script (and any supervisor) parses this line for the
	// bound address, so -addr :0 is usable.
	fmt.Printf("lpserved: listening on http://%s\n", ln.Addr())

	hs := &http.Server{Handler: srv.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, os.Interrupt)
	select {
	case s := <-sig:
		fmt.Fprintf(os.Stderr, "lpserved: %v received, draining\n", s)
	case err := <-serveErr:
		fmt.Fprintf(os.Stderr, "lpserved: serve failed: %v\n", err)
		os.Exit(1)
	}

	// Drain first — handlers of in-flight jobs must still be able to
	// write their responses — then close the listener and connections.
	ds := srv.Drain()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	hs.Shutdown(ctx)
	cancel()
	if err := e.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "lpserved: evaluator close: %v\n", err)
	}
	fmt.Printf("lpserved: drained clean=%v journaled_queued=%d journaled_running=%d leaked_workers=%d\n",
		ds.Clean, ds.JournaledQueued, ds.JournaledRunning, ds.LeakedWorkers)
	if !ds.Clean && ds.PendingCheckpoint != "" {
		fmt.Printf("lpserved: unfinished jobs checkpointed to %s\n", ds.PendingCheckpoint)
	}
	os.Exit(0)
}
