// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (Section V), plus the Section II naive-SimPoint and
// Section V-A1 constrained-replay measurements and the DESIGN.md
// ablations.
//
// By default the benchmarks run on representative workload subsets
// (harness quick mode) so a full `go test -bench=.` pass completes in
// minutes; set LOOPPOINT_FULL=1 to evaluate the complete SPEC CPU2017 and
// NPB suites as the paper does. Results are printed through b.Log so the
// regenerated figure data appears in the benchmark output (run with
// -v or read the captured bench_output.txt).
package looppoint

import (
	"os"
	"runtime"
	"sync"
	"testing"
	"time"

	"looppoint/internal/harness"
	"looppoint/internal/workloads"
)

var (
	benchOnce sync.Once
	benchEval *harness.Evaluator
)

// evalForBench returns the evaluator shared by every benchmark so that
// experiments reusing the same application runs (Figures 5a, 7, 8) pay
// for them once, exactly as the paper's evaluation does.
func evalForBench() *harness.Evaluator {
	benchOnce.Do(func() {
		opts := harness.Options{Quick: os.Getenv("LOOPPOINT_FULL") == ""}
		benchEval = harness.NewEvaluator(opts)
	})
	return benchEval
}

type renderer interface{ Render() string }

// metricName turns a free-form label into a ReportMetric-safe unit.
func metricName(label, suffix string) string {
	var b []byte
	for _, r := range label {
		switch {
		case r == ' ' || r == '(' || r == ')' || r == ',' || r == '+':
			b = append(b, '_')
		default:
			b = append(b, string(r)...)
		}
	}
	return string(b) + "_" + suffix
}

func runFigure[T renderer](b *testing.B, fn func() (T, error)) T {
	b.Helper()
	var res T
	var err error
	for i := 0; i < b.N; i++ {
		res, err = fn()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.Log("\n" + res.Render())
	return res
}

// BenchmarkFig1EvaluationTime regenerates Figure 1: estimated evaluation
// time for full-detail, time-based, BarrierPoint, and LoopPoint
// methodologies across suite×input combinations at paper scale.
func BenchmarkFig1EvaluationTime(b *testing.B) {
	e := evalForBench()
	res := runFigure(b, e.Fig1)
	for _, row := range res.Rows {
		if row.LoopPoint > 0 {
			b.ReportMetric(row.FullDetail/row.LoopPoint, metricName(row.Label, "speedup_vs_full"))
		}
	}
}

// BenchmarkFig3ThreadShares regenerates Figure 3: per-thread instruction
// share per slice for a homogeneous and a heterogeneous application.
func BenchmarkFig3ThreadShares(b *testing.B) {
	e := evalForBench()
	runFigure(b, e.Fig3)
}

// BenchmarkFig4RegionIPC regenerates Figure 4: IPC over time for a full
// run versus a chosen representative region.
func BenchmarkFig4RegionIPC(b *testing.B) {
	e := evalForBench()
	res := runFigure(b, e.Fig4)
	b.ReportMetric(float64(len(res.FullTrace)), "full_trace_samples")
}

// BenchmarkFig5aPredictionError regenerates Figure 5a: SPEC train runtime
// prediction error under active and passive wait policies (paper: 2.33 %
// and 2.23 % average).
func BenchmarkFig5aPredictionError(b *testing.B) {
	e := evalForBench()
	res := runFigure(b, e.Fig5a)
	b.ReportMetric(res.AvgActive, "avg_err_active_pct")
	b.ReportMetric(res.AvgPassive, "avg_err_passive_pct")
}

// BenchmarkFig5bMicroarchPortability regenerates Figure 5b: the same
// looppoints simulated on an in-order core.
func BenchmarkFig5bMicroarchPortability(b *testing.B) {
	e := evalForBench()
	res := runFigure(b, e.Fig5b)
	b.ReportMetric(res.AvgActive, "avg_err_active_pct")
	b.ReportMetric(res.AvgPassive, "avg_err_passive_pct")
}

// BenchmarkFig6NPBThreads regenerates Figure 6: NPB class C errors at 8
// and 16 threads (paper: 2.87 % and 1.78 % average).
func BenchmarkFig6NPBThreads(b *testing.B) {
	e := evalForBench()
	res := runFigure(b, e.Fig6)
	b.ReportMetric(res.Avg8, "avg_err_8t_pct")
	b.ReportMetric(res.Avg16, "avg_err_16t_pct")
}

// BenchmarkFig7Metrics regenerates Figures 7a–7c: cycle error and
// branch/L2 MPKI differences.
func BenchmarkFig7Metrics(b *testing.B) {
	e := evalForBench()
	res := runFigure(b, e.Fig7)
	var cyc, l2 float64
	for _, r := range res.Rows {
		cyc += r.CyclesErrPct
		l2 += r.L2MPKIDiff
	}
	if n := float64(len(res.Rows)); n > 0 {
		b.ReportMetric(cyc/n, "avg_cycles_err_pct")
		b.ReportMetric(l2/n, "avg_l2_mpki_diff")
	}
}

// BenchmarkFig8SpeedupsTrain regenerates Figure 8: theoretical and actual,
// serial and parallel speedups on SPEC train (active).
func BenchmarkFig8SpeedupsTrain(b *testing.B) {
	e := evalForBench()
	res := runFigure(b, e.Fig8)
	var ts, tp float64
	for _, r := range res.Rows {
		ts += r.TheoreticalSerial
		tp += r.TheoreticalParallel
	}
	if n := float64(len(res.Rows)); n > 0 {
		b.ReportMetric(ts/n, "avg_theoretical_serial_x")
		b.ReportMetric(tp/n, "avg_theoretical_parallel_x")
	}
}

// BenchmarkFig9RefSpeedups regenerates Figure 9: LoopPoint vs BarrierPoint
// theoretical speedup on SPEC ref inputs; BarrierPoint is inapplicable to
// the barrier-free 657.xz_s workloads.
func BenchmarkFig9RefSpeedups(b *testing.B) {
	e := evalForBench()
	res := runFigure(b, e.Fig9)
	var lp float64
	inapplicable := 0
	for _, r := range res.Rows {
		lp += r.LPParallel
		if !r.BPApplicable {
			inapplicable++
		}
	}
	if n := float64(len(res.Rows)); n > 0 {
		b.ReportMetric(lp/n, "avg_looppoint_parallel_x")
	}
	b.ReportMetric(float64(inapplicable), "barrierpoint_inapplicable_apps")
}

// BenchmarkFig10NPBSpeedups regenerates Figure 10: NPB actual speedups at
// 8 and 16 cores.
func BenchmarkFig10NPBSpeedups(b *testing.B) {
	e := evalForBench()
	res := runFigure(b, e.Fig10)
	var p8, p16 float64
	for _, r := range res.Rows {
		p8 += r.Parallel8
		p16 += r.Parallel16
	}
	if n := float64(len(res.Rows)); n > 0 {
		b.ReportMetric(p8/n, "avg_parallel_8c_x")
		b.ReportMetric(p16/n, "avg_parallel_16c_x")
	}
}

// BenchmarkTables regenerates Tables I–III (configuration and workload
// attribute tables).
func BenchmarkTables(b *testing.B) {
	var out string
	for i := 0; i < b.N; i++ {
		out = harness.TableI() + "\n" + harness.TableII() + "\n" + harness.TableIII()
	}
	b.Log("\n" + out)
}

// BenchmarkNaiveSimPointError regenerates the Section II motivating
// measurement: the naive instruction-count SimPoint adaptation versus
// LoopPoint (paper: naive averages 25 % error on active runs, up to
// 68.44 %).
func BenchmarkNaiveSimPointError(b *testing.B) {
	e := evalForBench()
	res := runFigure(b, e.NaiveSimPoint)
	var naive, lp float64
	for _, r := range res.Rows {
		naive += r.NaiveErrPct
		lp += r.LoopPointErr
	}
	if n := float64(len(res.Rows)); n > 0 {
		b.ReportMetric(naive/n, "avg_naive_err_pct")
		b.ReportMetric(lp/n, "avg_looppoint_err_pct")
	}
}

// BenchmarkConstrainedReplayError regenerates the Section V-A1
// observation: constrained pinball replay misleads timing (paper: up to
// 19.6 % on 657.xz_s.2) while unconstrained sampling stays accurate.
func BenchmarkConstrainedReplayError(b *testing.B) {
	e := evalForBench()
	res := runFigure(b, e.Constrained)
	for _, r := range res.Rows {
		b.ReportMetric(r.ConstrainedErrPct, metricName(r.App, "constrained_err_pct"))
	}
}

// Ablation benchmarks for the design choices DESIGN.md calls out.

func benchAblation(b *testing.B, fn func() (*harness.AblationResult, error)) {
	res := runFigure(b, fn)
	for _, row := range res.Rows {
		b.ReportMetric(row.ErrPct, metricName(row.Config, "err_pct"))
	}
}

// BenchmarkAblationSpinFilter toggles spin-loop filtering (off should
// inflate error on active-wait runs).
func BenchmarkAblationSpinFilter(b *testing.B) {
	benchAblation(b, evalForBench().AblationSpinFilter)
}

// BenchmarkAblationGlobalBBV compares concatenated vs summed per-thread
// BBVs on the heterogeneous 657.xz_s.2.
func BenchmarkAblationGlobalBBV(b *testing.B) {
	benchAblation(b, evalForBench().AblationGlobalBBV)
}

// BenchmarkAblationFlowControl toggles flow control during analysis.
func BenchmarkAblationFlowControl(b *testing.B) {
	benchAblation(b, evalForBench().AblationFlowControl)
}

// BenchmarkAblationSliceSize sweeps the per-thread slice unit.
func BenchmarkAblationSliceSize(b *testing.B) {
	benchAblation(b, evalForBench().AblationSliceSize)
}

// BenchmarkAblationMaxK sweeps the maximum cluster count.
func BenchmarkAblationMaxK(b *testing.B) {
	benchAblation(b, evalForBench().AblationMaxK)
}

// BenchmarkAblationWarmup compares warmup strategies.
func BenchmarkAblationWarmup(b *testing.B) {
	benchAblation(b, evalForBench().AblationWarmup)
}

// BenchmarkAblationPrefetcher evaluates unchanged looppoints on systems
// with a hardware prefetcher the analysis never saw.
func BenchmarkAblationPrefetcher(b *testing.B) {
	benchAblation(b, evalForBench().AblationPrefetcher)
}

// BenchmarkAblationVariableSlices compares fixed against phase-aligned
// variable-length slicing.
func BenchmarkAblationVariableSlices(b *testing.B) {
	benchAblation(b, evalForBench().AblationVariableSlices)
}

// BenchmarkParallelHostSpeedup measures the host-side speedup of the
// bounded worker pool: the same Figure 5a evaluation runs on fresh
// evaluators at -j 1 and -j GOMAXPROCS, and the wall-clock ratio is
// reported (the paper's Table III parallel-speedup column is the
// simulated-workload analogue; this is the harness's own). The rendered
// results are byte-identical at both widths — only host time changes.
func BenchmarkParallelHostSpeedup(b *testing.B) {
	width := runtime.GOMAXPROCS(0)
	if width < 2 {
		width = 2 // single-CPU host: still exercises the pool, speedup ~1x
	}
	run := func(j int) time.Duration {
		e := harness.NewEvaluator(harness.Options{
			Quick: true, SliceUnit: 2000, Parallelism: j,
			InputOverride: workloads.InputTest,
		})
		start := time.Now()
		if _, err := e.Fig5a(); err != nil {
			b.Fatal(err)
		}
		return time.Since(start)
	}
	var serial, parallel time.Duration
	for i := 0; i < b.N; i++ {
		serial += run(1)
		parallel += run(width)
	}
	b.ReportMetric(serial.Seconds()/float64(b.N), "serial_s")
	b.ReportMetric(parallel.Seconds()/float64(b.N), "parallel_s")
	b.ReportMetric(float64(width), "workers")
	if parallel > 0 {
		b.ReportMetric(float64(serial)/float64(parallel), "host_parallel_speedup_x")
	}
}

// BenchmarkHybridMethodology measures the Section V-B hybrid: per
// application, pick whichever of LoopPoint and BarrierPoint yields the
// larger sample reduction.
func BenchmarkHybridMethodology(b *testing.B) {
	e := evalForBench()
	res := runFigure(b, e.Hybrid)
	var bp int
	for _, r := range res.Rows {
		if r.Choice == "barrierpoint" {
			bp++
		}
	}
	b.ReportMetric(float64(bp), "apps_choosing_barrierpoint")
}
