// Package dcfg builds Dynamic Control-Flow Graphs (paper Section III-D):
// control-flow graphs recovered from an actual execution in which every
// edge carries a trip count. Routine sub-graphs are analyzed with
// immediate dominators to find natural loops; loop headers residing in
// the program's main image become the candidate region markers used by
// the BBV profiler ((PC, count) pairs, Section III-C).
package dcfg

import (
	"fmt"
	"sort"

	"looppoint/internal/exec"
	"looppoint/internal/isa"
)

// EdgeKind classifies a dynamic edge.
type EdgeKind uint8

// Edge kinds.
const (
	EdgeBranch EdgeKind = iota // intra-routine control transfer
	EdgeCall                   // call site block -> callee entry
	EdgeReturn                 // callee exit block -> caller block
)

func (k EdgeKind) String() string {
	switch k {
	case EdgeBranch:
		return "branch"
	case EdgeCall:
		return "call"
	case EdgeReturn:
		return "return"
	}
	return "edge(?)"
}

// Edge is a dynamic control-flow edge with a trip count.
type Edge struct {
	From, To int // global block indices
	Kind     EdgeKind
	Count    uint64
}

// Node is a basic block observed during execution.
type Node struct {
	Block *isa.Block
	Execs uint64 // times the block was entered (all threads)
	// ThreadExecs is the per-thread entry count (index = thread ID).
	ThreadExecs []uint64
	Out         []*Edge
	In          []*Edge
}

// Symmetric reports whether every one of nthreads threads entered the
// block the same non-zero number of times — the signature of a worker
// loop all threads execute in lockstep episodes (e.g. a timestep header
// entered once per thread per step). Symmetric headers fire in N-hit
// bursts under natural scheduling, so only episode-leader hit counts
// (count ≡ 1 mod N) make stable (PC, count) region boundaries.
func (n *Node) Symmetric(nthreads int) bool {
	if len(n.ThreadExecs) < nthreads || nthreads < 2 {
		return false
	}
	first := n.ThreadExecs[0]
	if first == 0 {
		return false
	}
	for _, c := range n.ThreadExecs[:nthreads] {
		if c != first {
			return false
		}
	}
	return true
}

// Graph is the dynamic control-flow graph of one execution.
type Graph struct {
	Prog  *isa.Program
	Nodes map[int]*Node // keyed by global block index
	edges map[[2]int]*Edge
}

// Builder is an exec.Observer that constructs a Graph while a program
// runs (typically during constrained pinball replay, so the graph is
// reproducible).
type Builder struct {
	g   *Graph
	cur []*isa.Block   // last block per thread, nil right after a call
	stk [][]*isa.Block // per-thread caller-block stacks
}

// NewBuilder creates a DCFG builder for a machine with nthreads threads.
func NewBuilder(p *isa.Program, nthreads int) *Builder {
	return &Builder{
		g:   &Graph{Prog: p, Nodes: make(map[int]*Node), edges: make(map[[2]int]*Edge)},
		cur: make([]*isa.Block, nthreads),
		stk: make([][]*isa.Block, nthreads),
	}
}

// OnInstr implements exec.Observer.
func (b *Builder) OnInstr(ev *exec.Event) {
	tid := ev.Tid
	if ev.BlockEntry {
		n := b.g.node(ev.Block)
		n.Execs++
		for len(n.ThreadExecs) <= tid {
			n.ThreadExecs = append(n.ThreadExecs, 0)
		}
		n.ThreadExecs[tid]++
		if prev := b.cur[tid]; prev != nil && prev.Routine == ev.Block.Routine {
			b.g.addEdge(prev, ev.Block, EdgeBranch)
		}
		b.cur[tid] = ev.Block
	}
	switch ev.Instr.Op {
	case isa.OpCall:
		caller := b.cur[tid]
		callee := ev.Instr.Callee.Blocks[0]
		b.g.addEdge(caller, callee, EdgeCall)
		b.stk[tid] = append(b.stk[tid], caller)
		b.cur[tid] = nil // callee entry must not become an intra-routine edge
	case isa.OpRet:
		n := len(b.stk[tid])
		if n == 0 {
			return
		}
		caller := b.stk[tid][n-1]
		b.stk[tid] = b.stk[tid][:n-1]
		if b.cur[tid] != nil {
			b.g.addEdge(b.cur[tid], caller, EdgeReturn)
		}
		// Execution resumes mid-block in the caller; the next
		// intra-routine edge hangs off the call-site block.
		b.cur[tid] = caller
	}
}

// Graph returns the constructed graph.
func (b *Builder) Graph() *Graph { return b.g }

func (g *Graph) node(blk *isa.Block) *Node {
	n, ok := g.Nodes[blk.Global]
	if !ok {
		n = &Node{Block: blk}
		g.Nodes[blk.Global] = n
	}
	return n
}

func (g *Graph) addEdge(from, to *isa.Block, kind EdgeKind) {
	key := [2]int{from.Global, to.Global}
	e, ok := g.edges[key]
	if !ok {
		e = &Edge{From: from.Global, To: to.Global, Kind: kind}
		g.edges[key] = e
		g.node(from).Out = append(g.node(from).Out, e)
		g.node(to).In = append(g.node(to).In, e)
	}
	e.Count++
}

// Edges returns all edges sorted by (From, To) for stable iteration.
func (g *Graph) Edges() []*Edge {
	out := make([]*Edge, 0, len(g.edges))
	for _, e := range g.edges {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].From != out[j].From {
			return out[i].From < out[j].From
		}
		return out[i].To < out[j].To
	})
	return out
}

// NumNodes returns the number of executed basic blocks.
func (g *Graph) NumNodes() int { return len(g.Nodes) }

func (g *Graph) String() string {
	return fmt.Sprintf("dcfg{%d nodes, %d edges}", len(g.Nodes), len(g.edges))
}
