package dcfg

import (
	"reflect"
	"testing"

	"looppoint/internal/exec"
	"looppoint/internal/isa"
	"looppoint/internal/omp"
	"looppoint/internal/pinball"
	"looppoint/internal/testprog"
)

func shardRecordings(t *testing.T) map[string]struct {
	prog *isa.Program
	pb   *pinball.Pinball
} {
	t.Helper()
	out := map[string]struct {
		prog *isa.Program
		pb   *pinball.Pinball
	}{}
	for _, rec := range []struct {
		name string
		prog *isa.Program
		seed uint64
		flow uint64
	}{
		{"phased", testprog.Phased(4, 3, 40, omp.Passive), 5, 0},
		{"syscalls", testprog.WithSyscalls(4, 60, omp.Passive), 11, 16},
		{"active", testprog.Phased(3, 2, 20, omp.Active), 1, 8},
	} {
		pb, err := pinball.Record(rec.prog, rec.seed, rec.flow)
		if err != nil {
			t.Fatalf("%s: %v", rec.name, err)
		}
		out[rec.name] = struct {
			prog *isa.Program
			pb   *pinball.Pinball
		}{rec.prog, pb}
	}
	return out
}

// serialGraph builds the reference whole-run graph exactly the way
// core.Analyze does: a Builder attached per-instruction to a full
// constrained replay.
func serialGraph(t *testing.T, p *isa.Program, pb *pinball.Pinball) *Graph {
	t.Helper()
	db := NewBuilder(p, p.NumThreads())
	if _, err := pb.Replay(p, db); err != nil {
		t.Fatal(err)
	}
	return db.Graph()
}

// shardedGraph replays each checkpoint window with its own ShardBuilder
// and merges the shards in order.
func shardedGraph(t *testing.T, p *isa.Program, pb *pinball.Pinball, every uint64) *Graph {
	t.Helper()
	cks, err := pb.Checkpoints(p, every)
	if err != nil {
		t.Fatal(err)
	}
	total := pb.Schedule.Steps()
	shards := make([]*ShardBuilder, len(cks))
	for k, ck := range cks {
		width := total - ck.Step
		if k < len(cks)-1 {
			width = cks[k+1].Step - ck.Step
		}
		sb := NewShardBuilder(p.NumThreads())
		if _, err := pb.ReplayWindow(p, ck, width, sb); err != nil {
			t.Fatalf("every=%d window %d: %v", every, k, err)
		}
		shards[k] = sb
	}
	g, err := MergeShards(p, shards)
	if err != nil {
		t.Fatalf("every=%d: %v", every, err)
	}
	return g
}

// TestShardGraphIdentity pins the merged shard graph deep-equal to the
// serial builder's graph — node counts, per-thread counts, edge kinds,
// trip counts, and the first-occurrence Out/In adjacency order — across
// shard widths, including a width wider than the whole run (one shard:
// degenerates to serial) and a width that leaves a tiny tail shard.
func TestShardGraphIdentity(t *testing.T) {
	for name, w := range shardRecordings(t) {
		t.Run(name, func(t *testing.T) {
			want := serialGraph(t, w.prog, w.pb)
			total := w.pb.Schedule.Steps()
			for _, every := range []uint64{total / 2, total / 3, total / 5, total / 8, total - 1, total + 10, 64} {
				if every == 0 {
					continue
				}
				got := shardedGraph(t, w.prog, w.pb, every)
				if !reflect.DeepEqual(got, want) {
					t.Errorf("every=%d: merged shard graph differs from serial (%v vs %v)", every, got, want)
					continue
				}
				// Belt and braces: the sorted edge view agrees too.
				ge, we := got.Edges(), want.Edges()
				if len(ge) != len(we) {
					t.Fatalf("every=%d: %d edges, want %d", every, len(ge), len(we))
				}
				for i := range ge {
					if *ge[i] != *we[i] {
						t.Fatalf("every=%d: edge %d = %+v, want %+v", every, i, *ge[i], *we[i])
					}
				}
			}
		})
	}
}

// TestShardLoopsIdentity confirms loop detection — a pure function of
// the graph — agrees between the serial and merged-shard graphs, since
// StableMarkers derived from it steer the whole analysis.
func TestShardLoopsIdentity(t *testing.T) {
	for name, w := range shardRecordings(t) {
		t.Run(name, func(t *testing.T) {
			want := serialGraph(t, w.prog, w.pb).FindLoops()
			total := w.pb.Schedule.Steps()
			got := shardedGraph(t, w.prog, w.pb, total/4).FindLoops()
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("loops differ: %v vs %v", got, want)
			}
		})
	}
}

// TestShardBuilderObserverContract: the shard builder is attached as a
// plain per-instruction observer (not a BlockObserver), matching the
// serial Builder's tier so both see identical event streams.
func TestShardBuilderObserverContract(t *testing.T) {
	var o exec.Observer = NewShardBuilder(1)
	if _, ok := o.(exec.BlockObserver); ok {
		t.Fatal("ShardBuilder must not implement BlockObserver: it needs per-instruction events like the serial Builder")
	}
}
