package dcfg

import (
	"encoding/json"
	"reflect"
	"testing"
)

// TestGraphStateRoundTrip pins the serialized graph round-trip exact:
// State → JSON → RestoreGraph must deep-equal the original, including
// Node.Out/In insertion order and the unexported edge map.
func TestGraphStateRoundTrip(t *testing.T) {
	for name, w := range shardRecordings(t) {
		t.Run(name, func(t *testing.T) {
			g := serialGraph(t, w.prog, w.pb)
			data, err := json.Marshal(g.State())
			if err != nil {
				t.Fatal(err)
			}
			var st GraphState
			if err := json.Unmarshal(data, &st); err != nil {
				t.Fatal(err)
			}
			got, err := RestoreGraph(w.prog, &st)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, g) {
				t.Fatal("restored graph differs from original")
			}
		})
	}
}

// TestCarryStateRoundTripMidMerge interrupts a shard merge at every
// boundary: the partial graph and carry take a JSON round-trip, the
// remaining shards merge into both the original and the restored pair,
// and the final graphs must deep-equal each other and the serial one.
func TestCarryStateRoundTripMidMerge(t *testing.T) {
	for name, w := range shardRecordings(t) {
		t.Run(name, func(t *testing.T) {
			serial := serialGraph(t, w.prog, w.pb)
			total := w.pb.Schedule.Steps()
			every := total / 4
			if every == 0 {
				t.Skip("recording too short")
			}
			cks, err := w.pb.Checkpoints(w.prog, every)
			if err != nil {
				t.Fatal(err)
			}
			width := func(k int) uint64 {
				if k < len(cks)-1 {
					return cks[k+1].Step - cks[k].Step
				}
				return total - cks[k].Step
			}
			shards := make([]*ShardBuilder, len(cks))
			for k, ck := range cks {
				sb := NewShardBuilder(w.prog.NumThreads())
				if _, err := w.pb.ReplayWindow(w.prog, ck, width(k), sb); err != nil {
					t.Fatalf("window %d: %v", k, err)
				}
				shards[k] = sb
			}
			for cut := 1; cut < len(shards); cut++ {
				g1 := NewGraph(w.prog)
				carry1 := StartCarry(w.prog.NumThreads())
				for k := 0; k < cut; k++ {
					if carry1, err = shards[k].MergeInto(g1, carry1); err != nil {
						t.Fatal(err)
					}
				}
				blob, err := json.Marshal(struct {
					G *GraphState
					C CarryState
				}{g1.State(), carry1.State()})
				if err != nil {
					t.Fatal(err)
				}
				var dec struct {
					G *GraphState
					C CarryState
				}
				if err := json.Unmarshal(blob, &dec); err != nil {
					t.Fatal(err)
				}
				g2, err := RestoreGraph(w.prog, dec.G)
				if err != nil {
					t.Fatal(err)
				}
				carry2, err := RestoreCarry(w.prog, dec.C)
				if err != nil {
					t.Fatal(err)
				}
				for k := cut; k < len(shards); k++ {
					if carry1, err = shards[k].MergeInto(g1, carry1); err != nil {
						t.Fatal(err)
					}
					if carry2, err = shards[k].MergeInto(g2, carry2); err != nil {
						t.Fatal(err)
					}
				}
				if !reflect.DeepEqual(g2, g1) {
					t.Fatalf("cut=%d: resumed merge differs from uninterrupted merge", cut)
				}
				if !reflect.DeepEqual(g1, serial) {
					t.Fatalf("cut=%d: merged graph differs from serial graph", cut)
				}
			}
		})
	}
}

// TestStateRestoreValidation feeds hostile states and requires typed
// errors, never panics or silent acceptance.
func TestStateRestoreValidation(t *testing.T) {
	for _, w := range shardRecordings(t) {
		nblocks := len(w.prog.Blocks())
		bad := []GraphState{
			{Nodes: []NodeState{{Global: -1}}},
			{Nodes: []NodeState{{Global: nblocks}}},
			{Nodes: []NodeState{{Global: 0, Out: []int{0}}}},
			{Edges: []EdgeState{{From: 0, To: nblocks, Kind: 0}}},
			{Edges: []EdgeState{{From: 0, To: 0, Kind: 9}}},
			{Nodes: []NodeState{{Global: 0}, {Global: 0}}},
			{Edges: []EdgeState{{From: 0, To: 0}, {From: 0, To: 0}}},
		}
		for i, st := range bad {
			if _, err := RestoreGraph(w.prog, &st); err == nil {
				t.Fatalf("hostile graph state %d accepted", i)
			}
		}
		badCarry := []CarryState{
			{Cur: []int{0}},
			{Cur: []int{nblocks}, Stk: [][]int{nil}},
			{Cur: []int{-2}, Stk: [][]int{nil}},
			{Cur: []int{0}, Stk: [][]int{{nblocks + 4}}},
		}
		for i, st := range badCarry {
			if _, err := RestoreCarry(w.prog, st); err == nil {
				t.Fatalf("hostile carry state %d accepted", i)
			}
		}
		break
	}
}
