package dcfg

import (
	"sort"

	"looppoint/internal/isa"
)

// Loop is a natural loop recovered from the dynamic control-flow graph.
type Loop struct {
	Header *isa.Block
	// Body holds the global block indices of all blocks in the loop,
	// including the header.
	Body map[int]bool
	// Trips is the total back-edge traversal count (iterations beyond
	// the first, summed over all executions and threads).
	Trips uint64
	// Entries is the number of times the loop was entered from outside.
	Entries uint64
	// Depth is the nesting depth (1 = outermost).
	Depth int
}

// LoopTable indexes the loops of a graph by header block.
type LoopTable struct {
	Loops    []*Loop
	byHeader map[int]*Loop
}

// Lookup returns the loop headed by the block with the given global index.
func (lt *LoopTable) Lookup(global int) (*Loop, bool) {
	l, ok := lt.byHeader[global]
	return l, ok
}

// IsHeader reports whether the block with the given global index heads a loop.
func (lt *LoopTable) IsHeader(global int) bool {
	_, ok := lt.byHeader[global]
	return ok
}

// MainImageHeaders returns the header blocks that live in non-sync images,
// sorted by address — the valid region-marker candidates (paper III-B:
// "we end a region only at a loop entry that is present in the main image
// of the application").
func (lt *LoopTable) MainImageHeaders() []*isa.Block {
	var out []*isa.Block
	for _, l := range lt.Loops {
		if !l.Header.Routine.Image.Sync {
			out = append(out, l.Header)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Addr < out[j].Addr })
	return out
}

// StableMarkers selects the region-marker candidates among main-image
// loop headers: headers entered so frequently that thread-interleaving
// skew could move a (PC, count) boundary by a significant amount of work
// are excluded (the paper's stable-region requirement, Section V-A1 —
// inner loops iterated millions of times between synchronization points
// make poor markers; coarse outer-loop headers make stable ones).
//
// maxExecs is the largest acceptable total dynamic execution count for a
// marker block. If no header qualifies, all main-image headers are
// returned so that profiling can still proceed (the paper leaves
// automated stable-marker analysis to future work).
func (g *Graph) StableMarkers(lt *LoopTable, maxExecs uint64) []*isa.Block {
	var stable []*isa.Block
	for _, h := range lt.MainImageHeaders() {
		n := g.Nodes[h.Global]
		if n != nil && n.Execs <= maxExecs {
			stable = append(stable, h)
		}
	}
	if len(stable) == 0 {
		return lt.MainImageHeaders()
	}
	return stable
}

// FindLoops runs dominator analysis on each routine's executed sub-graph
// and returns the natural loops. Only intra-routine (branch) edges
// participate; call and return edges partition the graph into routines,
// mirroring how the paper's DCFG tool identifies routine boundaries from
// call edges before computing immediate dominators.
func (g *Graph) FindLoops() *LoopTable {
	lt := &LoopTable{byHeader: make(map[int]*Loop)}

	// Group executed nodes by routine.
	byRoutine := make(map[*isa.Routine][]*Node)
	for _, n := range g.Nodes {
		byRoutine[n.Block.Routine] = append(byRoutine[n.Block.Routine], n)
	}
	// Deterministic routine order.
	routines := make([]*isa.Routine, 0, len(byRoutine))
	for r := range byRoutine {
		routines = append(routines, r)
	}
	sort.Slice(routines, func(i, j int) bool {
		return routines[i].Blocks[0].Addr < routines[j].Blocks[0].Addr
	})

	for _, r := range routines {
		g.findRoutineLoops(r, lt)
	}
	sort.Slice(lt.Loops, func(i, j int) bool { return lt.Loops[i].Header.Addr < lt.Loops[j].Header.Addr })
	return lt
}

func (g *Graph) findRoutineLoops(r *isa.Routine, lt *LoopTable) {
	entry, ok := g.Nodes[r.Blocks[0].Global]
	if !ok {
		return // routine never executed from its entry
	}

	// Local numbering in reverse postorder over intra-routine edges.
	index := map[int]int{}
	var order []*Node // postorder
	var dfs func(n *Node)
	visited := map[int]bool{}
	dfs = func(n *Node) {
		visited[n.Block.Global] = true
		// Deterministic successor order.
		succs := intraSuccs(n, r)
		for _, s := range succs {
			sn := g.Nodes[s]
			if sn != nil && !visited[s] {
				dfs(sn)
			}
		}
		order = append(order, n)
	}
	dfs(entry)
	// Reverse postorder numbering.
	rpo := make([]*Node, len(order))
	for i, n := range order {
		rpo[len(order)-1-i] = n
	}
	for i, n := range rpo {
		index[n.Block.Global] = i
	}

	// Cooper–Harvey–Kennedy iterative dominators.
	idom := make([]int, len(rpo))
	for i := range idom {
		idom[i] = -1
	}
	idom[0] = 0
	changed := true
	for changed {
		changed = false
		for i := 1; i < len(rpo); i++ {
			n := rpo[i]
			newIdom := -1
			for _, e := range n.In {
				if e.Kind != EdgeBranch {
					continue
				}
				p, ok := index[e.From]
				if !ok || idom[p] == -1 {
					continue
				}
				if newIdom == -1 {
					newIdom = p
				} else {
					newIdom = intersect(idom, newIdom, p)
				}
			}
			if newIdom != -1 && idom[i] != newIdom {
				idom[i] = newIdom
				changed = true
			}
		}
	}

	dominates := func(a, b int) bool { // does rpo index a dominate rpo index b
		for b != 0 {
			if b == a {
				return true
			}
			if idom[b] == -1 {
				return false
			}
			b = idom[b]
		}
		return a == 0
	}

	// Back edges and natural loop bodies.
	loops := map[int]*Loop{} // header global -> loop
	for _, n := range rpo {
		for _, e := range n.Out {
			if e.Kind != EdgeBranch {
				continue
			}
			u, okU := index[e.From]
			v, okV := index[e.To]
			if !okU || !okV || !dominates(v, u) {
				continue
			}
			headerGlobal := rpo[v].Block.Global
			l, ok := loops[headerGlobal]
			if !ok {
				l = &Loop{Header: rpo[v].Block, Body: map[int]bool{headerGlobal: true}}
				loops[headerGlobal] = l
			}
			l.Trips += e.Count
			// Natural loop body: nodes reaching the back edge source
			// without passing through the header.
			stack := []int{e.From}
			for len(stack) > 0 {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				if l.Body[w] {
					continue
				}
				l.Body[w] = true
				wn := g.Nodes[w]
				for _, in := range wn.In {
					if in.Kind != EdgeBranch {
						continue
					}
					if _, ok := index[in.From]; !ok {
						continue
					}
					if !l.Body[in.From] {
						stack = append(stack, in.From)
					}
				}
			}
		}
	}

	// Entry counts: header in-edges from outside the body.
	for _, l := range loops {
		hn := g.Nodes[l.Header.Global]
		for _, e := range hn.In {
			if e.Kind == EdgeBranch && !l.Body[e.From] {
				l.Entries += e.Count
			}
		}
	}

	// Nesting depth: loop A nests in B if A's header is in B's body.
	hdrs := make([]int, 0, len(loops))
	for h := range loops {
		hdrs = append(hdrs, h)
	}
	sort.Ints(hdrs)
	for _, h := range hdrs {
		l := loops[h]
		l.Depth = 1
		for _, h2 := range hdrs {
			if h2 == h {
				continue
			}
			if loops[h2].Body[h] && len(loops[h2].Body) > len(l.Body) {
				l.Depth++
			}
		}
		lt.Loops = append(lt.Loops, l)
		lt.byHeader[h] = l
	}
}

func intraSuccs(n *Node, r *isa.Routine) []int {
	var out []int
	for _, e := range n.Out {
		if e.Kind == EdgeBranch {
			out = append(out, e.To)
		}
	}
	sort.Ints(out)
	return out
}

func intersect(idom []int, a, b int) int {
	for a != b {
		for a > b {
			a = idom[a]
		}
		for b > a {
			b = idom[b]
		}
	}
	return a
}
