package dcfg

import (
	"strings"
	"testing"
)

func TestWriteDOT(t *testing.T) {
	p, oHead, _, _ := buildNestedLoops(t, 3, 4, 2)
	g := runWithDCFG(t, p)
	lt := g.FindLoops()
	var sb strings.Builder
	if err := g.WriteDOT(&sb, lt); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.HasPrefix(out, "digraph dcfg {") || !strings.HasSuffix(strings.TrimSpace(out), "}") {
		t.Fatal("not a DOT document")
	}
	if !strings.Contains(out, "cluster_") {
		t.Error("no routine clusters")
	}
	if !strings.Contains(out, "lightblue") {
		t.Error("loop headers not highlighted")
	}
	if !strings.Contains(out, "style=dashed") {
		t.Error("sync image / call edges not styled")
	}
	// The outer header node must be present with its execution count.
	if !strings.Contains(out, "execs=") {
		t.Error("execution counts missing")
	}
	_ = oHead
	// Deterministic output.
	var sb2 strings.Builder
	if err := g.WriteDOT(&sb2, lt); err != nil {
		t.Fatal(err)
	}
	if sb.String() != sb2.String() {
		t.Error("DOT output not deterministic")
	}
}
