package dcfg

import (
	"fmt"

	"looppoint/internal/exec"
	"looppoint/internal/isa"
)

// Checkpoint-parallel DCFG construction. A window of a replay cannot
// know the serial builder's interleaving state at its start — each
// thread's previous block and its stack of caller blocks — so a
// ShardBuilder records that state *symbolically*: an edge source may be
// "whatever thread t's current block was at the shard boundary"
// (symStartCur) or "the d-th-from-top entry of thread t's caller stack
// at the boundary" (symStartStack). Merging resolves the symbols against
// the carry handed forward from the previous shard, applies the edge
// records in first-occurrence order (which is what fixes Node.Out/In
// order and each edge's Kind exactly as the serial builder would), and
// emits the carry for the next shard. The result is byte-identical to a
// serial Builder over the whole run — pinned by the shard identity
// tests across shard widths.

type symKind uint8

const (
	// symNil: definitely no previous block (right after a call).
	symNil symKind = iota
	// symKnown: a block observed inside this shard.
	symKnown
	// symStartCur: the serial builder's cur[tid] at the shard boundary.
	symStartCur
	// symStartStack: the depth-th entry from the top of the serial
	// builder's caller stack at the shard boundary (depth 1 = top).
	symStartStack
)

// sym is a possibly-symbolic reference to a basic block. It is
// comparable, so (from, to) pairs key the shard's edge records.
type sym struct {
	kind  symKind
	blk   *isa.Block // symKnown
	tid   int        // symStartCur, symStartStack
	depth int        // symStartStack
}

func known(b *isa.Block) sym { return sym{kind: symKnown, blk: b} }

// shardEdge is one (from, to) edge record: the kind of its first
// occurrence in the shard and the number of occurrences.
type shardEdge struct {
	from, to sym
	kind     EdgeKind
	count    uint64
}

type shardNode struct {
	blk         *isa.Block
	execs       uint64
	threadExecs []uint64
}

// ShardBuilder is an exec.Observer that builds the mergeable DCFG state
// of one replay window. It mirrors Builder.OnInstr exactly, except that
// edge sources reaching back across the window start stay symbolic and
// per-(from, to) counts are kept locally instead of in a shared graph.
type ShardBuilder struct {
	nodes  map[int]*shardNode
	edgeIx map[[2]sym]int
	edges  []*shardEdge
	cur    []sym
	stk    [][]sym
	// pops counts how deep this shard popped into the carry stack:
	// underflow pops consume depths 1, 2, 3, … sequentially.
	pops []int
}

// NewShardBuilder creates a shard builder for an nthreads-thread window.
func NewShardBuilder(nthreads int) *ShardBuilder {
	b := &ShardBuilder{
		nodes:  make(map[int]*shardNode),
		edgeIx: make(map[[2]sym]int),
		cur:    make([]sym, nthreads),
		stk:    make([][]sym, nthreads),
		pops:   make([]int, nthreads),
	}
	for tid := range b.cur {
		b.cur[tid] = sym{kind: symStartCur, tid: tid}
	}
	return b
}

// OnInstr implements exec.Observer. The structure is Builder.OnInstr
// with symbolic sources; the branch-edge same-routine check is applied
// inline for known sources and deferred to merge for symbolic ones.
func (b *ShardBuilder) OnInstr(ev *exec.Event) {
	tid := ev.Tid
	if ev.BlockEntry {
		n, ok := b.nodes[ev.Block.Global]
		if !ok {
			n = &shardNode{blk: ev.Block}
			b.nodes[ev.Block.Global] = n
		}
		n.execs++
		for len(n.threadExecs) <= tid {
			n.threadExecs = append(n.threadExecs, 0)
		}
		n.threadExecs[tid]++
		prev := b.cur[tid]
		switch prev.kind {
		case symKnown:
			if prev.blk.Routine == ev.Block.Routine {
				b.addEdge(prev, known(ev.Block), EdgeBranch)
			}
		case symStartCur, symStartStack:
			b.addEdge(prev, known(ev.Block), EdgeBranch)
		}
		b.cur[tid] = known(ev.Block)
	}
	switch ev.Instr.Op {
	case isa.OpCall:
		caller := b.cur[tid]
		callee := ev.Instr.Callee.Blocks[0]
		b.addEdge(caller, known(callee), EdgeCall)
		b.stk[tid] = append(b.stk[tid], caller)
		b.cur[tid] = sym{}
	case isa.OpRet:
		var caller sym
		if n := len(b.stk[tid]); n > 0 {
			caller = b.stk[tid][n-1]
			b.stk[tid] = b.stk[tid][:n-1]
		} else {
			b.pops[tid]++
			caller = sym{kind: symStartStack, tid: tid, depth: b.pops[tid]}
		}
		if b.cur[tid].kind != symNil {
			b.addEdge(b.cur[tid], caller, EdgeReturn)
		}
		b.cur[tid] = caller
	}
}

func (b *ShardBuilder) addEdge(from, to sym, kind EdgeKind) {
	key := [2]sym{from, to}
	if i, ok := b.edgeIx[key]; ok {
		b.edges[i].count++
		return
	}
	b.edgeIx[key] = len(b.edges)
	b.edges = append(b.edges, &shardEdge{from: from, to: to, kind: kind, count: 1})
}

// Carry is the serial builder's per-thread interleaving state at a
// shard boundary: the previous block and the caller-block stack of
// every thread. StartCarry (all nil, empty stacks) is the state at
// step 0; MergeInto returns the carry at the shard's end.
type Carry struct {
	cur []*isa.Block
	stk [][]*isa.Block
}

// StartCarry is the carry at the beginning of the run.
func StartCarry(nthreads int) Carry {
	return Carry{cur: make([]*isa.Block, nthreads), stk: make([][]*isa.Block, nthreads)}
}

func (c *Carry) resolve(s sym) (*isa.Block, error) {
	switch s.kind {
	case symNil:
		return nil, nil
	case symKnown:
		return s.blk, nil
	case symStartCur:
		return c.cur[s.tid], nil
	case symStartStack:
		st := c.stk[s.tid]
		if s.depth > len(st) {
			return nil, fmt.Errorf("dcfg: shard pops %d deep into a %d-deep carry stack (thread %d)",
				s.depth, len(st), s.tid)
		}
		return st[len(st)-s.depth], nil
	}
	return nil, fmt.Errorf("dcfg: unknown sym kind %d", s.kind)
}

// MergeInto applies the shard's node counts and edge records to g,
// resolving symbolic sources against the carry at the shard's start,
// and returns the carry at the shard's end. Records whose resolution
// shows the serial builder would not have recorded an edge (nil
// previous block, cross-routine branch) are skipped with exactly the
// serial rules; a resolution the serial builder could never produce
// (unresolved call site, over-deep return) is an error — the window
// diverged from the recording.
func (b *ShardBuilder) MergeInto(g *Graph, carry Carry) (Carry, error) {
	for _, sn := range b.nodes {
		n := g.node(sn.blk)
		n.Execs += sn.execs
		for len(n.ThreadExecs) < len(sn.threadExecs) {
			n.ThreadExecs = append(n.ThreadExecs, 0)
		}
		for tid, c := range sn.threadExecs {
			n.ThreadExecs[tid] += c
		}
	}
	for _, e := range b.edges {
		from, err := carry.resolve(e.from)
		if err != nil {
			return Carry{}, err
		}
		to, err := carry.resolve(e.to)
		if err != nil {
			return Carry{}, err
		}
		switch e.kind {
		case EdgeBranch:
			// The serial builder records a branch edge only from a non-nil
			// previous block in the same routine.
			if from == nil || to == nil || from.Routine != to.Routine {
				continue
			}
		case EdgeCall:
			if from == nil {
				return Carry{}, fmt.Errorf("dcfg: call edge with unresolved call site")
			}
		case EdgeReturn:
			if from == nil {
				continue // serial: cur == nil right after a call
			}
			if to == nil {
				return Carry{}, fmt.Errorf("dcfg: return edge with unresolved caller block")
			}
		}
		g.addEdgeCount(from, to, e.kind, e.count)
	}

	next := StartCarry(len(b.cur))
	for tid := range b.cur {
		cblk, err := carry.resolve(b.cur[tid])
		if err != nil {
			return Carry{}, err
		}
		next.cur[tid] = cblk
		base := carry.stk[tid]
		if b.pops[tid] > len(base) {
			return Carry{}, fmt.Errorf("dcfg: shard pops %d frames off a %d-deep carry stack (thread %d)",
				b.pops[tid], len(base), tid)
		}
		ns := append([]*isa.Block(nil), base[:len(base)-b.pops[tid]]...)
		for _, s := range b.stk[tid] {
			blk, err := carry.resolve(s)
			if err != nil {
				return Carry{}, err
			}
			ns = append(ns, blk)
		}
		next.stk[tid] = ns
	}
	return next, nil
}

// addEdgeCount is addEdge with an occurrence count: the first record to
// create a (from, to) edge fixes its Kind and its position in the
// endpoint nodes' Out/In order, exactly like repeated serial addEdge
// calls would.
func (g *Graph) addEdgeCount(from, to *isa.Block, kind EdgeKind, count uint64) {
	key := [2]int{from.Global, to.Global}
	e, ok := g.edges[key]
	if !ok {
		e = &Edge{From: from.Global, To: to.Global, Kind: kind}
		g.edges[key] = e
		g.node(from).Out = append(g.node(from).Out, e)
		g.node(to).In = append(g.node(to).In, e)
	}
	e.Count += count
}

// MergeShards chains per-window shard builders in schedule order into
// one whole-run graph, threading the carry across boundaries. The
// result deep-equals the graph a serial Builder produces over the same
// replay.
func MergeShards(p *isa.Program, shards []*ShardBuilder) (*Graph, error) {
	g := &Graph{Prog: p, Nodes: make(map[int]*Node), edges: make(map[[2]int]*Edge)}
	if len(shards) == 0 {
		return g, nil
	}
	carry := StartCarry(len(shards[0].cur))
	for k, sb := range shards {
		next, err := sb.MergeInto(g, carry)
		if err != nil {
			return nil, fmt.Errorf("dcfg: merging shard %d: %w", k, err)
		}
		carry = next
	}
	return g, nil
}
