package dcfg

import (
	"fmt"
	"io"
	"sort"
)

// WriteDOT renders the dynamic control-flow graph in Graphviz DOT format:
// nodes are executed basic blocks labeled with execution counts, edges
// carry trip counts, loop headers are highlighted, and routines group
// into clusters. Useful for inspecting why a loop was (or was not)
// chosen as a region marker.
func (g *Graph) WriteDOT(w io.Writer, lt *LoopTable) error {
	if _, err := fmt.Fprintln(w, "digraph dcfg {"); err != nil {
		return err
	}
	fmt.Fprintln(w, "  node [shape=box, fontsize=10];")

	// Group nodes by routine for clusters, deterministically.
	type routineNodes struct {
		name  string
		sync  bool
		nodes []*Node
	}
	byRoutine := map[string]*routineNodes{}
	var keys []string
	for _, n := range g.Nodes {
		r := n.Block.Routine
		key := r.Image.Name + "/" + r.Name
		rn, ok := byRoutine[key]
		if !ok {
			rn = &routineNodes{name: key, sync: r.Image.Sync}
			byRoutine[key] = rn
			keys = append(keys, key)
		}
		rn.nodes = append(rn.nodes, n)
	}
	sort.Strings(keys)

	cluster := 0
	for _, key := range keys {
		rn := byRoutine[key]
		sort.Slice(rn.nodes, func(i, j int) bool { return rn.nodes[i].Block.Addr < rn.nodes[j].Block.Addr })
		fmt.Fprintf(w, "  subgraph cluster_%d {\n    label=%q;\n", cluster, rn.name)
		if rn.sync {
			fmt.Fprintln(w, "    style=dashed;")
		}
		cluster++
		for _, n := range rn.nodes {
			attrs := ""
			if lt != nil && lt.IsHeader(n.Block.Global) {
				attrs = ", style=filled, fillcolor=lightblue"
			}
			fmt.Fprintf(w, "    n%d [label=\"%s\\nexecs=%d\"%s];\n",
				n.Block.Global, n.Block.Label, n.Execs, attrs)
		}
		fmt.Fprintln(w, "  }")
	}

	for _, e := range g.Edges() {
		style := ""
		switch e.Kind {
		case EdgeCall:
			style = ", style=dashed, color=gray"
		case EdgeReturn:
			style = ", style=dotted, color=gray"
		}
		fmt.Fprintf(w, "  n%d -> n%d [label=\"%d\"%s];\n", e.From, e.To, e.Count, style)
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}
