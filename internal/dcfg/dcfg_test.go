package dcfg

import (
	"testing"

	"looppoint/internal/exec"
	"looppoint/internal/isa"
)

// buildNestedLoops builds a single-threaded program with a doubly nested
// loop in the main image (outer×inner iterations) plus a helper routine
// containing a third loop in a sync image, called once per outer
// iteration.
func buildNestedLoops(t *testing.T, outer, inner, lib int64) (*isa.Program, *isa.Block, *isa.Block, *isa.Block) {
	t.Helper()
	p := isa.NewProgram("loops", 1)
	main := p.AddImage("main", false)
	libimg := p.AddImage("libsync", true)

	libRt := libimg.NewRoutine("lib_spin")
	lEntry := libRt.NewBlock("entry")
	lLoop := libRt.NewBlock("loop")
	lDone := libRt.NewBlock("done")
	lEntry.IMovI(10, 0)
	lEntry.Br(lLoop)
	lLoop.Pause()
	lLoop.IOpI(isa.OpIAdd, 10, 10, 1)
	lLoop.BrCondI(isa.CondLT, 10, lib, lLoop, lDone)
	lDone.Ret()

	r := main.NewRoutine("main")
	entry := r.NewBlock("entry")
	oHead := r.NewBlock("outer_head")
	iHead := r.NewBlock("inner_head")
	iBody := r.NewBlock("inner_body")
	oLatch := r.NewBlock("outer_latch")
	done := r.NewBlock("done")

	entry.IMovI(0, 0) // i
	entry.Br(oHead)
	oHead.IMovI(1, 0) // j
	oHead.Call(libRt)
	oHead.Br(iHead)
	iHead.BrCondI(isa.CondLT, 1, inner, iBody, oLatch)
	iBody.IOpI(isa.OpIAdd, 2, 2, 1)
	iBody.IOpI(isa.OpIAdd, 1, 1, 1)
	iBody.Br(iHead)
	oLatch.IOpI(isa.OpIAdd, 0, 0, 1)
	oLatch.BrCondI(isa.CondLT, 0, outer, oHead, done)
	done.Halt()
	p.SetEntry(0, r)
	if err := p.Link(); err != nil {
		t.Fatalf("Link: %v", err)
	}
	return p, oHead, iHead, lLoop
}

func runWithDCFG(t *testing.T, p *isa.Program) *Graph {
	t.Helper()
	m := exec.NewMachine(p, 1)
	b := NewBuilder(p, p.NumThreads())
	m.AddObserver(b)
	if err := m.Run(exec.RunOpts{}); err != nil {
		t.Fatalf("Run: %v", err)
	}
	return b.Graph()
}

func TestFindLoopsNested(t *testing.T) {
	p, oHead, iHead, lLoop := buildNestedLoops(t, 5, 7, 3)
	g := runWithDCFG(t, p)
	lt := g.FindLoops()

	ol, ok := lt.Lookup(oHead.Global)
	if !ok {
		t.Fatal("outer loop header not identified")
	}
	il, ok := lt.Lookup(iHead.Global)
	if !ok {
		t.Fatal("inner loop header not identified")
	}
	ll, ok := lt.Lookup(lLoop.Global)
	if !ok {
		t.Fatal("library loop header not identified")
	}

	// Trip counts: outer back edge taken outer-1 times... the latch
	// branches back while i < outer, so outer-1 back-edge trips after
	// the first entry; inner loop trips = outer * inner (iHead->iBody
	// is the loop-entry edge; back edge iBody->iHead runs inner times
	// per outer iteration).
	if ol.Trips != 4 {
		t.Errorf("outer trips = %d, want 4", ol.Trips)
	}
	if il.Trips != 5*7 {
		t.Errorf("inner trips = %d, want 35", il.Trips)
	}
	if ll.Trips != 5*2 {
		t.Errorf("lib trips = %d, want 10", ll.Trips)
	}

	// Nesting: inner loop body is contained in outer loop body.
	for blk := range il.Body {
		if !ol.Body[blk] {
			t.Errorf("inner-loop block %d not inside outer loop body", blk)
		}
	}
	if ol.Depth != 1 || il.Depth != 2 {
		t.Errorf("depths: outer=%d inner=%d, want 1, 2", ol.Depth, il.Depth)
	}

	// Marker candidates must exclude the sync-image loop.
	hdrs := lt.MainImageHeaders()
	for _, h := range hdrs {
		if h.Routine.Image.Sync {
			t.Errorf("sync-image header %s offered as marker", h)
		}
	}
	if len(hdrs) != 2 {
		t.Errorf("main-image headers = %d, want 2", len(hdrs))
	}
}

func TestHeaderDominatesBody(t *testing.T) {
	// Property: every natural-loop body block is reachable only through
	// its header — approximated here by checking the header is in the
	// body and all in-edges to body blocks (other than into the header)
	// come from within the body.
	p, _, _, _ := buildNestedLoops(t, 3, 4, 2)
	g := runWithDCFG(t, p)
	lt := g.FindLoops()
	if len(lt.Loops) == 0 {
		t.Fatal("no loops found")
	}
	for _, l := range lt.Loops {
		if !l.Body[l.Header.Global] {
			t.Errorf("loop %s: header not in body", l.Header)
		}
		for blk := range l.Body {
			if blk == l.Header.Global {
				continue
			}
			for _, e := range g.Nodes[blk].In {
				if e.Kind == EdgeBranch && !l.Body[e.From] {
					t.Errorf("loop %s: body block %d entered from outside (block %d)",
						l.Header, blk, e.From)
				}
			}
		}
	}
}

func TestEdgeCounts(t *testing.T) {
	p, _, iHead, _ := buildNestedLoops(t, 2, 3, 1)
	g := runWithDCFG(t, p)
	// The inner header is entered 2 (entries) + 2*3 (back edges) times.
	n := g.Nodes[iHead.Global]
	if n == nil {
		t.Fatal("inner header not in graph")
	}
	if n.Execs != 2+2*3 {
		t.Errorf("inner header execs = %d, want 8", n.Execs)
	}
	var total uint64
	for _, e := range n.In {
		if e.Kind == EdgeBranch {
			total += e.Count
		}
	}
	if total != n.Execs {
		t.Errorf("sum of in-edge counts %d != execs %d", total, n.Execs)
	}
}

func TestGraphDeterminism(t *testing.T) {
	p1, _, _, _ := buildNestedLoops(t, 4, 5, 2)
	p2, _, _, _ := buildNestedLoops(t, 4, 5, 2)
	g1 := runWithDCFG(t, p1)
	g2 := runWithDCFG(t, p2)
	e1, e2 := g1.Edges(), g2.Edges()
	if len(e1) != len(e2) {
		t.Fatalf("edge counts differ: %d vs %d", len(e1), len(e2))
	}
	for i := range e1 {
		if *e1[i] != *e2[i] {
			t.Errorf("edge %d differs: %+v vs %+v", i, e1[i], e2[i])
		}
	}
}

func TestCallEdgesDoNotCreateLoops(t *testing.T) {
	// A routine called repeatedly from a loop must not itself be
	// reported as a loop (its entry sees many call edges, but no
	// intra-routine back edge).
	p := isa.NewProgram("calls", 1)
	main := p.AddImage("main", false)
	callee := main.NewRoutine("leaf")
	cb := callee.NewBlock("entry")
	cb.IOpI(isa.OpIAdd, 5, 5, 1)
	cb.Ret()

	r := main.NewRoutine("main")
	entry := r.NewBlock("entry")
	loop := r.NewBlock("loop")
	done := r.NewBlock("done")
	entry.IMovI(0, 0)
	entry.Br(loop)
	loop.Call(callee)
	loop.IOpI(isa.OpIAdd, 0, 0, 1)
	loop.BrCondI(isa.CondLT, 0, 10, loop, done)
	done.Halt()
	p.SetEntry(0, r)
	if err := p.Link(); err != nil {
		t.Fatalf("Link: %v", err)
	}
	g := runWithDCFG(t, p)
	lt := g.FindLoops()
	if lt.IsHeader(cb.Global) {
		t.Error("callee entry misidentified as loop header")
	}
	if !lt.IsHeader(loop.Global) {
		t.Error("calling loop not identified")
	}
	l, _ := lt.Lookup(loop.Global)
	if l.Trips != 9 {
		t.Errorf("loop trips = %d, want 9", l.Trips)
	}
}

func TestNodeSymmetric(t *testing.T) {
	n := &Node{ThreadExecs: []uint64{4, 4, 4, 4}}
	if !n.Symmetric(4) {
		t.Error("equal non-zero counts not symmetric")
	}
	if n.Symmetric(5) {
		t.Error("missing thread counted as symmetric")
	}
	asym := &Node{ThreadExecs: []uint64{4, 4, 3, 4}}
	if asym.Symmetric(4) {
		t.Error("unequal counts counted as symmetric")
	}
	zero := &Node{ThreadExecs: []uint64{0, 0}}
	if zero.Symmetric(2) {
		t.Error("zero counts counted as symmetric")
	}
	single := &Node{ThreadExecs: []uint64{7}}
	if single.Symmetric(1) {
		t.Error("single-threaded block needs no episode restriction")
	}
}

func TestBuilderTracksPerThreadExecs(t *testing.T) {
	p, oHead, _, _ := buildNestedLoops(t, 3, 4, 2)
	g := runWithDCFG(t, p)
	n := g.Nodes[oHead.Global]
	if n == nil {
		t.Fatal("outer header missing")
	}
	var sum uint64
	for _, c := range n.ThreadExecs {
		sum += c
	}
	if sum != n.Execs {
		t.Errorf("per-thread execs sum %d != total %d", sum, n.Execs)
	}
}
