package dcfg

import (
	"fmt"
	"sort"

	"looppoint/internal/isa"
)

// Serializable snapshots of partial DCFG construction, for durable
// mid-analysis progress files. A Graph halfway through a shard merge and
// the Carry at the last merged boundary are together enough to resume
// merging where a crashed run stopped; restoring them into a fresh
// process must reproduce the exact in-memory structures, including the
// Node.Out/In insertion order the serial builder would have produced —
// downstream passes (loop finding, marker ranking) iterate those slices,
// so order is part of the byte-identity contract.
//
// Blocks are referenced by their global index, which is stable across
// processes for the same program; restore validates every index against
// the program and returns an error (the caller classifies it as
// corruption) rather than ever panicking on hostile input.

// NewGraph returns an empty graph ready for incremental shard merging
// (ShardBuilder.MergeInto) — the durable analysis loop builds its graph
// one epoch at a time instead of via MergeShards.
func NewGraph(p *isa.Program) *Graph {
	return &Graph{Prog: p, Nodes: make(map[int]*Node), edges: make(map[[2]int]*Edge)}
}

// EdgeState is one edge of a serialized graph.
type EdgeState struct {
	From, To int
	Kind     uint8
	Count    uint64
}

// NodeState is one node of a serialized graph. Out and In index into
// GraphState.Edges, preserving the insertion order of the live Node.
type NodeState struct {
	Global      int
	Execs       uint64
	ThreadExecs []uint64
	Out         []int
	In          []int
}

// GraphState is the serializable form of a Graph. Nodes are sorted by
// global block index; Edges are enumerated in per-node Out order, which
// covers every edge exactly once.
type GraphState struct {
	Nodes []NodeState
	Edges []EdgeState
}

// State captures the graph's serializable form. The state shares no
// structure with the live graph.
func (g *Graph) State() *GraphState {
	globals := make([]int, 0, len(g.Nodes))
	for gi := range g.Nodes {
		globals = append(globals, gi)
	}
	sort.Ints(globals)
	st := &GraphState{}
	ix := make(map[*Edge]int, len(g.edges))
	for _, gi := range globals {
		for _, e := range g.Nodes[gi].Out {
			ix[e] = len(st.Edges)
			st.Edges = append(st.Edges, EdgeState{From: e.From, To: e.To, Kind: uint8(e.Kind), Count: e.Count})
		}
	}
	for _, gi := range globals {
		n := g.Nodes[gi]
		ns := NodeState{
			Global:      gi,
			Execs:       n.Execs,
			ThreadExecs: append([]uint64(nil), n.ThreadExecs...),
		}
		for _, e := range n.Out {
			ns.Out = append(ns.Out, ix[e])
		}
		for _, e := range n.In {
			ns.In = append(ns.In, ix[e])
		}
		st.Nodes = append(st.Nodes, ns)
	}
	return st
}

// RestoreGraph rebuilds a live Graph from its serialized state,
// validating every block and edge reference against the program.
func RestoreGraph(p *isa.Program, st *GraphState) (*Graph, error) {
	blocks := p.Blocks()
	g := &Graph{Prog: p, Nodes: make(map[int]*Node, len(st.Nodes)), edges: make(map[[2]int]*Edge, len(st.Edges))}
	edges := make([]*Edge, len(st.Edges))
	for i, es := range st.Edges {
		if es.From < 0 || es.From >= len(blocks) || es.To < 0 || es.To >= len(blocks) {
			return nil, fmt.Errorf("dcfg: edge %d references block outside program (%d -> %d of %d)", i, es.From, es.To, len(blocks))
		}
		if EdgeKind(es.Kind) > EdgeReturn {
			return nil, fmt.Errorf("dcfg: edge %d has unknown kind %d", i, es.Kind)
		}
		key := [2]int{es.From, es.To}
		if _, dup := g.edges[key]; dup {
			return nil, fmt.Errorf("dcfg: duplicate edge %d -> %d in state", es.From, es.To)
		}
		e := &Edge{From: es.From, To: es.To, Kind: EdgeKind(es.Kind), Count: es.Count}
		edges[i] = e
		g.edges[key] = e
	}
	for _, ns := range st.Nodes {
		if ns.Global < 0 || ns.Global >= len(blocks) {
			return nil, fmt.Errorf("dcfg: node references block %d outside program of %d blocks", ns.Global, len(blocks))
		}
		if _, dup := g.Nodes[ns.Global]; dup {
			return nil, fmt.Errorf("dcfg: duplicate node %d in state", ns.Global)
		}
		n := &Node{
			Block:       blocks[ns.Global],
			Execs:       ns.Execs,
			ThreadExecs: append([]uint64(nil), ns.ThreadExecs...),
		}
		for _, ei := range ns.Out {
			if ei < 0 || ei >= len(edges) {
				return nil, fmt.Errorf("dcfg: node %d out-edge index %d outside %d edges", ns.Global, ei, len(edges))
			}
			n.Out = append(n.Out, edges[ei])
		}
		for _, ei := range ns.In {
			if ei < 0 || ei >= len(edges) {
				return nil, fmt.Errorf("dcfg: node %d in-edge index %d outside %d edges", ns.Global, ei, len(edges))
			}
			n.In = append(n.In, edges[ei])
		}
		g.Nodes[ns.Global] = n
	}
	return g, nil
}

// CarryState is the serializable form of a Carry: blocks by global
// index, -1 for nil (no previous block).
type CarryState struct {
	Cur []int
	Stk [][]int
}

// State captures the carry's serializable form.
func (c Carry) State() CarryState {
	st := CarryState{Cur: make([]int, len(c.cur)), Stk: make([][]int, len(c.stk))}
	for i, b := range c.cur {
		st.Cur[i] = blockIndex(b)
	}
	for i, frames := range c.stk {
		if frames == nil {
			continue
		}
		s := make([]int, len(frames))
		for j, b := range frames {
			s[j] = blockIndex(b)
		}
		st.Stk[i] = s
	}
	return st
}

func blockIndex(b *isa.Block) int {
	if b == nil {
		return -1
	}
	return b.Global
}

// RestoreCarry rebuilds a Carry from its serialized state, validating
// block indices against the program.
func RestoreCarry(p *isa.Program, st CarryState) (Carry, error) {
	if len(st.Cur) != len(st.Stk) {
		return Carry{}, fmt.Errorf("dcfg: carry has %d cur entries but %d stacks", len(st.Cur), len(st.Stk))
	}
	blocks := p.Blocks()
	resolve := func(gi int) (*isa.Block, error) {
		if gi == -1 {
			return nil, nil
		}
		if gi < 0 || gi >= len(blocks) {
			return nil, fmt.Errorf("dcfg: carry references block %d outside program of %d blocks", gi, len(blocks))
		}
		return blocks[gi], nil
	}
	c := StartCarry(len(st.Cur))
	for i, gi := range st.Cur {
		b, err := resolve(gi)
		if err != nil {
			return Carry{}, err
		}
		c.cur[i] = b
	}
	for i, frames := range st.Stk {
		if frames == nil {
			continue
		}
		s := make([]*isa.Block, len(frames))
		for j, gi := range frames {
			b, err := resolve(gi)
			if err != nil {
				return Carry{}, err
			}
			s[j] = b
		}
		c.stk[i] = s
	}
	return c, nil
}
