// Package stats holds the survey-sampling statistics behind the
// stratified selection engine: sample moments, normal quantiles, and the
// stratified ratio-to-size estimator with finite-population-corrected
// confidence intervals. The selection engines (internal/simpoint) decide
// *which* regions to simulate; this package turns the simulated sample
// back into a population estimate with error bars, and the calibration
// suite (make test-stats) drives exactly these functions against
// populations with known ground truth.
package stats

import (
	"fmt"
	"math"
)

// Mean returns the arithmetic mean of xs (0 for an empty slice).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// SampleVariance returns the unbiased (n-1 denominator) sample variance
// of xs; 0 when fewer than two observations exist (a single draw carries
// no variance information).
func SampleVariance(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(n-1)
}

// NormalQuantile returns the standard normal inverse CDF at p ∈ (0, 1)
// (Acklam's rational approximation, |relative error| < 1.15e-9 — far
// below anything an empirical-coverage assertion can resolve).
func NormalQuantile(p float64) float64 {
	if math.IsNaN(p) || p <= 0 || p >= 1 {
		return math.NaN()
	}
	const (
		a1 = -3.969683028665376e+01
		a2 = 2.209460984245205e+02
		a3 = -2.759285104469687e+02
		a4 = 1.383577518672690e+02
		a5 = -3.066479806614716e+01
		a6 = 2.506628277459239e+00

		b1 = -5.447609879822406e+01
		b2 = 1.615858368580409e+02
		b3 = -1.556989798598866e+02
		b4 = 6.680131188771972e+01
		b5 = -1.328068155288572e+01

		c1 = -7.784894002430293e-03
		c2 = -3.223964580411365e-01
		c3 = -2.400758277161838e+00
		c4 = -2.549732539343734e+00
		c5 = 4.374664141464968e+00
		c6 = 2.938163982698783e+00

		d1 = 7.784695709041462e-03
		d2 = 3.224671290700398e-01
		d3 = 2.445134137142996e+00
		d4 = 3.754408661907416e+00

		plow  = 0.02425
		phigh = 1 - plow
	)
	switch {
	case p < plow:
		q := math.Sqrt(-2 * math.Log(p))
		return (((((c1*q+c2)*q+c3)*q+c4)*q+c5)*q + c6) /
			((((d1*q+d2)*q+d3)*q+d4)*q + 1)
	case p > phigh:
		q := math.Sqrt(-2 * math.Log(1-p))
		return -(((((c1*q+c2)*q+c3)*q+c4)*q+c5)*q + c6) /
			((((d1*q+d2)*q+d3)*q+d4)*q + 1)
	default:
		q := p - 0.5
		r := q * q
		return (((((a1*r+a2)*r+a3)*r+a4)*r+a5)*r + a6) * q /
			(((((b1*r+b2)*r+b3)*r+b4)*r+b5)*r + 1)
	}
}

// ZForLevel returns the two-sided critical value for a confidence level
// in (0, 1): z such that P(|N(0,1)| <= z) = level (1.96 for 0.95).
func ZForLevel(level float64) float64 {
	if !(level > 0 && level < 1) {
		return math.NaN()
	}
	return NormalQuantile(0.5 + level/2)
}

// Interval is a symmetric confidence interval.
type Interval struct {
	Mean      float64 `json:"mean"`
	HalfWidth float64 `json:"half_width"`
}

// Lo returns the lower bound.
func (iv Interval) Lo() float64 { return iv.Mean - iv.HalfWidth }

// Hi returns the upper bound.
func (iv Interval) Hi() float64 { return iv.Mean + iv.HalfWidth }

// Covers reports whether x lies inside the interval (inclusive).
func (iv Interval) Covers(x float64) bool { return x >= iv.Lo() && x <= iv.Hi() }

// String renders "mean ± half-width".
func (iv Interval) String() string {
	return fmt.Sprintf("%g ± %g", iv.Mean, iv.HalfWidth)
}

// StratumSample is one stratum's contribution to a stratified estimate:
// the stratum's total work, how many population units it holds, and the
// observed per-unit rates (metric per unit of work) of the sampled units.
type StratumSample struct {
	// Work is the stratum's total work W_h (e.g. summed filtered
	// instruction counts of every member region).
	Work float64
	// Size is the number of population units N_h in the stratum.
	Size int
	// Rates are the sampled units' per-work metric rates x_i / w_i.
	Rates []float64
}

// StratifiedEstimate computes the stratified ratio-to-size estimate of a
// population total and its confidence interval at the given level.
//
// Per stratum h the total is estimated as T̂_h = W_h · r̄_h, where r̄_h is
// the mean sampled rate; the estimator's variance uses the sample
// variance of the rates with a finite-population correction:
//
//	Var(T̂_h) = W_h² · (1 − n_h/N_h) · s²_h / n_h
//
// Strata sampled exhaustively (n_h = N_h) contribute zero variance, and
// strata with a single draw (n_h = 1) contribute zero *estimated*
// variance — their uncertainty is statistically invisible, which is why
// a pick-one-per-cluster selection yields a degenerate zero-width
// interval and the Report only carries intervals for engines that draw
// at least two units from some stratum (see DESIGN.md §12).
func StratifiedEstimate(strata []StratumSample, level float64) Interval {
	z := ZForLevel(level)
	var mean, variance float64
	for _, st := range strata {
		n := len(st.Rates)
		if n == 0 {
			continue
		}
		mean += st.Work * Mean(st.Rates)
		if n < 2 || st.Size <= 0 {
			continue
		}
		fpc := 1 - float64(n)/float64(st.Size)
		if fpc < 0 {
			fpc = 0
		}
		variance += st.Work * st.Work * fpc * SampleVariance(st.Rates) / float64(n)
	}
	return Interval{Mean: mean, HalfWidth: z * math.Sqrt(variance)}
}

// MeanInterval returns the plain one-sample confidence interval for the
// mean of xs (no finite-population correction) — the summary lpsim's
// directory mode prints across checkpoint IPCs.
func MeanInterval(xs []float64, level float64) Interval {
	iv := Interval{Mean: Mean(xs)}
	if len(xs) >= 2 {
		iv.HalfWidth = ZForLevel(level) * math.Sqrt(SampleVariance(xs)/float64(len(xs)))
	}
	return iv
}
