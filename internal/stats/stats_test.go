package stats

import (
	"math"
	"testing"
)

func TestNormalQuantileKnownValues(t *testing.T) {
	// Reference values to 6 decimals (Abramowitz & Stegun / R qnorm).
	for _, tc := range []struct{ p, want float64 }{
		{0.5, 0},
		{0.975, 1.959964},
		{0.025, -1.959964},
		{0.995, 2.575829},
		{0.84134474, 0.999999947}, // Φ(1)
		{0.99, 2.326348},
		{0.9999, 3.719016},
	} {
		got := NormalQuantile(tc.p)
		if math.Abs(got-tc.want) > 1e-5 {
			t.Errorf("NormalQuantile(%v) = %v, want %v", tc.p, got, tc.want)
		}
	}
}

func TestNormalQuantileDomain(t *testing.T) {
	for _, p := range []float64{0, 1, -0.5, 1.5, math.NaN()} {
		if got := NormalQuantile(p); !math.IsNaN(got) {
			t.Errorf("NormalQuantile(%v) = %v, want NaN", p, got)
		}
	}
}

func TestZForLevel(t *testing.T) {
	if z := ZForLevel(0.95); math.Abs(z-1.959964) > 1e-5 {
		t.Errorf("ZForLevel(0.95) = %v", z)
	}
	if z := ZForLevel(0.99); math.Abs(z-2.575829) > 1e-5 {
		t.Errorf("ZForLevel(0.99) = %v", z)
	}
	if !math.IsNaN(ZForLevel(0)) || !math.IsNaN(ZForLevel(1)) {
		t.Error("ZForLevel must reject degenerate levels")
	}
}

func TestMeanAndVariance(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); m != 5 {
		t.Errorf("Mean = %v, want 5", m)
	}
	// Population variance is 4; the unbiased sample variance is 32/7.
	if v := SampleVariance(xs); math.Abs(v-32.0/7) > 1e-12 {
		t.Errorf("SampleVariance = %v, want %v", v, 32.0/7)
	}
	if Mean(nil) != 0 || SampleVariance(nil) != 0 || SampleVariance([]float64{3}) != 0 {
		t.Error("degenerate inputs must yield 0")
	}
}

func TestIntervalCovers(t *testing.T) {
	iv := Interval{Mean: 10, HalfWidth: 2}
	for x, want := range map[float64]bool{8: true, 10: true, 12: true, 7.99: false, 12.01: false} {
		if iv.Covers(x) != want {
			t.Errorf("Covers(%v) = %v, want %v", x, !want, want)
		}
	}
}

func TestStratifiedEstimateExhaustiveSampleIsExact(t *testing.T) {
	// Sampling every unit of every stratum: the estimate equals the true
	// total and the half-width collapses to zero (FPC = 0).
	strata := []StratumSample{
		{Work: 10, Size: 2, Rates: []float64{1.5, 2.5}},
		{Work: 4, Size: 3, Rates: []float64{1, 2, 3}},
	}
	iv := StratifiedEstimate(strata, 0.95)
	want := 10*2.0 + 4*2.0
	if math.Abs(iv.Mean-want) > 1e-12 {
		t.Errorf("mean = %v, want %v", iv.Mean, want)
	}
	if iv.HalfWidth != 0 {
		t.Errorf("exhaustive sample must have zero half-width, got %v", iv.HalfWidth)
	}
}

func TestStratifiedEstimateSingleDrawHasZeroWidth(t *testing.T) {
	iv := StratifiedEstimate([]StratumSample{{Work: 8, Size: 100, Rates: []float64{3}}}, 0.95)
	if iv.Mean != 24 || iv.HalfWidth != 0 {
		t.Errorf("got %+v, want mean 24 half-width 0", iv)
	}
}

func TestStratifiedEstimateVariance(t *testing.T) {
	// One stratum, hand-computed: W=6, N=10, rates {1,2,3} → r̄=2, s²=1,
	// FPC = 1 - 3/10 = 0.7, Var = 36·0.7·1/3 = 8.4.
	iv := StratifiedEstimate([]StratumSample{{Work: 6, Size: 10, Rates: []float64{1, 2, 3}}}, 0.95)
	wantHW := ZForLevel(0.95) * math.Sqrt(8.4)
	if math.Abs(iv.Mean-12) > 1e-12 {
		t.Errorf("mean = %v, want 12", iv.Mean)
	}
	if math.Abs(iv.HalfWidth-wantHW) > 1e-12 {
		t.Errorf("half-width = %v, want %v", iv.HalfWidth, wantHW)
	}
}

func TestStratifiedEstimateSkipsEmptyStrata(t *testing.T) {
	iv := StratifiedEstimate([]StratumSample{
		{Work: 5, Size: 4, Rates: nil},
		{Work: 3, Size: 2, Rates: []float64{2, 2}},
	}, 0.95)
	if iv.Mean != 6 {
		t.Errorf("mean = %v, want 6 (empty stratum skipped)", iv.Mean)
	}
}

func TestMeanInterval(t *testing.T) {
	iv := MeanInterval([]float64{1, 2, 3, 4}, 0.95)
	if math.Abs(iv.Mean-2.5) > 1e-12 {
		t.Errorf("mean = %v", iv.Mean)
	}
	wantHW := ZForLevel(0.95) * math.Sqrt(SampleVariance([]float64{1, 2, 3, 4})/4)
	if math.Abs(iv.HalfWidth-wantHW) > 1e-12 {
		t.Errorf("half-width = %v, want %v", iv.HalfWidth, wantHW)
	}
	if iv := MeanInterval([]float64{7}, 0.95); iv.Mean != 7 || iv.HalfWidth != 0 {
		t.Errorf("single sample: %+v", iv)
	}
}

// TestNormalQuantileMonotone guards the piecewise approximation's seams.
func TestNormalQuantileMonotone(t *testing.T) {
	prev := math.Inf(-1)
	for p := 0.001; p < 0.999; p += 0.001 {
		q := NormalQuantile(p)
		if q <= prev {
			t.Fatalf("not monotone at p=%v: %v <= %v", p, q, prev)
		}
		prev = q
	}
}
