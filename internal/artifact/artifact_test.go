package artifact

import (
	"encoding/binary"
	"math/rand"
	"testing"
)

// checksumNaive is the reference one-byte-at-a-time FNV-1a loop the
// repository shipped before the unrolled fast path. The property tests
// below pin the fast path to it bit-for-bit.
func checksumNaive(b []byte) uint64 {
	h := FNVOffset
	for _, c := range b {
		h ^= uint64(c)
		h *= FNVPrime
	}
	return h
}

func TestChecksumMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	// Every length 0..64 hits all unroll-tail combinations; larger random
	// lengths exercise the steady-state eight-byte loop.
	for n := 0; n <= 64; n++ {
		b := make([]byte, n)
		rng.Read(b)
		if got, want := Checksum(b), checksumNaive(b); got != want {
			t.Fatalf("len %d: Checksum %#x, naive %#x", n, got, want)
		}
	}
	for i := 0; i < 200; i++ {
		b := make([]byte, rng.Intn(1<<14))
		rng.Read(b)
		if got, want := Checksum(b), checksumNaive(b); got != want {
			t.Fatalf("len %d: Checksum %#x, naive %#x", len(b), got, want)
		}
	}
}

func TestUpdateChunksEqualWhole(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	b := make([]byte, 4096+5)
	rng.Read(b)
	want := Checksum(b)
	for _, cut := range []int{0, 1, 7, 8, 9, 1000, len(b)} {
		if got := Update(Update(FNVOffset, b[:cut]), b[cut:]); got != want {
			t.Fatalf("cut %d: chunked %#x, whole %#x", cut, got, want)
		}
	}
}

func TestChecksumWordsMatchesByteSerialization(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for _, n := range []int{0, 1, 3, 100, 4096} {
		words := make([]uint64, n)
		raw := make([]byte, 8*n)
		for i := range words {
			words[i] = rng.Uint64()
			binary.LittleEndian.PutUint64(raw[8*i:], words[i])
		}
		if got, want := ChecksumWords(words), checksumNaive(raw); got != want {
			t.Fatalf("n %d: ChecksumWords %#x, naive-over-LE %#x", n, got, want)
		}
	}
}

func BenchmarkChecksum(b *testing.B) {
	buf := make([]byte, 1<<16)
	rand.New(rand.NewSource(1)).Read(buf)
	b.SetBytes(int64(len(buf)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Checksum(buf)
	}
}

func BenchmarkChecksumWords(b *testing.B) {
	words := make([]uint64, 1<<13)
	rng := rand.New(rand.NewSource(2))
	for i := range words {
		words[i] = rng.Uint64()
	}
	b.SetBytes(int64(8 * len(words)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ChecksumWords(words)
	}
}
