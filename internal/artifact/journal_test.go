package artifact

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// TestChecksumLineRoundTrip: every record survives the envelope and
// comes back byte-identical; the envelope carries the documented field
// order (fnv1a first) so journals written before the refactor verify
// with the same code.
func TestChecksumLineRoundTrip(t *testing.T) {
	records := [][]byte{
		[]byte(`{}`),
		[]byte(`{"key":"a","config":"0x1","report":{"n":1}}`),
		[]byte(`[1,2,3]`),
		[]byte(`"just a string"`),
	}
	for _, rec := range records {
		line, err := ChecksumLine(rec)
		if err != nil {
			t.Fatalf("ChecksumLine(%s): %v", rec, err)
		}
		if !bytes.HasPrefix(line, []byte(`{"fnv1a":"0x`)) {
			t.Fatalf("envelope does not lead with the checksum: %s", line)
		}
		got, ok := VerifyLine(line)
		if !ok {
			t.Fatalf("VerifyLine rejected its own envelope: %s", line)
		}
		if !bytes.Equal(got, rec) {
			t.Fatalf("record round-trip: got %s, want %s", got, rec)
		}
	}
}

// TestChecksumLineMatchesLegacyFormat: the envelope bytes are exactly
// what the harness resume journal has always written — checksum of the
// compact record, %#x-rendered, field order fnv1a then record — so
// pre-refactor journals stay readable and new lines stay byte-identical.
func TestChecksumLineMatchesLegacyFormat(t *testing.T) {
	rec := []byte(`{"key":"k","v":2}`)
	line, err := ChecksumLine(rec)
	if err != nil {
		t.Fatal(err)
	}
	legacy, err := json.Marshal(struct {
		FNV1a  string          `json:"fnv1a"`
		Record json.RawMessage `json:"record"`
	}{fmt.Sprintf("%#x", Checksum(rec)), rec})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(line, legacy) {
		t.Fatalf("envelope bytes diverged from the legacy journal format:\n got %s\nwant %s", line, legacy)
	}
}

// TestVerifyLineRejectsTampering: any single bit flip in the line —
// envelope or record — fails verification.
func TestVerifyLineRejectsTampering(t *testing.T) {
	line, err := ChecksumLine([]byte(`{"key":"victim","n":12345}`))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := VerifyLine(line); !ok {
		t.Fatal("intact line rejected")
	}
	rejected := 0
	for i := range line {
		mut := append([]byte(nil), line...)
		mut[i] ^= 1
		if _, ok := VerifyLine(mut); !ok {
			rejected++
		}
	}
	// Some flips inside the record can cancel out through json.Compact
	// only if they map to equivalent JSON — which a single bit flip in
	// this record cannot. Every mutation must be rejected.
	if rejected != len(line) {
		t.Fatalf("only %d/%d single-bit corruptions rejected", rejected, len(line))
	}
}

// TestVerifyLineRejectsGarbage: non-JSON, truncations, and empty input.
func TestVerifyLineRejectsGarbage(t *testing.T) {
	line, _ := ChecksumLine([]byte(`{"a":1}`))
	for _, bad := range [][]byte{nil, []byte("x"), []byte(`{"fnv1a":"0x0"}`), line[:len(line)/2]} {
		if _, ok := VerifyLine(bad); ok {
			t.Fatalf("VerifyLine accepted %q", bad)
		}
	}
}

// TestRepairTornTail: a torn final line is truncated away, complete
// lines survive byte-identically, and clean/missing files are no-ops.
func TestRepairTornTail(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "journal.jsonl")

	if err := RepairTornTail(path); err != nil {
		t.Fatalf("missing file: %v", err)
	}

	l1, _ := ChecksumLine([]byte(`{"k":"one"}`))
	l2, _ := ChecksumLine([]byte(`{"k":"two"}`))
	clean := append(append(append([]byte{}, l1...), '\n'), append(l2, '\n')...)
	if err := os.WriteFile(path, clean, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := RepairTornTail(path); err != nil {
		t.Fatal(err)
	}
	got, _ := os.ReadFile(path)
	if !bytes.Equal(got, clean) {
		t.Fatal("repair modified a clean journal")
	}

	torn := append(append([]byte{}, clean...), []byte(`{"fnv1a":"0xdead","rec`)...)
	if err := os.WriteFile(path, torn, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := RepairTornTail(path); err != nil {
		t.Fatal(err)
	}
	got, _ = os.ReadFile(path)
	if !bytes.Equal(got, clean) {
		t.Fatalf("torn tail not repaired: %q", got)
	}

	// A file that is nothing but a torn line repairs to empty.
	if err := os.WriteFile(path, []byte(`{"fnv1a":`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := RepairTornTail(path); err != nil {
		t.Fatal(err)
	}
	got, _ = os.ReadFile(path)
	if len(got) != 0 {
		t.Fatalf("lone torn line should repair to empty, got %q", got)
	}
}

// TestChecksummedFileRoundTripAndCorruption: the standalone-envelope
// file format (the campaign result cache) round-trips, classifies
// corruption as ErrCorrupt, and surfaces missing files as such.
func TestChecksummedFileRoundTripAndCorruption(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "deadbeef.json")
	rec := []byte(`{"key":"deadbeef","result":{"regions":7}}`)
	if err := WriteChecksummedFile(path, rec); err != nil {
		t.Fatal(err)
	}
	got, err := ReadChecksummedFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, rec) {
		t.Fatalf("round-trip: got %s", got)
	}

	data, _ := os.ReadFile(path)
	data[len(data)/2] ^= 1
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadChecksummedFile(path); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("corrupt cache file: err=%v, want ErrCorrupt", err)
	}

	if _, err := ReadChecksummedFile(filepath.Join(dir, "missing.json")); !os.IsNotExist(err) {
		t.Fatalf("missing file: err=%v, want IsNotExist", err)
	}
}
