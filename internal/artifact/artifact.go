// Package artifact defines the shared integrity vocabulary for every
// on-disk artifact this repository produces — pinballs, selection files,
// and the harness resume journal. Checkpoints are what make LoopPoint's
// region simulations independent (paper Section III-J); once they are
// archived and shared across machines (the checkpoint-sharing workflow),
// the pipeline has to treat their bytes as untrusted input. Loaders
// classify failures into three typed sentinels so callers can choose a
// policy per class: quarantine corrupt files, re-fetch truncated ones,
// and refuse version skew outright.
package artifact

import "errors"

// Typed load failures. Loaders wrap these with %w plus file path and
// byte offset; callers match with errors.Is.
var (
	// ErrCorrupt means the bytes are structurally present but wrong:
	// bad magic, checksum mismatch, implausible lengths, or payload
	// validation failure. Retrying the same file cannot help.
	ErrCorrupt = errors.New("artifact corrupt")
	// ErrTruncated means the artifact ends before its declared content
	// does — a partial copy or an interrupted write.
	ErrTruncated = errors.New("artifact truncated")
	// ErrVersion means the artifact was written by an incompatible
	// format version.
	ErrVersion = errors.New("artifact version unsupported")
)

// FNV-1a parameters, shared by every artifact checksum in the repository.
const (
	FNVOffset = uint64(14695981039346656037)
	FNVPrime  = uint64(1099511628211)
)

// Checksum returns the FNV-1a hash of b — the whole-file integrity hash
// appended to pinballs and embedded in selection-file envelopes.
func Checksum(b []byte) uint64 {
	return Update(FNVOffset, b)
}

// Update folds b into a running FNV-1a state and returns the new state,
// so loaders can hash in chunks: Update(Update(FNVOffset, a), b) ==
// Checksum(a ++ b). FNV-1a is inherently sequential per byte, so the
// unrolled eight-byte inner loop below is bit-identical to the naive
// one-byte loop — the equivalence is pinned by a property test against
// the reference implementation.
func Update(h uint64, b []byte) uint64 {
	for len(b) >= 8 {
		h = (h ^ uint64(b[0])) * FNVPrime
		h = (h ^ uint64(b[1])) * FNVPrime
		h = (h ^ uint64(b[2])) * FNVPrime
		h = (h ^ uint64(b[3])) * FNVPrime
		h = (h ^ uint64(b[4])) * FNVPrime
		h = (h ^ uint64(b[5])) * FNVPrime
		h = (h ^ uint64(b[6])) * FNVPrime
		h = (h ^ uint64(b[7])) * FNVPrime
		b = b[8:]
	}
	for _, c := range b {
		h = (h ^ uint64(c)) * FNVPrime
	}
	return h
}

// ChecksumWords returns the FNV-1a hash of the little-endian byte
// serialization of words, without materializing those bytes. It equals
// Checksum applied to the 8×len(words) LE encoding — the form pinball
// snapshot checksums have always used.
func ChecksumWords(words []uint64) uint64 {
	h := FNVOffset
	for _, w := range words {
		h = (h ^ (w & 0xff)) * FNVPrime
		h = (h ^ (w >> 8 & 0xff)) * FNVPrime
		h = (h ^ (w >> 16 & 0xff)) * FNVPrime
		h = (h ^ (w >> 24 & 0xff)) * FNVPrime
		h = (h ^ (w >> 32 & 0xff)) * FNVPrime
		h = (h ^ (w >> 40 & 0xff)) * FNVPrime
		h = (h ^ (w >> 48 & 0xff)) * FNVPrime
		h = (h ^ (w >> 56)) * FNVPrime
	}
	return h
}
