// Package artifact defines the shared integrity vocabulary for every
// on-disk artifact this repository produces — pinballs, selection files,
// and the harness resume journal. Checkpoints are what make LoopPoint's
// region simulations independent (paper Section III-J); once they are
// archived and shared across machines (the checkpoint-sharing workflow),
// the pipeline has to treat their bytes as untrusted input. Loaders
// classify failures into three typed sentinels so callers can choose a
// policy per class: quarantine corrupt files, re-fetch truncated ones,
// and refuse version skew outright.
package artifact

import "errors"

// Typed load failures. Loaders wrap these with %w plus file path and
// byte offset; callers match with errors.Is.
var (
	// ErrCorrupt means the bytes are structurally present but wrong:
	// bad magic, checksum mismatch, implausible lengths, or payload
	// validation failure. Retrying the same file cannot help.
	ErrCorrupt = errors.New("artifact corrupt")
	// ErrTruncated means the artifact ends before its declared content
	// does — a partial copy or an interrupted write.
	ErrTruncated = errors.New("artifact truncated")
	// ErrVersion means the artifact was written by an incompatible
	// format version.
	ErrVersion = errors.New("artifact version unsupported")
)

// FNV-1a parameters, shared by every artifact checksum in the repository.
const (
	FNVOffset = uint64(14695981039346656037)
	FNVPrime  = uint64(1099511628211)
)

// Checksum returns the FNV-1a hash of b — the whole-file integrity hash
// appended to pinballs and embedded in selection-file envelopes.
func Checksum(b []byte) uint64 {
	h := FNVOffset
	for _, c := range b {
		h ^= uint64(c)
		h *= FNVPrime
	}
	return h
}
