package artifact

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
)

// Checksummed-JSONL primitives, shared by every append-only journal and
// content-addressed store in the repository (the harness resume journal,
// the campaign journal, and the campaign result cache). One line is a
// small envelope — the FNV-1a checksum of the compact record bytes, then
// the record itself — so a reader can reject records torn by a mid-write
// kill without trusting anything beyond this file's own bytes:
//
//	{"fnv1a":"0x9e3779b97f4a7c15","record":{...}}
//
// The companion invariants every writer of this format follows:
// appends are fsynced before being acknowledged, and a torn final line
// (a record cut short by SIGKILL mid-write) is truncated away on open —
// crash-safely, via a temp file fsynced BEFORE the atomic rename — so
// the next append starts on a fresh line instead of corrupt-
// concatenating with the torn bytes.

// checksummedLine is the one-line envelope: checksum first, record second.
type checksummedLine struct {
	FNV1a  string          `json:"fnv1a"`
	Record json.RawMessage `json:"record"`
}

// ChecksumLine wraps one compact JSON record into its checksummed
// envelope line (no trailing newline). The record must already be valid
// JSON — it is embedded verbatim, and VerifyLine checks the checksum
// against the compact form of what it finds.
func ChecksumLine(record []byte) ([]byte, error) {
	return json.Marshal(checksummedLine{
		FNV1a:  fmt.Sprintf("%#x", Checksum(record)),
		Record: record,
	})
}

// VerifyLine parses one envelope line and returns the compact record
// bytes if — and only if — the embedded checksum matches. A false return
// means the line is torn, corrupt, or not an envelope at all; callers
// drop such lines and keep reading (a torn final line from a killed run
// must not poison a restart).
func VerifyLine(line []byte) ([]byte, bool) {
	var ent checksummedLine
	if json.Unmarshal(line, &ent) != nil {
		return nil, false
	}
	var compact bytes.Buffer
	if json.Compact(&compact, ent.Record) != nil {
		return nil, false
	}
	if fmt.Sprintf("%#x", Checksum(compact.Bytes())) != ent.FNV1a {
		return nil, false
	}
	return compact.Bytes(), true
}

// RepairTornTail truncates a trailing unterminated line — a record torn
// by a SIGKILL mid-write. The repair itself is crash-safe: the retained
// prefix is written to a sibling temp file, fsynced BEFORE the atomic
// rename over the journal, so a kill at any point during the repair
// leaves either the old journal or the fully repaired one on disk,
// never a half-truncated file (a rename that outruns its data's fsync
// can publish an empty or partial file after a power cut). A missing
// file is not an error.
func RepairTornTail(path string) error {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return err
	}
	if len(data) == 0 || data[len(data)-1] == '\n' {
		return nil // every line complete; nothing to repair
	}
	keep := 0
	if i := bytes.LastIndexByte(data, '\n'); i >= 0 {
		keep = i + 1
	}
	return writeFileSynced(path, data[:keep])
}

// WriteChecksummedFile publishes one record as a standalone checksummed
// envelope file (the content-addressed cache format): temp file, fsync
// BEFORE the atomic rename, so readers only ever observe a missing file
// or a complete one.
func WriteChecksummedFile(path string, record []byte) error {
	line, err := ChecksumLine(record)
	if err != nil {
		return err
	}
	return writeFileSynced(path, append(line, '\n'))
}

// ReadChecksummedFile reads a file written by WriteChecksummedFile and
// returns the verified record bytes. Verification failure is ErrCorrupt:
// the bytes are present but wrong, and rereading the same file cannot
// help.
func ReadChecksummedFile(path string) ([]byte, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	rec, ok := VerifyLine(bytes.TrimSpace(data))
	if !ok {
		return nil, fmt.Errorf("%s: envelope checksum failed: %w", path, ErrCorrupt)
	}
	return rec, nil
}

// writeFileSynced writes data to path crash-safely: temp sibling, fsync
// before the atomic rename.
func writeFileSynced(path string, data []byte) error {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}
