package artifact

import (
	"os"
	"path/filepath"
)

// WriteFileDurable writes data with the temp+fsync+rename idiom shared
// by every crash-safe artifact in the repository: the bytes go to a temp
// file in the destination directory, are fsynced, and only then renamed
// over the final path. A crash at any point leaves either the previous
// file or the complete new one — never a torn mix; a crash between the
// temp write and the rename leaves only a stray *.tmp* file that loaders
// ignore by name.
func WriteFileDurable(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return err
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return err
	}
	return nil
}
