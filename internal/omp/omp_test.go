package omp_test

import (
	"math"
	"testing"

	"looppoint/internal/exec"
	"looppoint/internal/isa"
	"looppoint/internal/omp"
)

// buildBarrierStress builds a program where N threads increment a shared
// counter non-atomically between barriers; correctness of the final value
// proves the barrier actually separates the phases: each thread reads the
// counter, crosses a barrier, writes counter+tid contributions in turn
// guarded by a lock.
func buildBarrierStress(nthreads int, rounds int64, policy omp.WaitPolicy) (*isa.Program, uint64, *omp.Runtime) {
	p := isa.NewProgram("barrier-stress", nthreads)
	sum := p.Alloc("sum", 1)
	perRound := p.Alloc("per_round", uint64(nthreads))
	main := p.AddImage("main", false)
	rt := omp.New(p, policy)
	bar := rt.NewBarrier("b")
	lock := rt.NewLock("l")

	r := main.NewRoutine("thread_main")
	entry := r.NewBlock("entry")
	loop := r.NewBlock("round")
	after := r.NewBlock("after")
	done := r.NewBlock("done")
	entry.IMovI(0, 0)
	entry.Br(loop)
	// Phase A: each thread writes its slot.
	loop.IOpI(isa.OpIAdd, 1, isa.RegTid, int64(perRound))
	loop.IOpI(isa.OpIAdd, 2, isa.RegTid, 1)
	loop.IStore(1, 0, 2)
	rt.EmitBarrier(loop, bar)
	// Phase B: thread 0 sums all slots under the lock (others just lock/unlock).
	rt.EmitLock(loop, lock)
	loop.Br(after)
	afterCrit := r.NewBlock("crit")
	skip := r.NewBlock("skip")
	after.BrCondI(isa.CondEQ, isa.RegTid, 0, afterCrit, skip)
	afterCrit.IMovI(3, 0) // i
	sumLoop := r.NewBlock("sum_loop")
	sumDone := r.NewBlock("sum_done")
	afterCrit.Br(sumLoop)
	sumLoop.IOpI(isa.OpIAdd, 4, 3, int64(perRound))
	sumLoop.ILoad(5, 4, 0)
	sumLoop.IMovI(6, int64(sum))
	sumLoop.ILoad(7, 6, 0)
	sumLoop.IOp(isa.OpIAdd, 7, 7, 5)
	sumLoop.IStore(6, 0, 7)
	sumLoop.IOpI(isa.OpIAdd, 3, 3, 1)
	sumLoop.BrCondI(isa.CondLT, 3, int64(nthreads), sumLoop, sumDone)
	sumDone.Br(skip)
	rt.EmitUnlock(skip, lock)
	rt.EmitBarrier(skip, bar)
	skip.IOpI(isa.OpIAdd, 0, 0, 1)
	skip.BrCondI(isa.CondLT, 0, rounds, loop, done)
	done.Halt()
	for tid := 0; tid < nthreads; tid++ {
		p.SetEntry(tid, r)
	}
	if err := p.Link(); err != nil {
		panic(err)
	}
	return p, sum, rt
}

func TestBarrierAndLockCorrectness(t *testing.T) {
	for _, policy := range []omp.WaitPolicy{omp.Passive, omp.Active} {
		for _, n := range []int{2, 4, 8} {
			const rounds = 20
			p, sumAddr, _ := buildBarrierStress(n, rounds, policy)
			m := exec.NewMachine(p, 1)
			if err := m.Run(exec.RunOpts{Quantum: 13}); err != nil {
				t.Fatalf("policy %v n=%d: %v", policy, n, err)
			}
			want := int64(rounds) * int64(n*(n+1)/2)
			if got := int64(m.LoadWord(sumAddr)); got != want {
				t.Errorf("policy %v n=%d: sum = %d, want %d", policy, n, got, want)
			}
		}
	}
}

func TestDynNextDistributesAllChunks(t *testing.T) {
	const nthreads, total, chunk = 4, 96, 8
	p := isa.NewProgram("dyn", nthreads)
	ctr := p.Alloc("ctr", 1)
	claimed := p.Alloc("claimed", total)
	main := p.AddImage("main", false)
	rt := omp.New(p, omp.Passive)
	bar := rt.NewBarrier("join")

	r := main.NewRoutine("thread_main")
	head := r.NewBlock("head")
	body := r.NewBlock("body")
	mark := r.NewBlock("mark")
	done := r.NewBlock("done")
	rt.EmitDynNext(head, ctr, chunk, 8)
	head.BrCondI(isa.CondGE, 8, total, done, body)
	body.IMovI(0, 0)
	body.Br(mark)
	// Mark each claimed index once.
	mark.IOp(isa.OpIAdd, 1, 8, 0)
	mark.IOpI(isa.OpIAdd, 1, 1, int64(claimed))
	mark.ILoad(2, 1, 0)
	mark.IOpI(isa.OpIAdd, 2, 2, 1)
	mark.IStore(1, 0, 2)
	mark.IOpI(isa.OpIAdd, 0, 0, 1)
	mark.BrCondI(isa.CondLT, 0, chunk, mark, head)
	rt.EmitBarrier(done, bar)
	done.Halt()
	for tid := 0; tid < nthreads; tid++ {
		p.SetEntry(tid, r)
	}
	if err := p.Link(); err != nil {
		t.Fatal(err)
	}
	m := exec.NewMachine(p, 1)
	if err := m.Run(exec.RunOpts{Quantum: 7}); err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < total; i++ {
		if got := m.LoadWord(claimed + i); got != 1 {
			t.Fatalf("index %d claimed %d times, want exactly 1", i, got)
		}
	}
}

func TestReduceFAccumulatesAcrossThreads(t *testing.T) {
	const nthreads = 4
	p := isa.NewProgram("reduce", nthreads)
	acc := p.Alloc("acc", 1)
	main := p.AddImage("main", false)
	rt := omp.New(p, omp.Active)
	bar := rt.NewBarrier("join")
	lock := rt.NewLock("red")

	r := main.NewRoutine("thread_main")
	b := r.NewBlock("entry")
	// Each thread contributes float64(tid+1).
	b.ICvtF(0, isa.RegTid)
	b.FMovI(1, 1)
	b.FOp(isa.OpFAdd, 0, 0, 1)
	rt.EmitReduceF(b, lock, acc, 0)
	rt.EmitBarrier(b, bar)
	b.Halt()
	for tid := 0; tid < nthreads; tid++ {
		p.SetEntry(tid, r)
	}
	if err := p.Link(); err != nil {
		t.Fatal(err)
	}
	m := exec.NewMachine(p, 1)
	if err := m.Run(exec.RunOpts{}); err != nil {
		t.Fatal(err)
	}
	got := math.Float64frombits(m.LoadWord(acc))
	if got != 1+2+3+4 {
		t.Errorf("reduction = %v, want 10", got)
	}
}

func TestGateReleasesAllThreads(t *testing.T) {
	for _, policy := range []omp.WaitPolicy{omp.Passive, omp.Active} {
		const nthreads = 4
		p := isa.NewProgram("gate", nthreads)
		flag := p.Alloc("done_flags", nthreads)
		main := p.AddImage("main", false)
		rt := omp.New(p, policy)
		gate := rt.NewGate("start")

		r := main.NewRoutine("thread_main")
		entry := r.NewBlock("entry")
		open := r.NewBlock("open")
		wait := r.NewBlock("wait")
		joined := r.NewBlock("joined")
		entry.BrCondI(isa.CondEQ, isa.RegTid, 0, open, wait)
		// Thread 0 does some work before opening, so waiters really park.
		open.IMovI(0, 0)
		spin := r.NewBlock("work")
		opened := r.NewBlock("opened")
		open.Br(spin)
		spin.IOpI(isa.OpIAdd, 0, 0, 1)
		spin.BrCondI(isa.CondLT, 0, 500, spin, opened)
		rt.EmitGateOpen(opened, gate)
		opened.Br(joined)
		rt.EmitGateWait(wait, gate)
		wait.Br(joined)
		joined.IOpI(isa.OpIAdd, 1, isa.RegTid, int64(flag))
		joined.IMovI(2, 1)
		joined.IStore(1, 0, 2)
		joined.Halt()
		for tid := 0; tid < nthreads; tid++ {
			p.SetEntry(tid, r)
		}
		if err := p.Link(); err != nil {
			t.Fatal(err)
		}
		m := exec.NewMachine(p, 1)
		if err := m.Run(exec.RunOpts{}); err != nil {
			t.Fatalf("policy %v: %v", policy, err)
		}
		for tid := 0; tid < nthreads; tid++ {
			if m.LoadWord(flag+uint64(tid)) != 1 {
				t.Errorf("policy %v: thread %d never passed the gate", policy, tid)
			}
		}
	}
}

func TestBarrierReleaseAddrIsSyncImage(t *testing.T) {
	p, _, rt := buildBarrierStress(2, 1, omp.Passive)
	addr := rt.BarrierReleaseAddr()
	blk, ok := p.BlockByAddr(addr)
	if !ok {
		t.Fatal("release address is not a block")
	}
	if !blk.Routine.Image.Sync {
		t.Error("barrier release block not in sync image")
	}
}

func TestWaitPolicyParse(t *testing.T) {
	if p, err := omp.ParseWaitPolicy("active"); err != nil || p != omp.Active {
		t.Error("parse active failed")
	}
	if p, err := omp.ParseWaitPolicy("passive"); err != nil || p != omp.Passive {
		t.Error("parse passive failed")
	}
	if _, err := omp.ParseWaitPolicy("bogus"); err == nil {
		t.Error("bogus policy accepted")
	}
	if omp.Active.String() != "active" || omp.Passive.String() != "passive" {
		t.Error("policy strings wrong")
	}
}
