// Package omp provides an OpenMP-like threading runtime written in the
// mini-ISA itself, inside a dedicated "libomp" image flagged as a
// synchronization library. Barriers, locks, reductions, and dynamic
// work-sharing counters are real loops and atomics executing from library
// code, so the paper's synchronization handling applies unchanged:
// spin-loops under the active wait policy are genuine loops whose
// instructions the BBV profiler filters by image (Section IV-F), and the
// passive policy parks threads on futexes.
package omp

import (
	"fmt"

	"looppoint/internal/isa"
)

// WaitPolicy mirrors OMP_WAIT_POLICY.
type WaitPolicy int

// Wait policies.
const (
	// Passive parks waiting threads on a futex (no cycles consumed).
	Passive WaitPolicy = iota
	// Active busy-waits in a spin-loop (cycles consumed, instructions
	// retired, but no useful work done).
	Active
)

func (w WaitPolicy) String() string {
	if w == Active {
		return "active"
	}
	return "passive"
}

// ParseWaitPolicy converts "active"/"passive" to a WaitPolicy.
func ParseWaitPolicy(s string) (WaitPolicy, error) {
	switch s {
	case "active":
		return Active, nil
	case "passive":
		return Passive, nil
	}
	return Passive, fmt.Errorf("omp: unknown wait policy %q", s)
}

// Runtime is the generated library: one image with barrier, lock, unlock,
// dynamic-chunk, and float-reduction routines, plus allocators for the
// shared synchronization objects they operate on.
type Runtime struct {
	Policy   WaitPolicy
	Image    *isa.Image
	Barrier  *isa.Routine // arg R16 = barrier base address
	Lock     *isa.Routine // arg R16 = lock address
	Unlock   *isa.Routine // arg R16 = lock address
	DynNext  *isa.Routine // args R16 = counter address, R17 = chunk; returns R16 = start
	ReduceF  *isa.Routine // args R16 = lock address, R17 = accumulator address, F16 = value
	GateWait *isa.Routine // arg R16 = gate address
	GateOpen *isa.Routine // arg R16 = gate address
	prog     *isa.Program
	nthreads int
	nbar     int
	nlock    int
	lastBlk  *isa.Block
}

// BarrierReleaseAddr returns the address of the barrier-release block —
// the block the last-arriving thread executes exactly once per barrier
// episode. BarrierPoint uses it as its region marker, the way the paper's
// implementation hooks the OpenMP runtime's barrier callback. Valid only
// after the program has been linked.
func (rt *Runtime) BarrierReleaseAddr() uint64 { return rt.lastBlk.Addr }

// Runtime register allocation: the runtime clobbers R16–R30 and F16–F17.
const (
	rArg  = isa.RegArg0 // R16
	rArg1 = isa.RegArg1 // R17
	rT0   = isa.RegRT0  // R24
	rT1   = isa.RegRT1
	rT2   = isa.RegRT2
	rT3   = isa.RegRT3
	rTid  = isa.RegTid
)

// New generates the runtime image for the program's thread count.
func New(p *isa.Program, policy WaitPolicy) *Runtime {
	rt := &Runtime{
		Policy:   policy,
		Image:    p.AddImage("libomp", true),
		prog:     p,
		nthreads: p.NumThreads(),
	}
	rt.buildBarrier()
	rt.buildLock()
	rt.buildUnlock()
	rt.buildDynNext()
	rt.buildReduceF()
	rt.buildGate()
	return rt
}

// buildGate creates a one-shot start gate (the moral equivalent of
// pthread_create synchronization): GateWait parks until the flag word is
// set, GateOpen sets it and wakes everyone. Unlike the barrier, the gate
// never recycles, so barrier-based samplers see no episodes from it.
func (rt *Runtime) buildGate() {
	w := rt.Image.NewRoutine("omp_gate_wait")
	check := w.NewBlock("check")
	park := w.NewBlock("park")
	done := w.NewBlock("done")
	check.ILoad(rT0, rArg, 0)
	check.BrCondI(isa.CondNE, rT0, 0, done, park)
	switch rt.Policy {
	case Active:
		park.Pause()
		park.Br(check)
	case Passive:
		park.IMovI(rT1, 0)
		park.FutexWait(rArg, 0, rT1)
		park.Br(check)
	}
	done.Ret()
	rt.GateWait = w

	o := rt.Image.NewRoutine("omp_gate_open")
	b := o.NewBlock("entry")
	b.IMovI(rT0, 1)
	b.IStore(rArg, 0, rT0)
	if rt.Policy == Passive {
		b.IMovI(rT1, int64(rt.nthreads))
		b.FutexWake(rT2, rArg, 0, rT1)
	}
	b.Ret()
	rt.GateOpen = o
}

// NewGate allocates a gate flag word.
func (rt *Runtime) NewGate(name string) uint64 {
	return rt.prog.Alloc("omp.gate."+name, 1)
}

// EmitGateWait emits a wait on the gate at addr.
func (rt *Runtime) EmitGateWait(b *isa.Block, addr uint64) {
	b.IMovI(rArg, int64(addr))
	b.Call(rt.GateWait)
}

// EmitGateOpen emits an open of the gate at addr.
func (rt *Runtime) EmitGateOpen(b *isa.Block, addr uint64) {
	b.IMovI(rArg, int64(addr))
	b.Call(rt.GateOpen)
}

// Barrier memory layout: word 0 = arrival count, word 1 = global sense,
// words 2..2+N-1 = per-thread local sense.

// NewBarrier allocates a barrier object and returns its base address.
func (rt *Runtime) NewBarrier(name string) uint64 {
	rt.nbar++
	return rt.prog.Alloc(fmt.Sprintf("omp.bar.%s.%d", name, rt.nbar), uint64(2+rt.nthreads))
}

// NewLock allocates a lock word (0 = free, 1 = held) and returns its address.
func (rt *Runtime) NewLock(name string) uint64 {
	rt.nlock++
	return rt.prog.Alloc(fmt.Sprintf("omp.lock.%s.%d", name, rt.nlock), 1)
}

// NewCounter allocates a shared counter word (dynamic scheduling, etc.).
func (rt *Runtime) NewCounter(name string) uint64 {
	return rt.prog.Alloc("omp.ctr."+name, 1)
}

func (rt *Runtime) buildBarrier() {
	r := rt.Image.NewRoutine("omp_barrier")
	entry := r.NewBlock("entry")
	wait := r.NewBlock("wait")
	spin := r.NewBlock("spin")
	last := r.NewBlock("last")
	done := r.NewBlock("done")

	// rT0 = &localSense[tid]; rT1 = new sense = 1 - old
	entry.IOpI(isa.OpIAdd, rT0, rArg, 2)
	entry.IOp(isa.OpIAdd, rT0, rT0, rTid)
	entry.ILoad(rT1, rT0, 0)
	entry.IOpI(isa.OpIXor, rT1, rT1, 1)
	entry.IStore(rT0, 0, rT1)
	// rT2 = fetch-add(arrivals, 1)
	entry.IMovI(rT3, 1)
	entry.AtomicAdd(rT2, rArg, 0, rT3)
	entry.BrCondI(isa.CondEQ, rT2, int64(rt.nthreads-1), last, wait)

	// Waiters: wait until global sense == new sense.
	wait.ILoad(rT2, rArg, 1)
	wait.BrCond(isa.CondEQ, rT2, rT1, done, spin)
	switch rt.Policy {
	case Active:
		spin.Pause()
		spin.Br(wait)
	case Passive:
		// Park while the sense word still holds the value we read.
		spin.FutexWait(rArg, 1, rT2)
		spin.Br(wait)
	}

	// Last arriver: reset count, flip global sense, wake everyone.
	rt.lastBlk = last
	last.IMovI(rT2, 0)
	last.IStore(rArg, 0, rT2)
	last.IStore(rArg, 1, rT1)
	if rt.Policy == Passive {
		last.IMovI(rT2, int64(rt.nthreads))
		last.FutexWake(rT3, rArg, 1, rT2)
	}
	last.Br(done)

	done.Ret()
	rt.Barrier = r
}

func (rt *Runtime) buildLock() {
	r := rt.Image.NewRoutine("omp_lock")
	try := r.NewBlock("try")
	acq := r.NewBlock("acquire")
	wait := r.NewBlock("wait")
	done := r.NewBlock("done")

	// Test...
	try.ILoad(rT0, rArg, 0)
	try.BrCondI(isa.CondNE, rT0, 0, wait, acq)
	// ...and test-and-set.
	acq.IMovI(rT1, 1) // new value (CmpXchg takes it from Dst)
	acq.IMovI(rT2, 0) // expected
	acq.CmpXchg(rT1, rArg, 0, rT2)
	acq.BrCondI(isa.CondEQ, rT1, 1, done, wait)
	switch rt.Policy {
	case Active:
		wait.Pause()
		wait.Br(try)
	case Passive:
		wait.IMovI(rT3, 1)
		wait.FutexWait(rArg, 0, rT3) // park while lock word == 1
		wait.Br(try)
	}
	done.Ret()
	rt.Lock = r
}

func (rt *Runtime) buildUnlock() {
	r := rt.Image.NewRoutine("omp_unlock")
	b := r.NewBlock("entry")
	b.IMovI(rT0, 0)
	b.IStore(rArg, 0, rT0)
	if rt.Policy == Passive {
		b.IMovI(rT1, 1)
		b.FutexWake(rT2, rArg, 0, rT1)
	}
	b.Ret()
	rt.Unlock = r
}

func (rt *Runtime) buildDynNext() {
	r := rt.Image.NewRoutine("omp_dyn_next")
	b := r.NewBlock("entry")
	b.AtomicAdd(rArg, rArg, 0, rArg1) // R16 = old counter; counter += chunk
	b.Ret()
	rt.DynNext = r
}

func (rt *Runtime) buildReduceF() {
	r := rt.Image.NewRoutine("omp_reduce_fadd")
	b := r.NewBlock("entry")
	// Serialize on the lock, accumulate F16 into *R17.
	b.IMov(rT3, rArg) // save lock address across the flow below
	lockLoop := r.NewBlock("lock_try")
	lockWait := r.NewBlock("lock_wait")
	crit := r.NewBlock("crit")
	b.Br(lockLoop)
	lockLoop.ILoad(rT0, rT3, 0)
	lockLoop.BrCondI(isa.CondNE, rT0, 0, lockWait, crit)
	switch rt.Policy {
	case Active:
		lockWait.Pause()
		lockWait.Br(lockLoop)
	case Passive:
		lockWait.IMovI(rT1, 1)
		lockWait.FutexWait(rT3, 0, rT1)
		lockWait.Br(lockLoop)
	}
	crit.IMovI(rT1, 1)
	crit.IMovI(rT2, 0)
	crit.CmpXchg(rT1, rT3, 0, rT2)
	retry := crit
	after := r.NewBlock("acquired")
	retry.BrCondI(isa.CondNE, rT1, 1, lockLoop, after)
	after.FLoad(17, rArg1, 0)
	after.FOp(isa.OpFAdd, 17, 17, 16)
	after.FStore(rArg1, 0, 17)
	// Release.
	after.IMovI(rT0, 0)
	after.IStore(rT3, 0, rT0)
	if rt.Policy == Passive {
		after.IMovI(rT1, 1)
		after.FutexWake(rT2, rT3, 0, rT1)
	}
	after.Ret()
	rt.ReduceF = r
}

// EmitBarrier emits a barrier call on block b for the barrier at addr.
func (rt *Runtime) EmitBarrier(b *isa.Block, addr uint64) {
	b.IMovI(rArg, int64(addr))
	b.Call(rt.Barrier)
}

// EmitLock emits a lock-acquire call for the lock at addr.
func (rt *Runtime) EmitLock(b *isa.Block, addr uint64) {
	b.IMovI(rArg, int64(addr))
	b.Call(rt.Lock)
}

// EmitUnlock emits a lock-release call for the lock at addr.
func (rt *Runtime) EmitUnlock(b *isa.Block, addr uint64) {
	b.IMovI(rArg, int64(addr))
	b.Call(rt.Unlock)
}

// EmitDynNext emits a dynamic-chunk grab: dst = fetch-add(counter, chunk).
func (rt *Runtime) EmitDynNext(b *isa.Block, counterAddr uint64, chunk int64, dst isa.Reg) {
	b.IMovI(rArg, int64(counterAddr))
	b.IMovI(rArg1, chunk)
	b.Call(rt.DynNext)
	if dst != rArg {
		b.IMov(dst, rArg)
	}
}

// EmitReduceF emits a locked floating-point accumulation of F-register
// src into the accumulator word at accAddr, serialized by lockAddr.
func (rt *Runtime) EmitReduceF(b *isa.Block, lockAddr, accAddr uint64, src isa.Reg) {
	if src != 16 {
		b.FOp(isa.OpFMov, 16, src, 0)
	}
	b.IMovI(rArg, int64(lockAddr))
	b.IMovI(rArg1, int64(accAddr))
	b.Call(rt.ReduceF)
}
