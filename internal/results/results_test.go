package results

import (
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tab := &Table{Title: "demo", Headers: []string{"name", "value"}}
	tab.AddRow("alpha", 3.14159)
	tab.AddRow("beta-longer-name", 42)
	s := tab.String()
	if !strings.Contains(s, "demo") || !strings.Contains(s, "alpha") {
		t.Fatalf("table missing content:\n%s", s)
	}
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Fatalf("table has %d lines, want 5:\n%s", len(lines), s)
	}
	if !strings.Contains(s, "3.14") {
		t.Errorf("float not formatted: %s", s)
	}
	if !strings.Contains(s, "42") {
		t.Errorf("int not formatted: %s", s)
	}
}

func TestTableCSV(t *testing.T) {
	tab := &Table{Headers: []string{"a", "b"}}
	tab.AddRow("x,y", `quo"te`)
	csv := tab.CSV()
	if !strings.Contains(csv, `"x,y"`) {
		t.Errorf("comma not escaped: %q", csv)
	}
	if !strings.Contains(csv, `"quo""te"`) {
		t.Errorf("quote not escaped: %q", csv)
	}
	if !strings.HasPrefix(csv, "a,b\n") {
		t.Errorf("header wrong: %q", csv)
	}
}

func TestBarChartLinearAndLog(t *testing.T) {
	for _, logScale := range []bool{false, true} {
		c := &BarChart{Title: "speedup", Log: logScale, Width: 20}
		c.Add("small", 1)
		c.Add("big", 1000)
		s := c.String()
		smallLine, bigLine := "", ""
		for _, line := range strings.Split(s, "\n") {
			if strings.HasPrefix(line, "small") {
				smallLine = line
			}
			if strings.HasPrefix(line, "big") {
				bigLine = line
			}
		}
		if strings.Count(bigLine, "#") <= strings.Count(smallLine, "#") {
			t.Errorf("log=%v: larger value has shorter bar:\n%s", logScale, s)
		}
		if strings.Count(bigLine, "#") > 20 {
			t.Errorf("log=%v: bar exceeds width", logScale)
		}
	}
}

func TestBarChartZeroAndNegativeSafe(t *testing.T) {
	c := &BarChart{}
	c.Add("zero", 0)
	c.Add("neg", -5)
	if s := c.String(); s == "" {
		t.Error("empty render")
	}
}

func TestSeriesSparkline(t *testing.T) {
	s := &Series{
		Title: "ipc",
		Names: []string{"t0", "t1"},
		Data:  [][]float64{{0, 0.5, 1}, {1, 1, 1}},
	}
	out := s.String()
	if !strings.Contains(out, "t0") || !strings.Contains(out, "t1") {
		t.Fatalf("missing names: %s", out)
	}
	if !strings.ContainsRune(out, '▁') || !strings.ContainsRune(out, '█') {
		t.Errorf("sparkline range not used: %s", out)
	}
}

func TestSeconds(t *testing.T) {
	cases := []struct {
		s    float64
		want string
	}{
		{30, "s"},
		{600, "min"},
		{3600 * 10, "h"},
		{86400 * 30, "d"},
		{31557600 * 3, "yr"},
	}
	for _, c := range cases {
		got := Seconds(c.s)
		if !strings.HasSuffix(got, c.want) {
			t.Errorf("Seconds(%g) = %q, want suffix %q", c.s, got, c.want)
		}
	}
}

func TestFormatFloat(t *testing.T) {
	if got := formatFloat(12345.6); got != "12346" {
		t.Errorf("large float: %q", got)
	}
	if got := formatFloat(0.00123); got != "0.0012" {
		t.Errorf("small float: %q", got)
	}
	if got := formatFloat(7); got != "7" {
		t.Errorf("integral float: %q", got)
	}
}

func TestFormatCI(t *testing.T) {
	cases := []struct {
		mean, hw float64
		want     string
	}{
		{1.5, 0.25, "1.50 ± 0.2500"},
		{1234.5, 10, "1234 ± 10"},
		{0.001234, 0.0005, "0.0012 ± 0.0005"},
		{42, 0, "42 ± 0"},
	}
	for _, c := range cases {
		if got := FormatCI(c.mean, c.hw); got != c.want {
			t.Errorf("FormatCI(%v, %v) = %q, want %q", c.mean, c.hw, got, c.want)
		}
	}
}
