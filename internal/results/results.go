// Package results renders experiment outcomes as aligned text tables,
// ASCII bar charts (linear or logarithmic), line series, and CSV — the
// formats the benchmark harness and the lpreport tool use to regenerate
// the paper's tables and figures on a terminal.
package results

import (
	"fmt"
	"math"
	"strings"
)

// Table is a simple aligned-column text table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// AddRow appends a row; values are formatted with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = formatFloat(v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

func formatFloat(v float64) string {
	av := math.Abs(v)
	switch {
	case v == math.Trunc(v) && av < 1e15:
		return fmt.Sprintf("%.0f", v)
	case av >= 1000:
		return fmt.Sprintf("%.0f", v)
	case av >= 1:
		return fmt.Sprintf("%.2f", v)
	default:
		return fmt.Sprintf("%.4f", v)
	}
}

// FormatCI renders a mean ± half-width confidence interval with the
// table float formatting, so interval cells align with plain numeric
// cells in the same table.
func FormatCI(mean, halfWidth float64) string {
	return formatFloat(mean) + " ± " + formatFloat(halfWidth)
}

// String renders the table.
func (t *Table) String() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Headers)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, r := range t.Rows {
		line(r)
	}
	return b.String()
}

// CSV renders the table as comma-separated values.
func (t *Table) CSV() string {
	var b strings.Builder
	esc := func(s string) string {
		if strings.ContainsAny(s, ",\"\n") {
			return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
		}
		return s
	}
	for i, h := range t.Headers {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(esc(h))
	}
	b.WriteByte('\n')
	for _, r := range t.Rows {
		for i, c := range r {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(esc(c))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// BarChart renders labeled horizontal bars, optionally on a log10 scale
// (the paper's speedup figures span 1–30,000×).
type BarChart struct {
	Title string
	Log   bool
	Width int // bar width in characters (default 50)
	bars  []bar
}

type bar struct {
	label string
	value float64
}

// Add appends one bar.
func (c *BarChart) Add(label string, value float64) {
	c.bars = append(c.bars, bar{label, value})
}

// String renders the chart.
func (c *BarChart) String() string {
	width := c.Width
	if width <= 0 {
		width = 50
	}
	var maxV float64
	var maxLabel int
	for _, b := range c.bars {
		if b.value > maxV {
			maxV = b.value
		}
		if len(b.label) > maxLabel {
			maxLabel = len(b.label)
		}
	}
	scale := func(v float64) int {
		if maxV <= 0 || v <= 0 {
			return 0
		}
		if c.Log {
			lm := math.Log10(maxV + 1)
			if lm == 0 {
				return 0
			}
			return int(math.Log10(v+1) / lm * float64(width))
		}
		return int(v / maxV * float64(width))
	}
	var sb strings.Builder
	if c.Title != "" {
		fmt.Fprintf(&sb, "%s\n", c.Title)
	}
	for _, b := range c.bars {
		n := scale(b.value)
		fmt.Fprintf(&sb, "%-*s |%s %s\n", maxLabel, b.label,
			strings.Repeat("#", n), formatFloat(b.value))
	}
	return sb.String()
}

// Series renders one or more named numeric series as rows of sparkline
// characters (used for Figure 3's per-thread shares and Figure 4's IPC
// traces).
type Series struct {
	Title string
	Names []string
	Data  [][]float64
}

var sparks = []rune("▁▂▃▄▅▆▇█")

// String renders each series as a sparkline with min/max annotations.
func (s *Series) String() string {
	var b strings.Builder
	if s.Title != "" {
		fmt.Fprintf(&b, "%s\n", s.Title)
	}
	maxName := 0
	for _, n := range s.Names {
		if len(n) > maxName {
			maxName = len(n)
		}
	}
	for i, data := range s.Data {
		name := ""
		if i < len(s.Names) {
			name = s.Names[i]
		}
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, v := range data {
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
		fmt.Fprintf(&b, "%-*s ", maxName, name)
		for _, v := range data {
			idx := 0
			if hi > lo {
				idx = int((v - lo) / (hi - lo) * float64(len(sparks)-1))
			}
			b.WriteRune(sparks[idx])
		}
		if len(data) > 0 {
			fmt.Fprintf(&b, "  [%.3g .. %.3g]", lo, hi)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Seconds formats a duration in seconds with human units (the Figure 1
// y-axis runs from hours to years).
func Seconds(s float64) string {
	switch {
	case s < 120:
		return fmt.Sprintf("%.3gs", s)
	case s < 2*3600:
		return fmt.Sprintf("%.3gmin", s/60)
	case s < 2*86400:
		return fmt.Sprintf("%.3gh", s/3600)
	case s < 2*31557600:
		return fmt.Sprintf("%.3gd", s/86400)
	default:
		return fmt.Sprintf("%.3gyr", s/31557600)
	}
}
