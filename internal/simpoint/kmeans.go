package simpoint

import "math"

// boundSlack is the relative safety margin applied whenever a Hamerly
// bound is set or drifted. Upper bounds are inflated and lower bounds
// deflated by this factor, so the accumulated floating-point rounding of
// the bound arithmetic (additions, correctly-rounded sqrts, and the
// ~dims·ε error of an exact distance evaluation, all orders of magnitude
// below 1e-12 relative) can never make a bound claim an assignment is
// settled when the exact comparison the slow path performs would flip it.
// Exact ties — duplicate points or coincident centroids — leave no gap
// between the bounds, so the strict u < bound test always falls through
// to the exact path and reproduces the slow path's first-index
// tie-breaking. The slack only ever loosens bounds, costing a few extra
// exact distance evaluations, never a different result.
const boundSlack = 1e-12

// kmeansScratch holds every buffer one kmeansFast run needs, allocated
// once up front so the Lloyd iterations run with zero steady-state
// allocations. Centroids and points live in flat contiguous arrays — no
// [][]float64 pointer chasing on the hot distance loops.
type kmeansScratch struct {
	cents    []float64 // k*dims current centroids
	prev     []float64 // k*dims previous centroids (movement computation)
	counts   []int     // per-centroid member count
	mv       []float64 // per-centroid movement since last iteration (inflated)
	half     []float64 // per-centroid half-distance to nearest other centroid (deflated)
	upper    []float64 // per-point upper bound on distance to assigned centroid
	lower    []float64 // per-point lower bound on distance to any other centroid
	assign   []int
	d2       []float64 // k-means++ running nearest-centroid distances
}

func newKMeansScratch(n, k, dims int) *kmeansScratch {
	return &kmeansScratch{
		cents:  make([]float64, k*dims),
		prev:   make([]float64, k*dims),
		counts: make([]int, k),
		mv:     make([]float64, k),
		half:   make([]float64, k),
		upper:  make([]float64, n),
		lower:  make([]float64, n),
		assign: make([]int, n),
		d2:     make([]float64, n),
	}
}

// kmeansFast is the accelerated k-means engine: k-means++ seeding with
// incrementally maintained nearest-centroid distances, then Lloyd
// iterations with Hamerly-style triangle-inequality bounds that skip
// provably-unchanged assignments. It returns exactly what KMeansSlow
// returns for the same inputs — identical assignments, centroids, and
// distortion, bit for bit:
//
//   - the RNG consumption and the ++ selection arithmetic are the slow
//     path's, and the incremental distance minima are the same floats the
//     slow path's full recomputation produces (min over identical terms);
//   - an assignment is skipped only when the slack-guarded bounds prove
//     the exact argmin could not change; whenever a point is actually
//     evaluated, the evaluation is the slow path's loop — centroids in
//     index order, strict less-than — so tie-breaking matches;
//   - centroid recomputation accumulates members in point order over the
//     flat arrays, the same op sequence as the slow path's nested loops,
//     and the iteration/termination structure is mirrored exactly.
func kmeansFast(pts []float64, n, dims, k int, seed uint64, maxIter int) ([]int, [][]float64, float64) {
	s := newKMeansScratch(n, k, dims)
	rng := seed | 1
	next := func() uint64 {
		rng = splitmix64(rng)
		return rng
	}
	pt := func(i int) []float64 { return pts[i*dims : (i+1)*dims] }
	cent := func(j int) []float64 { return s.cents[j*dims : (j+1)*dims] }

	// k-means++ seeding. The slow path recomputes every point's nearest
	// seeded centroid from scratch per round (O(nk²·dims)); here d2 holds
	// the running minimum and each round folds in only the newest
	// centroid (O(nk·dims)). Seeded centroids never move, so the running
	// minimum is the same float the full recomputation's first-strict-
	// minimum scan yields.
	first := int(next() % uint64(n))
	copy(cent(0), pt(first))
	for m := 1; m < k; m++ {
		newest := s.cents[(m-1)*dims : m*dims]
		var sum float64
		for i := 0; i < n; i++ {
			d := sqDist(pt(i), newest)
			if m == 1 || d < s.d2[i] {
				s.d2[i] = d
			}
			sum += s.d2[i]
		}
		var pick int
		if sum == 0 {
			pick = int(next() % uint64(n))
		} else {
			target := float64(next()>>11) / float64(1<<53) * sum
			acc := 0.0
			for i, d := range s.d2[:n] {
				acc += d
				if acc >= target {
					pick = i
					break
				}
			}
		}
		copy(s.cents[m*dims:(m+1)*dims], pt(pick))
	}

	const inflate = 1 + boundSlack
	const deflate = 1 - boundSlack
	assign := s.assign
	for iter := 0; iter < maxIter; iter++ {
		changed := false
		if iter == 0 {
			// First pass: every point is evaluated exactly; bounds are
			// initialized from the true best and second-best distances.
			for i := 0; i < n; i++ {
				bestJ, bestD, secondD := argmin2(pt(i), s.cents, k, dims)
				if assign[i] != bestJ {
					assign[i] = bestJ
					changed = true
				}
				s.upper[i] = math.Sqrt(bestD) * inflate
				s.lower[i] = math.Sqrt(secondD) * deflate
			}
		} else {
			for i := 0; i < n; i++ {
				a := assign[i]
				bound := s.lower[i]
				if s.half[a] > bound {
					bound = s.half[a]
				}
				if s.upper[i] < bound {
					continue // provably still nearest; skip
				}
				// Tighten the upper bound with one exact distance before
				// paying for the full scan.
				s.upper[i] = math.Sqrt(sqDist(pt(i), cent(a))) * inflate
				if s.upper[i] < bound {
					continue
				}
				bestJ, bestD, secondD := argmin2(pt(i), s.cents, k, dims)
				if bestJ != a {
					assign[i] = bestJ
					changed = true
				}
				s.upper[i] = math.Sqrt(bestD) * inflate
				s.lower[i] = math.Sqrt(secondD) * deflate
			}
		}
		if !changed && iter > 0 {
			break
		}

		// Recompute centroids from the assignments — the slow path's op
		// sequence on flat arrays: zero, accumulate members in point
		// order, divide occupied centroids (a dead centroid becomes the
		// origin, compacted later).
		copy(s.prev, s.cents)
		for j := range s.counts {
			s.counts[j] = 0
		}
		for i := range s.cents {
			s.cents[i] = 0
		}
		for i := 0; i < n; i++ {
			j := assign[i]
			s.counts[j]++
			c := s.cents[j*dims : (j+1)*dims]
			for d, x := range pt(i) {
				c[d] += x
			}
		}
		for j := 0; j < k; j++ {
			if s.counts[j] == 0 {
				continue
			}
			c := cent(j)
			for d := 0; d < dims; d++ {
				c[d] /= float64(s.counts[j])
			}
		}

		// Drift the bounds by the centroid movements (triangle
		// inequality): the assigned centroid moved at most mv[a] closer
		// or further, every other centroid at most maxMv closer.
		var maxMv float64
		for j := 0; j < k; j++ {
			s.mv[j] = math.Sqrt(sqDist(s.prev[j*dims:(j+1)*dims], cent(j))) * inflate
			if s.mv[j] > maxMv {
				maxMv = s.mv[j]
			}
		}
		for i := 0; i < n; i++ {
			s.upper[i] = (s.upper[i] + s.mv[assign[i]]) * inflate
			s.lower[i] = s.lower[i]*deflate - maxMv
		}
		// Half the distance from each centroid to its nearest sibling: a
		// point within that radius of its centroid cannot be closer to
		// any other (Hamerly's second pruning condition).
		for j := 0; j < k; j++ {
			minD := math.Inf(1)
			for j2 := 0; j2 < k; j2++ {
				if j2 == j {
					continue
				}
				if d := sqDist(cent(j), cent(j2)); d < minD {
					minD = d
				}
			}
			s.half[j] = 0.5 * math.Sqrt(minD) * deflate
		}
	}

	var dist float64
	for i := 0; i < n; i++ {
		dist += sqDist(pt(i), cent(assign[i]))
	}
	outAssign := make([]int, n)
	copy(outAssign, assign)
	cents := make([][]float64, k)
	for j := 0; j < k; j++ {
		cents[j] = append([]float64(nil), cent(j)...)
	}
	return outAssign, cents, dist
}

// argmin2 scans the flat centroid array in index order with strict
// less-than comparisons — the slow path's argmin, verbatim — and also
// tracks the second-best distance for the Hamerly lower bound.
//
// Distances accumulate term by term in dimension order, exactly like
// sqDist, so any distance that finishes the scan is the same float the
// slow path computes. A centroid may be abandoned early once its partial
// sum reaches secondD: squared terms only grow the sum, so the full
// distance would satisfy d >= secondD >= bestD and could change neither
// the argmin (strict <) nor the second-best — the abandoned value is
// never used.
func argmin2(p, cents []float64, k, dims int) (bestJ int, bestD, secondD float64) {
	bestD, secondD = math.Inf(1), math.Inf(1)
	for j := 0; j < k; j++ {
		c := cents[j*dims : (j+1)*dims]
		var s float64
		i := 0
		for i+4 <= dims {
			d := p[i] - c[i]
			s += d * d
			d = p[i+1] - c[i+1]
			s += d * d
			d = p[i+2] - c[i+2]
			s += d * d
			d = p[i+3] - c[i+3]
			s += d * d
			i += 4
			if s >= secondD {
				break
			}
		}
		if s >= secondD {
			continue // provably neither best nor second-best
		}
		for ; i < dims; i++ {
			d := p[i] - c[i]
			s += d * d
		}
		if s < bestD {
			secondD = bestD
			bestJ, bestD = j, s
		} else if s < secondD {
			secondD = s
		}
	}
	return bestJ, bestD, secondD
}
