package simpoint_test

// Statistical calibration of the stratified selection engine against
// synthetic populations with known ground truth (run via `make
// test-stats` and the CI calibration job). These are frequentist
// experiments over hundreds of fully seeded trials, so the verdicts are
// deterministic — a fixed seed list, not wall-clock randomness:
//
//   - a nominal 95% interval must achieve 92–98% empirical coverage of
//     the true total over repeated seeded selections, and
//   - Neyman allocation must beat proportional allocation on mean
//     interval half-width for a heteroscedastic population (the entire
//     point of spending the pilot phase).
//
// The estimator under test is the production path: draws come from
// StratifiedSelector.Select and intervals from stats.StratifiedEstimate
// — the same code core.ComputeIntervals runs on simulated regions.

import (
	"testing"

	"looppoint/internal/simpoint"
	"looppoint/internal/stats"
)

// calibPopulation is a synthetic region population with known
// per-region metric rates and a known true total.
type calibPopulation struct {
	vectors [][]float64
	weights []float64
	rates   []float64
	total   float64
}

// heteroscedastic builds a population of nPerCluster regions around each
// of 4 cluster centers. Cluster h has metric rate base[h] plus noise of
// scale sigma[h], and BBV jitter proportional to sigma[h] — the
// correlation the pilot phase exploits. Region work is uniform (the
// profiled slices are fixed-size), so the stratum total W_h·r̄_h is
// exact, not a ratio approximation.
func heteroscedastic(seed uint64) *calibPopulation {
	const (
		perCluster = 30
		dim        = 6
		work       = 100000.0
	)
	base := []float64{2, 3, 5, 8}
	sigma := []float64{0.02, 0.05, 0.8, 2.0}
	rng := prng(seed)
	// gauss approximates a standard normal as a centered Irwin–Hall sum.
	gauss := func() float64 {
		s := 0.0
		for i := 0; i < 12; i++ {
			s += rng.float()
		}
		return s - 6
	}
	p := &calibPopulation{}
	for c := range base {
		center := make([]float64, dim)
		for d := range center {
			center[d] = float64(c) * 1000
		}
		for i := 0; i < perCluster; i++ {
			vec := make([]float64, dim)
			for d := range vec {
				vec[d] = center[d] + 30*sigma[c]*gauss()
			}
			rate := base[c] + sigma[c]*gauss()
			if rate < 0.1 {
				rate = 0.1
			}
			p.vectors = append(p.vectors, vec)
			p.weights = append(p.weights, work)
			p.rates = append(p.rates, rate)
			p.total += rate * work
		}
	}
	return p
}

// estimateTotal mirrors core.ComputeIntervals: group the drawn rates by
// stratum and run the production stratified estimator.
func estimateTotal(p *calibPopulation, sel *simpoint.Selection, level float64) stats.Interval {
	samples := make([]stats.StratumSample, len(sel.Strata))
	for h, st := range sel.Strata {
		var work float64
		for _, m := range st.Members {
			work += p.weights[m]
		}
		samples[h] = stats.StratumSample{Work: work, Size: st.Size()}
	}
	for _, dr := range sel.Regions {
		samples[dr.Stratum].Rates = append(samples[dr.Stratum].Rates, p.rates[dr.Index])
	}
	return stats.StratifiedEstimate(samples, level)
}

// selectTrial runs one seeded stratified selection on the population.
func selectTrial(t *testing.T, p *calibPopulation, seed uint64, proportional bool) *simpoint.Selection {
	t.Helper()
	sl, err := simpoint.NewSelector("stratified")
	if err != nil {
		t.Fatal(err)
	}
	sel, err := sl.Select(p.vectors, p.weights,
		simpoint.Options{MaxK: 8, Seed: seed},
		simpoint.SelectorOpts{Budget: 60, Proportional: proportional})
	if err != nil {
		t.Fatalf("seed %d: %v", seed, err)
	}
	return sel
}

// TestCalibrationCoverage runs 250 seeded trials and requires the
// nominal 95% interval to cover the true total between 92% and 98% of
// the time. Both directions matter: undercoverage means the intervals
// lie about their confidence, overcoverage means the estimator is
// wasting budget on needlessly wide intervals.
func TestCalibrationCoverage(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration sweep skipped in -short mode")
	}
	const trials = 250
	p := heteroscedastic(12345)
	covered := 0
	for seed := uint64(1); seed <= trials; seed++ {
		sel := selectTrial(t, p, seed, false)
		iv := estimateTotal(p, sel, 0.95)
		if iv.HalfWidth <= 0 {
			t.Fatalf("seed %d: degenerate interval %v", seed, iv)
		}
		if iv.Covers(p.total) {
			covered++
		}
	}
	coverage := float64(covered) / trials
	t.Logf("empirical coverage: %d/%d = %.1f%% (nominal 95%%)", covered, trials, coverage*100)
	if coverage < 0.92 || coverage > 0.98 {
		t.Errorf("empirical coverage %.1f%% outside the 92–98%% acceptance band for a nominal 95%% interval", coverage*100)
	}
}

// TestCalibrationNeymanBeatsProportional compares allocation rules on
// the heteroscedastic population: across seeded trials, Neyman's mean
// interval half-width must be strictly smaller than proportional's —
// otherwise the pilot phase buys nothing.
func TestCalibrationNeymanBeatsProportional(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration sweep skipped in -short mode")
	}
	const trials = 100
	p := heteroscedastic(12345)
	var neySum, propSum float64
	for seed := uint64(1); seed <= trials; seed++ {
		ney := estimateTotal(p, selectTrial(t, p, seed, false), 0.95)
		prop := estimateTotal(p, selectTrial(t, p, seed, true), 0.95)
		neySum += ney.HalfWidth
		propSum += prop.HalfWidth
	}
	neyMean, propMean := neySum/trials, propSum/trials
	t.Logf("mean half-width: Neyman %.0f vs proportional %.0f (%.1f%% tighter)",
		neyMean, propMean, (1-neyMean/propMean)*100)
	if neyMean >= propMean {
		t.Errorf("Neyman mean half-width %.0f is not below proportional %.0f on a heteroscedastic population", neyMean, propMean)
	}
}

// TestCalibrationEstimatorUnbiased sanity-checks the point estimate:
// averaged over seeded trials, the stratified estimate must land within
// half a percent of the true total (the draws are uniform within strata
// and region work is uniform, so the estimator is exactly unbiased).
func TestCalibrationEstimatorUnbiased(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration sweep skipped in -short mode")
	}
	const trials = 200
	p := heteroscedastic(12345)
	var sum float64
	for seed := uint64(1); seed <= trials; seed++ {
		sum += estimateTotal(p, selectTrial(t, p, seed, false), 0.95).Mean
	}
	mean := sum / trials
	relErr := (mean - p.total) / p.total
	t.Logf("mean estimate %.0f vs true %.0f (rel err %.3f%%)", mean, p.total, relErr*100)
	if relErr < -0.005 || relErr > 0.005 {
		t.Errorf("mean estimate off by %.3f%% over %d trials — estimator biased", relErr*100, trials)
	}
}
