package simpoint_test

// Golden regression pin for selection engines. The JSON under testdata/
// records, for seeded synthetic populations, everything a selection
// determines downstream: chosen k, cluster assignments, representative
// draws, and full-precision stratum/draw weights. The comparison is on
// exact file bytes (Go's float64 JSON encoding is shortest-round-trip,
// so equal bytes means equal bits) — the "simpoint" entries pin the
// medoid rule byte-identical to the pre-interface selections, and the
// "stratified" entries pin the seeded draw streams so an innocent
// refactor of the permutation or allocation code cannot silently
// reshuffle every published selection.
//
// Regenerate deliberately with:
//
//	go test ./internal/simpoint/ -run TestGoldenSelections -update-golden

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"looppoint/internal/simpoint"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite the selection golden file instead of comparing")

type goldenDraw struct {
	Index   int     `json:"index"`
	Stratum int     `json:"stratum"`
	Weight  float64 `json:"weight"`
}

type goldenEntry struct {
	Fixture string       `json:"fixture"`
	Engine  string       `json:"engine"`
	K       int          `json:"k,omitempty"`
	Assign  []int        `json:"assign,omitempty"`
	Reps    []int        `json:"reps,omitempty"`
	Draws   []goldenDraw `json:"draws"`
	Weights []float64    `json:"stratum_weights"`
}

const goldenPath = "testdata/selections_golden.json"

func TestGoldenSelections(t *testing.T) {
	fixtures := []struct {
		name              string
		seed              uint64
		n, k, dim         int
		jitter            float64
		budget            int
	}{
		{"clustered-small", 101, 30, 3, 5, 1.5, 0},
		{"clustered-large", 202, 80, 5, 8, 3.0, 24},
		{"ties", 303, 24, 2, 4, 0.0, 10},
	}
	var entries []goldenEntry
	for _, fx := range fixtures {
		vectors, weights := synthPopulation(fx.seed, fx.n, fx.k, fx.dim, fx.jitter)
		for _, engine := range []string{"simpoint", "stratified"} {
			sl, err := simpoint.NewSelector(engine)
			if err != nil {
				t.Fatal(err)
			}
			sel, err := sl.Select(vectors, weights,
				simpoint.Options{MaxK: 8, Seed: fx.seed},
				simpoint.SelectorOpts{Budget: fx.budget})
			if err != nil {
				t.Fatalf("%s/%s: %v", fx.name, engine, err)
			}
			e := goldenEntry{Fixture: fx.name, Engine: engine}
			if sel.Result != nil {
				e.K = sel.Result.K
				e.Assign = sel.Result.Assign
				e.Reps = sel.Result.Reps
			}
			for _, dr := range sel.Regions {
				e.Draws = append(e.Draws, goldenDraw{dr.Index, dr.Stratum, dr.Weight})
			}
			for _, st := range sel.Strata {
				e.Weights = append(e.Weights, st.Weight)
			}
			entries = append(entries, e)
		}
	}
	got, err := json.MarshalIndent(entries, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')

	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d entries)", goldenPath, len(entries))
		return
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("%v (regenerate with -update-golden after a deliberate selection change)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("selections diverged from %s — selections must stay byte-identical across refactors; if this change is deliberate, regenerate with -update-golden and call it out in review", goldenPath)
	}
}
