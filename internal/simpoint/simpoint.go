// Package simpoint implements SimPoint-style phase clustering (paper
// Section III-E): per-thread BBVs are concatenated into one global vector
// per region, normalized, projected to a low dimension by a deterministic
// random linear projection, and clustered with k-means; the number of
// clusters is chosen with the Bayesian Information Criterion up to maxK.
// One representative region per cluster (the one nearest the centroid) is
// selected, weighted by the work its cluster represents.
package simpoint

import (
	"fmt"
	"math"
	"sort"

	"looppoint/internal/bbv"
)

// DefaultDims is the projected dimensionality used by the paper.
const DefaultDims = 100

// DefaultMaxK is the paper's maximum cluster count.
const DefaultMaxK = 50

// DefaultBICThreshold selects the smallest k scoring at least this
// fraction of the best BIC range (the standard SimPoint heuristic).
const DefaultBICThreshold = 0.9

// splitmix64 is the deterministic hash behind the projection matrix and
// the k-means seeding.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// projEntry returns the pseudo-random projection matrix entry in [-1, 1)
// for (row, col) under the given seed, without materializing the matrix.
func projEntry(seed uint64, row, col int) float64 {
	h := splitmix64(seed ^ splitmix64(uint64(row)*0x100000001B3+uint64(col)))
	return float64(h>>11)/float64(1<<53)*2 - 1
}

// ProjectRegions concatenates each region's per-thread BBVs into one
// global sparse vector (thread t's block b maps to row t*nblocks+b),
// normalizes it to unit L1 mass, and projects it to dims dimensions.
// The concatenation preserves per-thread behaviour so heterogeneous
// regions cluster apart (Section III-B).
func ProjectRegions(regions []*bbv.Region, nblocks, dims int, seed uint64) [][]float64 {
	out := make([][]float64, len(regions))
	for i, r := range regions {
		v := make([]float64, dims)
		// Sparse BBVs are maps; a fixed traversal order keeps the
		// floating-point accumulation reproducible run to run (map order
		// would perturb vectors by ULPs and flip k-means tie-breaks).
		keys := make([][]int, len(r.Vectors))
		total := 0.0
		for t, tv := range r.Vectors {
			keys[t] = sortedBlocks(tv)
			for _, blk := range keys[t] {
				total += tv[blk]
			}
		}
		if total == 0 {
			out[i] = v
			continue
		}
		for t, tv := range r.Vectors {
			base := t * nblocks
			for _, blk := range keys[t] {
				row := base + blk
				nw := tv[blk] / total
				for d := 0; d < dims; d++ {
					v[d] += nw * projEntry(seed, row, d)
				}
			}
		}
		out[i] = v
	}
	return out
}

// sortedBlocks returns a sparse BBV's block indices in increasing order.
func sortedBlocks(tv map[int]float64) []int {
	blocks := make([]int, 0, len(tv))
	for blk := range tv {
		blocks = append(blocks, blk)
	}
	sort.Ints(blocks)
	return blocks
}

// SumProjectRegions is the naive alternative used by the baseline
// multi-threaded SimPoint adaptation: per-thread vectors are summed
// instead of concatenated, losing thread-heterogeneity information.
func SumProjectRegions(regions []*bbv.Region, nblocks, dims int, seed uint64) [][]float64 {
	out := make([][]float64, len(regions))
	for i, r := range regions {
		v := make([]float64, dims)
		keys := make([][]int, len(r.Vectors))
		total := 0.0
		for t, tv := range r.Vectors {
			keys[t] = sortedBlocks(tv)
			for _, blk := range keys[t] {
				total += tv[blk]
			}
		}
		if total == 0 {
			out[i] = v
			continue
		}
		for t, tv := range r.Vectors {
			for _, blk := range keys[t] {
				nw := tv[blk] / total
				for d := 0; d < dims; d++ {
					v[d] += nw * projEntry(seed, blk, d)
				}
			}
		}
		out[i] = v
	}
	return out
}

// Result describes a clustering outcome.
type Result struct {
	K         int
	Assign    []int       // cluster per region
	Centroids [][]float64 // K centroids
	// Reps holds, per cluster, the index of the region closest to the
	// centroid — the cluster's representative (the looppoint).
	Reps []int
	// ClusterWeight is the summed region weight per cluster, normalized
	// to 1 across clusters.
	ClusterWeight []float64
	// BICByK records the BIC score for each k evaluated (index k-1).
	BICByK []float64
	// Distortion is the final sum of squared distances.
	Distortion float64
}

// Options configures clustering.
type Options struct {
	MaxK         int     // maximum clusters (default DefaultMaxK)
	Seed         uint64  // deterministic seeding
	BICThreshold float64 // default DefaultBICThreshold
	MaxIter      int     // Lloyd iterations per k (default 100)
}

func (o *Options) fill() {
	if o.MaxK <= 0 {
		o.MaxK = DefaultMaxK
	}
	if o.BICThreshold <= 0 {
		o.BICThreshold = DefaultBICThreshold
	}
	if o.MaxIter <= 0 {
		o.MaxIter = 100
	}
}

// Cluster clusters the projected vectors. weights give each region's work
// (filtered instruction count); they drive representative weighting only,
// not the geometry.
func Cluster(vectors [][]float64, weights []float64, opts Options) (*Result, error) {
	if len(vectors) == 0 {
		return nil, fmt.Errorf("simpoint: no regions to cluster")
	}
	if len(weights) != len(vectors) {
		return nil, fmt.Errorf("simpoint: %d weights for %d vectors", len(weights), len(vectors))
	}
	opts.fill()
	n := len(vectors)
	maxK := opts.MaxK
	if maxK > n {
		maxK = n
	}

	// Variance floor: synthetic or extremely regular workloads can have
	// regions that are near-duplicates, driving within-cluster variance
	// toward zero and making the spherical-Gaussian log-likelihood grow
	// without bound as k increases — the classic X-means failure mode
	// when the dimensionality (100) exceeds the number of regions (often
	// a few dozen here, versus thousands of slices at paper scale).
	// Real BBVs carry measurement noise that bounds this; we emulate that
	// noise floor as a fraction of the data's total variance so the
	// likelihood saturates once genuine cluster structure is captured and
	// the parameter penalty can select a parsimonious k. The 5% setting
	// means structure explaining at least ~95% of the variance is
	// resolvable and residual jitter is not chased.
	varFloor := dataVariance(vectors) * 0.05
	if varFloor < 1e-12 {
		varFloor = 1e-12
	}

	type attempt struct {
		k      int
		assign []int
		cents  [][]float64
		bic    float64
		dist   float64
	}
	var attempts []attempt
	best := math.Inf(-1)
	for k := 1; k <= maxK; k++ {
		assign, cents, dist := kmeans(vectors, k, opts.Seed+uint64(k), opts.MaxIter)
		b := bic(vectors, assign, cents, dist, varFloor)
		attempts = append(attempts, attempt{k, assign, cents, b, dist})
		if b > best {
			best = b
		}
	}
	worst := math.Inf(1)
	for _, a := range attempts {
		if a.bic < worst {
			worst = a.bic
		}
	}
	// Smallest k whose BIC reaches the threshold fraction of the range.
	cut := worst + opts.BICThreshold*(best-worst)
	chosen := attempts[len(attempts)-1]
	for _, a := range attempts {
		if a.bic >= cut {
			chosen = a
			break
		}
	}

	res := &Result{
		K:          chosen.k,
		Assign:     chosen.assign,
		Centroids:  chosen.cents,
		Distortion: chosen.dist,
	}
	for _, a := range attempts {
		res.BICByK = append(res.BICByK, a.bic)
	}

	// Representatives and weights.
	res.Reps = make([]int, chosen.k)
	res.ClusterWeight = make([]float64, chosen.k)
	bestDist := make([]float64, chosen.k)
	for j := range res.Reps {
		res.Reps[j] = -1
		bestDist[j] = math.Inf(1)
	}
	var totalW float64
	for i, v := range vectors {
		j := chosen.assign[i]
		d := sqDist(v, chosen.cents[j])
		if d < bestDist[j] {
			bestDist[j], res.Reps[j] = d, i
		}
		res.ClusterWeight[j] += weights[i]
		totalW += weights[i]
	}
	if totalW > 0 {
		for j := range res.ClusterWeight {
			res.ClusterWeight[j] /= totalW
		}
	}
	// Drop empty clusters (possible when k-means loses a centroid).
	res.compact()
	return res, nil
}

func (r *Result) compact() {
	remap := make([]int, len(r.Reps))
	var reps []int
	var ws []float64
	var cents [][]float64
	for j, rep := range r.Reps {
		if rep < 0 {
			remap[j] = -1
			continue
		}
		remap[j] = len(reps)
		reps = append(reps, rep)
		ws = append(ws, r.ClusterWeight[j])
		cents = append(cents, r.Centroids[j])
	}
	for i, a := range r.Assign {
		if remap[a] >= 0 {
			r.Assign[i] = remap[a]
		}
	}
	r.Reps, r.ClusterWeight, r.Centroids = reps, ws, cents
	r.K = len(reps)
}

// kmeans runs k-means++ seeding followed by Lloyd iterations.
func kmeans(vectors [][]float64, k int, seed uint64, maxIter int) ([]int, [][]float64, float64) {
	n := len(vectors)
	dims := len(vectors[0])
	rng := seed | 1

	next := func() uint64 {
		rng = splitmix64(rng)
		return rng
	}

	// k-means++ seeding.
	cents := make([][]float64, 0, k)
	first := int(next() % uint64(n))
	cents = append(cents, append([]float64(nil), vectors[first]...))
	d2 := make([]float64, n)
	for len(cents) < k {
		var sum float64
		for i, v := range vectors {
			d := sqDist(v, cents[0])
			for _, c := range cents[1:] {
				if dd := sqDist(v, c); dd < d {
					d = dd
				}
			}
			d2[i] = d
			sum += d
		}
		var pick int
		if sum == 0 {
			pick = int(next() % uint64(n))
		} else {
			target := float64(next()>>11) / float64(1<<53) * sum
			acc := 0.0
			for i, d := range d2 {
				acc += d
				if acc >= target {
					pick = i
					break
				}
			}
		}
		cents = append(cents, append([]float64(nil), vectors[pick]...))
	}

	assign := make([]int, n)
	for iter := 0; iter < maxIter; iter++ {
		changed := false
		for i, v := range vectors {
			bestJ, bestD := 0, math.Inf(1)
			for j, c := range cents {
				if d := sqDist(v, c); d < bestD {
					bestJ, bestD = j, d
				}
			}
			if assign[i] != bestJ {
				assign[i] = bestJ
				changed = true
			}
		}
		if !changed && iter > 0 {
			break
		}
		counts := make([]int, k)
		for j := range cents {
			for d := 0; d < dims; d++ {
				cents[j][d] = 0
			}
		}
		for i, v := range vectors {
			j := assign[i]
			counts[j]++
			for d, x := range v {
				cents[j][d] += x
			}
		}
		for j := range cents {
			if counts[j] == 0 {
				continue // dead centroid; stays at origin, compacted later
			}
			for d := 0; d < dims; d++ {
				cents[j][d] /= float64(counts[j])
			}
		}
	}
	var dist float64
	for i, v := range vectors {
		dist += sqDist(v, cents[assign[i]])
	}
	return assign, cents, dist
}

// dataVariance returns the average squared distance of the vectors from
// their global mean.
func dataVariance(vectors [][]float64) float64 {
	if len(vectors) == 0 {
		return 0
	}
	dims := len(vectors[0])
	mean := make([]float64, dims)
	for _, v := range vectors {
		for d, x := range v {
			mean[d] += x
		}
	}
	for d := range mean {
		mean[d] /= float64(len(vectors))
	}
	var sum float64
	for _, v := range vectors {
		sum += sqDist(v, mean)
	}
	return sum / float64(len(vectors))
}

// bic computes the Bayesian Information Criterion of a clustering under
// the identical-spherical-Gaussian model (Pelleg & Moore's X-means
// formulation, as used by SimPoint).
func bic(vectors [][]float64, assign []int, cents [][]float64, distortion, varFloor float64) float64 {
	r := float64(len(vectors))
	k := float64(len(cents))
	m := float64(len(vectors[0]))
	variance := distortion / math.Max(r-k, 1)
	if variance < varFloor {
		variance = varFloor
	}
	counts := make([]float64, len(cents))
	for _, a := range assign {
		counts[a]++
	}
	var llh float64
	for _, rn := range counts {
		if rn <= 0 {
			continue
		}
		llh += rn*math.Log(rn) - rn*math.Log(r) -
			rn*m/2*math.Log(2*math.Pi*variance) - (rn-1)*m/2
	}
	params := k * (m + 1)
	return llh - params/2*math.Log(r)
}

func sqDist(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// NearestCentroid returns the centroid index closest to v (exported for
// invariant checking in tests).
func NearestCentroid(v []float64, cents [][]float64) int {
	bestJ, bestD := 0, math.Inf(1)
	for j, c := range cents {
		if d := sqDist(v, c); d < bestD {
			bestJ, bestD = j, d
		}
	}
	return bestJ
}

// SortedClusterSizes returns the cluster occupancy counts in descending
// order (diagnostics).
func (r *Result) SortedClusterSizes() []int {
	counts := make([]int, r.K)
	for _, a := range r.Assign {
		counts[a]++
	}
	sort.Sort(sort.Reverse(sort.IntSlice(counts)))
	return counts
}
