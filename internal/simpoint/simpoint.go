// Package simpoint implements SimPoint-style phase clustering (paper
// Section III-E): per-thread BBVs are concatenated into one global vector
// per region, normalized, projected to a low dimension by a deterministic
// random linear projection, and clustered with k-means; the number of
// clusters is chosen with the Bayesian Information Criterion up to maxK.
// One representative region per cluster (the one nearest the centroid) is
// selected, weighted by the work its cluster represents.
//
// The package keeps two implementations of the pipeline. The fast engine
// (the default) materializes regions as sorted sparse vectors, caches
// projection-matrix rows so each touched row is hashed exactly once,
// accelerates Lloyd's iterations with Hamerly-style triangle-inequality
// bounds over flat contiguous arrays, and fans the k=1..maxK BIC sweep
// out over a worker pool. The naive reference path (ProjectRegionsSlow,
// KMeansSlow, Options.Slow) is the original straight-line implementation.
// Both produce byte-identical Results for the same inputs and seeds —
// pinned by the identity tests — so selections, resume journals, and
// golden files are interchangeable between them.
package simpoint

import (
	"context"
	"fmt"
	"math"
	"sort"

	"looppoint/internal/bbv"
	"looppoint/internal/pool"
)

// DefaultDims is the projected dimensionality used by the paper.
const DefaultDims = 100

// DefaultMaxK is the paper's maximum cluster count.
const DefaultMaxK = 50

// DefaultBICThreshold selects the smallest k scoring at least this
// fraction of the best BIC range (the standard SimPoint heuristic).
const DefaultBICThreshold = 0.9

// splitmix64 is the deterministic hash behind the projection matrix and
// the k-means seeding.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// projEntry returns the pseudo-random projection matrix entry in [-1, 1)
// for (row, col) under the given seed, without materializing the matrix.
func projEntry(seed uint64, row, col int) float64 {
	h := splitmix64(seed ^ splitmix64(uint64(row)*0x100000001B3+uint64(col)))
	return float64(h>>11)/float64(1<<53)*2 - 1
}

// projRows lazily materializes projection-matrix rows into one flat
// backing array, so each touched row costs its dims splitmix64 hashes
// exactly once per projection pass instead of once per (region, entry).
type projRows struct {
	seed uint64
	dims int
	off  map[int]int // row index → offset into flat
	flat []float64
}

func newProjRows(seed uint64, dims int) *projRows {
	return &projRows{seed: seed, dims: dims, off: make(map[int]int)}
}

// row returns the dims projection entries of the given matrix row. The
// returned slice aliases the cache and is only valid until the next call
// (growth may reallocate the backing array).
func (p *projRows) row(r int) []float64 {
	off, ok := p.off[r]
	if !ok {
		off = len(p.flat)
		for d := 0; d < p.dims; d++ {
			p.flat = append(p.flat, projEntry(p.seed, r, d))
		}
		p.off[r] = off
	}
	return p.flat[off : off+p.dims]
}

// ProjectRegions concatenates each region's per-thread BBVs into one
// global sparse vector (thread t's block b maps to row t*nblocks+b),
// normalizes it to unit L1 mass, and projects it to dims dimensions.
// The concatenation preserves per-thread behaviour so heterogeneous
// regions cluster apart (Section III-B).
//
// This is the sparse fast path: regions are materialized as sorted
// (index, weight) vectors and projected by sparse dot products against
// cached matrix rows. The accumulation order — threads in order, block
// indices ascending — matches ProjectRegionsSlow term for term, so the
// output is byte-identical to the naive path. It runs serially; see
// ProjectRegionsN for the parallel variant (same output).
func ProjectRegions(regions []*bbv.Region, nblocks, dims int, seed uint64) [][]float64 {
	return ProjectRegionsN(regions, nblocks, dims, seed, 1)
}

// ProjectRegionsN is ProjectRegions fanned out over a worker pool
// (workers <= 0 means one per CPU). Each region's projection is an
// independent computation and results are gathered by region index, so
// the output is byte-identical at every width.
func ProjectRegionsN(regions []*bbv.Region, nblocks, dims int, seed uint64, workers int) [][]float64 {
	return projectAll(regions, nblocks, dims, seed, 0, workers)
}

// SumProjectRegions is the naive alternative used by the baseline
// multi-threaded SimPoint adaptation: per-thread vectors are summed
// instead of concatenated, losing thread-heterogeneity information.
// Like ProjectRegions it runs on the sparse fast path (rows are folded
// modulo nblocks, preserving the per-(thread, block) accumulation order
// of SumProjectRegionsSlow, which keeps the floats identical).
func SumProjectRegions(regions []*bbv.Region, nblocks, dims int, seed uint64) [][]float64 {
	return SumProjectRegionsN(regions, nblocks, dims, seed, 1)
}

// SumProjectRegionsN is SumProjectRegions on a worker pool; output is
// byte-identical at every width.
func SumProjectRegionsN(regions []*bbv.Region, nblocks, dims int, seed uint64, workers int) [][]float64 {
	return projectAll(regions, nblocks, dims, seed, nblocks, workers)
}

// projectAll materializes every region as a sorted sparse vector,
// populates the projection-row cache for the union of touched rows, and
// projects each region by sparse dot products. The three phases exist so
// the parallel ones touch only per-region state: materialization and
// projection fan out over the pool (independent per region, gathered by
// index), while the shared row cache is filled in between by one
// goroutine and is read-only afterwards.
func projectAll(regions []*bbv.Region, nblocks, dims int, seed uint64, foldMod, workers int) [][]float64 {
	n := len(regions)
	svs := make([][]bbv.SparseEntry, n)
	if n == 0 {
		return nil
	}
	// Phase 1: materialize sparse vectors (parallel).
	mapNoErr(workers, n, func(i int) { svs[i] = regions[i].SparseVector(nblocks) })
	// Phase 2: populate the row cache once per touched row (serial).
	rows := newProjRows(seed, dims)
	for _, sv := range svs {
		for _, e := range sv {
			rows.row(foldRow(e.Index, foldMod))
		}
	}
	// Phase 3: project (parallel; cache is read-only now).
	out := make([][]float64, n)
	mapNoErr(workers, n, func(i int) { out[i] = projectSparse(svs[i], rows, dims, foldMod) })
	return out
}

// mapNoErr runs fn over [0, n) on the pool; the closure cannot fail and
// the pool only errors on context cancellation, which Background never
// does.
func mapNoErr(workers, n int, fn func(i int)) {
	_ = pool.Run(context.Background(), workers, n, func(_ context.Context, i int) error {
		fn(i)
		return nil
	})
}

// foldRow maps a sparse-entry index to its projection-matrix row: the
// index itself for the concatenated layout, index % foldMod for the
// summed baseline (every thread shares the first nblocks rows).
func foldRow(idx, foldMod int) int {
	if foldMod > 0 {
		return idx % foldMod
	}
	return idx
}

// projectSparse projects one materialized sparse BBV. Contributions are
// accumulated entry by entry in sorted order — the same term order as the
// naive per-map traversal — so results match the slow path bit for bit.
func projectSparse(sv []bbv.SparseEntry, rows *projRows, dims, foldMod int) []float64 {
	v := make([]float64, dims)
	var total float64
	for _, e := range sv {
		total += e.Weight
	}
	if total == 0 {
		return v
	}
	for _, e := range sv {
		nw := e.Weight / total
		pr := rows.row(foldRow(e.Index, foldMod))[:len(v)]
		for d := range v {
			v[d] += nw * pr[d]
		}
	}
	return v
}

// Result describes a clustering outcome.
type Result struct {
	K         int
	Assign    []int       // cluster per region
	Centroids [][]float64 // K centroids
	// Reps holds, per cluster, the index of the region closest to the
	// centroid — the cluster's representative (the looppoint).
	Reps []int
	// ClusterWeight is the summed region weight per cluster, normalized
	// to 1 across clusters.
	ClusterWeight []float64
	// BICByK records the BIC score for each k evaluated (index k-1).
	BICByK []float64
	// Distortion is the final sum of squared distances.
	Distortion float64
}

// Options configures clustering.
type Options struct {
	MaxK         int     // maximum clusters (default DefaultMaxK)
	Seed         uint64  // deterministic seeding
	BICThreshold float64 // default DefaultBICThreshold
	MaxIter      int     // Lloyd iterations per k (default 100)
	// Workers bounds the parallel k=1..maxK BIC sweep (0 = one worker
	// per CPU, 1 = serial). Every k is an independent k-means run with
	// its own seed, and attempts are gathered by k, so the Result is
	// byte-identical at every width.
	Workers int
	// Slow forces the naive reference path: serial sweep over KMeansSlow
	// with no triangle-inequality acceleration. Output is identical to
	// the fast path (the identity tests pin this); the flag exists for
	// cross-checking and for the -slowpath plumbing.
	Slow bool
}

func (o *Options) fill() {
	if o.MaxK <= 0 {
		o.MaxK = DefaultMaxK
	}
	if o.BICThreshold <= 0 {
		o.BICThreshold = DefaultBICThreshold
	}
	if o.MaxIter <= 0 {
		o.MaxIter = 100
	}
}

// attempt is one k-means run of the BIC sweep.
type attempt struct {
	k      int
	assign []int
	cents  [][]float64
	bic    float64
	dist   float64
}

// Cluster clusters the projected vectors. weights give each region's work
// (filtered instruction count); they drive representative weighting only,
// not the geometry.
//
// The k=1..maxK sweep runs on a worker pool (Options.Workers): each k is
// seeded independently (Seed+k) exactly as the serial sweep always was,
// and attempts are collected by k before the BIC threshold scan, so the
// chosen k, assignments, and scores do not depend on the width.
func Cluster(vectors [][]float64, weights []float64, opts Options) (*Result, error) {
	if len(vectors) == 0 {
		return nil, fmt.Errorf("simpoint: no regions to cluster")
	}
	if len(weights) != len(vectors) {
		return nil, fmt.Errorf("simpoint: %d weights for %d vectors", len(weights), len(vectors))
	}
	opts.fill()
	n := len(vectors)
	maxK := opts.MaxK
	if maxK > n {
		maxK = n
	}

	// Variance floor: synthetic or extremely regular workloads can have
	// regions that are near-duplicates, driving within-cluster variance
	// toward zero and making the spherical-Gaussian log-likelihood grow
	// without bound as k increases — the classic X-means failure mode
	// when the dimensionality (100) exceeds the number of regions (often
	// a few dozen here, versus thousands of slices at paper scale).
	// Real BBVs carry measurement noise that bounds this; we emulate that
	// noise floor as a fraction of the data's total variance so the
	// likelihood saturates once genuine cluster structure is captured and
	// the parameter penalty can select a parsimonious k. The 5% setting
	// means structure explaining at least ~95% of the variance is
	// resolvable and residual jitter is not chased.
	varFloor := dataVariance(vectors) * 0.05
	if varFloor < 1e-12 {
		varFloor = 1e-12
	}

	var attempts []attempt
	if opts.Slow {
		for k := 1; k <= maxK; k++ {
			assign, cents, dist := KMeansSlow(vectors, k, opts.Seed+uint64(k), opts.MaxIter)
			attempts = append(attempts, attempt{k, assign, cents, bic(vectors, assign, cents, dist, varFloor), dist})
		}
	} else {
		dims := len(vectors[0])
		flat := make([]float64, n*dims)
		for i, v := range vectors {
			copy(flat[i*dims:(i+1)*dims], v)
		}
		var err error
		attempts, err = pool.Map(context.Background(), opts.Workers, maxK,
			func(_ context.Context, i int) (attempt, error) {
				k := i + 1
				assign, cents, dist := kmeansFast(flat, n, dims, k, opts.Seed+uint64(k), opts.MaxIter)
				return attempt{k, assign, cents, bic(vectors, assign, cents, dist, varFloor), dist}, nil
			})
		if err != nil {
			return nil, fmt.Errorf("simpoint: BIC sweep: %w", err)
		}
	}

	best := math.Inf(-1)
	worst := math.Inf(1)
	for _, a := range attempts {
		if a.bic > best {
			best = a.bic
		}
		if a.bic < worst {
			worst = a.bic
		}
	}
	// Smallest k whose BIC reaches the threshold fraction of the range.
	cut := worst + opts.BICThreshold*(best-worst)
	chosen := attempts[len(attempts)-1]
	for _, a := range attempts {
		if a.bic >= cut {
			chosen = a
			break
		}
	}

	res := &Result{
		K:          chosen.k,
		Assign:     chosen.assign,
		Centroids:  chosen.cents,
		Distortion: chosen.dist,
	}
	for _, a := range attempts {
		res.BICByK = append(res.BICByK, a.bic)
	}

	// Representatives and weights.
	res.Reps = make([]int, chosen.k)
	res.ClusterWeight = make([]float64, chosen.k)
	bestDist := make([]float64, chosen.k)
	for j := range res.Reps {
		res.Reps[j] = -1
		bestDist[j] = math.Inf(1)
	}
	var totalW float64
	for i, v := range vectors {
		j := chosen.assign[i]
		d := sqDist(v, chosen.cents[j])
		if d < bestDist[j] {
			bestDist[j], res.Reps[j] = d, i
		}
		res.ClusterWeight[j] += weights[i]
		totalW += weights[i]
	}
	if totalW > 0 {
		for j := range res.ClusterWeight {
			res.ClusterWeight[j] /= totalW
		}
	}
	// Drop empty clusters (possible when k-means loses a centroid).
	res.compact()
	return res, nil
}

func (r *Result) compact() {
	remap := make([]int, len(r.Reps))
	var reps []int
	var ws []float64
	var cents [][]float64
	for j, rep := range r.Reps {
		if rep < 0 {
			remap[j] = -1
			continue
		}
		remap[j] = len(reps)
		reps = append(reps, rep)
		ws = append(ws, r.ClusterWeight[j])
		cents = append(cents, r.Centroids[j])
	}
	for i, a := range r.Assign {
		if remap[a] >= 0 {
			r.Assign[i] = remap[a]
		}
	}
	r.Reps, r.ClusterWeight, r.Centroids = reps, ws, cents
	r.K = len(reps)
}

// dataVariance returns the average squared distance of the vectors from
// their global mean.
func dataVariance(vectors [][]float64) float64 {
	if len(vectors) == 0 {
		return 0
	}
	dims := len(vectors[0])
	mean := make([]float64, dims)
	for _, v := range vectors {
		for d, x := range v {
			mean[d] += x
		}
	}
	for d := range mean {
		mean[d] /= float64(len(vectors))
	}
	var sum float64
	for _, v := range vectors {
		sum += sqDist(v, mean)
	}
	return sum / float64(len(vectors))
}

// bic computes the Bayesian Information Criterion of a clustering under
// the identical-spherical-Gaussian model (Pelleg & Moore's X-means
// formulation, as used by SimPoint).
func bic(vectors [][]float64, assign []int, cents [][]float64, distortion, varFloor float64) float64 {
	r := float64(len(vectors))
	k := float64(len(cents))
	m := float64(len(vectors[0]))
	variance := distortion / math.Max(r-k, 1)
	if variance < varFloor {
		variance = varFloor
	}
	counts := make([]float64, len(cents))
	for _, a := range assign {
		counts[a]++
	}
	var llh float64
	for _, rn := range counts {
		if rn <= 0 {
			continue
		}
		llh += rn*math.Log(rn) - rn*math.Log(r) -
			rn*m/2*math.Log(2*math.Pi*variance) - (rn-1)*m/2
	}
	params := k * (m + 1)
	return llh - params/2*math.Log(r)
}

func sqDist(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// NearestCentroid returns the centroid index closest to v (exported for
// invariant checking in tests).
func NearestCentroid(v []float64, cents [][]float64) int {
	bestJ, bestD := 0, math.Inf(1)
	for j, c := range cents {
		if d := sqDist(v, c); d < bestD {
			bestJ, bestD = j, d
		}
	}
	return bestJ
}

// SortedClusterSizes returns the cluster occupancy counts in descending
// order (diagnostics).
func (r *Result) SortedClusterSizes() []int {
	counts := make([]int, r.K)
	for _, a := range r.Assign {
		counts[a]++
	}
	sort.Sort(sort.Reverse(sort.IntSlice(counts)))
	return counts
}
