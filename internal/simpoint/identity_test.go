package simpoint

import (
	"fmt"
	"math"
	"reflect"
	"sort"
	"testing"

	"looppoint/internal/bbv"
)

// The fast clustering engine (sparse projection, Hamerly-bounded k-means,
// parallel BIC sweep) must be byte-identical to the naive reference path:
// same seeds in, same floats out, for projections, per-k k-means runs,
// and the full Cluster Result. These tests are the contract that lets
// pre-existing selections, resume journals, and golden files stay valid.

// testRNG is a tiny deterministic generator for fuzz-style inputs.
type testRNG uint64

func (r *testRNG) next() uint64 {
	*r = testRNG(splitmix64(uint64(*r)))
	return uint64(*r)
}

func (r *testRNG) float() float64 { return float64(r.next()>>11) / float64(1<<53) }

func (r *testRNG) intn(n int) int { return int(r.next() % uint64(n)) }

// randomRegions builds a random multi-threaded BBV region set: sparse
// per-thread vectors with random supports and weights, plus occasional
// empty threads and duplicate regions to hit the degenerate paths.
func randomRegions(rng *testRNG, n, threads, nblocks int) []*bbv.Region {
	regions := make([]*bbv.Region, n)
	for i := range regions {
		vecs := make([]map[int]float64, threads)
		for t := range vecs {
			vecs[t] = map[int]float64{}
			if rng.intn(10) == 0 {
				continue // empty thread
			}
			for b := 0; b < 1+rng.intn(12); b++ {
				vecs[t][rng.intn(nblocks)] = float64(1 + rng.intn(1000))
			}
		}
		regions[i] = &bbv.Region{Index: i, Vectors: vecs}
	}
	// Duplicate a few regions verbatim: identical projected points force
	// exact distance ties, dead centroids, and compact() remapping.
	for i := 2; i < n; i += 5 {
		regions[i].Vectors = regions[i-1].Vectors
	}
	return regions
}

func TestProjectRegionsFastSlowIdentity(t *testing.T) {
	rng := testRNG(7)
	for trial := 0; trial < 6; trial++ {
		n := 5 + rng.intn(40)
		threads := 1 + rng.intn(8)
		nblocks := 16 + rng.intn(200)
		dims := 4 + rng.intn(32)
		seed := rng.next()
		regions := randomRegions(&rng, n, threads, nblocks)

		fast := ProjectRegions(regions, nblocks, dims, seed)
		slow := ProjectRegionsSlow(regions, nblocks, dims, seed)
		if !reflect.DeepEqual(fast, slow) {
			t.Fatalf("trial %d: ProjectRegions fast/slow differ (n=%d threads=%d nblocks=%d dims=%d seed=%d)",
				trial, n, threads, nblocks, dims, seed)
		}
		sumFast := SumProjectRegions(regions, nblocks, dims, seed)
		sumSlow := SumProjectRegionsSlow(regions, nblocks, dims, seed)
		if !reflect.DeepEqual(sumFast, sumSlow) {
			t.Fatalf("trial %d: SumProjectRegions fast/slow differ", trial)
		}
	}
}

func TestKMeansFastSlowIdentity(t *testing.T) {
	rng := testRNG(99)
	cases := [][][]float64{}
	// Well-separated blobs, noisy data, exact duplicates, and all-equal
	// points (forces sum==0 seeding and coincident centroids).
	vecs, _ := blobs(90, 4, 12, 5)
	cases = append(cases, vecs)
	noisy := make([][]float64, 60)
	for i := range noisy {
		v := make([]float64, 10)
		for d := range v {
			v[d] = rng.float() * 10
		}
		noisy[i] = v
	}
	for i := 3; i < len(noisy); i += 4 {
		noisy[i] = noisy[i-1] // duplicates: exact distance ties
	}
	cases = append(cases, noisy)
	same := make([][]float64, 20)
	for i := range same {
		same[i] = []float64{1, 2, 3}
	}
	cases = append(cases, same)

	for ci, vs := range cases {
		n, dims := len(vs), len(vs[0])
		flat := make([]float64, n*dims)
		for i, v := range vs {
			copy(flat[i*dims:], v)
		}
		for k := 1; k <= 8 && k <= n; k++ {
			for _, seed := range []uint64{1, 3, 17} {
				sa, sc, sd := KMeansSlow(vs, k, seed, 100)
				fa, fc, fd := kmeansFast(flat, n, dims, k, seed, 100)
				if !reflect.DeepEqual(sa, fa) {
					t.Fatalf("case %d k=%d seed=%d: assignments differ\nslow: %v\nfast: %v", ci, k, seed, sa, fa)
				}
				if !reflect.DeepEqual(sc, fc) {
					t.Fatalf("case %d k=%d seed=%d: centroids differ", ci, k, seed)
				}
				if sd != fd {
					t.Fatalf("case %d k=%d seed=%d: distortion differs: %v vs %v", ci, k, seed, sd, fd)
				}
			}
		}
	}
}

// TestClusterFastSlowIdentityFuzz clusters random BBV sets end to end on
// both paths and asserts the Result structs are identical — the satellite
// fuzz-style identity requirement.
func TestClusterFastSlowIdentityFuzz(t *testing.T) {
	rng := testRNG(1234)
	for trial := 0; trial < 8; trial++ {
		n := 8 + rng.intn(60)
		threads := 1 + rng.intn(6)
		nblocks := 20 + rng.intn(150)
		dims := 6 + rng.intn(20)
		seed := rng.next()
		maxK := 1 + rng.intn(12)
		regions := randomRegions(&rng, n, threads, nblocks)
		vectors := ProjectRegions(regions, nblocks, dims, seed)
		weights := make([]float64, n)
		for i := range weights {
			weights[i] = float64(1 + rng.intn(10_000))
		}

		slow, err := Cluster(vectors, weights, Options{MaxK: maxK, Seed: seed, Slow: true})
		if err != nil {
			t.Fatalf("trial %d: slow: %v", trial, err)
		}
		for _, workers := range []int{1, 4} {
			fast, err := Cluster(vectors, weights, Options{MaxK: maxK, Seed: seed, Workers: workers})
			if err != nil {
				t.Fatalf("trial %d: fast(workers=%d): %v", trial, workers, err)
			}
			if !reflect.DeepEqual(slow, fast) {
				t.Fatalf("trial %d (n=%d maxK=%d seed=%d workers=%d): fast/slow Results differ\nslow: %+v\nfast: %+v",
					trial, n, maxK, seed, workers, slow, fast)
			}
		}
	}
}

// TestClusterWorkerWidthInvariant pins the parallel-sweep determinism
// contract directly: the Result is identical at every worker width.
func TestClusterWorkerWidthInvariant(t *testing.T) {
	vecs, _ := blobs(120, 5, 16, 31)
	w := ones(120)
	base, err := Cluster(vecs, w, Options{MaxK: 15, Seed: 9, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 3, 8} {
		got, err := Cluster(vecs, w, Options{MaxK: 15, Seed: 9, Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(base, got) {
			t.Fatalf("workers=%d: Result differs from workers=1", workers)
		}
	}
}

func TestClusterMaxKGreaterThanN(t *testing.T) {
	// maxK must clamp to n: the sweep evaluates exactly n attempts and
	// both paths agree, including on the degenerate n=1 and n=2 sets.
	for _, n := range []int{1, 2, 5} {
		vecs, _ := blobs(n, min(n, 2), 6, 3)
		w := ones(n)
		slow, err := Cluster(vecs, w, Options{MaxK: 50, Seed: 2, Slow: true})
		if err != nil {
			t.Fatalf("n=%d slow: %v", n, err)
		}
		fast, err := Cluster(vecs, w, Options{MaxK: 50, Seed: 2})
		if err != nil {
			t.Fatalf("n=%d fast: %v", n, err)
		}
		if len(fast.BICByK) != n {
			t.Errorf("n=%d: %d BIC scores, want %d (maxK not clamped)", n, len(fast.BICByK), n)
		}
		if fast.K > n {
			t.Errorf("n=%d: chose k=%d > n", n, fast.K)
		}
		if !reflect.DeepEqual(slow, fast) {
			t.Errorf("n=%d: fast/slow differ under maxK > n", n)
		}
	}
}

// TestClusterDuplicatePointsCompact drives Cluster into the
// dead-centroid path: with every point identical, k-means++ seeds
// coincident centroids, all points collapse into cluster 0, and
// compact() must drop the empty clusters.
func TestClusterDuplicatePointsCompact(t *testing.T) {
	vecs := make([][]float64, 12)
	for i := range vecs {
		vecs[i] = []float64{4, 4, 4, 4}
	}
	for _, slow := range []bool{false, true} {
		res, err := Cluster(vecs, ones(12), Options{MaxK: 5, Seed: 11, Slow: slow})
		if err != nil {
			t.Fatal(err)
		}
		if res.K != 1 {
			t.Errorf("slow=%v: duplicate points produced K=%d, want 1", slow, res.K)
		}
		if len(res.Reps) != res.K || len(res.Centroids) != res.K || len(res.ClusterWeight) != res.K {
			t.Errorf("slow=%v: compact left inconsistent lengths: %d reps, %d cents, %d weights",
				slow, len(res.Reps), len(res.Centroids), len(res.ClusterWeight))
		}
		for i, a := range res.Assign {
			if a != 0 {
				t.Errorf("slow=%v: point %d assigned to %d after compaction", slow, i, a)
			}
		}
		if math.Abs(res.ClusterWeight[0]-1) > 1e-12 {
			t.Errorf("slow=%v: surviving cluster weight %v, want 1", slow, res.ClusterWeight[0])
		}
	}
}

// TestCompactDropsEmptyClusters unit-tests Result.compact directly:
// clusters whose representative is -1 (centroid lost during Lloyd
// iterations) are removed, survivors are renumbered in order, and
// assignments are remapped.
func TestCompactDropsEmptyClusters(t *testing.T) {
	r := &Result{
		K:             4,
		Assign:        []int{0, 2, 2, 0, 3},
		Centroids:     [][]float64{{0}, {9}, {2}, {3}},
		Reps:          []int{0, -1, 1, 4},
		ClusterWeight: []float64{0.5, 0, 0.3, 0.2},
	}
	r.compact()
	if r.K != 3 {
		t.Fatalf("K=%d after compact, want 3", r.K)
	}
	if want := []int{0, 1, 4}; !reflect.DeepEqual(r.Reps, want) {
		t.Errorf("Reps=%v, want %v", r.Reps, want)
	}
	if want := []int{0, 1, 1, 0, 2}; !reflect.DeepEqual(r.Assign, want) {
		t.Errorf("Assign=%v, want %v", r.Assign, want)
	}
	if want := [][]float64{{0}, {2}, {3}}; !reflect.DeepEqual(r.Centroids, want) {
		t.Errorf("Centroids=%v, want %v", r.Centroids, want)
	}
	if want := []float64{0.5, 0.3, 0.2}; !reflect.DeepEqual(r.ClusterWeight, want) {
		t.Errorf("ClusterWeight=%v, want %v", r.ClusterWeight, want)
	}
}

// TestClusterGoldenSelections freezes the fast path against a table of
// known-good outcomes computed by the reference path, so a regression in
// either engine — or a silent divergence between them — fails with a
// readable diff rather than deep inside an end-to-end run.
func TestClusterGoldenSelections(t *testing.T) {
	for _, tc := range []struct {
		n, trueK, dims, maxK int
		seed                 uint64
	}{
		{60, 3, 8, 10, 1},
		{80, 4, 6, 8, 5},
		{120, 6, 16, 20, 42},
	} {
		t.Run(fmt.Sprintf("n%d-k%d", tc.n, tc.trueK), func(t *testing.T) {
			vecs, _ := blobs(tc.n, tc.trueK, tc.dims, tc.seed)
			slow, err := Cluster(vecs, ones(tc.n), Options{MaxK: tc.maxK, Seed: tc.seed, Slow: true})
			if err != nil {
				t.Fatal(err)
			}
			fast, err := Cluster(vecs, ones(tc.n), Options{MaxK: tc.maxK, Seed: tc.seed})
			if err != nil {
				t.Fatal(err)
			}
			if slow.K != tc.trueK {
				t.Errorf("reference path chose k=%d, want %d", slow.K, tc.trueK)
			}
			if !reflect.DeepEqual(slow, fast) {
				t.Errorf("fast path diverges from reference:\nslow: K=%d Reps=%v BIC=%v\nfast: K=%d Reps=%v BIC=%v",
					slow.K, slow.Reps, slow.BICByK, fast.K, fast.Reps, fast.BICByK)
			}
		})
	}
}

// TestSimPointSelectorMatchesDirectCluster pins the refactored medoid
// engine to the pre-interface selection rule: SimPointSelector.Select
// must carry exactly the Result a direct Cluster call produces (same
// arguments, same floats) and draw exactly its Reps, one per cluster —
// the identity that keeps every existing selection, golden file, and
// resume journal valid under the Selector interface.
func TestSimPointSelectorMatchesDirectCluster(t *testing.T) {
	rng := testRNG(31)
	for trial := 0; trial < 5; trial++ {
		n := 8 + rng.intn(50)
		vectors, _ := blobs(n, 1+rng.intn(5), 6, uint64(rng.next()))
		weights := make([]float64, n)
		for i := range weights {
			weights[i] = float64(1 + rng.intn(100000))
		}
		opts := Options{MaxK: 8, Seed: uint64(trial) + 1, Workers: 1 + rng.intn(4)}

		direct, err := Cluster(vectors, weights, opts)
		if err != nil {
			t.Fatal(err)
		}
		sel, err := SimPointSelector{}.Select(vectors, weights, opts, SelectorOpts{})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(sel.Result, direct) {
			t.Fatalf("trial %d: selector's clustering Result differs from a direct Cluster call", trial)
		}
		if len(sel.Regions) != direct.K {
			t.Fatalf("trial %d: %d draws for %d clusters", trial, len(sel.Regions), direct.K)
		}
		reps := append([]int(nil), direct.Reps...)
		sort.Ints(reps)
		for i, dr := range sel.Regions {
			if dr.Index != reps[i] {
				t.Fatalf("trial %d: draw %d is region %d, want medoid %d", trial, i, dr.Index, reps[i])
			}
			if direct.Assign[dr.Index] != dr.Stratum {
				t.Fatalf("trial %d: draw %d stratum %d, assignment says %d",
					trial, dr.Index, dr.Stratum, direct.Assign[dr.Index])
			}
			if st := sel.Strata[dr.Stratum]; st.Sampled != 1 {
				t.Fatalf("trial %d: medoid stratum %d sampled %d, want exactly 1", trial, dr.Stratum, st.Sampled)
			}
		}
	}
}
