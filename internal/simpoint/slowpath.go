package simpoint

import (
	"math"
	"sort"

	"looppoint/internal/bbv"
)

// This file is the naive reference implementation of the clustering
// pipeline — the exact code the fast engine replaced, kept as the
// -slowpath cross-check (the same playbook the block-batched execution
// fast path followed). The identity tests assert the two paths produce
// byte-identical projections and Results; any divergence is a bug in the
// fast engine, never an accepted behaviour change.

// ProjectRegionsSlow is the naive reference projection: per-entry
// projection-matrix hashing with no row cache and no materialized sparse
// vectors. Output is byte-identical to ProjectRegions.
func ProjectRegionsSlow(regions []*bbv.Region, nblocks, dims int, seed uint64) [][]float64 {
	out := make([][]float64, len(regions))
	for i, r := range regions {
		v := make([]float64, dims)
		// Sparse BBVs are maps; a fixed traversal order keeps the
		// floating-point accumulation reproducible run to run (map order
		// would perturb vectors by ULPs and flip k-means tie-breaks).
		keys := make([][]int, len(r.Vectors))
		total := 0.0
		for t, tv := range r.Vectors {
			keys[t] = sortedBlocks(tv)
			for _, blk := range keys[t] {
				total += tv[blk]
			}
		}
		if total == 0 {
			out[i] = v
			continue
		}
		for t, tv := range r.Vectors {
			base := t * nblocks
			for _, blk := range keys[t] {
				row := base + blk
				nw := tv[blk] / total
				for d := 0; d < dims; d++ {
					v[d] += nw * projEntry(seed, row, d)
				}
			}
		}
		out[i] = v
	}
	return out
}

// SumProjectRegionsSlow is the naive reference for the summed-BBV
// baseline projection. Output is byte-identical to SumProjectRegions.
func SumProjectRegionsSlow(regions []*bbv.Region, nblocks, dims int, seed uint64) [][]float64 {
	out := make([][]float64, len(regions))
	for i, r := range regions {
		v := make([]float64, dims)
		keys := make([][]int, len(r.Vectors))
		total := 0.0
		for t, tv := range r.Vectors {
			keys[t] = sortedBlocks(tv)
			for _, blk := range keys[t] {
				total += tv[blk]
			}
		}
		if total == 0 {
			out[i] = v
			continue
		}
		for t, tv := range r.Vectors {
			for _, blk := range keys[t] {
				nw := tv[blk] / total
				for d := 0; d < dims; d++ {
					v[d] += nw * projEntry(seed, blk, d)
				}
			}
		}
		out[i] = v
	}
	return out
}

// sortedBlocks returns a sparse BBV's block indices in increasing order.
func sortedBlocks(tv map[int]float64) []int {
	blocks := make([]int, 0, len(tv))
	for blk := range tv {
		blocks = append(blocks, blk)
	}
	sort.Ints(blocks)
	return blocks
}

// KMeansSlow is the naive reference k-means: k-means++ seeding with full
// per-round distance recomputation, then plain Lloyd iterations with a
// complete argmin per point per iteration. kmeansFast reproduces its
// output bit for bit.
func KMeansSlow(vectors [][]float64, k int, seed uint64, maxIter int) ([]int, [][]float64, float64) {
	n := len(vectors)
	dims := len(vectors[0])
	rng := seed | 1

	next := func() uint64 {
		rng = splitmix64(rng)
		return rng
	}

	// k-means++ seeding.
	cents := make([][]float64, 0, k)
	first := int(next() % uint64(n))
	cents = append(cents, append([]float64(nil), vectors[first]...))
	d2 := make([]float64, n)
	for len(cents) < k {
		var sum float64
		for i, v := range vectors {
			d := sqDist(v, cents[0])
			for _, c := range cents[1:] {
				if dd := sqDist(v, c); dd < d {
					d = dd
				}
			}
			d2[i] = d
			sum += d
		}
		var pick int
		if sum == 0 {
			pick = int(next() % uint64(n))
		} else {
			target := float64(next()>>11) / float64(1<<53) * sum
			acc := 0.0
			for i, d := range d2 {
				acc += d
				if acc >= target {
					pick = i
					break
				}
			}
		}
		cents = append(cents, append([]float64(nil), vectors[pick]...))
	}

	assign := make([]int, n)
	for iter := 0; iter < maxIter; iter++ {
		changed := false
		for i, v := range vectors {
			bestJ, bestD := 0, math.Inf(1)
			for j, c := range cents {
				if d := sqDist(v, c); d < bestD {
					bestJ, bestD = j, d
				}
			}
			if assign[i] != bestJ {
				assign[i] = bestJ
				changed = true
			}
		}
		if !changed && iter > 0 {
			break
		}
		counts := make([]int, k)
		for j := range cents {
			for d := 0; d < dims; d++ {
				cents[j][d] = 0
			}
		}
		for i, v := range vectors {
			j := assign[i]
			counts[j]++
			for d, x := range v {
				cents[j][d] += x
			}
		}
		for j := range cents {
			if counts[j] == 0 {
				continue // dead centroid; stays at origin, compacted later
			}
			for d := 0; d < dims; d++ {
				cents[j][d] /= float64(counts[j])
			}
		}
	}
	var dist float64
	for i, v := range vectors {
		dist += sqDist(v, cents[assign[i]])
	}
	return assign, cents, dist
}
