package simpoint

// This file defines the pluggable selection-engine layer: a Selector
// turns projected region vectors and per-region work weights into a
// Selection — which regions to simulate, organized into strata with
// per-draw weights. Two engines live here:
//
//   - "simpoint": the classic SimPoint medoid rule — cluster, then pick
//     the one region nearest each centroid. One draw per stratum, so
//     downstream extrapolation is a point estimate (no estimable
//     variance).
//   - "stratified": two-phase stratified random sampling (after "CPU
//     Simulation Using Two-Phase Stratified Sampling", arXiv:2603.22605).
//     Phase one draws a cheap seeded pilot per cluster and estimates the
//     within-stratum scatter; phase two spends the remaining region
//     budget where the variance lives (Neyman allocation) and draws
//     seeded random representatives. Multiple draws per stratum make
//     per-metric confidence intervals estimable (internal/stats).
//
// The BarrierPoint and time-based baselines (internal/baselines) register
// additional engines beside these through RegisterSelector. Every engine
// is deterministic: the same (vectors, weights, seeds) produce the same
// Selection at every worker width.

import (
	"fmt"
	"math"
	"sort"
	"sync"
)

// DefaultPilot is the phase-one pilot draw count per stratum.
const DefaultPilot = 2

// DefaultConfidence is the default confidence level for the intervals
// computed from a stratified selection.
const DefaultConfidence = 0.95

// SelectorOpts parameterizes a Select call beyond the clustering knobs.
type SelectorOpts struct {
	// Budget is the total number of regions to draw across all strata.
	// Engines clamp it to [number of strata, number of regions]; <= 0
	// selects the engine default (the stratified engine draws
	// min(2·K, N); the medoid engine always draws exactly K).
	Budget int
	// Pilot is the phase-one draw count per stratum (stratified engine;
	// <= 0 → DefaultPilot). Pilot draws are reused in phase two.
	Pilot int
	// Proportional switches the stratified engine's phase-two allocation
	// from Neyman (∝ W_h·S_h) to proportional (∝ W_h) — the ablation the
	// calibration suite compares against.
	Proportional bool
}

func (o SelectorOpts) pilot() int {
	if o.Pilot <= 0 {
		return DefaultPilot
	}
	return o.Pilot
}

// SelectedRegion is one drawn representative.
type SelectedRegion struct {
	// Index is the region's index in the profiled region list.
	Index int
	// Stratum is the index into Selection.Strata this draw came from.
	Stratum int
	// Weight is the share of total work this draw stands for: the
	// stratum's work share divided by the stratum's draw count. Weights
	// sum to 1 across the selection.
	Weight float64
}

// Stratum describes one sampling stratum (for clustering engines, one
// cluster).
type Stratum struct {
	// Members lists the region indices belonging to the stratum, in
	// ascending order.
	Members []int
	// Sampled is the number of draws taken from the stratum (n_h).
	Sampled int
	// Work is the summed region weight of the members (W_h, unnormalized).
	Work float64
	// Weight is Work normalized across strata; stratum weights sum to 1.
	Weight float64
	// PilotVar is the phase-one within-stratum variance estimate that
	// drove the allocation (0 for engines without a pilot phase).
	PilotVar float64
}

// Size returns the stratum's population count N_h.
func (s Stratum) Size() int { return len(s.Members) }

// Selection is the engine-independent output of a Selector.
type Selection struct {
	// Engine names the selector that produced the selection.
	Engine string
	// Result is the clustering that defined the strata (nil for engines
	// that stratify without clustering, e.g. time-based).
	Result *Result
	// Regions are the draws, sorted by region index.
	Regions []SelectedRegion
	// Strata describe the sampling frame; SelectedRegion.Stratum indexes
	// this slice.
	Strata []Stratum
}

// Selector is a pluggable selection engine: given projected region
// vectors and per-region work weights, choose which regions to simulate
// and how to weight them.
type Selector interface {
	// Name returns the engine's registry name.
	Name() string
	// Select draws the representatives. copts parameterizes the
	// clustering that defines the strata (engines that do not cluster
	// use only copts.Seed); sopts parameterizes the draw itself.
	Select(vectors [][]float64, weights []float64, copts Options, sopts SelectorOpts) (*Selection, error)
}

// ---- registry ----

var (
	selectorMu       sync.RWMutex
	selectorRegistry = map[string]func() Selector{}
)

// RegisterSelector adds a selection engine under the given name.
// Registering a duplicate name panics: engines are wired at init time
// and a silent overwrite would make selection depend on package-init
// order.
func RegisterSelector(name string, factory func() Selector) {
	selectorMu.Lock()
	defer selectorMu.Unlock()
	if _, dup := selectorRegistry[name]; dup {
		panic(fmt.Sprintf("simpoint: selector %q registered twice", name))
	}
	selectorRegistry[name] = factory
}

// NewSelector instantiates a registered engine by name.
func NewSelector(name string) (Selector, error) {
	selectorMu.RLock()
	factory, ok := selectorRegistry[name]
	selectorMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("simpoint: unknown selector %q (have %v)", name, SelectorNames())
	}
	return factory(), nil
}

// SelectorNames lists the registered engines, sorted.
func SelectorNames() []string {
	selectorMu.RLock()
	defer selectorMu.RUnlock()
	names := make([]string, 0, len(selectorRegistry))
	for n := range selectorRegistry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

func init() {
	RegisterSelector("simpoint", func() Selector { return SimPointSelector{} })
	RegisterSelector("stratified", func() Selector { return StratifiedSelector{} })
}

// clusterStrata converts a clustering Result into strata: one per
// cluster, members ascending (Assign is iterated in region order), work
// summed in member order.
func clusterStrata(res *Result, weights []float64) []Stratum {
	strata := make([]Stratum, res.K)
	for i, j := range res.Assign {
		strata[j].Members = append(strata[j].Members, i)
		strata[j].Work += weights[i]
	}
	NormalizeStrata(strata)
	return strata
}

// NormalizeStrata fills each stratum's normalized Weight from its Work
// (exported for engines registered outside this package).
func NormalizeStrata(strata []Stratum) {
	var total float64
	for i := range strata {
		total += strata[i].Work
	}
	if total <= 0 {
		// Weightless population (all-zero region weights): fall back to
		// member counts so the weights still sum to 1.
		var n int
		for i := range strata {
			n += len(strata[i].Members)
		}
		for i := range strata {
			strata[i].Weight = float64(len(strata[i].Members)) / float64(n)
		}
		return
	}
	for i := range strata {
		strata[i].Weight = strata[i].Work / total
	}
}

// FinishSelection sorts the draws by region index and fills per-draw
// weights from the strata (exported for engines registered outside this
// package).
func FinishSelection(sel *Selection) *Selection {
	for i := range sel.Regions {
		st := sel.Strata[sel.Regions[i].Stratum]
		sel.Regions[i].Weight = st.Weight / float64(st.Sampled)
	}
	sort.Slice(sel.Regions, func(i, j int) bool {
		return sel.Regions[i].Index < sel.Regions[j].Index
	})
	return sel
}

// ---- SimPoint medoid engine ----

// SimPointSelector is the classic SimPoint rule refactored behind the
// Selector interface: cluster with BIC-swept k-means and pick the region
// nearest each centroid. Its Result (and therefore every downstream
// selection, multiplier, and golden file) is byte-identical to the
// pre-interface pipeline — Cluster is called with exactly the same
// arguments, and the medoids are the Reps Cluster already computed.
type SimPointSelector struct{}

// Name implements Selector.
func (SimPointSelector) Name() string { return "simpoint" }

// Select implements Selector.
func (s SimPointSelector) Select(vectors [][]float64, weights []float64, copts Options, sopts SelectorOpts) (*Selection, error) {
	res, err := Cluster(vectors, weights, copts)
	if err != nil {
		return nil, err
	}
	sel := &Selection{Engine: s.Name(), Result: res, Strata: clusterStrata(res, weights)}
	for j, rep := range res.Reps {
		sel.Strata[j].Sampled = 1
		sel.Regions = append(sel.Regions, SelectedRegion{Index: rep, Stratum: j})
	}
	return FinishSelection(sel), nil
}

// ---- two-phase stratified engine ----

// StratifiedSelector is the two-phase stratified sampler. Clusters are
// the strata. Phase one draws a seeded pilot from each stratum and
// estimates its internal scatter in the projected BBV space (the cheap
// proxy for metric variance — regions with similar BBVs perform
// similarly, the premise SimPoint itself rests on). Phase two allocates
// the remaining budget across strata by Neyman allocation
// (n_h ∝ W_h·S_h: spend simulation where the work-weighted variance
// lives) and draws that many distinct members uniformly at random.
//
// Draws are organized as one seeded permutation per stratum whose prefix
// is the pilot: the final sample is the first n_h elements, so the pilot
// draws are reused rather than discarded (standard double sampling) and
// the whole selection is a pure function of (vectors, weights, seeds).
type StratifiedSelector struct{}

// Name implements Selector.
func (StratifiedSelector) Name() string { return "stratified" }

// Select implements Selector.
func (s StratifiedSelector) Select(vectors [][]float64, weights []float64, copts Options, sopts SelectorOpts) (*Selection, error) {
	res, err := Cluster(vectors, weights, copts)
	if err != nil {
		return nil, err
	}
	strata := clusterStrata(res, weights)
	n := len(vectors)

	// One deterministic permutation per stratum; pilot = prefix.
	perms := make([][]int, len(strata))
	for h := range strata {
		perms[h] = permute(strata[h].Members, drawSeed(copts.Seed, h))
	}

	// Phase one: pilot scatter per stratum. S_h² is the mean squared
	// distance of the pilot members from their pilot centroid — zero for
	// singleton strata, where no second draw exists to disagree.
	pilot := sopts.pilot()
	for h := range strata {
		p := min(pilot, len(perms[h]))
		strata[h].PilotVar = scatter(vectors, perms[h][:p])
	}

	// Budget: clamp to [K, N]; default 2 draws per stratum.
	budget := sopts.Budget
	if budget <= 0 {
		budget = 2 * len(strata)
	}
	if budget < len(strata) {
		budget = len(strata)
	}
	if budget > n {
		budget = n
	}
	alloc := allocate(strata, budget, sopts.Proportional)

	// Phase two: the first n_h permutation elements are the sample.
	sel := &Selection{Engine: s.Name(), Result: res, Strata: strata}
	for h := range strata {
		sel.Strata[h].Sampled = alloc[h]
		for _, idx := range perms[h][:alloc[h]] {
			sel.Regions = append(sel.Regions, SelectedRegion{Index: idx, Stratum: h})
		}
	}
	return FinishSelection(sel), nil
}

// drawSeed derives the per-stratum RNG seed. The stratum index is mixed
// through splitmix64 before xoring so neighboring strata get unrelated
// streams even under small master seeds.
func drawSeed(seed uint64, h int) uint64 {
	return splitmix64(seed ^ splitmix64(0xC0FFEE0D15EA5E5+uint64(h)))
}

// permute returns a seeded Fisher-Yates shuffle of members (the input
// slice is not modified).
func permute(members []int, seed uint64) []int {
	out := make([]int, len(members))
	copy(out, members)
	state := seed
	for i := len(out) - 1; i > 0; i-- {
		state = splitmix64(state)
		j := int(state % uint64(i+1))
		out[i], out[j] = out[j], out[i]
	}
	return out
}

// scatter returns the mean squared distance of the given vectors from
// their centroid — the phase-one variance proxy.
func scatter(vectors [][]float64, idxs []int) float64 {
	if len(idxs) < 2 {
		return 0
	}
	dims := len(vectors[idxs[0]])
	mean := make([]float64, dims)
	for _, i := range idxs {
		for d, x := range vectors[i] {
			mean[d] += x
		}
	}
	for d := range mean {
		mean[d] /= float64(len(idxs))
	}
	var sum float64
	for _, i := range idxs {
		sum += sqDist(vectors[i], mean)
	}
	return sum / float64(len(idxs))
}

// allocate distributes budget draws across strata. Every stratum gets at
// least one draw; second draws go to the highest-scoring strata first
// (two draws are what make a stratum's variance estimable); the rest
// follows Neyman scores W_h·S_h — or plain W_h when proportional is set
// or every pilot variance is zero — via largest-remainder rounding. All
// ties break by stratum index, so the allocation is deterministic.
// Requires budget ∈ [len(strata), Σ N_h].
func allocate(strata []Stratum, budget int, proportional bool) []int {
	k := len(strata)
	alloc := make([]int, k)
	remaining := budget

	scores := make([]float64, k)
	var totalScore float64
	for h, st := range strata {
		if proportional {
			scores[h] = st.Weight
		} else {
			scores[h] = st.Weight * math.Sqrt(st.PilotVar)
		}
		totalScore += scores[h]
	}
	if totalScore == 0 {
		// Zero variance everywhere (or zero weights): fall back to
		// proportional so the budget still spreads by work.
		for h, st := range strata {
			scores[h] = st.Weight
			totalScore += scores[h]
		}
	}

	// Floor: one draw per stratum.
	for h := range alloc {
		alloc[h] = 1
		remaining--
	}
	// Second draws by descending score (index-ascending on ties).
	order := make([]int, k)
	for h := range order {
		order[h] = h
	}
	sort.SliceStable(order, func(a, b int) bool { return scores[order[a]] > scores[order[b]] })
	for _, h := range order {
		if remaining == 0 {
			break
		}
		if strata[h].Size() >= 2 {
			alloc[h]++
			remaining--
		}
	}
	// Largest-remainder rounding of the rest along the scores.
	if remaining > 0 && totalScore > 0 {
		type frac struct {
			h int
			f float64
		}
		fracs := make([]frac, 0, k)
		floorSum := 0
		for _, h := range order {
			quota := float64(remaining) * scores[h] / totalScore
			take := int(quota)
			if room := strata[h].Size() - alloc[h]; take > room {
				take = room
			}
			alloc[h] += take
			floorSum += take
			fracs = append(fracs, frac{h, quota - math.Trunc(quota)})
		}
		remaining -= floorSum
		sort.SliceStable(fracs, func(a, b int) bool { return fracs[a].f > fracs[b].f })
		// Hand out the leftovers one at a time, cycling past full strata
		// (budget <= Σ N_h guarantees termination).
		for remaining > 0 {
			gave := false
			for _, fr := range fracs {
				if remaining == 0 {
					break
				}
				if alloc[fr.h] < strata[fr.h].Size() {
					alloc[fr.h]++
					remaining--
					gave = true
				}
			}
			if !gave {
				break
			}
		}
	}
	return alloc
}
