package simpoint_test

// Property and fuzz tests for every registered selection engine. The
// invariants checked here are the contract downstream extrapolation
// rests on: stratum weights sum to 1, every draw belongs to its claimed
// stratum, draws are unique and sorted, per-draw weights are the
// stratum share split evenly across its draws, and the whole selection
// is a pure function of (vectors, weights, seeds) — identical at every
// clustering worker width.
//
// The file lives in the external test package so the baseline engines
// (internal/baselines registers "barrierpoint" and "timebased") can be
// imported without an import cycle.

import (
	"math"
	"reflect"
	"testing"

	_ "looppoint/internal/baselines" // registers the baseline engines
	"looppoint/internal/simpoint"
)

// prng is a splitmix64 stream for deterministic synthetic inputs.
type prng uint64

func (r *prng) next() uint64 {
	*r += 0x9E3779B97F4A7C15
	z := uint64(*r)
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

func (r *prng) float() float64 { return float64(r.next()>>11) / float64(1<<53) }
func (r *prng) intn(n int) int { return int(r.next() % uint64(n)) }

// synthPopulation builds a clustered synthetic region population: k
// well-separated centers in dim dimensions with per-region jitter, plus
// positive work weights.
func synthPopulation(seed uint64, n, k, dim int, jitter float64) (vectors [][]float64, weights []float64) {
	rng := prng(seed)
	centers := make([][]float64, k)
	for c := range centers {
		centers[c] = make([]float64, dim)
		for d := range centers[c] {
			centers[c][d] = float64(c*100) + 10*rng.float()
		}
	}
	vectors = make([][]float64, n)
	weights = make([]float64, n)
	for i := range vectors {
		c := i % k
		vectors[i] = make([]float64, dim)
		for d := range vectors[i] {
			vectors[i][d] = centers[c][d] + jitter*(rng.float()-0.5)
		}
		weights[i] = 1000 + 9000*rng.float()
	}
	return vectors, weights
}

func contains(xs []int, x int) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

// checkSelectionInvariants asserts the engine-independent contract of a
// Selection over n regions.
func checkSelectionInvariants(t *testing.T, engine string, sel *simpoint.Selection, n int) {
	t.Helper()
	if sel.Engine != engine {
		t.Errorf("%s: Engine = %q", engine, sel.Engine)
	}
	var stratumSum float64
	for h, st := range sel.Strata {
		stratumSum += st.Weight
		if st.Sampled > st.Size() {
			t.Errorf("%s: stratum %d sampled %d of %d members", engine, h, st.Sampled, st.Size())
		}
		if st.Sampled < 0 {
			t.Errorf("%s: stratum %d negative draw count %d", engine, h, st.Sampled)
		}
	}
	if math.Abs(stratumSum-1) > 1e-9 {
		t.Errorf("%s: stratum weights sum to %v, want 1 within 1e-9", engine, stratumSum)
	}
	if len(sel.Regions) == 0 {
		t.Fatalf("%s: no draws", engine)
	}
	counts := make([]int, len(sel.Strata))
	var drawSum float64
	last := -1
	for _, dr := range sel.Regions {
		if dr.Index <= last {
			t.Fatalf("%s: draws not strictly ascending by region index (%d after %d)", engine, dr.Index, last)
		}
		last = dr.Index
		if dr.Index < 0 || dr.Index >= n {
			t.Fatalf("%s: draw index %d outside [0,%d)", engine, dr.Index, n)
		}
		if dr.Stratum < 0 || dr.Stratum >= len(sel.Strata) {
			t.Fatalf("%s: draw stratum %d outside [0,%d)", engine, dr.Stratum, len(sel.Strata))
		}
		st := sel.Strata[dr.Stratum]
		if !contains(st.Members, dr.Index) {
			t.Errorf("%s: draw %d is not a member of its claimed stratum %d", engine, dr.Index, dr.Stratum)
		}
		if sel.Result != nil && sel.Result.Assign[dr.Index] != dr.Stratum {
			t.Errorf("%s: draw %d claims stratum %d but clustering assigns %d",
				engine, dr.Index, dr.Stratum, sel.Result.Assign[dr.Index])
		}
		if st.Sampled > 0 {
			if want := st.Weight / float64(st.Sampled); dr.Weight != want {
				t.Errorf("%s: draw %d weight %v, want %v", engine, dr.Index, dr.Weight, want)
			}
		}
		drawSum += dr.Weight
		counts[dr.Stratum]++
	}
	if math.Abs(drawSum-1) > 1e-9 {
		t.Errorf("%s: draw weights sum to %v, want 1 within 1e-9", engine, drawSum)
	}
	for h, st := range sel.Strata {
		if st.Sampled != counts[h] {
			t.Errorf("%s: stratum %d says %d draws, selection holds %d", engine, h, st.Sampled, counts[h])
		}
	}
}

// runEngine selects with the given engine, failing the test on error.
func runEngine(t *testing.T, engine string, vectors [][]float64, weights []float64,
	copts simpoint.Options, sopts simpoint.SelectorOpts) *simpoint.Selection {
	t.Helper()
	sl, err := simpoint.NewSelector(engine)
	if err != nil {
		t.Fatal(err)
	}
	sel, err := sl.Select(vectors, weights, copts, sopts)
	if err != nil {
		t.Fatalf("%s: %v", engine, err)
	}
	return sel
}

// TestSelectorInvariantsAllEngines sweeps every registered engine over
// several synthetic populations — including degenerate ones — checking
// the selection contract, determinism for a fixed seed, and that the
// inputs are never mutated.
func TestSelectorInvariantsAllEngines(t *testing.T) {
	cases := []struct {
		name        string
		n, k, dim   int
		jitter      float64
		zeroWeights bool
	}{
		{"clustered", 60, 4, 6, 2.0, false},
		{"tight", 30, 3, 4, 0.0, false}, // duplicate vectors, exact ties
		{"singleton", 1, 1, 3, 0.0, false},
		{"pair", 2, 1, 3, 0.0, false},
		{"zero-weights", 25, 3, 4, 1.0, true},
	}
	for _, tc := range cases {
		vectors, weights := synthPopulation(11, tc.n, tc.k, tc.dim, tc.jitter)
		if tc.zeroWeights {
			for i := range weights {
				weights[i] = 0
			}
		}
		vcopy := make([][]float64, len(vectors))
		for i := range vectors {
			vcopy[i] = append([]float64(nil), vectors[i]...)
		}
		wcopy := append([]float64(nil), weights...)

		copts := simpoint.Options{MaxK: 6, Seed: 42}
		sopts := simpoint.SelectorOpts{Budget: 12}
		for _, engine := range simpoint.SelectorNames() {
			sel := runEngine(t, engine, vectors, weights, copts, sopts)
			t.Run(tc.name+"/"+engine, func(t *testing.T) {
				checkSelectionInvariants(t, engine, sel, tc.n)
				again := runEngine(t, engine, vectors, weights, copts, sopts)
				if !reflect.DeepEqual(sel, again) {
					t.Error("selection not deterministic for a fixed seed")
				}
			})
		}
		if !reflect.DeepEqual(vectors, vcopy) || !reflect.DeepEqual(weights, wcopy) {
			t.Fatalf("%s: Select mutated its inputs", tc.name)
		}
	}
}

// TestSelectorWorkerWidthInvariant requires every engine to produce a
// byte-identical selection at every clustering worker width — the same
// contract the rest of the pipeline keeps for -j.
func TestSelectorWorkerWidthInvariant(t *testing.T) {
	vectors, weights := synthPopulation(23, 48, 4, 6, 2.0)
	sopts := simpoint.SelectorOpts{Budget: 16}
	for _, engine := range simpoint.SelectorNames() {
		base := runEngine(t, engine, vectors, weights, simpoint.Options{MaxK: 6, Seed: 7, Workers: 1}, sopts)
		for _, workers := range []int{2, 8} {
			sel := runEngine(t, engine, vectors, weights, simpoint.Options{MaxK: 6, Seed: 7, Workers: workers}, sopts)
			if !reflect.DeepEqual(base, sel) {
				t.Errorf("%s: selection differs between workers=1 and workers=%d", engine, workers)
			}
		}
	}
}

// TestStratifiedBudgetClamping pins the stratified engine's budget
// semantics: <=0 defaults to 2 draws per stratum, sub-K budgets clamp up
// to one per stratum, and budgets at or above N draw every region
// exactly once.
func TestStratifiedBudgetClamping(t *testing.T) {
	const n = 40
	vectors, weights := synthPopulation(5, n, 4, 6, 2.0)
	copts := simpoint.Options{MaxK: 6, Seed: 42}
	run := func(budget int) *simpoint.Selection {
		return runEngine(t, "stratified", vectors, weights, copts, simpoint.SelectorOpts{Budget: budget})
	}

	def := run(0)
	k := len(def.Strata)
	want := 2 * k
	if want > n {
		want = n
	}
	if len(def.Regions) != want {
		t.Errorf("default budget drew %d regions, want %d (2 per stratum)", len(def.Regions), want)
	}

	if low := run(1); len(low.Regions) != len(low.Strata) {
		t.Errorf("budget 1 drew %d regions, want one per stratum (%d)", len(low.Regions), len(low.Strata))
	}

	all := run(10 * n)
	if len(all.Regions) != n {
		t.Fatalf("budget %d drew %d regions, want all %d", 10*n, len(all.Regions), n)
	}
	for i, dr := range all.Regions {
		if dr.Index != i {
			t.Fatalf("exhaustive budget: draw %d is region %d, want %d", i, dr.Index, i)
		}
	}
}

// TestStratifiedNeymanFavorsVariance builds a population whose BBV
// scatter differs wildly across clusters and checks that Neyman
// allocation spends more of the budget on the high-scatter stratum than
// proportional allocation does on the same inputs.
func TestStratifiedNeymanFavorsVariance(t *testing.T) {
	// Two clusters, equal size and equal work: one tight, one scattered.
	const n = 40
	rng := prng(99)
	vectors := make([][]float64, n)
	weights := make([]float64, n)
	for i := range vectors {
		vectors[i] = make([]float64, 4)
		base := 0.0
		jitter := 0.01
		if i >= n/2 {
			base = 1000
			jitter = 50.0
		}
		for d := range vectors[i] {
			vectors[i][d] = base + jitter*(rng.float()-0.5)
		}
		weights[i] = 100
	}
	copts := simpoint.Options{MaxK: 4, Seed: 3}
	drawsInScattered := func(sel *simpoint.Selection) (int, bool) {
		// The scattered cluster is the stratum holding region n-1.
		for _, st := range sel.Strata {
			if contains(st.Members, n-1) {
				return st.Sampled, len(sel.Strata) == 2
			}
		}
		return 0, false
	}
	ney := runEngine(t, "stratified", vectors, weights, copts, simpoint.SelectorOpts{Budget: 12})
	prop := runEngine(t, "stratified", vectors, weights, copts, simpoint.SelectorOpts{Budget: 12, Proportional: true})
	nScat, ok1 := drawsInScattered(ney)
	pScat, ok2 := drawsInScattered(prop)
	if !ok1 || !ok2 {
		t.Skipf("clustering did not produce the expected 2 strata (%d/%d)", len(ney.Strata), len(prop.Strata))
	}
	if nScat <= pScat {
		t.Errorf("Neyman drew %d from the scattered stratum, proportional drew %d — Neyman should spend more where the variance lives", nScat, pScat)
	}
}

// renamedSelector delegates to the medoid rule under its own registry
// name — the other tests iterate SelectorNames(), so anything this file
// registers must keep the name/engine contract intact.
type renamedSelector struct{ name string }

func (s renamedSelector) Name() string { return s.name }

func (s renamedSelector) Select(vectors [][]float64, weights []float64, copts simpoint.Options, sopts simpoint.SelectorOpts) (*simpoint.Selection, error) {
	sel, err := simpoint.SimPointSelector{}.Select(vectors, weights, copts, sopts)
	if err != nil {
		return nil, err
	}
	sel.Engine = s.name
	return sel, nil
}

// TestRegisterSelectorDuplicatePanics pins the registry's duplicate
// protection: silently overwriting an engine would make selection depend
// on package-init order.
func TestRegisterSelectorDuplicatePanics(t *testing.T) {
	name := "test-duplicate-engine"
	simpoint.RegisterSelector(name, func() simpoint.Selector { return renamedSelector{name} })
	defer func() {
		if recover() == nil {
			t.Error("duplicate RegisterSelector did not panic")
		}
	}()
	simpoint.RegisterSelector(name, func() simpoint.Selector { return renamedSelector{name} })
}

// FuzzSelectors drives every registered engine with adversarial
// populations derived from the fuzz seed and checks the full selection
// contract plus determinism. Degenerate shapes (single region, identical
// vectors, zero weights) are in the seed corpus.
func FuzzSelectors(f *testing.F) {
	f.Add(uint64(1), uint8(20), uint8(3), uint16(8), false)
	f.Add(uint64(2), uint8(1), uint8(1), uint16(0), false)   // singleton
	f.Add(uint64(3), uint8(2), uint8(1), uint16(100), true)  // over-budget
	f.Add(uint64(4), uint8(50), uint8(5), uint16(1), true)   // under-budget
	f.Add(uint64(5), uint8(9), uint8(2), uint16(4), false)   // tiny
	f.Fuzz(func(t *testing.T, seed uint64, nRaw, kRaw uint8, budgetRaw uint16, zeroWeights bool) {
		n := 1 + int(nRaw)%64
		k := 1 + int(kRaw)%6
		vectors, weights := synthPopulation(seed, n, k, 4, 3.0)
		if zeroWeights {
			for i := range weights {
				weights[i] = 0
			}
		}
		copts := simpoint.Options{MaxK: 6, Seed: seed}
		sopts := simpoint.SelectorOpts{Budget: int(budgetRaw) % (2 * n)}
		for _, engine := range simpoint.SelectorNames() {
			sel := runEngine(t, engine, vectors, weights, copts, sopts)
			checkSelectionInvariants(t, engine, sel, n)
			again := runEngine(t, engine, vectors, weights, copts, sopts)
			if !reflect.DeepEqual(sel, again) {
				t.Errorf("%s: selection not deterministic", engine)
			}
		}
	})
}

// FuzzStratifiedAllocation stresses the stratified engine's two-phase
// allocation specifically: arbitrary budgets, pilot sizes, and both
// allocation rules must respect the floor (one draw per stratum), the
// per-stratum population caps, and the total budget clamp.
func FuzzStratifiedAllocation(f *testing.F) {
	f.Add(uint64(7), uint8(30), uint16(10), uint8(2), false)
	f.Add(uint64(8), uint8(60), uint16(60), uint8(5), true)
	f.Add(uint64(9), uint8(3), uint16(2), uint8(1), false)
	f.Fuzz(func(t *testing.T, seed uint64, nRaw uint8, budgetRaw uint16, pilotRaw uint8, proportional bool) {
		n := 1 + int(nRaw)%64
		vectors, weights := synthPopulation(seed, n, 1+int(seed)%5, 4, 3.0)
		sel := runEngine(t, "stratified", vectors, weights,
			simpoint.Options{MaxK: 6, Seed: seed},
			simpoint.SelectorOpts{
				Budget:       int(budgetRaw) % (2 * n),
				Pilot:        int(pilotRaw) % 8,
				Proportional: proportional,
			})
		checkSelectionInvariants(t, "stratified", sel, n)
		k := len(sel.Strata)
		budget := int(budgetRaw) % (2 * n)
		if budget <= 0 {
			budget = 2 * k
		}
		if budget < k {
			budget = k
		}
		if budget > n {
			budget = n
		}
		if len(sel.Regions) != budget {
			t.Errorf("drew %d regions for clamped budget %d (k=%d, n=%d)", len(sel.Regions), budget, k, n)
		}
		for h, st := range sel.Strata {
			if st.Sampled < 1 {
				t.Errorf("stratum %d got %d draws, floor is 1", h, st.Sampled)
			}
		}
	})
}
