package simpoint

import (
	"testing"

	"looppoint/internal/bbv"
)

// Benchmarks run the fast engine and the naive reference path at
// paper-like scale (≥1000 regions, dims=100) so a perf regression in
// either — or an erosion of the fast path's advantage — shows up in the
// CI bench smoke. BENCH_simpoint.json records the measured before/after
// numbers.

// benchRegions builds a multi-threaded sparse BBV set shaped like a real
// profile: n regions, `threads` per-thread vectors, ~blocksPerThread
// touched blocks each, drawn from nblocks static blocks.
func benchRegions(n, threads, blocksPerThread, nblocks int) []*bbv.Region {
	regions := make([]*bbv.Region, n)
	for i := range regions {
		vecs := make([]map[int]float64, threads)
		for t := range vecs {
			vecs[t] = map[int]float64{}
			for k := 0; k < blocksPerThread; k++ {
				vecs[t][(i*7+t*3+k*13)%nblocks] = float64(k + 1)
			}
		}
		regions[i] = &bbv.Region{Index: i, Vectors: vecs}
	}
	return regions
}

// BenchmarkProjectRegions measures the sparse fast-path projection:
// materialized sparse vectors dotted against cached projection rows.
func BenchmarkProjectRegions(b *testing.B) {
	regions := benchRegions(1000, 8, 40, 500)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ProjectRegions(regions, 500, DefaultDims, 42)
	}
}

// BenchmarkProjectRegionsSlow measures the naive reference projection
// (per-entry splitmix64 hashing) on the same input.
func BenchmarkProjectRegionsSlow(b *testing.B) {
	regions := benchRegions(1000, 8, 40, 500)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ProjectRegionsSlow(regions, 500, DefaultDims, 42)
	}
}

// BenchmarkCluster measures the full accelerated k-means + BIC sweep at
// paper-like scale: 1000 regions, 100 dimensions, maxK 20, default
// worker width.
func BenchmarkCluster(b *testing.B) {
	vecs, _ := blobs(1000, 8, DefaultDims, 3)
	w := ones(1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Cluster(vecs, w, Options{MaxK: 20, Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkClusterSlow is the same sweep on the naive serial reference
// path — the pre-fast-engine cost of region selection.
func BenchmarkClusterSlow(b *testing.B) {
	vecs, _ := blobs(1000, 8, DefaultDims, 3)
	w := ones(1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Cluster(vecs, w, Options{MaxK: 20, Seed: 1, Slow: true}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkKMeansFast isolates one accelerated k-means run (k=16).
func BenchmarkKMeansFast(b *testing.B) {
	vecs, _ := blobs(1000, 8, DefaultDims, 3)
	n, dims := len(vecs), DefaultDims
	flat := make([]float64, n*dims)
	for i, v := range vecs {
		copy(flat[i*dims:], v)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		kmeansFast(flat, n, dims, 16, 17, 100)
	}
}

// BenchmarkKMeansSlow isolates the matching naive run.
func BenchmarkKMeansSlow(b *testing.B) {
	vecs, _ := blobs(1000, 8, DefaultDims, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		KMeansSlow(vecs, 16, 17, 100)
	}
}
