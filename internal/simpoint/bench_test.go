package simpoint

import (
	"testing"

	"looppoint/internal/bbv"
)

// BenchmarkProjectRegions measures BBV projection cost (dominated by the
// on-the-fly projection-matrix hashing).
func BenchmarkProjectRegions(b *testing.B) {
	var regions []*bbv.Region
	for i := 0; i < 64; i++ {
		vecs := make([]map[int]float64, 8)
		for t := range vecs {
			vecs[t] = map[int]float64{}
			for k := 0; k < 40; k++ {
				vecs[t][(i*7+k*13)%500] = float64(k + 1)
			}
		}
		regions = append(regions, &bbv.Region{Index: i, Vectors: vecs})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ProjectRegions(regions, 500, DefaultDims, 42)
	}
}

// BenchmarkCluster measures the full k-means + BIC sweep.
func BenchmarkCluster(b *testing.B) {
	vecs, _ := blobs(200, 6, DefaultDims, 3)
	w := ones(200)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Cluster(vecs, w, Options{MaxK: DefaultMaxK, Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}
