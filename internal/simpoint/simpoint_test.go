package simpoint

import (
	"math"
	"testing"
	"testing/quick"

	"looppoint/internal/bbv"
)

// blobs generates n vectors around k well-separated centers in dims
// dimensions, deterministically.
func blobs(n, k, dims int, seed uint64) ([][]float64, []int) {
	vecs := make([][]float64, n)
	truth := make([]int, n)
	rng := seed | 1
	next := func() float64 {
		rng = splitmix64(rng)
		return float64(rng>>11) / float64(1<<53)
	}
	for i := 0; i < n; i++ {
		c := i % k
		truth[i] = c
		v := make([]float64, dims)
		for d := 0; d < dims; d++ {
			center := 0.0
			if d == c { // center c sits at 10 along axis c
				center = 10
			}
			v[d] = center + (next()-0.5)*0.2
		}
		vecs[i] = v
	}
	return vecs, truth
}

func ones(n int) []float64 {
	w := make([]float64, n)
	for i := range w {
		w[i] = 1
	}
	return w
}

func TestClusterRecoversBlobs(t *testing.T) {
	vecs, truth := blobs(60, 3, 8, 7)
	res, err := Cluster(vecs, ones(60), Options{MaxK: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.K != 3 {
		t.Fatalf("BIC chose k=%d, want 3 (scores %v)", res.K, res.BICByK)
	}
	// All members of one true blob must share a cluster.
	seen := map[int]int{}
	for i, a := range res.Assign {
		if prev, ok := seen[truth[i]]; ok && prev != a {
			t.Errorf("true blob %d split across clusters %d and %d", truth[i], prev, a)
		}
		seen[truth[i]] = a
	}
}

func TestAssignmentsAreNearestCentroid(t *testing.T) {
	vecs, _ := blobs(80, 4, 6, 3)
	res, err := Cluster(vecs, ones(80), Options{MaxK: 8, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range vecs {
		if got := NearestCentroid(v, res.Centroids); got != res.Assign[i] {
			t.Errorf("vector %d assigned to %d but nearest centroid is %d", i, res.Assign[i], got)
		}
	}
}

func TestRepresentativesBelongToTheirClusters(t *testing.T) {
	vecs, _ := blobs(50, 5, 10, 11)
	res, err := Cluster(vecs, ones(50), Options{MaxK: 12, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	for j, rep := range res.Reps {
		if rep < 0 || rep >= len(vecs) {
			t.Fatalf("cluster %d has invalid representative %d", j, rep)
		}
		if res.Assign[rep] != j {
			t.Errorf("representative %d of cluster %d is assigned to cluster %d",
				rep, j, res.Assign[rep])
		}
	}
}

func TestClusterWeightsSumToOne(t *testing.T) {
	vecs, _ := blobs(40, 2, 5, 9)
	w := make([]float64, 40)
	for i := range w {
		w[i] = float64(i + 1)
	}
	res, err := Cluster(vecs, w, Options{MaxK: 6, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, cw := range res.ClusterWeight {
		sum += cw
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("cluster weights sum to %f", sum)
	}
}

func TestClusterDeterminism(t *testing.T) {
	vecs, _ := blobs(70, 3, 7, 13)
	r1, err := Cluster(vecs, ones(70), Options{MaxK: 10, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Cluster(vecs, ones(70), Options{MaxK: 10, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	if r1.K != r2.K {
		t.Fatalf("k differs: %d vs %d", r1.K, r2.K)
	}
	for i := range r1.Assign {
		if r1.Assign[i] != r2.Assign[i] {
			t.Fatalf("assignment %d differs", i)
		}
	}
}

func TestClusterSingleVector(t *testing.T) {
	res, err := Cluster([][]float64{{1, 2, 3}}, []float64{5}, Options{MaxK: 50, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.K != 1 || res.Reps[0] != 0 || res.ClusterWeight[0] != 1 {
		t.Errorf("single-vector clustering: %+v", res)
	}
}

func TestClusterErrors(t *testing.T) {
	if _, err := Cluster(nil, nil, Options{}); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := Cluster([][]float64{{1}}, []float64{1, 2}, Options{}); err == nil {
		t.Error("mismatched weights accepted")
	}
}

func TestKMeansDistortionNonIncreasingInK(t *testing.T) {
	// Property: optimal distortion is non-increasing in k; our heuristic
	// k-means should follow the trend (allow small non-monotonic noise).
	vecs, _ := blobs(60, 4, 6, 17)
	prev := math.Inf(1)
	for k := 1; k <= 8; k++ {
		_, _, dist := KMeansSlow(vecs, k, 3, 100)
		if dist > prev*1.10 {
			t.Errorf("distortion rose sharply at k=%d: %f -> %f", k, prev, dist)
		}
		if dist < prev {
			prev = dist
		}
	}
}

func TestProjEntryProperties(t *testing.T) {
	f := func(seed uint64, row, col uint16) bool {
		v := projEntry(seed, int(row), int(col))
		// Deterministic and bounded.
		return v == projEntry(seed, int(row), int(col)) && v >= -1 && v < 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func regionsFor(vectors []map[int]float64) []*bbv.Region {
	var rs []*bbv.Region
	for i, v := range vectors {
		rs = append(rs, &bbv.Region{Index: i, Vectors: []map[int]float64{v}})
	}
	return rs
}

func TestProjectRegionsLinearity(t *testing.T) {
	// Scaling a BBV must not change its projected (normalized) vector.
	a := map[int]float64{0: 2, 3: 5, 7: 1}
	b := map[int]float64{0: 20, 3: 50, 7: 10}
	rs := regionsFor([]map[int]float64{a, b})
	proj := ProjectRegions(rs, 8, 10, 99)
	for d := range proj[0] {
		if math.Abs(proj[0][d]-proj[1][d]) > 1e-9 {
			t.Fatalf("normalization broken at dim %d: %f vs %f", d, proj[0][d], proj[1][d])
		}
	}
}

func TestProjectRegionsDistinguishesThreads(t *testing.T) {
	// Two regions with the same total work but opposite thread
	// assignments must project differently under concatenation and
	// identically under summation (the naive baseline).
	r1 := &bbv.Region{Vectors: []map[int]float64{{1: 10}, {2: 10}}}
	r2 := &bbv.Region{Vectors: []map[int]float64{{2: 10}, {1: 10}}}
	concat := ProjectRegions([]*bbv.Region{r1, r2}, 4, 16, 5)
	if dist := sqDist(concat[0], concat[1]); dist < 1e-6 {
		t.Errorf("concatenated projection lost thread heterogeneity (dist %g)", dist)
	}
	summed := SumProjectRegions([]*bbv.Region{r1, r2}, 4, 16, 5)
	if dist := sqDist(summed[0], summed[1]); dist > 1e-9 {
		t.Errorf("summed projection should be identical (dist %g)", dist)
	}
}

func TestProjectEmptyRegion(t *testing.T) {
	r := &bbv.Region{Vectors: []map[int]float64{{}}}
	proj := ProjectRegions([]*bbv.Region{r}, 4, 8, 1)
	for _, v := range proj[0] {
		if v != 0 {
			t.Fatal("empty region projected to non-zero vector")
		}
	}
}

func TestSortedClusterSizes(t *testing.T) {
	vecs, _ := blobs(30, 3, 5, 23)
	res, err := Cluster(vecs, ones(30), Options{MaxK: 5, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	sizes := res.SortedClusterSizes()
	total := 0
	for i, s := range sizes {
		total += s
		if i > 0 && sizes[i] > sizes[i-1] {
			t.Error("sizes not descending")
		}
	}
	if total != 30 {
		t.Errorf("cluster sizes sum to %d, want 30", total)
	}
}
