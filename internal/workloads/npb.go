package workloads

import (
	"looppoint/internal/isa"
	"looppoint/internal/kernels"
)

// The NAS Parallel Benchmarks (OpenMP, version 3.3 shapes; paper
// Section IV-B). The suite runs with the passive wait policy and class C
// inputs in the paper's evaluation; npb-dc is excluded there and here.
// NPB kernels are more regular and repetitive than SPEC CPU2017, which is
// why the paper sees lower errors and higher speedups on them.
func registerNPB() {
	register(Spec{
		Name: "npb-bt", Suite: "npb", Lang: "F", KLOC: 11, Area: "Block tri-diagonal solver",
		Sync: SyncSet{Sta4: true, Bar: true},
		build: func(par BuildParams) *App {
			sm, zm := par.Input.scale()
			f := newFrame("npb-bt", par, 5*sm)
			part := f.equal(260 * zm)
			u := f.p.Alloc("u", part.ArrayWords(par.Threads))
			rhs := f.p.Alloc("rhs", part.ArrayWords(par.Threads))
			f.initArray(u, int64(part.ArrayWords(par.Threads)), 62989, 1<<24, 3)
			f.beginSteps()
			// x-, y-, z-sweeps.
			f.e.Stencil3(u, rhs, part)
			f.barrier()
			f.e.Stencil3(rhs, u, part)
			f.barrier()
			f.e.Stencil3(u, rhs, part)
			f.barrier()
			f.e.StreamFMA(u, part, 1.0000015, 0.5)
			f.barrier()
			return f.finish()
		},
	})
	register(Spec{
		Name: "npb-cg", Suite: "npb", Lang: "F", KLOC: 2, Area: "Conjugate gradient",
		Sync: SyncSet{Sta4: true, Bar: true, Red: true},
		build: func(par BuildParams) *App {
			sm, zm := par.Input.scale()
			f := newFrame("npb-cg", par, 5*sm)
			part := f.equal(200 * zm)
			x := f.p.Alloc("x", part.ArrayWords(par.Threads))
			mat := f.p.Alloc("mat", uint64(4096*zm))
			lock := f.rt.NewLock("dot")
			acc := f.p.Alloc("dot", 1)
			f.initArray(mat, 4096*zm, 48271, 1<<22, 7)
			f.beginSteps()
			// Sparse matvec stand-in: random gathers.
			f.e.RandomWalk(mat, 4096*zm, part)
			f.barrier()
			f.e.StreamFMA(x, part, 1.0000021, 0.25)
			f.barrier()
			f.reducePhase(x, part, lock, acc) // dot products
			return f.finish()
		},
	})
	register(Spec{
		Name: "npb-ep", Suite: "npb", Lang: "F", KLOC: 1, Area: "Embarrassingly parallel",
		Sync: SyncSet{Sta4: true, Red: true},
		build: func(par BuildParams) *App {
			sm, zm := par.Input.scale()
			f := newFrame("npb-ep", par, 3*sm)
			part := f.equal(900 * zm)
			gauss := f.p.Alloc("gauss", part.ArrayWords(par.Threads))
			lock := f.rt.NewLock("tally")
			acc := f.p.Alloc("tally", 1)
			f.initArray(gauss, int64(part.ArrayWords(par.Threads)), 1299709, 1<<20, 11)
			f.beginSteps()
			// Long independent random-number generation, one reduction.
			f.e.StreamFMA(gauss, part, 1.0000012, 0.125)
			f.e.StreamFMA(gauss, part, 0.9999988, 0.0625)
			f.reducePhase(gauss, part, lock, acc)
			return f.finish()
		},
	})
	register(Spec{
		Name: "npb-ft", Suite: "npb", Lang: "F", KLOC: 2, Area: "3-D FFT",
		Sync: SyncSet{Sta4: true, Bar: true},
		build: func(par BuildParams) *App {
			sm, zm := par.Input.scale()
			f := newFrame("npb-ft", par, 4*sm)
			part := f.equal(280 * zm)
			spec := f.p.Alloc("spec", part.ArrayWords(par.Threads))
			f.initArray(spec, int64(part.ArrayWords(par.Threads)), 69497, 1<<23, 13)
			f.beginSteps()
			// Butterfly passes at growing strides.
			f.e.StridedLoad(spec, int64(part.ArrayWords(par.Threads)-2), 3, part)
			f.barrier()
			f.e.StridedLoad(spec, int64(part.ArrayWords(par.Threads)-2), 19, part)
			f.barrier()
			f.e.StreamFMA(spec, part, 1.0000017, 0.5)
			f.barrier()
			return f.finish()
		},
	})
	register(Spec{
		Name: "npb-is", Suite: "npb", Lang: "C", KLOC: 1, Area: "Integer sort",
		Sync: SyncSet{Sta4: true, Bar: true, At: true},
		build: func(par BuildParams) *App {
			sm, zm := par.Input.scale()
			f := newFrame("npb-is", par, 4*sm)
			part := f.equal(320 * zm)
			keys := f.p.Alloc("keys", part.ArrayWords(par.Threads))
			hist := f.p.Alloc("hist", uint64(512*int64(par.Threads))+64)
			f.initArray(keys, int64(part.ArrayWords(par.Threads)), 1327144003, 1<<18, 17)
			f.beginSteps()
			// Shared atomic histogram then local re-rank.
			f.e.Histogram(keys, hist, 512, true, part)
			f.barrier()
			f.e.StreamFMA(keys, part, 1.0, 0.0)
			f.barrier()
			return f.finish()
		},
	})
	register(Spec{
		Name: "npb-lu", Suite: "npb", Lang: "F", KLOC: 6, Area: "LU solver",
		Sync: SyncSet{Sta4: true, Bar: true},
		build: func(par BuildParams) *App {
			sm, zm := par.Input.scale()
			f := newFrame("npb-lu", par, 5*sm)
			// Wavefront pipelining leaves threads mildly imbalanced.
			part := f.skewed(220*zm, 12*zm)
			u := f.p.Alloc("u", part.ArrayWords(par.Threads))
			r := f.p.Alloc("r", part.ArrayWords(par.Threads))
			f.initArray(u, int64(part.ArrayWords(par.Threads)), 16807, 1<<22, 19)
			f.beginSteps()
			f.e.Stencil3(u, r, part)
			f.barrier()
			f.e.Stencil3(r, u, part)
			f.barrier()
			return f.finish()
		},
	})
	register(Spec{
		Name: "npb-mg", Suite: "npb", Lang: "F", KLOC: 1, Area: "Multigrid",
		Sync: SyncSet{Sta4: true, Bar: true},
		build: func(par BuildParams) *App {
			sm, zm := par.Input.scale()
			f := newFrame("npb-mg", par, 4*sm)
			fine := f.equal(360 * zm)
			mid := f.equal(120 * zm)
			coarse := f.equal(40 * zm)
			g0 := f.p.Alloc("g0", fine.ArrayWords(par.Threads))
			g1 := f.p.Alloc("g1", mid.ArrayWords(par.Threads))
			g2 := f.p.Alloc("g2", coarse.ArrayWords(par.Threads))
			f.initArray(g0, int64(fine.ArrayWords(par.Threads)), 7368787, 1<<23, 23)
			f.beginSteps()
			// V-cycle: restrict down, smooth, prolong up.
			f.e.Stencil3(g0, g0, fine)
			f.barrier()
			f.e.Stencil3(g1, g1, mid)
			f.barrier()
			f.e.Stencil3(g2, g2, coarse)
			f.barrier()
			f.e.Stencil3(g1, g1, mid)
			f.barrier()
			f.e.Stencil3(g0, g0, fine)
			f.barrier()
			return f.finish()
		},
	})
	register(Spec{
		Name: "npb-sp", Suite: "npb", Lang: "F", KLOC: 5, Area: "Scalar penta-diagonal solver",
		Sync: SyncSet{Sta4: true, Bar: true},
		build: func(par BuildParams) *App {
			sm, zm := par.Input.scale()
			f := newFrame("npb-sp", par, 5*sm)
			part := f.equal(240 * zm)
			u := f.p.Alloc("u", part.ArrayWords(par.Threads))
			lhs := f.p.Alloc("lhs", part.ArrayWords(par.Threads))
			f.initArray(u, int64(part.ArrayWords(par.Threads)), 2147483629, 1<<24, 29)
			f.beginSteps()
			f.e.StreamFMA(lhs, part, 1.0000013, 0.25)
			f.barrier()
			f.e.Stencil3(u, lhs, part)
			f.barrier()
			f.e.Stencil3(lhs, u, part)
			f.barrier()
			return f.finish()
		},
	})
	register(Spec{
		Name: "npb-ua", Suite: "npb", Lang: "F", KLOC: 10, Area: "Unstructured adaptive mesh",
		Sync: SyncSet{Sta4: true, Dyn4: true, Bar: true, Lck: true},
		build: func(par BuildParams) *App {
			sm, zm := par.Input.scale()
			f := newFrame("npb-ua", par, 4*sm)
			part := f.equal(180 * zm)
			mesh := f.p.Alloc("mesh", uint64(3000*zm))
			elems := f.p.Alloc("elems", part.ArrayWords(par.Threads))
			dynArr := f.p.Alloc("dyn", uint64(120*zm*8)+64)
			ctr := f.rt.NewCounter("ua")
			lock := f.rt.NewLock("mesh")
			shared := f.p.Alloc("shared", 1)
			f.initArray(mesh, 3000*zm, 514229, 1<<21, 31)
			f.beginSteps()
			f.e.RandomWalk(mesh, 3000*zm, part)
			f.barrier()
			f.dynamicPhase(ctr, 120*zm*8, 16, func(e *kernels.Emitter) {
				e.ChunkStream(dynArr, 16, 8)
			})
			// Lock-guarded mesh refinement tick.
			f.rt.EmitLock(f.e.Cur, lock)
			b := f.e.Cur
			b.IMovI(9, int64(shared))
			b.ILoad(10, 9, 0)
			b.IOpI(isa.OpIAdd, 10, 10, 1)
			b.IStore(9, 0, 10)
			f.rt.EmitUnlock(f.e.Cur, lock)
			f.e.StreamFMA(elems, part, 1.0000019, 0.5)
			f.barrier()
			return f.finish()
		},
	})
}

// registerDemo adds the matrix-omp demo application from the paper's
// artifact (the quick end-to-end smoke test).
func registerDemo() {
	for i, size := range []int64{60, 120, 200} {
		name := []string{"demo-matrix-1", "demo-matrix-2", "demo-matrix-3"}[i]
		sz := size
		register(Spec{
			Name: name, Suite: "demo", Lang: "C", KLOC: 1, Area: "Matrix demo",
			Sync: SyncSet{Sta4: true, Bar: true},
			build: func(par BuildParams) *App {
				sm, zm := par.Input.scale()
				f := newFrame(name, par, 3*sm)
				part := f.equal(sz * zm)
				a := f.p.Alloc("a", part.ArrayWords(par.Threads))
				b := f.p.Alloc("b", part.ArrayWords(par.Threads))
				f.initArray(a, int64(part.ArrayWords(par.Threads)), 1103515245, 1<<20, 1)
				f.beginSteps()
				f.e.StreamFMA(a, part, 1.000003, 0.5)
				f.barrier()
				f.e.Stencil3(a, b, part)
				f.barrier()
				return f.finish()
			},
		})
	}
}
