// Package workloads provides the synthetic benchmark suites standing in
// for SPEC CPU2017 (speed, OpenMP subset) and the NAS Parallel Benchmarks
// (paper Section IV-B). Each application is generated as a mini-ISA
// program whose phase structure, synchronization-primitive mix
// (Table III), thread heterogeneity, and input-size scaling mirror its
// namesake at a reduced scale: all instruction counts are divided by
// roughly Scale relative to the real suites, which preserves every ratio
// the evaluation depends on (region/application size, train/ref growth,
// speedups) while keeping full-application simulation runnable in
// seconds.
package workloads

import (
	"fmt"
	"sort"

	"looppoint/internal/isa"
	"looppoint/internal/kernels"
	"looppoint/internal/omp"
)

// Scale is the approximate instruction-count reduction of this suite
// versus the real benchmarks (the paper slices at N×100 M instructions;
// this repository slices at N×100 K).
const Scale = 1000

// InputClass selects the input size.
type InputClass string

// SPEC input classes and NPB problem classes.
const (
	InputTest  InputClass = "test"
	InputTrain InputClass = "train"
	InputRef   InputClass = "ref"
	ClassA     InputClass = "A"
	ClassC     InputClass = "C"
	ClassD     InputClass = "D"
)

// scale returns (timestep multiplier, size multiplier) for a class.
// The ratios mirror the paper's regimes at 1/Scale: train runs are big
// enough to slice into tens of regions at the default N×100 K slice
// target, and ref runs are roughly an order of magnitude beyond train —
// large enough that full detailed simulation is the bottleneck, the
// regime where Figure 1/9 live.
func (in InputClass) scale() (int64, int64) {
	switch in {
	case InputTest, ClassA:
		return 1, 1
	case InputTrain:
		return 8, 4
	case InputRef:
		return 40, 8
	case ClassC:
		return 20, 8
	case ClassD:
		return 48, 12
	}
	return 1, 1
}

// SyncSet records which synchronization primitives an application uses
// (Table III). sta4 = static for, dyn4 = dynamic for, bar = barrier,
// ma = master, si = single, red = reduction, at = atomic, lck = lock.
type SyncSet struct {
	Sta4, Dyn4, Bar, Ma, Si, Red, At, Lck bool
}

// BuildParams parameterizes application construction.
type BuildParams struct {
	Threads int
	Input   InputClass
	Policy  omp.WaitPolicy
}

// App is a generated application ready to run.
type App struct {
	Spec    Spec
	Prog    *isa.Program
	Runtime *omp.Runtime
	Params  BuildParams
}

// Spec describes one benchmark (Table II attributes plus builder).
type Spec struct {
	Name  string
	Suite string // "spec17" or "npb" or "demo"
	Lang  string
	KLOC  int
	Area  string
	Sync  SyncSet
	// FixedThreads pins the thread count regardless of BuildParams
	// (657.xz_s.1 is single-threaded, 657.xz_s.2 runs 4 threads).
	FixedThreads int
	build        func(par BuildParams) *App
}

// Build constructs the application. Threads defaults to 8 and is
// overridden by FixedThreads; Input defaults per suite.
func (s Spec) Build(par BuildParams) (*App, error) {
	if s.build == nil {
		return nil, fmt.Errorf("workloads: %s has no builder", s.Name)
	}
	if par.Threads == 0 {
		par.Threads = 8
	}
	if s.FixedThreads != 0 {
		par.Threads = s.FixedThreads
	}
	if par.Input == "" {
		if s.Suite == "npb" {
			par.Input = ClassC
		} else {
			par.Input = InputTrain
		}
	}
	app := s.build(par)
	app.Spec = s
	app.Params = par
	return app, nil
}

var registry []Spec

func register(s Spec) { registry = append(registry, s) }

// SpecSuite returns the SPEC CPU2017 speed workloads in paper order.
func SpecSuite() []Spec { return bySuite("spec17") }

// NPBSuite returns the NAS Parallel Benchmarks workloads.
func NPBSuite() []Spec { return bySuite("npb") }

// All returns every registered workload.
func All() []Spec {
	out := append([]Spec(nil), registry...)
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Suite != out[j].Suite {
			return out[i].Suite < out[j].Suite
		}
		return false // preserve registration order within a suite
	})
	return out
}

func bySuite(suite string) []Spec {
	var out []Spec
	for _, s := range registry {
		if s.Suite == suite {
			out = append(out, s)
		}
	}
	return out
}

// Lookup finds a workload by name.
func Lookup(name string) (Spec, bool) {
	for _, s := range registry {
		if s.Name == name {
			return s, true
		}
	}
	return Spec{}, false
}

// frame is the shared skeleton of all generated applications: N threads
// executing one thread_main routine with an outer timestep loop whose
// header is a stable region marker; phases and synchronization are
// emitted between the loop head and latch.
type frame struct {
	p     *isa.Program
	rt    *omp.Runtime
	main  *isa.Image
	r     *isa.Routine
	e     *kernels.Emitter
	bar   uint64
	steps int64

	stepHead *isa.Block
	stepReg  isa.Reg
}

func newFrame(name string, par BuildParams, steps int64) *frame {
	p := isa.NewProgram(name, par.Threads)
	main := p.AddImage("main", false)
	rt := omp.New(p, par.Policy)
	r := main.NewRoutine("thread_main")
	entry := r.NewBlock("entry")
	f := &frame{
		p: p, rt: rt, main: main, r: r,
		e:       kernels.NewEmitter(p, r, entry),
		bar:     rt.NewBarrier("step"),
		steps:   steps,
		stepReg: 15,
	}
	return f
}

// initArray schedules a thread-0 data initialization before the timestep
// loop starts (followed by a barrier so every thread sees it).
func (f *frame) initArray(arr uint64, n, mult, modv, addv int64) {
	f.e.SeededInit(arr, n, mult, modv, addv)
}

// beginSteps closes initialization (with a barrier) and opens the
// timestep loop.
func (f *frame) beginSteps() {
	f.rt.EmitBarrier(f.e.Cur, f.bar)
	f.openStepLoop()
}

// beginStepsGated is beginSteps for barrier-free applications (657.xz_s):
// workers wait on a one-shot start gate — the thread-spawn sync of a
// pthread program — which barrier-based samplers do not see.
func (f *frame) beginStepsGated() {
	gate := f.rt.NewGate("start")
	master := f.e.NewBlock("gate_open")
	wait := f.e.NewBlock("gate_wait")
	joined := f.e.NewBlock("gate_joined")
	f.e.Cur.BrCondI(isa.CondEQ, isa.RegTid, 0, master, wait)
	f.rt.EmitGateOpen(master, gate)
	master.Br(joined)
	f.rt.EmitGateWait(wait, gate)
	wait.Br(joined)
	f.e.Cur = joined
	f.openStepLoop()
}

func (f *frame) openStepLoop() {
	f.e.Cur.IMovI(f.stepReg, 0)
	f.stepHead = f.e.NewBlock("timestep")
	f.e.Cur.Br(f.stepHead)
	f.e.Cur = f.stepHead
}

// barrier emits a global barrier at the current point.
func (f *frame) barrier() { f.rt.EmitBarrier(f.e.Cur, f.bar) }

// equal returns an equal partition with fixed-problem-size semantics:
// ref8 is the per-thread iteration count at the reference 8-thread
// configuration; other thread counts divide the same total work (SPEC
// speed runs and NPB classes fix the problem, not the per-thread share).
func (f *frame) equal(ref8 int64) kernels.Partition {
	n := ref8 * 8 / int64(f.p.NumThreads())
	if n < 1 {
		n = 1
	}
	return kernels.Equal(n)
}

// skewed is equal's counterpart for deliberately imbalanced partitions.
func (f *frame) skewed(base8, skew8 int64) kernels.Partition {
	scale := func(v int64) int64 {
		n := v * 8 / int64(f.p.NumThreads())
		if n < 1 {
			n = 1
		}
		return n
	}
	return kernels.Skewed(scale(base8), scale(skew8))
}

// singleOnce emits an OpenMP `single` construct (nowait): exactly one
// thread per timestep executes the body — whichever wins the
// compare-and-swap on the episode cell, which holds the current timestep
// number. No reset is needed because the expected value advances with
// the timestep register.
func (f *frame) singleOnce(cell uint64, body func()) {
	b := f.e.Cur
	win := f.e.NewBlock("single_win")
	cont := f.e.NewBlock("single_done")
	b.IMovI(9, int64(cell))
	b.IOpI(isa.OpIAdd, 10, f.stepReg, 1) // new value (goes in Dst)
	b.IMov(11, f.stepReg)                // expected value
	b.CmpXchg(10, 9, 0, 11)
	b.BrCondI(isa.CondEQ, 10, 1, win, cont)
	f.e.Cur = win
	body()
	f.e.Cur.Br(cont)
	f.e.Cur = cont
}

// masterOnly emits body for thread 0 only (OpenMP master), without an
// implied barrier.
func (f *frame) masterOnly(body func()) {
	m := f.e.NewBlock("master")
	cont := f.e.NewBlock("master_done")
	f.e.Cur.BrCondI(isa.CondEQ, isa.RegTid, 0, m, cont)
	f.e.Cur = m
	body()
	f.e.Cur.Br(cont)
	f.e.Cur = cont
}

// finish emits the loop latch and halt, links the program.
func (f *frame) finish() *App {
	latch := f.e.NewBlock("latch")
	done := f.e.NewBlock("done")
	f.e.Cur.Br(latch)
	latch.IOpI(isa.OpIAdd, f.stepReg, f.stepReg, 1)
	latch.BrCondI(isa.CondLT, f.stepReg, f.steps, f.stepHead, done)
	done.Halt()
	for tid := 0; tid < f.p.NumThreads(); tid++ {
		f.p.SetEntry(tid, f.r)
	}
	if err := f.p.Link(); err != nil {
		panic(fmt.Sprintf("workloads: %s: %v", f.p.Name, err))
	}
	return &App{Prog: f.p, Runtime: f.rt}
}
