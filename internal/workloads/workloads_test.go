package workloads

import (
	"testing"

	"looppoint/internal/exec"
	"looppoint/internal/omp"
)

func runApp(t *testing.T, app *App) *exec.Machine {
	t.Helper()
	m := exec.NewMachine(app.Prog, 1)
	if err := m.Run(exec.RunOpts{FlowWindow: 4096, MaxSteps: 500_000_000}); err != nil {
		t.Fatalf("%s: run: %v", app.Prog.Name, err)
	}
	return m
}

func TestAllWorkloadsBuildAndRun(t *testing.T) {
	for _, spec := range All() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			t.Parallel()
			for _, policy := range []omp.WaitPolicy{omp.Passive, omp.Active} {
				app, err := spec.Build(BuildParams{Input: smallInput(spec), Policy: policy})
				if err != nil {
					t.Fatalf("build: %v", err)
				}
				m := runApp(t, app)
				if !m.Done() {
					t.Fatalf("policy %v: did not finish", policy)
				}
				if m.TotalICount() == 0 {
					t.Fatalf("policy %v: no instructions", policy)
				}
			}
		})
	}
}

func smallInput(s Spec) InputClass {
	if s.Suite == "npb" {
		return ClassA
	}
	return InputTest
}

func TestSuiteMembership(t *testing.T) {
	if got := len(SpecSuite()); got != 14 {
		t.Errorf("SPEC suite has %d workloads, want 14 (paper Figure 5)", got)
	}
	if got := len(NPBSuite()); got != 9 {
		t.Errorf("NPB suite has %d workloads, want 9 (dc excluded)", got)
	}
	if _, ok := Lookup("657.xz_s.2"); !ok {
		t.Error("657.xz_s.2 missing")
	}
	if _, ok := Lookup("npb-dc"); ok {
		t.Error("npb-dc must not be registered (excluded by the paper)")
	}
	if _, ok := Lookup("demo-matrix-1"); !ok {
		t.Error("demo-matrix-1 missing")
	}
}

func TestInputScalingGrowsWork(t *testing.T) {
	spec, _ := Lookup("619.lbm_s.1")
	var prev uint64
	for _, in := range []InputClass{InputTest, InputTrain, InputRef} {
		app, err := spec.Build(BuildParams{Input: in, Policy: omp.Passive})
		if err != nil {
			t.Fatal(err)
		}
		m := runApp(t, app)
		n := m.TotalICount()
		if n <= prev {
			t.Errorf("input %s: %d instructions not larger than previous %d", in, n, prev)
		}
		prev = n
	}
	// Ref must be much larger than train (paper: full ref runs are
	// impractical to simulate; at our scale the ratio is ~20x).
	appTrain, _ := spec.Build(BuildParams{Input: InputTrain, Policy: omp.Passive})
	appRef, _ := spec.Build(BuildParams{Input: InputRef, Policy: omp.Passive})
	nt := runApp(t, appTrain).TotalICount()
	nr := runApp(t, appRef).TotalICount()
	if float64(nr) < 8*float64(nt) {
		t.Errorf("ref/train instruction ratio %.1f < 8", float64(nr)/float64(nt))
	}
}

func TestThreadCountsRespected(t *testing.T) {
	xz1, _ := Lookup("657.xz_s.1")
	app, err := xz1.Build(BuildParams{Threads: 8, Policy: omp.Passive})
	if err != nil {
		t.Fatal(err)
	}
	if app.Prog.NumThreads() != 1 {
		t.Errorf("657.xz_s.1 built with %d threads, want 1", app.Prog.NumThreads())
	}
	xz2, _ := Lookup("657.xz_s.2")
	app2, err := xz2.Build(BuildParams{Threads: 8, Policy: omp.Passive})
	if err != nil {
		t.Fatal(err)
	}
	if app2.Prog.NumThreads() != 4 {
		t.Errorf("657.xz_s.2 built with %d threads, want 4", app2.Prog.NumThreads())
	}
	bt, _ := Lookup("npb-bt")
	for _, n := range []int{8, 16} {
		a, err := bt.Build(BuildParams{Threads: n, Input: ClassA, Policy: omp.Passive})
		if err != nil {
			t.Fatal(err)
		}
		if a.Prog.NumThreads() != n {
			t.Errorf("npb-bt built with %d threads, want %d", a.Prog.NumThreads(), n)
		}
		runApp(t, a)
	}
}

func TestXzHeterogeneity(t *testing.T) {
	spec, _ := Lookup("657.xz_s.2")
	app, err := spec.Build(BuildParams{Input: InputTrain, Policy: omp.Passive})
	if err != nil {
		t.Fatal(err)
	}
	m := runApp(t, app)
	// Thread 3 must retire substantially more than thread 1 (Figure 3's
	// non-homogeneous behaviour; thread 0 is skipped because it also
	// runs the one-time data initialization).
	t1, t3 := m.Threads[1].ICount, m.Threads[3].ICount
	if float64(t3) < 1.5*float64(t1) {
		t.Errorf("xz_s.2 not heterogeneous: t1=%d t3=%d", t1, t3)
	}
}

func TestDeterministicExecution(t *testing.T) {
	spec, _ := Lookup("644.nab_s.1")
	counts := make([]uint64, 2)
	for i := range counts {
		app, err := spec.Build(BuildParams{Input: InputTest, Policy: omp.Active})
		if err != nil {
			t.Fatal(err)
		}
		counts[i] = runApp(t, app).TotalICount()
	}
	if counts[0] != counts[1] {
		t.Errorf("non-deterministic build/run: %d vs %d", counts[0], counts[1])
	}
}

func TestDefaultInputs(t *testing.T) {
	spec, _ := Lookup("npb-cg")
	app, err := spec.Build(BuildParams{Policy: omp.Passive})
	if err != nil {
		t.Fatal(err)
	}
	if app.Params.Input != ClassC {
		t.Errorf("NPB default input %s, want C", app.Params.Input)
	}
	spec2, _ := Lookup("619.lbm_s.1")
	app2, err := spec2.Build(BuildParams{Policy: omp.Passive})
	if err != nil {
		t.Fatal(err)
	}
	if app2.Params.Input != InputTrain {
		t.Errorf("SPEC default input %s, want train", app2.Params.Input)
	}
	if app2.Params.Threads != 8 {
		t.Errorf("default threads %d, want 8", app2.Params.Threads)
	}
}

func TestSyncMatrixMatchesTableIII(t *testing.T) {
	// Spot-check the Table III encoding.
	cases := map[string]SyncSet{
		"619.lbm_s.1":       {Sta4: true},
		"607.cactuBSSN_s.1": {Sta4: true, Dyn4: true, Bar: true, Red: true, At: true},
		"621.wrf_s.1":       {Dyn4: true, Ma: true},
		"657.xz_s.2":        {Lck: true},
	}
	for name, want := range cases {
		s, ok := Lookup(name)
		if !ok {
			t.Fatalf("%s missing", name)
		}
		if s.Sync != want {
			t.Errorf("%s sync = %+v, want %+v", name, s.Sync, want)
		}
	}
}
