package workloads

import (
	"looppoint/internal/isa"
	"looppoint/internal/kernels"
)

// dynamicPhase emits a dynamically scheduled work-sharing phase: barrier,
// master resets the shared chunk counter, barrier, chunk-grab loop, barrier.
func (f *frame) dynamicPhase(counter uint64, total, chunk int64, body func(e *kernels.Emitter)) {
	f.barrier()
	f.masterOnly(func() {
		f.e.Cur.IMovI(9, 0)
		f.e.Cur.IMovI(10, int64(counter))
		f.e.Cur.IStore(10, 0, 9)
	})
	f.barrier()
	f.e.DynamicFor(counter, total, chunk, func(b *isa.Block, dst isa.Reg) {
		f.rt.EmitDynNext(b, counter, chunk, dst)
	}, body)
	f.barrier()
}

// reducePhase emits a thread-local reduction over arr followed by a
// lock-serialized global accumulation (OpenMP reduction clause).
func (f *frame) reducePhase(arr uint64, part kernels.Partition, lock, acc uint64) {
	f.e.ReduceSum(arr, part)
	f.rt.EmitReduceF(f.e.Cur, lock, acc, 6)
	f.barrier()
}

// atomicTick emits an inline atomic increment of a shared counter in the
// main image (an OpenMP `atomic` construct compiles to an inline
// lock-prefixed instruction, not a runtime call).
func (f *frame) atomicTick(counter uint64) {
	b := f.e.Cur
	b.IMovI(9, int64(counter))
	b.IMovI(10, 1)
	b.AtomicAdd(11, 9, 0, 10)
}

func init() {
	registerSpec17()
	registerNPB()
	registerDemo()
}

func registerSpec17() {
	register(Spec{
		Name: "603.bwaves_s.1", Suite: "spec17", Lang: "F", KLOC: 1, Area: "Explosion modeling",
		Sync: SyncSet{Sta4: true, Red: true, At: true},
		build: func(par BuildParams) *App {
			sm, zm := par.Input.scale()
			f := newFrame("603.bwaves_s.1", par, 5*sm)
			part := f.equal(420 * zm)
			a := f.p.Alloc("a", part.ArrayWords(par.Threads))
			b := f.p.Alloc("b", part.ArrayWords(par.Threads))
			lock := f.rt.NewLock("red")
			acc := f.p.Alloc("acc", 1)
			tick := f.p.Alloc("tick", 1)
			f.initArray(a, int64(part.ArrayWords(par.Threads)), 2654435761, 1<<30, 1)
			f.beginSteps()
			f.e.Stencil3(a, b, part)
			f.barrier()
			f.e.Stencil3(b, a, part)
			f.atomicTick(tick)
			f.barrier()
			f.reducePhase(a, part, lock, acc)
			return f.finish()
		},
	})
	register(Spec{
		Name: "603.bwaves_s.2", Suite: "spec17", Lang: "F", KLOC: 1, Area: "Explosion modeling",
		Sync: SyncSet{Sta4: true, Red: true, At: true},
		build: func(par BuildParams) *App {
			sm, zm := par.Input.scale()
			f := newFrame("603.bwaves_s.2", par, 4*sm)
			part := f.equal(640 * zm)
			a := f.p.Alloc("a", part.ArrayWords(par.Threads))
			b := f.p.Alloc("b", part.ArrayWords(par.Threads))
			lock := f.rt.NewLock("red")
			acc := f.p.Alloc("acc", 1)
			f.initArray(a, int64(part.ArrayWords(par.Threads)), 40503, 1<<29, 7)
			f.beginSteps()
			f.e.Stencil3(a, b, part)
			f.barrier()
			f.e.StreamFMA(b, part, 1.0001, 0.25)
			f.barrier()
			f.reducePhase(b, part, lock, acc)
			return f.finish()
		},
	})
	register(Spec{
		Name: "607.cactuBSSN_s.1", Suite: "spec17", Lang: "F, C++", KLOC: 257, Area: "Physics: relativity",
		Sync: SyncSet{Sta4: true, Dyn4: true, Bar: true, Red: true, At: true},
		build: func(par BuildParams) *App {
			sm, zm := par.Input.scale()
			f := newFrame("607.cactuBSSN_s.1", par, 4*sm)
			part := f.equal(300 * zm)
			grid := f.p.Alloc("grid", part.ArrayWords(par.Threads))
			rhs := f.p.Alloc("rhs", part.ArrayWords(par.Threads))
			dynArr := f.p.Alloc("dyn", uint64(300*zm*8)+64)
			ctr := f.rt.NewCounter("cactu")
			lock := f.rt.NewLock("red")
			acc := f.p.Alloc("acc", 1)
			tick := f.p.Alloc("tick", 1)
			f.initArray(grid, int64(part.ArrayWords(par.Threads)), 7919, 1<<28, 3)
			f.beginSteps()
			f.e.Stencil3(grid, rhs, part)
			f.barrier()
			f.dynamicPhase(ctr, 300*zm*8, 64, func(e *kernels.Emitter) {
				e.ChunkStream(dynArr, 64, 8)
			})
			f.e.Stencil3(rhs, grid, part)
			f.atomicTick(tick)
			f.barrier()
			f.reducePhase(grid, part, lock, acc)
			return f.finish()
		},
	})
	register(Spec{
		Name: "619.lbm_s.1", Suite: "spec17", Lang: "C", KLOC: 1, Area: "Fluid dynamics",
		Sync: SyncSet{Sta4: true},
		build: func(par BuildParams) *App {
			sm, zm := par.Input.scale()
			f := newFrame("619.lbm_s.1", par, 3*sm)
			part := f.equal(1100 * zm)
			src := f.p.Alloc("src", part.ArrayWords(par.Threads))
			dst := f.p.Alloc("dst", part.ArrayWords(par.Threads))
			f.initArray(src, int64(part.ArrayWords(par.Threads)), 31337, 1<<27, 11)
			f.beginSteps()
			// Stream-and-collide: two large static-for sweeps.
			f.e.Stencil3(src, dst, part)
			f.barrier()
			f.e.Stencil3(dst, src, part)
			f.barrier()
			return f.finish()
		},
	})
	register(Spec{
		Name: "621.wrf_s.1", Suite: "spec17", Lang: "F, C", KLOC: 991, Area: "Weather forecasting",
		Sync: SyncSet{Dyn4: true, Ma: true},
		build: func(par BuildParams) *App {
			sm, zm := par.Input.scale()
			f := newFrame("621.wrf_s.1", par, 4*sm)
			part := f.equal(150 * zm)
			phys := f.p.Alloc("phys", part.ArrayWords(par.Threads))
			dynArr := f.p.Alloc("dyn", uint64(200*zm*8)+64)
			halo := f.p.Alloc("halo", part.ArrayWords(par.Threads))
			ctr := f.rt.NewCounter("wrf")
			f.initArray(phys, int64(part.ArrayWords(par.Threads)), 104729, 1<<26, 5)
			f.beginSteps()
			// Many small physics phases with dynamic scheduling and a
			// serial master section (I/O-like).
			f.e.StreamFMA(phys, part, 1.00001, 0.125)
			f.barrier()
			f.dynamicPhase(ctr, 200*zm*8, 32, func(e *kernels.Emitter) {
				e.ChunkStream(dynArr, 32, 8)
			})
			f.e.Stencil3(phys, halo, part)
			f.barrier()
			f.masterOnly(func() {
				f.e.RandomWalk(halo, 150*zm, kernels.Equal(60*zm))
			})
			f.barrier()
			f.e.Stencil3(halo, phys, part)
			f.barrier()
			return f.finish()
		},
	})
	register(Spec{
		Name: "627.cam4_s.1", Suite: "spec17", Lang: "F, C", KLOC: 407, Area: "Atmosphere modeling",
		Sync: SyncSet{Sta4: true, Dyn4: true, Bar: true, Ma: true},
		build: func(par BuildParams) *App {
			sm, zm := par.Input.scale()
			f := newFrame("627.cam4_s.1", par, 4*sm)
			part := f.equal(260 * zm)
			col := f.p.Alloc("col", part.ArrayWords(par.Threads))
			dynArr := f.p.Alloc("dyn", uint64(120*zm*8)+64)
			ctr := f.rt.NewCounter("cam4")
			f.initArray(col, int64(part.ArrayWords(par.Threads)), 65537, 1<<25, 9)
			f.beginSteps()
			f.e.StreamFMA(col, part, 0.99999, 0.5)
			f.barrier()
			f.e.Stencil3(col, col, part) // in-place column update
			f.barrier()
			f.dynamicPhase(ctr, 120*zm*8, 24, func(e *kernels.Emitter) {
				e.ChunkStream(dynArr, 24, 8)
			})
			f.masterOnly(func() {
				f.e.StreamFMA(col, kernels.Equal(40*zm), 1.0, 0.0)
			})
			f.barrier()
			return f.finish()
		},
	})
	register(Spec{
		Name: "628.pop2_s.1", Suite: "spec17", Lang: "F, C", KLOC: 338, Area: "Wide-scale ocean modeling",
		Sync: SyncSet{Sta4: true, Bar: true, Ma: true},
		build: func(par BuildParams) *App {
			sm, zm := par.Input.scale()
			f := newFrame("628.pop2_s.1", par, 5*sm)
			part := f.equal(330 * zm)
			u := f.p.Alloc("u", part.ArrayWords(par.Threads))
			v := f.p.Alloc("v", part.ArrayWords(par.Threads))
			f.initArray(u, int64(part.ArrayWords(par.Threads)), 4242, 1<<24, 13)
			f.beginSteps()
			f.e.Stencil3(u, v, part)
			f.barrier()
			f.masterOnly(func() { // halo exchange stand-in
				f.e.StreamFMA(v, kernels.Equal(30*zm), 1.0, 0.0)
			})
			f.barrier()
			f.e.Stencil3(v, u, part)
			f.barrier()
			return f.finish()
		},
	})
	register(Spec{
		Name: "638.imagick_s.1", Suite: "spec17", Lang: "C", KLOC: 259, Area: "Image manipulation",
		Sync: SyncSet{Sta4: true, Bar: true, Ma: true, Si: true, Red: true, At: true, Lck: true},
		build: func(par BuildParams) *App {
			// imagick's defining property for sampling: enormous
			// inter-barrier regions (93.06 B of 93.35 B instructions in
			// the paper) — here, one barrier every 64 timesteps, so a
			// handful of barrier episodes exist per run (the paper's
			// imagick has inter-barrier regions nearly the size of the
			// whole application).
			sm, zm := par.Input.scale()
			f := newFrame("638.imagick_s.1", par, 16*sm)
			part := f.equal(330 * zm)
			img := f.p.Alloc("img", part.ArrayWords(par.Threads))
			out := f.p.Alloc("out", part.ArrayWords(par.Threads))
			tick := f.p.Alloc("tick", 1)
			single := f.p.Alloc("single_episode", 1)
			f.initArray(img, int64(part.ArrayWords(par.Threads)), 99991, 1<<23, 17)
			f.beginSteps()
			// Convolution-like passes, no synchronization in between.
			f.e.Stencil3(img, out, part)
			f.e.Stencil3(out, img, part)
			f.e.StreamFMA(img, part, 1.00002, 0.0625)
			f.atomicTick(tick)
			// One thread per step updates the colour-map header (single).
			f.singleOnce(single, func() {
				f.e.StreamFMA(out, kernels.Equal(16*zm), 1.0, 0.0)
			})
			// Rare barrier: only when step % 16 == 15.
			b := f.e.Cur
			b.IOpI(isa.OpIRem, 9, f.stepReg, 64)
			barBlk := f.e.NewBlock("rare_barrier")
			cont := f.e.NewBlock("after_rare")
			b.BrCondI(isa.CondEQ, 9, 63, barBlk, cont)
			f.e.Cur = barBlk
			f.barrier()
			f.e.Cur.Br(cont)
			f.e.Cur = cont
			return f.finish()
		},
	})
	register(Spec{
		Name: "644.nab_s.1", Suite: "spec17", Lang: "C", KLOC: 24, Area: "Molecular dynamics",
		Sync: SyncSet{Dyn4: true, Bar: true, Red: true, At: true, Lck: true},
		build: func(par BuildParams) *App {
			sm, zm := par.Input.scale()
			f := newFrame("644.nab_s.1", par, 4*sm)
			part := f.equal(220 * zm)
			pos := f.p.Alloc("pos", part.ArrayWords(par.Threads))
			forces := f.p.Alloc("forces", uint64(1024*zm))
			dynArr := f.p.Alloc("dyn", uint64(160*zm*8)+64)
			ctr := f.rt.NewCounter("nab")
			lock := f.rt.NewLock("energy")
			acc := f.p.Alloc("energy", 1)
			tick := f.p.Alloc("tick", 1)
			f.initArray(pos, int64(part.ArrayWords(par.Threads)), 15485863, 1<<22, 19)
			f.initArray(forces, 1024*zm, 7, 1<<20, 1)
			f.beginSteps()
			// Pairwise-force stand-in: random access into the force table.
			f.e.RandomWalk(forces, 1024*zm, part)
			f.atomicTick(tick)
			f.barrier()
			f.dynamicPhase(ctr, 160*zm*8, 16, func(e *kernels.Emitter) {
				e.ChunkStream(dynArr, 16, 8)
			})
			f.reducePhase(pos, part, lock, acc)
			return f.finish()
		},
	})
	register(Spec{
		Name: "644.nab_s.2", Suite: "spec17", Lang: "C", KLOC: 24, Area: "Molecular dynamics",
		Sync: SyncSet{Dyn4: true, Bar: true, Red: true, At: true, Lck: true},
		build: func(par BuildParams) *App {
			sm, zm := par.Input.scale()
			f := newFrame("644.nab_s.2", par, 3*sm)
			part := f.equal(340 * zm)
			pos := f.p.Alloc("pos", part.ArrayWords(par.Threads))
			forces := f.p.Alloc("forces", uint64(2048*zm))
			lock := f.rt.NewLock("energy")
			acc := f.p.Alloc("energy", 1)
			f.initArray(forces, 2048*zm, 11, 1<<21, 3)
			f.beginSteps()
			f.e.RandomWalk(forces, 2048*zm, part)
			f.barrier()
			f.e.StreamFMA(pos, part, 1.00004, 0.03125)
			f.barrier()
			f.reducePhase(pos, part, lock, acc)
			return f.finish()
		},
	})
	register(Spec{
		Name: "649.fotonik3d_s.1", Suite: "spec17", Lang: "F", KLOC: 14, Area: "Comp. Electromagnetics",
		Sync: SyncSet{Sta4: true},
		build: func(par BuildParams) *App {
			sm, zm := par.Input.scale()
			f := newFrame("649.fotonik3d_s.1", par, 4*sm)
			part := f.equal(400 * zm)
			e1 := f.p.Alloc("e", part.ArrayWords(par.Threads))
			h1 := f.p.Alloc("h", part.ArrayWords(par.Threads))
			f.initArray(e1, int64(part.ArrayWords(par.Threads)), 131071, 1<<22, 23)
			f.beginSteps()
			// FDTD update: E from H, then H from E, with strided sweeps.
			f.e.Stencil3(h1, e1, part)
			f.barrier()
			f.e.StridedLoad(e1, int64(part.ArrayWords(par.Threads)-2), 17, part)
			f.e.Stencil3(e1, h1, part)
			f.barrier()
			return f.finish()
		},
	})
	register(Spec{
		Name: "654.roms_s.1", Suite: "spec17", Lang: "F", KLOC: 210, Area: "Regional ocean modeling",
		Sync: SyncSet{Sta4: true},
		build: func(par BuildParams) *App {
			sm, zm := par.Input.scale()
			f := newFrame("654.roms_s.1", par, 5*sm)
			part := f.equal(330 * zm)
			zeta := f.p.Alloc("zeta", part.ArrayWords(par.Threads))
			ubar := f.p.Alloc("ubar", part.ArrayWords(par.Threads))
			f.initArray(zeta, int64(part.ArrayWords(par.Threads)), 524287, 1<<21, 29)
			f.beginSteps()
			f.e.StreamFMA(zeta, part, 1.00001, 0.015625)
			f.barrier()
			f.e.Stencil3(zeta, ubar, part)
			f.barrier()
			f.e.Stencil3(ubar, zeta, part)
			f.barrier()
			return f.finish()
		},
	})
	register(Spec{
		Name: "657.xz_s.1", Suite: "spec17", Lang: "C", KLOC: 33, Area: "General data compression",
		Sync:         SyncSet{},
		FixedThreads: 1,
		build: func(par BuildParams) *App {
			sm, zm := par.Input.scale()
			f := newFrame("657.xz_s.1", par, 6*sm)
			part := kernels.Equal(900 * zm)
			data := f.p.Alloc("data", part.ArrayWords(1))
			f.initArray(data, int64(part.ArrayWords(1)), 2654435761, 1<<20, 31)
			f.beginStepsGated()
			f.e.BranchyCompress(data, part)
			return f.finish()
		},
	})
	register(Spec{
		Name: "657.xz_s.2", Suite: "spec17", Lang: "C", KLOC: 33, Area: "General data compression",
		Sync:         SyncSet{Lck: true},
		FixedThreads: 4,
		build: func(par BuildParams) *App {
			// 4 threads, heterogeneous work shares (Figure 3), no
			// barriers at all — BarrierPoint is inapplicable and
			// constrained replay mispredicts badly (Section V-A1).
			sm, zm := par.Input.scale()
			f := newFrame("657.xz_s.2", par, 5*sm)
			part := kernels.Skewed(260*zm, 200*zm)
			data := f.p.Alloc("data", part.ArrayWords(4))
			lock := f.rt.NewLock("queue")
			queued := f.p.Alloc("queued", 1)
			f.initArray(data, int64(part.ArrayWords(4)), 16777619, 1<<19, 37)
			f.beginStepsGated()
			f.e.BranchyCompress(data, part)
			// Lock-protected block-queue accounting.
			f.rt.EmitLock(f.e.Cur, lock)
			b := f.e.Cur
			b.IMovI(9, int64(queued))
			b.ILoad(10, 9, 0)
			b.IOpI(isa.OpIAdd, 10, 10, 1)
			b.IStore(9, 0, 10)
			f.rt.EmitUnlock(f.e.Cur, lock)
			return f.finish()
		},
	})
}
