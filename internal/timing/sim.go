package timing

import (
	"fmt"

	"looppoint/internal/bbv"
	"looppoint/internal/exec"
	"looppoint/internal/isa"
	"looppoint/internal/pinball"
)

// WarmupMode selects how region simulations warm microarchitectural state.
type WarmupMode int

// Warmup modes.
const (
	// WarmupFunctional fast-forwards from the application start while
	// updating caches and branch predictors functionally — the paper's
	// "perfect warmup" for binary-driven region simulation (III-F).
	WarmupFunctional WarmupMode = iota
	// WarmupNone starts the region cold (used by the warmup ablation).
	WarmupNone
)

func (w WarmupMode) String() string {
	if w == WarmupNone {
		return "none"
	}
	return "functional"
}

// Simulator runs timing simulations of one program under one system
// configuration.
type Simulator struct {
	Cfg  Config
	Prog *isa.Program
	// Seed seeds the OS model for unconstrained runs.
	Seed uint64
	// Trace, when non-nil, collects an IPC-over-time trace (Figure 4).
	Trace *IPCTrace
	// MaxSteps bounds any single simulation (0 = default safety cap).
	MaxSteps uint64
	// SlowPath forces region simulations onto the per-instruction
	// reference engine instead of the block-batched fast-forward.
	// Results are identical either way (the equivalence is pinned by
	// tests); the flag exists for verification and debugging.
	SlowPath bool

	// sys is the timing-state arena, reused across simulations: the
	// first run pays the allocation wave (cache backing arrays,
	// predictor tables, directory maps), later runs clear and rebind it.
	// Reuse makes a Simulator single-threaded; run one per worker.
	sys *system
}

// New validates the pairing of configuration and program.
func New(cfg Config, prog *isa.Program) (*Simulator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Cores < prog.NumThreads() {
		return nil, fmt.Errorf("timing: %d cores for %d threads", cfg.Cores, prog.NumThreads())
	}
	return &Simulator{Cfg: cfg, Prog: prog, Seed: 1, MaxSteps: 2_000_000_000}, nil
}

// Reset re-points the Simulator at a new program and restores New's
// defaults (seed, step cap, no trace, fast path) while keeping the
// timing-state arenas for reuse — the region-restart path a sampling
// worker takes between pinballs. It performs the same validation as
// New: after a successful Reset the Simulator behaves exactly as a
// freshly constructed one, only without the allocation wave.
func (s *Simulator) Reset(prog *isa.Program) error {
	if err := s.Cfg.Validate(); err != nil {
		return err
	}
	if s.Cfg.Cores < prog.NumThreads() {
		return fmt.Errorf("timing: %d cores for %d threads", s.Cfg.Cores, prog.NumThreads())
	}
	s.Prog = prog
	s.Seed = 1
	s.Trace = nil
	s.MaxSteps = 2_000_000_000
	s.SlowPath = false
	return nil
}

// acquireSystem returns the reusable timing system bound to m, clearing
// the cached arena when one exists for the current configuration and
// building it otherwise (the configuration is the arena's shape: core
// count, cache geometry, predictor tables).
func (s *Simulator) acquireSystem(m *exec.Machine) *system {
	if s.sys != nil && s.sys.cfg == s.Cfg {
		s.sys.reset(m)
		return s.sys
	}
	s.sys = newSystem(s.Cfg, m)
	return s.sys
}

// SimulateFull runs an unconstrained, fully detailed simulation of the
// whole program (the reference run sampling is compared against).
func (s *Simulator) SimulateFull() (*Stats, error) {
	return s.SimulateRegion(bbv.Marker{}, bbv.Marker{IsEnd: true}, WarmupFunctional)
}

// SimulateRegion runs an unconstrained, binary-driven simulation of the
// region between two (PC, count) markers: the program executes from its
// initial state with the timing model deciding thread progress; detailed
// measurement is enabled between the markers (paper Section V-A1).
func (s *Simulator) SimulateRegion(start, end bbv.Marker, warm WarmupMode) (*Stats, error) {
	m := exec.NewMachine(s.Prog, s.Seed)
	return s.runMarked(m, start, end, 0, 0, warm)
}

// SimulateCheckpoint runs an unconstrained simulation of a region pinball
// starting from its snapshot rather than the program start — the
// ELFie-style executable-checkpoint path the paper cites for fast
// unconstrained region simulation (Section II, "How to simulate"). The
// warmup prefix captured in the pinball warms caches and predictors
// before the (PC, count)-delimited region is measured; the timing model,
// not the recorded schedule, decides thread progress.
func (s *Simulator) SimulateCheckpoint(pb *pinball.Pinball) (*Stats, error) {
	if err := pb.Verify(); err != nil {
		return nil, err
	}
	m := exec.NewMachine(s.Prog, s.Seed)
	m.Restore(pb.Start)
	// Recorded syscall results are injected while they last; once the
	// unconstrained interleaving consumes them differently, the OS model
	// takes over.
	replay := exec.NewReplayOS(pb.Syscalls)
	replay.Fallback = exec.NewDefaultOS(s.Seed)
	m.OS = replay
	return s.runMarked(m, pb.Region.Start, pb.Region.End,
		pb.StartHitsAtSnapshot, pb.EndHitsAtSnapshot, WarmupFunctional)
}

// runMarked drives an unconstrained timing simulation on a prepared
// machine, warming until the start marker and measuring until the end
// marker. startBase/endBase rebase global marker counts for machines that
// begin mid-program.
func (s *Simulator) runMarked(m *exec.Machine, start, end bbv.Marker, startBase, endBase uint64, warm WarmupMode) (_ *Stats, err error) {
	defer exec.Recover(&err)
	sys := s.acquireSystem(m)
	inDetail := start.IsStart() || (!start.IsICount() && !start.IsEnd && start.Count <= startBase)
	warming := warm == WarmupFunctional
	sys.setDetail(inDetail)

	startHits, endHits := startBase, endBase
	var steps uint64
	var detailBase float64
	maxSteps := s.MaxSteps
	if maxSteps == 0 {
		maxSteps = 2_000_000_000
	}
	delta := 1.0 / float64(s.Cfg.Dispatch)

	// Fast-forward: until the start marker flips the simulation into
	// detail, instructions retire in block batches — caches, predictors,
	// and the coherence directory warm from the batches' coalesced
	// reference streams (warmBlock), while cycles accumulate the same
	// uniform dispatch slot per instruction the per-instruction loop
	// charges. Batch budgets are capped so the scheduler's pick sequence
	// and every marker boundary land on the exact instructions the
	// per-instruction engine would visit; marker PCs are break PCs, so
	// their block entries arrive as single-instruction events.
	if !inDetail && !s.SlowPath {
		if !start.IsStart() && !start.IsICount() {
			m.AddBreakPC(start.PC)
		}
		if !end.IsEnd && !end.IsICount() {
			m.AddBreakPC(end.PC)
		}
		ev := &exec.BlockEvent{}
		for !inDetail && !m.Done() {
			tid := s.pickNext(m, sys)
			if tid < 0 {
				if m.Deadlocked() {
					return nil, exec.ErrDeadlock
				}
				break
			}
			budget := s.batchAllowance(m, sys, tid, delta)
			if rem := maxSteps - steps; budget > rem {
				budget = rem + 1 // allow the step that trips the cap
			}
			if start.IsICount() {
				// The instruction that crosses the icount boundary must
				// arrive as a single-instruction event (it is charged in
				// full detail); approach the boundary without crossing.
				if rem := start.Count - steps; rem > 1 {
					if rem-1 < budget {
						budget = rem - 1
					}
				} else {
					budget = 1
				}
			}
			if !m.StepBlock(tid, budget, ev) {
				return nil, fmt.Errorf("timing: scheduled thread %d could not step", tid)
			}
			steps += ev.Instrs
			if steps > maxSteps {
				return nil, fmt.Errorf("timing: %w", exec.ErrMaxSteps)
			}

			// Marker bookkeeping in the exact per-instruction order.
			flipped := false
			if start.IsICount() && !inDetail && steps >= start.Count {
				inDetail = true
				sys.setDetail(true)
				detailBase = sys.wallCycle()
				flipped = true
			}
			if end.IsICount() && inDetail && steps >= end.Count {
				return sys.stats(detailBase), nil
			}
			if ev.Entries > 0 {
				if !start.IsStart() && ev.Block.Addr == start.PC {
					startHits += ev.Entries
					if !inDetail && startHits >= start.Count {
						inDetail = true
						sys.setDetail(true)
						detailBase = sys.wallCycle()
						flipped = true
					}
				}
				if !end.IsEnd && ev.Block.Addr == end.PC {
					endHits += ev.Entries
					if inDetail && endHits >= end.Count {
						return sys.stats(detailBase), nil
					}
				}
			}
			if flipped && ev.Instrs != 1 {
				return nil, fmt.Errorf("timing: internal: detail flip landed inside a %d-instruction batch", ev.Instrs)
			}

			if flipped {
				// The flip instruction is measured: charge it in full
				// detail, exactly as the per-instruction loop would.
				sys.cores[tid].cycle += sys.costOf(tid, inputFromBlockEvent(ev))
			} else {
				if warming {
					sys.warmBlock(tid, ev)
				}
				// Replicate the per-instruction additions: n separate
				// float adds are not n*delta.
				for i := uint64(0); i < ev.Instrs; i++ {
					sys.cores[tid].cycle += delta
				}
			}
			if len(ev.Woken) > 0 {
				sys.wake(sys.cores[tid].cycle, ev.Woken)
			}
			if flipped && s.Trace != nil {
				s.Trace.maybeSample(sys.totalInstrs(), sys.wallCycle())
			}
		}
	}

	for !m.Done() {
		tid := s.pickNext(m, sys)
		if tid < 0 {
			if m.Deadlocked() {
				return nil, exec.ErrDeadlock
			}
			break
		}
		ev, ok := m.Step(tid)
		if !ok {
			return nil, fmt.Errorf("timing: scheduled thread %d could not step", tid)
		}
		steps++
		if steps > maxSteps {
			return nil, fmt.Errorf("timing: %w", exec.ErrMaxSteps)
		}

		// Marker bookkeeping happens before charging so the start
		// marker's own instruction is measured and the end marker's is
		// not — matching how the profiler attributes the boundary
		// instruction to the following region. Raw instruction-count
		// markers (the naive baseline's boundaries) fire on the global
		// retired count instead of a PC.
		if start.IsICount() && !inDetail && steps >= start.Count {
			inDetail = true
			sys.setDetail(true)
			detailBase = sys.wallCycle()
		}
		if end.IsICount() && inDetail && steps >= end.Count {
			return sys.stats(detailBase), nil
		}
		if ev.BlockEntry {
			// Detail begins and ends without resetting core clocks: the
			// warmup phase develops the natural thread stagger of the
			// running system, and measuring wall-clock deltas over it
			// makes isolated regions tile the continuous run exactly
			// (resetting clocks would force every region to re-pay the
			// align-to-steady-state transition).
			if !start.IsStart() && ev.Block.Addr == start.PC {
				startHits++
				if !inDetail && startHits >= start.Count {
					inDetail = true
					sys.setDetail(true)
					detailBase = sys.wallCycle()
				}
			}
			if !end.IsEnd && ev.Block.Addr == end.PC {
				endHits++
				if inDetail && endHits >= end.Count {
					return sys.stats(detailBase), nil
				}
			}
		}

		// Cycles always accumulate so the min-cycle scheduler interleaves
		// threads fairly even while fast-forwarding; microarchitectural
		// state warms functionally (warmOf) without stall arithmetic, so
		// the fast-forward charge is a uniform dispatch slot regardless
		// of warmup mode and the block-batched engine can reproduce it.
		var c float64
		if inDetail {
			c = sys.cost(tid, ev)
		} else {
			if warming {
				sys.warmOf(tid, inputFromEvent(ev))
			}
			c = delta
		}
		sys.cores[tid].cycle += c
		if len(ev.Woken) > 0 {
			sys.wake(sys.cores[tid].cycle, ev.Woken)
		}
		if inDetail && s.Trace != nil {
			s.Trace.maybeSample(sys.totalInstrs(), sys.wallCycle())
		}
	}
	if !inDetail {
		if start.IsICount() {
			// Raw instruction-count boundaries are not stable across
			// thread interleavings (Section II): under a different
			// schedule the program can retire fewer instructions (e.g.
			// fewer spin iterations) and never reach the recorded
			// count. The naive baseline then measures nothing for this
			// region — one of the reasons its extrapolation degrades.
			return sys.stats(detailBase), nil
		}
		return nil, fmt.Errorf("timing: start marker %v never reached", start)
	}
	if !end.IsEnd && !end.IsICount() && endHits < end.Count {
		return nil, fmt.Errorf("timing: end marker %v never reached (%d/%d hits)", end, endHits, end.Count)
	}
	return sys.stats(detailBase), nil
}

// SimulatePeriodic implements time-based periodic sampling (the paper's
// Section VI baseline, after Carlson et al.): every period retired
// instructions, a window of detail instructions is simulated in detail;
// the remainder fast-forwards with functional warming. The returned
// statistics carry the *extrapolated* cycle count (each window's cycles
// scaled by period/detail). The whole application is still visited
// functionally, which is precisely why this methodology's speedup is
// bounded by application length (Section II).
func (s *Simulator) SimulatePeriodic(detail, period uint64) (_ *Stats, err error) {
	defer exec.Recover(&err)
	if detail == 0 || period == 0 || detail > period {
		return nil, fmt.Errorf("timing: invalid periodic sampling %d/%d", detail, period)
	}
	m := exec.NewMachine(s.Prog, s.Seed)
	sys := s.acquireSystem(m)
	sys.setDetail(true)

	var steps uint64
	var estCycles float64
	windowStart := sys.wallCycle()
	inDetail := true
	for !m.Done() {
		tid := s.pickNext(m, sys)
		if tid < 0 {
			if m.Deadlocked() {
				return nil, exec.ErrDeadlock
			}
			break
		}
		ev, ok := m.Step(tid)
		if !ok {
			return nil, fmt.Errorf("timing: scheduled thread %d could not step", tid)
		}
		steps++
		phase := steps % period
		wantDetail := phase < detail
		if wantDetail != inDetail {
			if inDetail {
				// Close the detail window and extrapolate it over the period.
				estCycles += (sys.wallCycle() - windowStart) * float64(period) / float64(detail)
			} else {
				windowStart = sys.wallCycle()
			}
			inDetail = wantDetail
			sys.setDetail(wantDetail)
		}
		c := sys.cost(tid, ev)
		sys.cores[tid].cycle += c
		if len(ev.Woken) > 0 {
			sys.wake(sys.cores[tid].cycle, ev.Woken)
		}
	}
	if inDetail {
		estCycles += (sys.wallCycle() - windowStart) * float64(period) / float64(detail)
	}
	st := sys.stats(0)
	st.Cycles = estCycles
	return st, nil
}

// pickNext returns the runnable thread whose core has the smallest cycle
// count (ties broken by thread ID), or -1 if none can run. During
// fast-forward all cycles are equal, so this degrades to round-robin-like
// ordering that still interleaves threads fairly.
func (s *Simulator) pickNext(m *exec.Machine, sys *system) int {
	best := -1
	var bestCycle float64
	for tid, t := range m.Threads {
		if t.State != exec.StateRunning {
			continue
		}
		c := sys.cores[tid].cycle
		if best == -1 || c < bestCycle {
			best, bestCycle = tid, c
		}
	}
	return best
}

// batchAllowance returns how many instructions thread tid may retire
// before the min-cycle scheduler would pick a different thread, assuming
// each instruction costs exactly delta cycles (the fast-forward charge).
// It replays the same float additions the per-instruction loop performs,
// so the resulting scheduling sequence is bit-identical: tid stays the
// pick while its cycle is below the other threads' minimum, or equal to
// it with a lower thread ID (pickNext's tie rule).
func (s *Simulator) batchAllowance(m *exec.Machine, sys *system, tid int, delta float64) uint64 {
	oc, oj := 0.0, -1
	for j, t := range m.Threads {
		if j == tid || t.State != exec.StateRunning {
			continue
		}
		if c := sys.cores[j].cycle; oj == -1 || c < oc {
			oc, oj = c, j
		}
	}
	if oj == -1 {
		return ^uint64(0) // only runnable thread: no scheduling constraint
	}
	cy := sys.cores[tid].cycle
	var n uint64
	for cy < oc || (cy == oc && tid < oj) {
		cy += delta
		n++
		if n == 1<<20 {
			break // split enormous leads into several batches
		}
	}
	return n
}

// SimulateConstrained replays a pinball under the timing model with the
// recorded thread interleaving enforced (constrained simulation). Shared
// lines may not be touched out of recorded order, which inserts the
// artificial stalls the paper warns about (Section V-A1): results can
// diverge badly from unconstrained behaviour, especially for
// low-synchronization applications.
func (s *Simulator) SimulateConstrained(pb *pinball.Pinball) (_ *Stats, err error) {
	defer exec.Recover(&err)
	if err := pb.Verify(); err != nil {
		return nil, err
	}
	m := exec.NewMachine(s.Prog, 0)
	m.Restore(pb.Start)
	replay := exec.NewReplayOS(pb.Syscalls)
	m.OS = replay
	sys := s.acquireSystem(m)
	sys.constrained = true
	inDetail := pb.WarmupSteps == 0
	sys.setDetail(inDetail)

	var steps uint64
	var base float64
	for _, e := range pb.Schedule {
		for i := uint32(0); i < e.N; i++ {
			ev, ok := m.Step(e.Tid)
			if !ok {
				return nil, fmt.Errorf("timing: constrained replay diverged: thread %d is %s",
					e.Tid, m.Threads[e.Tid].State)
			}
			steps++
			if !inDetail && steps > pb.WarmupSteps {
				inDetail = true
				sys.setDetail(true)
				base = sys.wallCycle()
			}
			sys.constrainedOrderStall(e.Tid, ev)
			c := sys.cost(e.Tid, ev)
			sys.cores[e.Tid].cycle += c
			if len(ev.Woken) > 0 {
				sys.wake(sys.cores[e.Tid].cycle, ev.Woken)
			}
		}
	}
	if replay.Diverged {
		return nil, fmt.Errorf("timing: constrained replay exhausted the syscall injection log")
	}
	return sys.stats(base), nil
}
