package timing

import (
	"testing"

	"looppoint/internal/bbv"
	"looppoint/internal/dcfg"
	"looppoint/internal/omp"
	"looppoint/internal/pinball"
	"looppoint/internal/testprog"
)

func TestSimulateCheckpointMatchesRegionSpan(t *testing.T) {
	p := testprog.Phased(4, 10, 150, omp.Passive)
	pb, err := pinball.Record(p, 5, 512)
	if err != nil {
		t.Fatal(err)
	}
	db := dcfg.NewBuilder(p, 4)
	if _, err := pb.Replay(p, db); err != nil {
		t.Fatal(err)
	}
	g := db.Graph()
	var addrs []uint64
	for _, h := range g.StableMarkers(g.FindLoops(), 300) {
		addrs = append(addrs, h.Addr)
	}
	col := bbv.NewCollector(p, addrs, 4*1500)
	if _, err := pb.Replay(p, col); err != nil {
		t.Fatal(err)
	}
	prof := col.Finish()
	if len(prof.Regions) < 4 {
		t.Fatalf("only %d regions", len(prof.Regions))
	}

	// Extract region 2 with region 1 as warmup, simulate from checkpoint.
	reg := prof.Regions[2]
	warm := prof.Regions[1]
	rps, err := pb.ExtractRegions(p, []pinball.RegionSpec{{
		Name:            "r2",
		WarmupStartStep: warm.StartICount,
		StartStep:       reg.StartICount,
		EndStep:         reg.EndICount,
		Start:           reg.Start,
		End:             reg.End,
	}})
	if err != nil {
		t.Fatal(err)
	}
	sim, err := New(Gainestown(4), p)
	if err != nil {
		t.Fatal(err)
	}
	st, err := sim.SimulateCheckpoint(rps[0])
	if err != nil {
		t.Fatalf("SimulateCheckpoint: %v", err)
	}
	got, want := float64(st.Instructions), float64(reg.UnfilteredLen())
	if got < want*0.85 || got > want*1.15 {
		t.Errorf("checkpoint sim measured %d instructions, region has %d", st.Instructions, reg.UnfilteredLen())
	}
	if st.Cycles <= 0 {
		t.Error("no cycles measured")
	}

	// The checkpoint path and the binary-driven path must broadly agree
	// on the region's runtime (both unconstrained, different warmup).
	sim2, err := New(Gainestown(4), p)
	if err != nil {
		t.Fatal(err)
	}
	st2, err := sim2.SimulateRegion(reg.Start, reg.End, WarmupFunctional)
	if err != nil {
		t.Fatal(err)
	}
	ratio := st.Cycles / st2.Cycles
	if ratio < 0.7 || ratio > 1.4 {
		t.Errorf("checkpoint (%.0f cycles) and binary-driven (%.0f cycles) disagree by %.2fx",
			st.Cycles, st2.Cycles, ratio)
	}
}

func TestSimulateCheckpointNoWarmupRegion(t *testing.T) {
	// WarmupStartStep == StartStep: detail begins immediately.
	p := testprog.Phased(2, 8, 100, omp.Passive)
	pb, err := pinball.Record(p, 3, 256)
	if err != nil {
		t.Fatal(err)
	}
	db := dcfg.NewBuilder(p, 2)
	if _, err := pb.Replay(p, db); err != nil {
		t.Fatal(err)
	}
	g := db.Graph()
	var addrs []uint64
	for _, h := range g.StableMarkers(g.FindLoops(), 300) {
		addrs = append(addrs, h.Addr)
	}
	col := bbv.NewCollector(p, addrs, 2*1000)
	if _, err := pb.Replay(p, col); err != nil {
		t.Fatal(err)
	}
	prof := col.Finish()
	if len(prof.Regions) < 3 {
		t.Skip("not enough regions")
	}
	reg := prof.Regions[1]
	rps, err := pb.ExtractRegions(p, []pinball.RegionSpec{{
		Name:            "cold",
		WarmupStartStep: reg.StartICount,
		StartStep:       reg.StartICount,
		EndStep:         reg.EndICount,
		Start:           reg.Start,
		End:             reg.End,
	}})
	if err != nil {
		t.Fatal(err)
	}
	if rps[0].WarmupSteps != 0 {
		t.Fatalf("warmup steps = %d, want 0", rps[0].WarmupSteps)
	}
	sim, err := New(Gainestown(2), p)
	if err != nil {
		t.Fatal(err)
	}
	st, err := sim.SimulateCheckpoint(rps[0])
	if err != nil {
		t.Fatal(err)
	}
	if st.Instructions == 0 {
		t.Error("cold checkpoint measured nothing")
	}
}
