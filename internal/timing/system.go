package timing

import (
	"looppoint/internal/exec"
	"looppoint/internal/isa"
)

// coreState holds one core's timing state.
type coreState struct {
	cycle        float64
	l1i, l1d, l2 *Cache
	bp           *BranchPredictor
	instrs       uint64 // retired in detail mode
	filtered     uint64
	lastMissEnd  float64 // completion time of the most recent long miss
	stack        CPIStack
}

// system wires a functional machine to the timing model. One thread is
// pinned per core (the paper simulates N-threaded applications on N-core
// systems).
type system struct {
	cfg    Config
	m      *exec.Machine
	cores  []*coreState
	l3     *Cache
	dir    map[uint64]uint64 // cache line -> bitmask of cores holding it
	clock  uint64            // LRU clock: total accesses
	detail bool
	trace  *IPCTrace

	// constrained-mode shared-order enforcement
	constrained bool
	lineLast    map[uint64]lineAccess

	coherenceInv uint64
	futexWaits   uint64
}

type lineAccess struct {
	tid   int
	cycle float64
}

func newSystem(cfg Config, m *exec.Machine) *system {
	s := &system{
		cfg:      cfg,
		m:        m,
		dir:      make(map[uint64]uint64),
		lineLast: make(map[uint64]lineAccess),
	}
	s.l3 = NewCache(cfg.L3, nil)
	for i := 0; i < cfg.Cores; i++ {
		l2 := NewCache(cfg.L2, s.l3)
		c := &coreState{
			l1i: NewCache(cfg.L1I, l2),
			l1d: NewCache(cfg.L1D, l2),
			l2:  l2,
			bp:  NewBranchPredictor(),
		}
		s.cores = append(s.cores, c)
	}
	return s
}

// reset returns the system to its newSystem state while reusing every
// allocation — cache backing arrays, predictor tables, core states, and
// the directory maps — and rebinds the functional machine. Only
// capacity carries over; every bit of observable state is cleared, and
// the identity tests pin reset-then-simulate byte-identical to fresh
// construction.
func (s *system) reset(m *exec.Machine) {
	s.m = m
	for _, c := range s.cores {
		c.cycle = 0
		c.l1i.Reset()
		c.l1d.Reset()
		c.l2.Reset()
		c.bp.Reset()
		c.instrs, c.filtered = 0, 0
		c.lastMissEnd = 0
		c.stack = CPIStack{}
	}
	s.l3.Reset()
	clear(s.dir)
	s.clock = 0
	s.detail = false
	s.trace = nil
	s.constrained = false
	clear(s.lineLast)
	s.coherenceInv = 0
	s.futexWaits = 0
}

// setDetail flips between functional-warming and detailed mode.
func (s *system) setDetail(detail bool) {
	s.detail = detail
	for _, c := range s.cores {
		c.l1i.SetWarming(!detail)
		c.l1d.SetWarming(!detail)
		c.l2.SetWarming(!detail)
		c.bp.SetWarming(!detail)
	}
	s.l3.SetWarming(!detail)
}

// dLatency maps the hit level of a data access (1=L1D) to total latency.
func (s *system) dLatency(level int) float64 {
	switch level {
	case 1:
		return float64(s.cfg.L1D.Latency)
	case 2:
		return float64(s.cfg.L2.Latency)
	case 3:
		return float64(s.cfg.L3.Latency)
	default:
		return float64(s.cfg.L3.Latency + s.cfg.MemLatency)
	}
}

// hideWindow is how many cycles of memory latency the core hides.
func (s *system) hideWindow() float64 {
	if s.cfg.Kind == OOO {
		return float64(s.cfg.ROB) / float64(2*s.cfg.Dispatch)
	}
	return 2
}

// memStall charges a load-class stall with MLP overlap.
func (s *system) memStall(c *coreState, lat float64) float64 {
	stall := lat - s.hideWindow()
	if stall <= 0 {
		return 0
	}
	now := c.cycle
	if now < c.lastMissEnd {
		// Overlaps an outstanding miss: only the serialization share.
		if now+lat > c.lastMissEnd {
			c.lastMissEnd = now + lat
		}
		return stall / s.cfg.MLP
	}
	c.lastMissEnd = now + lat
	return stall
}

// costInput is the microarchitecture-relevant slice of one executed
// instruction — everything the timing model needs, whether the source is
// a live functional execution (exec.Event) or a recorded trace.
type costInput struct {
	Op         isa.Op
	PC         uint64 // instruction address (branch prediction index)
	BlockAddr  uint64 // owning block address (instruction fetch)
	BlockEntry bool
	MemAddr    uint64
	Taken      bool
	Blocked    bool
	Sync       bool // instruction belongs to a synchronization image
}

func inputFromEvent(ev *exec.Event) costInput {
	return costInput{
		Op:         ev.Instr.Op,
		PC:         ev.Instr.Addr,
		BlockAddr:  ev.Block.Addr,
		BlockEntry: ev.BlockEntry,
		MemAddr:    ev.MemAddr,
		Taken:      ev.Taken,
		Blocked:    ev.Blocked,
		Sync:       ev.Block.Routine.Image.Sync,
	}
}

// cost computes the cycle cost of one executed instruction on core tid
// and updates all microarchitectural state.
func (s *system) cost(tid int, ev *exec.Event) float64 {
	return s.costOf(tid, inputFromEvent(ev))
}

// costOf is cost on the flat representation.
func (s *system) costOf(tid int, in costInput) float64 {
	c := s.cores[tid]
	s.clock++
	cycles := 1.0 / float64(s.cfg.Dispatch)
	var ifetchCycles float64

	// Instruction fetch: charge on block entry when the line misses L1I.
	if in.BlockEntry {
		lvl := c.l1i.Access(in.BlockAddr*8, s.clock)
		if lvl > 1 {
			pen := s.dLatency(lvl)
			if s.cfg.Kind == OOO {
				pen /= 2 // decoupled front end hides part of it
			}
			ifetchCycles = pen
			cycles += pen
		}
	}

	base := cycles
	var memCycles, syncCycles, computeCycles, branchCycles float64

	switch {
	case in.Op == isa.OpILoad || in.Op == isa.OpFLoad:
		lvl := c.l1d.Access(in.MemAddr, s.clock)
		s.noteFill(tid, in.MemAddr)
		memCycles += s.memStall(c, s.dLatency(lvl))
		s.warmPrefetch(c, tid, in.MemAddr, lvl, s.clock)
	case in.Op == isa.OpIStore || in.Op == isa.OpFStore:
		lvl := c.l1d.Access(in.MemAddr, s.clock)
		s.noteFill(tid, in.MemAddr)
		memCycles += s.memStall(c, s.dLatency(lvl)) / 2 // store buffer
		memCycles += s.coherence(tid, in.MemAddr)
		s.warmPrefetch(c, tid, in.MemAddr, lvl, s.clock)
	case in.Op.IsAtomic():
		lvl := c.l1d.Access(in.MemAddr, s.clock)
		s.noteFill(tid, in.MemAddr)
		// Atomics serialize: full latency, no ROB hiding.
		syncCycles += s.dLatency(lvl) + float64(s.cfg.AtomicCycles)
		syncCycles += s.coherence(tid, in.MemAddr)
	case in.Op == isa.OpFutexWait:
		syncCycles += float64(s.cfg.FutexCycles)
		if in.Blocked && s.detail {
			s.futexWaits++
		}
	case in.Op == isa.OpFutexWake:
		syncCycles += float64(s.cfg.FutexCycles)
	case in.Op == isa.OpIDiv || in.Op == isa.OpIRem || in.Op == isa.OpFDiv:
		pen := float64(s.cfg.DivCycles)
		if s.cfg.Kind == OOO {
			pen /= 2
		}
		computeCycles += pen
	case in.Op == isa.OpFSqrt:
		pen := float64(s.cfg.SqrtCycles)
		if s.cfg.Kind == OOO {
			pen /= 2
		}
		computeCycles += pen
	case in.Op == isa.OpPause:
		syncCycles += float64(s.cfg.PauseCycles)
	case in.Op == isa.OpSyscall:
		syncCycles += float64(s.cfg.FutexCycles)
	}

	// Branch prediction: conditional branches consult the predictor;
	// unconditional transfers are free beyond the base cost.
	if in.Op == isa.OpBrCond {
		if !c.bp.Predict(in.PC*8, in.Taken) {
			branchCycles += float64(s.cfg.MispredictPenalty)
		}
	}

	cycles = base + memCycles + syncCycles + computeCycles + branchCycles
	if s.detail {
		c.instrs++
		if !in.Sync {
			c.filtered++
		}
		c.stack.Base += base - ifetchCycles
		c.stack.Ifetch += ifetchCycles
		c.stack.Memory += memCycles
		c.stack.Sync += syncCycles
		c.stack.Compute += computeCycles
		c.stack.Branch += branchCycles
	}
	return cycles
}

// warmPrefetch replays the next-line prefetcher's fills for a data access
// that missed L1D, at LRU clock clk.
func (s *system) warmPrefetch(c *coreState, tid int, addr uint64, lvl int, clk uint64) {
	if lvl > 1 && s.cfg.PrefetchNextLines > 0 {
		for n := 1; n <= s.cfg.PrefetchNextLines; n++ {
			pf := addr + uint64(n*64)
			c.l1d.FillQuiet(pf, clk)
			s.noteFill(tid, pf)
		}
	}
}

// warmOf functionally warms microarchitectural state for one fast-forward
// instruction: caches, coherence directory, prefetcher, and branch
// predictor update exactly as costOf would update them, but no stall
// arithmetic runs and no cycles are computed (the fast-forward charge is
// a uniform dispatch slot per instruction). The access order and LRU
// clocks are identical to costOf's, so the warmed state is bit-identical
// to a detailed walk over the same instruction stream.
func (s *system) warmOf(tid int, in costInput) {
	c := s.cores[tid]
	s.clock++
	if in.BlockEntry {
		c.l1i.Access(in.BlockAddr*8, s.clock)
	}
	switch {
	case in.Op == isa.OpILoad || in.Op == isa.OpFLoad:
		lvl := c.l1d.Access(in.MemAddr, s.clock)
		s.noteFill(tid, in.MemAddr)
		s.warmPrefetch(c, tid, in.MemAddr, lvl, s.clock)
	case in.Op == isa.OpIStore || in.Op == isa.OpFStore:
		lvl := c.l1d.Access(in.MemAddr, s.clock)
		s.noteFill(tid, in.MemAddr)
		s.coherence(tid, in.MemAddr)
		s.warmPrefetch(c, tid, in.MemAddr, lvl, s.clock)
	case in.Op.IsAtomic():
		c.l1d.Access(in.MemAddr, s.clock)
		s.noteFill(tid, in.MemAddr)
		s.coherence(tid, in.MemAddr)
	}
	if in.Op == isa.OpBrCond {
		c.bp.Predict(in.PC*8, in.Taken)
	}
}

// warmBlock is warmOf over a whole coalesced block event. Instruction
// fetches (at pass starts) and data references are replayed in exact
// instruction order at their per-instruction LRU clocks, so every cache,
// directory, and predictor structure ends in the same state as ev.Instrs
// calls to warmOf. Conditional-terminator outcomes replay as CondSelf
// same-outcome updates followed by the exit outcome.
func (s *system) warmBlock(tid int, ev *exec.BlockEvent) {
	c := s.cores[tid]
	blk := ev.Block
	L := uint64(len(blk.Instrs))
	base := s.clock

	ref := func(r *exec.MemRef) {
		clk := base + uint64(r.Off) + 1
		switch r.Kind {
		case exec.RefLoad:
			lvl := c.l1d.Access(r.Addr, clk)
			s.noteFill(tid, r.Addr)
			s.warmPrefetch(c, tid, r.Addr, lvl, clk)
		case exec.RefStore:
			lvl := c.l1d.Access(r.Addr, clk)
			s.noteFill(tid, r.Addr)
			s.coherence(tid, r.Addr)
			s.warmPrefetch(c, tid, r.Addr, lvl, clk)
		case exec.RefAtomic:
			c.l1d.Access(r.Addr, clk)
			s.noteFill(tid, r.Addr)
			s.coherence(tid, r.Addr)
		}
	}

	// Merge instruction fetches and data references by instruction
	// offset: the shared L2/L3 see accesses in the same order as a
	// per-instruction walk (an entry instruction fetches before its own
	// data access, matching costOf).
	mi := 0
	if ev.Entries > 0 {
		off := uint64(0)
		if ev.FirstIdx != 0 {
			off = L - uint64(ev.FirstIdx) // partial leading pass first
		}
		for e := uint64(0); e < ev.Entries; e++ {
			for mi < len(ev.Mem) && uint64(ev.Mem[mi].Off) < off {
				ref(&ev.Mem[mi])
				mi++
			}
			c.l1i.Access(blk.Addr*8, base+off+1)
			off += L
		}
	}
	for ; mi < len(ev.Mem); mi++ {
		ref(&ev.Mem[mi])
	}
	s.clock = base + ev.Instrs

	if ev.CondSelf > 0 || ev.CondExit {
		pc := blk.Instrs[L-1].Addr * 8
		for k := uint64(0); k < ev.CondSelf; k++ {
			c.bp.Predict(pc, ev.SelfTaken)
		}
		if ev.CondExit {
			c.bp.Predict(pc, ev.ExitTaken)
		}
	}
}

// inputFromBlockEvent flattens a single-instruction block event (a
// break-PC or budget-capped boundary event) into a costInput. It must
// only be called on events with Instrs == 1.
func inputFromBlockEvent(ev *exec.BlockEvent) costInput {
	in := ev.Block.Instrs[ev.FirstIdx]
	ci := costInput{
		Op:         in.Op,
		PC:         in.Addr,
		BlockAddr:  ev.Block.Addr,
		BlockEntry: ev.FirstIdx == 0,
		Blocked:    ev.Blocked,
		Sync:       ev.Block.Routine.Image.Sync,
	}
	if len(ev.Mem) > 0 {
		ci.MemAddr = ev.Mem[0].Addr
	}
	if ev.CondSelf > 0 {
		ci.Taken = ev.SelfTaken
	} else if ev.CondExit {
		ci.Taken = ev.ExitTaken
	}
	return ci
}

// noteFill records private-cache residency for the coherence directory.
func (s *system) noteFill(tid int, addr uint64) {
	line := addr >> 6
	s.dir[line] |= 1 << uint(tid)
}

// coherence invalidates remote copies on a write and charges the penalty.
func (s *system) coherence(tid int, addr uint64) float64 {
	line := addr >> 6
	others := s.dir[line] &^ (1 << uint(tid))
	if others == 0 {
		return 0
	}
	for t := 0; t < s.cfg.Cores; t++ {
		if others&(1<<uint(t)) != 0 {
			s.cores[t].l1d.Invalidate(addr)
			s.cores[t].l2.Invalidate(addr)
		}
	}
	s.dir[line] = 1 << uint(tid)
	if s.detail {
		s.coherenceInv++
	}
	return float64(s.cfg.CoherenceCycles)
}

// constrainedOrderStall enforces the recorded shared-memory dependency
// order: a synchronization access (atomic or futex word) to a line last
// touched by another thread may not begin before that access completed —
// the artificial delay PinPlay replay inserts to reproduce the recorded
// interleaving. Plain loads/stores are not constrained (the race log
// covers logged dependencies, which concentrate on sync variables), yet
// the recorded *schedule* still forces every thread to the recorded
// pace, which is what makes constrained timing misleading for
// applications whose natural thread progress differs from the recording
// (Section V-A1: worst for low-synchronization apps like 657.xz_s.2).
func (s *system) constrainedOrderStall(tid int, ev *exec.Event) {
	if !ev.IsMem {
		return
	}
	op := ev.Instr.Op
	if !op.IsAtomic() && op != isa.OpFutexWait && op != isa.OpFutexWake {
		return
	}
	line := ev.MemAddr >> 6
	c := s.cores[tid]
	if last, ok := s.lineLast[line]; ok && last.tid != tid && last.cycle > c.cycle {
		c.cycle = last.cycle
	}
	s.lineLast[line] = lineAccess{tid: tid, cycle: c.cycle}
}

// wake propagates wake-up timing: woken threads resume no earlier than
// the waker plus the wake latency.
func (s *system) wake(wakerCycle float64, woken []int) {
	for _, w := range woken {
		if resume := wakerCycle + float64(s.cfg.WakeCycles); resume > s.cores[w].cycle {
			s.cores[w].cycle = resume
		}
	}
}

// totalInstrs returns instructions retired in detail mode.
func (s *system) totalInstrs() uint64 {
	var n uint64
	for _, c := range s.cores {
		n += c.instrs
	}
	return n
}

// wallCycle is the simulated wall clock: the maximum core cycle.
func (s *system) wallCycle() float64 {
	var w float64
	for _, c := range s.cores {
		if c.cycle > w {
			w = c.cycle
		}
	}
	return w
}

// stats snapshots the counters into a Stats value. baseCycles is the wall
// cycle at the start of the detailed window.
func (s *system) stats(baseCycles float64) *Stats {
	st := &Stats{Config: s.cfg}
	st.Cycles = s.wallCycle() - baseCycles
	if st.Cycles < 0 {
		st.Cycles = 0
	}
	for _, c := range s.cores {
		st.CoreInstr = append(st.CoreInstr, c.instrs)
		st.Instructions += c.instrs
		st.FilteredInstructions += c.filtered
		st.Stack.Add(c.stack)
		st.Branches += c.bp.Lookups
		st.BranchMisses += c.bp.Mispredict
		st.L1IAccesses += c.l1i.Accesses
		st.L1IMisses += c.l1i.Misses
		st.L1DAccesses += c.l1d.Accesses
		st.L1DMisses += c.l1d.Misses
		st.L2Accesses += c.l2.Accesses
		st.L2Misses += c.l2.Misses
	}
	st.L3Accesses = s.l3.Accesses
	st.L3Misses = s.l3.Misses
	st.CoherenceInvalidations = s.coherenceInv
	st.FutexWaits = s.futexWaits
	return st
}
