package timing

import (
	"reflect"
	"testing"

	"looppoint/internal/bbv"
	"looppoint/internal/dcfg"
	"looppoint/internal/omp"
	"looppoint/internal/pinball"
	"looppoint/internal/testprog"
)

// TestSimulateRegionFastSlowIdentical is the timing half of the
// acceptance criterion: the block-batched fast-forward and the
// per-instruction reference engine must produce bit-identical statistics
// for marker-delimited region simulations, across wait policies, warmup
// modes, and marker kinds (PC markers and raw icount markers).
func TestSimulateRegionFastSlowIdentical(t *testing.T) {
	for _, policy := range []omp.WaitPolicy{omp.Passive, omp.Active} {
		policy := policy
		name := "passive"
		if policy == omp.Active {
			name = "active"
		}
		t.Run(name, func(t *testing.T) {
			p := testprog.Phased(4, 8, 120, policy)
			pb, err := pinball.Record(p, 5, 512)
			if err != nil {
				t.Fatal(err)
			}
			db := dcfg.NewBuilder(p, 4)
			if _, err := pb.Replay(p, db); err != nil {
				t.Fatal(err)
			}
			g := db.Graph()
			var addrs []uint64
			for _, h := range g.StableMarkers(g.FindLoops(), 300) {
				addrs = append(addrs, h.Addr)
			}
			col := bbv.NewCollector(p, addrs, 4*1200)
			if _, err := pb.Replay(p, col); err != nil {
				t.Fatal(err)
			}
			prof := col.Finish()
			if len(prof.Regions) < 3 {
				t.Fatalf("only %d regions", len(prof.Regions))
			}

			sim := func(slow bool, start, end bbv.Marker, warm WarmupMode) *Stats {
				s, err := New(Gainestown(4), p)
				if err != nil {
					t.Fatal(err)
				}
				s.SlowPath = slow
				st, err := s.SimulateRegion(start, end, warm)
				if err != nil {
					t.Fatalf("SimulateRegion(slow=%v, %v..%v): %v", slow, start, end, err)
				}
				return st
			}

			for _, warm := range []WarmupMode{WarmupFunctional, WarmupNone} {
				for i, reg := range prof.Regions {
					if reg.Start.IsStart() || reg.Start.IsEnd {
						continue // fully detailed from the start: no fast-forward
					}
					fast := sim(false, reg.Start, reg.End, warm)
					slow := sim(true, reg.Start, reg.End, warm)
					if !reflect.DeepEqual(fast, slow) {
						t.Errorf("region %d (%v..%v, warmup %v): stats differ\nfast: %+v\nslow: %+v",
							i, reg.Start, reg.End, warm, fast, slow)
					}
				}
			}

			// Raw icount boundaries (the naive baseline's markers) cross
			// mid-batch without a break PC; the budget capping must land
			// the flip on the exact instruction.
			mid := prof.TotalICount / 2
			end := mid + prof.TotalICount/4
			fast := sim(false, bbv.Marker{Count: mid}, bbv.Marker{Count: end}, WarmupFunctional)
			slow := sim(true, bbv.Marker{Count: mid}, bbv.Marker{Count: end}, WarmupFunctional)
			if !reflect.DeepEqual(fast, slow) {
				t.Errorf("icount region: stats differ\nfast: %+v\nslow: %+v", fast, slow)
			}
		})
	}
}

// TestSimulateCheckpointFastSlowIdentical pins the checkpoint path: a
// region pinball simulated from its snapshot must produce bit-identical
// statistics on both engines (rebased marker counts, warmup prefix, and
// syscall-injection fallback included).
func TestSimulateCheckpointFastSlowIdentical(t *testing.T) {
	p := testprog.Phased(4, 10, 150, omp.Passive)
	pb, err := pinball.Record(p, 5, 512)
	if err != nil {
		t.Fatal(err)
	}
	db := dcfg.NewBuilder(p, 4)
	if _, err := pb.Replay(p, db); err != nil {
		t.Fatal(err)
	}
	g := db.Graph()
	var addrs []uint64
	for _, h := range g.StableMarkers(g.FindLoops(), 300) {
		addrs = append(addrs, h.Addr)
	}
	col := bbv.NewCollector(p, addrs, 4*1500)
	if _, err := pb.Replay(p, col); err != nil {
		t.Fatal(err)
	}
	prof := col.Finish()
	if len(prof.Regions) < 4 {
		t.Fatalf("only %d regions", len(prof.Regions))
	}

	reg, warm := prof.Regions[2], prof.Regions[1]
	rps, err := pb.ExtractRegions(p, []pinball.RegionSpec{{
		Name:            "r2",
		WarmupStartStep: warm.StartICount,
		StartStep:       reg.StartICount,
		EndStep:         reg.EndICount,
		Start:           reg.Start,
		End:             reg.End,
	}})
	if err != nil {
		t.Fatal(err)
	}

	run := func(slow bool) *Stats {
		s, err := New(Gainestown(4), p)
		if err != nil {
			t.Fatal(err)
		}
		s.SlowPath = slow
		st, err := s.SimulateCheckpoint(rps[0])
		if err != nil {
			t.Fatalf("SimulateCheckpoint(slow=%v): %v", slow, err)
		}
		return st
	}
	fast, slow := run(false), run(true)
	if !reflect.DeepEqual(fast, slow) {
		t.Errorf("checkpoint stats differ\nfast: %+v\nslow: %+v", fast, slow)
	}
}
