package timing

import "fmt"

// CPIStack decomposes cycles into the components Sniper popularized:
// where did the time go — issue-width-limited base execution, instruction
// fetch, data memory stalls, branch mispredictions, long-latency compute,
// or synchronization (atomics, futex, spinning hints).
type CPIStack struct {
	Base    float64
	Ifetch  float64
	Memory  float64
	Branch  float64
	Compute float64
	Sync    float64
}

// Total returns the summed components.
func (c CPIStack) Total() float64 {
	return c.Base + c.Ifetch + c.Memory + c.Branch + c.Compute + c.Sync
}

// Add accumulates another stack.
func (c *CPIStack) Add(o CPIStack) {
	c.Base += o.Base
	c.Ifetch += o.Ifetch
	c.Memory += o.Memory
	c.Branch += o.Branch
	c.Compute += o.Compute
	c.Sync += o.Sync
}

// Stats aggregates the performance counters of one (detailed) simulation.
type Stats struct {
	Config Config
	// Cycles is the simulated wall-clock length of the detailed portion
	// (maximum over cores).
	Cycles float64
	// Instructions retired during detail, total and per core.
	Instructions uint64
	CoreInstr    []uint64
	// FilteredInstructions excludes synchronization-library code — the
	// unit-of-work denominator used by extrapolation.
	FilteredInstructions uint64

	Branches     uint64
	BranchMisses uint64

	L1IAccesses, L1IMisses uint64
	L1DAccesses, L1DMisses uint64
	L2Accesses, L2Misses   uint64
	L3Accesses, L3Misses   uint64

	CoherenceInvalidations uint64
	FutexWaits             uint64

	// Stack is the aggregate cycle decomposition across cores. Its total
	// is the summed per-core busy cycles (it exceeds wall-clock Cycles,
	// which is the max over cores).
	Stack CPIStack
}

// RuntimeSeconds converts cycles to simulated seconds.
func (s *Stats) RuntimeSeconds() float64 {
	return s.Cycles / (s.Config.FreqGHz * 1e9)
}

// IPC returns aggregate instructions per cycle.
func (s *Stats) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.Instructions) / s.Cycles
}

// BranchMPKI returns branch mispredictions per kilo-instruction.
func (s *Stats) BranchMPKI() float64 { return mpki(s.BranchMisses, s.Instructions) }

// L1DMPKI returns L1-D misses per kilo-instruction.
func (s *Stats) L1DMPKI() float64 { return mpki(s.L1DMisses, s.Instructions) }

// L2MPKI returns L2 misses per kilo-instruction.
func (s *Stats) L2MPKI() float64 { return mpki(s.L2Misses, s.Instructions) }

// L3MPKI returns L3 misses per kilo-instruction.
func (s *Stats) L3MPKI() float64 { return mpki(s.L3Misses, s.Instructions) }

func mpki(misses, instrs uint64) float64 {
	if instrs == 0 {
		return 0
	}
	return float64(misses) / float64(instrs) * 1000
}

func (s *Stats) String() string {
	return fmt.Sprintf("cycles=%.0f instrs=%d ipc=%.3f brMPKI=%.2f l2MPKI=%.2f l3MPKI=%.2f",
		s.Cycles, s.Instructions, s.IPC(), s.BranchMPKI(), s.L2MPKI(), s.L3MPKI())
}

// Accumulate adds other's counters into s (used when summing region
// simulations; Cycles accumulate additively for serial composition).
func (s *Stats) Accumulate(other *Stats) {
	s.Cycles += other.Cycles
	s.Instructions += other.Instructions
	s.FilteredInstructions += other.FilteredInstructions
	s.Branches += other.Branches
	s.BranchMisses += other.BranchMisses
	s.L1IAccesses += other.L1IAccesses
	s.L1IMisses += other.L1IMisses
	s.L1DAccesses += other.L1DAccesses
	s.L1DMisses += other.L1DMisses
	s.L2Accesses += other.L2Accesses
	s.L2Misses += other.L2Misses
	s.L3Accesses += other.L3Accesses
	s.L3Misses += other.L3Misses
	s.CoherenceInvalidations += other.CoherenceInvalidations
	s.FutexWaits += other.FutexWaits
	s.Stack.Add(other.Stack)
}

// IPCSample is one point of an IPC-over-time trace (Figure 4).
type IPCSample struct {
	Instructions uint64
	Cycles       float64
	IPC          float64
}

// IPCTrace samples aggregate IPC every Interval retired instructions.
type IPCTrace struct {
	Interval uint64
	Samples  []IPCSample

	lastInstr uint64
	lastCycle float64
}

// NewIPCTrace creates a trace sampling every interval instructions.
func NewIPCTrace(interval uint64) *IPCTrace {
	if interval == 0 {
		interval = 100000
	}
	return &IPCTrace{Interval: interval}
}

func (t *IPCTrace) maybeSample(instrs uint64, cycles float64) {
	if instrs-t.lastInstr < t.Interval {
		return
	}
	di, dc := instrs-t.lastInstr, cycles-t.lastCycle
	ipc := 0.0
	if dc > 0 {
		ipc = float64(di) / dc
	}
	t.Samples = append(t.Samples, IPCSample{Instructions: instrs, Cycles: cycles, IPC: ipc})
	t.lastInstr, t.lastCycle = instrs, cycles
}
