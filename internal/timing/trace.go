package timing

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"looppoint/internal/exec"
	"looppoint/internal/isa"
)

// Trace-driven simulation — the third "how to simulate" option of the
// paper's Section II taxonomy (next to binary-driven and
// checkpoint-driven): an instruction-by-instruction record of an
// execution is fed to a timing-only simulator. A trace fixes the thread
// interleaving by construction, so trace-driven simulation is inherently
// constrained; the paper's reasons to prefer unconstrained simulation
// apply to it as well. Its virtue is decoupling: the consumer needs no
// functional machine, no program, and no inputs — only the trace file.

const (
	traceMagic   = "LOOPTRCE"
	traceVersion = uint32(1)
)

// flag bits packed into each record.
const (
	tfBlockEntry = 1 << 0
	tfTaken      = 1 << 1
	tfBlocked    = 1 << 2
	tfSync       = 1 << 3
	tfMem        = 1 << 4
)

// TraceWriter is an exec.Observer that streams one compact record per
// executed instruction. Attach it to any run — a live execution or a
// pinball replay — and Close when done.
type TraceWriter struct {
	w   *bufio.Writer
	err error
	n   uint64
}

// NewTraceWriter starts a trace on dst.
func NewTraceWriter(dst io.Writer) (*TraceWriter, error) {
	w := &TraceWriter{w: bufio.NewWriterSize(dst, 1<<20)}
	if _, err := w.w.WriteString(traceMagic); err != nil {
		return nil, err
	}
	var ver [4]byte
	binary.LittleEndian.PutUint32(ver[:], traceVersion)
	if _, err := w.w.Write(ver[:]); err != nil {
		return nil, err
	}
	return w, nil
}

// OnInstr implements exec.Observer.
func (t *TraceWriter) OnInstr(ev *exec.Event) {
	if t.err != nil {
		return
	}
	var rec [27]byte
	rec[0] = uint8(ev.Tid)
	rec[1] = uint8(ev.Instr.Op)
	var flags uint8
	if ev.BlockEntry {
		flags |= tfBlockEntry
	}
	if ev.Taken {
		flags |= tfTaken
	}
	if ev.Blocked {
		flags |= tfBlocked
	}
	if ev.Block.Routine.Image.Sync {
		flags |= tfSync
	}
	if ev.IsMem {
		flags |= tfMem
	}
	rec[2] = flags
	binary.LittleEndian.PutUint64(rec[3:], ev.Instr.Addr)
	binary.LittleEndian.PutUint64(rec[11:], ev.Block.Addr)
	binary.LittleEndian.PutUint64(rec[19:], ev.MemAddr)
	if _, err := t.w.Write(rec[:]); err != nil {
		t.err = err
		return
	}
	t.n++
}

// Records returns how many instructions have been traced.
func (t *TraceWriter) Records() uint64 { return t.n }

// Close flushes the trace.
func (t *TraceWriter) Close() error {
	if t.err != nil {
		return t.err
	}
	return t.w.Flush()
}

// SimulateTrace runs a timing-only simulation over a recorded trace: no
// functional machine executes; each record is charged on its thread's
// core exactly as a live instruction would be. Thread wake-ups are
// approximated from trace order: the first record of a thread after it
// blocked resumes no earlier than the previously retired record's core
// clock plus the wake latency.
func SimulateTrace(cfg Config, src io.Reader) (*Stats, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	r := bufio.NewReaderSize(src, 1<<20)
	head := make([]byte, len(traceMagic)+4)
	if _, err := io.ReadFull(r, head); err != nil {
		return nil, fmt.Errorf("timing: reading trace header: %w", err)
	}
	if string(head[:len(traceMagic)]) != traceMagic {
		return nil, fmt.Errorf("timing: bad trace magic %q", head[:len(traceMagic)])
	}
	if v := binary.LittleEndian.Uint32(head[len(traceMagic):]); v != traceVersion {
		return nil, fmt.Errorf("timing: unsupported trace version %d", v)
	}

	sys := newSystem(cfg, nil)
	sys.setDetail(true)
	blocked := make([]bool, cfg.Cores)
	var lastCycle float64

	var rec [27]byte
	for {
		if _, err := io.ReadFull(r, rec[:]); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("timing: truncated trace record: %w", err)
		}
		tid := int(rec[0])
		if tid >= cfg.Cores {
			return nil, fmt.Errorf("timing: trace thread %d exceeds %d cores", tid, cfg.Cores)
		}
		flags := rec[2]
		in := costInput{
			Op:         isa.Op(rec[1]),
			PC:         binary.LittleEndian.Uint64(rec[3:]),
			BlockAddr:  binary.LittleEndian.Uint64(rec[11:]),
			MemAddr:    binary.LittleEndian.Uint64(rec[19:]),
			BlockEntry: flags&tfBlockEntry != 0,
			Taken:      flags&tfTaken != 0,
			Blocked:    flags&tfBlocked != 0,
			Sync:       flags&tfSync != 0,
		}
		c := sys.cores[tid]
		if blocked[tid] {
			// Wake-up: resume after the record that (in trace order)
			// preceded this thread's return, plus the wake latency.
			if resume := lastCycle + float64(cfg.WakeCycles); resume > c.cycle {
				c.cycle = resume
			}
			blocked[tid] = false
		}
		c.cycle += sys.costOf(tid, in)
		lastCycle = c.cycle
		if in.Blocked {
			blocked[tid] = true
		}
	}
	return sys.stats(0), nil
}
