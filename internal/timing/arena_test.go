package timing

import (
	"reflect"
	"testing"

	"looppoint/internal/bbv"
	"looppoint/internal/dcfg"
	"looppoint/internal/exec"
	"looppoint/internal/isa"
	"looppoint/internal/omp"
	"looppoint/internal/pinball"
	"looppoint/internal/testprog"
)

// regionPinballs records a whole-program pinball and extracts a few
// region pinballs from it, for exercising the checkpoint and
// constrained paths on a reused Simulator.
func regionPinballs(t *testing.T) ([]*pinball.Pinball, *pinball.Pinball) {
	t.Helper()
	p := arenaProg()
	whole, err := pinball.Record(p, 5, 512)
	if err != nil {
		t.Fatal(err)
	}
	db := dcfg.NewBuilder(p, 4)
	if _, err := whole.Replay(p, db); err != nil {
		t.Fatal(err)
	}
	g := db.Graph()
	var addrs []uint64
	for _, h := range g.StableMarkers(g.FindLoops(), 300) {
		addrs = append(addrs, h.Addr)
	}
	col := bbv.NewCollector(p, addrs, 4*1500)
	if _, err := whole.Replay(p, col); err != nil {
		t.Fatal(err)
	}
	prof := col.Finish()
	if len(prof.Regions) < 4 {
		t.Fatalf("only %d regions", len(prof.Regions))
	}
	var specs []pinball.RegionSpec
	for i := 1; i < 4; i++ {
		reg := prof.Regions[i]
		warm := prof.Regions[i-1]
		specs = append(specs, pinball.RegionSpec{
			Name:            "r" + string(rune('0'+i)),
			WarmupStartStep: warm.StartICount,
			StartStep:       reg.StartICount,
			EndStep:         reg.EndICount,
			Start:           reg.Start,
			End:             reg.End,
		})
	}
	rps, err := whole.ExtractRegions(p, specs)
	if err != nil {
		t.Fatal(err)
	}
	return rps, whole
}

func arenaProg() *isa.Program { return testprog.Phased(4, 10, 150, omp.Passive) }

// TestResetIdentityCheckpoints: one Simulator reused across every
// region pinball (the worker arena path) reports byte-identical Stats
// to a fresh Simulator per region.
func TestResetIdentityCheckpoints(t *testing.T) {
	rps, _ := regionPinballs(t)
	p := arenaProg()
	reused, err := New(Gainestown(4), p)
	if err != nil {
		t.Fatal(err)
	}
	for i, rp := range rps {
		fresh, err := New(Gainestown(4), p)
		if err != nil {
			t.Fatal(err)
		}
		want, err := fresh.SimulateCheckpoint(rp)
		if err != nil {
			t.Fatalf("region %d fresh: %v", i, err)
		}
		got, err := reused.SimulateCheckpoint(rp)
		if err != nil {
			t.Fatalf("region %d reused: %v", i, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("region %d: reused-Simulator stats differ from fresh-Simulator stats\nreused: %+v\nfresh:  %+v", i, got, want)
		}
	}
}

// TestResetIdentityAcrossModes: interleaving every simulation mode on
// one Simulator — full, region, checkpoint, constrained, periodic —
// leaves no residue: each run matches a fresh Simulator's run.
func TestResetIdentityAcrossModes(t *testing.T) {
	rps, whole := regionPinballs(t)
	p := arenaProg()
	reused, err := New(Gainestown(4), p)
	if err != nil {
		t.Fatal(err)
	}
	runs := []struct {
		name string
		do   func(s *Simulator) (*Stats, error)
	}{
		{"full", func(s *Simulator) (*Stats, error) { return s.SimulateFull() }},
		{"checkpoint", func(s *Simulator) (*Stats, error) { return s.SimulateCheckpoint(rps[0]) }},
		{"constrained", func(s *Simulator) (*Stats, error) { return s.SimulateConstrained(whole) }},
		{"region", func(s *Simulator) (*Stats, error) {
			return s.SimulateRegion(rps[1].Region.Start, rps[1].Region.End, WarmupFunctional)
		}},
		{"periodic", func(s *Simulator) (*Stats, error) { return s.SimulatePeriodic(500, 2000) }},
		// Repeat the first mode: state left by the others must not leak in.
		{"full-again", func(s *Simulator) (*Stats, error) { return s.SimulateFull() }},
	}
	for _, run := range runs {
		fresh, err := New(Gainestown(4), p)
		if err != nil {
			t.Fatal(err)
		}
		want, err := run.do(fresh)
		if err != nil {
			t.Fatalf("%s fresh: %v", run.name, err)
		}
		got, err := run.do(reused)
		if err != nil {
			t.Fatalf("%s reused: %v", run.name, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%s: reused-Simulator stats differ from fresh\nreused: %+v\nfresh:  %+v", run.name, got, want)
		}
	}
}

// TestSimulatorResetRestoresDefaults: Reset re-points the program and
// restores New's defaults, so a pooled Simulator with leftover Seed,
// Trace, or SlowPath settings behaves like a fresh one.
func TestSimulatorResetRestoresDefaults(t *testing.T) {
	p := arenaProg()
	s, err := New(Gainestown(4), p)
	if err != nil {
		t.Fatal(err)
	}
	s.Seed = 99
	s.SlowPath = true
	s.MaxSteps = 7
	s.Trace = NewIPCTrace(1000)
	if err := s.Reset(p); err != nil {
		t.Fatal(err)
	}
	fresh, err := New(Gainestown(4), p)
	if err != nil {
		t.Fatal(err)
	}
	if s.Seed != fresh.Seed || s.SlowPath != fresh.SlowPath || s.MaxSteps != fresh.MaxSteps || s.Trace != nil {
		t.Fatalf("Reset left non-default knobs: %+v", s)
	}
	// Validation still applies: too many threads for the config fails.
	if err := s.Reset(testprog.Phased(8, 2, 10, omp.Passive)); err == nil {
		t.Fatal("Reset accepted a program with more threads than cores")
	}
}

// TestSystemResetAllocs: once the arena exists, re-arming it for the
// next region allocates nothing — the zero-per-region-growth guarantee
// the sampling pipeline relies on.
func TestSystemResetAllocs(t *testing.T) {
	p := arenaProg()
	s, err := New(Gainestown(4), p)
	if err != nil {
		t.Fatal(err)
	}
	m := exec.NewMachine(p, 1)
	sys := s.acquireSystem(m)
	if allocs := testing.AllocsPerRun(20, func() { sys.reset(m) }); allocs != 0 {
		t.Fatalf("system reset: %.1f allocs/op, want 0", allocs)
	}
}
