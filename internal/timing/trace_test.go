package timing

import (
	"bytes"
	"strings"
	"testing"

	"looppoint/internal/omp"
	"looppoint/internal/pinball"
	"looppoint/internal/testprog"
)

func TestTraceDrivenMatchesConstrained(t *testing.T) {
	// A trace captured during a pinball replay carries the same
	// interleaving the constrained simulator follows, and the timing-only
	// consumer charges the same costs — so instruction counts and
	// microarchitectural counters must match exactly, and cycles closely
	// (the constrained simulator's shared-order stalls and exact wake
	// bookkeeping are the only differences).
	p := testprog.Phased(4, 4, 150, omp.Active)
	pb, err := pinball.Record(p, 9, 512)
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	tw, err := NewTraceWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pb.Replay(p, tw); err != nil {
		t.Fatal(err)
	}
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}
	if tw.Records() != pb.Schedule.Steps() {
		t.Fatalf("trace has %d records, schedule %d steps", tw.Records(), pb.Schedule.Steps())
	}

	traced, err := SimulateTrace(Gainestown(4), bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("SimulateTrace: %v", err)
	}
	sim, err := New(Gainestown(4), p)
	if err != nil {
		t.Fatal(err)
	}
	constrained, err := sim.SimulateConstrained(pb)
	if err != nil {
		t.Fatal(err)
	}

	if traced.Instructions != constrained.Instructions {
		t.Errorf("instructions differ: trace %d vs constrained %d",
			traced.Instructions, constrained.Instructions)
	}
	if traced.BranchMisses != constrained.BranchMisses {
		t.Errorf("branch misses differ: %d vs %d", traced.BranchMisses, constrained.BranchMisses)
	}
	if traced.L1DMisses != constrained.L1DMisses || traced.L2Misses != constrained.L2Misses {
		t.Errorf("cache misses differ: L1D %d/%d L2 %d/%d",
			traced.L1DMisses, constrained.L1DMisses, traced.L2Misses, constrained.L2Misses)
	}
	ratio := traced.Cycles / constrained.Cycles
	if ratio < 0.8 || ratio > 1.25 {
		t.Errorf("cycles diverge: trace %.0f vs constrained %.0f (%.2fx)",
			traced.Cycles, constrained.Cycles, ratio)
	}
}

func TestTraceRejectsGarbage(t *testing.T) {
	if _, err := SimulateTrace(Gainestown(2), strings.NewReader("not a trace")); err == nil {
		t.Fatal("garbage trace accepted")
	}
	// Truncated mid-record.
	var buf bytes.Buffer
	tw, err := NewTraceWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}
	data := append(buf.Bytes(), 0x01, 0x02, 0x03)
	if _, err := SimulateTrace(Gainestown(2), bytes.NewReader(data)); err == nil {
		t.Fatal("truncated trace accepted")
	}
}

func TestTraceThreadBoundsChecked(t *testing.T) {
	p := testprog.Phased(4, 2, 50, omp.Passive)
	pb, err := pinball.Record(p, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	tw, _ := NewTraceWriter(&buf)
	if _, err := pb.Replay(p, tw); err != nil {
		t.Fatal(err)
	}
	tw.Close()
	// Simulating a 4-thread trace on a 2-core config must fail loudly.
	if _, err := SimulateTrace(Gainestown(2), bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("trace with out-of-range thread accepted")
	}
}
