package timing

import (
	"testing"

	"looppoint/internal/omp"
	"looppoint/internal/testprog"
)

func TestPrefetcherReducesMisses(t *testing.T) {
	run := func(lines int) *Stats {
		p := testprog.Phased(4, 3, 400, omp.Passive)
		cfg := Gainestown(4)
		cfg.PrefetchNextLines = lines
		sim, err := New(cfg, p)
		if err != nil {
			t.Fatal(err)
		}
		st, err := sim.SimulateFull()
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	off := run(0)
	on := run(2)
	if on.L1DMisses >= off.L1DMisses {
		t.Errorf("prefetcher did not reduce L1D misses: %d -> %d", off.L1DMisses, on.L1DMisses)
	}
	if on.Instructions != off.Instructions {
		t.Errorf("prefetcher changed functional behaviour: %d vs %d instructions",
			on.Instructions, off.Instructions)
	}
	if on.Cycles > off.Cycles {
		t.Errorf("prefetcher slowed the streaming workload: %.0f -> %.0f cycles", off.Cycles, on.Cycles)
	}
}

func TestFillQuietDoesNotCountStats(t *testing.T) {
	c := NewCache(CacheConfig{Name: "c", SizeBytes: 1024, Assoc: 2, LineBytes: 64, Latency: 1}, nil)
	c.FillQuiet(256, 1)
	if c.Accesses != 0 || c.Misses != 0 {
		t.Fatal("quiet fill counted in demand statistics")
	}
	if !c.Contains(256) {
		t.Fatal("quiet fill did not insert the line")
	}
	if lvl := c.Access(256, 2); lvl != 1 {
		t.Fatalf("prefetched line missed (level %d)", lvl)
	}
}
