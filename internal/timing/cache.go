package timing

// Cache is a set-associative LRU cache. Caches form a linear hierarchy
// via the next pointer; Access walks down on miss and fills on the way
// back, returning the level that hit (1-based; levels+1 = memory).
type Cache struct {
	cfg   CacheConfig
	sets  [][]cacheLine
	back  []cacheLine // the single allocation sets slice into
	next  *Cache
	level int

	Accesses uint64
	Misses   uint64

	lineShift uint
	warming   bool
}

type cacheLine struct {
	tag   uint64
	valid bool
	lru   uint64
}

// NewCache builds one cache level chained above next (nil = memory).
func NewCache(cfg CacheConfig, next *Cache) *Cache {
	c := &Cache{cfg: cfg, next: next}
	if next != nil {
		c.level = 1 // recomputed by callers; informational only
	}
	sets := cfg.Sets()
	c.sets = make([][]cacheLine, sets)
	c.back = make([]cacheLine, sets*cfg.Assoc)
	for i, backing := 0, c.back; i < sets; i++ {
		c.sets[i], backing = backing[:cfg.Assoc], backing[cfg.Assoc:]
	}
	for ls, v := uint(0), cfg.LineBytes; v > 1; v >>= 1 {
		ls++
		c.lineShift = ls
	}
	return c
}

// Reset invalidates every line and zeroes statistics while reusing the
// backing array — the arena path for cross-region Simulator reuse. Only
// this level is reset: hierarchies are walked explicitly by callers so
// a shared L3 is cleared once, not once per core above it.
func (c *Cache) Reset() {
	clear(c.back)
	c.Accesses, c.Misses = 0, 0
	c.warming = false
}

// SetWarming toggles warming mode: state updates happen but statistics do
// not accumulate (functional warmup, paper Section III-F).
func (c *Cache) SetWarming(w bool) {
	c.warming = w
	if c.next != nil {
		c.next.SetWarming(w)
	}
}

// Access looks up the byte address, filling lines on a miss. It returns
// the 1-based level at which the access hit; if no level hits, it returns
// number-of-levels + 1 (memory). clock provides LRU ordering.
func (c *Cache) Access(addr uint64, clock uint64) int {
	line := addr >> c.lineShift
	set := int(line % uint64(len(c.sets)))
	tag := line / uint64(len(c.sets))
	if !c.warming {
		c.Accesses++
	}
	ways := c.sets[set]
	for i := range ways {
		if ways[i].valid && ways[i].tag == tag {
			ways[i].lru = clock
			return 1
		}
	}
	if !c.warming {
		c.Misses++
	}
	below := 1
	if c.next != nil {
		below = c.next.Access(addr, clock)
	}
	// Fill, evicting the LRU way.
	victim := 0
	for i := 1; i < len(ways); i++ {
		if !ways[i].valid {
			victim = i
			break
		}
		if ways[i].lru < ways[victim].lru {
			victim = i
		}
	}
	ways[victim] = cacheLine{tag: tag, valid: true, lru: clock}
	return below + 1
}

// FillQuiet inserts the line holding addr at this level and below without
// touching demand-access statistics (hardware prefetch fills).
func (c *Cache) FillQuiet(addr uint64, clock uint64) {
	line := addr >> c.lineShift
	set := int(line % uint64(len(c.sets)))
	tag := line / uint64(len(c.sets))
	ways := c.sets[set]
	for i := range ways {
		if ways[i].valid && ways[i].tag == tag {
			ways[i].lru = clock
			if c.next != nil {
				c.next.FillQuiet(addr, clock)
			}
			return
		}
	}
	victim := 0
	for i := 1; i < len(ways); i++ {
		if !ways[i].valid {
			victim = i
			break
		}
		if ways[i].lru < ways[victim].lru {
			victim = i
		}
	}
	ways[victim] = cacheLine{tag: tag, valid: true, lru: clock}
	if c.next != nil {
		c.next.FillQuiet(addr, clock)
	}
}

// Contains reports whether the address is resident at this level.
func (c *Cache) Contains(addr uint64) bool {
	line := addr >> c.lineShift
	set := int(line % uint64(len(c.sets)))
	tag := line / uint64(len(c.sets))
	for _, w := range c.sets[set] {
		if w.valid && w.tag == tag {
			return true
		}
	}
	return false
}

// Invalidate drops the line holding addr from this level only (coherence).
func (c *Cache) Invalidate(addr uint64) {
	line := addr >> c.lineShift
	set := int(line % uint64(len(c.sets)))
	tag := line / uint64(len(c.sets))
	for i := range c.sets[set] {
		if c.sets[set][i].valid && c.sets[set][i].tag == tag {
			c.sets[set][i].valid = false
		}
	}
}

// MissRatio returns misses/accesses (0 when idle).
func (c *Cache) MissRatio() float64 {
	if c.Accesses == 0 {
		return 0
	}
	return float64(c.Misses) / float64(c.Accesses)
}
