package timing

import (
	"testing"

	"looppoint/internal/omp"
	"looppoint/internal/testprog"
)

// BenchmarkCacheAccess measures the hierarchy walk on a mixed hit/miss
// address stream.
func BenchmarkCacheAccess(b *testing.B) {
	cfg := Gainestown(1)
	l3 := NewCache(cfg.L3, nil)
	l2 := NewCache(cfg.L2, l3)
	l1 := NewCache(cfg.L1D, l2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l1.Access(uint64(i*89)&0xFFFFF, uint64(i))
	}
}

// BenchmarkBranchPredictor measures predictor update throughput.
func BenchmarkBranchPredictor(b *testing.B) {
	bp := NewBranchPredictor()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bp.Predict(uint64(i&1023)<<2, i%7 != 0)
	}
}

// BenchmarkPerRegionFresh measures the per-region cost the sampling
// pipeline paid before timing-state arenas: every region builds a fresh
// Simulator (cache sets, line arrays, predictor tables, directory maps)
// and then simulates a small region. The allocs/op column is the
// per-region allocation wave that Reset-based reuse eliminates.
func BenchmarkPerRegionFresh(b *testing.B) {
	p := testprog.Phased(4, 2, 60, omp.Passive)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim, err := New(Gainestown(4), p)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := sim.SimulateFull(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPerRegionReused is the same per-region workload on one
// reused Simulator: the timing-state arena absorbs the allocation wave
// BenchmarkPerRegionFresh pays per region.
func BenchmarkPerRegionReused(b *testing.B) {
	p := testprog.Phased(4, 2, 60, omp.Passive)
	sim, err := New(Gainestown(4), p)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := sim.SimulateFull(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.SimulateFull(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDetailedSimulation measures end-to-end detailed-simulation
// speed in simulated instructions per host second (the paper's baseline
// assumption is ~100 KIPS for industrial simulators; this approximate
// model runs far faster, which only rescales Figure 1's absolute axis).
func BenchmarkDetailedSimulation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		p := testprog.Phased(4, 4, 300, omp.Passive)
		sim, err := New(Gainestown(4), p)
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		st, err := sim.SimulateFull()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(st.Instructions)/b.Elapsed().Seconds()/1e6, "Minstr/s")
	}
}
