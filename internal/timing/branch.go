package timing

// BranchPredictor is a Pentium-M-style hybrid predictor (paper Table I):
// a bimodal table and a gshare-indexed global table arbitrated by a
// per-branch chooser, all 2-bit saturating counters.
type BranchPredictor struct {
	bimodal []uint8
	global  []uint8
	chooser []uint8
	history uint64

	Lookups    uint64
	Mispredict uint64
	warming    bool
}

const (
	bpBits    = 12 // 4K-entry tables
	bpMask    = (1 << bpBits) - 1
	histMask  = bpMask
	takenInit = 2 // weakly taken
)

// NewBranchPredictor builds the predictor with weakly-taken initial state.
func NewBranchPredictor() *BranchPredictor {
	bp := &BranchPredictor{
		bimodal: make([]uint8, 1<<bpBits),
		global:  make([]uint8, 1<<bpBits),
		chooser: make([]uint8, 1<<bpBits),
	}
	for i := range bp.bimodal {
		bp.bimodal[i] = takenInit
		bp.global[i] = takenInit
		bp.chooser[i] = takenInit // weakly prefer global
	}
	return bp
}

// Reset returns the predictor to its weakly-taken initial state and
// zeroes statistics while reusing the table allocations.
func (bp *BranchPredictor) Reset() {
	for i := range bp.bimodal {
		bp.bimodal[i] = takenInit
		bp.global[i] = takenInit
		bp.chooser[i] = takenInit
	}
	bp.history = 0
	bp.Lookups, bp.Mispredict = 0, 0
	bp.warming = false
}

// SetWarming toggles warming mode (state updates without statistics).
func (bp *BranchPredictor) SetWarming(w bool) { bp.warming = w }

// Predict consumes a resolved branch (pc, taken outcome) and reports
// whether the prediction was correct, updating all state.
func (bp *BranchPredictor) Predict(pc uint64, taken bool) bool {
	bi := int(pc>>2) & bpMask
	gi := (int(pc>>2) ^ int(bp.history)) & bpMask

	predB := bp.bimodal[bi] >= 2
	predG := bp.global[gi] >= 2
	useGlobal := bp.chooser[bi] >= 2
	pred := predB
	if useGlobal {
		pred = predG
	}
	correct := pred == taken
	if !bp.warming {
		bp.Lookups++
		if !correct {
			bp.Mispredict++
		}
	}

	// Update the chooser toward whichever component was right.
	if predB != predG {
		if predG == taken {
			bp.chooser[bi] = satInc(bp.chooser[bi])
		} else {
			bp.chooser[bi] = satDec(bp.chooser[bi])
		}
	}
	if taken {
		bp.bimodal[bi] = satInc(bp.bimodal[bi])
		bp.global[gi] = satInc(bp.global[gi])
	} else {
		bp.bimodal[bi] = satDec(bp.bimodal[bi])
		bp.global[gi] = satDec(bp.global[gi])
	}
	bp.history = ((bp.history << 1) | b2u(taken)) & histMask
	return correct
}

// MissRate returns mispredictions per lookup.
func (bp *BranchPredictor) MissRate() float64 {
	if bp.Lookups == 0 {
		return 0
	}
	return float64(bp.Mispredict) / float64(bp.Lookups)
}

func satInc(v uint8) uint8 {
	if v < 3 {
		return v + 1
	}
	return v
}

func satDec(v uint8) uint8 {
	if v > 0 {
		return v - 1
	}
	return v
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}
