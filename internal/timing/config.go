// Package timing is the multicore performance model standing in for the
// Sniper simulator (paper Section IV-A): an execution-driven, cycle-level
// approximation of a Gainestown-like out-of-order multicore with the
// Table I memory hierarchy, a Pentium-M-style hybrid branch predictor,
// and an alternative in-order core model (Figure 5b). It supports
// unconstrained binary-driven simulation with (PC, count) region
// boundaries and perfect (functional) warmup, as well as constrained
// pinball-driven simulation that reproduces the recorded thread order —
// including the artificial stalls that make constrained timing unreliable
// (Section V-A1).
package timing

import "fmt"

// CoreKind selects the core model.
type CoreKind int

// Core models.
const (
	// OOO approximates a 4-wide out-of-order core: cache-miss latency is
	// partially hidden behind the reorder buffer and overlapping misses
	// (memory-level parallelism).
	OOO CoreKind = iota
	// InOrder is a 2-wide stall-on-use in-order core: every miss stalls
	// in full and misses do not overlap.
	InOrder
)

func (k CoreKind) String() string {
	if k == InOrder {
		return "inorder"
	}
	return "ooo"
}

// CacheConfig describes one cache level.
type CacheConfig struct {
	Name      string
	SizeBytes int
	Assoc     int
	LineBytes int
	// Latency is the total load-to-use latency in cycles when the
	// access hits at this level.
	Latency uint64
}

// Sets returns the number of sets.
func (c CacheConfig) Sets() int {
	s := c.SizeBytes / (c.Assoc * c.LineBytes)
	if s < 1 {
		s = 1
	}
	return s
}

func (c CacheConfig) String() string {
	return fmt.Sprintf("%s %dK %d-way %dB lines, %d cycles",
		c.Name, c.SizeBytes/1024, c.Assoc, c.LineBytes, c.Latency)
}

// Config is the simulated system configuration.
type Config struct {
	Cores    int
	FreqGHz  float64
	Kind     CoreKind
	Dispatch int // issue width
	ROB      int

	L1I, L1D, L2, L3 CacheConfig
	MemLatency       uint64 // DRAM latency in cycles

	MispredictPenalty uint64
	// MLP is the number of overlapping misses the OOO core can sustain.
	MLP float64
	// Latency charges for special operations.
	DivCycles, SqrtCycles, AtomicCycles, PauseCycles uint64
	// FutexCycles models kernel entry/exit for futex wait/wake; WakeCycles
	// is the latency from wake to the sleeper resuming.
	FutexCycles, WakeCycles uint64
	// CoherenceCycles is charged when a write invalidates remote copies.
	CoherenceCycles uint64
	// PrefetchNextLines, when non-zero, enables a next-N-line hardware
	// prefetcher: each demand load that misses L1-D quietly fills the
	// following N lines. Table I's system has no prefetcher; this is an
	// extension used by the prefetcher ablation, which also checks that
	// looppoint selection remains valid when the microarchitecture
	// changes (the analysis never saw the prefetcher).
	PrefetchNextLines int
}

// Gainestown returns the paper's Table I configuration for n cores:
// 2.66 GHz Gainestown-like out-of-order cores with 128-entry ROBs,
// Pentium M branch prediction, 32 KB L1s, 256 KB L2, 8 MB shared L3.
func Gainestown(n int) Config {
	return Config{
		Cores:      n,
		FreqGHz:    2.66,
		Kind:       OOO,
		Dispatch:   4,
		ROB:        128,
		L1I:        CacheConfig{Name: "L1-I", SizeBytes: 32 << 10, Assoc: 4, LineBytes: 64, Latency: 1},
		L1D:        CacheConfig{Name: "L1-D", SizeBytes: 32 << 10, Assoc: 8, LineBytes: 64, Latency: 4},
		L2:         CacheConfig{Name: "L2", SizeBytes: 256 << 10, Assoc: 8, LineBytes: 64, Latency: 8},
		L3:         CacheConfig{Name: "L3", SizeBytes: 8 << 20, Assoc: 16, LineBytes: 64, Latency: 30},
		MemLatency: 120,

		MispredictPenalty: 15,
		MLP:               4,
		DivCycles:         9,
		SqrtCycles:        14,
		AtomicCycles:      16,
		PauseCycles:       4,
		// Futex and wake latencies are scaled to this repository's
		// slice regime (see workloads.Scale): real kernel wake paths
		// cost microseconds, which is negligible against the paper's
		// N x 100 M-instruction slices; keeping that *relative* cost at
		// our N x 100 K slices requires proportionally smaller values,
		// or synchronization noise would dominate region timing in a
		// way it never does at paper scale.
		FutexCycles:     120,
		WakeCycles:      180,
		CoherenceCycles: 40,
	}
}

// InOrderConfig returns the same system with in-order cores (Figure 5b's
// microarchitecture-portability experiment keeps everything else fixed).
func InOrderConfig(n int) Config {
	cfg := Gainestown(n)
	cfg.Kind = InOrder
	cfg.Dispatch = 2
	cfg.MispredictPenalty = 8
	cfg.MLP = 1
	return cfg
}

// Validate checks the configuration for obvious mistakes.
func (c Config) Validate() error {
	if c.Cores < 1 {
		return fmt.Errorf("timing: need at least one core")
	}
	if c.FreqGHz <= 0 {
		return fmt.Errorf("timing: frequency must be positive")
	}
	if c.Dispatch < 1 || c.ROB < c.Dispatch {
		return fmt.Errorf("timing: dispatch %d / ROB %d invalid", c.Dispatch, c.ROB)
	}
	if c.MLP < 1 {
		return fmt.Errorf("timing: MLP must be >= 1")
	}
	for _, cc := range []CacheConfig{c.L1I, c.L1D, c.L2, c.L3} {
		if cc.SizeBytes <= 0 || cc.Assoc <= 0 || cc.LineBytes <= 0 {
			return fmt.Errorf("timing: bad cache config %s", cc.Name)
		}
	}
	return nil
}
