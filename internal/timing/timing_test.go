package timing

import (
	"testing"

	"looppoint/internal/bbv"
	"looppoint/internal/dcfg"
	"looppoint/internal/omp"
	"looppoint/internal/pinball"
	"looppoint/internal/testprog"
)

func TestCacheHitLevelsAndLRU(t *testing.T) {
	l2 := NewCache(CacheConfig{Name: "L2", SizeBytes: 4096, Assoc: 4, LineBytes: 64, Latency: 8}, nil)
	l1 := NewCache(CacheConfig{Name: "L1", SizeBytes: 256, Assoc: 2, LineBytes: 64, Latency: 4}, l2)
	// 256B, 2-way, 64B lines -> 2 sets.
	clock := uint64(0)
	next := func() uint64 { clock++; return clock }

	if lvl := l1.Access(0, next()); lvl != 3 {
		t.Fatalf("cold access hit level %d, want 3 (memory)", lvl)
	}
	if lvl := l1.Access(0, next()); lvl != 1 {
		t.Fatalf("second access level %d, want 1", lvl)
	}
	// Fill set 0 beyond associativity: lines 0, 2, 4 map to set 0.
	l1.Access(2*64, next())
	l1.Access(4*64, next()) // evicts line 0 (LRU)
	if l1.Contains(0) {
		t.Fatal("LRU line not evicted")
	}
	if lvl := l1.Access(0, next()); lvl != 2 {
		t.Fatalf("evicted line should hit L2, got level %d", lvl)
	}
	if l1.Accesses != 5 || l1.Misses != 4 {
		t.Errorf("l1 stats: %d accesses %d misses, want 5, 4", l1.Accesses, l1.Misses)
	}
}

func TestCacheInvalidate(t *testing.T) {
	c := NewCache(CacheConfig{Name: "c", SizeBytes: 1024, Assoc: 2, LineBytes: 64, Latency: 1}, nil)
	c.Access(128, 1)
	if !c.Contains(128) {
		t.Fatal("line missing after fill")
	}
	c.Invalidate(128)
	if c.Contains(128) {
		t.Fatal("line present after invalidate")
	}
	// Invalidate of absent line is a no-op.
	c.Invalidate(4096)
}

func TestCacheWarmingSuppressesStats(t *testing.T) {
	c := NewCache(CacheConfig{Name: "c", SizeBytes: 1024, Assoc: 2, LineBytes: 64, Latency: 1}, nil)
	c.SetWarming(true)
	c.Access(0, 1)
	c.Access(64, 2)
	if c.Accesses != 0 || c.Misses != 0 {
		t.Fatal("warming accesses counted")
	}
	c.SetWarming(false)
	if lvl := c.Access(0, 3); lvl != 1 {
		t.Fatalf("warmed line missed (level %d)", lvl)
	}
	if c.Accesses != 1 || c.Misses != 0 {
		t.Errorf("stats after warming: %d/%d, want 1/0", c.Accesses, c.Misses)
	}
}

func TestBranchPredictorLearnsBias(t *testing.T) {
	bp := NewBranchPredictor()
	// Strongly-biased loop branch: taken 99 times, not-taken once,
	// repeatedly. Must be predicted well after warmup.
	for warm := 0; warm < 3; warm++ {
		for i := 0; i < 100; i++ {
			bp.Predict(0x400, i != 99)
		}
	}
	bp.Lookups, bp.Mispredict = 0, 0
	for rep := 0; rep < 5; rep++ {
		for i := 0; i < 100; i++ {
			bp.Predict(0x400, i != 99)
		}
	}
	if r := bp.MissRate(); r > 0.05 {
		t.Errorf("biased branch miss rate %.3f, want <= 0.05", r)
	}
}

func TestBranchPredictorLearnsAlternating(t *testing.T) {
	bp := NewBranchPredictor()
	for i := 0; i < 2000; i++ {
		bp.Predict(0x800, i%2 == 0)
	}
	bp.Lookups, bp.Mispredict = 0, 0
	for i := 2000; i < 4000; i++ {
		bp.Predict(0x800, i%2 == 0)
	}
	if r := bp.MissRate(); r > 0.05 {
		t.Errorf("alternating branch miss rate %.3f; global history should capture it", r)
	}
}

func TestSimulateFullSanity(t *testing.T) {
	p := testprog.Phased(4, 4, 200, omp.Passive)
	sim, err := New(Gainestown(4), p)
	if err != nil {
		t.Fatal(err)
	}
	st, err := sim.SimulateFull()
	if err != nil {
		t.Fatalf("SimulateFull: %v", err)
	}
	if st.Instructions == 0 || st.Cycles <= 0 {
		t.Fatalf("empty stats: %v", st)
	}
	if ipc := st.IPC(); ipc < 0.05 || ipc > float64(4*4) {
		t.Errorf("implausible aggregate IPC %.3f", ipc)
	}
	if st.FilteredInstructions >= st.Instructions {
		t.Errorf("filtered %d >= total %d", st.FilteredInstructions, st.Instructions)
	}
	if st.L1DAccesses == 0 || st.Branches == 0 {
		t.Error("cache/branch counters empty")
	}
	if st.RuntimeSeconds() <= 0 {
		t.Error("non-positive runtime")
	}
}

func TestSimulateFullDeterministic(t *testing.T) {
	run := func() *Stats {
		p := testprog.Phased(4, 3, 150, omp.Active)
		sim, err := New(Gainestown(4), p)
		if err != nil {
			t.Fatal(err)
		}
		st, err := sim.SimulateFull()
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	a, b := run(), run()
	if a.Cycles != b.Cycles || a.Instructions != b.Instructions || a.BranchMisses != b.BranchMisses {
		t.Errorf("non-deterministic simulation: %v vs %v", a, b)
	}
}

func TestInOrderSlowerThanOOO(t *testing.T) {
	p1 := testprog.Phased(4, 3, 300, omp.Passive)
	simO, err := New(Gainestown(4), p1)
	if err != nil {
		t.Fatal(err)
	}
	stO, err := simO.SimulateFull()
	if err != nil {
		t.Fatal(err)
	}
	p2 := testprog.Phased(4, 3, 300, omp.Passive)
	simI, err := New(InOrderConfig(4), p2)
	if err != nil {
		t.Fatal(err)
	}
	stI, err := simI.SimulateFull()
	if err != nil {
		t.Fatal(err)
	}
	if stI.Cycles <= stO.Cycles {
		t.Errorf("in-order (%0.f cycles) not slower than OOO (%0.f cycles)", stI.Cycles, stO.Cycles)
	}
}

func TestActiveRetiresMoreThanPassive(t *testing.T) {
	pa := testprog.Heterogeneous(4, 3, 100, omp.Active)
	pp := testprog.Heterogeneous(4, 3, 100, omp.Passive)
	simA, _ := New(Gainestown(4), pa)
	simP, _ := New(Gainestown(4), pp)
	stA, err := simA.SimulateFull()
	if err != nil {
		t.Fatal(err)
	}
	stP, err := simP.SimulateFull()
	if err != nil {
		t.Fatal(err)
	}
	if stA.Instructions <= stP.Instructions {
		t.Errorf("active retired %d, passive %d; spin-loops should add instructions",
			stA.Instructions, stP.Instructions)
	}
	if stA.FilteredInstructions != stP.FilteredInstructions {
		t.Errorf("filtered counts differ: active %d, passive %d",
			stA.FilteredInstructions, stP.FilteredInstructions)
	}
}

func TestSimulateRegionMatchesProfileSpan(t *testing.T) {
	p := testprog.Phased(4, 8, 150, omp.Passive)
	pb, err := pinball.Record(p, 5, 512)
	if err != nil {
		t.Fatal(err)
	}
	db := dcfg.NewBuilder(p, 4)
	if _, err := pb.Replay(p, db); err != nil {
		t.Fatal(err)
	}
	g := db.Graph()
	lt := g.FindLoops()
	var addrs []uint64
	for _, h := range g.StableMarkers(lt, 200) {
		addrs = append(addrs, h.Addr)
	}
	col := bbv.NewCollector(p, addrs, 4*1200)
	if _, err := pb.Replay(p, col); err != nil {
		t.Fatal(err)
	}
	prof := col.Finish()
	if len(prof.Regions) < 3 {
		t.Fatalf("too few regions: %d", len(prof.Regions))
	}

	reg := prof.Regions[1]
	sim, err := New(Gainestown(4), p)
	if err != nil {
		t.Fatal(err)
	}
	st, err := sim.SimulateRegion(reg.Start, reg.End, WarmupFunctional)
	if err != nil {
		t.Fatalf("SimulateRegion: %v", err)
	}
	// The unconstrained simulation interleaves threads differently from
	// the profiling replay, but the region's work is schedule-invariant:
	// instruction counts must agree within a few percent.
	got, want := float64(st.Instructions), float64(reg.UnfilteredLen())
	if got < want*0.9 || got > want*1.1 {
		t.Errorf("region simulated %d instructions, profile says %d", st.Instructions, reg.UnfilteredLen())
	}
	if st.Cycles <= 0 {
		t.Error("region has no cycles")
	}
}

func TestSimulateRegionFullEqualsSimulateFull(t *testing.T) {
	p := testprog.Phased(2, 3, 100, omp.Passive)
	sim, err := New(Gainestown(2), p)
	if err != nil {
		t.Fatal(err)
	}
	full, err := sim.SimulateFull()
	if err != nil {
		t.Fatal(err)
	}
	p2 := testprog.Phased(2, 3, 100, omp.Passive)
	sim2, err := New(Gainestown(2), p2)
	if err != nil {
		t.Fatal(err)
	}
	region, err := sim2.SimulateRegion(bbv.Marker{}, bbv.Marker{IsEnd: true}, WarmupFunctional)
	if err != nil {
		t.Fatal(err)
	}
	if full.Instructions != region.Instructions || full.Cycles != region.Cycles {
		t.Errorf("whole-program region differs from full sim: %v vs %v", region, full)
	}
}

func TestSimulateConstrained(t *testing.T) {
	p := testprog.Phased(4, 4, 150, omp.Active)
	pb, err := pinball.Record(p, 9, 512)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := New(Gainestown(4), p)
	if err != nil {
		t.Fatal(err)
	}
	st, err := sim.SimulateConstrained(pb)
	if err != nil {
		t.Fatalf("SimulateConstrained: %v", err)
	}
	if st.Instructions != pb.Schedule.Steps() {
		t.Errorf("constrained sim retired %d, schedule has %d", st.Instructions, pb.Schedule.Steps())
	}
	if st.Cycles <= 0 {
		t.Error("no cycles")
	}
	// Corrupted pinball must be rejected.
	pb.Start.Mem[0] ^= 1
	if _, err := sim.SimulateConstrained(pb); err == nil {
		t.Error("constrained sim accepted corrupted pinball")
	}
}

func TestIPCTrace(t *testing.T) {
	p := testprog.Phased(2, 4, 300, omp.Passive)
	sim, err := New(Gainestown(2), p)
	if err != nil {
		t.Fatal(err)
	}
	sim.Trace = NewIPCTrace(2000)
	if _, err := sim.SimulateFull(); err != nil {
		t.Fatal(err)
	}
	if len(sim.Trace.Samples) < 2 {
		t.Fatalf("trace has %d samples", len(sim.Trace.Samples))
	}
	for _, s := range sim.Trace.Samples {
		if s.IPC < 0 || s.IPC > 8 {
			t.Errorf("implausible trace IPC %.2f", s.IPC)
		}
	}
}

func TestConfigValidate(t *testing.T) {
	good := Gainestown(8)
	if err := good.Validate(); err != nil {
		t.Errorf("Gainestown config invalid: %v", err)
	}
	bad := good
	bad.Cores = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero cores accepted")
	}
	bad = good
	bad.MLP = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero MLP accepted")
	}
	bad = good
	bad.L1D.Assoc = 0
	if err := bad.Validate(); err == nil {
		t.Error("bad cache accepted")
	}
	if _, err := New(Gainestown(2), testprog.Phased(4, 1, 10, omp.Passive)); err == nil {
		t.Error("fewer cores than threads accepted")
	}
}

func TestStatsAccumulate(t *testing.T) {
	a := &Stats{Cycles: 100, Instructions: 1000, BranchMisses: 5, L2Misses: 7}
	b := &Stats{Cycles: 50, Instructions: 500, BranchMisses: 2, L2Misses: 3}
	a.Accumulate(b)
	if a.Cycles != 150 || a.Instructions != 1500 || a.BranchMisses != 7 || a.L2Misses != 10 {
		t.Errorf("accumulate wrong: %+v", a)
	}
}

func TestMPKIMath(t *testing.T) {
	s := &Stats{Instructions: 2000, BranchMisses: 4, L2Misses: 10, L3Misses: 1, L1DMisses: 20}
	if got := s.BranchMPKI(); got != 2 {
		t.Errorf("branch MPKI %f, want 2", got)
	}
	if got := s.L2MPKI(); got != 5 {
		t.Errorf("L2 MPKI %f, want 5", got)
	}
	if got := s.L3MPKI(); got != 0.5 {
		t.Errorf("L3 MPKI %f, want 0.5", got)
	}
	if got := s.L1DMPKI(); got != 10 {
		t.Errorf("L1D MPKI %f, want 10", got)
	}
	empty := &Stats{}
	if empty.IPC() != 0 || empty.BranchMPKI() != 0 {
		t.Error("zero-instruction stats must be zero")
	}
}

func TestCPIStackAccounting(t *testing.T) {
	p := testprog.Phased(4, 4, 200, omp.Active)
	sim, err := New(Gainestown(4), p)
	if err != nil {
		t.Fatal(err)
	}
	st, err := sim.SimulateFull()
	if err != nil {
		t.Fatal(err)
	}
	total := st.Stack.Total()
	if total <= 0 {
		t.Fatal("empty CPI stack")
	}
	// The stack's total equals the summed per-core busy cycles, which is
	// at least the wall-clock and at most cores x wall-clock.
	if total < st.Cycles*0.999 || total > st.Cycles*4.001 {
		t.Errorf("stack total %.0f outside [wall, 4xwall] = [%.0f, %.0f]",
			total, st.Cycles, st.Cycles*4)
	}
	if st.Stack.Base <= 0 || st.Stack.Memory < 0 || st.Stack.Sync <= 0 {
		t.Errorf("implausible stack: %+v", st.Stack)
	}
	// On an imbalanced active-wait workload, spinning dominates the
	// waiting threads' time and must surface as a substantial sync
	// component — far larger in absolute cycles than the same program
	// under the passive policy, where waiters sleep instead of burning
	// issue slots.
	ha := testprog.Heterogeneous(4, 3, 150, omp.Active)
	hp := testprog.Heterogeneous(4, 3, 150, omp.Passive)
	simA, err := New(Gainestown(4), ha)
	if err != nil {
		t.Fatal(err)
	}
	stA, err := simA.SimulateFull()
	if err != nil {
		t.Fatal(err)
	}
	simP, err := New(Gainestown(4), hp)
	if err != nil {
		t.Fatal(err)
	}
	stP, err := simP.SimulateFull()
	if err != nil {
		t.Fatal(err)
	}
	if stA.Stack.Sync <= stP.Stack.Sync {
		t.Errorf("imbalanced active sync cycles %.0f not above passive %.0f",
			stA.Stack.Sync, stP.Stack.Sync)
	}
	if share := stA.Stack.Sync / stA.Stack.Total(); share < 0.05 {
		t.Errorf("imbalanced active sync share %.3f implausibly low", share)
	}
}
