package bbv

import "sort"

// SparseEntry is one (index, weight) element of a materialized sparse
// BBV. Entries come from the per-thread map vectors; materializing them
// once into a sorted slice lets the projection stage run sparse dot
// products instead of re-sorting map keys on every use.
type SparseEntry struct {
	Index  int
	Weight float64
}

// SparseVector materializes the region's concatenated global BBV as a
// sorted (index, weight) slice: thread t's block b appears at index
// t*nblocks + b, exactly the row layout simpoint.ProjectRegions projects
// (Section III-B's per-thread concatenation). Because threads are visited
// in order and each thread's block indices are below nblocks, the
// concatenation is globally sorted by construction; entries are unique.
// The traversal order — and therefore any floating-point accumulation a
// caller performs over the entries — is identical to iterating threads in
// order with each thread's block indices sorted ascending, the fixed
// order the projection code has always used.
func (r *Region) SparseVector(nblocks int) []SparseEntry {
	total := 0
	for _, tv := range r.Vectors {
		total += len(tv)
	}
	out := make([]SparseEntry, 0, total)
	for t, tv := range r.Vectors {
		base := t * nblocks
		start := len(out)
		for blk, w := range tv {
			out = append(out, SparseEntry{Index: base + blk, Weight: w})
		}
		seg := out[start:]
		sort.Slice(seg, func(i, j int) bool { return seg[i].Index < seg[j].Index })
	}
	return out
}
