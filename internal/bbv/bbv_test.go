package bbv

import (
	"testing"

	"looppoint/internal/dcfg"
	"looppoint/internal/exec"
	"looppoint/internal/isa"
	"looppoint/internal/omp"
)

// buildPhased builds an nthreads-thread program with two distinct compute
// phases separated by barriers, each phase being a loop over per-thread
// array slices, repeated for several timesteps. All threads execute the
// same routine (as compiled OpenMP code would), parameterized by the tid
// register, so loop-header PCs are shared across threads.
func buildPhased(t testing.TB, nthreads int, timesteps, iters int64, policy omp.WaitPolicy) *isa.Program {
	t.Helper()
	p := isa.NewProgram("phased", nthreads)
	arr := p.Alloc("arr", uint64(nthreads)*uint64(iters))
	main := p.AddImage("main", false)
	rt := omp.New(p, policy)
	bar := rt.NewBarrier("step")

	r := main.NewRoutine("thread_main")
	entry := r.NewBlock("entry")
	step := r.NewBlock("timestep")
	l1 := r.NewBlock("phase1_loop")
	mid := r.NewBlock("mid")
	l2 := r.NewBlock("phase2_loop")
	latch := r.NewBlock("latch")
	done := r.NewBlock("done")

	// base = arr + tid*iters
	entry.IMovI(5, iters)
	entry.IOp(isa.OpIMul, 5, isa.RegTid, 5)
	entry.IOpI(isa.OpIAdd, 5, 5, int64(arr))
	entry.IMovI(0, 0) // timestep counter
	entry.Br(step)
	step.IMovI(1, 0) // i
	step.IMov(2, 5)
	step.Br(l1)
	// Phase 1: integer adds + stores.
	l1.IOp(isa.OpIAdd, 3, 1, 1)
	l1.IOp(isa.OpIAdd, 4, 2, 1)
	l1.IStore(4, 0, 3)
	l1.IOpI(isa.OpIAdd, 1, 1, 1)
	l1.BrCondI(isa.CondLT, 1, iters, l1, mid)
	rt.EmitBarrier(mid, bar)
	mid.IMovI(1, 0)
	mid.Br(l2)
	// Phase 2: float loads + FMA.
	l2.IOp(isa.OpIAdd, 4, 2, 1)
	l2.FLoad(0, 4, 0)
	l2.FMA(1, 0, 0)
	l2.IOpI(isa.OpIAdd, 1, 1, 1)
	l2.BrCondI(isa.CondLT, 1, iters, l2, latch)
	rt.EmitBarrier(latch, bar)
	latch.IOpI(isa.OpIAdd, 0, 0, 1)
	latch.BrCondI(isa.CondLT, 0, timesteps, step, done)
	done.Halt()
	for tid := 0; tid < nthreads; tid++ {
		p.SetEntry(tid, r)
	}
	if err := p.Link(); err != nil {
		t.Fatalf("Link: %v", err)
	}
	return p
}

// markerAddrs runs a DCFG pass and returns main-image loop-header addresses.
func markerAddrs(t testing.TB, p *isa.Program) []uint64 {
	t.Helper()
	m := exec.NewMachine(p, 1)
	db := dcfg.NewBuilder(p, p.NumThreads())
	m.AddObserver(db)
	if err := m.Run(exec.RunOpts{FlowWindow: 1000}); err != nil {
		t.Fatalf("DCFG run: %v", err)
	}
	lt := db.Graph().FindLoops()
	var addrs []uint64
	for _, h := range lt.MainImageHeaders() {
		addrs = append(addrs, h.Addr)
	}
	if len(addrs) == 0 {
		t.Fatal("no main-image loop headers found")
	}
	return addrs
}

func collect(t testing.TB, p *isa.Program, addrs []uint64, slice uint64) *Profile {
	t.Helper()
	m := exec.NewMachine(p, 1)
	c := NewCollector(p, addrs, slice)
	m.AddObserver(c)
	if err := m.Run(exec.RunOpts{FlowWindow: 1000}); err != nil {
		t.Fatalf("profile run: %v", err)
	}
	return c.Finish()
}

func TestProfileCoversExecution(t *testing.T) {
	p := buildPhased(t, 4, 6, 200, omp.Passive)
	addrs := markerAddrs(t, p)
	prof := collect(t, p, addrs, 4*2000)

	if len(prof.Regions) < 2 {
		t.Fatalf("only %d regions; expected several", len(prof.Regions))
	}
	var filtered, span uint64
	for i, r := range prof.Regions {
		filtered += r.Filtered
		span += r.UnfilteredLen()
		if i > 0 && prof.Regions[i-1].End != r.Start {
			t.Errorf("region %d start %v != previous end %v", i, r.Start, prof.Regions[i-1].End)
		}
	}
	if filtered != prof.TotalFiltered {
		t.Errorf("region filtered sum %d != total %d", filtered, prof.TotalFiltered)
	}
	if span != prof.TotalICount {
		t.Errorf("region spans %d != total icount %d", span, prof.TotalICount)
	}
	if !prof.Regions[0].Start.IsStart() {
		t.Errorf("first region starts at %v, want <start>", prof.Regions[0].Start)
	}
	if !prof.Regions[len(prof.Regions)-1].End.IsEnd {
		t.Errorf("last region ends at %v, want <end>", prof.Regions[len(prof.Regions)-1].End)
	}
	if prof.TotalFiltered >= prof.TotalICount {
		t.Errorf("filtered %d not smaller than total %d (sync code not filtered?)",
			prof.TotalFiltered, prof.TotalICount)
	}
}

func TestActivePolicyFiltersSpin(t *testing.T) {
	// Active-wait runs execute spin-loop instructions; the filtered
	// count must exclude them, so filtered/total is noticeably lower
	// than for passive runs while filtered counts themselves match.
	pa := buildPhased(t, 4, 4, 150, omp.Active)
	pp := buildPhased(t, 4, 4, 150, omp.Passive)
	profA := collect(t, pa, markerAddrs(t, pa), 4*1000)
	profP := collect(t, pp, markerAddrs(t, pp), 4*1000)

	if profA.TotalFiltered != profP.TotalFiltered {
		t.Errorf("filtered counts differ across wait policies: active %d, passive %d",
			profA.TotalFiltered, profP.TotalFiltered)
	}
	if profA.TotalICount <= profP.TotalICount {
		t.Errorf("active total %d not larger than passive total %d",
			profA.TotalICount, profP.TotalICount)
	}
}

func TestMarkersReproducibleOnReplay(t *testing.T) {
	// Section III-H: region selection runs on the deterministic pinball
	// replay, so two profiling passes over the same recorded schedule
	// must produce byte-identical markers and filtered counts.
	p1 := buildPhased(t, 4, 5, 100, omp.Active)
	addrs := markerAddrs(t, p1)
	var sched exec.Schedule
	m1 := exec.NewMachine(p1, 1)
	c1 := NewCollector(p1, addrs, 4*800)
	m1.AddObserver(c1)
	if err := m1.Run(exec.RunOpts{FlowWindow: 1000, Record: &sched}); err != nil {
		t.Fatalf("record run: %v", err)
	}
	prof1 := c1.Finish()

	p2 := buildPhased(t, 4, 5, 100, omp.Active)
	m2 := exec.NewMachine(p2, 1)
	c2 := NewCollector(p2, addrs, 4*800)
	m2.AddObserver(c2)
	if err := m2.RunSchedule(sched); err != nil {
		t.Fatalf("replay run: %v", err)
	}
	prof2 := c2.Finish()

	if len(prof1.Regions) != len(prof2.Regions) {
		t.Fatalf("region counts differ: %d vs %d", len(prof1.Regions), len(prof2.Regions))
	}
	for i := range prof1.Regions {
		a, b := prof1.Regions[i], prof2.Regions[i]
		if a.Start != b.Start || a.End != b.End {
			t.Errorf("region %d markers differ: [%v,%v] vs [%v,%v]",
				i, a.Start, a.End, b.Start, b.End)
		}
		if a.Filtered != b.Filtered {
			t.Errorf("region %d filtered counts differ: %d vs %d", i, a.Filtered, b.Filtered)
		}
	}
}

func TestMarkerTotalsScheduleInvariant(t *testing.T) {
	// The total execution count of every marker is a property of the
	// work, not the schedule — the reason (PC, count) pairs remain valid
	// boundaries in any run, including under spin-loops (Section III-C).
	p1 := buildPhased(t, 4, 5, 100, omp.Active)
	addrs := markerAddrs(t, p1)
	prof1 := collect(t, p1, addrs, 4*800)

	p2 := buildPhased(t, 4, 5, 100, omp.Active)
	m := exec.NewMachine(p2, 42)
	c := NewCollector(p2, addrs, 4*800)
	m.AddObserver(c)
	if err := m.Run(exec.RunOpts{Quantum: 13}); err != nil { // different schedule
		t.Fatalf("run: %v", err)
	}
	prof2 := c.Finish()

	if prof1.TotalFiltered != prof2.TotalFiltered {
		t.Errorf("filtered totals differ across schedules: %d vs %d",
			prof1.TotalFiltered, prof2.TotalFiltered)
	}
	for a, n1 := range prof1.MarkerCounts {
		if n2 := prof2.MarkerCounts[a]; n1 != n2 {
			t.Errorf("marker %#x total count differs: %d vs %d", a, n1, n2)
		}
	}
}

func TestMarkersReachableUnderDifferentSchedule(t *testing.T) {
	// A (PC, count) boundary chosen during profiling must be reachable
	// when the program runs under a different schedule — that is what
	// lets unconstrained simulation locate the region.
	p1 := buildPhased(t, 4, 6, 100, omp.Active)
	addrs := markerAddrs(t, p1)
	prof := collect(t, p1, addrs, 4*800)
	for _, r := range prof.Regions {
		if r.End.IsEnd {
			continue
		}
		p2 := buildPhased(t, 4, 6, 100, omp.Active)
		m := exec.NewMachine(p2, 9)
		w := NewWatcher(m, r.End)
		m.AddObserver(w)
		if err := m.Run(exec.RunOpts{Quantum: 7}); err != nil {
			t.Fatalf("run: %v", err)
		}
		if !w.Fired {
			t.Errorf("marker %v unreachable under a different schedule", r.End)
		}
	}
}

func TestThreadSharesSumToOne(t *testing.T) {
	p := buildPhased(t, 4, 4, 200, omp.Passive)
	prof := collect(t, p, markerAddrs(t, p), 4*1000)
	for i, shares := range prof.ThreadShare() {
		var sum float64
		for _, s := range shares {
			sum += s
		}
		if prof.Regions[i].Filtered > 0 && (sum < 0.999 || sum > 1.001) {
			t.Errorf("region %d shares sum to %f", i, sum)
		}
	}
}

func TestWatcherStopsAtMarker(t *testing.T) {
	p := buildPhased(t, 2, 8, 100, omp.Passive)
	addrs := markerAddrs(t, p)
	prof := collect(t, p, addrs, 2*500)
	if len(prof.Regions) < 3 {
		t.Skip("not enough regions")
	}
	target := prof.Regions[1].End
	if target.IsEnd || target.IsStart() {
		t.Skip("region 1 end is not an interior marker")
	}

	m := exec.NewMachine(p, 1)
	// Fresh program instance to avoid shared state: rebuild.
	p2 := buildPhased(t, 2, 8, 100, omp.Passive)
	m = exec.NewMachine(p2, 1)
	w := NewWatcher(m, target)
	m.AddObserver(w)
	if err := m.Run(exec.RunOpts{FlowWindow: 1000}); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !w.Fired {
		t.Fatal("watcher never fired")
	}
	if m.Done() {
		t.Fatal("machine ran to completion; watcher did not stop it")
	}
}

func TestWatcherStartMarkerFiresImmediately(t *testing.T) {
	p := buildPhased(t, 2, 2, 50, omp.Passive)
	m := exec.NewMachine(p, 1)
	w := NewWatcher(m, Marker{})
	m.AddObserver(w)
	if err := m.Run(exec.RunOpts{}); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !w.Fired {
		t.Fatal("start marker did not fire")
	}
	if m.TotalICount() != 1 {
		t.Errorf("stopped after %d instructions, want 1", m.TotalICount())
	}
}

func TestMarkerString(t *testing.T) {
	if (Marker{}).String() != "<start>" {
		t.Error("start marker string")
	}
	if (Marker{IsEnd: true}).String() != "<end>" {
		t.Error("end marker string")
	}
	if (Marker{PC: 0x10, Count: 3}).String() == "" {
		t.Error("marker string empty")
	}
}

func TestVariableSlicesSplitAtPhaseChanges(t *testing.T) {
	// With fixed slicing, a slice can straddle the two phases; with
	// variable slicing the collector closes early at phase changes, so
	// regions become purer: more regions, each dominated by one phase.
	p1 := buildPhased(t, 4, 6, 400, omp.Passive)
	addrs := markerAddrs(t, p1)
	fixed := collect(t, p1, addrs, 4*3000)

	p2 := buildPhased(t, 4, 6, 400, omp.Passive)
	m := exec.NewMachine(p2, 1)
	c := NewCollector(p2, addrs, 4*3000)
	c.SetVariableSlices(0.1, 0.5)
	m.AddObserver(c)
	if err := m.Run(exec.RunOpts{FlowWindow: 1000}); err != nil {
		t.Fatalf("run: %v", err)
	}
	variable := c.Finish()

	if len(variable.Regions) <= len(fixed.Regions) {
		t.Errorf("variable slicing produced %d regions, fixed %d; expected more (earlier closes)",
			len(variable.Regions), len(fixed.Regions))
	}
	if variable.TotalFiltered != fixed.TotalFiltered {
		t.Errorf("variable slicing changed total work: %d vs %d",
			variable.TotalFiltered, fixed.TotalFiltered)
	}
	// No region may exceed the fixed budget (plus one marker interval).
	for _, r := range variable.Regions {
		if r.Filtered > 4*3000*2 {
			t.Errorf("region %d exceeds budget: %d", r.Index, r.Filtered)
		}
	}
}

func TestVariableSlicesDefaultsAndBounds(t *testing.T) {
	p := buildPhased(t, 2, 3, 100, omp.Passive)
	c := NewCollector(p, []uint64{1}, 1000)
	c.SetVariableSlices(-1, -1) // out-of-range values fall back to defaults
	if c.varMinFrac != 0.25 || c.varThresh != 0.5 {
		t.Errorf("defaults not applied: %v %v", c.varMinFrac, c.varThresh)
	}
}

func TestMarkerModulusRestrictsBoundaries(t *testing.T) {
	p := buildPhased(t, 4, 10, 120, omp.Passive)
	addrs := markerAddrs(t, p)

	run := func(mod uint64) *Profile {
		p2 := buildPhased(t, 4, 10, 120, omp.Passive)
		m := exec.NewMachine(p2, 1)
		c := NewCollector(p2, addrs, 4*1200)
		if mod > 1 {
			mm := make(map[uint64]uint64)
			for _, a := range addrs {
				mm[a] = mod
			}
			c.SetMarkerModulus(mm)
		}
		m.AddObserver(c)
		if err := m.Run(exec.RunOpts{FlowWindow: 1000}); err != nil {
			t.Fatalf("run: %v", err)
		}
		return c.Finish()
	}

	restricted := run(4)
	for _, r := range restricted.Regions {
		if r.End.IsEnd || r.End.PC == 0 {
			continue
		}
		if (r.End.Count-1)%4 != 0 {
			t.Errorf("region %d boundary %v violates modulus 4", r.Index, r.End)
		}
	}
	// Work is conserved regardless of the restriction.
	free := run(1)
	if restricted.TotalFiltered != free.TotalFiltered {
		t.Errorf("modulus changed total work: %d vs %d",
			restricted.TotalFiltered, free.TotalFiltered)
	}
}
