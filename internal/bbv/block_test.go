package bbv

import (
	"reflect"
	"testing"

	"looppoint/internal/exec"
	"looppoint/internal/isa"
	"looppoint/internal/omp"
)

// profileBoth runs the same program through the per-instruction observer
// tier and the block-batched tier (cfg tweaks applied to both collectors)
// and returns the two profiles for comparison.
func profileBoth(t *testing.T, build func() *isa.Program, addrs []uint64, slice uint64,
	cfg func(*Collector)) (perInstr, block *Profile) {
	t.Helper()
	run := func(blockTier bool) *Profile {
		p := build()
		m := exec.NewMachine(p, 1)
		c := NewCollector(p, addrs, slice)
		if cfg != nil {
			cfg(c)
		}
		if blockTier {
			m.AddBlockObserver(c)
		} else {
			m.AddObserver(c)
		}
		if err := m.Run(exec.RunOpts{FlowWindow: 1000}); err != nil {
			t.Fatalf("run (block=%v): %v", blockTier, err)
		}
		return c.Finish()
	}
	return run(false), run(true)
}

func requireProfilesEqual(t *testing.T, perInstr, block *Profile) {
	t.Helper()
	if len(perInstr.Regions) != len(block.Regions) {
		t.Fatalf("region counts differ: per-instr %d, block %d",
			len(perInstr.Regions), len(block.Regions))
	}
	for i := range perInstr.Regions {
		if !reflect.DeepEqual(perInstr.Regions[i], block.Regions[i]) {
			t.Errorf("region %d differs:\nper-instr: %+v\nblock:     %+v",
				i, perInstr.Regions[i], block.Regions[i])
		}
	}
	if !reflect.DeepEqual(perInstr, block) {
		t.Fatal("profiles differ between per-instruction and block tiers")
	}
}

// TestCollectorBlockTierMatchesPerInstr is the profiling half of the
// fast-path acceptance criterion: BBVs, region markers, filtered counts,
// and marker totals must be byte-identical between tiers, across every
// slicing mode.
func TestCollectorBlockTierMatchesPerInstr(t *testing.T) {
	for _, policy := range []omp.WaitPolicy{omp.Passive, omp.Active} {
		policy := policy
		name := "passive"
		if policy == omp.Active {
			name = "active"
		}
		build := func() *isa.Program { return buildPhased(t, 4, 6, 150, policy) }
		addrs := markerAddrs(t, build())

		t.Run(name+"/fixed", func(t *testing.T) {
			a, b := profileBoth(t, build, addrs, 4*1200, nil)
			requireProfilesEqual(t, a, b)
		})
		t.Run(name+"/variable", func(t *testing.T) {
			a, b := profileBoth(t, build, addrs, 4*1200,
				func(c *Collector) { c.SetVariableSlices(0.1, 0.5) })
			requireProfilesEqual(t, a, b)
		})
		t.Run(name+"/modulus", func(t *testing.T) {
			a, b := profileBoth(t, build, addrs, 4*1200,
				func(c *Collector) {
					mm := make(map[uint64]uint64)
					for _, addr := range addrs {
						mm[addr] = 4
					}
					c.SetMarkerModulus(mm)
				})
			requireProfilesEqual(t, a, b)
		})
		t.Run(name+"/nosyncfilter", func(t *testing.T) {
			a, b := profileBoth(t, build, addrs, 4*1200,
				func(c *Collector) { c.DisableSyncFilter() })
			requireProfilesEqual(t, a, b)
		})
		t.Run(name+"/byicount", func(t *testing.T) {
			a, b := profileBoth(t, build, nil, 4*1200,
				func(c *Collector) { c.SliceOnICount() })
			requireProfilesEqual(t, a, b)
		})
	}
}

// TestWatcherBlockTierStopsAtSamePosition pins marker-boundary exactness
// end to end: a (PC, count) watcher attached through the block tier must
// stop the machine at the identical retired-instruction position — and
// identical per-thread state — as the per-instruction tier, including
// when the marker count lands inside what would otherwise be a coalesced
// spin burst (active wait policy).
func TestWatcherBlockTierStopsAtSamePosition(t *testing.T) {
	for _, policy := range []omp.WaitPolicy{omp.Passive, omp.Active} {
		policy := policy
		name := "passive"
		if policy == omp.Active {
			name = "active"
		}
		t.Run(name, func(t *testing.T) {
			build := func() *isa.Program { return buildPhased(t, 4, 8, 100, policy) }
			addrs := markerAddrs(t, build())
			prof := collect(t, build(), addrs, 4*900)
			tested := 0
			for _, r := range prof.Regions {
				if r.End.IsEnd || r.End.IsStart() || r.End.IsICount() {
					continue
				}
				run := func(blockTier bool) (uint64, []uint64, []uint64) {
					m := exec.NewMachine(build(), 1)
					w := NewWatcher(m, r.End)
					if blockTier {
						m.AddBlockObserver(w)
					} else {
						m.AddObserver(w)
					}
					if err := m.Run(exec.RunOpts{FlowWindow: 1000}); err != nil {
						t.Fatalf("run: %v", err)
					}
					if !w.Fired {
						t.Fatalf("watcher for %v never fired (block=%v)", r.End, blockTier)
					}
					var pcs, ics []uint64
					for _, th := range m.Threads {
						if th.State != exec.StateHalted {
							pcs = append(pcs, th.PC())
						} else {
							pcs = append(pcs, 0)
						}
						ics = append(ics, th.ICount)
					}
					return m.TotalICount(), pcs, ics
				}
				sIC, sPCs, sICs := run(false)
				bIC, bPCs, bICs := run(true)
				if sIC != bIC {
					t.Errorf("marker %v: stop position differs: per-instr %d, block %d", r.End, sIC, bIC)
				}
				if !reflect.DeepEqual(sPCs, bPCs) || !reflect.DeepEqual(sICs, bICs) {
					t.Errorf("marker %v: per-thread stop state differs", r.End)
				}
				tested++
			}
			if tested == 0 {
				t.Fatal("no interior markers to test")
			}
		})
	}
}

// TestCollectorPanicsOnUnregisteredMarker documents the contract: marker
// PCs must be break PCs before block-tier profiling starts.
func TestCollectorPanicsOnUnregisteredMarker(t *testing.T) {
	p := buildPhased(t, 2, 3, 80, omp.Passive)
	addrs := markerAddrs(t, buildPhased(t, 2, 3, 80, omp.Passive))
	m := exec.NewMachine(p, 1)
	c := NewCollector(p, addrs, 2*500)
	// Wrongly attached as a bare BlockObserverFunc: BreakPCs never runs.
	m.AddBlockObserver(exec.BlockObserverFunc(c.OnBlock))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for coalesced marker entry")
		}
	}()
	_ = m.Run(exec.RunOpts{FlowWindow: 1000})
}
