package bbv

import (
	"fmt"

	"looppoint/internal/isa"
)

// Stitcher is the incremental form of StitchProfile: shards are fed one
// at a time with their own close decisions, and the final profile is
// assembled by Finish. The region chaining is exactly the serial
// Collector's — each region starts at the previous close's marker and
// end count, the boundary piece after each close opens the next region —
// so a profile stitched epoch-by-epoch is identical to one stitched in a
// single pass, which the batch StitchProfile (now a thin wrapper) pins.
//
// The durable analysis loop persists a Stitcher mid-run via State and
// revives it with RestoreStitcher, so a crashed job resumes stitching at
// the epoch boundary instead of re-accumulating finished shards.
type Stitcher struct {
	nthreads int
	regions  []*Region
	cur      *Region
	shard    int
}

// NewStitcher creates an empty stitcher for the program's profile.
func NewStitcher(p *isa.Program) *Stitcher {
	s := &Stitcher{nthreads: p.NumThreads()}
	s.cur = s.newRegion(Marker{}, 0)
	return s
}

func (s *Stitcher) newRegion(start Marker, startIC uint64) *Region {
	r := &Region{
		Index:          len(s.regions),
		Start:          start,
		StartICount:    startIC,
		ThreadFiltered: make([]uint64, s.nthreads),
		Vectors:        make([]map[int]float64, s.nthreads),
	}
	for t := range r.Vectors {
		r.Vectors[t] = make(map[int]float64)
	}
	return r
}

func (s *Stitcher) merge(r *Region, pc *Piece) {
	r.Filtered += pc.Filtered
	for t, f := range pc.ThreadFiltered {
		r.ThreadFiltered[t] += f
	}
	for t, tv := range pc.Vectors {
		for blk, w := range tv {
			r.Vectors[t][blk] += w
		}
	}
}

// Feed stitches one shard's pieces using that shard's close decisions
// (the slice Decider.Feed returned for it). A shard with C closes must
// carry exactly C+1 pieces — the Accumulator's contract.
func (s *Stitcher) Feed(pieces []Piece, closes []CloseAt) {
	if len(pieces) != len(closes)+1 {
		panic(fmt.Sprintf("bbv: stitch desync: shard %d has %d pieces for %d closes", s.shard, len(pieces), len(closes)))
	}
	for j := range pieces {
		if j > 0 {
			// Pieces after the first begin right at a close decision.
			c := closes[j-1]
			s.cur.End = c.End
			s.cur.EndICount = c.EndICount
			s.regions = append(s.regions, s.cur)
			s.cur = s.newRegion(c.End, c.EndICount)
		}
		s.merge(s.cur, &pieces[j])
	}
	s.shard++
}

// Finish assembles the profile: the trailing open region is emitted only
// if it holds filtered work (or no region closed at all), exactly like
// the serial Collector.
func (s *Stitcher) Finish(p *isa.Program, markerCounts map[uint64]uint64, totFiltered, totICount uint64) *Profile {
	prof := &Profile{
		NumThreads:    s.nthreads,
		NumBlocks:     p.NumBlocks(),
		TotalFiltered: totFiltered,
		TotalICount:   totICount,
		MarkerCounts:  make(map[uint64]uint64, len(markerCounts)),
		Regions:       s.regions,
	}
	for a, n := range markerCounts {
		prof.MarkerCounts[a] = n
	}
	if s.cur.Filtered > 0 || len(prof.Regions) == 0 {
		s.cur.End = Marker{IsEnd: true}
		s.cur.EndICount = totICount
		prof.Regions = append(prof.Regions, s.cur)
	}
	return prof
}

// StitcherState is the serializable form of a mid-run Stitcher. It
// aliases the live stitcher's regions — serialize it before feeding the
// next shard.
type StitcherState struct {
	NumThreads int
	Regions    []*Region
	Cur        *Region
	Shard      int
}

// State captures the stitcher's serializable form.
func (s *Stitcher) State() *StitcherState {
	return &StitcherState{NumThreads: s.nthreads, Regions: s.regions, Cur: s.cur, Shard: s.shard}
}

// RestoreStitcher revives a stitcher from its serialized state,
// validating shape against the program; errors mean the state is
// corrupt, never a panic.
func (s *StitcherState) RestoreStitcher(p *isa.Program) (*Stitcher, error) {
	if s.NumThreads != p.NumThreads() {
		return nil, fmt.Errorf("bbv: stitcher state for %d threads, program has %d", s.NumThreads, p.NumThreads())
	}
	if s.Cur == nil {
		return nil, fmt.Errorf("bbv: stitcher state has no open region")
	}
	for i, r := range append(append([]*Region(nil), s.Regions...), s.Cur) {
		if r == nil {
			return nil, fmt.Errorf("bbv: stitcher state region %d is nil", i)
		}
		if len(r.ThreadFiltered) != s.NumThreads || len(r.Vectors) != s.NumThreads {
			return nil, fmt.Errorf("bbv: stitcher state region %d has wrong thread arity", i)
		}
		for t := range r.Vectors {
			if r.Vectors[t] == nil {
				r.Vectors[t] = make(map[int]float64)
			}
		}
	}
	return &Stitcher{nthreads: s.NumThreads, regions: s.Regions, cur: s.Cur, shard: s.Shard}, nil
}

// DeciderState is the serializable form of a mid-run Decider. The
// close-rule configuration (slice target, modulus) is not part of the
// state: it is re-derived from the recording on resume and must match.
type DeciderState struct {
	MarkerCounts map[uint64]uint64
	Closes       []CloseAt
	FilteredBase uint64
	ICountBase   uint64
	SliceStart   uint64
	Shard        int
}

// State captures the decider's serializable form. The maps and slices
// alias the live decider — serialize before the next Feed.
func (d *Decider) State() *DeciderState {
	return &DeciderState{
		MarkerCounts: d.markerCounts,
		Closes:       d.closes,
		FilteredBase: d.filteredBase,
		ICountBase:   d.icountBase,
		SliceStart:   d.sliceStart,
		Shard:        d.shard,
	}
}

// RestoreDecider revives a decider from its serialized state with the
// re-derived close-rule configuration.
func RestoreDecider(sliceTarget uint64, modulus map[uint64]uint64, st *DeciderState) (*Decider, error) {
	if sliceTarget == 0 {
		return nil, fmt.Errorf("bbv: sliceTarget must be positive")
	}
	d := NewDecider(sliceTarget, modulus)
	if st.MarkerCounts != nil {
		d.markerCounts = st.MarkerCounts
	}
	d.closes = st.Closes
	d.filteredBase = st.FilteredBase
	d.icountBase = st.ICountBase
	d.sliceStart = st.SliceStart
	d.shard = st.Shard
	return d, nil
}
