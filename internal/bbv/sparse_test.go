package bbv

import (
	"sort"
	"testing"
)

func TestSparseVectorSortedAndComplete(t *testing.T) {
	r := &Region{Vectors: []map[int]float64{
		{5: 2.5, 1: 1, 9: 4},
		{},
		{0: 7, 9: 3},
	}}
	const nblocks = 10
	sv := r.SparseVector(nblocks)

	want := 5 // total entries across threads
	if len(sv) != want {
		t.Fatalf("%d entries, want %d", len(sv), want)
	}
	if !sort.SliceIsSorted(sv, func(i, j int) bool { return sv[i].Index < sv[j].Index }) {
		t.Errorf("entries not sorted: %+v", sv)
	}
	// Every (thread, block, weight) must appear at index t*nblocks+b.
	got := map[int]float64{}
	for _, e := range sv {
		if _, dup := got[e.Index]; dup {
			t.Errorf("duplicate index %d", e.Index)
		}
		got[e.Index] = e.Weight
	}
	for tid, tv := range r.Vectors {
		for blk, w := range tv {
			if got[tid*nblocks+blk] != w {
				t.Errorf("thread %d block %d: weight %v, want %v",
					tid, blk, got[tid*nblocks+blk], w)
			}
		}
	}
}

func TestSparseVectorEmptyRegion(t *testing.T) {
	r := &Region{Vectors: []map[int]float64{{}, {}}}
	if sv := r.SparseVector(8); len(sv) != 0 {
		t.Errorf("empty region produced %d entries", len(sv))
	}
}

// BenchmarkSparseVector measures materialization cost — the per-region
// setup work the sparse projection fast path performs.
func BenchmarkSparseVector(b *testing.B) {
	vecs := make([]map[int]float64, 8)
	for t := range vecs {
		vecs[t] = map[int]float64{}
		for k := 0; k < 40; k++ {
			vecs[t][(t*3+k*13)%500] = float64(k + 1)
		}
	}
	r := &Region{Vectors: vecs}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.SparseVector(500)
	}
}
