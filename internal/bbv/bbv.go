// Package bbv collects Basic Block Vectors over an execution and slices
// it into variable-length regions demarcated by worker-loop entries
// (paper Sections III-A through III-C):
//
//   - the unit of work is the filtered (non-synchronization-library)
//     instruction count;
//   - a region ends at the first main-image loop-header entry after the
//     global filtered instruction count crosses N × SliceUnit for an
//     N-threaded program;
//   - region boundaries are (PC, count) pairs — the address of the marker
//     block and its global execution count — which remain valid even in
//     the presence of spin-loops;
//   - per-thread BBVs are kept separate so that clustering can see
//     run-time parallelism (Section III-B); they are concatenated into a
//     single global vector per region by the simpoint package.
package bbv

import (
	"fmt"
	"sort"

	"looppoint/internal/exec"
	"looppoint/internal/isa"
)

// Marker is a (PC, count) execution point: the count-th global entry of
// the basic block at address PC. The zero Marker denotes the program
// start; IsEnd marks the program end. A marker with PC == 0 and a
// non-zero Count is a raw global-instruction-count boundary — the kind
// the naive SimPoint baseline uses, which is not stable across thread
// interleavings (Section II).
type Marker struct {
	PC    uint64
	Count uint64
	IsEnd bool
}

// IsStart reports whether the marker denotes the program start.
func (m Marker) IsStart() bool { return m.PC == 0 && m.Count == 0 && !m.IsEnd }

// IsICount reports whether the marker is a raw instruction-count boundary.
func (m Marker) IsICount() bool { return m.PC == 0 && m.Count > 0 && !m.IsEnd }

func (m Marker) String() string {
	switch {
	case m.IsEnd:
		return "<end>"
	case m.IsStart():
		return "<start>"
	case m.IsICount():
		return fmt.Sprintf("@icount %d", m.Count)
	default:
		return fmt.Sprintf("(%#x, %d)", m.PC, m.Count)
	}
}

// Region is one profiling slice.
type Region struct {
	Index int
	Start Marker
	End   Marker
	// StartICount/EndICount are the global unfiltered retired counts at
	// the region boundaries.
	StartICount, EndICount uint64
	// Filtered is the global filtered (worker) instruction count in the
	// region — the amount of work it represents.
	Filtered uint64
	// ThreadFiltered is the per-thread filtered instruction split.
	ThreadFiltered []uint64
	// Vectors holds one sparse BBV per thread: global block index →
	// instructions retired in that block during this region.
	Vectors []map[int]float64
}

// UnfilteredLen returns the unfiltered instruction length of the region.
func (r *Region) UnfilteredLen() uint64 { return r.EndICount - r.StartICount }

// Profile is the outcome of one profiling run.
type Profile struct {
	Regions    []*Region
	NumThreads int
	NumBlocks  int // static block count (vector dimensionality per thread)
	// TotalFiltered and TotalICount cover the whole execution.
	TotalFiltered uint64
	TotalICount   uint64
	// MarkerCounts is the final global execution count per marker PC.
	MarkerCounts map[uint64]uint64
}

// ThreadShare returns, per region, each thread's share of the filtered
// instructions (Figure 3's per-slice series).
func (p *Profile) ThreadShare() [][]float64 {
	out := make([][]float64, len(p.Regions))
	for i, r := range p.Regions {
		shares := make([]float64, p.NumThreads)
		if r.Filtered > 0 {
			for t, f := range r.ThreadFiltered {
				shares[t] = float64(f) / float64(r.Filtered)
			}
		}
		out[i] = shares
	}
	return out
}

// Collector is an exec.Observer that builds a Profile.
type Collector struct {
	prog        *isa.Program
	markers     map[uint64]bool // marker block addresses (main-image loop headers)
	sliceTarget uint64          // global filtered instructions per slice
	nthreads    int

	profile      *Profile
	markerCounts map[uint64]uint64
	cur          *Region
	icount       uint64 // global unfiltered
	filtered     uint64 // global filtered
	sliceStart   uint64 // filtered count at current region start
	finished     bool
	includeSync  bool
	byICount     bool

	varMinFrac float64
	varThresh  float64
	varEnabled bool
	prevNorm   map[int]float64 // previous region's normalized global BBV

	// modulus restricts which hit counts of a marker may end a region:
	// only counts with (count-1) % modulus == 0 qualify. Symmetric
	// worker-loop headers (entered once per thread per episode) use
	// modulus == nthreads so boundaries land on episode leaders rather
	// than mid-burst; all other markers use modulus 1.
	modulus map[uint64]uint64
}

// SetMarkerModulus installs per-marker hit-count moduli (see the modulus
// field); markers without an entry behave as modulus 1.
func (c *Collector) SetMarkerModulus(m map[uint64]uint64) { c.modulus = m }

// boundaryAllowed reports whether the count-th hit of marker addr is a
// stable region boundary.
func (c *Collector) boundaryAllowed(addr, count uint64) bool {
	mod := c.modulus[addr]
	if mod <= 1 {
		return true
	}
	return (count-1)%mod == 0
}

// SetVariableSlices enables phase-aligned variable-length slicing (the
// alternative Section III-B points to, after Lau et al.'s variable-length
// intervals): a region may close early — at a worker-loop entry, once it
// holds at least minFrac of the slice budget — when its basic-block mix
// has diverged from the previous region by more than threshold
// (normalized Manhattan distance, range [0, 2]). The fixed budget still
// forces a close, so regions stay within the configured maximum size.
func (c *Collector) SetVariableSlices(minFrac, threshold float64) {
	if minFrac <= 0 || minFrac > 1 {
		minFrac = 0.25
	}
	if threshold <= 0 {
		threshold = 0.5
	}
	c.varEnabled = true
	c.varMinFrac = minFrac
	c.varThresh = threshold
}

// normalizedVector flattens a region's per-thread vectors into one
// normalized global map keyed by thread*nblocks+block.
func (c *Collector) normalizedVector(r *Region) map[int]float64 {
	out := make(map[int]float64)
	for t, tv := range r.Vectors {
		base := t * c.profile.NumBlocks
		for blk, w := range tv {
			out[base+blk] = w
		}
	}
	// Sum in key order: map-order float accumulation would make the
	// normalization (and every distance derived from it) vary by ULPs
	// between runs.
	var total float64
	for _, k := range sortedIndices(out) {
		total += out[k]
	}
	if total > 0 {
		for k := range out {
			out[k] /= total
		}
	}
	return out
}

// sortedIndices returns a sparse vector's indices in increasing order.
func sortedIndices(v map[int]float64) []int {
	keys := make([]int, 0, len(v))
	for k := range v {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

func manhattan(a, b map[int]float64) float64 {
	var d float64
	for _, k := range sortedIndices(a) {
		va, vb := a[k], b[k]
		if va > vb {
			d += va - vb
		} else {
			d += vb - va
		}
	}
	for _, k := range sortedIndices(b) {
		if _, ok := a[k]; !ok {
			d += b[k]
		}
	}
	return d
}

// phaseChanged reports whether the accumulating region's mix diverged
// from the previous region's.
func (c *Collector) phaseChanged() bool {
	if c.prevNorm == nil {
		return false
	}
	cur := c.normalizedVector(c.cur)
	return manhattan(cur, c.prevNorm) > c.varThresh
}

// DisableSyncFilter makes the collector count synchronization-library
// instructions as work (the naive-SimPoint baseline of Section II; the
// spin-filter ablation).
func (c *Collector) DisableSyncFilter() { c.includeSync = true }

// SliceOnICount switches slicing to raw global instruction counts (the
// naive SimPoint baseline): a region closes as soon as the unfiltered
// global count crosses the slice target, with no loop alignment.
func (c *Collector) SliceOnICount() { c.byICount = true }

// NewCollector creates a collector. markerAddrs are the candidate region
// boundary PCs (main-image loop headers from the DCFG pass); sliceTarget
// is the global filtered-instruction budget per slice (N × SliceUnit).
func NewCollector(p *isa.Program, markerAddrs []uint64, sliceTarget uint64) *Collector {
	if sliceTarget == 0 {
		panic("bbv: sliceTarget must be positive")
	}
	mk := make(map[uint64]bool, len(markerAddrs))
	for _, a := range markerAddrs {
		mk[a] = true
	}
	c := &Collector{
		prog:        p,
		markers:     mk,
		sliceTarget: sliceTarget,
		nthreads:    p.NumThreads(),
		profile: &Profile{
			NumThreads:   p.NumThreads(),
			NumBlocks:    p.NumBlocks(),
			MarkerCounts: make(map[uint64]uint64),
		},
		markerCounts: make(map[uint64]uint64),
	}
	c.cur = c.newRegion(Marker{}, 0)
	return c
}

func (c *Collector) newRegion(start Marker, startIC uint64) *Region {
	r := &Region{
		Index:          len(c.profile.Regions),
		Start:          start,
		StartICount:    startIC,
		ThreadFiltered: make([]uint64, c.nthreads),
		Vectors:        make([]map[int]float64, c.nthreads),
	}
	for t := range r.Vectors {
		r.Vectors[t] = make(map[int]float64)
	}
	return r
}

// OnInstr implements exec.Observer.
func (c *Collector) OnInstr(ev *exec.Event) {
	if c.finished {
		return
	}
	c.icount++
	blk := ev.Block
	if c.byICount {
		if c.icount-c.cur.StartICount >= c.sliceTarget {
			c.closeRegion(Marker{Count: c.icount})
		}
	} else if ev.BlockEntry && c.markers[blk.Addr] {
		c.markerEntry(blk.Addr)
	}
	if blk.Routine.Image.Sync && !c.includeSync {
		return // synchronization code: execute but do not count (IV-F)
	}
	c.filtered++
	c.cur.Filtered++
	c.cur.ThreadFiltered[ev.Tid]++
	c.cur.Vectors[ev.Tid][blk.Global]++
}

// markerEntry handles one global entry of a marker block: bump its count
// and close the region if this entry is an admissible boundary.
func (c *Collector) markerEntry(addr uint64) {
	c.markerCounts[addr]++
	// When all N threads enter the same worker loop once per episode
	// (a timestep header after a barrier), the header fires in N-hit
	// bursts under natural scheduling, and a (PC, count) boundary
	// placed mid-burst is unstable: the work between two hits of one
	// burst depends entirely on thread interleaving, which differs
	// between the flow-controlled profiling replay and unconstrained
	// simulation. Symmetric markers therefore only admit episode-
	// leader counts (boundaryAllowed); a 2x budget overrun forces a
	// close anyway as a safety valve.
	allowed := c.boundaryAllowed(addr, c.markerCounts[addr])
	inRegion := c.filtered - c.sliceStart
	switch {
	case inRegion >= c.sliceTarget && (allowed || inRegion >= 2*c.sliceTarget):
		c.closeRegion(Marker{PC: addr, Count: c.markerCounts[addr]})
	case c.varEnabled && allowed && inRegion >= uint64(c.varMinFrac*float64(c.sliceTarget)) && c.phaseChanged():
		c.closeRegion(Marker{PC: addr, Count: c.markerCounts[addr]})
	}
}

// account attributes n instructions of a block event to the current
// region, applying the synchronization filter. Counts are added as a
// single float64 — exact (and identical to n unit additions) for any
// region size below 2^53 instructions.
func (c *Collector) account(ev *exec.BlockEvent, n uint64) {
	blk := ev.Block
	if blk.Routine.Image.Sync && !c.includeSync {
		return
	}
	c.filtered += n
	c.cur.Filtered += n
	c.cur.ThreadFiltered[ev.Tid] += n
	c.cur.Vectors[ev.Tid][blk.Global] += float64(n)
}

// BreakPCs implements exec.PCBreaker: every marker address must split
// block batches so region boundaries land at exact (PC, count) positions.
// Call SliceOnICount before attaching the collector as a block observer —
// icount slicing needs no break PCs.
func (c *Collector) BreakPCs() []uint64 {
	if c.byICount {
		return nil
	}
	pcs := make([]uint64, 0, len(c.markers))
	for a := range c.markers {
		pcs = append(pcs, a)
	}
	sort.Slice(pcs, func(i, j int) bool { return pcs[i] < pcs[j] })
	return pcs
}

// OnBlock implements exec.BlockObserver. It produces bit-identical
// profiles to per-instruction observation: marker-block entries arrive as
// single-instruction events (break PCs, see BreakPCs) and replay the
// per-instruction ordering exactly; all other batches fold into the
// region wholesale.
func (c *Collector) OnBlock(ev *exec.BlockEvent) {
	if c.finished {
		return
	}
	if c.byICount {
		c.onBlockByICount(ev)
		return
	}
	blk := ev.Block
	if ev.Entries > 0 && c.markers[blk.Addr] {
		// A marker block is a break PC, so its entries arrive as
		// single-instruction events; anything else means the marker was
		// not registered before the run started.
		if ev.Instrs != 1 || ev.Entries != 1 {
			panic(fmt.Sprintf("bbv: marker %#x entry arrived in a coalesced batch (%d instrs, %d entries); marker PCs must be break PCs",
				blk.Addr, ev.Instrs, ev.Entries))
		}
		c.icount++
		c.markerEntry(blk.Addr)
		c.account(ev, 1)
		return
	}
	c.icount += ev.Instrs
	c.account(ev, ev.Instrs)
}

// onBlockByICount splits a batch across raw instruction-count boundaries,
// reproducing the per-instruction sequence: the instruction that crosses
// the slice target closes the region and is itself accounted to the new
// region (exactly as OnInstr orders close-then-account).
func (c *Collector) onBlockByICount(ev *exec.BlockEvent) {
	n := ev.Instrs
	for n > 0 {
		untilClose := c.cur.StartICount + c.sliceTarget - c.icount
		if untilClose > n {
			c.icount += n
			c.account(ev, n)
			return
		}
		if pre := untilClose - 1; pre > 0 {
			c.icount += pre
			c.account(ev, pre)
			n -= pre
		}
		c.icount++
		c.closeRegion(Marker{Count: c.icount})
		c.account(ev, 1)
		n--
	}
}

func (c *Collector) closeRegion(end Marker) {
	c.cur.End = end
	c.cur.EndICount = c.icount
	if c.varEnabled {
		c.prevNorm = c.normalizedVector(c.cur)
	}
	c.profile.Regions = append(c.profile.Regions, c.cur)
	c.cur = c.newRegion(end, c.icount)
	c.sliceStart = c.filtered
}

// Finish closes the trailing region and returns the profile. It must be
// called exactly once, after the run completes.
func (c *Collector) Finish() *Profile {
	if c.finished {
		return c.profile
	}
	c.finished = true
	if c.cur.Filtered > 0 || len(c.profile.Regions) == 0 {
		c.closeRegion(Marker{IsEnd: true})
	}
	c.profile.TotalFiltered = c.filtered
	c.profile.TotalICount = c.icount
	for a, n := range c.markerCounts {
		c.profile.MarkerCounts[a] = n
	}
	return c.profile
}

// Watcher observes an execution and fires when a (PC, count) marker is
// reached, optionally requesting the machine to stop. It is how both
// profiling validation and region simulation locate region boundaries.
type Watcher struct {
	machine *exec.Machine
	marker  Marker
	count   uint64
	Fired   bool
	// OnFire, if set, runs when the marker is hit (before the stop request).
	OnFire func()
	// StopOnFire requests the machine to stop at the marker (default true).
	StopOnFire bool
}

// NewWatcher creates a marker watcher bound to a machine. A start marker
// fires immediately on the first instruction.
func NewWatcher(m *exec.Machine, marker Marker) *Watcher {
	return &Watcher{machine: m, marker: marker, StopOnFire: true}
}

// SkipCounted credits n prior hits of the marker PC, for watchers attached
// mid-execution: marker counts are global since program start.
func (w *Watcher) SkipCounted(n uint64) { w.count = n }

// OnInstr implements exec.Observer.
func (w *Watcher) OnInstr(ev *exec.Event) {
	if w.Fired || w.marker.IsEnd {
		return
	}
	if w.marker.IsStart() {
		w.fire()
		return
	}
	if w.marker.IsICount() {
		if w.machine.TotalICount() >= w.marker.Count {
			w.fire()
		}
		return
	}
	if ev.BlockEntry && ev.Block.Addr == w.marker.PC {
		w.count++
		if w.count >= w.marker.Count {
			w.fire()
		}
	}
}

// BreakPCs implements exec.PCBreaker: a (PC, count) watcher needs the
// marker block split out of batches so the stop lands on the exact
// instruction. Start/end/icount markers need no break PCs.
func (w *Watcher) BreakPCs() []uint64 {
	if w.marker.IsStart() || w.marker.IsICount() || w.marker.IsEnd {
		return nil
	}
	return []uint64{w.marker.PC}
}

// OnBlock implements exec.BlockObserver. For (PC, count) markers the
// watcher must be attached with exec.Machine.AddBlockObserver so its
// break PC registers, making the firing position identical to
// per-instruction observation. Icount markers fire at event granularity
// in block mode (the timing simulator handles icount boundaries itself by
// capping batch budgets); start markers fire after the first batch rather
// than the first instruction.
func (w *Watcher) OnBlock(ev *exec.BlockEvent) {
	if w.Fired || w.marker.IsEnd {
		return
	}
	if w.marker.IsStart() {
		w.fire()
		return
	}
	if w.marker.IsICount() {
		if w.machine.TotalICount() >= w.marker.Count {
			w.fire()
		}
		return
	}
	if ev.Entries > 0 && ev.Block.Addr == w.marker.PC {
		w.count += ev.Entries
		if w.count >= w.marker.Count {
			w.fire()
		}
	}
}

func (w *Watcher) fire() {
	w.Fired = true
	if w.OnFire != nil {
		w.OnFire()
	}
	if w.StopOnFire {
		w.machine.RequestStop()
	}
}
