package bbv_test

import (
	"reflect"
	"testing"

	"looppoint/internal/bbv"
	"looppoint/internal/exec"
	"looppoint/internal/isa"
	"looppoint/internal/omp"
	"looppoint/internal/pinball"
	"looppoint/internal/testprog"
)

func shardRecordings(t *testing.T) map[string]struct {
	prog *isa.Program
	pb   *pinball.Pinball
} {
	t.Helper()
	out := map[string]struct {
		prog *isa.Program
		pb   *pinball.Pinball
	}{}
	for _, rec := range []struct {
		name string
		prog *isa.Program
		seed uint64
		flow uint64
	}{
		{"phased", testprog.Phased(4, 3, 40, omp.Passive), 5, 0},
		{"syscalls", testprog.WithSyscalls(4, 60, omp.Passive), 11, 16},
		{"active", testprog.Phased(3, 2, 20, omp.Active), 1, 8},
	} {
		pb, err := pinball.Record(rec.prog, rec.seed, rec.flow)
		if err != nil {
			t.Fatalf("%s: %v", rec.name, err)
		}
		out[rec.name] = struct {
			prog *isa.Program
			pb   *pinball.Pinball
		}{rec.prog, pb}
	}
	return out
}

// loopMarkers returns every conditional self-loop header in the
// program's non-sync images — the same marker shape the DCFG pass feeds
// the profiler.
func loopMarkers(t *testing.T, p *isa.Program) []uint64 {
	t.Helper()
	var markers []uint64
	for _, img := range p.Images {
		if img.Sync {
			continue
		}
		for _, rt := range img.Routines {
			for i, blk := range rt.Blocks {
				term := blk.Instrs[len(blk.Instrs)-1]
				if term.Op == isa.OpBrCond && (term.Target == i || term.Else == i) {
					markers = append(markers, blk.Addr)
				}
			}
		}
	}
	if len(markers) == 0 {
		t.Skip("no loop markers in program")
	}
	return markers
}

// serialProfile runs the reference Collector over a full replay.
func serialProfile(t *testing.T, p *isa.Program, pb *pinball.Pinball, markers []uint64, target uint64, modulus map[uint64]uint64, includeSync bool) *bbv.Profile {
	t.Helper()
	col := bbv.NewCollector(p, markers, target)
	col.SetMarkerModulus(modulus)
	if includeSync {
		col.DisableSyncFilter()
	}
	if _, err := pb.Replay(p, col); err != nil {
		t.Fatal(err)
	}
	return col.Finish()
}

// shardedProfile runs the three-pass scan/decide/accumulate pipeline
// over checkpoint windows of width `every`.
func shardedProfile(t *testing.T, p *isa.Program, pb *pinball.Pinball, markers []uint64, target uint64, modulus map[uint64]uint64, includeSync bool, every uint64) *bbv.Profile {
	t.Helper()
	cks, err := pb.Checkpoints(p, every)
	if err != nil {
		t.Fatal(err)
	}
	total := pb.Schedule.Steps()
	width := func(k int) uint64 {
		if k < len(cks)-1 {
			return cks[k+1].Step - cks[k].Step
		}
		return total - cks[k].Step
	}
	scans := make([]*bbv.ShardScan, len(cks))
	for k, ck := range cks {
		sc := bbv.NewScanner(markers, includeSync)
		if _, err := pb.ReplayWindow(p, ck, width(k), sc); err != nil {
			t.Fatalf("scan window %d: %v", k, err)
		}
		scans[k] = sc.Scan()
	}
	closes, markerCounts, totFiltered, totICount := bbv.DecideCloses(scans, target, modulus)
	pieces := make([][]bbv.Piece, len(cks))
	for k, ck := range cks {
		ac := bbv.NewAccumulator(p, markers, bbv.ClosesForShard(closes, k), includeSync)
		if _, err := pb.ReplayWindow(p, ck, width(k), ac); err != nil {
			t.Fatalf("accumulate window %d: %v", k, err)
		}
		pieces[k] = ac.Pieces()
	}
	return bbv.StitchProfile(p, pieces, closes, markerCounts, totFiltered, totICount)
}

// TestShardProfileIdentity pins the three-pass sharded profile
// deep-equal to the serial Collector's — regions, markers, end counts,
// per-thread vectors — across shard widths, marker moduli, and the sync
// filter, including the degenerate single-shard width.
func TestShardProfileIdentity(t *testing.T) {
	for name, w := range shardRecordings(t) {
		t.Run(name, func(t *testing.T) {
			markers := loopMarkers(t, w.prog)
			target := uint64(60 * w.prog.NumThreads())
			total := w.pb.Schedule.Steps()
			symmetric := map[uint64]uint64{}
			for _, a := range markers {
				symmetric[a] = uint64(w.prog.NumThreads())
			}
			for _, tc := range []struct {
				label       string
				modulus     map[uint64]uint64
				includeSync bool
			}{
				{"plain", nil, false},
				{"modulus", symmetric, false},
				{"nosyncfilter", nil, true},
			} {
				t.Run(tc.label, func(t *testing.T) {
					want := serialProfile(t, w.prog, w.pb, markers, target, tc.modulus, tc.includeSync)
					for _, every := range []uint64{total / 2, total / 3, total / 7, 64, total + 5} {
						if every == 0 {
							continue
						}
						got := shardedProfile(t, w.prog, w.pb, markers, target, tc.modulus, tc.includeSync, every)
						if !reflect.DeepEqual(got, want) {
							t.Errorf("every=%d: sharded profile differs from serial (%d vs %d regions, totals %d/%d vs %d/%d)",
								every, len(got.Regions), len(want.Regions),
								got.TotalFiltered, got.TotalICount, want.TotalFiltered, want.TotalICount)
						}
					}
				})
			}
		})
	}
}

// TestShardHotPathAllocs pins the per-event cost of the scan and
// accumulate observers: a non-marker block event must not allocate
// (marker events may grow the event list or piece maps, amortized per
// marker, not per instruction).
func TestShardHotPathAllocs(t *testing.T) {
	p := testprog.Phased(2, 1, 8, omp.Passive)
	var blk *isa.Block
	for _, img := range p.Images {
		if !img.Sync {
			blk = img.Routines[0].Blocks[0]
			break
		}
	}
	if blk == nil {
		t.Fatal("no non-sync block")
	}
	ev := exec.BlockEvent{Tid: 0, Block: blk, Entries: 2, Instrs: 6}

	sc := bbv.NewScanner([]uint64{blk.Addr + 1 << 40}, false)
	if n := testing.AllocsPerRun(1000, func() { sc.OnBlock(&ev) }); n != 0 {
		t.Fatalf("Scanner.OnBlock allocates %.1f per non-marker event, want 0", n)
	}

	ac := bbv.NewAccumulator(p, []uint64{blk.Addr + 1<<40}, nil, false)
	ac.OnBlock(&ev) // warm the vector entry
	if n := testing.AllocsPerRun(1000, func() { ac.OnBlock(&ev) }); n != 0 {
		t.Fatalf("Accumulator.OnBlock allocates %.1f per non-marker event, want 0", n)
	}
}

// TestDecideClosesMatchesCollectorRule spot-checks the decision pass on
// a hand-built scan: a close requires the budget reached AND an admitted
// hit count, with the 2x overrun safety valve overriding admission.
func TestDecideClosesMatchesCollectorRule(t *testing.T) {
	const target = 100
	mod := map[uint64]uint64{0x10: 4}
	scans := []*bbv.ShardScan{
		{ // hits 1..3: counts 1 (allowed), 2, 3
			Events: []bbv.ScanEvent{
				{Addr: 0x10, FilteredBefore: 50, ICountAt: 60},
				{Addr: 0x10, FilteredBefore: 120, ICountAt: 140}, // budget met, count 2 not admitted
				{Addr: 0x10, FilteredBefore: 150, ICountAt: 170}, // count 3 not admitted
			},
			Filtered: 180, ICount: 200,
		},
		{ // hit 4: count 4 not admitted but 2x overrun forces a close
			Events: []bbv.ScanEvent{
				{Addr: 0x10, FilteredBefore: 30, ICountAt: 40}, // inRegion 210 >= 200
				{Addr: 0x10, FilteredBefore: 60, ICountAt: 80}, // count 5 admitted, inRegion 30 < target
			},
			Filtered: 90, ICount: 100,
		},
	}
	closes, counts, totF, totI := bbv.DecideCloses(scans, target, mod)
	if len(closes) != 1 {
		t.Fatalf("%d closes, want 1: %+v", len(closes), closes)
	}
	want := bbv.CloseAt{Shard: 1, Event: 0, End: bbv.Marker{PC: 0x10, Count: 4}, EndICount: 240}
	if closes[0] != want {
		t.Fatalf("close = %+v, want %+v", closes[0], want)
	}
	if counts[0x10] != 5 || totF != 270 || totI != 300 {
		t.Fatalf("counts=%v totF=%d totI=%d", counts, totF, totI)
	}
}
