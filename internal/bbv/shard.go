package bbv

import (
	"fmt"
	"sort"

	"looppoint/internal/exec"
	"looppoint/internal/isa"
)

// Checkpoint-parallel BBV profiling. The serial Collector's only
// cross-shard state is cheap and strictly ordered: the global filtered
// and unfiltered counters, the per-marker hit counts, and the filtered
// count at the open region's start (which decides where regions close).
// The expensive part — accounting every retired instruction into sparse
// per-thread vectors — is embarrassingly parallel once the close points
// are known. The parallel profile is therefore built in three passes:
//
//  1. Scan (parallel, one Scanner per shard window): record every marker
//     entry with the shard-local filtered/unfiltered counts around it.
//  2. Decide (serial, plain arithmetic over the scan events in shard
//     order): replay the Collector's close rule exactly — same modulus
//     admission, same budget thresholds, same close-before-account
//     ordering — yielding, per shard, the marker-event indices at which
//     regions close.
//  3. Accumulate (parallel, one Accumulator per shard window): split the
//     shard's instruction stream into pieces at those event indices;
//     StitchProfile then merges pieces across shard boundaries into
//     regions.
//
// The result is deep-equal to a serial Collector's Profile: integer
// counts below 2^53 add exactly in float64, so piecewise accumulation
// is associative, and every ordering decision (close admission, the
// boundary instruction belonging to the new region) is replicated
// bit-for-bit. Pinned by the shard identity tests across shard widths.

// ScanEvent is one global entry of a marker block inside a shard.
type ScanEvent struct {
	// Addr is the marker block address.
	Addr uint64
	// FilteredBefore is the shard-local filtered instruction count before
	// this marker instruction is accounted — the value the serial close
	// rule compares against the slice budget.
	FilteredBefore uint64
	// ICountAt is the shard-local unfiltered count including this marker
	// instruction — the serial closeRegion's EndICount, shard-relative.
	ICountAt uint64
}

// ShardScan is the scan pass's result for one shard.
type ShardScan struct {
	Events   []ScanEvent
	Filtered uint64 // shard-total filtered instructions
	ICount   uint64 // shard-total unfiltered instructions
}

// Scanner is the pass-1 observer: it finds marker entries and counts
// filtered work, accounting nothing into vectors. It rides the
// block-batched tier with the marker PCs as break PCs, exactly like the
// serial Collector.
type Scanner struct {
	markers     map[uint64]bool
	includeSync bool
	scan        ShardScan
}

// NewScanner creates a scan-pass observer. includeSync mirrors
// Collector.DisableSyncFilter.
func NewScanner(markerAddrs []uint64, includeSync bool) *Scanner {
	mk := make(map[uint64]bool, len(markerAddrs))
	for _, a := range markerAddrs {
		mk[a] = true
	}
	return &Scanner{markers: mk, includeSync: includeSync}
}

// Scan returns the accumulated scan result.
func (s *Scanner) Scan() *ShardScan { return &s.scan }

// BreakPCs implements exec.PCBreaker (same contract as Collector).
func (s *Scanner) BreakPCs() []uint64 { return sortedAddrs(s.markers) }

// OnInstr implements exec.Observer (the precise-tier equivalent).
func (s *Scanner) OnInstr(ev *exec.Event) {
	s.scan.ICount++
	blk := ev.Block
	if ev.BlockEntry && s.markers[blk.Addr] {
		s.scan.Events = append(s.scan.Events, ScanEvent{
			Addr: blk.Addr, FilteredBefore: s.scan.Filtered, ICountAt: s.scan.ICount,
		})
	}
	if blk.Routine.Image.Sync && !s.includeSync {
		return
	}
	s.scan.Filtered++
}

// OnBlock implements exec.BlockObserver.
func (s *Scanner) OnBlock(ev *exec.BlockEvent) {
	blk := ev.Block
	if ev.Entries > 0 && s.markers[blk.Addr] {
		if ev.Instrs != 1 || ev.Entries != 1 {
			panic(fmt.Sprintf("bbv: marker %#x entry arrived in a coalesced batch (%d instrs, %d entries); marker PCs must be break PCs",
				blk.Addr, ev.Instrs, ev.Entries))
		}
		s.scan.ICount++
		s.scan.Events = append(s.scan.Events, ScanEvent{
			Addr: blk.Addr, FilteredBefore: s.scan.Filtered, ICountAt: s.scan.ICount,
		})
		if !blk.Routine.Image.Sync || s.includeSync {
			s.scan.Filtered++
		}
		return
	}
	s.scan.ICount += ev.Instrs
	if blk.Routine.Image.Sync && !s.includeSync {
		return
	}
	s.scan.Filtered += ev.Instrs
}

// CloseAt is one region-close decision: the Event-th marker entry of
// shard Shard ends a region with the given global (PC, count) marker and
// global unfiltered end count.
type CloseAt struct {
	Shard     int
	Event     int
	End       Marker
	EndICount uint64
}

// Decider replays the serial Collector's region-close rule over shard
// scans, incrementally: Feed consumes shards in order and returns each
// shard's decisions as soon as its scan is in, so accumulation of early
// shards can overlap scanning of later ones. modulus is the per-marker
// hit-count admission map (SetMarkerModulus); variable-length slicing is
// not supported here — the analysis falls back to the serial collector
// for that configuration.
type Decider struct {
	sliceTarget  uint64
	modulus      map[uint64]uint64
	markerCounts map[uint64]uint64
	closes       []CloseAt
	filteredBase uint64
	icountBase   uint64
	sliceStart   uint64
	shard        int
}

// NewDecider creates a close-rule decider.
func NewDecider(sliceTarget uint64, modulus map[uint64]uint64) *Decider {
	if sliceTarget == 0 {
		panic("bbv: sliceTarget must be positive")
	}
	return &Decider{
		sliceTarget:  sliceTarget,
		modulus:      modulus,
		markerCounts: make(map[uint64]uint64),
	}
}

// Feed consumes the next shard's scan (shards must be fed in order) and
// returns the close decisions that fall inside it.
func (d *Decider) Feed(sc *ShardScan) []CloseAt {
	k := d.shard
	d.shard++
	first := len(d.closes)
	for i, e := range sc.Events {
		d.markerCounts[e.Addr]++
		cnt := d.markerCounts[e.Addr]
		mod := d.modulus[e.Addr]
		allowed := mod <= 1 || (cnt-1)%mod == 0
		inRegion := d.filteredBase + e.FilteredBefore - d.sliceStart
		if inRegion >= d.sliceTarget && (allowed || inRegion >= 2*d.sliceTarget) {
			d.closes = append(d.closes, CloseAt{
				Shard: k, Event: i,
				End:       Marker{PC: e.Addr, Count: cnt},
				EndICount: d.icountBase + e.ICountAt,
			})
			d.sliceStart = d.filteredBase + e.FilteredBefore
		}
	}
	d.filteredBase += sc.Filtered
	d.icountBase += sc.ICount
	return d.closes[first:]
}

// Closes returns every decision made so far, in shard order.
func (d *Decider) Closes() []CloseAt { return d.closes }

// MarkerCounts returns the global marker hit counts consumed so far.
func (d *Decider) MarkerCounts() map[uint64]uint64 { return d.markerCounts }

// Totals returns the global filtered/unfiltered counts consumed so far.
func (d *Decider) Totals() (filtered, icount uint64) { return d.filteredBase, d.icountBase }

// DecideCloses is the batch form of Decider: it feeds every scan in
// order and returns the decisions, marker counts, and totals.
func DecideCloses(scans []*ShardScan, sliceTarget uint64, modulus map[uint64]uint64) (closes []CloseAt, markerCounts map[uint64]uint64, totFiltered, totICount uint64) {
	d := NewDecider(sliceTarget, modulus)
	for _, sc := range scans {
		d.Feed(sc)
	}
	totFiltered, totICount = d.Totals()
	return d.Closes(), d.MarkerCounts(), totFiltered, totICount
}

// Piece is a contiguous span of one shard's instruction stream between
// region closes, accumulated exactly like a serial region body.
type Piece struct {
	Filtered       uint64
	ThreadFiltered []uint64
	Vectors        []map[int]float64
}

// Accumulator is the pass-3 observer: it accounts every instruction of a
// shard window into pieces, cutting a new piece at each decided close
// event. The boundary marker instruction is accounted into the new piece
// (the serial close-then-account ordering). A shard with C closes yields
// exactly C+1 pieces.
type Accumulator struct {
	markers     map[uint64]bool
	includeSync bool
	nthreads    int
	closeAt     []int // ascending marker-event indices to cut at
	eventIdx    int
	pieces      []Piece
	cur         Piece
}

// NewAccumulator creates an accumulate-pass observer for one shard.
// closeEvents are the marker-event indices (per DecideCloses) at which
// this shard's regions close, in ascending order.
func NewAccumulator(p *isa.Program, markerAddrs []uint64, closeEvents []int, includeSync bool) *Accumulator {
	mk := make(map[uint64]bool, len(markerAddrs))
	for _, a := range markerAddrs {
		mk[a] = true
	}
	a := &Accumulator{
		markers:     mk,
		includeSync: includeSync,
		nthreads:    p.NumThreads(),
		closeAt:     closeEvents,
	}
	a.cur = a.newPiece()
	return a
}

func (a *Accumulator) newPiece() Piece {
	p := Piece{
		ThreadFiltered: make([]uint64, a.nthreads),
		Vectors:        make([]map[int]float64, a.nthreads),
	}
	for t := range p.Vectors {
		p.Vectors[t] = make(map[int]float64)
	}
	return p
}

// Pieces finalizes and returns the shard's pieces (trailing open piece
// included).
func (a *Accumulator) Pieces() []Piece {
	if len(a.closeAt) > 0 {
		panic(fmt.Sprintf("bbv: %d decided close events never reached in shard", len(a.closeAt)))
	}
	return append(a.pieces, a.cur)
}

// BreakPCs implements exec.PCBreaker — identical to the Scanner's so the
// event indices of the two passes line up one-to-one.
func (a *Accumulator) BreakPCs() []uint64 { return sortedAddrs(a.markers) }

func (a *Accumulator) markerEvent() {
	if len(a.closeAt) > 0 && a.closeAt[0] == a.eventIdx {
		a.pieces = append(a.pieces, a.cur)
		a.cur = a.newPiece()
		a.closeAt = a.closeAt[1:]
	}
	a.eventIdx++
}

func (a *Accumulator) account(tid int, blk *isa.Block, n uint64) {
	if blk.Routine.Image.Sync && !a.includeSync {
		return
	}
	a.cur.Filtered += n
	a.cur.ThreadFiltered[tid] += n
	a.cur.Vectors[tid][blk.Global] += float64(n)
}

// OnInstr implements exec.Observer (the precise-tier equivalent).
func (a *Accumulator) OnInstr(ev *exec.Event) {
	if ev.BlockEntry && a.markers[ev.Block.Addr] {
		a.markerEvent()
	}
	a.account(ev.Tid, ev.Block, 1)
}

// OnBlock implements exec.BlockObserver.
func (a *Accumulator) OnBlock(ev *exec.BlockEvent) {
	if ev.Entries > 0 && a.markers[ev.Block.Addr] {
		if ev.Instrs != 1 || ev.Entries != 1 {
			panic(fmt.Sprintf("bbv: marker %#x entry arrived in a coalesced batch (%d instrs, %d entries); marker PCs must be break PCs",
				ev.Block.Addr, ev.Instrs, ev.Entries))
		}
		a.markerEvent()
		a.account(ev.Tid, ev.Block, 1)
		return
	}
	a.account(ev.Tid, ev.Block, ev.Instrs)
}

// ClosesForShard extracts shard k's close-event indices from the global
// decision list (which DecideCloses emits in ascending order).
func ClosesForShard(closes []CloseAt, k int) []int {
	var out []int
	for _, c := range closes {
		if c.Shard == k {
			out = append(out, c.Event)
		}
	}
	return out
}

// StitchProfile assembles the final Profile from per-shard pieces and
// the close decisions, in shard order. It reproduces the serial
// Collector's region chaining exactly: each region starts at the
// previous close's marker and end count, and the trailing open region is
// emitted only if it holds filtered work (or no region closed at all).
func StitchProfile(p *isa.Program, pieces [][]Piece, closes []CloseAt, markerCounts map[uint64]uint64, totFiltered, totICount uint64) *Profile {
	st := NewStitcher(p)
	ci := 0
	for k, shard := range pieces {
		first := ci
		for ci < len(closes) && ci-first < len(shard)-1 {
			if closes[ci].Shard != k {
				panic(fmt.Sprintf("bbv: stitch desync: close %d belongs to shard %d, stitching shard %d", ci, closes[ci].Shard, k))
			}
			ci++
		}
		st.Feed(shard, closes[first:ci])
	}
	if ci != len(closes) {
		panic(fmt.Sprintf("bbv: stitch desync: %d of %d closes consumed", ci, len(closes)))
	}
	return st.Finish(p, markerCounts, totFiltered, totICount)
}

func sortedAddrs(m map[uint64]bool) []uint64 {
	pcs := make([]uint64, 0, len(m))
	for a := range m {
		pcs = append(pcs, a)
	}
	sort.Slice(pcs, func(i, j int) bool { return pcs[i] < pcs[j] })
	return pcs
}
