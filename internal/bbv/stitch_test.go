package bbv_test

import (
	"encoding/json"
	"reflect"
	"testing"

	"looppoint/internal/bbv"
)

// TestStitcherResumeIdentity interrupts the incremental decide/stitch
// chain at every shard boundary with a JSON round-trip of the Decider
// and Stitcher states — the exact persistence the durable analysis loop
// performs — and requires the final profile to deep-equal the batch
// StitchProfile result (itself pinned to the serial Collector).
func TestStitcherResumeIdentity(t *testing.T) {
	for name, w := range shardRecordings(t) {
		t.Run(name, func(t *testing.T) {
			markers := loopMarkers(t, w.prog)
			target := uint64(60 * w.prog.NumThreads())
			total := w.pb.Schedule.Steps()
			every := total / 6
			if every == 0 {
				t.Skip("recording too short")
			}
			cks, err := w.pb.Checkpoints(w.prog, every)
			if err != nil {
				t.Fatal(err)
			}
			width := func(k int) uint64 {
				if k < len(cks)-1 {
					return cks[k+1].Step - cks[k].Step
				}
				return total - cks[k].Step
			}
			scans := make([]*bbv.ShardScan, len(cks))
			for k, ck := range cks {
				sc := bbv.NewScanner(markers, false)
				if _, err := w.pb.ReplayWindow(w.prog, ck, width(k), sc); err != nil {
					t.Fatal(err)
				}
				scans[k] = sc.Scan()
			}
			closes, markerCounts, totFiltered, totICount := bbv.DecideCloses(scans, target, nil)
			pieces := make([][]bbv.Piece, len(cks))
			for k, ck := range cks {
				ac := bbv.NewAccumulator(w.prog, markers, bbv.ClosesForShard(closes, k), false)
				if _, err := w.pb.ReplayWindow(w.prog, ck, width(k), ac); err != nil {
					t.Fatal(err)
				}
				pieces[k] = ac.Pieces()
			}
			want := bbv.StitchProfile(w.prog, pieces, closes, markerCounts, totFiltered, totICount)

			// Incremental chain with a crash-and-restore at every boundary.
			d := bbv.NewDecider(target, nil)
			st := bbv.NewStitcher(w.prog)
			for k := range cks {
				shardCloses := d.Feed(scans[k])
				st.Feed(pieces[k], shardCloses)

				dBlob, err := json.Marshal(d.State())
				if err != nil {
					t.Fatal(err)
				}
				sBlob, err := json.Marshal(st.State())
				if err != nil {
					t.Fatal(err)
				}
				var ds bbv.DeciderState
				if err := json.Unmarshal(dBlob, &ds); err != nil {
					t.Fatal(err)
				}
				var ss bbv.StitcherState
				if err := json.Unmarshal(sBlob, &ss); err != nil {
					t.Fatal(err)
				}
				if d, err = bbv.RestoreDecider(target, nil, &ds); err != nil {
					t.Fatal(err)
				}
				if st, err = ss.RestoreStitcher(w.prog); err != nil {
					t.Fatal(err)
				}
			}
			totF, totI := d.Totals()
			got := st.Finish(w.prog, d.MarkerCounts(), totF, totI)
			if !reflect.DeepEqual(got, want) {
				t.Fatal("resumed incremental stitch differs from batch StitchProfile")
			}
		})
	}
}

// TestStitcherStateValidation feeds hostile stitcher states and requires
// errors, never panics.
func TestStitcherStateValidation(t *testing.T) {
	for _, w := range shardRecordings(t) {
		nt := w.prog.NumThreads()
		bad := []bbv.StitcherState{
			{NumThreads: nt + 1, Cur: &bbv.Region{}},
			{NumThreads: nt},
			{NumThreads: nt, Cur: &bbv.Region{}},
			{NumThreads: nt, Regions: []*bbv.Region{nil}, Cur: &bbv.Region{ThreadFiltered: make([]uint64, nt), Vectors: make([]map[int]float64, nt)}},
		}
		for i, st := range bad {
			if _, err := st.RestoreStitcher(w.prog); err == nil {
				t.Fatalf("hostile stitcher state %d accepted", i)
			}
		}
		if _, err := bbv.RestoreDecider(0, nil, &bbv.DeciderState{}); err == nil {
			t.Fatal("zero slice target accepted")
		}
		break
	}
}
