// Package testprog builds small mini-ISA programs used by tests across
// the repository: multi-phase OpenMP-style kernels with barriers, locks,
// and heterogeneous thread behaviour. Production workloads live in
// internal/workloads; these are deliberately tiny.
package testprog

import (
	"fmt"

	"looppoint/internal/isa"
	"looppoint/internal/omp"
)

// Phased builds an nthreads-thread program with two distinct compute
// phases separated by barriers, repeated for timesteps iterations. All
// threads run the same routine (as compiled OpenMP code would),
// parameterized by the tid register, so loop-header PCs are shared.
// Phase 1 is integer stores, phase 2 float FMAs; the outer timestep loop
// header is a natural region marker.
func Phased(nthreads int, timesteps, iters int64, policy omp.WaitPolicy) *isa.Program {
	p, _ := PhasedWithRuntime(nthreads, timesteps, iters, policy)
	return p
}

// PhasedWithRuntime is Phased, also returning the threading runtime so
// callers can reach runtime metadata such as the barrier-release marker.
func PhasedWithRuntime(nthreads int, timesteps, iters int64, policy omp.WaitPolicy) (*isa.Program, *omp.Runtime) {
	p := isa.NewProgram(fmt.Sprintf("phased-%dt", nthreads), nthreads)
	arr := p.Alloc("arr", uint64(nthreads)*uint64(iters))
	main := p.AddImage("main", false)
	rt := omp.New(p, policy)
	bar := rt.NewBarrier("step")

	r := main.NewRoutine("thread_main")
	entry := r.NewBlock("entry")
	step := r.NewBlock("timestep")
	l1 := r.NewBlock("phase1_loop")
	mid := r.NewBlock("mid")
	l2 := r.NewBlock("phase2_loop")
	latch := r.NewBlock("latch")
	done := r.NewBlock("done")

	entry.IMovI(5, iters)
	entry.IOp(isa.OpIMul, 5, isa.RegTid, 5)
	entry.IOpI(isa.OpIAdd, 5, 5, int64(arr))
	entry.IMovI(0, 0)
	entry.Br(step)
	step.IMovI(1, 0)
	step.IMov(2, 5)
	step.Br(l1)
	l1.IOp(isa.OpIAdd, 3, 1, 1)
	l1.IOp(isa.OpIAdd, 4, 2, 1)
	l1.IStore(4, 0, 3)
	l1.IOpI(isa.OpIAdd, 1, 1, 1)
	l1.BrCondI(isa.CondLT, 1, iters, l1, mid)
	rt.EmitBarrier(mid, bar)
	mid.IMovI(1, 0)
	mid.Br(l2)
	l2.IOp(isa.OpIAdd, 4, 2, 1)
	l2.FLoad(0, 4, 0)
	l2.FMA(1, 0, 0)
	l2.IOpI(isa.OpIAdd, 1, 1, 1)
	l2.BrCondI(isa.CondLT, 1, iters, l2, latch)
	rt.EmitBarrier(latch, bar)
	latch.IOpI(isa.OpIAdd, 0, 0, 1)
	latch.BrCondI(isa.CondLT, 0, timesteps, step, done)
	done.Halt()
	for tid := 0; tid < nthreads; tid++ {
		p.SetEntry(tid, r)
	}
	if err := p.Link(); err != nil {
		panic(err)
	}
	return p, rt
}

// WithSyscalls builds a single-routine multi-threaded program in which
// every thread mixes compute with SysRand syscalls whose results feed the
// computation — replay only reproduces it with injection.
func WithSyscalls(nthreads int, iters int64, policy omp.WaitPolicy) *isa.Program {
	p := isa.NewProgram(fmt.Sprintf("sys-%dt", nthreads), nthreads)
	out := p.Alloc("out", uint64(nthreads))
	main := p.AddImage("main", false)
	rt := omp.New(p, policy)
	bar := rt.NewBarrier("join")

	r := main.NewRoutine("thread_main")
	entry := r.NewBlock("entry")
	loop := r.NewBlock("loop")
	done := r.NewBlock("done")
	entry.IMovI(0, 0)
	entry.IMovI(1, 0) // accumulator
	entry.Br(loop)
	loop.Syscall(2, isa.SysRand, 0)
	loop.IOpI(isa.OpIRem, 2, 2, 97)
	loop.IOp(isa.OpIAdd, 1, 1, 2)
	loop.IOpI(isa.OpIAdd, 0, 0, 1)
	loop.BrCondI(isa.CondLT, 0, iters, loop, done)
	done.IOpI(isa.OpIAdd, 3, isa.RegTid, int64(out))
	done.IStore(3, 0, 1)
	rt.EmitBarrier(done, bar)
	done.Halt()
	for tid := 0; tid < nthreads; tid++ {
		p.SetEntry(tid, r)
	}
	if err := p.Link(); err != nil {
		panic(err)
	}
	return p
}

// OutAddr returns the per-thread output cell address of WithSyscalls.
func OutAddr(p *isa.Program, tid int) uint64 {
	a, ok := p.Symbol("out")
	if !ok {
		panic("testprog: program has no out symbol")
	}
	return a + uint64(tid)
}

// Heterogeneous builds a program where thread workloads are deliberately
// unbalanced (thread t executes (t+1)× the inner iterations), mimicking
// 657.xz_s.2's non-homogeneous behaviour (paper Figure 3).
func Heterogeneous(nthreads int, timesteps, iters int64, policy omp.WaitPolicy) *isa.Program {
	p := isa.NewProgram(fmt.Sprintf("hetero-%dt", nthreads), nthreads)
	arr := p.Alloc("arr", uint64(nthreads)*uint64(iters)*uint64(nthreads))
	main := p.AddImage("main", false)
	rt := omp.New(p, policy)
	bar := rt.NewBarrier("step")

	r := main.NewRoutine("thread_main")
	entry := r.NewBlock("entry")
	step := r.NewBlock("timestep")
	loop := r.NewBlock("work_loop")
	latch := r.NewBlock("latch")
	done := r.NewBlock("done")

	// bound = (tid+1) * iters ; base = arr + tid*iters*nthreads
	entry.IOpI(isa.OpIAdd, 6, isa.RegTid, 1)
	entry.IMovI(7, iters)
	entry.IOp(isa.OpIMul, 6, 6, 7)
	entry.IMovI(7, iters*int64(nthreads))
	entry.IOp(isa.OpIMul, 5, isa.RegTid, 7)
	entry.IOpI(isa.OpIAdd, 5, 5, int64(arr))
	entry.IMovI(0, 0)
	entry.Br(step)
	step.IMovI(1, 0)
	step.Br(loop)
	loop.IOp(isa.OpIAdd, 4, 5, 1)
	loop.ILoad(3, 4, 0)
	loop.IOpI(isa.OpIAdd, 3, 3, 7)
	loop.IStore(4, 0, 3)
	loop.IOpI(isa.OpIAdd, 1, 1, 1)
	loop.BrCond(isa.CondLT, 1, 6, loop, latch)
	rt.EmitBarrier(latch, bar)
	latch.IOpI(isa.OpIAdd, 0, 0, 1)
	latch.BrCondI(isa.CondLT, 0, timesteps, step, done)
	done.Halt()
	for tid := 0; tid < nthreads; tid++ {
		p.SetEntry(tid, r)
	}
	if err := p.Link(); err != nil {
		panic(err)
	}
	return p
}
