package baselines

import (
	"errors"
	"testing"

	"looppoint/internal/core"
	"looppoint/internal/isa"
	"looppoint/internal/omp"
	"looppoint/internal/testprog"
	"looppoint/internal/timing"
)

func testConfig() core.Config {
	cfg := core.DefaultConfig()
	cfg.SliceUnit = 1500
	cfg.FlowWindow = 512
	return cfg
}

func TestBarrierPointRegionsMatchBarrierCount(t *testing.T) {
	const timesteps = 8
	p, rt := testprog.PhasedWithRuntime(4, timesteps, 150, omp.Passive)
	a, err := AnalyzeBarrierPoint(p, rt.BarrierReleaseAddr(), testConfig())
	if err != nil {
		t.Fatalf("AnalyzeBarrierPoint: %v", err)
	}
	// Two barriers per timestep -> 2*timesteps releases; regions are the
	// spans between releases plus the trailing region to program end.
	want := 2*timesteps + 1
	if got := len(a.Profile.Regions); got != want {
		t.Errorf("inter-barrier regions = %d, want %d", got, want)
	}
	st := RegionStats(a)
	if st.LargestRegion == 0 || st.MeanRegion == 0 {
		t.Error("empty region stats")
	}
	if st.TotalFiltered != a.Profile.TotalFiltered {
		t.Error("stats total mismatch")
	}
}

func TestBarrierPointSelectAndExtrapolate(t *testing.T) {
	p, rt := testprog.PhasedWithRuntime(4, 10, 150, omp.Passive)
	a, err := AnalyzeBarrierPoint(p, rt.BarrierReleaseAddr(), testConfig())
	if err != nil {
		t.Fatal(err)
	}
	sel, err := SelectBarrierPoint(a)
	if err != nil {
		t.Fatal(err)
	}
	if len(sel.Points) == 0 || len(sel.Points) >= len(a.Profile.Regions) {
		t.Fatalf("barrierpoint selected %d of %d regions", len(sel.Points), len(a.Profile.Regions))
	}
	sp := core.ComputeTheoretical(sel)
	if sp.TheoreticalSerial <= 1 || sp.TheoreticalParallel < sp.TheoreticalSerial {
		t.Errorf("implausible barrierpoint speedups: %+v", sp)
	}
}

// barrierFree builds a multi-threaded program with no barriers at all
// (the 657.xz_s case where BarrierPoint is inapplicable).
func barrierFree(nthreads int) (*isa.Program, uint64) {
	p := isa.NewProgram("nobarrier", nthreads)
	arr := p.Alloc("arr", 1024)
	main := p.AddImage("main", false)
	rt := omp.New(p, omp.Passive)
	r := main.NewRoutine("thread_main")
	entry := r.NewBlock("entry")
	loop := r.NewBlock("loop")
	done := r.NewBlock("done")
	entry.IMovI(0, 0)
	entry.Br(loop)
	loop.IOpI(isa.OpIAnd, 1, 0, 1023)
	loop.IOpI(isa.OpIAdd, 1, 1, int64(arr))
	loop.ILoad(2, 1, 0)
	loop.IOpI(isa.OpIAdd, 2, 2, 1)
	loop.IStore(1, 0, 2)
	loop.IOpI(isa.OpIAdd, 0, 0, 1)
	loop.BrCondI(isa.CondLT, 0, 5000, loop, done)
	done.Halt()
	for tid := 0; tid < nthreads; tid++ {
		p.SetEntry(tid, r)
	}
	if err := p.Link(); err != nil {
		panic(err)
	}
	return p, rt.BarrierReleaseAddr()
}

func TestBarrierPointInapplicableWithoutBarriers(t *testing.T) {
	p, release := barrierFree(2)
	_, err := AnalyzeBarrierPoint(p, release, testConfig())
	if !errors.Is(err, ErrNoBarriers) {
		t.Fatalf("err = %v, want ErrNoBarriers", err)
	}
}

func TestNaiveSimPointProfilesOnRawICount(t *testing.T) {
	p := testprog.Phased(4, 10, 150, omp.Active)
	a, err := NaiveSimPointAnalysis(p, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Naive slicing counts spin instructions as work.
	if a.Profile.TotalFiltered != a.Profile.TotalICount {
		t.Errorf("naive profile filtered %d != total %d (spin filtering should be off)",
			a.Profile.TotalFiltered, a.Profile.TotalICount)
	}
	for i, r := range a.Profile.Regions[:len(a.Profile.Regions)-1] {
		if !r.End.IsICount() {
			t.Errorf("region %d boundary %v is not an icount marker", i, r.End)
		}
	}
	if _, err := SelectNaive(a); err != nil {
		t.Fatal(err)
	}
}

func TestNaiveWorseThanLoopPointOnActive(t *testing.T) {
	// Section II's motivating measurement: the naive adaptation's error
	// on active-wait workloads far exceeds LoopPoint's. Heterogeneous
	// work + active spinning is its worst case.
	p1 := testprog.Heterogeneous(4, 12, 180, omp.Active)
	lp, err := core.Run(p1, testConfig(), timing.Gainestown(4), core.RunOpts{SimulateFull: true, Parallel: true})
	if err != nil {
		t.Fatal(err)
	}

	p2 := testprog.Heterogeneous(4, 12, 180, omp.Active)
	na, err := NaiveSimPointAnalysis(p2, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	nsel, err := SelectNaive(na)
	if err != nil {
		t.Fatal(err)
	}
	nres, err := core.SimulateRegions(nsel, timing.Gainestown(4), true)
	if err != nil {
		t.Fatal(err)
	}
	npred := core.Extrapolate(nres, 2.66)
	sim, err := timing.New(timing.Gainestown(4), p2)
	if err != nil {
		t.Fatal(err)
	}
	full, err := sim.SimulateFull()
	if err != nil {
		t.Fatal(err)
	}
	nerr := core.PercentError(npred.Seconds, full.RuntimeSeconds())

	t.Logf("LoopPoint err %.2f%%, naive err %.2f%%", lp.RuntimeErrPct, nerr)
	if lp.RuntimeErrPct > 15 {
		t.Errorf("LoopPoint error %.2f%% too high", lp.RuntimeErrPct)
	}
	if nerr < lp.RuntimeErrPct {
		t.Errorf("naive SimPoint (%.2f%%) outperformed LoopPoint (%.2f%%) on its worst case",
			nerr, lp.RuntimeErrPct)
	}
}

func TestTimeBasedSampling(t *testing.T) {
	p := testprog.Phased(4, 8, 150, omp.Passive)
	st, err := TimeBased(p, timing.Gainestown(4), 2000, 10000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if st.Cycles <= 0 {
		t.Fatal("no extrapolated cycles")
	}
	// Compare against full simulation: periodic sampling with warming
	// should land within a reasonable band.
	p2 := testprog.Phased(4, 8, 150, omp.Passive)
	sim, err := timing.New(timing.Gainestown(4), p2)
	if err != nil {
		t.Fatal(err)
	}
	full, err := sim.SimulateFull()
	if err != nil {
		t.Fatal(err)
	}
	if e := core.PercentError(st.Cycles, full.Cycles); e > 25 {
		t.Errorf("time-based extrapolation error %.2f%% too high", e)
	}
}

func TestSimCostModel(t *testing.T) {
	m := DefaultCostModel()
	total := 1e12 // a ref-sized app
	full := m.FullDetail(total)
	tb := m.TimeBasedTime(total, 0.01)
	par := m.SampledParallelTime(1e8)
	ser := m.SampledSerialTime(1e9)
	if full <= tb || tb <= par {
		t.Errorf("cost ordering violated: full %.0f, time-based %.0f, sampled-parallel %.0f", full, tb, par)
	}
	if ser <= par {
		t.Errorf("serial %.0f not slower than parallel %.0f", ser, par)
	}
	// Time-based is bounded by fast-forwarding the whole app.
	if tb < total/(m.FFwdMIPS*1e6) {
		t.Error("time-based cost below pure fast-forward floor")
	}
}
