package baselines

import (
	"testing"

	"looppoint/internal/core"
	"looppoint/internal/omp"
	"looppoint/internal/testprog"
)

func TestHybridPicksBetterMethodology(t *testing.T) {
	// A barrier-dense application: BarrierPoint's many small regions
	// should give it a fighting chance; either way the hybrid's choice
	// must have the max of the two serial speedups.
	p, rt := testprog.PhasedWithRuntime(4, 16, 120, omp.Passive)
	res, err := AnalyzeHybrid(p, rt.BarrierReleaseAddr(), testConfig())
	if err != nil {
		t.Fatalf("AnalyzeHybrid: %v", err)
	}
	if !res.BarrierPointApplicable {
		t.Fatal("barriered app reported as barrier-free")
	}
	best := res.LoopPoint.TheoreticalSerial
	if res.BarrierPoint.TheoreticalSerial > best {
		best = res.BarrierPoint.TheoreticalSerial
		if res.Choice != ChoseBarrierPoint {
			t.Errorf("hybrid chose %s despite BarrierPoint being faster", res.Choice)
		}
	} else if res.Choice != ChoseLoopPoint {
		t.Errorf("hybrid chose %s despite LoopPoint being faster", res.Choice)
	}
	if got := core.ComputeTheoretical(res.Selection).TheoreticalSerial; got != best {
		t.Errorf("chosen selection speedup %.2f != best %.2f", got, best)
	}
}

func TestHybridFallsBackWithoutBarriers(t *testing.T) {
	p, release := barrierFree(4)
	res, err := AnalyzeHybrid(p, release, testConfig())
	if err != nil {
		t.Fatalf("AnalyzeHybrid: %v", err)
	}
	if res.Choice != ChoseLoopPoint {
		t.Errorf("barrier-free app chose %s", res.Choice)
	}
	if res.BarrierPointApplicable {
		t.Error("BarrierPoint reported applicable without barriers")
	}
	if res.Selection == nil || len(res.Selection.Points) == 0 {
		t.Error("no selection")
	}
}
