package baselines

import (
	"errors"
	"fmt"

	"looppoint/internal/core"
	"looppoint/internal/isa"
)

// Hybrid implements the combination the paper's Section V-B suggests:
// "a hybrid approach can be chosen to speed up smaller applications" —
// BarrierPoint outperforms LoopPoint on applications with many small
// inter-barrier regions, LoopPoint covers everything else (including
// barrier-free programs). The hybrid analyzes with both methodologies
// and keeps whichever yields the higher theoretical serial speedup.

// HybridChoice names the methodology the hybrid picked.
type HybridChoice string

// Hybrid outcomes.
const (
	ChoseLoopPoint    HybridChoice = "looppoint"
	ChoseBarrierPoint HybridChoice = "barrierpoint"
)

// HybridResult is the outcome of a hybrid analysis.
type HybridResult struct {
	Choice    HybridChoice
	Selection *core.Selection
	// Speedups of both candidates, for reporting.
	LoopPoint    core.Speedups
	BarrierPoint core.Speedups
	// BarrierPointApplicable is false for barrier-free applications.
	BarrierPointApplicable bool
}

// AnalyzeHybrid runs both methodologies and selects the better sample.
func AnalyzeHybrid(prog *isa.Program, barrierRelease uint64, cfg core.Config) (*HybridResult, error) {
	a, err := core.Analyze(prog, cfg)
	if err != nil {
		return nil, err
	}
	lpSel, err := core.Select(a)
	if err != nil {
		return nil, err
	}
	res := &HybridResult{
		Choice:    ChoseLoopPoint,
		Selection: lpSel,
		LoopPoint: core.ComputeTheoretical(lpSel),
	}

	bpa, err := AnalyzeBarrierPoint(prog, barrierRelease, cfg)
	switch {
	case errors.Is(err, ErrNoBarriers):
		return res, nil // LoopPoint is the only option
	case err != nil:
		return nil, fmt.Errorf("baselines: hybrid: %w", err)
	}
	bpSel, err := SelectBarrierPoint(bpa)
	if err != nil {
		return nil, err
	}
	res.BarrierPointApplicable = true
	res.BarrierPoint = core.ComputeTheoretical(bpSel)

	if res.BarrierPoint.TheoreticalSerial > res.LoopPoint.TheoreticalSerial {
		res.Choice = ChoseBarrierPoint
		res.Selection = bpSel
	}
	return res, nil
}
