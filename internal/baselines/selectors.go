package baselines

import (
	"fmt"

	"looppoint/internal/simpoint"
)

// The prior-work baselines are registered as selection engines beside
// "simpoint" and "stratified", so the -selector flag (and the harness
// engine-comparison experiment) can address every methodology through
// one interface:
//
//   - "barrierpoint": the BarrierPoint selection rule. Identical to the
//     SimPoint medoid rule — BarrierPoint's novelty is the region
//     definition (inter-barrier regions, see AnalyzeBarrierPoint), not
//     the draw — so the engine delegates to simpoint.SimPointSelector
//     and exists to make barrier-profiled analyses addressable by name.
//   - "timebased": periodic sampling. The region list is cut into
//     Budget contiguous segments and the first region of each segment is
//     simulated in detail, weighted by its segment's work — the
//     detail-window-every-period scheme of the time-based baseline,
//     expressed over profiled regions. No clustering is involved
//     (Selection.Result is nil) and every stratum holds one draw, so
//     like the medoid rule it yields a point estimate.

func init() {
	simpoint.RegisterSelector("barrierpoint", func() simpoint.Selector { return BarrierPointSelector{} })
	simpoint.RegisterSelector("timebased", func() simpoint.Selector { return TimeBasedSelector{} })
}

// DefaultTimeBasedSegments is the segment count the time-based engine
// uses when no budget is given.
const DefaultTimeBasedSegments = 10

// BarrierPointSelector applies the SimPoint medoid rule under the
// BarrierPoint name (the region definition upstream is what differs).
type BarrierPointSelector struct{}

// Name implements simpoint.Selector.
func (BarrierPointSelector) Name() string { return "barrierpoint" }

// Select implements simpoint.Selector.
func (BarrierPointSelector) Select(vectors [][]float64, weights []float64, copts simpoint.Options, sopts simpoint.SelectorOpts) (*simpoint.Selection, error) {
	sel, err := simpoint.SimPointSelector{}.Select(vectors, weights, copts, sopts)
	if err != nil {
		return nil, err
	}
	sel.Engine = "barrierpoint"
	return sel, nil
}

// TimeBasedSelector picks the first region of every fixed-length segment
// of the region timeline.
type TimeBasedSelector struct{}

// Name implements simpoint.Selector.
func (TimeBasedSelector) Name() string { return "timebased" }

// Select implements simpoint.Selector.
func (TimeBasedSelector) Select(vectors [][]float64, weights []float64, copts simpoint.Options, sopts simpoint.SelectorOpts) (*simpoint.Selection, error) {
	n := len(vectors)
	if n == 0 {
		return nil, fmt.Errorf("baselines: no regions to select from")
	}
	if len(weights) != n {
		return nil, fmt.Errorf("baselines: %d weights for %d regions", len(weights), n)
	}
	segments := sopts.Budget
	if segments <= 0 {
		segments = DefaultTimeBasedSegments
	}
	if segments > n {
		segments = n
	}
	// Segment h covers regions [h·n/segments, (h+1)·n/segments) — the
	// balanced split whose segment lengths differ by at most one.
	sel := &simpoint.Selection{Engine: "timebased"}
	for h := 0; h < segments; h++ {
		lo, hi := h*n/segments, (h+1)*n/segments
		st := simpoint.Stratum{Sampled: 1}
		for i := lo; i < hi; i++ {
			st.Members = append(st.Members, i)
			st.Work += weights[i]
		}
		sel.Strata = append(sel.Strata, st)
		sel.Regions = append(sel.Regions, simpoint.SelectedRegion{Index: lo, Stratum: h})
	}
	simpoint.NormalizeStrata(sel.Strata)
	simpoint.FinishSelection(sel)
	return sel, nil
}
