package baselines

import (
	"looppoint/internal/isa"
	"looppoint/internal/timing"
)

// TimeBased runs the time-based periodic-sampling baseline: detail
// instructions of every period are simulated in detail, the rest
// fast-forwards with functional warming, and the detail windows are
// extrapolated to the whole run.
func TimeBased(prog *isa.Program, simCfg timing.Config, detail, period, seed uint64) (*timing.Stats, error) {
	sim, err := timing.New(simCfg, prog)
	if err != nil {
		return nil, err
	}
	sim.Seed = seed
	return sim.SimulatePeriodic(detail, period)
}

// SimCostModel estimates wall-clock evaluation time for Figure 1: how
// long each methodology takes to evaluate an application of totalInstrs
// instructions given a detailed-simulation speed (KIPS) and a functional
// fast-forward speed, assuming unlimited parallel simulation resources
// (the longest region bounds the parallel time).
type SimCostModel struct {
	DetailKIPS float64 // detailed simulation speed (paper assumes 100 KIPS)
	FFwdMIPS   float64 // functional fast-forward / replay speed
}

// DefaultCostModel mirrors the paper's Figure 1 assumptions.
func DefaultCostModel() SimCostModel {
	return SimCostModel{DetailKIPS: 100, FFwdMIPS: 100}
}

// FullDetail returns the seconds to simulate everything in detail.
func (c SimCostModel) FullDetail(totalInstrs float64) float64 {
	return totalInstrs / (c.DetailKIPS * 1e3)
}

// TimeBasedTime returns the seconds for time-based sampling with the
// given detail fraction: the detail windows run at detailed speed and the
// entire remainder must still be fast-forwarded.
func (c SimCostModel) TimeBasedTime(totalInstrs, detailFraction float64) float64 {
	detail := totalInstrs * detailFraction / (c.DetailKIPS * 1e3)
	ffwd := totalInstrs * (1 - detailFraction) / (c.FFwdMIPS * 1e6)
	return detail + ffwd
}

// SampledParallelTime returns the seconds to simulate a checkpointed
// sample whose largest region has largestRegion instructions (parallel
// simulation: the longest region determines time-to-results).
func (c SimCostModel) SampledParallelTime(largestRegion float64) float64 {
	return largestRegion / (c.DetailKIPS * 1e3)
}

// SampledSerialTime returns the seconds to simulate all sampled regions
// back to back.
func (c SimCostModel) SampledSerialTime(totalSampled float64) float64 {
	return totalSampled / (c.DetailKIPS * 1e3)
}
