// Package baselines implements the prior-work sampling methodologies the
// paper compares against: BarrierPoint (inter-barrier regions as the unit
// of work), the naive multi-threaded SimPoint adaptation (fixed global
// instruction-count slices, summed BBVs, no spin filtering), and
// time-based periodic sampling.
package baselines

import (
	"fmt"

	"looppoint/internal/bbv"
	"looppoint/internal/core"
	"looppoint/internal/isa"
	"looppoint/internal/simpoint"
)

// ErrNoBarriers is returned for applications without barriers, where
// BarrierPoint is inapplicable (e.g. 657.xz_s — paper Section V-B).
var ErrNoBarriers = fmt.Errorf("baselines: application has no barriers; BarrierPoint not applicable")

// AnalyzeBarrierPoint profiles the program with inter-barrier regions as
// the unit of work: every global barrier release ends a region. The
// barrier-release address comes from the threading runtime (the paper's
// implementation hooks the OpenMP runtime's barrier callback the same
// way).
func AnalyzeBarrierPoint(prog *isa.Program, barrierRelease uint64, cfg core.Config) (*core.Analysis, error) {
	a, err := core.Analyze(prog, cfg) // records the pinball, finds loops
	if err != nil {
		return nil, err
	}
	// Re-profile with barrier releases as the only markers and a slice
	// budget of one instruction: every release closes a region.
	col := bbv.NewCollector(prog, []uint64{barrierRelease}, 1)
	if _, err := a.Pinball.Replay(prog, col); err != nil {
		return nil, fmt.Errorf("baselines: barrierpoint profile: %w", err)
	}
	prof := col.Finish()
	if len(prof.Regions) <= 1 {
		return nil, ErrNoBarriers
	}
	return &core.Analysis{
		Prog:    prog,
		Pinball: a.Pinball,
		Graph:   a.Graph,
		Loops:   a.Loops,
		Markers: []uint64{barrierRelease},
		Profile: prof,
		Config:  cfg,
	}, nil
}

// BarrierPointStats summarizes inter-barrier region structure — the
// quantity Figure 1 plots against input size (region growth is what makes
// BarrierPoint impractical for large inputs).
type BarrierPointStats struct {
	Regions       int
	LargestRegion uint64 // filtered instructions
	MeanRegion    float64
	TotalFiltered uint64
}

// RegionStats summarizes the inter-barrier regions of an analysis.
func RegionStats(a *core.Analysis) BarrierPointStats {
	s := BarrierPointStats{Regions: len(a.Profile.Regions), TotalFiltered: a.Profile.TotalFiltered}
	for _, r := range a.Profile.Regions {
		if r.Filtered > s.LargestRegion {
			s.LargestRegion = r.Filtered
		}
	}
	if s.Regions > 0 {
		s.MeanRegion = float64(s.TotalFiltered) / float64(s.Regions)
	}
	return s
}

// SelectBarrierPoint clusters inter-barrier regions and picks
// representatives, exactly as LoopPoint does for loop-bounded regions.
func SelectBarrierPoint(a *core.Analysis) (*core.Selection, error) {
	return core.Select(a)
}

// NaiveSimPointAnalysis profiles with the naive multi-threaded SimPoint
// adaptation of Section II: fixed-size slices counted in *global
// unfiltered* instructions (spin-loops included), per-thread BBVs summed
// rather than concatenated. Active-wait runs mislead it badly (the paper
// measures up to 68.44% error).
func NaiveSimPointAnalysis(prog *isa.Program, cfg core.Config) (*core.Analysis, error) {
	cfg.NoSpinFilter = true
	cfg.SumBBVs = true
	a, err := core.Analyze(prog, cfg)
	if err != nil {
		return nil, err
	}
	// Re-profile on fixed instruction counts: no markers, straight
	// icount slicing.
	col := bbv.NewCollector(prog, nil, cfg.SliceUnit*uint64(prog.NumThreads()))
	col.DisableSyncFilter()
	col.SliceOnICount()
	if _, err := a.Pinball.Replay(prog, col); err != nil {
		return nil, fmt.Errorf("baselines: naive profile: %w", err)
	}
	a.Profile = col.Finish()
	a.Markers = nil
	return a, nil
}

// SelectNaive clusters the naive profile with summed projections.
func SelectNaive(a *core.Analysis) (*core.Selection, error) {
	return core.Select(a)
}

var _ = simpoint.DefaultDims // simpoint is consumed through core.Select
