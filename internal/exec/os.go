package exec

import "looppoint/internal/isa"

// OS models the operating system visible to programs through OpSyscall.
// Syscall results are the only source of non-determinism in the machine;
// pinball recording captures them and replay injects them (paper
// Section IV-C: "System calls are skipped and their side-effects are
// injected").
type OS interface {
	Syscall(m *Machine, tid int, no isa.SyscallNo, arg int64) int64
}

// StatefulOS is implemented by OS models whose results depend on
// internal state that a mid-run Snapshot must carry for a later Restore
// to continue byte-identically. SnapshotOS exports that state as an
// opaque word slice; RestoreOS loads a slice previously exported by the
// same kind of OS. The encoding is private to each implementation, so
// state must only ever be poured back into the OS kind that produced it
// (Machine.Restore leaves mismatched kinds alone only in the trivial
// sense that callers are expected to install the right OS first).
type StatefulOS interface {
	SnapshotOS() []uint64
	RestoreOS(state []uint64)
}

// DefaultOS is a deterministic OS model: SysRand draws from a seeded
// xorshift generator (per-machine, shared across threads, so results
// depend on scheduling order — exactly the kind of side effect a pinball
// must capture), SysTime is a monotonic tick, SysWrite discards output.
type DefaultOS struct {
	rng  uint64
	tick int64
}

// NewDefaultOS returns a DefaultOS seeded with seed.
func NewDefaultOS(seed uint64) *DefaultOS {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &DefaultOS{rng: seed}
}

// Syscall implements OS.
func (o *DefaultOS) Syscall(m *Machine, tid int, no isa.SyscallNo, arg int64) int64 {
	switch no {
	case isa.SysRand:
		o.rng ^= o.rng << 13
		o.rng ^= o.rng >> 7
		o.rng ^= o.rng << 17
		return int64(o.rng >> 1)
	case isa.SysTime:
		o.tick++
		return o.tick
	case isa.SysWrite:
		return arg
	}
	return -1
}

// SnapshotOS implements StatefulOS: the xorshift state and the tick.
func (o *DefaultOS) SnapshotOS() []uint64 { return []uint64{o.rng, uint64(o.tick)} }

// RestoreOS implements StatefulOS.
func (o *DefaultOS) RestoreOS(state []uint64) {
	if len(state) >= 2 {
		o.rng, o.tick = state[0], int64(state[1])
	}
}

// RecordingOS wraps an OS and logs every result per thread, producing the
// injection log stored in a pinball.
type RecordingOS struct {
	Inner OS
	Log   [][]int64 // per-thread result sequences
}

// NewRecordingOS wraps inner for an nthreads-thread machine.
func NewRecordingOS(inner OS, nthreads int) *RecordingOS {
	return &RecordingOS{Inner: inner, Log: make([][]int64, nthreads)}
}

// Syscall implements OS.
func (o *RecordingOS) Syscall(m *Machine, tid int, no isa.SyscallNo, arg int64) int64 {
	r := o.Inner.Syscall(m, tid, no, arg)
	o.Log[tid] = append(o.Log[tid], r)
	return r
}

// SnapshotOS implements StatefulOS by delegating to the wrapped OS. The
// log itself is not state to carry: a recording resumed from a snapshot
// appends to whatever log the caller handed it.
func (o *RecordingOS) SnapshotOS() []uint64 {
	if so, ok := o.Inner.(StatefulOS); ok {
		return so.SnapshotOS()
	}
	return nil
}

// RestoreOS implements StatefulOS by delegating to the wrapped OS.
func (o *RecordingOS) RestoreOS(state []uint64) {
	if so, ok := o.Inner.(StatefulOS); ok {
		so.RestoreOS(state)
	}
}

// ReplayOS injects previously recorded syscall results. It fails loudly if
// a thread performs more syscalls than were recorded, which indicates the
// replayed execution diverged from the recording.
type ReplayOS struct {
	Log [][]int64
	pos []int
	// Diverged is set if injection ran dry; the machine keeps running on
	// a fallback value so callers can surface the error.
	Diverged bool
	// Fallback, when non-nil, answers syscalls after the log runs dry
	// instead of flagging divergence. Unconstrained simulation from a
	// checkpoint uses this: the recorded results cover the recorded
	// interleaving, but a timing-driven run may consume them in a
	// different per-thread split (ELFie-style execution).
	Fallback OS
}

// NewReplayOS builds a ReplayOS from a recorded per-thread log.
func NewReplayOS(log [][]int64) *ReplayOS {
	return &ReplayOS{Log: log, pos: make([]int, len(log))}
}

// NewReplayOSAt builds a ReplayOS whose per-thread injection cursors
// start at pos instead of zero — replaying a window of an execution from
// a mid-run snapshot resumes consuming each thread's log exactly where
// the snapshotted run left off. pos may be shorter than the log; missing
// cursors start at zero.
func NewReplayOSAt(log [][]int64, pos []int) *ReplayOS {
	o := &ReplayOS{Log: log, pos: make([]int, len(log))}
	copy(o.pos, pos)
	return o
}

// SnapshotOS implements StatefulOS: the per-thread injection cursors.
func (o *ReplayOS) SnapshotOS() []uint64 {
	state := make([]uint64, len(o.pos))
	for i, p := range o.pos {
		state[i] = uint64(p)
	}
	return state
}

// RestoreOS implements StatefulOS.
func (o *ReplayOS) RestoreOS(state []uint64) {
	if len(o.pos) != len(o.Log) {
		o.pos = make([]int, len(o.Log))
	}
	for i := range o.pos {
		if i < len(state) {
			o.pos[i] = int(state[i])
		} else {
			o.pos[i] = 0
		}
	}
}

// Positions returns a copy of the per-thread injection cursor, i.e. how
// many syscall results each thread has consumed so far.
func (o *ReplayOS) Positions() []int {
	return append([]int(nil), o.pos...)
}

// Syscall implements OS.
func (o *ReplayOS) Syscall(m *Machine, tid int, no isa.SyscallNo, arg int64) int64 {
	if tid >= len(o.Log) || o.pos[tid] >= len(o.Log[tid]) {
		if o.Fallback != nil {
			return o.Fallback.Syscall(m, tid, no, arg)
		}
		o.Diverged = true
		return 0
	}
	r := o.Log[tid][o.pos[tid]]
	o.pos[tid]++
	return r
}
