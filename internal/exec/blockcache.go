package exec

import (
	"math"

	"looppoint/internal/isa"
)

// decodedBlock caches the execution-relevant shape of one basic block so
// the fast path can decide, once per block entry, how to run it:
//
//   - aluLen is the length of the leading straight-line compute run
//     (register-only ALU/mov/FP work with no memory traffic, no control
//     transfer, and no OS interaction) which executes in a tight loop
//     with zero event bookkeeping;
//   - selfLoop marks blocks whose terminator can re-enter the block
//     through exactly one edge, making back-to-back passes coalescable
//     into a single event;
//   - brk marks registered break PCs: entries execute one instruction at
//     a time so (PC, count) markers fire at exact boundaries.
type decodedBlock struct {
	decoded   bool
	brk       bool
	aluLen    int
	selfLoop  bool
	selfTaken bool // BrCond outcome that re-enters the block (selfLoop && cond terminator)
}

// isComputeOp reports whether op is pure register work: no memory, no
// control transfer, no OS model, no futex queue. These are the only
// opcodes the tight compute loop may execute.
func isComputeOp(op isa.Op) bool {
	switch op {
	case isa.OpNop, isa.OpPause,
		isa.OpIAdd, isa.OpISub, isa.OpIMul, isa.OpIDiv, isa.OpIRem,
		isa.OpIAnd, isa.OpIOr, isa.OpIXor, isa.OpIShl, isa.OpIShr,
		isa.OpIMov, isa.OpFAdd, isa.OpFSub, isa.OpFMul, isa.OpFDiv,
		isa.OpFMov, isa.OpFMA, isa.OpFSqrt, isa.OpFCmp,
		isa.OpICvtF, isa.OpFCvtI:
		return true
	}
	return false
}

// decodeBlock fills d for blk. blkIdx is the block's index within its
// routine (the value terminator Target/Else fields refer to).
func decodeBlock(d *decodedBlock, blk *isa.Block, blkIdx int, brk bool) {
	d.decoded = true
	d.brk = brk
	d.aluLen = 0
	for i := range blk.Instrs {
		if !isComputeOp(blk.Instrs[i].Op) {
			break
		}
		d.aluLen++
	}
	d.selfLoop = false
	d.selfTaken = false
	term := &blk.Instrs[len(blk.Instrs)-1]
	switch term.Op {
	case isa.OpBr:
		d.selfLoop = term.Target == blkIdx
	case isa.OpBrCond:
		// Coalescable only when exactly one edge re-enters the block:
		// with Target == Else == blkIdx the outcome varies per pass and
		// every pass must end its event to record it.
		if term.Target == blkIdx && term.Else != blkIdx {
			d.selfLoop, d.selfTaken = true, true
		} else if term.Else == blkIdx && term.Target != blkIdx {
			d.selfLoop, d.selfTaken = true, false
		}
	}
}

// decodedFor returns the (lazily built) decode cache entry for blk on
// thread position (rt, blkIdx).
func (m *Machine) decodedFor(blk *isa.Block, blkIdx int) *decodedBlock {
	if m.dblocks == nil {
		m.dblocks = make([]decodedBlock, m.Prog.NumBlocks())
	}
	d := &m.dblocks[blk.Global]
	if !d.decoded {
		decodeBlock(d, blk, blkIdx, m.breakPCs[blk.Addr])
	}
	return d
}

// AddBreakPC registers the block address addr as a break PC: the block-
// batched fast path executes entries of that block one instruction at a
// time, each as its own single-instruction event, so observers watching
// a (PC, count) marker see the exact boundary a per-instruction run
// would. Registering a PC invalidates the decode cache (it is rebuilt
// lazily).
func (m *Machine) AddBreakPC(addr uint64) {
	if m.breakPCs == nil {
		m.breakPCs = make(map[uint64]bool)
	}
	if !m.breakPCs[addr] {
		m.breakPCs[addr] = true
		m.dblocks = nil
	}
}

// SetFastPath enables or disables the tight-loop block executor (enabled
// by default). When disabled, StepBlock assembles identical events by
// driving Step — the reference implementation equivalence tests compare
// against. Per-instruction observers also force the reference path, so
// mixed-tier observation stays exact.
func (m *Machine) SetFastPath(enabled bool) { m.fastDisabled = !enabled }

// StepBlock executes up to budget instructions of thread tid within its
// current basic block (coalescing consecutive self-loop passes) and
// fills ev with the batched result. It returns false without touching ev
// if the thread cannot run or budget is zero.
//
// An event ends at the earliest of: the budget; control leaving the
// block (including calls and returns); a conditional terminator whose
// outcome cannot be coalesced; a futex wait that parks the thread; a
// futex wake that unparks at least one thread; a halt; or a break-PC
// boundary. Entering a break-PC block always yields a single-instruction
// event. Thread state, memory, futex queues, OS interaction, ICount and
// the machine step counter advance exactly as an equivalent sequence of
// Step calls would, except that ICount/step totals are published at
// event end rather than per instruction.
func (m *Machine) StepBlock(tid int, budget uint64, ev *BlockEvent) bool {
	if m.fastDisabled || len(m.observers) > 0 {
		return m.stepBlockViaStep(tid, budget, ev)
	}
	t := m.Threads[tid]
	if t.State != StateRunning || budget == 0 {
		return false
	}
	cb := t.cur.blk
	blk := t.cur.rt.Blocks[cb]
	d := m.decodedFor(blk, cb)

	ev.reset(tid, blk, t.cur.idx)
	if t.cur.idx == 0 {
		ev.Entries = 1
		if d.brk {
			budget = 1
		}
	}

	L := len(blk.Instrs)
	var retired uint64
passes:
	for {
		idx := t.cur.idx
		if idx < d.aluLen {
			n := d.aluLen - idx
			if rem := budget - retired; uint64(n) > rem {
				n = int(rem)
			}
			execComputeRun(t, blk.Instrs[idx:idx+n])
			idx += n
			t.cur.idx = idx
			retired += uint64(n)
			if idx < d.aluLen { // budget exhausted inside the run
				break passes
			}
		}
		for idx < L {
			if retired == budget {
				t.cur.idx = idx
				break passes
			}
			in := &blk.Instrs[idx]
			retired++
			switch in.Op {
			case isa.OpNop, isa.OpPause:
				// nothing
			case isa.OpIAdd, isa.OpISub, isa.OpIMul, isa.OpIDiv, isa.OpIRem,
				isa.OpIAnd, isa.OpIOr, isa.OpIXor, isa.OpIShl, isa.OpIShr:
				b := t.R[in.B]
				if in.UseImm {
					b = in.Imm
				}
				t.R[in.Dst] = intALU(in.Op, t.R[in.A], b)
			case isa.OpIMov:
				if in.UseImm {
					t.R[in.Dst] = in.Imm
				} else {
					t.R[in.Dst] = t.R[in.A]
				}
			case isa.OpFAdd, isa.OpFSub, isa.OpFMul, isa.OpFDiv:
				t.F[in.Dst] = floatALU(in.Op, t.F[in.A], t.F[in.B])
			case isa.OpFMov:
				if in.UseImm {
					t.F[in.Dst] = in.FImm
				} else {
					t.F[in.Dst] = t.F[in.A]
				}
			case isa.OpFMA:
				t.F[in.Dst] = t.F[in.A]*t.F[in.B] + t.F[in.Dst]
			case isa.OpFSqrt:
				t.F[in.Dst] = math.Sqrt(t.F[in.A])
			case isa.OpFCmp:
				if in.Cond.EvalFloat(t.F[in.A], t.F[in.B]) {
					t.R[in.Dst] = 1
				} else {
					t.R[in.Dst] = 0
				}
			case isa.OpICvtF:
				t.F[in.Dst] = float64(t.R[in.A])
			case isa.OpFCvtI:
				t.R[in.Dst] = int64(t.F[in.A])

			case isa.OpILoad:
				a := m.effAddr(t, in)
				ev.Mem = append(ev.Mem, MemRef{Off: uint32(retired - 1), Kind: RefLoad, Addr: a * 8})
				t.R[in.Dst] = int64(m.Mem[a])
			case isa.OpIStore:
				a := m.effAddr(t, in)
				ev.Mem = append(ev.Mem, MemRef{Off: uint32(retired - 1), Kind: RefStore, Addr: a * 8})
				m.Mem[a] = uint64(t.R[in.B])
			case isa.OpFLoad:
				a := m.effAddr(t, in)
				ev.Mem = append(ev.Mem, MemRef{Off: uint32(retired - 1), Kind: RefLoad, Addr: a * 8})
				t.F[in.Dst] = math.Float64frombits(m.Mem[a])
			case isa.OpFStore:
				a := m.effAddr(t, in)
				ev.Mem = append(ev.Mem, MemRef{Off: uint32(retired - 1), Kind: RefStore, Addr: a * 8})
				m.Mem[a] = math.Float64bits(t.F[in.B])
			case isa.OpAtomicAdd:
				a := m.effAddr(t, in)
				ev.Mem = append(ev.Mem, MemRef{Off: uint32(retired - 1), Kind: RefAtomic, Addr: a * 8})
				old := int64(m.Mem[a])
				m.Mem[a] = uint64(old + t.R[in.B])
				t.R[in.Dst] = old
			case isa.OpCmpXchg:
				a := m.effAddr(t, in)
				ev.Mem = append(ev.Mem, MemRef{Off: uint32(retired - 1), Kind: RefAtomic, Addr: a * 8})
				if int64(m.Mem[a]) == t.R[in.B] {
					m.Mem[a] = uint64(t.R[in.Dst])
					t.R[in.Dst] = 1
				} else {
					t.R[in.Dst] = 0
				}
			case isa.OpXchg:
				a := m.effAddr(t, in)
				ev.Mem = append(ev.Mem, MemRef{Off: uint32(retired - 1), Kind: RefAtomic, Addr: a * 8})
				old := int64(m.Mem[a])
				m.Mem[a] = uint64(t.R[in.B])
				t.R[in.Dst] = old

			case isa.OpBr:
				t.cur.blk, t.cur.idx = in.Target, 0
				if in.Target == cb && !d.brk && retired < budget {
					ev.Entries++
					continue passes
				}
				break passes
			case isa.OpBrCond:
				b := t.R[in.B]
				if in.UseImm {
					b = in.Imm
				}
				taken := in.Cond.EvalInt(t.R[in.A], b)
				nxt := in.Else
				if taken {
					nxt = in.Target
				}
				t.cur.blk, t.cur.idx = nxt, 0
				if nxt == cb {
					ev.CondSelf++
					ev.SelfTaken = taken
					if d.selfLoop && !d.brk && retired < budget {
						ev.Entries++
						continue passes
					}
				} else {
					ev.CondExit, ev.ExitTaken = true, taken
				}
				break passes
			case isa.OpCall:
				t.stack = append(t.stack, frame{rt: t.cur.rt, blk: t.cur.blk, idx: idx + 1})
				t.cur = frame{rt: in.Callee}
				break passes
			case isa.OpRet:
				if len(t.stack) == 0 {
					throwf("exec: thread %d returned from entry routine %s", tid, t.cur.rt.Name)
				}
				t.cur = t.stack[len(t.stack)-1]
				t.stack = t.stack[:len(t.stack)-1]
				break passes
			case isa.OpHalt:
				t.State = StateHalted
				break passes

			case isa.OpFutexWait:
				a := m.effAddr(t, in)
				if int64(m.Mem[a]) == t.R[in.B] {
					t.State = StateBlocked
					t.futexAddr = a
					m.futexQ[a] = append(m.futexQ[a], tid)
					ev.Blocked = true
					t.cur.idx = idx // stay on the wait; wake resumes past it
					break passes
				}
			case isa.OpFutexWake:
				a := m.effAddr(t, in)
				n := t.R[in.B]
				woken := 0
				q := m.futexQ[a]
				for len(q) > 0 && int64(woken) < n {
					wid := q[0]
					q = q[1:]
					w := m.Threads[wid]
					w.State = StateRunning
					w.cur.idx++ // resume past the FutexWait
					ev.Woken = append(ev.Woken, wid)
					woken++
				}
				if len(q) == 0 {
					delete(m.futexQ, a)
				} else {
					m.futexQ[a] = q
				}
				t.R[in.Dst] = int64(woken)
				if woken > 0 {
					t.cur.idx = idx + 1
					break passes
				}
			case isa.OpSyscall:
				t.R[in.Dst] = m.OS.Syscall(m, tid, isa.SyscallNo(in.Imm), t.R[in.A])
			default:
				throwf("exec: unimplemented opcode %s", in.Op)
			}
			idx++
			t.cur.idx = idx
		}
	}
	ev.Instrs = retired
	t.ICount += retired
	m.steps += retired
	return true
}

// execComputeRun retires a straight-line run of register-only compute
// instructions. This is the interpreter's tightest loop: no event
// traffic, no memory checks, no control flow.
func execComputeRun(t *Thread, instrs []isa.Instr) {
	for i := range instrs {
		in := &instrs[i]
		switch in.Op {
		case isa.OpNop, isa.OpPause:
		case isa.OpIAdd, isa.OpISub, isa.OpIMul, isa.OpIDiv, isa.OpIRem,
			isa.OpIAnd, isa.OpIOr, isa.OpIXor, isa.OpIShl, isa.OpIShr:
			b := t.R[in.B]
			if in.UseImm {
				b = in.Imm
			}
			t.R[in.Dst] = intALU(in.Op, t.R[in.A], b)
		case isa.OpIMov:
			if in.UseImm {
				t.R[in.Dst] = in.Imm
			} else {
				t.R[in.Dst] = t.R[in.A]
			}
		case isa.OpFAdd, isa.OpFSub, isa.OpFMul, isa.OpFDiv:
			t.F[in.Dst] = floatALU(in.Op, t.F[in.A], t.F[in.B])
		case isa.OpFMov:
			if in.UseImm {
				t.F[in.Dst] = in.FImm
			} else {
				t.F[in.Dst] = t.F[in.A]
			}
		case isa.OpFMA:
			t.F[in.Dst] = t.F[in.A]*t.F[in.B] + t.F[in.Dst]
		case isa.OpFSqrt:
			t.F[in.Dst] = math.Sqrt(t.F[in.A])
		case isa.OpFCmp:
			if in.Cond.EvalFloat(t.F[in.A], t.F[in.B]) {
				t.R[in.Dst] = 1
			} else {
				t.R[in.Dst] = 0
			}
		case isa.OpICvtF:
			t.F[in.Dst] = float64(t.R[in.A])
		case isa.OpFCvtI:
			t.R[in.Dst] = int64(t.F[in.A])
		}
	}
}

// stepBlockViaStep assembles the same event StepBlock's fast path would,
// by driving Step — dispatching per-instruction observers along the way.
// It is both the compatibility bridge for mixed-tier observation and the
// reference implementation the fast path is tested against.
func (m *Machine) stepBlockViaStep(tid int, budget uint64, ev *BlockEvent) bool {
	t := m.Threads[tid]
	if t.State != StateRunning || budget == 0 {
		return false
	}
	cb := t.cur.blk
	rt := t.cur.rt
	blk := rt.Blocks[cb]
	d := m.decodedFor(blk, cb)

	ev.reset(tid, blk, t.cur.idx)
	if t.cur.idx == 0 {
		ev.Entries = 1
		if d.brk {
			budget = 1
		}
	}

	var retired uint64
	for {
		sev, ok := m.Step(tid)
		if !ok {
			break // unreachable: loop only continues while running in-block
		}
		retired++
		if sev.IsMem {
			switch sev.Instr.Op {
			case isa.OpILoad, isa.OpFLoad:
				ev.Mem = append(ev.Mem, MemRef{Off: uint32(retired - 1), Kind: RefLoad, Addr: sev.MemAddr})
			case isa.OpIStore, isa.OpFStore:
				ev.Mem = append(ev.Mem, MemRef{Off: uint32(retired - 1), Kind: RefStore, Addr: sev.MemAddr})
			case isa.OpAtomicAdd, isa.OpCmpXchg, isa.OpXchg:
				ev.Mem = append(ev.Mem, MemRef{Off: uint32(retired - 1), Kind: RefAtomic, Addr: sev.MemAddr})
			}
		}
		if len(sev.Woken) > 0 {
			ev.Woken = append(ev.Woken, sev.Woken...)
			break
		}
		if sev.Blocked {
			ev.Blocked = true
			break
		}
		if t.State == StateHalted {
			break
		}
		op := sev.Instr.Op
		if op == isa.OpBr || op == isa.OpBrCond {
			selfEntry := t.cur.rt == rt && t.cur.blk == cb && t.cur.idx == 0
			if op == isa.OpBrCond {
				if selfEntry {
					ev.CondSelf++
					ev.SelfTaken = sev.Taken
				} else {
					ev.CondExit, ev.ExitTaken = true, sev.Taken
				}
			}
			if selfEntry && d.selfLoop && !d.brk && retired < budget {
				ev.Entries++
				continue
			}
			break
		}
		if op == isa.OpCall || op == isa.OpRet {
			break
		}
		if retired == budget {
			break
		}
	}
	ev.Instrs = retired
	return true
}
