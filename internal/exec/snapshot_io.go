package exec

import (
	"encoding/binary"
	"fmt"
	"math"

	"looppoint/internal/artifact"
)

// Binary serialization for Snapshot. Two forms share one section layout:
//
//   - the section form (EncodedSize / AppendBinary / DecodeSnapshotAt)
//     is a raw little-endian u64 payload with no header, embedded
//     verbatim inside larger envelopes — the pinball format and the
//     durable checkpoint/progress files both carry it, so the bytes here
//     are pinned by the pinball golden files;
//   - the standalone form (MarshalBinary / UnmarshalSnapshot) wraps the
//     section in its own magic + version + trailing FNV-1a envelope so a
//     snapshot can live in a file of its own and be verified before use.
//
// Decoders classify failures into the artifact package's typed
// sentinels: artifact.ErrTruncated (with the absolute byte offset) for
// input that ends early, artifact.ErrCorrupt for implausible lengths,
// bad magic, or checksum mismatches, artifact.ErrVersion for skew.

const (
	snapshotMagic = "LOOPSNAP"
	// snapshotVersion guards the standalone envelope only; the section
	// form is versioned by whatever envelope embeds it.
	snapshotVersion = uint32(1)
)

// Plausibility caps for the snapshot section. A declared length past its
// cap is corruption, not truncation: no well-formed snapshot is that
// large.
const (
	snapMaxMemWords   = 1 << 32
	snapMaxThreads    = 1 << 16
	snapMaxStackDepth = 1 << 20
	snapMaxOSWords    = 1 << 20
)

// EncodedSize returns the exact serialized length of the snapshot
// section in bytes. AppendBinary into a buffer with at least this much
// spare capacity performs no allocation.
func (s *Snapshot) EncodedSize() int {
	n := 8 + 8 + 8*len(s.Mem) // Steps, memLen, mem words
	n += 8                    // thread count
	for i := range s.Threads {
		// R[32] + F[32] + State + Cur frame (4) + stack len + ICount + Futex
		n += (32 + 32 + 1 + 4 + 1 + 1 + 1) * 8
		n += 4 * 8 * len(s.Threads[i].Stack)
	}
	n += 8 // futex queue count
	for _, q := range s.Futexes {
		n += 2*8 + 8*len(q.Tids) // addr + waiter count + tids
	}
	n += 8 + 8*len(s.OS) // OS state len + words
	return n
}

// AppendBinary appends the snapshot section to buf and returns the
// extended slice: Steps, memory, per-thread contexts, futex wait queues,
// and opaque OS state, all as little-endian u64 words.
func (s *Snapshot) AppendBinary(buf []byte) []byte {
	buf = snapU64(buf, s.Steps)
	buf = snapU64(buf, uint64(len(s.Mem)))
	for _, w := range s.Mem {
		buf = snapU64(buf, w)
	}
	buf = snapU64(buf, uint64(len(s.Threads)))
	for i := range s.Threads {
		t := &s.Threads[i]
		for _, r := range t.R {
			buf = snapU64(buf, uint64(r))
		}
		for _, f := range t.F {
			buf = snapU64(buf, math.Float64bits(f))
		}
		buf = snapU64(buf, uint64(t.State))
		buf = snapFrame(buf, t.Cur)
		buf = snapU64(buf, uint64(len(t.Stack)))
		for _, fr := range t.Stack {
			buf = snapFrame(buf, fr)
		}
		buf = snapU64(buf, t.ICount)
		buf = snapU64(buf, t.Futex)
	}
	buf = snapU64(buf, uint64(len(s.Futexes)))
	for _, q := range s.Futexes {
		buf = snapU64(buf, q.Addr)
		buf = snapU64(buf, uint64(len(q.Tids)))
		for _, tid := range q.Tids {
			buf = snapU64(buf, uint64(tid))
		}
	}
	buf = snapU64(buf, uint64(len(s.OS)))
	for _, w := range s.OS {
		buf = snapU64(buf, w)
	}
	return buf
}

func snapU64(b []byte, v uint64) []byte { return binary.LittleEndian.AppendUint64(b, v) }

func snapFrame(b []byte, f FrameRef) []byte {
	b = snapU64(b, uint64(f.Image))
	b = snapU64(b, uint64(f.Routine))
	b = snapU64(b, uint64(f.Block))
	return snapU64(b, uint64(f.Index))
}

// snapDecoder is a bounds-checked cursor over a byte slice holding a
// snapshot section, possibly embedded mid-file: offsets in truncation
// errors are absolute so the message names the real end of input.
type snapDecoder struct {
	data []byte
	off  int
	err  error
}

func (d *snapDecoder) u64() uint64 {
	if d.err != nil {
		return 0
	}
	if d.off+8 > len(d.data) {
		d.err = fmt.Errorf("%w at byte offset %d", artifact.ErrTruncated, len(d.data))
		return 0
	}
	v := binary.LittleEndian.Uint64(d.data[d.off:])
	d.off += 8
	return v
}

func (d *snapDecoder) i64() int64 { return int64(d.u64()) }

// remaining reports how many u64 words are left in the input; length
// prefixes are checked against it so a declared count beyond the input
// fails as truncation before any allocation is sized from it.
func (d *snapDecoder) remaining() uint64 { return uint64(len(d.data)-d.off) / 8 }

func (d *snapDecoder) truncated() {
	if d.err == nil {
		d.err = fmt.Errorf("%w at byte offset %d", artifact.ErrTruncated, len(d.data))
	}
}

func (d *snapDecoder) frame() FrameRef {
	return FrameRef{
		Image:   int(d.u64()),
		Routine: int(d.u64()),
		Block:   int(d.u64()),
		Index:   int(d.u64()),
	}
}

// DecodeSnapshotAt decodes a snapshot section from data starting at off
// and returns the snapshot and the offset one past the section. Errors
// wrap the artifact sentinels; truncation messages carry the absolute
// byte offset of the end of data.
func DecodeSnapshotAt(data []byte, off int) (*Snapshot, int, error) {
	d := &snapDecoder{data: data, off: off}
	s := &Snapshot{}
	s.Steps = d.u64()
	memLen := d.u64()
	if d.err == nil && memLen > snapMaxMemWords {
		return nil, d.off, fmt.Errorf("implausible memory size %d: %w", memLen, artifact.ErrCorrupt)
	}
	if d.err == nil {
		if memLen > d.remaining() {
			d.truncated()
		} else {
			s.Mem = make([]uint64, memLen)
			for i := range s.Mem {
				s.Mem[i] = binary.LittleEndian.Uint64(d.data[d.off:])
				d.off += 8
			}
		}
	}
	nThreads := d.u64()
	if d.err == nil && nThreads > snapMaxThreads {
		return nil, d.off, fmt.Errorf("implausible thread count %d: %w", nThreads, artifact.ErrCorrupt)
	}
	for i := uint64(0); i < nThreads && d.err == nil; i++ {
		var t ThreadSnapshot
		for j := range t.R {
			t.R[j] = d.i64()
		}
		for j := range t.F {
			t.F[j] = math.Float64frombits(d.u64())
		}
		t.State = ThreadState(d.u64())
		t.Cur = d.frame()
		stackLen := d.u64()
		if d.err == nil && stackLen > snapMaxStackDepth {
			return nil, d.off, fmt.Errorf("implausible stack depth %d: %w", stackLen, artifact.ErrCorrupt)
		}
		if d.err == nil && stackLen > 0 {
			if 4*stackLen > d.remaining() {
				d.truncated()
			} else {
				t.Stack = make([]FrameRef, stackLen)
				for j := range t.Stack {
					t.Stack[j] = d.frame()
				}
			}
		}
		t.ICount = d.u64()
		t.Futex = d.u64()
		s.Threads = append(s.Threads, t)
	}
	nQueues := d.u64()
	if d.err == nil && nQueues > snapMaxThreads {
		return nil, d.off, fmt.Errorf("implausible futex queue count %d: %w", nQueues, artifact.ErrCorrupt)
	}
	for i := uint64(0); i < nQueues && d.err == nil; i++ {
		q := FutexQueue{Addr: d.u64()}
		nWait := d.u64()
		if d.err == nil && nWait > snapMaxThreads {
			return nil, d.off, fmt.Errorf("implausible futex waiter count %d: %w", nWait, artifact.ErrCorrupt)
		}
		if d.err == nil {
			if nWait > d.remaining() {
				d.truncated()
			} else {
				q.Tids = make([]int, nWait)
				for j := range q.Tids {
					q.Tids[j] = int(d.u64())
				}
			}
		}
		s.Futexes = append(s.Futexes, q)
	}
	nOS := d.u64()
	if d.err == nil && nOS > snapMaxOSWords {
		return nil, d.off, fmt.Errorf("implausible OS state length %d: %w", nOS, artifact.ErrCorrupt)
	}
	if d.err == nil && nOS > 0 {
		if nOS > d.remaining() {
			d.truncated()
		} else {
			s.OS = make([]uint64, nOS)
			for i := range s.OS {
				s.OS[i] = binary.LittleEndian.Uint64(d.data[d.off:])
				d.off += 8
			}
		}
	}
	if d.err != nil {
		return nil, d.off, d.err
	}
	return s, d.off, nil
}

// MarshalBinary serializes the snapshot in its standalone checksummed
// envelope: magic, version, the snapshot section, and a trailing FNV-1a
// over every payload byte (magic excluded).
func (s *Snapshot) MarshalBinary() ([]byte, error) {
	buf := make([]byte, 0, len(snapshotMagic)+8+s.EncodedSize()+8)
	buf = append(buf, snapshotMagic...)
	buf = snapU64(buf, uint64(snapshotVersion))
	buf = s.AppendBinary(buf)
	sum := artifact.Update(artifact.FNVOffset, buf[len(snapshotMagic):])
	return snapU64(buf, sum), nil
}

// UnmarshalSnapshot decodes and verifies a snapshot from its standalone
// envelope, classifying failures into the artifact sentinels.
func UnmarshalSnapshot(data []byte) (*Snapshot, error) {
	if len(data) < len(snapshotMagic) {
		return nil, fmt.Errorf("exec: snapshot header: %w at byte offset %d", artifact.ErrTruncated, len(data))
	}
	if string(data[:len(snapshotMagic)]) != snapshotMagic {
		return nil, fmt.Errorf("exec: bad snapshot magic %q: %w", data[:len(snapshotMagic)], artifact.ErrCorrupt)
	}
	d := &snapDecoder{data: data, off: len(snapshotMagic)}
	if v := uint32(d.u64()); d.err == nil && v != snapshotVersion {
		return nil, fmt.Errorf("exec: snapshot version %d (want %d): %w", v, snapshotVersion, artifact.ErrVersion)
	}
	if d.err != nil {
		return nil, fmt.Errorf("exec: snapshot: %w", d.err)
	}
	s, off, err := DecodeSnapshotAt(data, d.off)
	if err != nil {
		return nil, fmt.Errorf("exec: snapshot: %w", err)
	}
	if len(data)-off < 8 {
		return nil, fmt.Errorf("exec: snapshot integrity hash: %w at byte offset %d", artifact.ErrTruncated, len(data))
	}
	want := artifact.Update(artifact.FNVOffset, data[len(snapshotMagic):off])
	if got := binary.LittleEndian.Uint64(data[off:]); got != want {
		return nil, fmt.Errorf("exec: snapshot integrity hash mismatch (file %#x, computed %#x): %w", got, want, artifact.ErrCorrupt)
	}
	return s, nil
}
