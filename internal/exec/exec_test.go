package exec

import (
	"errors"
	"testing"

	"looppoint/internal/isa"
	"looppoint/internal/omp"
)

// buildCounterProgram builds an N-thread program where each thread
// atomically adds (tid+1) to a shared accumulator iters times, crosses a
// barrier, and halts. Returns the program and the accumulator address.
func buildCounterProgram(t testing.TB, nthreads, iters int, policy omp.WaitPolicy) (*isa.Program, uint64) {
	t.Helper()
	p := isa.NewProgram("counter", nthreads)
	acc := p.Alloc("acc", 1)
	main := p.AddImage("main", false)
	rt := omp.New(p, policy)
	bar := rt.NewBarrier("join")

	for tid := 0; tid < nthreads; tid++ {
		r := main.NewRoutine("thread_main")
		entry := r.NewBlock("entry")
		loop := r.NewBlock("loop")
		after := r.NewBlock("after")
		entry.IMovI(0, 0)                        // i = 0
		entry.IOpI(isa.OpIAdd, 1, isa.RegTid, 1) // inc = tid+1
		entry.IMovI(2, int64(acc))
		entry.Br(loop)
		loop.AtomicAdd(3, 2, 0, 1)
		loop.IOpI(isa.OpIAdd, 0, 0, 1)
		loop.BrCondI(isa.CondLT, 0, int64(iters), loop, after)
		rt.EmitBarrier(after, bar)
		after.Halt()
		p.SetEntry(tid, r)
	}
	if err := p.Link(); err != nil {
		t.Fatalf("Link: %v", err)
	}
	return p, acc
}

func expectedSum(nthreads, iters int) int64 {
	var s int64
	for tid := 0; tid < nthreads; tid++ {
		s += int64((tid + 1) * iters)
	}
	return s
}

func TestRunRoundRobinCounter(t *testing.T) {
	for _, policy := range []omp.WaitPolicy{omp.Passive, omp.Active} {
		p, acc := buildCounterProgram(t, 4, 100, policy)
		m := NewMachine(p, 1)
		if err := m.Run(RunOpts{}); err != nil {
			t.Fatalf("policy %v: Run: %v", policy, err)
		}
		if got, want := int64(m.LoadWord(acc)), expectedSum(4, 100); got != want {
			t.Errorf("policy %v: acc = %d, want %d", policy, got, want)
		}
		if !m.Done() {
			t.Errorf("policy %v: machine not done", policy)
		}
	}
}

func TestRunIsDeterministic(t *testing.T) {
	run := func() (int64, uint64) {
		p, acc := buildCounterProgram(t, 4, 200, omp.Passive)
		m := NewMachine(p, 7)
		if err := m.Run(RunOpts{Quantum: 17}); err != nil {
			t.Fatalf("Run: %v", err)
		}
		return int64(m.LoadWord(acc)), m.TotalICount()
	}
	v1, n1 := run()
	v2, n2 := run()
	if v1 != v2 || n1 != n2 {
		t.Errorf("non-deterministic run: (%d,%d) vs (%d,%d)", v1, n1, v2, n2)
	}
}

func TestScheduleRecordReplay(t *testing.T) {
	p, acc := buildCounterProgram(t, 4, 150, omp.Active)
	m := NewMachine(p, 3)
	var sched Schedule
	if err := m.Run(RunOpts{Quantum: 23, Record: &sched}); err != nil {
		t.Fatalf("record Run: %v", err)
	}
	want := int64(m.LoadWord(acc))
	wantIC := m.TotalICount()
	if sched.Steps() != wantIC {
		t.Fatalf("schedule covers %d steps, machine retired %d", sched.Steps(), wantIC)
	}

	// Constrained replay must reproduce the execution exactly.
	p2, acc2 := buildCounterProgram(t, 4, 150, omp.Active)
	m2 := NewMachine(p2, 3)
	if err := m2.RunSchedule(sched); err != nil {
		t.Fatalf("RunSchedule: %v", err)
	}
	if got := int64(m2.LoadWord(acc2)); got != want {
		t.Errorf("replay acc = %d, want %d", got, want)
	}
	if m2.TotalICount() != wantIC {
		t.Errorf("replay retired %d, want %d", m2.TotalICount(), wantIC)
	}
	if !m2.Done() {
		t.Error("replay did not finish")
	}
}

func TestFlowControlEqualizesProgress(t *testing.T) {
	// Threads with wildly different work per iteration: without flow
	// control the round-robin scheduler lets the cheap thread race ahead
	// within each quantum; with a window the max gap stays bounded.
	p, _ := buildCounterProgram(t, 4, 2000, omp.Passive)
	m := NewMachine(p, 1)
	const window = 128
	maxGap := uint64(0)
	m.AddObserver(ObserverFunc(func(ev *Event) {
		if ev.Tid != 0 {
			return
		}
		var lo, hi uint64 = ^uint64(0), 0
		for _, th := range m.Threads {
			if th.State == StateHalted {
				continue
			}
			if th.ICount < lo {
				lo = th.ICount
			}
			if th.ICount > hi {
				hi = th.ICount
			}
		}
		if hi > lo && hi-lo > maxGap {
			maxGap = hi - lo
		}
	}))
	if err := m.Run(RunOpts{Quantum: 64, FlowWindow: window}); err != nil {
		t.Fatalf("Run: %v", err)
	}
	// Gap can exceed the window by at most one quantum of slack.
	if maxGap > window+64 {
		t.Errorf("flow control gap %d exceeds window %d + quantum", maxGap, window)
	}
}

func TestDeadlockDetection(t *testing.T) {
	p := isa.NewProgram("deadlock", 1)
	w := p.Alloc("w", 1)
	img := p.AddImage("main", false)
	r := img.NewRoutine("main")
	b := r.NewBlock("entry")
	b.IMovI(1, int64(w))
	b.IMovI(2, 0)
	b.FutexWait(1, 0, 2) // waits forever: value is 0 and nobody wakes
	b.Halt()
	p.SetEntry(0, r)
	if err := p.Link(); err != nil {
		t.Fatalf("Link: %v", err)
	}
	m := NewMachine(p, 1)
	err := m.Run(RunOpts{})
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("Run = %v, want ErrDeadlock", err)
	}
}

func TestMaxStepsGuard(t *testing.T) {
	p := isa.NewProgram("spin", 1)
	img := p.AddImage("main", false)
	r := img.NewRoutine("main")
	loop := r.NewBlock("loop")
	loop.Nop()
	loop.Br(loop)
	p.SetEntry(0, r)
	if err := p.Link(); err != nil {
		t.Fatalf("Link: %v", err)
	}
	m := NewMachine(p, 1)
	err := m.Run(RunOpts{MaxSteps: 1000})
	if !errors.Is(err, ErrMaxSteps) {
		t.Fatalf("Run = %v, want ErrMaxSteps", err)
	}
}

func TestSnapshotRestoreRoundTrip(t *testing.T) {
	p, acc := buildCounterProgram(t, 4, 300, omp.Passive)
	m := NewMachine(p, 5)
	// Run partway.
	if err := m.Run(RunOpts{Quantum: 50, MaxSteps: 2000}); !errors.Is(err, ErrMaxSteps) {
		t.Fatalf("partial Run = %v, want ErrMaxSteps", err)
	}
	snap := m.Snapshot()
	// Finish from the snapshot on a fresh machine.
	p2, acc2 := buildCounterProgram(t, 4, 300, omp.Passive)
	m2 := NewMachine(p2, 5)
	m2.Restore(snap)
	if err := m2.Run(RunOpts{Quantum: 50}); err != nil {
		t.Fatalf("resumed Run: %v", err)
	}
	// Finish the original too; both must agree.
	if err := m.Run(RunOpts{Quantum: 50}); err != nil {
		t.Fatalf("original Run: %v", err)
	}
	if a, b := int64(m.LoadWord(acc)), int64(m2.LoadWord(acc2)); a != b {
		t.Errorf("restored run result %d != original %d", b, a)
	}
	if m.TotalICount() != m2.TotalICount() {
		t.Errorf("icounts differ: %d vs %d", m.TotalICount(), m2.TotalICount())
	}
}

func TestObserverSeesBlockEntriesAndBranches(t *testing.T) {
	p, _ := buildCounterProgram(t, 2, 10, omp.Passive)
	m := NewMachine(p, 1)
	var blockEntries, branches, taken, mem, writes int
	m.AddObserver(ObserverFunc(func(ev *Event) {
		if ev.BlockEntry {
			blockEntries++
		}
		if ev.IsBranch {
			branches++
			if ev.Taken {
				taken++
			}
		}
		if ev.IsMem {
			mem++
			if ev.IsWrite {
				writes++
			}
		}
	}))
	if err := m.Run(RunOpts{}); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if blockEntries == 0 || branches == 0 || taken == 0 || mem == 0 || writes == 0 {
		t.Errorf("observer counts: blocks=%d branches=%d taken=%d mem=%d writes=%d; all must be > 0",
			blockEntries, branches, taken, mem, writes)
	}
	if writes > mem {
		t.Errorf("writes %d > mem ops %d", writes, mem)
	}
}

func TestRecordingAndReplayOS(t *testing.T) {
	p := isa.NewProgram("sys", 1)
	out := p.Alloc("out", 4)
	img := p.AddImage("main", false)
	r := img.NewRoutine("main")
	b := r.NewBlock("entry")
	b.IMovI(1, int64(out))
	for i := 0; i < 4; i++ {
		b.Syscall(2, isa.SysRand, 0)
		b.IStore(1, int64(i), 2)
	}
	b.Halt()
	p.SetEntry(0, r)
	if err := p.Link(); err != nil {
		t.Fatalf("Link: %v", err)
	}

	m := NewMachine(p, 99)
	rec := NewRecordingOS(m.OS, 1)
	m.OS = rec
	if err := m.Run(RunOpts{}); err != nil {
		t.Fatalf("Run: %v", err)
	}
	var want [4]int64
	for i := range want {
		want[i] = int64(m.LoadWord(out + uint64(i)))
	}
	if len(rec.Log[0]) != 4 {
		t.Fatalf("recorded %d syscalls, want 4", len(rec.Log[0]))
	}

	// Replay with a different seed: injection must reproduce results.
	m2 := NewMachine(p, 12345)
	replay := NewReplayOS(rec.Log)
	m2.OS = replay
	if err := m2.Run(RunOpts{}); err != nil {
		t.Fatalf("replay Run: %v", err)
	}
	for i := range want {
		if got := int64(m2.LoadWord(out + uint64(i))); got != want[i] {
			t.Errorf("replayed out[%d] = %d, want %d", i, got, want[i])
		}
	}
	if replay.Diverged {
		t.Error("replay diverged")
	}

	// Injection running dry flags divergence.
	m3 := NewMachine(p, 1)
	short := NewReplayOS([][]int64{{1, 2}})
	m3.OS = short
	if err := m3.Run(RunOpts{}); err != nil {
		t.Fatalf("short replay Run: %v", err)
	}
	if !short.Diverged {
		t.Error("short injection log did not flag divergence")
	}
}

func TestThreadStateString(t *testing.T) {
	if StateRunning.String() != "running" || StateBlocked.String() != "blocked" || StateHalted.String() != "halted" {
		t.Error("bad state strings")
	}
}
