package exec

import (
	"testing"

	"looppoint/internal/omp"
)

// BenchmarkInterpreter measures the functional interpreter's throughput
// (instructions per second drive every analysis pass and fast-forward).
func BenchmarkInterpreter(b *testing.B) {
	p, _ := buildCounterProgram(b, 4, 1_000_000_000, omp.Passive)
	m := NewMachine(p, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for tid := 0; tid < 4; tid++ {
			m.Step(tid)
		}
	}
	b.ReportMetric(float64(m.TotalICount())/b.Elapsed().Seconds()/1e6, "Minstr/s")
}

// BenchmarkInterpreterWithObserver quantifies observer overhead.
func BenchmarkInterpreterWithObserver(b *testing.B) {
	p, _ := buildCounterProgram(b, 4, 1_000_000_000, omp.Passive)
	m := NewMachine(p, 1)
	var blocks uint64
	m.AddObserver(ObserverFunc(func(ev *Event) {
		if ev.BlockEntry {
			blocks++
		}
	}))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for tid := 0; tid < 4; tid++ {
			m.Step(tid)
		}
	}
	b.ReportMetric(float64(m.TotalICount())/b.Elapsed().Seconds()/1e6, "Minstr/s")
}

// BenchmarkInterpreterBlockObserver measures the block-batched fast
// path with a block observer attached — the configuration BBV profiling
// and functional warmup run in. Compare against
// BenchmarkInterpreterWithObserver for the per-instruction equivalent.
func BenchmarkInterpreterBlockObserver(b *testing.B) {
	p, _ := buildCounterProgram(b, 4, 1_000_000_000, omp.Passive)
	m := NewMachine(p, 1)
	var blocks uint64
	m.AddBlockObserver(BlockObserverFunc(func(ev *BlockEvent) {
		blocks += ev.Entries
	}))
	var ev BlockEvent
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for tid := 0; tid < 4; tid++ {
			if m.StepBlock(tid, 64, &ev) {
				for _, o := range m.blockObservers {
					o.OnBlock(&ev)
				}
			}
		}
	}
	b.ReportMetric(float64(m.TotalICount())/b.Elapsed().Seconds()/1e6, "Minstr/s")
}

// BenchmarkInterpreterBlockDispatch measures raw block-batched retire
// throughput with no observers at all (the pinball record / replay
// configuration).
func BenchmarkInterpreterBlockDispatch(b *testing.B) {
	p, _ := buildCounterProgram(b, 4, 1_000_000_000, omp.Passive)
	m := NewMachine(p, 1)
	var ev BlockEvent
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for tid := 0; tid < 4; tid++ {
			m.StepBlock(tid, 64, &ev)
		}
	}
	b.ReportMetric(float64(m.TotalICount())/b.Elapsed().Seconds()/1e6, "Minstr/s")
}

// BenchmarkSnapshot measures checkpoint capture cost (region extraction
// takes one per looppoint).
func BenchmarkSnapshot(b *testing.B) {
	p, _ := buildCounterProgram(b, 8, 100, omp.Passive)
	m := NewMachine(p, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if s := m.Snapshot(); s == nil {
			b.Fatal("nil snapshot")
		}
	}
}
