package exec

import (
	"testing"

	"looppoint/internal/omp"
)

// BenchmarkInterpreter measures the functional interpreter's throughput
// (instructions per second drive every analysis pass and fast-forward).
func BenchmarkInterpreter(b *testing.B) {
	p, _ := buildCounterProgram(b, 4, 1_000_000_000, omp.Passive)
	m := NewMachine(p, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for tid := 0; tid < 4; tid++ {
			m.Step(tid)
		}
	}
	b.ReportMetric(float64(m.TotalICount())/b.Elapsed().Seconds()/1e6, "Minstr/s")
}

// BenchmarkInterpreterWithObserver quantifies observer overhead.
func BenchmarkInterpreterWithObserver(b *testing.B) {
	p, _ := buildCounterProgram(b, 4, 1_000_000_000, omp.Passive)
	m := NewMachine(p, 1)
	var blocks uint64
	m.AddObserver(ObserverFunc(func(ev *Event) {
		if ev.BlockEntry {
			blocks++
		}
	}))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for tid := 0; tid < 4; tid++ {
			m.Step(tid)
		}
	}
	b.ReportMetric(float64(m.TotalICount())/b.Elapsed().Seconds()/1e6, "Minstr/s")
}

// BenchmarkSnapshot measures checkpoint capture cost (region extraction
// takes one per looppoint).
func BenchmarkSnapshot(b *testing.B) {
	p, _ := buildCounterProgram(b, 8, 100, omp.Passive)
	m := NewMachine(p, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if s := m.Snapshot(); s == nil {
			b.Fatal("nil snapshot")
		}
	}
}
