package exec

import (
	"encoding/binary"
	"errors"
	"reflect"
	"testing"

	"looppoint/internal/artifact"
)

// ioTestSnapshot builds a synthetic snapshot exercising every section of
// the codec: memory, multiple threads with stacks, futex queues in FIFO
// order, and opaque OS state.
func ioTestSnapshot() *Snapshot {
	s := &Snapshot{
		Mem:   []uint64{1, 0, 0xffffffffffffffff, 42},
		Steps: 977,
		Futexes: []FutexQueue{
			{Addr: 0x40, Tids: []int{2, 0, 1}},
			{Addr: 0x48, Tids: []int{3}},
		},
		OS: []uint64{7, 0, 9},
	}
	for i := 0; i < 3; i++ {
		t := ThreadSnapshot{State: ThreadState(i % 2), ICount: uint64(100 + i), Futex: uint64(0x40 * i)}
		for j := range t.R {
			t.R[j] = int64(i*64 + j - 5)
		}
		for j := range t.F {
			t.F[j] = float64(j) * 1.5
		}
		t.Cur = FrameRef{Image: i, Routine: 1, Block: 2, Index: 3}
		if i > 0 {
			t.Stack = []FrameRef{{Image: 0, Routine: 0, Block: 1, Index: 4}, {Image: 1, Routine: 2, Block: 0, Index: 0}}
		}
		s.Threads = append(s.Threads, t)
	}
	return s
}

func TestSnapshotEnvelopeRoundTrip(t *testing.T) {
	s := ioTestSnapshot()
	data, err := s.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if len(data) != len(snapshotMagic)+8+s.EncodedSize()+8 {
		t.Fatalf("envelope size %d, want %d", len(data), len(snapshotMagic)+8+s.EncodedSize()+8)
	}
	got, err := UnmarshalSnapshot(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, s) {
		t.Fatal("decoded snapshot differs from original")
	}
}

// TestSnapshotEnvelopeBitFlips flips one bit at every byte offset and
// asserts each flip is rejected with a typed artifact error — the
// trailing FNV-1a catches any payload damage the structural caps miss.
func TestSnapshotEnvelopeBitFlips(t *testing.T) {
	orig, err := ioTestSnapshot().MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	for off := range orig {
		data := append([]byte(nil), orig...)
		data[off] ^= 1 << uint(off%8)
		got, err := UnmarshalSnapshot(data)
		if err == nil {
			t.Fatalf("flip at byte %d accepted", off)
		}
		if got != nil {
			t.Fatalf("flip at byte %d returned a snapshot alongside error %v", off, err)
		}
		if !errors.Is(err, artifact.ErrCorrupt) && !errors.Is(err, artifact.ErrTruncated) && !errors.Is(err, artifact.ErrVersion) {
			t.Fatalf("flip at byte %d: untyped error %v", off, err)
		}
	}
}

// TestSnapshotEnvelopeTruncation truncates at every 8-byte boundary and
// asserts typed classification; prefixes that cut the payload must be
// ErrTruncated.
func TestSnapshotEnvelopeTruncation(t *testing.T) {
	orig, err := ioTestSnapshot().MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	for end := 0; end < len(orig); end += 8 {
		_, err := UnmarshalSnapshot(orig[:end])
		if err == nil {
			t.Fatalf("truncation at byte %d accepted", end)
		}
		if !errors.Is(err, artifact.ErrTruncated) && !errors.Is(err, artifact.ErrCorrupt) {
			t.Fatalf("truncation at byte %d: wrong classification %v", end, err)
		}
	}
}

func TestSnapshotEnvelopeVersionSkew(t *testing.T) {
	orig, err := ioTestSnapshot().MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	data := append([]byte(nil), orig...)
	binary.LittleEndian.PutUint64(data[len(snapshotMagic):], uint64(snapshotVersion+7))
	if _, err := UnmarshalSnapshot(data); !errors.Is(err, artifact.ErrVersion) {
		t.Fatalf("version skew classified as %v, want ErrVersion", err)
	}
}
