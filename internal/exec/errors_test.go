package exec

import (
	"errors"
	"testing"

	"looppoint/internal/isa"
)

// oobProgram builds a program whose only thread performs a wildly
// out-of-range load — the canonical machine fault.
func oobProgram(t *testing.T) *isa.Program {
	t.Helper()
	p := isa.NewProgram("fault", 1)
	p.Alloc("x", 1)
	img := p.AddImage("main", false)
	r := img.NewRoutine("main")
	blk := r.NewBlock("entry")
	blk.IMovI(1, 1<<40)
	blk.ILoad(2, 1, 0)
	blk.Halt()
	p.SetEntry(0, r)
	if err := p.Link(); err != nil {
		t.Fatal(err)
	}
	return p
}

// TestMachineFaultIsTypedError: a machine fault surfaces from every
// driver as an error wrapping ErrMachine, with the *ExecError detail
// available via errors.As — never as a panic.
func TestMachineFaultIsTypedError(t *testing.T) {
	p := oobProgram(t)
	drivers := map[string]func(m *Machine) error{
		"Run":       func(m *Machine) error { return m.Run(RunOpts{}) },
		"RunBlocks": func(m *Machine) error { return m.RunBlocks(RunOpts{}) },
		"RunSchedule": func(m *Machine) error {
			return m.RunSchedule(Schedule{{Tid: 0, N: 8}})
		},
	}
	for name, drive := range drivers {
		for _, fast := range []bool{true, false} {
			m := NewMachine(p, 1)
			m.SetFastPath(fast)
			err := drive(m)
			if !errors.Is(err, ErrMachine) {
				t.Errorf("%s (fast=%v): err = %v, want ErrMachine", name, fast, err)
				continue
			}
			var ee *ExecError
			if !errors.As(err, &ee) || ee.Msg == "" {
				t.Errorf("%s (fast=%v): no *ExecError detail in %v", name, fast, err)
			}
		}
	}
}

// TestRecoverPassesForeignPanics: Recover intercepts only *ExecError;
// programmer-error panics (plain strings, other types) keep crashing.
func TestRecoverPassesForeignPanics(t *testing.T) {
	defer func() {
		if r := recover(); r != "programmer error" {
			t.Errorf("recover = %v, want the original panic value", r)
		}
	}()
	func() (err error) {
		defer Recover(&err)
		panic("programmer error")
	}()
	t.Fatalf("foreign panic was swallowed")
}

// TestRecoverKeepsEarlierError: Recover does not clobber an error the
// function already decided to return.
func TestRecoverKeepsEarlierError(t *testing.T) {
	sentinel := errors.New("original")
	// Normal return path with err already set: untouched.
	err := func() (err error) {
		defer Recover(&err)
		return sentinel
	}()
	if err != sentinel {
		t.Errorf("err = %v, want sentinel", err)
	}
	// Fault path: the ExecError becomes the error.
	err = func() (err error) {
		defer Recover(&err)
		throwf("exec: boom %d", 7)
		return nil
	}()
	if !errors.Is(err, ErrMachine) || err.Error() != "exec: boom 7" {
		t.Errorf("err = %v, want exec: boom 7", err)
	}
}
