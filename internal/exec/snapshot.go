package exec

import "sort"

// Snapshot is a deep copy of a machine's architectural state: shared
// memory plus every thread's registers, call stack, and position. It is
// the memory/register portion of a pinball (paper Section IV-C).
//
// A snapshot taken mid-run carries everything a resumed machine needs to
// continue byte-identically to the uninterrupted execution: the futex
// wait queues in their exact FIFO order (Futexes) and the OS model's
// internal state (OS) when the machine's OS implements StatefulOS. The
// decoded-block cache and registered break PCs are deliberately absent —
// they are configuration derived from the program and the attached
// observers, not architectural state, so any machine running the same
// program reconstructs them independently.
type Snapshot struct {
	Mem     []uint64
	Threads []ThreadSnapshot
	Steps   uint64
	// Futexes captures the machine's futex wait queues in wake order,
	// sorted by address. nil means no thread was parked mid-wait (or the
	// snapshot predates this field); Restore then falls back to the
	// legacy thread-ID-order rebuild.
	Futexes []FutexQueue
	// OS is the opaque state exported by the machine's OS model via
	// StatefulOS (DefaultOS: rng and tick; ReplayOS: injection cursors).
	// Restore pours it back only when the restoring machine's OS is the
	// same stateful kind; callers that swap the OS after Restore (as
	// pinball replay does) are unaffected.
	OS []uint64
}

// FutexQueue records the FIFO wait queue of one futex address. The
// queue order is semantic: OpFutexWake wakes the front waiter, so a
// snapshot that loses the order diverges at the next wake.
type FutexQueue struct {
	Addr uint64
	Tids []int
}

// ThreadSnapshot captures one thread's context.
type ThreadSnapshot struct {
	R      [32]int64
	F      [32]float64
	State  ThreadState
	Cur    FrameRef
	Stack  []FrameRef
	ICount uint64
	Futex  uint64
}

// FrameRef names a code position by image/routine/block/index so that a
// snapshot remains valid across machine instances of the same program.
type FrameRef struct {
	Image   int
	Routine int
	Block   int
	Index   int
}

func (m *Machine) frameRef(f frame) FrameRef {
	return FrameRef{Image: f.rt.Image.ID, Routine: f.rt.ID, Block: f.blk, Index: f.idx}
}

func (m *Machine) resolveFrame(r FrameRef) frame {
	rt := m.Prog.Images[r.Image].Routines[r.Routine]
	return frame{rt: rt, blk: r.Block, idx: r.Index}
}

// Snapshot captures the machine's current architectural state.
func (m *Machine) Snapshot() *Snapshot {
	s := &Snapshot{Mem: make([]uint64, len(m.Mem)), Steps: m.steps}
	copy(s.Mem, m.Mem)
	for _, t := range m.Threads {
		ts := ThreadSnapshot{
			R: t.R, F: t.F, State: t.State,
			Cur: m.frameRef(t.cur), ICount: t.ICount, Futex: t.futexAddr,
		}
		for _, f := range t.stack {
			ts.Stack = append(ts.Stack, m.frameRef(f))
		}
		s.Threads = append(s.Threads, ts)
	}
	for addr, q := range m.futexQ {
		if len(q) == 0 {
			continue
		}
		s.Futexes = append(s.Futexes, FutexQueue{Addr: addr, Tids: append([]int(nil), q...)})
	}
	sort.Slice(s.Futexes, func(i, j int) bool { return s.Futexes[i].Addr < s.Futexes[j].Addr })
	if so, ok := m.OS.(StatefulOS); ok {
		s.OS = so.SnapshotOS()
	}
	return s
}

// Restore loads a snapshot into the machine. Futex wait queues are
// rebuilt in the exact wake order the snapshot captured (Futexes); a
// legacy snapshot without that field falls back to thread-ID order,
// which is only safe for snapshots taken outside any wait. If the
// snapshot carries OS state and the machine's OS implements StatefulOS,
// the state is poured back; set the machine's final OS before calling
// Restore (or seed it explicitly afterward) so the state lands in the
// model that will actually run.
func (m *Machine) Restore(s *Snapshot) {
	copy(m.Mem, s.Mem)
	m.steps = s.Steps
	m.futexQ = make(map[uint64][]int)
	for i, ts := range s.Threads {
		t := m.Threads[i]
		t.R, t.F, t.State = ts.R, ts.F, ts.State
		t.cur = m.resolveFrame(ts.Cur)
		t.stack = t.stack[:0]
		for _, fr := range ts.Stack {
			t.stack = append(t.stack, m.resolveFrame(fr))
		}
		t.ICount = ts.ICount
		t.futexAddr = ts.Futex
		if s.Futexes == nil && t.State == StateBlocked {
			m.futexQ[t.futexAddr] = append(m.futexQ[t.futexAddr], t.ID)
		}
	}
	for _, q := range s.Futexes {
		m.futexQ[q.Addr] = append([]int(nil), q.Tids...)
	}
	if s.OS != nil {
		if so, ok := m.OS.(StatefulOS); ok {
			so.RestoreOS(s.OS)
		}
	}
}
