package exec

// Snapshot is a deep copy of a machine's architectural state: shared
// memory plus every thread's registers, call stack, and position. It is
// the memory/register portion of a pinball (paper Section IV-C).
type Snapshot struct {
	Mem     []uint64
	Threads []ThreadSnapshot
	Steps   uint64
}

// ThreadSnapshot captures one thread's context.
type ThreadSnapshot struct {
	R      [32]int64
	F      [32]float64
	State  ThreadState
	Cur    FrameRef
	Stack  []FrameRef
	ICount uint64
	Futex  uint64
}

// FrameRef names a code position by image/routine/block/index so that a
// snapshot remains valid across machine instances of the same program.
type FrameRef struct {
	Image   int
	Routine int
	Block   int
	Index   int
}

func (m *Machine) frameRef(f frame) FrameRef {
	return FrameRef{Image: f.rt.Image.ID, Routine: f.rt.ID, Block: f.blk, Index: f.idx}
}

func (m *Machine) resolveFrame(r FrameRef) frame {
	rt := m.Prog.Images[r.Image].Routines[r.Routine]
	return frame{rt: rt, blk: r.Block, idx: r.Index}
}

// Snapshot captures the machine's current architectural state.
func (m *Machine) Snapshot() *Snapshot {
	s := &Snapshot{Mem: make([]uint64, len(m.Mem)), Steps: m.steps}
	copy(s.Mem, m.Mem)
	for _, t := range m.Threads {
		ts := ThreadSnapshot{
			R: t.R, F: t.F, State: t.State,
			Cur: m.frameRef(t.cur), ICount: t.ICount, Futex: t.futexAddr,
		}
		for _, f := range t.stack {
			ts.Stack = append(ts.Stack, m.frameRef(f))
		}
		s.Threads = append(s.Threads, ts)
	}
	return s
}

// Restore loads a snapshot into the machine, rebuilding futex wait queues
// in thread-ID order (the queue order is part of the snapshot's semantics
// only up to fairness; deterministic rebuild keeps replay deterministic).
func (m *Machine) Restore(s *Snapshot) {
	copy(m.Mem, s.Mem)
	m.steps = s.Steps
	m.futexQ = make(map[uint64][]int)
	for i, ts := range s.Threads {
		t := m.Threads[i]
		t.R, t.F, t.State = ts.R, ts.F, ts.State
		t.cur = m.resolveFrame(ts.Cur)
		t.stack = t.stack[:0]
		for _, fr := range ts.Stack {
			t.stack = append(t.stack, m.resolveFrame(fr))
		}
		t.ICount = ts.ICount
		t.futexAddr = ts.Futex
		if t.State == StateBlocked {
			m.futexQ[t.futexAddr] = append(m.futexQ[t.futexAddr], t.ID)
		}
	}
}
