package exec

import (
	"errors"
	"fmt"
)

// ErrDeadlock is returned when live threads exist but none can run.
var ErrDeadlock = errors.New("exec: deadlock: all live threads blocked")

// ErrMaxSteps is returned when a run exceeds its step budget.
var ErrMaxSteps = errors.New("exec: maximum step budget exceeded")

// ErrScheduleDiverged is returned by RunSchedule when the recorded
// schedule asks a thread to run while it is blocked or halted — the
// replayed execution no longer matches the recording.
var ErrScheduleDiverged = errors.New("exec: constrained replay diverged from recorded schedule")

// ScheduleEntry is one run segment of a recorded thread interleaving:
// thread Tid retired N consecutive instructions.
type ScheduleEntry struct {
	Tid int
	N   uint32
}

// Schedule is a recorded thread interleaving — the shared-memory
// dependency (.race) component of a pinball. Replaying the same schedule
// with the same syscall injections reproduces the execution exactly.
type Schedule []ScheduleEntry

// Steps returns the total retired instructions the schedule covers.
func (s Schedule) Steps() uint64 {
	var n uint64
	for _, e := range s {
		n += uint64(e.N)
	}
	return n
}

// Skip returns the schedule suffix after the first n steps.
func (s Schedule) Skip(n uint64) Schedule {
	var out Schedule
	for i, e := range s {
		if n == 0 {
			return append(out, s[i:]...)
		}
		if uint64(e.N) <= n {
			n -= uint64(e.N)
			continue
		}
		out = append(out, ScheduleEntry{Tid: e.Tid, N: e.N - uint32(n)})
		n = 0
		out = append(out, s[i+1:]...)
		return out
	}
	return out
}

// Take returns the schedule prefix covering the first n steps.
func (s Schedule) Take(n uint64) Schedule {
	var out Schedule
	for _, e := range s {
		if n == 0 {
			return out
		}
		if uint64(e.N) <= n {
			out = append(out, e)
			n -= uint64(e.N)
			continue
		}
		out = append(out, ScheduleEntry{Tid: e.Tid, N: uint32(n)})
		return out
	}
	return out
}

// RunOpts configures a machine run.
type RunOpts struct {
	// Quantum is the number of instructions a thread retires before the
	// scheduler rotates. Defaults to 64.
	Quantum int
	// FlowWindow, when non-zero, enables the paper's flow-control
	// scheduler (Section III-B): a thread is descheduled while its
	// retired-instruction count exceeds the minimum among running
	// threads by more than the window. This enforces equal forward
	// progress during analysis.
	FlowWindow uint64
	// MaxSteps aborts the run with ErrMaxSteps when exceeded (0 = no cap).
	MaxSteps uint64
	// Record, when non-nil, accumulates the thread interleaving.
	Record *Schedule
	// QuantumBias, when non-empty, multiplies each thread's scheduling
	// quantum by the given per-thread factor. It emulates host-processor
	// imbalance (external load, frequency differences) during recording —
	// the skew the paper's flow-control mechanism exists to neutralize
	// (Section III-B).
	QuantumBias []int
}

// RequestStop asks the current Run/RunSchedule loop to return after the
// instruction that set it. Observers use it to stop at region markers.
func (m *Machine) RequestStop() { m.stopReq = true }

// blockMode reports whether the drivers should retire instructions in
// block batches: mandatory when block observers are attached (they must
// see coalesced events), profitable when no observers are attached at
// all. Per-instruction observers with no block observers keep the plain
// Step loop (assembling unused block events would only cost).
func (m *Machine) blockMode() bool {
	return len(m.blockObservers) > 0 || (len(m.observers) == 0 && !m.fastDisabled)
}

// Run drives the machine with a deterministic round-robin scheduler until
// every thread halts, an observer requests a stop, or an error occurs.
// When block observers are attached (or no observers at all), it retires
// instructions through the block-batched engine; the schedule it records
// and the states it visits are identical either way. Machine faults
// raised mid-step (unimplemented opcode, wild address, return past the
// entry frame) surface as a *ExecError wrapping ErrMachine.
func (m *Machine) Run(opts RunOpts) (err error) {
	defer Recover(&err)
	return m.run(opts, m.blockMode())
}

// RunBlocks is Run with block-batched dispatch forced on: every retired
// batch is delivered to the machine's BlockObservers as one coalesced
// BlockEvent. Per-instruction observers, if any, still fire exactly —
// the batches are then assembled from the precise Step path.
func (m *Machine) RunBlocks(opts RunOpts) (err error) {
	defer Recover(&err)
	return m.run(opts, true)
}

func (m *Machine) run(opts RunOpts, blocks bool) error {
	q := opts.Quantum
	if q <= 0 {
		q = 64
	}
	m.stopReq = false
	var steps uint64
	for !m.Done() {
		progressed := false
		minIC := m.minRunningICount()
		for tid := range m.Threads {
			t := m.Threads[tid]
			if t.State != StateRunning {
				continue
			}
			if opts.FlowWindow > 0 && t.ICount > minIC+opts.FlowWindow {
				continue // too far ahead; let the others catch up
			}
			quantum := q
			if tid < len(opts.QuantumBias) && opts.QuantumBias[tid] > 0 {
				quantum = q * opts.QuantumBias[tid]
			}
			ran := 0
			if blocks {
				ev := m.getBlockEvent()
				for ran < quantum {
					if !m.StepBlock(tid, uint64(quantum-ran), ev) {
						break
					}
					ran += int(ev.Instrs)
					steps += ev.Instrs
					for _, o := range m.blockObservers {
						o.OnBlock(ev)
					}
					if m.stopReq {
						break
					}
				}
				m.putBlockEvent(ev)
			} else {
				for ran < quantum {
					_, ok := m.Step(tid)
					if !ok {
						break
					}
					ran++
					steps++
					if m.stopReq {
						break
					}
				}
			}
			if ran > 0 {
				progressed = true
				if opts.Record != nil {
					appendRun(opts.Record, tid, ran)
				}
			}
			if m.stopReq {
				m.stopReq = false
				return nil
			}
			if opts.MaxSteps > 0 && steps >= opts.MaxSteps {
				return fmt.Errorf("%w (%d)", ErrMaxSteps, opts.MaxSteps)
			}
		}
		if !progressed {
			if m.Deadlocked() {
				return ErrDeadlock
			}
			if !m.Done() {
				// All running threads were outside the flow window
				// with no minimum runner — cannot happen unless the
				// window excluded the minimum thread, which it never
				// does. Guard anyway.
				return fmt.Errorf("exec: scheduler made no progress")
			}
		}
	}
	return nil
}

func (m *Machine) minRunningICount() uint64 {
	min := ^uint64(0)
	for _, t := range m.Threads {
		if t.State == StateRunning && t.ICount < min {
			min = t.ICount
		}
	}
	return min
}

func appendRun(s *Schedule, tid, n int) {
	if k := len(*s); k > 0 && (*s)[k-1].Tid == tid && uint64((*s)[k-1].N)+uint64(n) < 1<<32 {
		(*s)[k-1].N += uint32(n)
		return
	}
	*s = append(*s, ScheduleEntry{Tid: tid, N: uint32(n)})
}

// RunSchedule replays a recorded thread interleaving exactly (constrained
// replay). It returns ErrScheduleDiverged if the schedule asks a thread to
// run when it cannot, and stops early if an observer requests a stop.
// Like Run, it retires instructions through the block-batched engine when
// the observer configuration allows; the replayed execution is identical.
// Machine faults surface as a *ExecError wrapping ErrMachine, as in Run.
func (m *Machine) RunSchedule(sched Schedule) (err error) {
	defer Recover(&err)
	m.stopReq = false
	if m.blockMode() {
		ev := m.getBlockEvent()
		defer m.putBlockEvent(ev)
		for _, e := range sched {
			rem := uint64(e.N)
			for rem > 0 {
				if !m.StepBlock(e.Tid, rem, ev) {
					return fmt.Errorf("%w: thread %d is %s", ErrScheduleDiverged,
						e.Tid, m.Threads[e.Tid].State)
				}
				rem -= ev.Instrs
				for _, o := range m.blockObservers {
					o.OnBlock(ev)
				}
				if m.stopReq {
					m.stopReq = false
					return nil
				}
			}
		}
		return nil
	}
	for _, e := range sched {
		for i := uint32(0); i < e.N; i++ {
			if _, ok := m.Step(e.Tid); !ok {
				return fmt.Errorf("%w: thread %d is %s", ErrScheduleDiverged,
					e.Tid, m.Threads[e.Tid].State)
			}
			if m.stopReq {
				m.stopReq = false
				return nil
			}
		}
	}
	return nil
}
