package exec

import (
	"reflect"
	"testing"

	"looppoint/internal/isa"
)

// roundTripVariant configures how the continued machine runs: the fast
// block tier, the per-instruction reference engine, or the block tier
// with a break PC registered (marker splitting). A mid-run snapshot must
// restore byte-identically under every mode because the parallel
// analysis front-end replays shards under different observer tiers than
// the sweep that captured the checkpoints.
type roundTripVariant struct {
	name  string
	setup func(m *Machine, p *isa.Program)
}

func roundTripVariants() []roundTripVariant {
	return []roundTripVariant{
		{"fast", func(m *Machine, p *isa.Program) {}},
		{"per-instr", func(m *Machine, p *isa.Program) {
			m.SetFastPath(false)
			m.AddObserver(ObserverFunc(func(ev *Event) {}))
		}},
		{"break-pc", func(m *Machine, p *isa.Program) {
			// Register every conditional self-loop header as a break PC so
			// the continuation exercises single-instruction marker events.
			for _, img := range p.Images {
				for _, rt := range img.Routines {
					for i, blk := range rt.Blocks {
						term := blk.Instrs[len(blk.Instrs)-1]
						if term.Op == isa.OpBrCond && (term.Target == i || term.Else == i) {
							m.AddBreakPC(blk.Addr)
						}
					}
				}
			}
		}},
	}
}

// TestSnapshotRoundTrip is the mid-run resume property test: for swept
// cut points N, run N steps, Snapshot, Restore into a fresh machine,
// run the remaining schedule, and require the final Snapshot to
// deep-equal an uninterrupted run — including threads parked mid-wait
// (futex queues) and the OS model's internal state.
func TestSnapshotRoundTrip(t *testing.T) {
	for name, p := range fastPathPrograms(t) {
		t.Run(name, func(t *testing.T) {
			rec := NewMachine(p, 11)
			var sched Schedule
			if err := rec.Run(RunOpts{FlowWindow: 64, QuantumBias: []int{3, 1, 2, 1}, Record: &sched}); err != nil {
				t.Fatalf("record: %v", err)
			}
			total := sched.Steps()

			ref := NewMachine(p, 11)
			if err := ref.RunSchedule(sched); err != nil {
				t.Fatalf("reference replay: %v", err)
			}
			final := ref.Snapshot()

			// Fractional cut points, plus cut points discovered by walking
			// the schedule entry-by-entry and noting where threads are
			// parked in futex waits — those are the states where a naive
			// restore (thread-ID-order queues, no OS state) would diverge.
			cuts := map[uint64]bool{}
			for _, frac := range []uint64{1, 5, 7, 13, 29, 64} {
				cuts[total*frac/64] = true
			}
			walk := NewMachine(p, 11)
			var at uint64
			parkedCuts := 0
			for _, e := range sched {
				if err := walk.RunSchedule(Schedule{e}); err != nil {
					t.Fatalf("walk: %v", err)
				}
				at += uint64(e.N)
				if len(walk.futexQ) > 0 && parkedCuts < 4 && !cuts[at] {
					cuts[at] = true
					parkedCuts++
				}
			}

			parked := 0
			for n := range cuts {
				if n == 0 || n >= total {
					continue
				}
				a := NewMachine(p, 11)
				if err := a.RunSchedule(sched.Take(n)); err != nil {
					t.Fatalf("prefix run to %d: %v", n, err)
				}
				snap := a.Snapshot()
				if len(snap.Futexes) > 0 {
					parked++
				}
				for _, v := range roundTripVariants() {
					b := NewMachine(p, 99) // wrong seed on purpose: Restore must overwrite OS state
					v.setup(b, p)
					b.Restore(snap)
					if err := b.RunSchedule(sched.Skip(n)); err != nil {
						t.Fatalf("cut %d (%s): resume: %v", n, v.name, err)
					}
					got := b.Snapshot()
					if !reflect.DeepEqual(got, final) {
						t.Fatalf("cut %d (%s): resumed final snapshot differs from uninterrupted run", n, v.name)
					}
				}
			}
			if name == "phased-passive" && parked == 0 {
				t.Fatal("no cut point caught a thread parked mid-wait; the sweep is not exercising futex restore")
			}
		})
	}
}

// TestRestoreHonorsFutexQueueOrder pins that Restore rebuilds futex wait
// queues in exactly the captured order rather than re-sorting by thread
// ID: wake order is FIFO, so queue order is architectural state.
func TestRestoreHonorsFutexQueueOrder(t *testing.T) {
	p := phasedProgramWithWaiters(t)
	m := NewMachine(p, 5)
	var sched Schedule
	if err := m.Run(RunOpts{Record: &sched}); err != nil {
		t.Fatalf("run: %v", err)
	}

	// Find a prefix at which some queue holds at least two waiters.
	total := sched.Steps()
	var snap *Snapshot
	for n := uint64(1); n < total; n++ {
		a := NewMachine(p, 5)
		if err := a.RunSchedule(sched.Take(n)); err != nil {
			t.Fatalf("prefix %d: %v", n, err)
		}
		s := a.Snapshot()
		for _, q := range s.Futexes {
			if len(q.Tids) >= 2 {
				snap = s
			}
		}
		if snap != nil {
			break
		}
	}
	if snap == nil {
		t.Skip("no multi-waiter futex state reachable in this program")
	}

	// Reverse the captured order and restore: the machine's queue must
	// reflect the snapshot verbatim, not thread-ID order.
	for i := range snap.Futexes {
		q := snap.Futexes[i].Tids
		for l, r := 0, len(q)-1; l < r; l, r = l+1, r-1 {
			q[l], q[r] = q[r], q[l]
		}
	}
	b := NewMachine(p, 5)
	b.Restore(snap)
	for _, q := range snap.Futexes {
		if !reflect.DeepEqual(b.futexQ[q.Addr], q.Tids) {
			t.Fatalf("futex %#x restored as %v, want %v", q.Addr, b.futexQ[q.Addr], q.Tids)
		}
	}
}

func phasedProgramWithWaiters(t *testing.T) *isa.Program {
	for name, p := range fastPathPrograms(t) {
		if name == "phased-passive" {
			return p
		}
	}
	t.Fatal("phased-passive program missing")
	return nil
}

// TestReplayOSPositionSeeding pins NewReplayOSAt and the StatefulOS
// round-trip on the replay OS: a window replay seeded with the cursor a
// snapshot captured consumes the log exactly where the full replay did.
func TestReplayOSPositionSeeding(t *testing.T) {
	log := [][]int64{{10, 11, 12}, {20, 21}}
	o := NewReplayOS(log)
	o.Syscall(nil, 0, isa.SysRand, 0)
	o.Syscall(nil, 1, isa.SysRand, 0)
	o.Syscall(nil, 0, isa.SysRand, 0)
	state := o.SnapshotOS()

	seeded := NewReplayOSAt(log, []int{2, 1})
	if got := seeded.Syscall(nil, 0, isa.SysRand, 0); got != 12 {
		t.Fatalf("seeded tid 0 got %d, want 12", got)
	}
	if got := seeded.Syscall(nil, 1, isa.SysRand, 0); got != 21 {
		t.Fatalf("seeded tid 1 got %d, want 21", got)
	}

	restored := NewReplayOS(log)
	restored.RestoreOS(state)
	if got := restored.Positions(); !reflect.DeepEqual(got, []int{2, 1}) {
		t.Fatalf("RestoreOS positions = %v, want [2 1]", got)
	}
}
