package exec

import "looppoint/internal/isa"

// This file defines the block-granular observer tier. The per-instruction
// Observer interface (machine.go) is the precise tier: every retired
// instruction produces one OnInstr call. The BlockObserver tier trades
// granularity for throughput: the interpreter executes whole basic blocks
// (and back-to-back re-entries of self-loop blocks) in a tight loop and
// emits ONE coalesced BlockEvent per batch. Consumers that only need
// block-level counts (BBV profiling, functional cache/branch warming,
// region extraction) run an order of magnitude fewer dynamic dispatches.
//
// Exactness is preserved through break PCs (AddBreakPC): entering a block
// whose address is registered produces a single-instruction event, so a
// (PC, count) region marker still fires at precisely the same retired-
// instruction position as it would under per-instruction observation.

// RefKind classifies one data-memory reference inside a BlockEvent.
type RefKind uint8

// Reference kinds. Futex and syscall instructions are deliberately not
// recorded: they touch memory functionally but bypass the data cache in
// the timing model, and no block-tier consumer needs their addresses.
const (
	RefLoad RefKind = iota
	RefStore
	RefAtomic
)

// MemRef is one data-memory reference within a block-batched event. Off
// is the 0-based offset of the owning instruction in the event — the
// position at which a per-instruction replay would observe the access —
// so consumers can reconstruct exact access ordering (and LRU clocks)
// across coalesced passes.
type MemRef struct {
	Off  uint32
	Kind RefKind
	Addr uint64 // byte address
}

// BlockEvent describes a batched run of instructions inside one basic
// block: at most one partial leading pass (when resuming mid-block) plus
// any number of passes starting at instruction 0. Like Event, the value
// handed to observers is recycled (via the machine's free list) after
// dispatch; observers must not retain it or its slices past OnBlock.
type BlockEvent struct {
	Tid   int
	Block *isa.Block
	// FirstIdx is the index within Block.Instrs of the event's first
	// executed instruction. Non-zero when resuming mid-block (after a
	// futex wake, a budget split, or a break-PC split).
	FirstIdx int
	// Entries counts block entries in the event: passes that began at
	// instruction 0 (a resumed partial pass is not an entry, matching
	// Event.BlockEntry semantics).
	Entries uint64
	// Instrs is the number of instructions the event retired.
	Instrs uint64
	// Mem lists the data-memory references (loads, stores, atomics) in
	// program order; futex and syscall instructions are not recorded.
	Mem []MemRef
	// CondSelf counts executions of a conditional-branch terminator that
	// re-entered the same block; every one had outcome SelfTaken (a
	// given block re-enters itself through only one edge per event).
	// CondExit reports that the event's final instruction was a
	// conditional terminator with outcome ExitTaken. Together they
	// replay the exact branch-outcome sequence of the batch.
	CondSelf  uint64
	SelfTaken bool
	CondExit  bool
	ExitTaken bool
	// Blocked reports that the final instruction parked the thread on a
	// futex. Woken lists threads woken by a FutexWake; a wake that
	// unparks at least one thread always ends the event so schedulers
	// observe it at the exact instruction position it occurred.
	Blocked bool
	Woken   []int
}

// reset prepares a (possibly recycled) event for reuse, keeping the Mem
// and Woken backing arrays so steady-state dispatch is allocation-free.
func (ev *BlockEvent) reset(tid int, blk *isa.Block, firstIdx int) {
	ev.Tid = tid
	ev.Block = blk
	ev.FirstIdx = firstIdx
	ev.Entries = 0
	ev.Instrs = 0
	ev.Mem = ev.Mem[:0]
	ev.CondSelf = 0
	ev.SelfTaken = false
	ev.CondExit = false
	ev.ExitTaken = false
	ev.Blocked = false
	ev.Woken = ev.Woken[:0]
}

// BlockObserver receives coalesced block events. Implementations must be
// cheap and must not retain the event (see BlockEvent).
type BlockObserver interface {
	OnBlock(ev *BlockEvent)
}

// BlockObserverFunc adapts a function to the BlockObserver interface.
type BlockObserverFunc func(ev *BlockEvent)

// OnBlock implements BlockObserver.
func (f BlockObserverFunc) OnBlock(ev *BlockEvent) { f(ev) }

// PCBreaker is implemented by block observers that need exact
// per-instruction positioning at specific block addresses — region-marker
// consumers, chiefly. AddBlockObserver registers every returned address
// as a break PC so entries of those blocks arrive as single-instruction
// events at their precise (PC, count) boundary.
type PCBreaker interface {
	BreakPCs() []uint64
}

// AddBlockObserver registers a block-granular observer. If it implements
// PCBreaker, its addresses are registered as break PCs first.
func (m *Machine) AddBlockObserver(o BlockObserver) {
	if br, ok := o.(PCBreaker); ok {
		for _, pc := range br.BreakPCs() {
			m.AddBreakPC(pc)
		}
	}
	m.blockObservers = append(m.blockObservers, o)
}

// getBlockEvent pops a recycled event from the machine's free list (or
// allocates the pool's first). putBlockEvent returns it after dispatch.
// The pool keeps the drivers' steady state allocation-free.
func (m *Machine) getBlockEvent() *BlockEvent {
	if n := len(m.evFree); n > 0 {
		ev := m.evFree[n-1]
		m.evFree = m.evFree[:n-1]
		return ev
	}
	return &BlockEvent{}
}

func (m *Machine) putBlockEvent(ev *BlockEvent) {
	m.evFree = append(m.evFree, ev)
}
