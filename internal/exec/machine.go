// Package exec provides the functional execution engine for mini-ISA
// programs: an interpreter for N threads over a shared flat memory, with
// pluggable per-instruction observers, futex semantics, an OS model with
// recordable side effects, and deterministic schedulers (round-robin and
// the paper's flow-control scheduler, Section III-B).
package exec

import (
	"math"

	"looppoint/internal/isa"
)

// ThreadState describes a thread's run state.
type ThreadState uint8

// Thread states.
const (
	StateRunning ThreadState = iota
	StateBlocked             // parked on a futex
	StateHalted
)

func (s ThreadState) String() string {
	switch s {
	case StateRunning:
		return "running"
	case StateBlocked:
		return "blocked"
	case StateHalted:
		return "halted"
	}
	return "unknown"
}

type frame struct {
	rt  *isa.Routine
	blk int
	idx int
}

// Thread is a single hardware-thread context.
type Thread struct {
	ID    int
	R     [isa.NumIntRegs]int64
	F     [isa.NumFloatRegs]float64
	State ThreadState

	cur   frame
	stack []frame

	ICount    uint64 // retired instructions
	futexAddr uint64 // word address the thread is parked on (StateBlocked)
}

// PC returns the address of the next instruction the thread will execute.
func (t *Thread) PC() uint64 {
	if t.State == StateHalted {
		return 0
	}
	return t.cur.rt.Blocks[t.cur.blk].Instrs[t.cur.idx].Addr
}

// Event describes one executed (or blocking) instruction.
//
// Aliasing contract: a single machine-owned Event value is reused by
// every call to Step — the pointer observers receive (and Step returns)
// is invalidated by the next Step on the same machine. Observers and
// drivers must consume the event before stepping again and must never
// retain the pointer or the Woken slice. The block tier (BlockEvent) has
// the same lifetime rule but is recycled through an explicit free list,
// so drivers that need to hold an event across steps can own one
// (StepBlock fills a caller-provided event and copies nothing).
type Event struct {
	Tid        int
	Instr      *isa.Instr
	Block      *isa.Block
	BlockEntry bool   // first instruction of the block
	MemAddr    uint64 // byte address for memory ops
	IsMem      bool
	IsWrite    bool
	IsBranch   bool
	Taken      bool
	NextAddr   uint64 // address of the next instruction (branch resolution)
	Blocked    bool   // the instruction parked the thread on a futex
	Woken      []int  // threads woken by a FutexWake
}

// Observer receives every executed instruction. Implementations must be
// cheap; they run on the interpreter hot path.
type Observer interface {
	OnInstr(ev *Event)
}

// ObserverFunc adapts a function to the Observer interface.
type ObserverFunc func(ev *Event)

// OnInstr implements Observer.
func (f ObserverFunc) OnInstr(ev *Event) { f(ev) }

// Machine executes a linked program.
type Machine struct {
	Prog    *isa.Program
	Mem     []uint64
	Threads []*Thread
	OS      OS

	observers      []Observer
	blockObservers []BlockObserver
	futexQ         map[uint64][]int // word address -> waiting thread IDs (FIFO)
	ev             Event
	evFree         []*BlockEvent // recycled block events (see getBlockEvent)
	steps          uint64
	stopReq        bool

	// Block-batched fast path state (blockcache.go).
	dblocks      []decodedBlock // lazily decoded, indexed by Block.Global
	breakPCs     map[uint64]bool
	fastDisabled bool
}

// NewMachine creates a machine for a linked program with zeroed memory and
// all threads positioned at their entry routines. The default OS is a
// deterministic pseudo-random source seeded with seed.
func NewMachine(p *isa.Program, seed uint64) *Machine {
	m := &Machine{
		Prog:   p,
		Mem:    make([]uint64, p.MemWords),
		OS:     NewDefaultOS(seed),
		futexQ: make(map[uint64][]int),
	}
	for tid := 0; tid < p.NumThreads(); tid++ {
		t := &Thread{ID: tid, cur: frame{rt: p.Entries[tid]}}
		t.R[isa.RegTid] = int64(tid)
		m.Threads = append(m.Threads, t)
	}
	return m
}

// AddObserver registers a per-instruction observer. Any per-instruction
// observer forces the drivers onto the precise Step path; block-tier
// observers keep receiving coalesced events assembled from it.
func (m *Machine) AddObserver(o Observer) { m.observers = append(m.observers, o) }

// RemoveObservers drops all registered observers, both tiers.
func (m *Machine) RemoveObservers() {
	m.observers = nil
	m.blockObservers = nil
}

// Done reports whether every thread has halted.
func (m *Machine) Done() bool {
	for _, t := range m.Threads {
		if t.State != StateHalted {
			return false
		}
	}
	return true
}

// Deadlocked reports whether at least one thread is alive and none can run.
func (m *Machine) Deadlocked() bool {
	alive := false
	for _, t := range m.Threads {
		switch t.State {
		case StateRunning:
			return false
		case StateBlocked:
			alive = true
		}
	}
	return alive
}

// TotalICount returns the total retired instruction count across threads.
func (m *Machine) TotalICount() uint64 {
	var n uint64
	for _, t := range m.Threads {
		n += t.ICount
	}
	return n
}

// LoadWord reads one word of shared memory (for tests and runtime setup).
func (m *Machine) LoadWord(addr uint64) uint64 { return m.Mem[addr] }

// StoreWord writes one word of shared memory.
func (m *Machine) StoreWord(addr, v uint64) { m.Mem[addr] = v }

// Step executes one instruction of thread tid. It returns the event
// describing the instruction and whether an instruction was retired.
// Blocked and halted threads return (nil, false); an instruction that
// parks the thread on a futex returns its event with Blocked set and
// retired == true (the wait itself counts as an executed instruction,
// matching how a futex syscall appears in a real trace).
func (m *Machine) Step(tid int) (*Event, bool) {
	t := m.Threads[tid]
	if t.State != StateRunning {
		return nil, false
	}
	blk := t.cur.rt.Blocks[t.cur.blk]
	in := &blk.Instrs[t.cur.idx]

	ev := &m.ev
	*ev = Event{Tid: tid, Instr: in, Block: blk, BlockEntry: t.cur.idx == 0}
	m.steps++

	advance := true // move to next instruction within block
	switch in.Op {
	case isa.OpNop, isa.OpPause:
		// nothing
	case isa.OpIAdd, isa.OpISub, isa.OpIMul, isa.OpIDiv, isa.OpIRem,
		isa.OpIAnd, isa.OpIOr, isa.OpIXor, isa.OpIShl, isa.OpIShr:
		b := t.R[in.B]
		if in.UseImm {
			b = in.Imm
		}
		t.R[in.Dst] = intALU(in.Op, t.R[in.A], b)
	case isa.OpIMov:
		if in.UseImm {
			t.R[in.Dst] = in.Imm
		} else {
			t.R[in.Dst] = t.R[in.A]
		}
	case isa.OpFAdd, isa.OpFSub, isa.OpFMul, isa.OpFDiv:
		t.F[in.Dst] = floatALU(in.Op, t.F[in.A], t.F[in.B])
	case isa.OpFMov:
		if in.UseImm {
			t.F[in.Dst] = in.FImm
		} else {
			t.F[in.Dst] = t.F[in.A]
		}
	case isa.OpFMA:
		t.F[in.Dst] = t.F[in.A]*t.F[in.B] + t.F[in.Dst]
	case isa.OpFSqrt:
		t.F[in.Dst] = math.Sqrt(t.F[in.A])
	case isa.OpFCmp:
		if in.Cond.EvalFloat(t.F[in.A], t.F[in.B]) {
			t.R[in.Dst] = 1
		} else {
			t.R[in.Dst] = 0
		}
	case isa.OpICvtF:
		t.F[in.Dst] = float64(t.R[in.A])
	case isa.OpFCvtI:
		t.R[in.Dst] = int64(t.F[in.A])

	case isa.OpILoad:
		a := m.effAddr(t, in)
		ev.IsMem, ev.MemAddr = true, a*8
		t.R[in.Dst] = int64(m.Mem[a])
	case isa.OpIStore:
		a := m.effAddr(t, in)
		ev.IsMem, ev.IsWrite, ev.MemAddr = true, true, a*8
		m.Mem[a] = uint64(t.R[in.B])
	case isa.OpFLoad:
		a := m.effAddr(t, in)
		ev.IsMem, ev.MemAddr = true, a*8
		t.F[in.Dst] = math.Float64frombits(m.Mem[a])
	case isa.OpFStore:
		a := m.effAddr(t, in)
		ev.IsMem, ev.IsWrite, ev.MemAddr = true, true, a*8
		m.Mem[a] = math.Float64bits(t.F[in.B])
	case isa.OpAtomicAdd:
		a := m.effAddr(t, in)
		ev.IsMem, ev.IsWrite, ev.MemAddr = true, true, a*8
		old := int64(m.Mem[a])
		m.Mem[a] = uint64(old + t.R[in.B])
		t.R[in.Dst] = old
	case isa.OpCmpXchg:
		a := m.effAddr(t, in)
		ev.IsMem, ev.IsWrite, ev.MemAddr = true, true, a*8
		if int64(m.Mem[a]) == t.R[in.B] {
			m.Mem[a] = uint64(t.R[in.Dst])
			t.R[in.Dst] = 1
		} else {
			t.R[in.Dst] = 0
		}
	case isa.OpXchg:
		a := m.effAddr(t, in)
		ev.IsMem, ev.IsWrite, ev.MemAddr = true, true, a*8
		old := int64(m.Mem[a])
		m.Mem[a] = uint64(t.R[in.B])
		t.R[in.Dst] = old

	case isa.OpBr:
		t.cur.blk, t.cur.idx = in.Target, 0
		advance = false
		ev.IsBranch, ev.Taken = true, true
	case isa.OpBrCond:
		b := t.R[in.B]
		if in.UseImm {
			b = in.Imm
		}
		ev.IsBranch = true
		if in.Cond.EvalInt(t.R[in.A], b) {
			t.cur.blk, ev.Taken = in.Target, true
		} else {
			t.cur.blk = in.Else
		}
		t.cur.idx = 0
		advance = false
	case isa.OpCall:
		t.stack = append(t.stack, frame{rt: t.cur.rt, blk: t.cur.blk, idx: t.cur.idx + 1})
		t.cur = frame{rt: in.Callee}
		advance = false
		ev.IsBranch, ev.Taken = true, true
	case isa.OpRet:
		if len(t.stack) == 0 {
			throwf("exec: thread %d returned from entry routine %s", tid, t.cur.rt.Name)
		}
		t.cur = t.stack[len(t.stack)-1]
		t.stack = t.stack[:len(t.stack)-1]
		advance = false
		ev.IsBranch, ev.Taken = true, true
	case isa.OpHalt:
		t.State = StateHalted
		advance = false

	case isa.OpFutexWait:
		a := m.effAddr(t, in)
		ev.IsMem, ev.MemAddr = true, a*8
		if int64(m.Mem[a]) == t.R[in.B] {
			t.State = StateBlocked
			t.futexAddr = a
			m.futexQ[a] = append(m.futexQ[a], tid)
			ev.Blocked = true
		}
	case isa.OpFutexWake:
		a := m.effAddr(t, in)
		ev.IsMem, ev.MemAddr = true, a*8
		n := t.R[in.B]
		woken := 0
		q := m.futexQ[a]
		for len(q) > 0 && int64(woken) < n {
			wid := q[0]
			q = q[1:]
			w := m.Threads[wid]
			w.State = StateRunning
			w.cur.idx++ // resume past the FutexWait
			ev.Woken = append(ev.Woken, wid)
			woken++
		}
		if len(q) == 0 {
			delete(m.futexQ, a)
		} else {
			m.futexQ[a] = q
		}
		t.R[in.Dst] = int64(woken)
	case isa.OpSyscall:
		t.R[in.Dst] = m.OS.Syscall(m, tid, isa.SyscallNo(in.Imm), t.R[in.A])
	default:
		throwf("exec: unimplemented opcode %s", in.Op)
	}

	if advance && t.State != StateBlocked {
		t.cur.idx++
	}
	t.ICount++
	if t.State == StateRunning {
		ev.NextAddr = t.PC()
	}
	for _, o := range m.observers {
		o.OnInstr(ev)
	}
	return ev, true
}

func (m *Machine) effAddr(t *Thread, in *isa.Instr) uint64 {
	a := uint64(t.R[in.A] + in.Imm)
	if a >= uint64(len(m.Mem)) {
		throwf("exec: thread %d: address %d out of range (mem %d words) at %s pc=%#x",
			t.ID, a, len(m.Mem), in.Op, in.Addr)
	}
	return a
}

func intALU(op isa.Op, a, b int64) int64 {
	switch op {
	case isa.OpIAdd:
		return a + b
	case isa.OpISub:
		return a - b
	case isa.OpIMul:
		return a * b
	case isa.OpIDiv:
		if b == 0 {
			return 0
		}
		return a / b
	case isa.OpIRem:
		if b == 0 {
			return 0
		}
		return a % b
	case isa.OpIAnd:
		return a & b
	case isa.OpIOr:
		return a | b
	case isa.OpIXor:
		return a ^ b
	case isa.OpIShl:
		return a << (uint64(b) & 63)
	case isa.OpIShr:
		return int64(uint64(a) >> (uint64(b) & 63))
	}
	panic("exec: not an integer ALU op")
}

func floatALU(op isa.Op, a, b float64) float64 {
	switch op {
	case isa.OpFAdd:
		return a + b
	case isa.OpFSub:
		return a - b
	case isa.OpFMul:
		return a * b
	case isa.OpFDiv:
		return a / b
	}
	panic("exec: not a float ALU op")
}
