package exec

import (
	"reflect"
	"testing"

	"looppoint/internal/isa"
	"looppoint/internal/omp"
	"looppoint/internal/testprog"
)

// machineState flattens everything architecturally visible for deep
// comparison between the fast and reference paths.
type machineState struct {
	Mem     []uint64
	Regs    [][isa.NumIntRegs]int64
	Fregs   [][isa.NumFloatRegs]float64
	States  []ThreadState
	ICounts []uint64
	Steps   uint64
	PCs     []uint64
}

func captureState(m *Machine) machineState {
	s := machineState{Mem: append([]uint64(nil), m.Mem...), Steps: m.steps}
	for _, t := range m.Threads {
		s.Regs = append(s.Regs, t.R)
		s.Fregs = append(s.Fregs, t.F)
		s.States = append(s.States, t.State)
		s.ICounts = append(s.ICounts, t.ICount)
		if t.State != StateHalted {
			s.PCs = append(s.PCs, t.PC())
		} else {
			s.PCs = append(s.PCs, 0)
		}
	}
	return s
}

func fastPathPrograms(t testing.TB) map[string]*isa.Program {
	out := map[string]*isa.Program{}
	for _, policy := range []omp.WaitPolicy{omp.Passive, omp.Active} {
		name := "passive"
		if policy == omp.Active {
			name = "active"
		}
		cp, _ := buildCounterProgram(t, 4, 200, policy)
		out["counter-"+name] = cp
		out["phased-"+name] = testprog.Phased(4, 3, 40, policy)
		out["hetero-"+name] = testprog.Heterogeneous(4, 3, 40, policy)
		out["syscalls-"+name] = testprog.WithSyscalls(2, 60, policy)
	}
	out["counter-1t"], _ = buildCounterProgram(t, 1, 500, omp.Passive)
	return out
}

// TestStepBlockMatchesStep drives two machines through identical budget
// sequences — one on the tight-loop fast path, one on the Step-assembled
// reference path — and requires identical event streams and identical
// architectural state at every event boundary.
func TestStepBlockMatchesStep(t *testing.T) {
	for name, p := range fastPathPrograms(t) {
		t.Run(name, func(t *testing.T) {
			fast := NewMachine(p, 7)
			slow := NewMachine(p, 7)
			slow.SetFastPath(false)

			// A break PC exercises marker splitting: use the first
			// worker-loop-like block address we can find (any block with
			// a conditional self-loop), plus varied budgets.
			var fev, sev BlockEvent
			budgets := []uint64{1, 3, 64, 7, 1000, 2, 17}
			bi := 0
			for round := 0; round < 200000 && !fast.Done(); round++ {
				tid := round % p.NumThreads()
				b := budgets[bi%len(budgets)]
				bi++
				fok := fast.StepBlock(tid, b, &fev)
				sok := slow.StepBlock(tid, b, &sev)
				if fok != sok {
					t.Fatalf("round %d tid %d: fast ok=%v slow ok=%v", round, tid, fok, sok)
				}
				if !fok {
					continue
				}
				if !reflect.DeepEqual(&fev, &sev) {
					t.Fatalf("round %d tid %d: events differ\nfast: %+v\nslow: %+v", round, tid, fev, sev)
				}
				if fast.Deadlocked() {
					break
				}
			}
			fs, ss := captureState(fast), captureState(slow)
			if !reflect.DeepEqual(fs, ss) {
				t.Fatalf("final machine state differs between fast and reference paths")
			}
		})
	}
}

// TestRunBlockModeMatchesStepLoop pins that Run in block mode visits the
// same execution as the per-instruction loop: identical recorded
// schedules, identical final state, and identical per-block retired
// counts observed through the respective observer tiers.
func TestRunBlockModeMatchesStepLoop(t *testing.T) {
	for name, p := range fastPathPrograms(t) {
		t.Run(name, func(t *testing.T) {
			for _, opts := range []RunOpts{
				{},
				{Quantum: 5},
				{FlowWindow: 32},
				{FlowWindow: 16, QuantumBias: []int{1, 3, 1, 2}},
			} {
				slow := NewMachine(p, 3)
				slow.SetFastPath(false)
				slowCounts := map[int]uint64{}
				slow.AddObserver(ObserverFunc(func(ev *Event) {
					slowCounts[ev.Block.Global]++
				}))
				var slowSched Schedule
				so := opts
				so.Record = &slowSched
				if err := slow.Run(so); err != nil {
					t.Fatalf("slow run: %v", err)
				}

				fast := NewMachine(p, 3)
				fastCounts := map[int]uint64{}
				fast.AddBlockObserver(BlockObserverFunc(func(ev *BlockEvent) {
					fastCounts[ev.Block.Global] += ev.Instrs
				}))
				var fastSched Schedule
				fo := opts
				fo.Record = &fastSched
				if err := fast.Run(fo); err != nil {
					t.Fatalf("fast run: %v", err)
				}

				if !reflect.DeepEqual(fastSched, slowSched) {
					t.Fatalf("opts %+v: recorded schedules differ (%d vs %d entries)",
						opts, len(fastSched), len(slowSched))
				}
				if !reflect.DeepEqual(captureState(fast), captureState(slow)) {
					t.Fatalf("opts %+v: final state differs", opts)
				}
				if !reflect.DeepEqual(fastCounts, slowCounts) {
					t.Fatalf("opts %+v: per-block instruction counts differ", opts)
				}
			}
		})
	}
}

// TestRunScheduleBlockModeMatches replays a recorded schedule through
// both engines and compares final states.
func TestRunScheduleBlockModeMatches(t *testing.T) {
	for name, p := range fastPathPrograms(t) {
		t.Run(name, func(t *testing.T) {
			rec := NewMachine(p, 9)
			var sched Schedule
			if err := rec.Run(RunOpts{FlowWindow: 64, Record: &sched}); err != nil {
				t.Fatalf("record: %v", err)
			}
			slow := NewMachine(p, 9)
			slow.SetFastPath(false)
			if err := slow.RunSchedule(sched); err != nil {
				t.Fatalf("slow replay: %v", err)
			}
			fast := NewMachine(p, 9)
			if err := fast.RunSchedule(sched); err != nil {
				t.Fatalf("fast replay: %v", err)
			}
			if !reflect.DeepEqual(captureState(fast), captureState(slow)) {
				t.Fatal("replayed final state differs between engines")
			}
			if !reflect.DeepEqual(captureState(fast), captureState(rec)) {
				t.Fatal("replayed state differs from recorded run")
			}
		})
	}
}

// TestBreakPCSplitsBlocks pins the marker-exactness mechanism: entering
// a registered break-PC block must always produce a single-instruction
// event with FirstIdx 0, the block's remainder arriving separately, and
// coalescing across the break block must be fully suppressed.
func TestBreakPCSplitsBlocks(t *testing.T) {
	p, _ := buildCounterProgram(t, 2, 50, omp.Passive)
	// Each thread's routine has its own conditional self-loop block;
	// register every one of them as a break PC.
	loopAddrs := map[uint64]bool{}
	for _, img := range p.Images {
		for _, rt := range img.Routines {
			for i, blk := range rt.Blocks {
				term := blk.Instrs[len(blk.Instrs)-1]
				if term.Op == isa.OpBrCond && (term.Target == i || term.Else == i) {
					loopAddrs[blk.Addr] = true
				}
			}
		}
	}
	if len(loopAddrs) == 0 {
		t.Fatal("no self-loop block found")
	}

	m := NewMachine(p, 1)
	for addr := range loopAddrs {
		m.AddBreakPC(addr)
	}
	var ev BlockEvent
	entries := uint64(0)
	for !m.Done() {
		tid := -1
		for i, th := range m.Threads {
			if th.State == StateRunning {
				tid = i
				break
			}
		}
		if tid < 0 {
			t.Fatal("deadlock")
		}
		if !m.StepBlock(tid, 1000, &ev) {
			t.Fatal("StepBlock failed on running thread")
		}
		if loopAddrs[ev.Block.Addr] && ev.FirstIdx == 0 {
			if ev.Instrs != 1 {
				t.Fatalf("break-PC entry event has %d instrs, want 1", ev.Instrs)
			}
			if ev.Entries != 1 {
				t.Fatalf("break-PC entry event has %d entries, want 1", ev.Entries)
			}
			entries++
		}
		if loopAddrs[ev.Block.Addr] && ev.Entries > 1 {
			t.Fatalf("break-PC block was coalesced: %d entries", ev.Entries)
		}
	}
	// Each thread iterates the loop 50 times: 100 entries total.
	if entries != 100 {
		t.Fatalf("observed %d break-PC entries, want 100", entries)
	}
}

// TestBlockEventDispatchAllocFree pins the free-list guarantee: steady-
// state block dispatch through Run must not allocate per event.
func TestBlockEventDispatchAllocFree(t *testing.T) {
	p, _ := buildCounterProgram(t, 2, 1_000_000_000, omp.Passive)
	m := NewMachine(p, 1)
	var instrs uint64
	m.AddBlockObserver(BlockObserverFunc(func(ev *BlockEvent) { instrs += ev.Instrs }))
	var ev BlockEvent
	// Warm the decode cache and the event's Mem capacity.
	m.StepBlock(0, 1024, &ev)
	allocs := testing.AllocsPerRun(100, func() {
		for tid := 0; tid < 2; tid++ {
			if m.StepBlock(tid, 256, &ev) {
				for _, o := range m.blockObservers {
					o.OnBlock(&ev)
				}
			}
		}
	})
	if allocs != 0 {
		t.Fatalf("block dispatch allocates %.1f objects per round, want 0", allocs)
	}
	if instrs == 0 {
		t.Fatal("observer saw no instructions")
	}
}

// TestBlockEventFreeListRecycles verifies events are actually recycled.
func TestBlockEventFreeListRecycles(t *testing.T) {
	p, _ := buildCounterProgram(t, 1, 10, omp.Passive)
	m := NewMachine(p, 1)
	a := m.getBlockEvent()
	m.putBlockEvent(a)
	b := m.getBlockEvent()
	if a != b {
		t.Fatal("free list did not recycle the event")
	}
	m.putBlockEvent(b)
}
