package exec

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"looppoint/internal/isa"
)

// evalBin builds a one-shot program computing `a op b` and returns the
// integer result.
func evalBin(t *testing.T, op isa.Op, a, b int64) int64 {
	t.Helper()
	p := isa.NewProgram("alu", 1)
	out := p.Alloc("out", 1)
	img := p.AddImage("main", false)
	r := img.NewRoutine("main")
	blk := r.NewBlock("entry")
	blk.IMovI(1, a)
	blk.IMovI(2, b)
	blk.IOp(op, 3, 1, 2)
	blk.IMovI(4, int64(out))
	blk.IStore(4, 0, 3)
	blk.Halt()
	p.SetEntry(0, r)
	if err := p.Link(); err != nil {
		t.Fatal(err)
	}
	m := NewMachine(p, 1)
	if err := m.Run(RunOpts{}); err != nil {
		t.Fatal(err)
	}
	return int64(m.LoadWord(out))
}

func evalFBin(t *testing.T, op isa.Op, a, b float64) float64 {
	t.Helper()
	p := isa.NewProgram("falu", 1)
	out := p.Alloc("out", 1)
	img := p.AddImage("main", false)
	r := img.NewRoutine("main")
	blk := r.NewBlock("entry")
	blk.FMovI(1, a)
	blk.FMovI(2, b)
	blk.FOp(op, 3, 1, 2)
	blk.IMovI(4, int64(out))
	blk.FStore(4, 0, 3)
	blk.Halt()
	p.SetEntry(0, r)
	if err := p.Link(); err != nil {
		t.Fatal(err)
	}
	m := NewMachine(p, 1)
	if err := m.Run(RunOpts{}); err != nil {
		t.Fatal(err)
	}
	return math.Float64frombits(m.LoadWord(out))
}

func TestIntegerALUMatchesGoSemantics(t *testing.T) {
	cases := []struct {
		op  isa.Op
		ref func(a, b int64) int64
	}{
		{isa.OpIAdd, func(a, b int64) int64 { return a + b }},
		{isa.OpISub, func(a, b int64) int64 { return a - b }},
		{isa.OpIMul, func(a, b int64) int64 { return a * b }},
		{isa.OpIAnd, func(a, b int64) int64 { return a & b }},
		{isa.OpIOr, func(a, b int64) int64 { return a | b }},
		{isa.OpIXor, func(a, b int64) int64 { return a ^ b }},
	}
	for _, c := range cases {
		c := c
		f := func(a, b int64) bool {
			return evalBin(t, c.op, a, b) == c.ref(a, b)
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
			t.Errorf("%v: %v", c.op, err)
		}
	}
}

func TestDivRemEdgeCases(t *testing.T) {
	// Division by zero yields zero (no trap) by ISA definition.
	if got := evalBin(t, isa.OpIDiv, 42, 0); got != 0 {
		t.Errorf("42/0 = %d, want 0", got)
	}
	if got := evalBin(t, isa.OpIRem, 42, 0); got != 0 {
		t.Errorf("42%%0 = %d, want 0", got)
	}
	if got := evalBin(t, isa.OpIDiv, -7, 2); got != -3 {
		t.Errorf("-7/2 = %d, want -3 (Go truncated division)", got)
	}
	if got := evalBin(t, isa.OpIRem, -7, 2); got != -1 {
		t.Errorf("-7%%2 = %d, want -1", got)
	}
	// Shifts mask the count to 6 bits.
	if got := evalBin(t, isa.OpIShl, 1, 64); got != 1 {
		t.Errorf("1<<64 = %d, want 1 (count masked)", got)
	}
	if got := evalBin(t, isa.OpIShr, -1, 1); got != int64(uint64(0xFFFFFFFFFFFFFFFF)>>1) {
		t.Errorf("IShr is not logical: %d", got)
	}
}

func TestFloatALU(t *testing.T) {
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		return evalFBin(t, isa.OpFAdd, a, b) == a+b &&
			evalFBin(t, isa.OpFMul, a, b) == a*b
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
	if got := evalFBin(t, isa.OpFDiv, 1, 0); !math.IsInf(got, 1) {
		t.Errorf("1/0 = %v, want +Inf (IEEE semantics)", got)
	}
}

func TestCmpXchgSemantics(t *testing.T) {
	p := isa.NewProgram("cas", 1)
	cell := p.Alloc("cell", 1)
	img := p.AddImage("main", false)
	r := img.NewRoutine("main")
	blk := r.NewBlock("entry")
	// mem = 5; CAS(expect 5 -> 9) succeeds; CAS(expect 5 -> 11) fails.
	blk.IMovI(1, int64(cell))
	blk.IMovI(2, 5)
	blk.IStore(1, 0, 2)
	blk.IMovI(3, 9) // new value in Dst
	blk.CmpXchg(3, 1, 0, 2)
	blk.IMovI(4, 11)
	blk.CmpXchg(4, 1, 0, 2) // expect 5, but cell is 9
	blk.Halt()
	p.SetEntry(0, r)
	if err := p.Link(); err != nil {
		t.Fatal(err)
	}
	m := NewMachine(p, 1)
	if err := m.Run(RunOpts{}); err != nil {
		t.Fatal(err)
	}
	if got := m.LoadWord(cell); got != 9 {
		t.Errorf("cell = %d, want 9", got)
	}
	if m.Threads[0].R[3] != 1 {
		t.Errorf("first CAS result = %d, want 1 (success)", m.Threads[0].R[3])
	}
	if m.Threads[0].R[4] != 0 {
		t.Errorf("second CAS result = %d, want 0 (failure)", m.Threads[0].R[4])
	}
}

func TestXchgAndAtomicAdd(t *testing.T) {
	p := isa.NewProgram("atomics", 1)
	cell := p.Alloc("cell", 1)
	img := p.AddImage("main", false)
	r := img.NewRoutine("main")
	blk := r.NewBlock("entry")
	blk.IMovI(1, int64(cell))
	blk.IMovI(2, 100)
	blk.IStore(1, 0, 2)
	blk.IMovI(3, 7)
	blk.AtomicAdd(4, 1, 0, 3) // R4 = 100, cell = 107
	blk.IMovI(5, 55)
	blk.Xchg(6, 1, 0, 5) // R6 = 107, cell = 55
	blk.Halt()
	p.SetEntry(0, r)
	if err := p.Link(); err != nil {
		t.Fatal(err)
	}
	m := NewMachine(p, 1)
	if err := m.Run(RunOpts{}); err != nil {
		t.Fatal(err)
	}
	th := m.Threads[0]
	if th.R[4] != 100 || th.R[6] != 107 || m.LoadWord(cell) != 55 {
		t.Errorf("atomics wrong: old-add=%d old-xchg=%d cell=%d", th.R[4], th.R[6], m.LoadWord(cell))
	}
}

func TestOutOfBoundsAccessFaults(t *testing.T) {
	p := isa.NewProgram("oob", 1)
	p.Alloc("x", 1)
	img := p.AddImage("main", false)
	r := img.NewRoutine("main")
	blk := r.NewBlock("entry")
	blk.IMovI(1, 1<<40)
	blk.ILoad(2, 1, 0)
	blk.Halt()
	p.SetEntry(0, r)
	if err := p.Link(); err != nil {
		t.Fatal(err)
	}
	m := NewMachine(p, 1)
	err := m.Run(RunOpts{})
	if !errors.Is(err, ErrMachine) {
		t.Errorf("out-of-bounds access: err = %v, want ErrMachine", err)
	}
}
