package exec

import (
	"errors"
	"fmt"
)

// ErrMachine is the sentinel behind every machine-state fault: behavior
// of the *simulated program* (an unimplemented opcode, a wild address, a
// return past the entry frame) rather than a bug in the simulator.
// Callers match with errors.Is(err, exec.ErrMachine).
var ErrMachine = errors.New("exec: machine fault")

// ExecError is a machine-state fault raised mid-step. The interpreter's
// hot loops cannot thread error returns through every instruction
// without losing their shape, so faults travel as a panic of this type
// and are converted back into an ordinary error by Recover at each
// public API boundary (exec.Run/RunBlocks/RunSchedule and the pinball
// and timing entry points). Programmer-error panics — plain strings,
// other types — are not intercepted and still crash loudly.
type ExecError struct {
	Msg string
}

func (e *ExecError) Error() string { return e.Msg }

// Unwrap lets errors.Is(err, ErrMachine) match.
func (e *ExecError) Unwrap() error { return ErrMachine }

// throwf raises a machine fault from inside the interpreter loops.
func throwf(format string, args ...any) {
	panic(&ExecError{Msg: fmt.Sprintf(format, args...)})
}

// Recover converts an in-flight *ExecError panic into *err, for use as
// `defer exec.Recover(&err)` on any function that drives a Machine. All
// other panic values are re-raised untouched — only classified machine
// faults become errors; bugs keep crashing.
func Recover(err *error) {
	switch r := recover().(type) {
	case nil:
	case *ExecError:
		if *err == nil {
			*err = r
		}
	default:
		panic(r)
	}
}
