// Package campaign is the coordinator half of the sharded campaign
// fabric (DESIGN.md §14): it takes one campaign — a set of sampling
// jobs, regions × experiments — and drives it to completion across a
// fleet of lpserved workers, surviving worker crashes, hangs, overload
// storms, corrupt responses, and its own coordinator being killed.
//
// The fabric is built from four load-bearing pieces:
//
//   - Content-addressed jobs. Every job's identity is the FNV-1a hash of
//     its canonical spec (KeyTagged). The key is the claim token workers
//     dedupe on, the cache address completed results live under, and the
//     journal's resume handle — three layers agreeing on one name is
//     what makes retries, steals, and resumes idempotent.
//   - Lease-based dispatch. Each dispatch carries a lease; when it
//     expires the job is re-enqueued ("stolen") while the original
//     attempt keeps running. First completion wins; late duplicates are
//     byte-compared against the winner and counted.
//   - A content-addressed result cache (Cache) backed by checksummed
//     files, so a resumed campaign re-simulates nothing it already has.
//   - An fsync'd, checksummed JSONL journal (Journal) appended before a
//     completion is acknowledged, so a coordinator crash loses at most
//     the in-flight jobs — never a completed one.
package campaign

import (
	"encoding/json"
	"fmt"

	"looppoint/internal/artifact"
	"looppoint/internal/serve"
)

// SchemaVersion names the campaign wire/journal schema. It participates
// in every job key and in the journal config fingerprint, so a schema
// change can never silently reuse stale keys or resume a stale journal.
const SchemaVersion = "v3"

// Spec is one campaign: the jobs to run. Order is preserved in the
// report; jobs that normalize to the same key are collapsed onto one
// execution.
type Spec struct {
	Jobs []serve.JobRequest `json:"jobs"`
}

// Normalize maps a job spec to its canonical form: per-request plumbing
// (ID, deadline, retries) cleared, and the evaluator's documented
// defaults spelled out, so "empty means default" and the explicit
// default are one job, not two.
func Normalize(j serve.JobRequest) serve.JobRequest {
	j.ID, j.DeadlineMS, j.Retries = "", 0, 0
	if j.Input == "" {
		j.Input = "train"
	}
	if j.Policy == "" {
		j.Policy = "passive"
	}
	if j.Core == "" {
		j.Core = "ooo"
	}
	return j
}

// KeyTagged is the job's content address: a 16-hex-digit FNV-1a over the
// canonical spec string, which includes the schema version and the
// campaign tag. Equal work under equal tags always hashes to the same
// key — across coordinator restarts, across workers, across machines.
func KeyTagged(tag string, j serve.JobRequest) string {
	n := Normalize(j)
	sig := fmt.Sprintf("campaign/%s|tag=%s|class=%s|app=%s|input=%s|threads=%d|policy=%s|core=%s|full=%t",
		SchemaVersion, tag, n.Class, n.App, n.Input, n.Threads, n.Policy, n.Core, n.Full)
	return fmt.Sprintf("%016x", artifact.Checksum([]byte(sig)))
}

// Result is one completed job. Only Key, Job, and Res travel through
// JSON — they are the canonical bytes that journal entries, cache files,
// and duplicate-delivery comparison all use — while the provenance
// fields (which worker, whether the lease was stolen, attempt count)
// stay coordinator-local so a stolen job's result is byte-identical to
// an unstolen one.
type Result struct {
	Key string           `json:"key"`
	Job serve.JobRequest `json:"job"`
	Res *serve.JobResult `json:"result"`

	Worker   string `json:"-"`
	Stolen   bool   `json:"-"`
	Attempts int    `json:"-"`
}

// CanonicalBytes renders the result's identity bytes: the exact bytes
// journaled, cached, and compared when a stolen duplicate lands after
// the winner.
func (r *Result) CanonicalBytes() ([]byte, error) {
	return json.Marshal(r)
}

// CanonicalResult strips a worker's result of everything that varies
// between runs of the same job — queue wait, run time, attempt count,
// server-minted vs key-derived id — leaving only what the job computed.
// Two honest executions of one key must produce byte-identical canonical
// results; anything else is a determinism bug and the duplicate
// comparison will say so.
func CanonicalResult(key string, res *serve.JobResult) *serve.JobResult {
	c := *res
	c.ID = key
	c.QueueWaitMS, c.RunMS, c.Attempts = 0, 0, 0
	return &c
}
