package campaign

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"looppoint/internal/pool"
	"looppoint/internal/serve"
)

// Coordinator defaults. Lease and backoff default conservatively for
// real fleets; tests shrink them to the millisecond scale.
const (
	DefaultLease          = 30 * time.Second
	DefaultWorkerInflight = 2
	DefaultMaxDuplicates  = 2
	DefaultProbeInterval  = 500 * time.Millisecond
	DefaultBackoff        = 10 * time.Millisecond
	DefaultMaxBackoff     = 2 * time.Second
)

// Config tunes one campaign run. Zero values take the defaults above.
type Config struct {
	// Tag names the campaign; it participates in every job key and in
	// the journal fingerprint, so distinct campaigns never share cache
	// entries or journals by accident.
	Tag string
	// Lease is how long one dispatch owns its job before the coordinator
	// re-enqueues it for another worker (work stealing). It is also sent
	// to the worker as the claim lease, bounding worker-side execution.
	Lease time.Duration
	// RequestTimeout bounds the whole claim HTTP exchange (0: 2×Lease).
	RequestTimeout time.Duration
	// MaxAttempts caps dispatches per job before it is declared failed
	// (0: max(8, 4×workers)).
	MaxAttempts int
	// MaxDuplicates caps concurrent dispatches of one job — the original
	// plus stolen re-dispatches (0: 2).
	MaxDuplicates int
	// WorkerInflight is the per-worker dispatch concurrency (0: 2).
	WorkerInflight int
	// Backoff/MaxBackoff shape the per-job retry schedule (full-jittered
	// capped doubling, pool.BackoffDelay).
	Backoff    time.Duration
	MaxBackoff time.Duration
	// Seed fixes the jitter streams: each job derives its stream with
	// pool.MixSeed(Seed, jobIndex), so one seed reproduces the whole
	// campaign's retry timing.
	Seed uint64
	// Breaker configures the per-worker circuit breakers.
	Breaker serve.BreakerOpts
	// ProbeInterval paces the /readyz health loop (0: 500ms).
	ProbeInterval time.Duration
	// CacheDir and JournalPath enable the durable layers; empty keeps
	// the campaign memory-only (no resume).
	CacheDir    string
	JournalPath string
	// Log receives progress lines (nil: silent).
	Log func(format string, args ...any)
}

func (c Config) filled(workers int) Config {
	if c.Lease <= 0 {
		c.Lease = DefaultLease
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 2 * c.Lease
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 4 * workers
		if c.MaxAttempts < 8 {
			c.MaxAttempts = 8
		}
	}
	if c.MaxDuplicates <= 0 {
		c.MaxDuplicates = DefaultMaxDuplicates
	}
	if c.WorkerInflight <= 0 {
		c.WorkerInflight = DefaultWorkerInflight
	}
	if c.Backoff <= 0 {
		c.Backoff = DefaultBackoff
	}
	if c.MaxBackoff <= 0 {
		c.MaxBackoff = DefaultMaxBackoff
	}
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = DefaultProbeInterval
	}
	return c
}

// task is one content-addressed job's dispatch state. All fields are
// guarded by Coordinator.mu.
type task struct {
	key      string
	job      serve.JobRequest // normalized
	attempts int
	inflight int
	stolen   bool
	done     bool
	failed   bool
	lastErr  string
	result   *Result
	jitter   uint64 // per-job seeded jitter stream (pool.MixSeed)
}

// queue is the unbounded dispatch queue. Unbounded is correct here: its
// population is at most jobs × MaxDuplicates, already bounded by the
// campaign itself, and a bounded queue would deadlock steal timers
// against runners.
type queue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	items  []*task
	closed bool
}

func newQueue() *queue {
	q := &queue{}
	q.cond = sync.NewCond(&q.mu)
	return q
}

func (q *queue) push(t *task) {
	q.mu.Lock()
	if !q.closed {
		q.items = append(q.items, t)
		q.cond.Signal()
	}
	q.mu.Unlock()
}

func (q *queue) pop() (*task, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.items) == 0 && !q.closed {
		q.cond.Wait()
	}
	if len(q.items) == 0 {
		return nil, false
	}
	t := q.items[0]
	q.items = q.items[1:]
	return t, true
}

func (q *queue) close() {
	q.mu.Lock()
	q.closed = true
	q.items = nil
	q.cond.Broadcast()
	q.mu.Unlock()
}

// Coordinator drives one campaign across the fleet.
type Coordinator struct {
	cfg     Config
	reg     *Registry
	cache   *Cache
	journal *Journal
	q       *queue

	mu        sync.Mutex
	tasks     map[string]*task
	order     []string // deduped spec order
	remaining int
	doneCh    chan struct{}

	dispatched    atomic.Uint64
	steals        atomic.Uint64
	dupDeliveries atomic.Uint64
	dupMismatches atomic.Uint64
	restored      atomic.Uint64
	corruptReply  atomic.Uint64
}

// New builds a coordinator over the given workers.
func New(cfg Config, workers []WorkerClient) (*Coordinator, error) {
	if len(workers) == 0 {
		return nil, errors.New("campaign: no workers")
	}
	cfg = cfg.filled(len(workers))
	cache, err := NewCache(cfg.CacheDir)
	if err != nil {
		return nil, err
	}
	return &Coordinator{
		cfg:    cfg,
		reg:    NewRegistry(workers, cfg.Breaker),
		cache:  cache,
		q:      newQueue(),
		tasks:  make(map[string]*task),
		doneCh: make(chan struct{}),
	}, nil
}

// Cache exposes the result cache (stats, tests).
func (c *Coordinator) Cache() *Cache { return c.cache }

// Registry exposes the worker registry (stats, tests).
func (c *Coordinator) Registry() *Registry { return c.reg }

func (c *Coordinator) logf(format string, args ...any) {
	if c.cfg.Log != nil {
		c.cfg.Log(format, args...)
	}
}

// Run executes the campaign to completion (every job completed or
// failed terminally) or until ctx is canceled. It is a one-shot: build a
// fresh Coordinator per campaign. Resume is implicit: with a JournalPath
// configured, results recorded by a previous (killed) run are restored
// and their jobs never re-dispatched.
func (c *Coordinator) Run(ctx context.Context, spec Spec) (*Report, error) {
	if len(spec.Jobs) == 0 {
		return nil, errors.New("campaign: empty spec")
	}
	for i, j := range spec.Jobs {
		valid := false
		for _, cl := range serve.JobClasses {
			if j.Class == cl {
				valid = true
			}
		}
		if !valid {
			return nil, fmt.Errorf("campaign: job %d: unknown class %q", i, j.Class)
		}
		if j.App == "" {
			return nil, fmt.Errorf("campaign: job %d: missing app", i)
		}
	}

	// Build the task set: normalize, key, collapse duplicate keys.
	for _, j := range spec.Jobs {
		n := Normalize(j)
		key := KeyTagged(c.cfg.Tag, n)
		if _, ok := c.tasks[key]; ok {
			continue
		}
		c.tasks[key] = &task{key: key, job: n,
			jitter: pool.MixSeed(c.cfg.Seed, uint64(len(c.order)))}
		c.order = append(c.order, key)
	}
	c.remaining = len(c.order)

	// Restore: journal first (crash log of a killed coordinator), then
	// the cache pre-pass — restored results are seeded, so every job the
	// previous run completed resolves as a cache hit, not a dispatch.
	if c.cfg.JournalPath != "" {
		j, restored, err := OpenJournal(c.cfg.JournalPath, c.cfg.Tag)
		if err != nil {
			return nil, err
		}
		c.journal = j
		defer c.journal.Close()
		for _, r := range restored {
			c.cache.Seed(r)
		}
		c.restored.Store(uint64(len(restored)))
		if len(restored) > 0 {
			c.logf("campaign: restored %d completed jobs from %s", len(restored), c.cfg.JournalPath)
		}
	}
	var pending []*task
	for _, key := range c.order {
		t := c.tasks[key]
		if r, ok := c.cache.Get(key); ok {
			t.done = true
			t.result = r
			c.remaining--
			continue
		}
		pending = append(pending, t)
	}

	if c.remaining > 0 {
		rctx, cancel := context.WithCancel(ctx)
		defer cancel()
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			c.reg.Run(rctx, c.cfg.ProbeInterval)
		}()
		for _, w := range c.reg.Workers() {
			for i := 0; i < c.cfg.WorkerInflight; i++ {
				wg.Add(1)
				go func(w *Worker) {
					defer wg.Done()
					c.runner(rctx, w)
				}(w)
			}
		}
		for _, t := range pending {
			c.q.push(t)
		}
		select {
		case <-c.doneCh:
		case <-ctx.Done():
		}
		cancel()
		c.q.close()
		wg.Wait()
	}

	rep := c.report()
	if err := ctx.Err(); err != nil {
		return rep, err
	}
	return rep, nil
}

// runner is one worker-bound dispatch loop: pop a job, gate it on the
// worker's readiness and breaker, dispatch. A gated job is re-enqueued
// after a short delay so a healthy worker's runner picks it up instead.
func (c *Coordinator) runner(ctx context.Context, w *Worker) {
	gateDelay := c.cfg.Lease / 4
	if gateDelay <= 0 || gateDelay > 250*time.Millisecond {
		gateDelay = 250 * time.Millisecond
	}
	for {
		t, ok := c.q.pop()
		if !ok || ctx.Err() != nil {
			return
		}
		c.mu.Lock()
		skip := t.done
		c.mu.Unlock()
		if skip {
			continue
		}
		if !w.Ready() {
			c.pushAfter(t, gateDelay)
			continue
		}
		if err := w.breaker.Allow(); err != nil {
			c.pushAfter(t, gateDelay)
			continue
		}
		c.dispatch(ctx, w, t)
	}
}

func (c *Coordinator) pushAfter(t *task, d time.Duration) {
	time.AfterFunc(d, func() { c.q.push(t) })
}

// dispatch sends one leased claim to w and classifies the outcome.
func (c *Coordinator) dispatch(ctx context.Context, w *Worker, t *task) {
	c.mu.Lock()
	if t.done || t.inflight >= c.cfg.MaxDuplicates || t.attempts >= c.cfg.MaxAttempts {
		exhausted := !t.done && t.inflight == 0 && t.attempts >= c.cfg.MaxAttempts
		if exhausted {
			c.failLocked(t)
		}
		c.mu.Unlock()
		w.breaker.Forget()
		return
	}
	t.attempts++
	attempt := t.attempts
	t.inflight++
	stolenDispatch := t.stolen
	c.mu.Unlock()
	c.dispatched.Add(1)

	// Arm the lease: if this dispatch has not completed when it expires,
	// the job goes back on the queue for another worker — the straggler
	// keeps running, and whichever finishes first wins.
	stealTimer := time.AfterFunc(c.cfg.Lease, func() { c.steal(t) })
	cctx, cancel := context.WithTimeout(ctx, c.cfg.RequestTimeout)
	out, err := w.client.Claim(cctx, t.key, c.cfg.Lease.Milliseconds(), t.job)
	cancel()
	stealTimer.Stop()

	c.mu.Lock()
	t.inflight--
	c.mu.Unlock()

	switch {
	case err != nil:
		if errors.Is(err, ErrCorrupt) {
			c.corruptReply.Add(1)
		}
		w.breaker.Done(false)
		c.retryLater(t, attempt, fmt.Sprintf("%s: %v", w.Name(), err))
	case out.Status == http.StatusOK && out.Result != nil:
		w.breaker.Done(true)
		c.complete(t, out.Result, w.Name(), stolenDispatch)
	case out.Status == http.StatusBadRequest ||
		out.Status == http.StatusNotFound || out.Status == http.StatusMethodNotAllowed:
		// The worker is healthy; the job (or our protocol) is bad.
		// Retrying the same bytes cannot help.
		w.breaker.Done(true)
		c.failPermanent(t, fmt.Sprintf("%s: %s: %s", w.Name(), out.Outcome, out.Err))
	default:
		// 429 storms, breaker sheds, timeouts, 5xx: the worker is
		// overloaded or broken — count it against its breaker, back off,
		// retry elsewhere.
		w.breaker.Done(false)
		c.retryLater(t, attempt, fmt.Sprintf("%s: %d %s: %s", w.Name(), out.Status, out.Outcome, out.Err))
	}
}

// steal fires when a lease expires with the dispatch still in flight:
// the job is re-enqueued (bounded by MaxDuplicates at dispatch time)
// so another worker can race the straggler.
func (c *Coordinator) steal(t *task) {
	c.mu.Lock()
	if t.done || t.inflight == 0 || t.inflight >= c.cfg.MaxDuplicates {
		c.mu.Unlock()
		return
	}
	t.stolen = true
	c.mu.Unlock()
	c.steals.Add(1)
	c.q.push(t)
}

// retryLater re-enqueues t after its seeded full-jitter backoff, or
// declares it failed once the attempt budget is spent with nothing in
// flight.
func (c *Coordinator) retryLater(t *task, attempt int, reason string) {
	c.mu.Lock()
	if t.done {
		c.mu.Unlock()
		return
	}
	t.lastErr = reason
	if t.attempts >= c.cfg.MaxAttempts && t.inflight == 0 {
		c.failLocked(t)
		c.mu.Unlock()
		return
	}
	delay := pool.BackoffDelay(pool.Options{Backoff: c.cfg.Backoff, MaxBackoff: c.cfg.MaxBackoff},
		attempt, &t.jitter)
	c.mu.Unlock()
	c.logf("campaign: retrying %s (attempt %d) in %v: %s", t.key, attempt, delay, reason)
	c.pushAfter(t, delay)
}

// complete records the first delivery of t's result and resolves late
// duplicates first-complete-wins: a duplicate is byte-compared against
// the winner's canonical bytes — a mismatch means a determinism bug (or
// corruption the checksum missed) and is counted, never recorded.
func (c *Coordinator) complete(t *task, res *serve.JobResult, worker string, stolen bool) {
	r := &Result{Key: t.key, Job: t.job, Res: CanonicalResult(t.key, res),
		Worker: worker, Stolen: stolen}
	c.mu.Lock()
	if t.done {
		prev := t.result
		c.mu.Unlock()
		c.dupDeliveries.Add(1)
		a, errA := r.CanonicalBytes()
		b, errB := prev.CanonicalBytes()
		if errA != nil || errB != nil || !bytes.Equal(a, b) {
			c.dupMismatches.Add(1)
			c.logf("campaign: DUPLICATE MISMATCH for %s: %s vs %s", t.key, worker, prev.Worker)
		}
		return
	}
	t.done = true
	r.Attempts = t.attempts
	t.result = r
	c.mu.Unlock()

	if c.journal != nil {
		if err := c.journal.Append(r); err != nil {
			c.logf("campaign: journal append %s: %v", t.key, err)
		}
	}
	if err := c.cache.Put(r); err != nil {
		c.logf("campaign: cache store %s: %v", t.key, err)
	}
	c.settle()
}

func (c *Coordinator) failPermanent(t *task, reason string) {
	c.mu.Lock()
	if t.done {
		c.mu.Unlock()
		return
	}
	t.lastErr = reason
	c.failLocked(t)
	c.mu.Unlock()
}

// failLocked marks t terminally failed; callers hold c.mu.
func (c *Coordinator) failLocked(t *task) {
	t.done = true
	t.failed = true
	c.logf("campaign: FAILED %s after %d attempts: %s", t.key, t.attempts, t.lastErr)
	c.remaining--
	if c.remaining == 0 {
		close(c.doneCh)
	}
}

func (c *Coordinator) settle() {
	c.mu.Lock()
	c.remaining--
	if c.remaining == 0 {
		close(c.doneCh)
	}
	c.mu.Unlock()
}
