package campaign

import (
	"context"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"looppoint/internal/faults"
	"looppoint/internal/serve"
)

// chaosRunner is the workers' deterministic job runner: the fake result
// (a pure function of the spec), with a fault-injection site in front so
// the chaos plan can make any worker flake or stall mid-job.
func chaosRunner(ctx context.Context, req *serve.JobRequest) (*serve.JobResult, error) {
	if err := faults.Check("campaign.worker.run"); err != nil {
		return nil, err
	}
	if ctx.Err() != nil {
		return nil, ctx.Err()
	}
	return fakeResult(*req), nil
}

// startWorker boots one real serve.Server behind an httptest listener —
// a genuine lpserved fleet member, minus the process boundary.
func startWorker(t *testing.T, cfg serve.Config) (*serve.Server, *httptest.Server) {
	t.Helper()
	s := serve.New(cfg, chaosRunner)
	s.Start()
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Drain()
	})
	return s, ts
}

// chaosConfig shrinks the fabric's time constants so the drill's kills,
// hangs, and storms all land inside a few hundred milliseconds.
func chaosConfig(tag string) Config {
	cfg := quickConfig(tag)
	cfg.Lease = 60 * time.Millisecond
	cfg.RequestTimeout = 250 * time.Millisecond
	cfg.MaxAttempts = 40
	cfg.WorkerInflight = 3
	return cfg
}

// baselineReport runs the campaign on one healthy worker with no faults
// armed — the reference the chaos run must reproduce byte-for-byte.
func baselineReport(t *testing.T, tag string, spec Spec) string {
	t.Helper()
	if faults.Enabled() {
		t.Fatal("baseline must run without faults armed")
	}
	_, ts := startWorker(t, serve.Config{MaxInflight: 4, QueueDepth: 16})
	rep := runCampaign(t, chaosConfig(tag), []WorkerClient{NewHTTPWorker("baseline", ts.URL)}, spec)
	if rep.Stats.Failed != 0 {
		t.Fatalf("baseline failed jobs: %+v", rep.Stats)
	}
	return rep.Render()
}

// TestCampaignChaosFaultDrill is the fabric's chaos drill: a 3-worker
// fleet of real serve.Servers where, mid-campaign,
//
//   - one worker is SIGKILL-equivalent killed (listener torn down),
//   - jobs randomly fail and stall longer than the lease (stealing),
//   - claim calls drop at the transport,
//   - response bytes are corrupted in flight (checksum must catch them),
//   - and tiny queues turn coordinator pressure into 429/503 storms,
//
// and the campaign must still converge with zero failed jobs, zero
// duplicate mismatches, and a report byte-identical to the single-node
// no-fault run. Injection is a pure function of FAULTS_SEED, so each CI
// matrix seed replays a distinct, reproducible failure pattern.
func TestCampaignChaosFaultDrill(t *testing.T) {
	spec := npbSpec(8)
	for i := range spec.Jobs {
		if i%3 == 0 {
			spec.Jobs[i].Class = serve.ClassSimulate
		}
	}
	want := baselineReport(t, "chaos", spec)

	seed := faults.SeedFromEnv(1)
	restore := faults.Enable(faults.NewPlan(seed,
		faults.Rule{Site: "campaign.worker.run", Kind: faults.Transient, Rate: 3, Count: 6},
		faults.Rule{Site: "campaign.worker.run", Kind: faults.Slow, Rate: 4, Count: 4, Delay: 150 * time.Millisecond},
		faults.Rule{Site: "campaign.claim", Kind: faults.Transient, Rate: 5, Count: 4},
		faults.Rule{Site: "campaign.result", Kind: faults.Corrupt, Rate: 4, Count: 3},
	))
	defer restore()

	// Tiny admission windows: the coordinator's WorkerInflight=3 against
	// MaxInflight=1/QueueDepth=1 guarantees shed storms under load.
	_, ts0 := startWorker(t, serve.Config{MaxInflight: 1, QueueDepth: 1})
	_, ts1 := startWorker(t, serve.Config{MaxInflight: 1, QueueDepth: 1})
	_, ts2 := startWorker(t, serve.Config{MaxInflight: 1, QueueDepth: 1})
	// Kill worker 2 mid-flight. httptest.Close waits for in-flight
	// handlers, so tear the listener down from a goroutine exactly like
	// a kill -9 would look from the coordinator's side: connections die,
	// new dials are refused.
	kill := time.AfterFunc(30*time.Millisecond, func() { ts2.CloseClientConnections(); ts2.Close() })
	defer kill.Stop()

	rep := runCampaign(t, chaosConfig("chaos"), []WorkerClient{
		NewHTTPWorker("w0", ts0.URL),
		NewHTTPWorker("w1", ts1.URL),
		NewHTTPWorker("w2", ts2.URL),
	}, spec)

	if rep.Stats.Failed != 0 {
		t.Fatalf("campaign lost jobs under chaos: %s", rep.Stats.Line())
	}
	if rep.Stats.DupMismatches != 0 {
		t.Fatalf("duplicate deliveries disagreed: %s", rep.Stats.Line())
	}
	if got := rep.Render(); got != want {
		t.Fatalf("chaos report diverges from single-node baseline:\n--- chaos\n%s--- baseline\n%s", got, want)
	}
	t.Logf("%s", rep.Stats.Line())
}

// TestCampaignResumeAfterCoordinatorKill: a coordinator that dies
// mid-campaign — journal fsync'd through its last completion, final
// line torn — resumes re-simulating nothing it finished: every restored
// job settles as a cache hit, dispatches cover only the remainder, and
// the final report is byte-identical to an uninterrupted run.
func TestCampaignResumeAfterCoordinatorKill(t *testing.T) {
	dir := t.TempDir()
	journal := filepath.Join(dir, "campaign.jsonl")
	cacheDir := filepath.Join(dir, "cache")
	spec := npbSpec(8)
	want := baselineReport(t, "resume", spec)

	_, ts := startWorker(t, serve.Config{MaxInflight: 4, QueueDepth: 16})
	worker := func() []WorkerClient { return []WorkerClient{NewHTTPWorker("w", ts.URL)} }

	// First life: the coordinator only ever sees half the campaign, then
	// "dies" — with a torn half-appended line, as a kill mid-write leaves.
	cfg := chaosConfig("resume")
	cfg.JournalPath, cfg.CacheDir = journal, cacheDir
	half := Spec{Jobs: spec.Jobs[:4]}
	rep1 := runCampaign(t, cfg, worker(), half)
	if rep1.Stats.Failed != 0 || rep1.Stats.Completed != 4 {
		t.Fatalf("first life: %s", rep1.Stats.Line())
	}
	f, err := os.OpenFile(journal, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"fnv1a":"0x12345","record":{"key":"torn-mid`)
	f.Close()

	// Second life: full spec, same journal and cache. The 4 completed
	// jobs must come back as cache hits — zero re-dispatches for them.
	rep2 := runCampaign(t, cfg, worker(), spec)
	if rep2.Stats.Failed != 0 || rep2.Stats.Completed != 8 {
		t.Fatalf("resumed life: %s", rep2.Stats.Line())
	}
	if rep2.Stats.Restored != 4 {
		t.Fatalf("restored %d journal entries, want 4", rep2.Stats.Restored)
	}
	if rep2.Stats.CacheHits != 4 {
		t.Fatalf("cache hits %d, want exactly the 4 completed shards", rep2.Stats.CacheHits)
	}
	if rep2.Stats.Dispatched != 4 {
		t.Fatalf("dispatched %d, want only the 4 unfinished shards", rep2.Stats.Dispatched)
	}
	if got := rep2.Render(); got != want {
		t.Fatalf("resumed report diverges from uninterrupted run:\n--- resumed\n%s--- baseline\n%s", got, want)
	}

	// Third life: nothing left to do. Everything is a cache hit; the
	// fabric dispatches zero jobs.
	rep3 := runCampaign(t, cfg, worker(), spec)
	if rep3.Stats.Dispatched != 0 || rep3.Stats.CacheHits != 8 {
		t.Fatalf("fully-resumed campaign still dispatched: %s", rep3.Stats.Line())
	}
	if rep3.Render() != want {
		t.Fatal("fully-resumed report diverges")
	}
}
