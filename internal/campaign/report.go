package campaign

import (
	"fmt"
	"strings"
)

// Report is one campaign's outcome: results in spec order plus the
// run's operational stats. Render is deliberately a function of the
// canonical results alone — never of which worker ran what, how many
// steals fired, or what got restored — so a chaos-ridden fleet run, a
// single-node run, and a resumed run of the same campaign render
// byte-identical reports. Stats carry the operational story separately.
type Report struct {
	Tag     string
	Results []*Result // deduped spec order; nil Res marks a failed job
	Stats   Stats
}

// Stats is the operational summary of one campaign run.
type Stats struct {
	Jobs           int
	Completed      int
	Failed         int
	Dispatched     uint64
	Steals         uint64
	DupDeliveries  uint64
	DupMismatches  uint64
	CorruptReplies uint64
	CacheHits      uint64
	CacheStores    uint64
	CacheCorrupt   uint64
	Restored       uint64
	BreakerTrips   map[string]uint64
}

// Line renders the stats as one grep-friendly line (the smoke scripts
// key on dispatched= and cache_hits=).
func (s Stats) Line() string {
	var b strings.Builder
	fmt.Fprintf(&b, "campaign stats: jobs=%d completed=%d failed=%d dispatched=%d steals=%d dups=%d dup_mismatches=%d corrupt_replies=%d cache_hits=%d cache_stores=%d cache_corrupt=%d restored=%d",
		s.Jobs, s.Completed, s.Failed, s.Dispatched, s.Steals, s.DupDeliveries,
		s.DupMismatches, s.CorruptReplies, s.CacheHits, s.CacheStores, s.CacheCorrupt, s.Restored)
	return b.String()
}

// Render produces the deterministic campaign report: one header, one
// line per job in spec order, derived only from canonical result fields.
func (r *Report) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "campaign %s: %d jobs\n", r.Tag, len(r.Results))
	for _, res := range r.Results {
		if res.Res == nil {
			fmt.Fprintf(&b, "%s %s %s FAILED\n", res.Key, res.Job.Class, res.Job.App)
			continue
		}
		jr := res.Res
		fmt.Fprintf(&b, "%s %s %s input=%s threads=%d policy=%s core=%s full=%t regions=%d points=%d",
			res.Key, res.Job.Class, res.Job.App, res.Job.Input, res.Job.Threads,
			res.Job.Policy, res.Job.Core, res.Job.Full, jr.Regions, jr.Points)
		if jr.PredictedSeconds != 0 {
			fmt.Fprintf(&b, " predicted_s=%g", jr.PredictedSeconds)
		}
		if jr.PredictedCycles != 0 {
			fmt.Fprintf(&b, " predicted_cycles=%g", jr.PredictedCycles)
		}
		if jr.RuntimeErrPct != 0 {
			fmt.Fprintf(&b, " runtime_err_pct=%g", jr.RuntimeErrPct)
		}
		if jr.Degraded {
			fmt.Fprintf(&b, " degraded=true residual_coverage=%g", jr.ResidualCoverage)
		}
		if jr.Summary != "" {
			fmt.Fprintf(&b, " summary=%q", jr.Summary)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// report assembles the Report after Run settles.
func (c *Coordinator) report() *Report {
	rep := &Report{Tag: c.cfg.Tag}
	c.mu.Lock()
	for _, key := range c.order {
		t := c.tasks[key]
		r := t.result
		if r == nil {
			r = &Result{Key: t.key, Job: t.job}
		}
		rep.Results = append(rep.Results, r)
		if t.failed || t.result == nil {
			rep.Stats.Failed++
		} else {
			rep.Stats.Completed++
		}
	}
	rep.Stats.Jobs = len(c.order)
	c.mu.Unlock()

	rep.Stats.Dispatched = c.dispatched.Load()
	rep.Stats.Steals = c.steals.Load()
	rep.Stats.DupDeliveries = c.dupDeliveries.Load()
	rep.Stats.DupMismatches = c.dupMismatches.Load()
	rep.Stats.CorruptReplies = c.corruptReply.Load()
	hits, _, stores, corrupt := c.cache.Counters()
	rep.Stats.CacheHits = hits
	rep.Stats.CacheStores = stores
	rep.Stats.CacheCorrupt = corrupt
	rep.Stats.Restored = c.restored.Load()
	rep.Stats.BreakerTrips = make(map[string]uint64)
	for _, w := range c.reg.Workers() {
		rep.Stats.BreakerTrips[w.Name()] = w.breaker.Trips()
	}
	return rep
}
