package campaign

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"

	"looppoint/internal/artifact"
)

// The campaign journal is the coordinator's crash log: one checksummed
// JSONL line per completed job, fsync'd before the completion is
// acknowledged, preceded by a header line binding the file to this
// campaign's config fingerprint. `lpcoord -resume` replays it to
// rehydrate completed results byte-identically — a killed coordinator
// re-simulates only what was in flight, never what had finished.
//
// Schema v3 (one envelope per line, artifact.ChecksumLine):
//
//	{"fnv1a":"0x…","record":{"campaign":"v3","config":"0x…","tag":"…"}}   header
//	{"fnv1a":"0x…","record":{"key":"…","job":{…},"result":{…}}}          entry
//
// A torn final line (power cut mid-append) is repaired away on open; a
// header whose fingerprint does not match the resuming campaign resets
// the journal rather than resuming someone else's work.

// journalHeader is the first record of every campaign journal.
type journalHeader struct {
	Campaign string `json:"campaign"`
	Config   string `json:"config"`
	Tag      string `json:"tag"`
}

// ConfigFingerprint is the journal-compatibility stamp: a resume only
// trusts a journal whose header carries the fingerprint of the campaign
// being resumed (same schema, same tag). Job-level compatibility needs
// no fingerprint — keys are content-addressed, so entries for jobs no
// longer in the spec are simply never looked up.
func ConfigFingerprint(tag string) string {
	return fmt.Sprintf("%#x", artifact.Checksum([]byte("campaign-journal/"+SchemaVersion+"|tag="+tag)))
}

// Journal is an append-only, fsync'd campaign completion log.
type Journal struct {
	f    *os.File
	path string
}

// OpenJournal opens (or creates) the journal at path for the campaign
// identified by tag, repairing a torn tail first, and returns the
// results already recorded. A missing file, an empty file, or a header
// from a different campaign config yields a fresh journal and zero
// restored results.
func OpenJournal(path, tag string) (*Journal, []*Result, error) {
	if err := artifact.RepairTornTail(path); err != nil {
		return nil, nil, fmt.Errorf("campaign: repair journal: %w", err)
	}
	restored, ok, err := loadJournal(path, tag)
	if err != nil {
		return nil, nil, err
	}
	flags := os.O_CREATE | os.O_WRONLY | os.O_APPEND
	if !ok {
		// No trustworthy header: reset and start a fresh journal for
		// this campaign.
		flags = os.O_CREATE | os.O_WRONLY | os.O_TRUNC
		restored = nil
	}
	f, err := os.OpenFile(path, flags, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("campaign: open journal: %w", err)
	}
	j := &Journal{f: f, path: path}
	if !ok {
		hdr, merr := json.Marshal(journalHeader{Campaign: SchemaVersion, Config: ConfigFingerprint(tag), Tag: tag})
		if merr != nil {
			f.Close()
			return nil, nil, merr
		}
		if err := j.appendRecord(hdr); err != nil {
			f.Close()
			return nil, nil, err
		}
	}
	return j, restored, nil
}

// loadJournal reads every verified record; ok reports whether the file
// carries a matching header (i.e. appending to it is safe).
func loadJournal(path, tag string) (restored []*Result, ok bool, err error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, fmt.Errorf("campaign: read journal: %w", err)
	}
	defer f.Close()

	want := ConfigFingerprint(tag)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 8*1024*1024)
	first := true
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		rec, valid := artifact.VerifyLine(line)
		if !valid {
			// A checksum-failing interior line means the file was
			// corrupted at rest, not torn mid-append (RepairTornTail
			// already ran). Nothing after it can be trusted to belong to
			// this campaign's sequence.
			return restored, !first, nil
		}
		if first {
			first = false
			var hdr journalHeader
			if json.Unmarshal(rec, &hdr) != nil || hdr.Campaign != SchemaVersion || hdr.Config != want {
				return nil, false, nil
			}
			continue
		}
		var r Result
		if json.Unmarshal(rec, &r) != nil || r.Key == "" || r.Res == nil {
			continue
		}
		restored = append(restored, &r)
	}
	if err := sc.Err(); err != nil {
		return nil, false, fmt.Errorf("campaign: scan journal: %w", err)
	}
	return restored, !first, nil
}

// Append records one completed job, fsync'd before returning — the
// completion is durable before the coordinator acknowledges it.
func (j *Journal) Append(r *Result) error {
	rec, err := r.CanonicalBytes()
	if err != nil {
		return err
	}
	return j.appendRecord(rec)
}

func (j *Journal) appendRecord(rec []byte) error {
	line, err := artifact.ChecksumLine(rec)
	if err != nil {
		return err
	}
	if _, err := j.f.Write(append(line, '\n')); err != nil {
		return fmt.Errorf("campaign: append journal: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("campaign: sync journal: %w", err)
	}
	return nil
}

// Close closes the journal file.
func (j *Journal) Close() error {
	if j == nil || j.f == nil {
		return nil
	}
	err := j.f.Close()
	j.f = nil
	if err != nil && err != io.ErrClosedPipe {
		return err
	}
	return nil
}
