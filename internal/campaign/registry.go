package campaign

import (
	"context"
	"sync/atomic"
	"time"

	"looppoint/internal/serve"
)

// Worker is one fleet member as the coordinator tracks it: the client, a
// readiness flag driven by the health-probe loop, and a per-worker
// circuit breaker driven by observed dispatch outcomes (429s, 5xx,
// timeouts, transport errors). The two signals are deliberately
// independent: the probe says "the process answers /readyz", the breaker
// says "claims I send there actually land" — a worker can pass one and
// fail the other (wedged runner, storm of sheds), and dispatch requires
// both.
type Worker struct {
	client  WorkerClient
	breaker *serve.Breaker

	ready      atomic.Bool
	probes     atomic.Uint64
	probeFails atomic.Uint64
}

// Name returns the worker's display name.
func (w *Worker) Name() string { return w.client.Name() }

// Ready reports the last probe verdict.
func (w *Worker) Ready() bool { return w.ready.Load() }

// Breaker exposes the worker's dispatch breaker (tests and stats).
func (w *Worker) Breaker() *serve.Breaker { return w.breaker }

// Registry is the coordinator's view of the fleet.
type Registry struct {
	workers []*Worker
}

// NewRegistry wraps each client with a breaker (named after the worker,
// so trips are attributable) and an optimistic ready flag — the first
// probe pass corrects it within one interval, and a down worker's
// breaker opens after its first failed dispatches regardless.
func NewRegistry(clients []WorkerClient, bopts serve.BreakerOpts) *Registry {
	r := &Registry{}
	for _, c := range clients {
		w := &Worker{client: c, breaker: serve.NewBreaker(c.Name(), bopts)}
		w.ready.Store(true)
		r.workers = append(r.workers, w)
	}
	return r
}

// Workers returns the fleet.
func (r *Registry) Workers() []*Worker { return r.workers }

// Probe runs one readiness pass over the whole fleet.
func (r *Registry) Probe(ctx context.Context, timeout time.Duration) {
	for _, w := range r.workers {
		pctx, cancel := context.WithTimeout(ctx, timeout)
		err := w.client.Ready(pctx)
		cancel()
		w.probes.Add(1)
		if err != nil {
			w.probeFails.Add(1)
		}
		w.ready.Store(err == nil)
	}
}

// Run probes immediately and then every interval until ctx is done.
func (r *Registry) Run(ctx context.Context, interval time.Duration) {
	probeTimeout := interval / 2
	if probeTimeout <= 0 {
		probeTimeout = time.Second
	}
	r.Probe(ctx, probeTimeout)
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			r.Probe(ctx, probeTimeout)
		}
	}
}
