package campaign

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"

	"looppoint/internal/artifact"
	"looppoint/internal/faults"
	"looppoint/internal/serve"
)

// ErrCorrupt marks a worker response whose result bytes failed their
// checksum (or carried the wrong claim key). The coordinator treats it
// as a retryable dispatch failure — corrupt data is re-fetched, never
// recorded.
var ErrCorrupt = errors.New("campaign: corrupt worker response")

// ClaimOutcome is one delivered claim reply, transport-verified: when
// Status is 200, Result passed its checksum and echoes the right key.
type ClaimOutcome struct {
	Status       int
	Outcome      string
	Dedup        bool
	Result       *serve.JobResult
	Err          string
	RetryAfterMS int64
}

// WorkerClient is one worker as the coordinator sees it: a name, a
// readiness probe, and the claim call. The HTTP implementation below is
// the real one; tests substitute in-process fakes.
type WorkerClient interface {
	Name() string
	Ready(ctx context.Context) error
	Claim(ctx context.Context, key string, leaseMS int64, job serve.JobRequest) (*ClaimOutcome, error)
}

// HTTPWorker speaks to one lpserved instance over HTTP.
type HTTPWorker struct {
	name string
	base string
	hc   *http.Client
}

// NewHTTPWorker builds a client for the worker at baseURL (scheme +
// host[:port]); name defaults to the host part. The per-request timeout
// is the coordinator's job: it bounds every call with a context.
func NewHTTPWorker(name, baseURL string) *HTTPWorker {
	base := strings.TrimRight(baseURL, "/")
	if name == "" {
		name = strings.TrimPrefix(strings.TrimPrefix(base, "http://"), "https://")
	}
	return &HTTPWorker{name: name, base: base, hc: &http.Client{}}
}

func (w *HTTPWorker) Name() string { return w.name }

// Ready probes GET /readyz; nil means the worker is admitting work.
func (w *HTTPWorker) Ready(ctx context.Context) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, w.base+"/readyz", nil)
	if err != nil {
		return err
	}
	resp, err := w.hc.Do(req)
	if err != nil {
		return err
	}
	io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("campaign: %s not ready: %s", w.name, resp.Status)
	}
	return nil
}

// claimWire mirrors serve.ClaimResponse with the result kept raw, so the
// checksum can be verified over the exact bytes the worker sent before
// anything is decoded into a struct.
type claimWire struct {
	Key     string          `json:"key"`
	Status  int             `json:"status"`
	Outcome string          `json:"outcome"`
	Dedup   bool            `json:"dedup"`
	Result  json.RawMessage `json:"result"`
	FNV1a   string          `json:"fnv1a"`
	Error   *struct {
		Outcome      string `json:"outcome"`
		Error        string `json:"error"`
		RetryAfterMS int64  `json:"retry_after_ms"`
	} `json:"error"`
}

// Claim POSTs one claim and verifies the reply. A decode failure or
// checksum mismatch returns an error wrapping ErrCorrupt; a delivered
// non-200 outcome (shed, timeout, server error) is NOT a Go error — it
// comes back as a ClaimOutcome for the coordinator to classify.
func (w *HTTPWorker) Claim(ctx context.Context, key string, leaseMS int64, job serve.JobRequest) (*ClaimOutcome, error) {
	if err := faults.Check("campaign.claim"); err != nil {
		return nil, err
	}
	body, err := json.Marshal(serve.ClaimRequest{Key: key, LeaseMS: leaseMS, Job: job})
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.base+"/v1/claim", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := w.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 4<<20))
	if err != nil {
		return nil, err
	}
	// Chaos corruption site: the drill flips bits in the response body
	// here to prove the checksum catches what the transport delivers.
	faults.CorruptBytes("campaign.result", raw)

	var cw claimWire
	if err := json.Unmarshal(raw, &cw); err != nil {
		return nil, fmt.Errorf("%w: undecodable claim reply from %s: %v", ErrCorrupt, w.name, err)
	}
	out := &ClaimOutcome{Status: cw.Status, Outcome: cw.Outcome, Dedup: cw.Dedup}
	if cw.Error != nil {
		out.Err = cw.Error.Error
		out.RetryAfterMS = cw.Error.RetryAfterMS
	}
	if cw.Status != http.StatusOK {
		return out, nil
	}
	if cw.Key != key {
		return nil, fmt.Errorf("%w: %s answered claim %s with key %s", ErrCorrupt, w.name, key, cw.Key)
	}
	if len(cw.Result) == 0 || cw.FNV1a == "" {
		return nil, fmt.Errorf("%w: %s sent a success with no result/checksum", ErrCorrupt, w.name)
	}
	var compact bytes.Buffer
	if err := json.Compact(&compact, cw.Result); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	if got := fmt.Sprintf("%#x", artifact.Checksum(compact.Bytes())); got != cw.FNV1a {
		return nil, fmt.Errorf("%w: %s result checksum %s, envelope says %s", ErrCorrupt, w.name, got, cw.FNV1a)
	}
	var res serve.JobResult
	if err := json.Unmarshal(cw.Result, &res); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	out.Result = &res
	return out, nil
}
