package campaign

import (
	"bytes"
	"context"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"looppoint/internal/artifact"
	"looppoint/internal/serve"
)

// fakeResult is the deterministic fake worker payload: a pure function
// of the canonical job spec, so every honest execution of one key —
// any worker, any attempt — produces byte-identical canonical results.
func fakeResult(job serve.JobRequest) *serve.JobResult {
	h := artifact.Checksum([]byte(fmt.Sprintf("%s|%s|%s|%d|%s|%s|%t",
		job.Class, job.App, job.Input, job.Threads, job.Policy, job.Core, job.Full)))
	return &serve.JobResult{
		ID: job.ID, Class: job.Class, App: job.App,
		Summary:          fmt.Sprintf("fake-%04x", h&0xffff),
		Regions:          int(h%7) + 1,
		Points:           int(h%3) + 1,
		PredictedSeconds: float64(h%1000) / 10,
	}
}

// fakeWorker is an in-process WorkerClient with scriptable misbehavior.
type fakeWorker struct {
	name string

	mu        sync.Mutex
	claims    int
	failFirst int // transport-error the first N claims
	shedFirst int // answer 503 to the first N claims
	hangFirst int // block the first N claims until their ctx dies
	badReq    bool
}

func (f *fakeWorker) Name() string                    { return f.name }
func (f *fakeWorker) Ready(ctx context.Context) error { return nil }

func (f *fakeWorker) Claim(ctx context.Context, key string, leaseMS int64, job serve.JobRequest) (*ClaimOutcome, error) {
	f.mu.Lock()
	f.claims++
	n := f.claims
	hang := n <= f.hangFirst
	n -= f.hangFirst
	fail, shed, bad := n > 0 && n <= f.failFirst, n > f.failFirst && n <= f.failFirst+f.shedFirst, f.badReq
	f.mu.Unlock()
	switch {
	case hang:
		<-ctx.Done()
		return nil, ctx.Err()
	case fail:
		return nil, fmt.Errorf("%s: connection reset", f.name)
	case shed:
		return &ClaimOutcome{Status: http.StatusServiceUnavailable, Outcome: "shed_breaker",
			Err: "injected shed", RetryAfterMS: 1}, nil
	case bad:
		return &ClaimOutcome{Status: http.StatusBadRequest, Outcome: "bad_request", Err: "injected bad request"}, nil
	}
	res := fakeResult(job)
	res.ID = key
	return &ClaimOutcome{Status: http.StatusOK, Outcome: "ok", Result: res}, nil
}

// quickConfig is a millisecond-scale coordinator config for tests.
func quickConfig(tag string) Config {
	return Config{
		Tag: tag, Lease: 40 * time.Millisecond, RequestTimeout: 120 * time.Millisecond,
		Backoff: time.Millisecond, MaxBackoff: 10 * time.Millisecond, Seed: 42,
		ProbeInterval: 20 * time.Millisecond,
		Breaker:       serve.BreakerOpts{FailureThreshold: 3, OpenFor: 20 * time.Millisecond},
	}
}

func npbSpec(n int) Spec {
	apps := []string{"npb-cg", "npb-ft", "npb-is", "npb-mg", "npb-lu", "npb-ep", "npb-bt", "npb-sp"}
	var s Spec
	for i := 0; i < n; i++ {
		s.Jobs = append(s.Jobs, serve.JobRequest{
			Class: serve.ClassAnalyze, App: apps[i%len(apps)], Input: "test", Threads: 4,
		})
	}
	return s
}

func runCampaign(t *testing.T, cfg Config, workers []WorkerClient, spec Spec) *Report {
	t.Helper()
	c, err := New(cfg, workers)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	rep, err := c.Run(ctx, spec)
	if err != nil {
		t.Fatalf("campaign run: %v", err)
	}
	return rep
}

func TestKeyTaggedNormalizes(t *testing.T) {
	explicit := serve.JobRequest{ID: "x", Class: serve.ClassAnalyze, App: "npb-cg",
		Input: "train", Policy: "passive", Core: "ooo", DeadlineMS: 5000, Retries: 2}
	implicit := serve.JobRequest{Class: serve.ClassAnalyze, App: "npb-cg"}
	if KeyTagged("t", explicit) != KeyTagged("t", implicit) {
		t.Fatal("spelled-out defaults and empty defaults should share a key")
	}
	if KeyTagged("t", implicit) == KeyTagged("u", implicit) {
		t.Fatal("distinct tags must produce distinct keys")
	}
	other := implicit
	other.Threads = 8
	if KeyTagged("t", implicit) == KeyTagged("t", other) {
		t.Fatal("distinct specs must produce distinct keys")
	}
	if len(KeyTagged("t", implicit)) != 16 {
		t.Fatalf("key %q is not 16 hex digits", KeyTagged("t", implicit))
	}
}

// TestJournalResumeRoundTrip: results appended before a crash are
// restored byte-identically; a torn final line is repaired away; a
// journal from a different campaign config restores nothing and resets.
func TestJournalResumeRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "campaign.jsonl")
	j, restored, err := OpenJournal(path, "tag-a")
	if err != nil {
		t.Fatal(err)
	}
	if len(restored) != 0 {
		t.Fatalf("fresh journal restored %d results", len(restored))
	}
	var want [][]byte
	for _, job := range npbSpec(3).Jobs {
		n := Normalize(job)
		key := KeyTagged("tag-a", n)
		r := &Result{Key: key, Job: n, Res: CanonicalResult(key, fakeResult(n))}
		if err := j.Append(r); err != nil {
			t.Fatal(err)
		}
		b, _ := r.CanonicalBytes()
		want = append(want, b)
	}
	j.Close()

	// Simulate the coordinator dying mid-append: a torn line trails.
	f, _ := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	f.WriteString(`{"fnv1a":"0xdead","record":{"key":"torn`)
	f.Close()

	j2, restored, err := OpenJournal(path, "tag-a")
	if err != nil {
		t.Fatal(err)
	}
	j2.Close()
	if len(restored) != 3 {
		t.Fatalf("restored %d results, want 3", len(restored))
	}
	for i, r := range restored {
		got, err := r.CanonicalBytes()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want[i]) {
			t.Fatalf("result %d not rehydrated byte-identically:\n got %s\nwant %s", i, got, want[i])
		}
	}

	// A different tag is a different campaign: nothing restores, and the
	// journal resets to a fresh header rather than mixing campaigns.
	j3, restored, err := OpenJournal(path, "tag-b")
	if err != nil {
		t.Fatal(err)
	}
	j3.Close()
	if len(restored) != 0 {
		t.Fatalf("mismatched config restored %d results, want 0", len(restored))
	}
	if _, restored, _ = OpenJournal(path, "tag-a"); len(restored) != 0 {
		t.Fatal("reset journal still serves the old campaign's results")
	}
}

// TestCacheCorruptFileReadsAsMiss: the disk layer round-trips results,
// and a corrupted cache file is counted, deleted, and re-missed — never
// served.
func TestCacheCorruptFileReadsAsMiss(t *testing.T) {
	dir := t.TempDir()
	c1, err := NewCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	job := Normalize(serve.JobRequest{Class: serve.ClassAnalyze, App: "npb-cg"})
	key := KeyTagged("t", job)
	r := &Result{Key: key, Job: job, Res: CanonicalResult(key, fakeResult(job))}
	if err := c1.Put(r); err != nil {
		t.Fatal(err)
	}

	c2, _ := NewCache(dir) // cold memory: must come from disk
	got, ok := c2.Get(key)
	if !ok {
		t.Fatal("disk layer missed a stored result")
	}
	gb, _ := got.CanonicalBytes()
	rb, _ := r.CanonicalBytes()
	if !bytes.Equal(gb, rb) {
		t.Fatalf("disk round-trip: got %s want %s", gb, rb)
	}

	path := filepath.Join(dir, key+".json")
	data, _ := os.ReadFile(path)
	data[len(data)/2] ^= 1
	os.WriteFile(path, data, 0o644)
	c3, _ := NewCache(dir)
	if _, ok := c3.Get(key); ok {
		t.Fatal("corrupt cache file was served")
	}
	if _, _, _, corrupt := c3.Counters(); corrupt != 1 {
		t.Fatalf("corrupt counter %d, want 1", corrupt)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("corrupt cache file should be deleted")
	}
}

// TestCoordinatorFleetMatchesSingleNode: the same campaign through a
// 3-worker fleet and through one worker renders byte-identical reports.
func TestCoordinatorFleetMatchesSingleNode(t *testing.T) {
	spec := npbSpec(8)
	fleet := runCampaign(t, quickConfig("fleet"),
		[]WorkerClient{&fakeWorker{name: "w0"}, &fakeWorker{name: "w1"}, &fakeWorker{name: "w2"}}, spec)
	single := runCampaign(t, quickConfig("fleet"), []WorkerClient{&fakeWorker{name: "solo"}}, spec)
	if fleet.Stats.Failed != 0 || single.Stats.Failed != 0 {
		t.Fatalf("failures: fleet=%d single=%d", fleet.Stats.Failed, single.Stats.Failed)
	}
	if fleet.Render() != single.Render() {
		t.Fatalf("fleet and single-node reports diverge:\n%s\nvs\n%s", fleet.Render(), single.Render())
	}
}

// TestCoordinatorRetriesTransientFaults: transport errors and shed
// responses burn attempts but not the campaign.
func TestCoordinatorRetriesTransientFaults(t *testing.T) {
	w := &fakeWorker{name: "flaky", failFirst: 3, shedFirst: 2}
	rep := runCampaign(t, quickConfig("retry"), []WorkerClient{w}, npbSpec(4))
	if rep.Stats.Failed != 0 || rep.Stats.Completed != 4 {
		t.Fatalf("stats %+v", rep.Stats)
	}
	if rep.Stats.Dispatched < 4+3+2 {
		t.Fatalf("dispatched %d, want at least %d (retries burn dispatches)", rep.Stats.Dispatched, 9)
	}
}

// TestCoordinatorFailsPermanentlyOnBadRequest: a 400 is terminal — one
// attempt, no retry storm, campaign still settles.
func TestCoordinatorFailsPermanentlyOnBadRequest(t *testing.T) {
	w := &fakeWorker{name: "strict", badReq: true}
	spec := npbSpec(2)
	c, err := New(quickConfig("perm"), []WorkerClient{w})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	rep, err := c.Run(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Stats.Failed != 2 || rep.Stats.Completed != 0 {
		t.Fatalf("stats %+v, want both jobs failed", rep.Stats)
	}
	if rep.Stats.Dispatched != 2 {
		t.Fatalf("dispatched %d: permanent failures must not burn retries", rep.Stats.Dispatched)
	}
	if !strings.Contains(rep.Render(), "FAILED") {
		t.Fatalf("report should mark failed jobs:\n%s", rep.Render())
	}
}

// TestCoordinatorStealsFromStraggler: a dispatch that outlives its
// lease has its job stolen — re-enqueued and completed by a later
// dispatch while the straggler still hangs — and the report matches a
// clean run exactly. The worker hangs its first two claims (one per
// runner), so the steal path is the only way those jobs finish before
// the request timeout, and the lease timer always fires first.
func TestCoordinatorStealsFromStraggler(t *testing.T) {
	spec := npbSpec(4)
	rep := runCampaign(t, quickConfig("steal"), []WorkerClient{&fakeWorker{name: "straggler", hangFirst: 2}}, spec)
	if rep.Stats.Failed != 0 || rep.Stats.Completed != 4 {
		t.Fatalf("stats %+v", rep.Stats)
	}
	if rep.Stats.Steals == 0 {
		t.Fatal("no lease was stolen from the hung worker")
	}
	clean := runCampaign(t, quickConfig("steal"), []WorkerClient{&fakeWorker{name: "solo"}}, spec)
	if rep.Render() != clean.Render() {
		t.Fatalf("stolen-campaign report diverges from clean run:\n%s\nvs\n%s", rep.Render(), clean.Render())
	}
	if rep.Stats.DupMismatches != 0 {
		t.Fatalf("%d duplicate mismatches", rep.Stats.DupMismatches)
	}
}

// TestCoordinatorCollapsesDuplicateSpecEntries: two spellings of one job
// are one execution and one report line.
func TestCoordinatorCollapsesDuplicateSpecEntries(t *testing.T) {
	spec := Spec{Jobs: []serve.JobRequest{
		{Class: serve.ClassAnalyze, App: "npb-cg", Input: "train"},
		{Class: serve.ClassAnalyze, App: "npb-cg"}, // same job, defaults implicit
	}}
	rep := runCampaign(t, quickConfig("dedup"), []WorkerClient{&fakeWorker{name: "w"}}, spec)
	if rep.Stats.Jobs != 1 || len(rep.Results) != 1 {
		t.Fatalf("%d jobs in report, want the duplicates collapsed to 1", rep.Stats.Jobs)
	}
}
