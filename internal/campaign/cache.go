package campaign

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"

	"looppoint/internal/artifact"
)

// Cache is the content-addressed result store: completed results keyed
// by their job's content address. It layers an in-memory map over an
// optional on-disk directory of checksummed files (<key>.json, one
// artifact envelope each), so a resumed campaign — or a second campaign
// sharing jobs with the first — pays zero re-simulation for work that
// already landed.
//
// The hit counter is load-bearing for the resume guarantee: after
// `lpcoord -resume`, cache hits must equal the previously completed jobs
// and dispatches must equal only the remainder.
type Cache struct {
	dir string

	mu  sync.Mutex
	mem map[string]*Result

	hits    atomic.Uint64
	misses  atomic.Uint64
	stores  atomic.Uint64
	corrupt atomic.Uint64
}

// NewCache builds a cache; dir == "" keeps it memory-only.
func NewCache(dir string) (*Cache, error) {
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("campaign: cache dir: %w", err)
		}
	}
	return &Cache{dir: dir, mem: make(map[string]*Result)}, nil
}

// Seed preloads a result (e.g. restored from the journal) without
// touching the store counters — so the subsequent lookup during campaign
// admission is counted as the cache hit it is.
func (c *Cache) Seed(r *Result) {
	c.mu.Lock()
	c.mem[r.Key] = r
	c.mu.Unlock()
}

// Get returns the cached result for key, consulting memory first and
// then the disk layer. A disk file that fails its checksum counts as
// corrupt, is deleted, and reads as a miss — a damaged cache re-runs the
// job, it never serves garbage.
func (c *Cache) Get(key string) (*Result, bool) {
	c.mu.Lock()
	r, ok := c.mem[key]
	c.mu.Unlock()
	if ok {
		c.hits.Add(1)
		return r, true
	}
	if c.dir != "" {
		if r := c.readDisk(key); r != nil {
			c.Seed(r)
			c.hits.Add(1)
			return r, true
		}
	}
	c.misses.Add(1)
	return nil, false
}

func (c *Cache) readDisk(key string) *Result {
	path := filepath.Join(c.dir, key+".json")
	rec, err := artifact.ReadChecksummedFile(path)
	if err != nil {
		if errors.Is(err, artifact.ErrCorrupt) {
			c.corrupt.Add(1)
			os.Remove(path)
		}
		return nil
	}
	var r Result
	if json.Unmarshal(rec, &r) != nil || r.Key != key || r.Res == nil {
		c.corrupt.Add(1)
		os.Remove(path)
		return nil
	}
	return &r
}

// Put stores a completed result in memory and, when a directory is
// configured, as a checksummed file written atomically (temp + fsync +
// rename), so a crash mid-store can never leave a half-written entry.
func (c *Cache) Put(r *Result) error {
	c.mu.Lock()
	c.mem[r.Key] = r
	c.mu.Unlock()
	c.stores.Add(1)
	if c.dir == "" {
		return nil
	}
	rec, err := r.CanonicalBytes()
	if err != nil {
		return err
	}
	return artifact.WriteChecksummedFile(filepath.Join(c.dir, r.Key+".json"), rec)
}

// Counters returns (hits, misses, stores, corrupt).
func (c *Cache) Counters() (hits, misses, stores, corrupt uint64) {
	return c.hits.Load(), c.misses.Load(), c.stores.Load(), c.corrupt.Load()
}
