package pinball

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"looppoint/internal/artifact"
	"looppoint/internal/bbv"
	"looppoint/internal/exec"
)

// The streaming loader: reads incrementally from any io.Reader and
// grows slices cautiously, so a corrupted-but-plausible length prefix
// fails at the real end of input instead of committing gigabytes up
// front. Decode (io.go) is the fast slab counterpart; both accept
// exactly the same bytes and classify failures identically.

type reader struct {
	r   *bufio.Reader
	sum uint64
	off int64 // bytes consumed so far, for truncation diagnostics
	err error
}

func (r *reader) raw(b []byte) {
	if r.err != nil {
		return
	}
	n, err := io.ReadFull(r.r, b)
	r.off += int64(n)
	if err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			r.err = fmt.Errorf("%w at byte offset %d", artifact.ErrTruncated, r.off)
		} else {
			r.err = err
		}
		return
	}
	r.sum = artifact.Update(r.sum, b)
}

func (r *reader) u64() uint64 {
	var buf [8]byte
	r.raw(buf[:])
	if r.err != nil {
		return 0
	}
	return binary.LittleEndian.Uint64(buf[:])
}

func (r *reader) i64() int64  { return int64(r.u64()) }
func (r *reader) u32() uint32 { return uint32(r.u64()) }

func (r *reader) str() string {
	n := r.u64()
	if r.err != nil {
		return ""
	}
	if n > maxStringLen {
		r.err = fmt.Errorf("implausible string length %d at byte offset %d: %w", n, r.off, artifact.ErrCorrupt)
		return ""
	}
	buf := make([]byte, n)
	r.raw(buf)
	if r.err != nil {
		return ""
	}
	return string(buf)
}

// ReadFrom deserializes a pinball and verifies its snapshot checksum.
// Failures wrap the artifact sentinels: ErrTruncated (with byte offset)
// for early EOF, ErrCorrupt for structural or checksum damage,
// ErrVersion for format skew.
func ReadFrom(src io.Reader) (*Pinball, error) {
	r := &reader{r: bufio.NewReader(src), sum: artifact.FNVOffset}
	head := make([]byte, len(magic))
	if n, err := io.ReadFull(r.r, head); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return nil, fmt.Errorf("pinball: reading header: %w at byte offset %d", artifact.ErrTruncated, n)
		}
		return nil, fmt.Errorf("pinball: reading header: %w", err)
	}
	r.off = int64(len(magic))
	if string(head) != magic {
		return nil, fmt.Errorf("pinball: bad magic %q: %w", head, artifact.ErrCorrupt)
	}
	if v := r.u32(); r.err == nil && v != version {
		return nil, fmt.Errorf("pinball: version %d (want %d): %w", v, version, artifact.ErrVersion)
	}
	pb := &Pinball{}
	pb.Name = r.str()
	pb.NumThreads = int(r.u64())
	pb.MemChecksum = r.u64()
	pb.FinalChecksum = r.u64()
	pb.WarmupSteps = r.u64()
	pb.StartHitsAtSnapshot = r.u64()
	pb.EndHitsAtSnapshot = r.u64()
	pb.Region.Start = readMarker(r)
	pb.Region.End = readMarker(r)
	pb.Region.WarmupStart = readMarker(r)

	s := &exec.Snapshot{}
	s.Steps = r.u64()
	memLen := r.u64()
	if r.err == nil && memLen > maxMemWords {
		return nil, fmt.Errorf("pinball: implausible memory size %d: %w", memLen, artifact.ErrCorrupt)
	}
	// Grow incrementally rather than trusting the declared length: a
	// corrupted-but-plausible count must fail at the real end of input,
	// not commit gigabytes first.
	s.Mem = make([]uint64, 0, min(memLen, uint64(1<<16)))
	for i := uint64(0); i < memLen && r.err == nil; i++ {
		s.Mem = append(s.Mem, r.u64())
	}
	nThreads := r.u64()
	if r.err == nil && nThreads > maxThreads {
		return nil, fmt.Errorf("pinball: implausible thread count %d: %w", nThreads, artifact.ErrCorrupt)
	}
	for i := uint64(0); i < nThreads && r.err == nil; i++ {
		var t exec.ThreadSnapshot
		for j := range t.R {
			t.R[j] = r.i64()
		}
		for j := range t.F {
			t.F[j] = math.Float64frombits(r.u64())
		}
		t.State = exec.ThreadState(r.u64())
		t.Cur = readFrame(r)
		stackLen := r.u64()
		if r.err == nil && stackLen > maxStackDepth {
			return nil, fmt.Errorf("pinball: implausible stack depth %d: %w", stackLen, artifact.ErrCorrupt)
		}
		for j := uint64(0); j < stackLen && r.err == nil; j++ {
			t.Stack = append(t.Stack, readFrame(r))
		}
		t.ICount = r.u64()
		t.Futex = r.u64()
		s.Threads = append(s.Threads, t)
	}
	nQueues := r.u64()
	if r.err == nil && nQueues > maxThreads {
		return nil, fmt.Errorf("pinball: implausible futex queue count %d: %w", nQueues, artifact.ErrCorrupt)
	}
	for i := uint64(0); i < nQueues && r.err == nil; i++ {
		q := exec.FutexQueue{Addr: r.u64()}
		nWait := r.u64()
		if r.err == nil && nWait > maxThreads {
			return nil, fmt.Errorf("pinball: implausible futex waiter count %d: %w", nWait, artifact.ErrCorrupt)
		}
		for j := uint64(0); j < nWait && r.err == nil; j++ {
			q.Tids = append(q.Tids, int(r.u64()))
		}
		s.Futexes = append(s.Futexes, q)
	}
	nOS := r.u64()
	if r.err == nil && nOS > maxOSWords {
		return nil, fmt.Errorf("pinball: implausible OS state length %d: %w", nOS, artifact.ErrCorrupt)
	}
	for i := uint64(0); i < nOS && r.err == nil; i++ {
		s.OS = append(s.OS, r.u64())
	}
	pb.Start = s

	nLogs := r.u64()
	if r.err == nil && nLogs > maxLogs {
		return nil, fmt.Errorf("pinball: implausible syscall log count %d: %w", nLogs, artifact.ErrCorrupt)
	}
	for i := uint64(0); i < nLogs && r.err == nil; i++ {
		n := r.u64()
		if r.err == nil && n > maxLogLen {
			return nil, fmt.Errorf("pinball: implausible syscall log length %d: %w", n, artifact.ErrCorrupt)
		}
		log := make([]int64, 0, min(n, uint64(1<<16)))
		for j := uint64(0); j < n && r.err == nil; j++ {
			log = append(log, r.i64())
		}
		pb.Syscalls = append(pb.Syscalls, log)
	}

	nSched := r.u64()
	if r.err == nil && nSched > maxSchedule {
		return nil, fmt.Errorf("pinball: implausible schedule length %d: %w", nSched, artifact.ErrCorrupt)
	}
	for i := uint64(0); i < nSched && r.err == nil; i++ {
		tid := int(r.u64())
		n := uint32(r.u64())
		pb.Schedule = append(pb.Schedule, exec.ScheduleEntry{Tid: tid, N: n})
	}
	if r.err != nil {
		return nil, fmt.Errorf("pinball: decode: %w", r.err)
	}
	// Verify the trailing whole-file hash (read raw, not through raw()).
	want := r.sum
	var tail [8]byte
	if n, err := io.ReadFull(r.r, tail[:]); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return nil, fmt.Errorf("pinball: reading integrity hash: %w at byte offset %d", artifact.ErrTruncated, r.off+int64(n))
		}
		return nil, fmt.Errorf("pinball: reading integrity hash: %w", err)
	}
	if got := binary.LittleEndian.Uint64(tail[:]); got != want {
		return nil, fmt.Errorf("pinball: file integrity hash mismatch (file %#x, computed %#x): %w", got, want, artifact.ErrCorrupt)
	}
	if err := pb.Verify(); err != nil {
		return nil, err
	}
	return pb, nil
}

func readMarker(r *reader) bbv.Marker {
	m := bbv.Marker{PC: r.u64(), Count: r.u64()}
	m.IsEnd = r.u64() == 1
	return m
}

func readFrame(r *reader) exec.FrameRef {
	return exec.FrameRef{
		Image:   int(r.u64()),
		Routine: int(r.u64()),
		Block:   int(r.u64()),
		Index:   int(r.u64()),
	}
}
