//go:build !linux

package pinball

// LoadMapped falls back to the copying loader on platforms where the
// zero-copy mapping path is not wired up; callers see identical
// results and error classification either way.
func LoadMapped(path string) (*Pinball, error) { return Load(path) }
