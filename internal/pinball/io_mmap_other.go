//go:build !linux

package pinball

// MmapSupported reports whether the zero-copy mapped loader is wired up
// on this platform; tools use it to warn once that -mmap will silently
// take the copying path.
const MmapSupported = false

// LoadMapped falls back to the copying loader on platforms where the
// zero-copy mapping path is not wired up; callers see identical
// results and error classification either way.
func LoadMapped(path string) (*Pinball, error) { return Load(path) }
