package pinball

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"looppoint/internal/artifact"
	"looppoint/internal/faults"
	"looppoint/internal/omp"
	"looppoint/internal/testprog"
)

// typed reports whether err wraps one of the artifact sentinels.
func typed(err error) bool {
	return errors.Is(err, artifact.ErrCorrupt) ||
		errors.Is(err, artifact.ErrTruncated) ||
		errors.Is(err, artifact.ErrVersion)
}

// savedPinballBytes records a small pinball and returns its serialized
// form.
func savedPinballBytes(t *testing.T) []byte {
	t.Helper()
	p := testprog.Phased(2, 2, 30, omp.Passive)
	pb, err := Record(p, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := pb.Write(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// loaders enumerates every in-memory decode path; the corruption and
// truncation matrices run the full offset sweep against each so the
// slab decoder inherits the exact classification guarantees of the
// streaming reader.
var loaders = []struct {
	name string
	load func([]byte) (*Pinball, error)
}{
	{"stream", func(b []byte) (*Pinball, error) { return ReadFrom(bytes.NewReader(b)) }},
	{"slab", Decode},
}

// TestCorruptionMatrixBitFlips flips one bit at every byte offset of a
// saved pinball — header, snapshot, syscall logs, schedule, and trailing
// hash — and asserts every flip is rejected with a typed artifact error
// by both decode paths. Single-byte damage can never slip through: the
// running FNV-1a state transformation is injective, so one changed
// payload byte always changes the trailing hash, and flips in the hash
// itself fail the comparison.
func TestCorruptionMatrixBitFlips(t *testing.T) {
	orig := savedPinballBytes(t)
	for _, ld := range loaders {
		t.Run(ld.name, func(t *testing.T) {
			for off := 0; off < len(orig); off++ {
				data := append([]byte(nil), orig...)
				data[off] ^= 0x10
				_, err := ld.load(data)
				if err == nil {
					t.Fatalf("bit flip at byte %d accepted", off)
				}
				if !typed(err) {
					t.Fatalf("bit flip at byte %d: untyped error %v", off, err)
				}
			}
		})
	}
}

// TestCorruptionMatrixTruncation cuts the saved pinball at every prefix
// length and asserts both decode paths report ErrTruncated (with the
// byte offset in the message) for all of them.
func TestCorruptionMatrixTruncation(t *testing.T) {
	orig := savedPinballBytes(t)
	for _, ld := range loaders {
		t.Run(ld.name, func(t *testing.T) {
			for cut := 0; cut < len(orig); cut++ {
				_, err := ld.load(orig[:cut])
				if !errors.Is(err, artifact.ErrTruncated) {
					t.Fatalf("truncation at %d bytes: err = %v, want ErrTruncated", cut, err)
				}
			}
		})
	}
}

// TestCorruptionMatrixMmap replays representative damage — bad magic, a
// torn tail, and a flipped byte in each section — through the mmap load
// path, which must classify exactly like the in-memory loaders.
func TestCorruptionMatrixMmap(t *testing.T) {
	orig := savedPinballBytes(t)
	dir := t.TempDir()
	cases := []struct {
		name string
		data []byte
		want error // nil means any typed artifact error
	}{
		{"bad-magic", append([]byte("NOTApinb"), orig[len(magic):]...), artifact.ErrCorrupt},
		{"torn-tail", orig[:len(orig)-3], artifact.ErrTruncated},
		{"half-file", orig[:len(orig)/2], artifact.ErrTruncated},
		{"flip-header", flipAt(orig, len(magic)+8+2), nil},
		{"flip-snapshot", flipAt(orig, len(orig)/2), nil},
		{"flip-hash", flipAt(orig, len(orig)-1), artifact.ErrCorrupt},
		{"version-skew", flipAt(orig, len(magic)), artifact.ErrVersion},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			path := filepath.Join(dir, tc.name+".pinball")
			if err := os.WriteFile(path, tc.data, 0o644); err != nil {
				t.Fatal(err)
			}
			_, err := LoadMapped(path)
			if tc.want != nil && !errors.Is(err, tc.want) {
				t.Fatalf("err = %v, want %v", err, tc.want)
			}
			if tc.want == nil && !typed(err) {
				t.Fatalf("err = %v, want a typed artifact error", err)
			}
		})
	}
	good := filepath.Join(dir, "good.pinball")
	if err := os.WriteFile(good, orig, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadMapped(good); err != nil {
		t.Fatalf("LoadMapped of intact file: %v", err)
	}
}

func flipAt(orig []byte, off int) []byte {
	data := append([]byte(nil), orig...)
	data[off] ^= 0x10
	return data
}

// TestVersionSkewIsTyped: a future version number is ErrVersion, not a
// generic failure, on both decode paths.
func TestVersionSkewIsTyped(t *testing.T) {
	orig := savedPinballBytes(t)
	data := append([]byte(nil), orig...)
	data[len(magic)] = 99 // version field is the first u64 after the magic
	for _, ld := range loaders {
		if _, err := ld.load(data); !errors.Is(err, artifact.ErrVersion) {
			t.Fatalf("%s: err = %v, want ErrVersion", ld.name, err)
		}
	}
}

// TestLoadReportsPathAndOffset: file-level loads carry the path, and
// truncation failures carry the byte offset.
func TestLoadReportsPathAndOffset(t *testing.T) {
	orig := savedPinballBytes(t)
	path := filepath.Join(t.TempDir(), "cut.pinball")
	if err := os.WriteFile(path, orig[:len(orig)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := Load(path)
	if !errors.Is(err, artifact.ErrTruncated) {
		t.Fatalf("err = %v, want ErrTruncated", err)
	}
	msg := err.Error()
	if !bytes.Contains([]byte(msg), []byte(path)) {
		t.Errorf("error %q does not name the file", msg)
	}
	if !bytes.Contains([]byte(msg), []byte("byte offset")) {
		t.Errorf("error %q does not carry the byte offset", msg)
	}
}

// TestSaveCorruptionFaultCaught: an injected torn write at site
// "pinball.save" is caught by Load's integrity check — the quarantine
// path lpsim relies on.
func TestSaveCorruptionFaultCaught(t *testing.T) {
	p := testprog.Phased(2, 2, 30, omp.Passive)
	pb, err := Record(p, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	seed := faults.SeedFromEnv(3)
	defer faults.Enable(faults.NewPlan(seed,
		faults.Rule{Site: "pinball.save", Kind: faults.Corrupt, Rate: 1, Count: 1}))()
	path := filepath.Join(t.TempDir(), "torn.pinball")
	if err := pb.Save(path); err != nil {
		t.Fatalf("Save: %v", err)
	}
	if _, err := Load(path); !typed(err) {
		t.Fatalf("Load of torn file: err = %v, want typed artifact error", err)
	}
}

// TestLoadTransientFault: site "pinball.load" can force a retryable
// failure; a second call succeeds.
func TestLoadTransientFault(t *testing.T) {
	p := testprog.Phased(2, 2, 30, omp.Passive)
	pb, err := Record(p, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "ok.pinball")
	if err := pb.Save(path); err != nil {
		t.Fatal(err)
	}
	defer faults.Enable(faults.NewPlan(1,
		faults.Rule{Site: "pinball.load", Kind: faults.Transient, Rate: 1, Count: 1}))()
	if _, err := Load(path); !errors.Is(err, faults.ErrInjected) {
		t.Fatalf("first Load: err = %v, want injected", err)
	}
	if _, err := Load(path); err != nil {
		t.Fatalf("second Load: %v", err)
	}
}
