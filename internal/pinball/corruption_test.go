package pinball

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"looppoint/internal/artifact"
	"looppoint/internal/faults"
	"looppoint/internal/omp"
	"looppoint/internal/testprog"
)

// typed reports whether err wraps one of the artifact sentinels.
func typed(err error) bool {
	return errors.Is(err, artifact.ErrCorrupt) ||
		errors.Is(err, artifact.ErrTruncated) ||
		errors.Is(err, artifact.ErrVersion)
}

// savedPinballBytes records a small pinball and returns its serialized
// form.
func savedPinballBytes(t *testing.T) []byte {
	t.Helper()
	p := testprog.Phased(2, 2, 30, omp.Passive)
	pb, err := Record(p, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := pb.Write(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestCorruptionMatrixBitFlips flips one bit at every byte offset of a
// saved pinball — header, snapshot, syscall logs, schedule, and trailing
// hash — and asserts every flip is rejected with a typed artifact error.
// Single-byte damage can never slip through: the running FNV-1a state
// transformation is injective, so one changed payload byte always
// changes the trailing hash, and flips in the hash itself fail the
// comparison.
func TestCorruptionMatrixBitFlips(t *testing.T) {
	orig := savedPinballBytes(t)
	for off := 0; off < len(orig); off++ {
		data := append([]byte(nil), orig...)
		data[off] ^= 0x10
		_, err := ReadFrom(bytes.NewReader(data))
		if err == nil {
			t.Fatalf("bit flip at byte %d accepted", off)
		}
		if !typed(err) {
			t.Fatalf("bit flip at byte %d: untyped error %v", off, err)
		}
	}
}

// TestCorruptionMatrixTruncation cuts the saved pinball at every prefix
// length and asserts ErrTruncated (with the byte offset in the message)
// for all of them.
func TestCorruptionMatrixTruncation(t *testing.T) {
	orig := savedPinballBytes(t)
	for cut := 0; cut < len(orig); cut++ {
		_, err := ReadFrom(bytes.NewReader(orig[:cut]))
		if !errors.Is(err, artifact.ErrTruncated) {
			t.Fatalf("truncation at %d bytes: err = %v, want ErrTruncated", cut, err)
		}
	}
}

// TestVersionSkewIsTyped: a future version number is ErrVersion, not a
// generic failure.
func TestVersionSkewIsTyped(t *testing.T) {
	orig := savedPinballBytes(t)
	data := append([]byte(nil), orig...)
	data[len(magic)] = 99 // version field is the first u64 after the magic
	if _, err := ReadFrom(bytes.NewReader(data)); !errors.Is(err, artifact.ErrVersion) {
		t.Fatalf("err = %v, want ErrVersion", err)
	}
}

// TestLoadReportsPathAndOffset: file-level loads carry the path, and
// truncation failures carry the byte offset.
func TestLoadReportsPathAndOffset(t *testing.T) {
	orig := savedPinballBytes(t)
	path := filepath.Join(t.TempDir(), "cut.pinball")
	if err := os.WriteFile(path, orig[:len(orig)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := Load(path)
	if !errors.Is(err, artifact.ErrTruncated) {
		t.Fatalf("err = %v, want ErrTruncated", err)
	}
	msg := err.Error()
	if !bytes.Contains([]byte(msg), []byte(path)) {
		t.Errorf("error %q does not name the file", msg)
	}
	if !bytes.Contains([]byte(msg), []byte("byte offset")) {
		t.Errorf("error %q does not carry the byte offset", msg)
	}
}

// TestSaveCorruptionFaultCaught: an injected torn write at site
// "pinball.save" is caught by Load's integrity check — the quarantine
// path lpsim relies on.
func TestSaveCorruptionFaultCaught(t *testing.T) {
	p := testprog.Phased(2, 2, 30, omp.Passive)
	pb, err := Record(p, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	seed := faults.SeedFromEnv(3)
	defer faults.Enable(faults.NewPlan(seed,
		faults.Rule{Site: "pinball.save", Kind: faults.Corrupt, Rate: 1, Count: 1}))()
	path := filepath.Join(t.TempDir(), "torn.pinball")
	if err := pb.Save(path); err != nil {
		t.Fatalf("Save: %v", err)
	}
	if _, err := Load(path); !typed(err) {
		t.Fatalf("Load of torn file: err = %v, want typed artifact error", err)
	}
}

// TestLoadTransientFault: site "pinball.load" can force a retryable
// failure; a second call succeeds.
func TestLoadTransientFault(t *testing.T) {
	p := testprog.Phased(2, 2, 30, omp.Passive)
	pb, err := Record(p, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "ok.pinball")
	if err := pb.Save(path); err != nil {
		t.Fatal(err)
	}
	defer faults.Enable(faults.NewPlan(1,
		faults.Rule{Site: "pinball.load", Kind: faults.Transient, Rate: 1, Count: 1}))()
	if _, err := Load(path); !errors.Is(err, faults.ErrInjected) {
		t.Fatalf("first Load: err = %v, want injected", err)
	}
	if _, err := Load(path); err != nil {
		t.Fatalf("second Load: %v", err)
	}
}
