package pinball

import (
	"reflect"
	"testing"

	"looppoint/internal/bbv"
	"looppoint/internal/exec"
	"looppoint/internal/omp"
	"looppoint/internal/testprog"
)

// TestExtractRegionsFastSlowIdentical replays the same recording through
// the block-batched extraction sweep and the per-instruction reference
// engine and requires every extracted region pinball to be deeply equal:
// snapshots, schedules, syscall slices, rebased marker hit counts, and
// checksums.
func TestExtractRegionsFastSlowIdentical(t *testing.T) {
	for _, tc := range []struct {
		name   string
		policy omp.WaitPolicy
	}{
		{"passive", omp.Passive},
		{"active", omp.Active},
	} {
		t.Run(tc.name, func(t *testing.T) {
			p := testprog.Phased(4, 6, 100, tc.policy)
			pb, err := Record(p, 5, 256)
			if err != nil {
				t.Fatal(err)
			}
			steps := pb.Schedule.Steps()
			// Marker PCs give the hit-count rebasing something to track:
			// use the program's first worker block address.
			var markerPC uint64
			for _, img := range p.Images {
				if img.Sync {
					continue
				}
				for _, rt := range img.Routines {
					for _, blk := range rt.Blocks {
						if markerPC == 0 {
							markerPC = blk.Addr
						}
					}
				}
			}
			specs := []RegionSpec{
				{Name: "r0", WarmupStartStep: 0, StartStep: steps / 8, EndStep: steps / 4,
					Start: bbv.Marker{PC: markerPC, Count: 1}, End: bbv.Marker{PC: markerPC, Count: 2}},
				{Name: "r1", WarmupStartStep: steps / 4, StartStep: steps / 3, EndStep: steps / 2,
					Start: bbv.Marker{PC: markerPC, Count: 2}, End: bbv.Marker{PC: markerPC, Count: 3}},
				{Name: "r2", WarmupStartStep: steps/2 + 1, StartStep: steps/2 + 2, EndStep: steps - 1},
			}

			fast, err := pb.ExtractRegions(p, specs)
			if err != nil {
				t.Fatalf("fast extraction: %v", err)
			}
			slowExtract = true
			defer func() { slowExtract = false }()
			slow, err := pb.ExtractRegions(p, specs)
			if err != nil {
				t.Fatalf("slow extraction: %v", err)
			}

			if len(fast) != len(slow) {
				t.Fatalf("region counts differ: %d vs %d", len(fast), len(slow))
			}
			for i := range fast {
				if !reflect.DeepEqual(fast[i], slow[i]) {
					t.Errorf("region %d (%s) differs between fast and slow extraction",
						i, fast[i].Name)
				}
				// Both must still replay cleanly.
				if _, err := fast[i].Replay(p); err != nil {
					t.Errorf("fast region %d replay: %v", i, err)
				}
			}
		})
	}
}

// TestReplayRoutesBlockObservers pins the Replay dispatch rule: a value
// implementing BlockObserver goes to the block tier (fast path), a plain
// Observer forces the per-instruction path, and both see the same
// execution.
func TestReplayRoutesBlockObservers(t *testing.T) {
	p := testprog.Phased(2, 3, 60, omp.Passive)
	pb, err := Record(p, 9, 128)
	if err != nil {
		t.Fatal(err)
	}

	// Per-instruction collector (wrapped so the type switch cannot see
	// OnBlock) vs the collector attached directly.
	prof := func(wrap bool) *bbv.Profile {
		c := bbv.NewCollector(p, nil, 1000)
		c.SliceOnICount()
		var err error
		if wrap {
			_, err = pb.Replay(p, perInstrOnly{c})
		} else {
			_, err = pb.Replay(p, c)
		}
		if err != nil {
			t.Fatalf("replay (wrap=%v): %v", wrap, err)
		}
		return c.Finish()
	}
	if !reflect.DeepEqual(prof(true), prof(false)) {
		t.Fatal("profiles differ between observer tiers during replay")
	}
}

// perInstrOnly hides a collector's OnBlock method from the Replay type
// switch, forcing the per-instruction tier.
type perInstrOnly struct{ c *bbv.Collector }

func (p perInstrOnly) OnInstr(ev *exec.Event) { p.c.OnInstr(ev) }
