//go:build linux

package pinball

import (
	"fmt"
	"os"
	"syscall"

	"looppoint/internal/artifact"
	"looppoint/internal/faults"
)

// MmapSupported reports whether the zero-copy mapped loader is wired up
// on this platform.
const MmapSupported = true

// LoadMapped reads a pinball through a read-only memory mapping instead
// of copying the file into a heap buffer first — the zero-copy load
// path behind lpsim's -mmap flag. Decode copies every field it keeps
// (strings, memory words, stacks) out of the mapping, so nothing
// aliases the file after return and the mapping is always unmapped.
//
// The mapping is read-only, so the "pinball.load" Corrupt rule cannot
// damage bytes in place here; fault campaigns exercise corruption
// through Load, while this path keeps the Transient failure check so
// retry/quarantine behavior matches.
func LoadMapped(path string) (*Pinball, error) {
	if err := faults.Check("pinball.load"); err != nil {
		return nil, fmt.Errorf("pinball: load %s: %w", path, err)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := fi.Size()
	if size == 0 {
		return nil, fmt.Errorf("load %s: pinball: reading header: %w at byte offset 0", path, artifact.ErrTruncated)
	}
	if size != int64(int(size)) {
		return nil, fmt.Errorf("load %s: pinball: implausible file size %d: %w", path, size, artifact.ErrCorrupt)
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_PRIVATE)
	if err != nil {
		// Mapping can fail on filesystems without mmap support; the copying
		// loader accepts the same bytes.
		return Load(path)
	}
	defer syscall.Munmap(data)
	pb, err := Decode(data)
	if err != nil {
		return nil, fmt.Errorf("load %s: %w", path, err)
	}
	return pb, nil
}
