package pinball

import (
	"encoding/binary"
	"fmt"
	"os"

	"looppoint/internal/artifact"
	"looppoint/internal/exec"
	"looppoint/internal/faults"
)

// Durable checkpoint files. A Checkpoint is the whole carry a windowed
// replay needs (snapshot + syscall cursors + step offset), so persisting
// one lets a crashed job resume mid-recording instead of from step 0.
// The format mirrors the pinball envelope: magic, version, little-endian
// u64 payload, trailing FNV-1a over the payload (magic excluded), and
// loaders classify failures into the artifact sentinels so the recovery
// ladder in core can tell a torn write (ErrTruncated) from bit rot
// (ErrCorrupt) from format skew (ErrVersion) — all of which it survives.

const (
	ckptMagic   = "LOOPCKPT"
	ckptVersion = uint32(1)
	// maxSysPos caps the per-thread syscall cursor count; one cursor per
	// syscall log, same plausibility bound as thread count.
	maxSysPos = maxThreads
)

// EncodeCheckpoint serializes the checkpoint in its checksummed
// envelope.
func EncodeCheckpoint(ck Checkpoint) ([]byte, error) {
	if ck.Snap == nil {
		return nil, fmt.Errorf("pinball: checkpoint at step %d has no snapshot", ck.Step)
	}
	buf := make([]byte, 0, len(ckptMagic)+8+8+8+8*len(ck.SysPos)+ck.Snap.EncodedSize()+8)
	buf = append(buf, ckptMagic...)
	buf = appendU64(buf, uint64(ckptVersion))
	buf = appendU64(buf, ck.Step)
	buf = appendU64(buf, uint64(len(ck.SysPos)))
	for _, p := range ck.SysPos {
		buf = appendU64(buf, uint64(p))
	}
	buf = ck.Snap.AppendBinary(buf)
	sum := artifact.Update(artifact.FNVOffset, buf[len(ckptMagic):])
	return appendU64(buf, sum), nil
}

// DecodeCheckpoint deserializes and verifies a checkpoint envelope,
// classifying failures into the artifact sentinels.
func DecodeCheckpoint(data []byte) (Checkpoint, error) {
	var ck Checkpoint
	if len(data) < len(ckptMagic) {
		return ck, fmt.Errorf("pinball: checkpoint header: %w at byte offset %d", artifact.ErrTruncated, len(data))
	}
	if string(data[:len(ckptMagic)]) != ckptMagic {
		return ck, fmt.Errorf("pinball: bad checkpoint magic %q: %w", data[:len(ckptMagic)], artifact.ErrCorrupt)
	}
	d := &decoder{data: data, off: len(ckptMagic)}
	if v := uint32(d.u64()); d.err == nil && v != ckptVersion {
		return ck, fmt.Errorf("pinball: checkpoint version %d (want %d): %w", v, ckptVersion, artifact.ErrVersion)
	}
	ck.Step = d.u64()
	nSys := d.u64()
	if d.err == nil && nSys > maxSysPos {
		return ck, fmt.Errorf("pinball: implausible syscall cursor count %d: %w", nSys, artifact.ErrCorrupt)
	}
	if d.err == nil && nSys > 0 {
		if nSys > d.remaining() {
			d.truncated()
		} else {
			ck.SysPos = make([]int, nSys)
			for i := range ck.SysPos {
				ck.SysPos[i] = int(d.u64())
			}
		}
	}
	if d.err != nil {
		return ck, fmt.Errorf("pinball: checkpoint decode: %w", d.err)
	}
	snap, off, err := exec.DecodeSnapshotAt(d.data, d.off)
	if err != nil {
		return ck, fmt.Errorf("pinball: checkpoint decode: %w", err)
	}
	ck.Snap = snap
	if len(data)-off < 8 {
		return ck, fmt.Errorf("pinball: checkpoint integrity hash: %w at byte offset %d", artifact.ErrTruncated, len(data))
	}
	want := artifact.Update(artifact.FNVOffset, data[len(ckptMagic):off])
	if got := binary.LittleEndian.Uint64(data[off:]); got != want {
		return ck, fmt.Errorf("pinball: checkpoint integrity hash mismatch (file %#x, computed %#x): %w", got, want, artifact.ErrCorrupt)
	}
	return ck, nil
}

// SaveCheckpoint writes the checkpoint durably: encode, write to a temp
// file in the same directory, fsync, rename over the final path. A crash
// at any point leaves either the old file or the new one, never a torn
// mix; a crash between temp write and rename leaves only a stray .tmp
// the loaders ignore. Injection site "pinball.ckpt.save" can fail the
// write (Transient) or corrupt the written bytes (Corrupt).
func SaveCheckpoint(path string, ck Checkpoint) error {
	if err := faults.Check("pinball.ckpt.save"); err != nil {
		return fmt.Errorf("pinball: save checkpoint %s: %w", path, err)
	}
	data, err := EncodeCheckpoint(ck)
	if err != nil {
		return err
	}
	faults.CorruptBytes("pinball.ckpt.save", data)
	return artifact.WriteFileDurable(path, data)
}

// LoadCheckpoint reads and verifies a checkpoint file. Injection site
// "pinball.ckpt.load" can fail the read or corrupt the bytes after they
// leave disk.
func LoadCheckpoint(path string) (Checkpoint, error) {
	if err := faults.Check("pinball.ckpt.load"); err != nil {
		return Checkpoint{}, fmt.Errorf("pinball: load checkpoint %s: %w", path, err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return Checkpoint{}, err
	}
	faults.CorruptBytes("pinball.ckpt.load", data)
	ck, err := DecodeCheckpoint(data)
	if err != nil {
		return Checkpoint{}, fmt.Errorf("load %s: %w", path, err)
	}
	return ck, nil
}
