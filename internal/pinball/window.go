package pinball

import (
	"fmt"

	"looppoint/internal/exec"
	"looppoint/internal/isa"
)

// A Checkpoint positions a replay at an exact step offset inside a
// recording: the architectural snapshot at that step plus the per-thread
// syscall-injection cursors the replay OS had consumed to reach it. The
// schedule cursor is the step offset itself — Schedule.Skip(Step) is the
// remainder of the interleaving. Together these are the whole carry a
// windowed replay needs; everything else an observer accumulates is
// observer state, handled by the shard merge rules (dcfg.ShardBuilder,
// bbv scanner/accumulator).
//
// Checkpoint boundaries are deterministic because they are defined in
// retired-instruction step counts over the *recorded* schedule: the same
// pinball yields the same snapshots regardless of host parallelism,
// batch splits, or observer tiers (batching never changes what retires
// at which step, only how retirements are grouped into events).
type Checkpoint struct {
	// Snap is the machine state at Step.
	Snap *exec.Snapshot
	// SysPos is the per-thread syscall log cursor at Step.
	SysPos []int
	// Step is the offset into the recorded schedule, in instructions.
	Step uint64
}

// StartCheckpoint is the checkpoint at step 0: the pinball's own start
// snapshot with untouched syscall cursors.
func (pb *Pinball) StartCheckpoint() Checkpoint {
	return Checkpoint{Snap: pb.Start, SysPos: make([]int, len(pb.Syscalls)), Step: 0}
}

// Checkpoints replays the recording once on the fast block tier with no
// observers and captures a checkpoint at every multiple of `every` steps
// (strictly inside the run), plus the start checkpoint at index 0. The
// sweep stops after the last boundary — the tail is the final shard's to
// replay. every == 0 yields just the start checkpoint (one shard:
// degenerates to a serial replay).
func (pb *Pinball) Checkpoints(p *isa.Program, every uint64) (_ []Checkpoint, err error) {
	defer exec.Recover(&err)
	if err := pb.Verify(); err != nil {
		return nil, err
	}
	cks := []Checkpoint{pb.StartCheckpoint()}
	total := pb.Schedule.Steps()
	if every == 0 || every >= total {
		return cks, nil
	}

	m, replay := pb.ReplayFrom(p, pb.StartCheckpoint())

	var steps uint64
	boundary := every
	var bev exec.BlockEvent
sweep:
	for _, e := range pb.Schedule {
		rem := uint64(e.N)
		for rem > 0 {
			// Cap the batch at the next boundary so captures land on exact
			// step counts (same mechanism as ExtractRegions).
			b := rem
			if nc := boundary - steps; nc < b {
				b = nc
			}
			if !m.StepBlock(e.Tid, b, &bev) {
				return nil, fmt.Errorf("pinball %s: checkpoint sweep diverged at step %d", pb.Name, steps)
			}
			steps += bev.Instrs
			rem -= bev.Instrs
			if steps == boundary {
				cks = append(cks, Checkpoint{Snap: m.Snapshot(), SysPos: replay.Positions(), Step: steps})
				boundary += every
				if boundary >= total {
					break sweep
				}
			}
		}
	}
	if replay.Diverged {
		return nil, fmt.Errorf("pinball %s: syscall log exhausted during checkpoint sweep", pb.Name)
	}
	return cks, nil
}

// ReplayFrom prepares a fresh machine positioned at the checkpoint: the
// snapshot restored and a replay OS whose injection cursors resume where
// the checkpointed run left off. Callers attach observers and drive the
// machine over (a window of) Schedule.Skip(from.Step). This is the one
// primitive every partial replay in the package routes through —
// RecordRegion's continuation, the checkpoint sweep consumers, and the
// parallel analysis shards — so mid-run positioning semantics live in
// exactly one place.
func (pb *Pinball) ReplayFrom(p *isa.Program, from Checkpoint) (*exec.Machine, *exec.ReplayOS) {
	m := exec.NewMachine(p, 0)
	// Restore before installing the replay OS: a start checkpoint's
	// snapshot carries recording-time DefaultOS state, which must not be
	// poured into syscall cursors. The cursors come from SysPos, the
	// checkpoint's own authoritative copy.
	m.Restore(from.Snap)
	replay := exec.NewReplayOSAt(pb.Syscalls, from.SysPos)
	m.OS = replay
	return m, replay
}

// ReplayWindow replays exactly `steps` instructions of the recorded
// schedule starting at the checkpoint, with the observers attached as in
// Replay (block observers on the fast tier, others per-instruction), and
// returns the machine at the window's end. steps past the end of the
// recording replays to the end. No final-checksum verification is done —
// the window is a partial replay.
func (pb *Pinball) ReplayWindow(p *isa.Program, from Checkpoint, steps uint64, observers ...exec.Observer) (*exec.Machine, error) {
	if err := pb.Verify(); err != nil {
		return nil, err
	}
	m, replay := pb.ReplayFrom(p, from)
	for _, o := range observers {
		if bo, ok := o.(exec.BlockObserver); ok {
			m.AddBlockObserver(bo)
		} else {
			m.AddObserver(o)
		}
	}
	window := pb.Schedule.Skip(from.Step).Take(steps)
	if err := m.RunSchedule(window); err != nil {
		return nil, fmt.Errorf("pinball %s: window at step %d: %w", pb.Name, from.Step, err)
	}
	if replay.Diverged {
		return nil, fmt.Errorf("pinball %s: syscall injection log exhausted in window at step %d", pb.Name, from.Step)
	}
	return m, nil
}
