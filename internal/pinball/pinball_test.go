package pinball

import (
	"strings"
	"testing"

	"looppoint/internal/bbv"
	"looppoint/internal/dcfg"
	"looppoint/internal/exec"
	"looppoint/internal/omp"
	"looppoint/internal/testprog"
)

func TestRecordReplayRoundTrip(t *testing.T) {
	p := testprog.WithSyscalls(4, 200, omp.Passive)
	pb, err := Record(p, 1234, 256)
	if err != nil {
		t.Fatalf("Record: %v", err)
	}
	if pb.Schedule.Steps() == 0 || len(pb.Syscalls[0]) == 0 {
		t.Fatal("empty pinball")
	}

	m, err := pb.Replay(p)
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if !m.Done() {
		t.Error("replay did not run to completion")
	}
}

func TestReplayReproducesSyscallResults(t *testing.T) {
	p := testprog.WithSyscalls(4, 100, omp.Passive)
	// Record with one seed.
	pb, err := Record(p, 42, 256)
	if err != nil {
		t.Fatalf("Record: %v", err)
	}
	m1, err := pb.Replay(p)
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	// Record a second pinball with a different seed: different results.
	pb2, err := Record(p, 4242, 256)
	if err != nil {
		t.Fatalf("Record: %v", err)
	}
	m2, err := pb2.Replay(p)
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	same := true
	for tid := 0; tid < 4; tid++ {
		a := m1.LoadWord(testprog.OutAddr(p, tid))
		b := m2.LoadWord(testprog.OutAddr(p, tid))
		if a != b {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical outputs; syscalls not exercised")
	}
	// But replaying the SAME pinball twice is identical.
	m3, err := pb.Replay(p)
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	for tid := 0; tid < 4; tid++ {
		if m1.LoadWord(testprog.OutAddr(p, tid)) != m3.LoadWord(testprog.OutAddr(p, tid)) {
			t.Errorf("thread %d output differs across replays", tid)
		}
	}
}

func TestVerifyDetectsCorruption(t *testing.T) {
	p := testprog.WithSyscalls(2, 50, omp.Passive)
	pb, err := Record(p, 7, 0)
	if err != nil {
		t.Fatalf("Record: %v", err)
	}
	pb.Start.Mem[len(pb.Start.Mem)/2] ^= 0xDEAD
	if err := pb.Verify(); err == nil {
		t.Fatal("corrupted snapshot passed verification")
	}
	if _, err := pb.Replay(p); err == nil || !strings.Contains(err.Error(), "checksum") {
		t.Fatalf("Replay of corrupted pinball = %v, want checksum error", err)
	}
}

func TestReplayDetectsTruncatedSyscallLog(t *testing.T) {
	p := testprog.WithSyscalls(2, 50, omp.Passive)
	pb, err := Record(p, 7, 0)
	if err != nil {
		t.Fatalf("Record: %v", err)
	}
	pb.Syscalls[0] = pb.Syscalls[0][:len(pb.Syscalls[0])/2]
	if _, err := pb.Replay(p); err == nil {
		t.Fatal("replay with truncated injection log succeeded")
	}
}

func TestReplayDetectsTamperedSchedule(t *testing.T) {
	p := testprog.WithSyscalls(2, 50, omp.Passive)
	pb, err := Record(p, 7, 0)
	if err != nil {
		t.Fatalf("Record: %v", err)
	}
	// Extending the schedule makes replay step a halted thread.
	pb.Schedule = append(pb.Schedule, exec.ScheduleEntry{Tid: 0, N: 100})
	if _, err := pb.Replay(p); err == nil {
		t.Fatal("replay with tampered schedule succeeded")
	}
}

func TestRegionPinballExtraction(t *testing.T) {
	p := testprog.Phased(4, 8, 150, omp.Active)
	pb, err := Record(p, 11, 512)
	if err != nil {
		t.Fatalf("Record: %v", err)
	}

	// Profile the replay to get region markers.
	db := dcfg.NewBuilder(p, 4)
	if _, err := pb.Replay(p, db); err != nil {
		t.Fatalf("DCFG replay: %v", err)
	}
	var addrs []uint64
	for _, h := range db.Graph().FindLoops().MainImageHeaders() {
		addrs = append(addrs, h.Addr)
	}
	col := bbv.NewCollector(p, addrs, 4*1500)
	if _, err := pb.Replay(p, col); err != nil {
		t.Fatalf("BBV replay: %v", err)
	}
	prof := col.Finish()
	if len(prof.Regions) < 3 {
		t.Fatalf("want >= 3 regions, got %d", len(prof.Regions))
	}

	// Extract the middle region as its own pinball, with the previous
	// region as warmup prefix.
	reg := prof.Regions[1]
	bounds := RegionBounds{
		Start:       reg.Start,
		End:         reg.End,
		WarmupStart: prof.Regions[0].Start, // program start
	}
	rpb, err := pb.RecordRegion(p, "phased.r1", bounds)
	if err != nil {
		t.Fatalf("RecordRegion: %v", err)
	}
	if rpb.Schedule.Steps() == 0 {
		t.Fatal("region pinball has empty schedule")
	}
	if rpb.Schedule.Steps() >= pb.Schedule.Steps() {
		t.Error("region pinball not smaller than whole-program pinball")
	}

	// Replaying the region pinball must succeed and reproduce the same
	// instruction span.
	m, err := rpb.Replay(p)
	if err != nil {
		t.Fatalf("region Replay: %v", err)
	}
	if m.Done() {
		t.Error("region replay ran to program completion")
	}
}

func TestRegionPinballMidProgramStart(t *testing.T) {
	p := testprog.Phased(2, 8, 100, omp.Passive)
	pb, err := Record(p, 3, 512)
	if err != nil {
		t.Fatalf("Record: %v", err)
	}
	db := dcfg.NewBuilder(p, 2)
	if _, err := pb.Replay(p, db); err != nil {
		t.Fatalf("DCFG replay: %v", err)
	}
	var addrs []uint64
	for _, h := range db.Graph().FindLoops().MainImageHeaders() {
		addrs = append(addrs, h.Addr)
	}
	col := bbv.NewCollector(p, addrs, 2*800)
	if _, err := pb.Replay(p, col); err != nil {
		t.Fatalf("BBV replay: %v", err)
	}
	prof := col.Finish()
	if len(prof.Regions) < 4 {
		t.Skipf("only %d regions", len(prof.Regions))
	}
	reg := prof.Regions[2]
	rpb, err := pb.RecordRegion(p, "mid", RegionBounds{
		Start: reg.Start, End: reg.End, WarmupStart: reg.Start,
	})
	if err != nil {
		t.Fatalf("RecordRegion: %v", err)
	}
	// The region schedule length must match the region's unfiltered span.
	if got, want := rpb.Schedule.Steps(), reg.UnfilteredLen(); got != want {
		t.Errorf("region schedule steps = %d, want %d", got, want)
	}
	if _, err := rpb.Replay(p); err != nil {
		t.Fatalf("region Replay: %v", err)
	}
}

func TestScheduleSkipTake(t *testing.T) {
	s := exec.Schedule{{Tid: 0, N: 10}, {Tid: 1, N: 5}, {Tid: 0, N: 7}}
	if got := s.Skip(0).Steps(); got != 22 {
		t.Errorf("Skip(0) = %d steps, want 22", got)
	}
	if got := s.Skip(12).Steps(); got != 10 {
		t.Errorf("Skip(12) = %d steps, want 10", got)
	}
	if got := s.Take(12).Steps(); got != 12 {
		t.Errorf("Take(12) = %d steps, want 12", got)
	}
	if got := s.Take(100).Steps(); got != 22 {
		t.Errorf("Take(100) = %d steps, want 22", got)
	}
	if got := s.Skip(100).Steps(); got != 0 {
		t.Errorf("Skip(100) = %d steps, want 0", got)
	}
	// Skip+Take partition.
	for n := uint64(0); n <= 22; n++ {
		if s.Take(n).Steps()+s.Skip(n).Steps() != 22 {
			t.Errorf("Take(%d)+Skip(%d) do not partition", n, n)
		}
	}
}
