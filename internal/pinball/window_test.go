package pinball

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"

	"looppoint/internal/bbv"
	"looppoint/internal/exec"
	"looppoint/internal/isa"
	"looppoint/internal/omp"
	"looppoint/internal/testprog"
)

func windowPinballs(t *testing.T) map[string]struct {
	prog *isa.Program
	pb   *Pinball
} {
	t.Helper()
	out := map[string]struct {
		prog *isa.Program
		pb   *Pinball
	}{}
	for _, rec := range []struct {
		name string
		prog *isa.Program
		seed uint64
		flow uint64
	}{
		{"phased", testprog.Phased(4, 3, 40, omp.Passive), 5, 0},
		{"syscalls", testprog.WithSyscalls(4, 60, omp.Passive), 11, 16},
		{"active", testprog.Phased(3, 2, 20, omp.Active), 1, 8},
	} {
		pb, err := Record(rec.prog, rec.seed, rec.flow)
		if err != nil {
			t.Fatalf("%s: %v", rec.name, err)
		}
		out[rec.name] = struct {
			prog *isa.Program
			pb   *Pinball
		}{rec.prog, pb}
	}
	return out
}

// TestCheckpointSweepPositions pins the sweep's step arithmetic: one
// checkpoint per `every` boundary strictly inside the run, each with the
// snapshot's Steps equal to its Step and syscall cursors that never
// regress.
func TestCheckpointSweepPositions(t *testing.T) {
	for name, w := range windowPinballs(t) {
		t.Run(name, func(t *testing.T) {
			total := w.pb.Schedule.Steps()
			for _, every := range []uint64{0, total / 7, total / 3, total - 1, total, total + 100} {
				cks, err := w.pb.Checkpoints(w.prog, every)
				if err != nil {
					t.Fatalf("every=%d: %v", every, err)
				}
				want := 1
				if every > 0 && every < total {
					want = int((total - 1) / every)
					if uint64(want)*every == total {
						want--
					}
					want++
				}
				if len(cks) != want {
					t.Fatalf("every=%d: %d checkpoints, want %d", every, len(cks), want)
				}
				prevPos := make([]int, len(w.pb.Syscalls))
				for k, ck := range cks {
					if ck.Step != uint64(k)*every && !(k == 0 && ck.Step == 0) {
						t.Fatalf("checkpoint %d at step %d, want %d", k, ck.Step, uint64(k)*every)
					}
					if ck.Snap.Steps != ck.Step {
						t.Fatalf("checkpoint %d: snapshot Steps %d != Step %d", k, ck.Snap.Steps, ck.Step)
					}
					for tid, p := range ck.SysPos {
						if p < prevPos[tid] {
							t.Fatalf("checkpoint %d: syscall cursor regressed for tid %d", k, tid)
						}
						prevPos[tid] = p
					}
				}
			}
		})
	}
}

// TestReplayWindowStitchesToSerial replays every shard window from its
// checkpoint and requires the final shard machine's state to deep-equal
// a serial full replay — the foundation the parallel analysis passes
// stand on.
func TestReplayWindowStitchesToSerial(t *testing.T) {
	for name, w := range windowPinballs(t) {
		t.Run(name, func(t *testing.T) {
			serial, err := w.pb.Replay(w.prog)
			if err != nil {
				t.Fatal(err)
			}
			want := serial.Snapshot()
			total := w.pb.Schedule.Steps()
			for _, shards := range []uint64{2, 4, 8} {
				every := total / shards
				if every == 0 {
					continue
				}
				cks, err := w.pb.Checkpoints(w.prog, every)
				if err != nil {
					t.Fatal(err)
				}
				var last *exec.Machine
				for k, ck := range cks {
					width := every
					if k == len(cks)-1 {
						width = total - ck.Step
					}
					m, err := w.pb.ReplayWindow(w.prog, ck, width)
					if err != nil {
						t.Fatalf("shards=%d window %d: %v", shards, k, err)
					}
					last = m
				}
				got := last.Snapshot()
				// The serial machine's OS is a fully-consumed ReplayOS; the
				// final window's OS cursor state must match it exactly.
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("shards=%d: final window state differs from serial replay", shards)
				}
			}
		})
	}
}

// legacyRecordRegion is a faithful copy of RecordRegion before it was
// routed through the windowed-replay primitive: the positioning machine
// itself continues to the region end. It exists only to pin the new
// path byte-identical to the old one.
func legacyRecordRegion(pb *Pinball, p *isa.Program, name string, bounds RegionBounds) (*Pinball, error) {
	if err := pb.Verify(); err != nil {
		return nil, fmt.Errorf("pinball: record region %s: %w", name, err)
	}
	m := exec.NewMachine(p, 0)
	m.Restore(pb.Start)
	replay := exec.NewReplayOS(pb.Syscalls)
	m.OS = replay

	var endHits, startHits uint64
	if !bounds.End.IsEnd && !bounds.End.IsStart() {
		m.AddObserver(exec.ObserverFunc(func(ev *exec.Event) {
			if ev.BlockEntry && ev.Block.Addr == bounds.End.PC {
				endHits++
			}
		}))
	}
	trackStart := bounds.Start != bounds.WarmupStart && !bounds.Start.IsStart()
	if trackStart {
		m.AddObserver(exec.ObserverFunc(func(ev *exec.Event) {
			if ev.BlockEntry && ev.Block.Addr == bounds.Start.PC {
				startHits++
			}
		}))
	}

	var steps0 uint64
	base := m.TotalICount()
	if !bounds.WarmupStart.IsStart() {
		w := bbv.NewWatcher(m, bounds.WarmupStart)
		m.AddObserver(w)
		if err := m.RunSchedule(pb.Schedule); err != nil {
			return nil, fmt.Errorf("pinball: record region %s: %w", name, err)
		}
		if !w.Fired {
			return nil, fmt.Errorf("pinball: record region %s: warmup-start marker %v not reached",
				name, bounds.WarmupStart)
		}
		steps0 = m.TotalICount() - base
	}
	snap := m.Snapshot()
	sys0 := replay.Positions()

	var warmupSteps uint64
	if trackStart {
		sw := bbv.NewWatcher(m, bounds.Start)
		sw.SkipCounted(startHits)
		sw.StopOnFire = false
		sw.OnFire = func() { warmupSteps = m.TotalICount() - base - steps0 }
		m.AddObserver(sw)
	}
	ew := bbv.NewWatcher(m, bounds.End)
	ew.SkipCounted(endHits)
	m.AddObserver(ew)
	rest := pb.Schedule.Skip(steps0)
	if err := m.RunSchedule(rest); err != nil {
		return nil, fmt.Errorf("pinball: record region %s: %w", name, err)
	}
	if !bounds.End.IsEnd && !ew.Fired {
		return nil, fmt.Errorf("pinball: record region %s: end marker %v not reached", name, bounds.End)
	}
	steps1 := m.TotalICount() - base - steps0
	sys1 := replay.Positions()

	region := &Pinball{
		Name:        name,
		NumThreads:  pb.NumThreads,
		Start:       snap,
		Syscalls:    sliceSyscalls(pb.Syscalls, sys0, sys1),
		Schedule:    rest.Take(steps1),
		Region:      bounds,
		WarmupSteps: warmupSteps,
	}
	region.MemChecksum = fnv1a(snap.Mem)
	region.FinalChecksum = fnv1a(m.Mem)
	return region, nil
}

// regionBoundsFromProfile derives a few real region bounds by profiling
// the recording the same way core.Analyze does, so the identity check
// runs over markers that actually fire.
func regionBoundsFromProfile(t *testing.T, p *isa.Program, pb *Pinball) []RegionBounds {
	t.Helper()
	col := profileForTest(t, p, pb)
	var out []RegionBounds
	for _, r := range col.Regions {
		out = append(out, RegionBounds{Start: r.Start, End: r.End, WarmupStart: r.Start})
		if len(out) >= 3 {
			break
		}
	}
	// A warmup variant: snapshot at the previous region's start.
	if len(col.Regions) >= 2 {
		r := col.Regions[1]
		out = append(out, RegionBounds{
			Start: r.Start, End: r.End,
			WarmupStart: col.Regions[0].Start,
		})
	}
	return out
}

func profileForTest(t *testing.T, p *isa.Program, pb *Pinball) *bbv.Profile {
	t.Helper()
	// Use every conditional self-loop header as a marker with a small
	// slice target, mirroring the analysis pipeline's marker mechanism.
	var markers []uint64
	for _, img := range p.Images {
		if img.Sync {
			continue
		}
		for _, rt := range img.Routines {
			for i, blk := range rt.Blocks {
				term := blk.Instrs[len(blk.Instrs)-1]
				if term.Op == isa.OpBrCond && (term.Target == i || term.Else == i) {
					markers = append(markers, blk.Addr)
				}
			}
		}
	}
	if len(markers) == 0 {
		t.Skip("no loop markers in program")
	}
	col := bbv.NewCollector(p, markers, uint64(60*p.NumThreads()))
	if _, err := pb.Replay(p, col); err != nil {
		t.Fatal(err)
	}
	return col.Finish()
}

// TestRecordRegionMatchesLegacyPath pins the windowed RecordRegion
// byte-identical (serialized form) to the pre-refactor implementation
// across region shapes, including a warmup prefix.
func TestRecordRegionMatchesLegacyPath(t *testing.T) {
	for name, w := range windowPinballs(t) {
		t.Run(name, func(t *testing.T) {
			bounds := regionBoundsFromProfile(t, w.prog, w.pb)
			if len(bounds) == 0 {
				t.Skip("no regions")
			}
			for i, b := range bounds {
				rname := fmt.Sprintf("%s.r%d", name, i)
				got, err := w.pb.RecordRegion(w.prog, rname, b)
				if err != nil {
					t.Fatalf("region %d: new path: %v", i, err)
				}
				want, err := legacyRecordRegion(w.pb, w.prog, rname, b)
				if err != nil {
					t.Fatalf("region %d: legacy path: %v", i, err)
				}
				if !bytes.Equal(got.AppendBinary(nil), want.AppendBinary(nil)) {
					t.Fatalf("region %d (%v..%v warmup %v): windowed RecordRegion bytes differ from legacy path",
						i, b.Start, b.End, b.WarmupStart)
				}
				// The extracted region must itself replay cleanly.
				if _, err := got.Replay(w.prog); err != nil {
					t.Fatalf("region %d: replay of extracted pinball: %v", i, err)
				}
			}
		})
	}
}
