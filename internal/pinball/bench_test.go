package pinball

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"testing"

	"looppoint/internal/omp"
	"looppoint/internal/testprog"
)

// benchPinball records one mid-sized pinball shared by every benchmark
// in this file: enough memory, schedule, and syscall payload that the
// encoder's per-byte costs dominate the fixed header work.
func benchPinball(b *testing.B) *Pinball {
	b.Helper()
	p := testprog.WithSyscalls(8, 400, omp.Passive)
	pb, err := Record(p, 77, 256)
	if err != nil {
		b.Fatal(err)
	}
	return pb
}

// BenchmarkPinballWrite measures serialization throughput (encode plus
// whole-payload checksum) into an in-memory sink.
func BenchmarkPinballWrite(b *testing.B) {
	pb := benchPinball(b)
	var buf bytes.Buffer
	if err := pb.Write(&buf); err != nil {
		b.Fatal(err)
	}
	size := buf.Len()
	b.SetBytes(int64(size))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := pb.Write(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPinballRead measures the load path from an in-memory byte
// slice: slab decode plus integrity verification, the work Load
// performs after the file is in memory.
func BenchmarkPinballRead(b *testing.B) {
	pb := benchPinball(b)
	data := pb.AppendBinary(nil)
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(data); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPinballReadStream measures the retained streaming loader on
// the same bytes — the safe path's cost relative to the slab decoder.
func BenchmarkPinballReadStream(b *testing.B) {
	pb := benchPinball(b)
	data := pb.AppendBinary(nil)
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ReadFrom(bytes.NewReader(data)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPinballSaveLoad measures the full file round trip through the
// OS — the shape lpprofile -save-regions and lpsim -checkpoint pay per
// region pinball.
func BenchmarkPinballSaveLoad(b *testing.B) {
	pb := benchPinball(b)
	path := filepath.Join(b.TempDir(), "bench.pinball")
	if err := pb.Save(path); err != nil {
		b.Fatal(err)
	}
	fi, err := os.Stat(path)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(2 * fi.Size())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := pb.Save(path); err != nil {
			b.Fatal(err)
		}
		if _, err := Load(path); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPinballLoadMapped measures the zero-copy load path (mmap on
// linux) against the same file BenchmarkPinballSaveLoad writes.
func BenchmarkPinballLoadMapped(b *testing.B) {
	pb := benchPinball(b)
	path := filepath.Join(b.TempDir(), "bench.pinball")
	if err := pb.Save(path); err != nil {
		b.Fatal(err)
	}
	fi, err := os.Stat(path)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(fi.Size())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := LoadMapped(path); err != nil {
			b.Fatal(err)
		}
	}
}
