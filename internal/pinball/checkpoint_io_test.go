package pinball

import (
	"encoding/binary"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"looppoint/internal/artifact"
	"looppoint/internal/faults"
	"looppoint/internal/omp"
	"looppoint/internal/testprog"
)

// midRunCheckpoint records a pinball and returns a checkpoint strictly
// inside the run, so its snapshot carries live thread/futex/OS state.
func midRunCheckpoint(t *testing.T) (ck Checkpoint, total uint64) {
	t.Helper()
	p := testprog.WithSyscalls(4, 60, omp.Passive)
	pb, err := Record(p, 11, 16)
	if err != nil {
		t.Fatal(err)
	}
	total = pb.Schedule.Steps()
	cks, err := pb.Checkpoints(p, total/3)
	if err != nil {
		t.Fatal(err)
	}
	if len(cks) < 2 {
		t.Fatalf("want a mid-run checkpoint, got %d checkpoints", len(cks))
	}
	return cks[1], total
}

func TestCheckpointFileRoundTrip(t *testing.T) {
	ck, _ := midRunCheckpoint(t)
	path := filepath.Join(t.TempDir(), "job.ckpt")
	if err := SaveCheckpoint(path, ck); err != nil {
		t.Fatal(err)
	}
	got, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, ck) {
		t.Fatal("loaded checkpoint differs from saved one")
	}
	// Saving over an existing file must atomically replace it.
	ck2 := ck
	ck2.Step++
	if err := SaveCheckpoint(path, ck2); err != nil {
		t.Fatal(err)
	}
	if got, err = LoadCheckpoint(path); err != nil || got.Step != ck2.Step {
		t.Fatalf("overwrite: step %d err %v, want %d", got.Step, err, ck2.Step)
	}
	// No temp files may survive a successful save.
	ents, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if strings.Contains(e.Name(), ".tmp") {
			t.Fatalf("stray temp file %s after save", e.Name())
		}
	}
}

// TestCheckpointCorruptionMatrix flips one bit at every byte offset of
// an encoded checkpoint and asserts each flip is rejected with a typed
// artifact error — never a panic, never silent acceptance.
func TestCheckpointCorruptionMatrix(t *testing.T) {
	ck, _ := midRunCheckpoint(t)
	orig, err := EncodeCheckpoint(ck)
	if err != nil {
		t.Fatal(err)
	}
	for off := range orig {
		data := append([]byte(nil), orig...)
		data[off] ^= 1 << uint(off%8)
		if _, err := DecodeCheckpoint(data); err == nil {
			t.Fatalf("flip at byte %d accepted", off)
		} else if !typed(err) {
			t.Fatalf("flip at byte %d: untyped error %v", off, err)
		}
	}
}

// TestCheckpointTruncationMatrix truncates at every 8-byte field
// boundary: every prefix must fail typed, and truncations must carry the
// byte offset in the message.
func TestCheckpointTruncationMatrix(t *testing.T) {
	ck, _ := midRunCheckpoint(t)
	orig, err := EncodeCheckpoint(ck)
	if err != nil {
		t.Fatal(err)
	}
	for end := 0; end < len(orig); end += 8 {
		_, err := DecodeCheckpoint(orig[:end])
		if err == nil {
			t.Fatalf("truncation at byte %d accepted", end)
		}
		if !typed(err) {
			t.Fatalf("truncation at byte %d: untyped error %v", end, err)
		}
		if errors.Is(err, artifact.ErrTruncated) && !strings.Contains(err.Error(), "byte offset") {
			t.Fatalf("truncation error %q does not carry the byte offset", err)
		}
	}
}

func TestCheckpointVersionSkew(t *testing.T) {
	ck, _ := midRunCheckpoint(t)
	data, err := EncodeCheckpoint(ck)
	if err != nil {
		t.Fatal(err)
	}
	binary.LittleEndian.PutUint64(data[len(ckptMagic):], uint64(ckptVersion+3))
	if _, err := DecodeCheckpoint(data); !errors.Is(err, artifact.ErrVersion) {
		t.Fatalf("version skew classified as %v, want ErrVersion", err)
	}
}

// TestCheckpointSaveLoadFaultInjection drives the pinball.ckpt.save and
// pinball.ckpt.load sites: a transient save fails cleanly, a corrupting
// save produces a file the loader rejects with a typed error, and a
// corrupting load rejects bytes that were fine on disk.
func TestCheckpointSaveLoadFaultInjection(t *testing.T) {
	ck, _ := midRunCheckpoint(t)
	dir := t.TempDir()

	restore := faults.Enable(faults.NewPlan(1, faults.Rule{Site: "pinball.ckpt.save", Kind: faults.Transient, Rate: 1}))
	if err := SaveCheckpoint(filepath.Join(dir, "a.ckpt"), ck); err == nil {
		t.Fatal("transient save fault not surfaced")
	}
	restore()

	restore = faults.Enable(faults.NewPlan(2, faults.Rule{Site: "pinball.ckpt.save", Kind: faults.Corrupt, Rate: 1}))
	path := filepath.Join(dir, "b.ckpt")
	if err := SaveCheckpoint(path, ck); err != nil {
		t.Fatalf("corrupting save should still write: %v", err)
	}
	restore()
	if _, err := LoadCheckpoint(path); err == nil || !typed(err) {
		t.Fatalf("load of corrupted checkpoint: %v, want typed error", err)
	}

	good := filepath.Join(dir, "c.ckpt")
	if err := SaveCheckpoint(good, ck); err != nil {
		t.Fatal(err)
	}
	restore = faults.Enable(faults.NewPlan(3, faults.Rule{Site: "pinball.ckpt.load", Kind: faults.Corrupt, Rate: 1}))
	_, err := LoadCheckpoint(good)
	restore()
	if err == nil || !typed(err) {
		t.Fatalf("corrupting load: %v, want typed error", err)
	}
	if got, err := LoadCheckpoint(good); err != nil || got.Step != ck.Step {
		t.Fatalf("file must be intact after in-memory load corruption: %v", err)
	}
}

// TestCheckpointRoundTripReplayIdentity is the property test: for every
// checkpoint position, Snapshot → encode → decode → Restore →
// ReplayWindow to the end of the recording must land on machine state
// byte-identical to an unbroken serial replay — across seeds, thread
// counts, and schedule shapes.
func TestCheckpointRoundTripReplayIdentity(t *testing.T) {
	for name, w := range windowPinballs(t) {
		t.Run(name, func(t *testing.T) {
			serial, err := w.pb.Replay(w.prog)
			if err != nil {
				t.Fatal(err)
			}
			want, err := serial.Snapshot().MarshalBinary()
			if err != nil {
				t.Fatal(err)
			}
			total := w.pb.Schedule.Steps()
			cks, err := w.pb.Checkpoints(w.prog, total/5)
			if err != nil {
				t.Fatal(err)
			}
			for k, ck := range cks {
				enc, err := EncodeCheckpoint(ck)
				if err != nil {
					t.Fatalf("checkpoint %d: %v", k, err)
				}
				dec, err := DecodeCheckpoint(enc)
				if err != nil {
					t.Fatalf("checkpoint %d: %v", k, err)
				}
				if !reflect.DeepEqual(dec, ck) {
					t.Fatalf("checkpoint %d: decode differs from original", k)
				}
				m, err := w.pb.ReplayWindow(w.prog, dec, total-dec.Step)
				if err != nil {
					t.Fatalf("checkpoint %d: %v", k, err)
				}
				got, err := m.Snapshot().MarshalBinary()
				if err != nil {
					t.Fatalf("checkpoint %d: %v", k, err)
				}
				if string(got) != string(want) {
					t.Fatalf("checkpoint %d (step %d): resumed replay is not byte-identical to unbroken replay", k, dec.Step)
				}
			}
		})
	}
}
