package pinball

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"looppoint/internal/omp"
	"looppoint/internal/testprog"
)

func TestPinballSerializationRoundTrip(t *testing.T) {
	p := testprog.WithSyscalls(4, 100, omp.Passive)
	pb, err := Record(p, 77, 256)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := pb.Write(&buf); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	got, err := ReadFrom(&buf)
	if err != nil {
		t.Fatalf("ReadFrom: %v", err)
	}
	if got.Name != pb.Name || got.NumThreads != pb.NumThreads ||
		got.MemChecksum != pb.MemChecksum || got.FinalChecksum != pb.FinalChecksum {
		t.Fatalf("header mismatch: %+v vs %+v", got.Name, pb.Name)
	}
	if len(got.Schedule) != len(pb.Schedule) || got.Schedule.Steps() != pb.Schedule.Steps() {
		t.Fatalf("schedule mismatch")
	}
	for tid := range pb.Syscalls {
		if len(got.Syscalls[tid]) != len(pb.Syscalls[tid]) {
			t.Fatalf("syscall log %d length mismatch", tid)
		}
	}
	// The loaded pinball must replay identically.
	m1, err := pb.Replay(p)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := got.Replay(p)
	if err != nil {
		t.Fatalf("loaded pinball replay: %v", err)
	}
	for tid := 0; tid < 4; tid++ {
		a := m1.LoadWord(testprog.OutAddr(p, tid))
		b := m2.LoadWord(testprog.OutAddr(p, tid))
		if a != b {
			t.Errorf("thread %d output differs after round trip", tid)
		}
	}
}

func TestPinballSaveLoadFile(t *testing.T) {
	p := testprog.Phased(2, 3, 50, omp.Active)
	pb, err := Record(p, 5, 128)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "whole.pinball")
	if err := pb.Save(path); err != nil {
		t.Fatalf("Save: %v", err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if _, err := got.Replay(p); err != nil {
		t.Fatalf("replay of loaded pinball: %v", err)
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := ReadFrom(strings.NewReader("not a pinball at all")); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := ReadFrom(strings.NewReader("LOOPPINB")); err == nil {
		t.Fatal("truncated header accepted")
	}
}

func TestLoadRejectsCorruptedPayload(t *testing.T) {
	p := testprog.Phased(2, 2, 30, omp.Passive)
	pb, err := Record(p, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := pb.Write(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// Flip a bit deep inside the memory image: the checksum must catch it.
	data[len(data)/2] ^= 0x40
	if _, err := ReadFrom(bytes.NewReader(data)); err == nil {
		t.Fatal("corrupted pinball accepted")
	}
}

func TestRegionPinballSerialization(t *testing.T) {
	p := testprog.Phased(4, 6, 100, omp.Passive)
	pb, err := Record(p, 5, 256)
	if err != nil {
		t.Fatal(err)
	}
	steps := pb.Schedule.Steps()
	specs := []RegionSpec{{
		Name:            "mid",
		WarmupStartStep: steps / 4,
		StartStep:       steps / 2,
		EndStep:         3 * steps / 4,
	}}
	regions, err := pb.ExtractRegions(p, specs)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := regions[0].Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFrom(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.WarmupSteps != regions[0].WarmupSteps {
		t.Errorf("warmup steps differ: %d vs %d", got.WarmupSteps, regions[0].WarmupSteps)
	}
	if got.Schedule.Steps() != regions[0].Schedule.Steps() {
		t.Error("region schedule differs after round trip")
	}
}
