package pinball

import (
	"bytes"
	"testing"

	"looppoint/internal/omp"
	"looppoint/internal/testprog"
)

// FuzzReadFrom hardens the pinball decoder against corrupted or
// adversarial files: it must return an error or a verified pinball, never
// panic or allocate unboundedly.
func FuzzReadFrom(f *testing.F) {
	p := testprog.Phased(2, 2, 30, omp.Passive)
	pb, err := Record(p, 5, 0)
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := pb.Write(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte("LOOPPINB"))
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xFF}, 64))

	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := ReadFrom(bytes.NewReader(data))
		if err == nil && got == nil {
			t.Fatal("nil pinball without error")
		}
		if err == nil {
			// A successfully decoded pinball must re-verify.
			if verr := got.Verify(); verr != nil {
				t.Fatalf("decoded pinball fails verification: %v", verr)
			}
		}
	})
}
