// Package pinball implements user-level checkpoints for reproducible
// analysis, modeled on PinPlay pinballs (paper Sections III-H and IV-C).
//
// A pinball bundles everything needed to re-execute a program region
// deterministically without the original binary inputs:
//
//   - a memory/register snapshot at the region start (the .text/.reg files);
//   - the per-thread syscall side-effect injection log (the .sel files);
//   - the recorded thread interleaving (our equivalent of the .race
//     shared-memory dependency files): replaying the same interleaving
//     with the same injections reproduces shared-memory access order.
//
// Constrained replay follows the recorded interleaving exactly — which is
// what makes analysis reproducible, and also what introduces the
// artificial thread stalls that make constrained *timing* simulation
// unreliable (Section V-A1).
package pinball

import (
	"fmt"

	"looppoint/internal/artifact"
	"looppoint/internal/bbv"
	"looppoint/internal/exec"
	"looppoint/internal/isa"
)

// Pinball is a recorded, replayable execution region.
type Pinball struct {
	Name       string
	NumThreads int
	// Start is the architectural state at the beginning of the region.
	Start *exec.Snapshot
	// Syscalls is the per-thread injection log covering the region.
	Syscalls [][]int64
	// Schedule is the recorded thread interleaving covering the region.
	Schedule exec.Schedule
	// Region identifies the covered region; whole-program pinballs span
	// <start>..<end>.
	Region RegionBounds
	// WarmupSteps is the number of leading schedule steps that belong to
	// the warmup prefix rather than the region of interest; a constrained
	// simulation warms microarchitectural state over them and measures
	// only the remainder.
	WarmupSteps uint64
	// StartHitsAtSnapshot and EndHitsAtSnapshot rebase the region's
	// global (PC, count) markers for simulations that begin at the
	// snapshot instead of the program start (ELFie-style unconstrained
	// checkpoint simulation).
	StartHitsAtSnapshot uint64
	EndHitsAtSnapshot   uint64
	// MemChecksum guards the snapshot against corruption.
	MemChecksum uint64
	// FinalChecksum is the memory checksum after a faithful replay.
	FinalChecksum uint64
}

// RegionBounds names the pinball's extent in (PC, count) markers.
type RegionBounds struct {
	Start, End bbv.Marker
	// WarmupStart, when different from Start, marks where the snapshot
	// was taken so that the simulated region carries warmup prefix
	// instructions before the region of interest begins.
	WarmupStart bbv.Marker
}

// fnv1a hashes a word slice as its little-endian byte serialization.
// The implementation lives in artifact so the snapshot checksums here,
// the whole-file integrity hash, and every other artifact checksum in
// the repository share one FNV-1a source of truth.
func fnv1a(words []uint64) uint64 { return artifact.ChecksumWords(words) }

// Record executes the whole program from its initial state, recording a
// whole-program pinball. seed seeds the OS model (the source of
// non-determinism being captured). flowWindow, when non-zero, applies the
// flow-control scheduler during recording so the captured trace is not
// skewed by scheduler imbalance (Section III-B).
func Record(p *isa.Program, seed uint64, flowWindow uint64) (*Pinball, error) {
	return RecordWithOptions(p, seed, exec.RunOpts{FlowWindow: flowWindow})
}

// RecordWithOptions is Record with full scheduler control — most notably
// exec.RunOpts.QuantumBias, which emulates host imbalance during the
// recording so the flow-control ablation can show what the paper's
// equal-progress mechanism protects against.
func RecordWithOptions(p *isa.Program, seed uint64, opts exec.RunOpts) (*Pinball, error) {
	m := exec.NewMachine(p, seed)
	rec := exec.NewRecordingOS(m.OS, p.NumThreads())
	m.OS = rec
	start := m.Snapshot()
	var sched exec.Schedule
	opts.Record = &sched
	if err := m.Run(opts); err != nil {
		return nil, fmt.Errorf("pinball: record: %w", err)
	}
	pb := &Pinball{
		Name:       p.Name,
		NumThreads: p.NumThreads(),
		Start:      start,
		Syscalls:   rec.Log,
		Schedule:   sched,
		Region: RegionBounds{
			Start: bbv.Marker{}, End: bbv.Marker{IsEnd: true},
			WarmupStart: bbv.Marker{},
		},
	}
	pb.MemChecksum = fnv1a(start.Mem)
	pb.FinalChecksum = fnv1a(m.Mem)
	return pb, nil
}

// Verify checks the snapshot checksum. A mismatch wraps
// artifact.ErrCorrupt.
func (pb *Pinball) Verify() error {
	if got := fnv1a(pb.Start.Mem); got != pb.MemChecksum {
		return fmt.Errorf("pinball %s: snapshot checksum mismatch (got %#x, want %#x): %w",
			pb.Name, got, pb.MemChecksum, artifact.ErrCorrupt)
	}
	return nil
}

// Replay performs a constrained replay of the pinball on a fresh machine
// for the same program, attaching the given observers first. An observer
// that also implements exec.BlockObserver is attached to the block-
// batched tier (its break PCs registered), letting the replay run on the
// fast path; others attach per-instruction, which forces the precise
// path. The returned machine holds the final state. Replay verifies the
// snapshot checksum before starting and the final memory checksum
// afterwards.
func (pb *Pinball) Replay(p *isa.Program, observers ...exec.Observer) (*exec.Machine, error) {
	if err := pb.Verify(); err != nil {
		return nil, err
	}
	m := exec.NewMachine(p, 0)
	m.Restore(pb.Start)
	replay := exec.NewReplayOS(pb.Syscalls)
	m.OS = replay
	for _, o := range observers {
		if bo, ok := o.(exec.BlockObserver); ok {
			m.AddBlockObserver(bo)
		} else {
			m.AddObserver(o)
		}
	}
	if err := m.RunSchedule(pb.Schedule); err != nil {
		return nil, fmt.Errorf("pinball %s: %w", pb.Name, err)
	}
	if replay.Diverged {
		return nil, fmt.Errorf("pinball %s: syscall injection log exhausted (replay diverged)", pb.Name)
	}
	if pb.FinalChecksum != 0 {
		if got := fnv1a(m.Mem); got != pb.FinalChecksum {
			return nil, fmt.Errorf("pinball %s: final state checksum mismatch (got %#x, want %#x)",
				pb.Name, got, pb.FinalChecksum)
		}
	}
	return m, nil
}

// ReplayUntil replays the pinball until the given marker fires (or to the
// end if it never does) and returns the machine positioned there, the
// number of schedule steps consumed, and the per-thread syscall positions
// consumed. It does not check the final checksum (the replay is partial).
func (pb *Pinball) ReplayUntil(p *isa.Program, marker bbv.Marker, observers ...exec.Observer) (*exec.Machine, uint64, []int, error) {
	if err := pb.Verify(); err != nil {
		return nil, 0, nil, err
	}
	m := exec.NewMachine(p, 0)
	m.Restore(pb.Start)
	replay := exec.NewReplayOS(pb.Syscalls)
	m.OS = replay
	w := bbv.NewWatcher(m, marker)
	m.AddObserver(w)
	for _, o := range observers {
		m.AddObserver(o)
	}
	startIC := m.TotalICount()
	if err := m.RunSchedule(pb.Schedule); err != nil {
		return nil, 0, nil, fmt.Errorf("pinball %s: %w", pb.Name, err)
	}
	if replay.Diverged {
		return nil, 0, nil, fmt.Errorf("pinball %s: syscall log exhausted during partial replay", pb.Name)
	}
	steps := m.TotalICount() - startIC
	return m, steps, replay.Positions(), nil
}

// RecordRegion extracts a region pinball from a whole-program pinball:
// the snapshot is taken at the warmup-start marker (equal to the region
// start when no warmup prefix is requested), and the schedule and syscall
// logs cover warmup start through region end. The resulting pinball can
// be simulated in isolation — and in parallel with other regions.
func (pb *Pinball) RecordRegion(p *isa.Program, name string, bounds RegionBounds) (*Pinball, error) {
	if err := pb.Verify(); err != nil {
		return nil, fmt.Errorf("pinball: record region %s: %w", name, err)
	}
	m := exec.NewMachine(p, 0)
	m.Restore(pb.Start)
	replay := exec.NewReplayOS(pb.Syscalls)
	m.OS = replay

	// Marker counts are global since program start; count start- and
	// end-marker PC hits consumed during positioning so the watchers used
	// after the snapshot can be rebased.
	var endHits, startHits uint64
	if !bounds.End.IsEnd && !bounds.End.IsStart() {
		m.AddObserver(exec.ObserverFunc(func(ev *exec.Event) {
			if ev.BlockEntry && ev.Block.Addr == bounds.End.PC {
				endHits++
			}
		}))
	}
	trackStart := bounds.Start != bounds.WarmupStart && !bounds.Start.IsStart()
	if trackStart {
		m.AddObserver(exec.ObserverFunc(func(ev *exec.Event) {
			if ev.BlockEntry && ev.Block.Addr == bounds.Start.PC {
				startHits++
			}
		}))
	}

	// Position the replay at the warmup start.
	var steps0 uint64
	base := m.TotalICount()
	if !bounds.WarmupStart.IsStart() {
		w := bbv.NewWatcher(m, bounds.WarmupStart)
		m.AddObserver(w)
		if err := m.RunSchedule(pb.Schedule); err != nil {
			return nil, fmt.Errorf("pinball: record region %s: %w", name, err)
		}
		if !w.Fired {
			return nil, fmt.Errorf("pinball: record region %s: warmup-start marker %v not reached",
				name, bounds.WarmupStart)
		}
		steps0 = m.TotalICount() - base
	}
	// The positioning machine's job ends here: package the warmup-start
	// state as a checkpoint and run the continuation through the shared
	// windowed-replay primitive, on a fresh machine — the same mechanism
	// the checkpoint-parallel analysis shards use. The mid-run snapshot
	// carries the futex wake order and OS cursors, so the continuation is
	// byte-identical to continuing the positioning machine (pinned by the
	// legacy-path identity test).
	ck := Checkpoint{Snap: m.Snapshot(), SysPos: replay.Positions(), Step: steps0}
	cm, crep := pb.ReplayFrom(p, ck)

	// Continue to the region end, noting where the warmup prefix ends.
	var warmupSteps uint64
	if trackStart {
		sw := bbv.NewWatcher(cm, bounds.Start)
		sw.SkipCounted(startHits)
		sw.StopOnFire = false
		sw.OnFire = func() { warmupSteps = cm.TotalICount() - base - steps0 }
		cm.AddObserver(sw)
	}
	ew := bbv.NewWatcher(cm, bounds.End)
	ew.SkipCounted(endHits)
	cm.AddObserver(ew)
	rest := pb.Schedule.Skip(steps0)
	if err := cm.RunSchedule(rest); err != nil {
		return nil, fmt.Errorf("pinball: record region %s: %w", name, err)
	}
	if !bounds.End.IsEnd && !ew.Fired {
		return nil, fmt.Errorf("pinball: record region %s: end marker %v not reached", name, bounds.End)
	}
	steps1 := cm.TotalICount() - base - steps0
	sys1 := crep.Positions()

	region := &Pinball{
		Name:        name,
		NumThreads:  pb.NumThreads,
		Start:       ck.Snap,
		Syscalls:    sliceSyscalls(pb.Syscalls, ck.SysPos, sys1),
		Schedule:    rest.Take(steps1),
		Region:      bounds,
		WarmupSteps: warmupSteps,
	}
	region.MemChecksum = fnv1a(ck.Snap.Mem)
	region.FinalChecksum = fnv1a(cm.Mem)
	return region, nil
}

func sliceSyscalls(log [][]int64, from, to []int) [][]int64 {
	out := make([][]int64, len(log))
	for t := range log {
		f, e := 0, len(log[t])
		if t < len(from) {
			f = from[t]
		}
		if t < len(to) {
			e = to[t]
		}
		out[t] = append([]int64(nil), log[t][f:e]...)
	}
	return out
}
