package pinball

import (
	"fmt"
	"sort"

	"looppoint/internal/bbv"
	"looppoint/internal/exec"
	"looppoint/internal/isa"
)

// slowExtract forces the extraction replay onto the per-instruction
// reference engine; tests flip it to pin fast/slow equivalence.
var slowExtract bool

// RegionSpec names a region to extract from a whole-program pinball by
// its global step offsets in the recorded schedule (known exactly from
// the BBV profile collected on the same replay) plus the (PC, count)
// markers that delimit it for unconstrained simulation.
type RegionSpec struct {
	Name string
	// Step offsets into the recorded execution (0 = first instruction).
	WarmupStartStep uint64 // where the snapshot is taken
	StartStep       uint64 // where the region of interest begins
	EndStep         uint64 // where it ends
	// Markers for locating the region under a different interleaving.
	Start, End bbv.Marker
}

// ExtractRegions slices a whole-program pinball into region pinballs in a
// single replay pass: the machine replays the recorded schedule once and
// a snapshot is taken at each requested warmup-start offset. This is how
// all of an application's looppoint checkpoints are generated with one
// sweep over the recording (the paper's region-pinball generation).
// Machine faults raised mid-replay surface as errors wrapping
// exec.ErrMachine, like the exec.Run family.
func (pb *Pinball) ExtractRegions(p *isa.Program, specs []RegionSpec) (_ []*Pinball, err error) {
	defer exec.Recover(&err)
	if err := pb.Verify(); err != nil {
		return nil, err
	}
	if len(specs) == 0 {
		return nil, nil
	}
	order := make([]int, len(specs))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		return specs[order[a]].WarmupStartStep < specs[order[b]].WarmupStartStep
	})
	for _, i := range order {
		s := specs[i]
		if s.WarmupStartStep > s.StartStep || s.StartStep >= s.EndStep {
			return nil, fmt.Errorf("pinball: region %s has invalid steps (%d, %d, %d)",
				s.Name, s.WarmupStartStep, s.StartStep, s.EndStep)
		}
	}

	m, replay := pb.ReplayFrom(p, pb.StartCheckpoint())
	if slowExtract {
		m.SetFastPath(false)
	}

	// Track global hit counts of every marker PC of interest. They are
	// accumulated from the block events' entry counts — exact, because
	// batch budgets are capped at the next snapshot offset, so no batch
	// ever spans a capture point.
	hits := make(map[uint64]uint64)
	for _, s := range specs {
		if !s.Start.IsStart() && !s.Start.IsICount() {
			hits[s.Start.PC] = 0
		}
		if !s.End.IsEnd && !s.End.IsICount() {
			hits[s.End.PC] = 0
		}
	}

	out := make([]*Pinball, len(specs))
	next := 0 // index into order
	var steps uint64

	capture := func() {
		for next < len(order) && specs[order[next]].WarmupStartStep == steps {
			i := order[next]
			s := specs[i]
			snap := m.Snapshot()
			rp := &Pinball{
				Name:                s.Name,
				NumThreads:          pb.NumThreads,
				Start:               snap,
				Region:              RegionBounds{Start: s.Start, End: s.End, WarmupStart: s.Start},
				WarmupSteps:         s.StartStep - s.WarmupStartStep,
				StartHitsAtSnapshot: markerHits(hits, s.Start),
				EndHitsAtSnapshot:   markerHits(hits, s.End),
			}
			rp.Syscalls = sliceSyscalls(pb.Syscalls, replay.Positions(), nil)
			rp.Schedule = pb.Schedule.Skip(steps).Take(s.EndStep - s.WarmupStartStep)
			rp.MemChecksum = fnv1a(snap.Mem)
			out[i] = rp
			next++
		}
	}

	capture() // regions starting at step 0
	var bev exec.BlockEvent
	for _, e := range pb.Schedule {
		rem := uint64(e.N)
		for rem > 0 && next < len(order) {
			// Cap the batch at the next snapshot offset so captures land
			// on exact step counts.
			b := rem
			if nc := specs[order[next]].WarmupStartStep - steps; nc < b {
				b = nc
			}
			if !m.StepBlock(e.Tid, b, &bev) {
				return nil, fmt.Errorf("pinball: extraction replay diverged at step %d", steps)
			}
			if _, ok := hits[bev.Block.Addr]; ok {
				hits[bev.Block.Addr] += bev.Entries
			}
			steps += bev.Instrs
			rem -= bev.Instrs
			capture()
		}
		if next >= len(order) {
			break
		}
	}
	if next < len(order) {
		return nil, fmt.Errorf("pinball: %d region snapshots not reached (recording has %d steps)",
			len(order)-next, pb.Schedule.Steps())
	}
	// Trim each region's syscall log to its own span: the logs currently
	// run to the end of the recording, which is harmless for replay but
	// wasteful; leave them intact (slices share backing arrays).
	return out, nil
}

func markerHits(hits map[uint64]uint64, mk bbv.Marker) uint64 {
	if mk.IsStart() || mk.IsEnd || mk.IsICount() {
		return 0
	}
	return hits[mk.PC]
}
