package pinball

import (
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"sync"

	"looppoint/internal/artifact"
	"looppoint/internal/bbv"
	"looppoint/internal/exec"
	"looppoint/internal/faults"
)

// Pinballs are "portable and shareable user-level checkpoints" (the
// paper's pinball citation): this file gives them a versioned on-disk
// format so checkpoints can be archived and simulated by other users
// without rebuilding the workload state. The format is a simple
// little-endian binary layout with a magic header and the snapshot
// checksum; loaders verify integrity before returning.
//
// Two code paths produce and consume the same bytes:
//
//   - the slab path (AppendBinary / Decode) serializes into one
//     exact-size buffer and decodes from a byte slice with a single
//     checksum pass — the hot path used by Save, Load, and LoadMapped;
//   - the streaming path (ReadFrom) reads incrementally from any
//     io.Reader with growth caps, so a corrupted-but-plausible length
//     fails at the real end of input instead of committing gigabytes.
//
// Both paths are pinned byte-identical by the compatibility tests, and
// both classify failures into the artifact package's typed sentinels —
// errors.Is(err, artifact.ErrTruncated) for files that end early (with
// the byte offset in the message), artifact.ErrCorrupt for bad magic,
// implausible lengths, or checksum mismatches, and artifact.ErrVersion
// for format skew — so callers like lpsim's checkpoint-directory mode
// can quarantine bad files and continue.

const (
	magic = "LOOPPINB"
	// version 2 extends the snapshot section with the futex wait queues
	// (FIFO wake order) and the OS model's opaque state, which mid-run
	// checkpoints need for byte-identical resume. v1 files predate
	// mid-run snapshots and are rejected with ErrVersion.
	version = uint32(2)
)

// Plausibility caps shared by both decode paths. A declared length past
// its cap is corruption, not truncation: no well-formed pinball is that
// large.
const (
	maxStringLen  = 1 << 20
	maxMemWords   = 1 << 32
	maxThreads    = 1 << 16
	maxStackDepth = 1 << 20
	maxLogs       = 1 << 16
	maxLogLen     = 1 << 32
	maxSchedule   = 1 << 32
	maxOSWords    = 1 << 20
)

// EncodedSize returns the exact serialized length in bytes, including
// the magic header and the trailing integrity hash. AppendBinary into a
// buffer with at least this much spare capacity performs no allocation.
func (pb *Pinball) EncodedSize() int {
	n := len(magic)
	n += 8            // version
	n += 8 + len(pb.Name)
	n += 6 * 8        // NumThreads … EndHitsAtSnapshot
	n += 3 * 3 * 8    // region markers
	n += pb.Start.EncodedSize() // snapshot section
	n += 8                      // syscall log count
	for _, log := range pb.Syscalls {
		n += 8 + 8*len(log)
	}
	n += 8 + 2*8*len(pb.Schedule) // schedule count + entries
	n += 8                        // trailing FNV-1a
	return n
}

// AppendBinary appends the pinball's serialized form to buf and returns
// the extended slice. The output is byte-identical to the historical
// streaming writer: magic, then the payload as little-endian u64s, then
// a trailing FNV-1a over every payload byte (magic excluded).
func (pb *Pinball) AppendBinary(buf []byte) []byte {
	base := len(buf)
	if need := pb.EncodedSize(); cap(buf)-base < need {
		grown := make([]byte, base, base+need)
		copy(grown, buf)
		buf = grown
	}
	buf = append(buf, magic...)
	buf = appendU64(buf, uint64(version))
	buf = appendU64(buf, uint64(len(pb.Name)))
	buf = append(buf, pb.Name...)
	buf = appendU64(buf, uint64(pb.NumThreads))
	buf = appendU64(buf, pb.MemChecksum)
	buf = appendU64(buf, pb.FinalChecksum)
	buf = appendU64(buf, pb.WarmupSteps)
	buf = appendU64(buf, pb.StartHitsAtSnapshot)
	buf = appendU64(buf, pb.EndHitsAtSnapshot)
	buf = appendMarker(buf, pb.Region.Start)
	buf = appendMarker(buf, pb.Region.End)
	buf = appendMarker(buf, pb.Region.WarmupStart)

	// Snapshot section — the byte layout is owned by the exec codec and
	// shared with the durable checkpoint/progress files.
	buf = pb.Start.AppendBinary(buf)

	// Syscall logs.
	buf = appendU64(buf, uint64(len(pb.Syscalls)))
	for _, log := range pb.Syscalls {
		buf = appendU64(buf, uint64(len(log)))
		for _, v := range log {
			buf = appendU64(buf, uint64(v))
		}
	}

	// Schedule.
	buf = appendU64(buf, uint64(len(pb.Schedule)))
	for _, e := range pb.Schedule {
		buf = appendU64(buf, uint64(e.Tid))
		buf = appendU64(buf, uint64(e.N))
	}

	// Trailing whole-file integrity hash over every payload byte.
	sum := artifact.Update(artifact.FNVOffset, buf[base+len(magic):])
	return appendU64(buf, sum)
}

func appendU64(b []byte, v uint64) []byte { return binary.LittleEndian.AppendUint64(b, v) }

func appendMarker(b []byte, m bbv.Marker) []byte {
	b = appendU64(b, m.PC)
	b = appendU64(b, m.Count)
	if m.IsEnd {
		return appendU64(b, 1)
	}
	return appendU64(b, 0)
}

// slabPool recycles encode buffers across Write/Save calls so a region
// campaign's save loop reaches zero steady-state heap growth. Neither
// user retains the slab past the call: io.Writer must not keep the
// bytes, and os.WriteFile copies them into the kernel.
var slabPool = sync.Pool{New: func() any { return new([]byte) }}

// Write serializes the pinball to dst.
func (pb *Pinball) Write(dst io.Writer) error {
	bp := slabPool.Get().(*[]byte)
	data := pb.AppendBinary((*bp)[:0])
	_, err := dst.Write(data)
	*bp = data[:0]
	slabPool.Put(bp)
	return err
}

// Save writes the pinball to a file. Injection site "pinball.save" can
// fail the write (Transient) or corrupt the written bytes (Corrupt) —
// the torn-write scenario the loader's integrity hash must catch.
func (pb *Pinball) Save(path string) error {
	if err := faults.Check("pinball.save"); err != nil {
		return fmt.Errorf("pinball: save %s: %w", path, err)
	}
	bp := slabPool.Get().(*[]byte)
	data := pb.AppendBinary((*bp)[:0])
	faults.CorruptBytes("pinball.save", data)
	err := os.WriteFile(path, data, 0o644)
	*bp = data[:0]
	slabPool.Put(bp)
	return err
}

// Load reads a pinball from a file and verifies it. Errors carry the
// file path and wrap the artifact sentinels (plus the byte offset for
// truncation), so directory sweeps can classify and quarantine bad
// files. Injection site "pinball.load" can fail the read or corrupt the
// bytes after they leave disk.
func Load(path string) (*Pinball, error) {
	if err := faults.Check("pinball.load"); err != nil {
		return nil, fmt.Errorf("pinball: load %s: %w", path, err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	faults.CorruptBytes("pinball.load", data)
	pb, err := Decode(data)
	if err != nil {
		return nil, fmt.Errorf("load %s: %w", path, err)
	}
	return pb, nil
}

// decoder is a bounds-checked cursor over a complete serialized pinball.
// Structure is decoded first — a read past the end classifies as
// ErrTruncated with the file length as the offset — and the whole-file
// hash is verified in one pass afterwards, so truncation and corruption
// classify exactly as the streaming reader does.
type decoder struct {
	data []byte
	off  int
	err  error
}

func (d *decoder) u64() uint64 {
	if d.err != nil {
		return 0
	}
	if d.off+8 > len(d.data) {
		d.err = fmt.Errorf("%w at byte offset %d", artifact.ErrTruncated, len(d.data))
		return 0
	}
	v := binary.LittleEndian.Uint64(d.data[d.off:])
	d.off += 8
	return v
}

// remaining reports how many u64 words are left in the input; length
// prefixes are checked against it so a declared count beyond the file
// fails as truncation before any allocation is sized from it.
func (d *decoder) remaining() uint64 { return uint64(len(d.data)-d.off) / 8 }

func (d *decoder) truncated() {
	if d.err == nil {
		d.err = fmt.Errorf("%w at byte offset %d", artifact.ErrTruncated, len(d.data))
	}
}

func (d *decoder) str() string {
	n := d.u64()
	if d.err != nil {
		return ""
	}
	if n > maxStringLen {
		d.err = fmt.Errorf("implausible string length %d at byte offset %d: %w", n, d.off, artifact.ErrCorrupt)
		return ""
	}
	if uint64(len(d.data)-d.off) < n {
		d.truncated()
		return ""
	}
	s := string(d.data[d.off : d.off+int(n)])
	d.off += int(n)
	return s
}

func (d *decoder) marker() bbv.Marker {
	m := bbv.Marker{PC: d.u64(), Count: d.u64()}
	m.IsEnd = d.u64() == 1
	return m
}

// Decode deserializes a pinball from its complete serialized form — the
// slab counterpart of ReadFrom, sharing its format, plausibility caps,
// and error classification, but decoding in place with a single
// whole-payload checksum pass instead of per-byte hashing.
func Decode(data []byte) (*Pinball, error) {
	if len(data) < len(magic) {
		return nil, fmt.Errorf("pinball: reading header: %w at byte offset %d", artifact.ErrTruncated, len(data))
	}
	if string(data[:len(magic)]) != magic {
		return nil, fmt.Errorf("pinball: bad magic %q: %w", data[:len(magic)], artifact.ErrCorrupt)
	}
	d := &decoder{data: data, off: len(magic)}
	if v := uint32(d.u64()); d.err == nil && v != version {
		return nil, fmt.Errorf("pinball: version %d (want %d): %w", v, version, artifact.ErrVersion)
	}
	pb := &Pinball{}
	pb.Name = d.str()
	pb.NumThreads = int(d.u64())
	pb.MemChecksum = d.u64()
	pb.FinalChecksum = d.u64()
	pb.WarmupSteps = d.u64()
	pb.StartHitsAtSnapshot = d.u64()
	pb.EndHitsAtSnapshot = d.u64()
	pb.Region.Start = d.marker()
	pb.Region.End = d.marker()
	pb.Region.WarmupStart = d.marker()

	// Snapshot section, decoded by the exec codec at the current offset.
	// Truncation offsets stay file-absolute because the codec sees the
	// whole slice, so the classification matches the streaming reader.
	if d.err != nil {
		return nil, fmt.Errorf("pinball: decode: %w", d.err)
	}
	s, off, err := exec.DecodeSnapshotAt(d.data, d.off)
	if err != nil {
		return nil, fmt.Errorf("pinball: %w", err)
	}
	d.off = off
	pb.Start = s

	nLogs := d.u64()
	if d.err == nil && nLogs > maxLogs {
		return nil, fmt.Errorf("pinball: implausible syscall log count %d: %w", nLogs, artifact.ErrCorrupt)
	}
	for i := uint64(0); i < nLogs && d.err == nil; i++ {
		n := d.u64()
		if d.err == nil && n > maxLogLen {
			return nil, fmt.Errorf("pinball: implausible syscall log length %d: %w", n, artifact.ErrCorrupt)
		}
		var log []int64
		if d.err == nil {
			if n > d.remaining() {
				d.truncated()
			} else {
				log = make([]int64, n)
				for j := range log {
					log[j] = int64(binary.LittleEndian.Uint64(d.data[d.off:]))
					d.off += 8
				}
			}
		}
		pb.Syscalls = append(pb.Syscalls, log)
	}

	nSched := d.u64()
	if d.err == nil && nSched > maxSchedule {
		return nil, fmt.Errorf("pinball: implausible schedule length %d: %w", nSched, artifact.ErrCorrupt)
	}
	if d.err == nil && nSched > 0 {
		if 2*nSched > d.remaining() {
			d.truncated()
		} else {
			pb.Schedule = make([]exec.ScheduleEntry, nSched)
			for i := range pb.Schedule {
				pb.Schedule[i] = exec.ScheduleEntry{
					Tid: int(binary.LittleEndian.Uint64(d.data[d.off:])),
					N:   uint32(binary.LittleEndian.Uint64(d.data[d.off+8:])),
				}
				d.off += 16
			}
		}
	}
	if d.err != nil {
		return nil, fmt.Errorf("pinball: decode: %w", d.err)
	}
	// Verify the trailing whole-file hash in one pass over the payload.
	payloadEnd := d.off
	if len(d.data)-payloadEnd < 8 {
		return nil, fmt.Errorf("pinball: reading integrity hash: %w at byte offset %d", artifact.ErrTruncated, len(d.data))
	}
	want := artifact.Update(artifact.FNVOffset, d.data[len(magic):payloadEnd])
	if got := binary.LittleEndian.Uint64(d.data[payloadEnd:]); got != want {
		return nil, fmt.Errorf("pinball: file integrity hash mismatch (file %#x, computed %#x): %w", got, want, artifact.ErrCorrupt)
	}
	if err := pb.Verify(); err != nil {
		return nil, err
	}
	return pb, nil
}
