package pinball

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"

	"looppoint/internal/artifact"
	"looppoint/internal/bbv"
	"looppoint/internal/exec"
	"looppoint/internal/faults"
)

// Pinballs are "portable and shareable user-level checkpoints" (the
// paper's pinball citation): this file gives them a versioned on-disk
// format so checkpoints can be archived and simulated by other users
// without rebuilding the workload state. The format is a simple
// little-endian binary layout with a magic header and the snapshot
// checksum; Load verifies integrity before returning.
//
// Load failures are classified into the artifact package's typed
// sentinels — errors.Is(err, artifact.ErrTruncated) for files that end
// early (with the byte offset in the message), artifact.ErrCorrupt for
// bad magic, implausible lengths, or checksum mismatches, and
// artifact.ErrVersion for format skew — so callers like lpsim's
// checkpoint-directory mode can quarantine bad files and continue.

const (
	magic   = "LOOPPINB"
	version = uint32(1)
)

type writer struct {
	w   *bufio.Writer
	sum uint64 // running FNV-1a over every payload byte
	err error
}

func (w *writer) raw(b []byte) {
	if w.err != nil {
		return
	}
	for _, c := range b {
		w.sum ^= uint64(c)
		w.sum *= 1099511628211
	}
	_, w.err = w.w.Write(b)
}

func (w *writer) u64(v uint64) {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], v)
	w.raw(buf[:])
}

func (w *writer) i64(v int64)  { w.u64(uint64(v)) }
func (w *writer) u32(v uint32) { w.u64(uint64(v)) }

func (w *writer) str(s string) {
	w.u64(uint64(len(s)))
	w.raw([]byte(s))
}

type reader struct {
	r   *bufio.Reader
	sum uint64
	off int64 // bytes consumed so far, for truncation diagnostics
	err error
}

func (r *reader) raw(b []byte) {
	if r.err != nil {
		return
	}
	n, err := io.ReadFull(r.r, b)
	r.off += int64(n)
	if err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			r.err = fmt.Errorf("%w at byte offset %d", artifact.ErrTruncated, r.off)
		} else {
			r.err = err
		}
		return
	}
	for _, c := range b {
		r.sum ^= uint64(c)
		r.sum *= 1099511628211
	}
}

func (r *reader) u64() uint64 {
	var buf [8]byte
	r.raw(buf[:])
	if r.err != nil {
		return 0
	}
	return binary.LittleEndian.Uint64(buf[:])
}

func (r *reader) i64() int64  { return int64(r.u64()) }
func (r *reader) u32() uint32 { return uint32(r.u64()) }

func (r *reader) str() string {
	n := r.u64()
	if r.err != nil {
		return ""
	}
	if n > 1<<20 {
		r.err = fmt.Errorf("implausible string length %d at byte offset %d: %w", n, r.off, artifact.ErrCorrupt)
		return ""
	}
	buf := make([]byte, n)
	r.raw(buf)
	if r.err != nil {
		return ""
	}
	return string(buf)
}

// Write serializes the pinball.
func (pb *Pinball) Write(dst io.Writer) error {
	w := &writer{w: bufio.NewWriter(dst), sum: 14695981039346656037}
	if _, err := w.w.WriteString(magic); err != nil {
		return err
	}
	w.u32(version)
	w.str(pb.Name)
	w.u64(uint64(pb.NumThreads))
	w.u64(pb.MemChecksum)
	w.u64(pb.FinalChecksum)
	w.u64(pb.WarmupSteps)
	w.u64(pb.StartHitsAtSnapshot)
	w.u64(pb.EndHitsAtSnapshot)
	writeMarker(w, pb.Region.Start)
	writeMarker(w, pb.Region.End)
	writeMarker(w, pb.Region.WarmupStart)

	// Snapshot.
	s := pb.Start
	w.u64(s.Steps)
	w.u64(uint64(len(s.Mem)))
	for _, word := range s.Mem {
		w.u64(word)
	}
	w.u64(uint64(len(s.Threads)))
	for _, t := range s.Threads {
		for _, r := range t.R {
			w.i64(r)
		}
		for _, f := range t.F {
			w.u64(floatBits(f))
		}
		w.u64(uint64(t.State))
		writeFrame(w, t.Cur)
		w.u64(uint64(len(t.Stack)))
		for _, fr := range t.Stack {
			writeFrame(w, fr)
		}
		w.u64(t.ICount)
		w.u64(t.Futex)
	}

	// Syscall logs.
	w.u64(uint64(len(pb.Syscalls)))
	for _, log := range pb.Syscalls {
		w.u64(uint64(len(log)))
		for _, v := range log {
			w.i64(v)
		}
	}

	// Schedule.
	w.u64(uint64(len(pb.Schedule)))
	for _, e := range pb.Schedule {
		w.u64(uint64(e.Tid))
		w.u64(uint64(e.N))
	}
	if w.err != nil {
		return w.err
	}
	// Trailing whole-file integrity hash (covers every payload byte).
	final := w.sum
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], final)
	if _, err := w.w.Write(buf[:]); err != nil {
		return err
	}
	return w.w.Flush()
}

// ReadFrom deserializes a pinball and verifies its snapshot checksum.
// Failures wrap the artifact sentinels: ErrTruncated (with byte offset)
// for early EOF, ErrCorrupt for structural or checksum damage,
// ErrVersion for format skew.
func ReadFrom(src io.Reader) (*Pinball, error) {
	r := &reader{r: bufio.NewReader(src), sum: 14695981039346656037}
	head := make([]byte, len(magic))
	if n, err := io.ReadFull(r.r, head); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return nil, fmt.Errorf("pinball: reading header: %w at byte offset %d", artifact.ErrTruncated, n)
		}
		return nil, fmt.Errorf("pinball: reading header: %w", err)
	}
	r.off = int64(len(magic))
	if string(head) != magic {
		return nil, fmt.Errorf("pinball: bad magic %q: %w", head, artifact.ErrCorrupt)
	}
	if v := r.u32(); r.err == nil && v != version {
		return nil, fmt.Errorf("pinball: version %d (want %d): %w", v, version, artifact.ErrVersion)
	}
	pb := &Pinball{}
	pb.Name = r.str()
	pb.NumThreads = int(r.u64())
	pb.MemChecksum = r.u64()
	pb.FinalChecksum = r.u64()
	pb.WarmupSteps = r.u64()
	pb.StartHitsAtSnapshot = r.u64()
	pb.EndHitsAtSnapshot = r.u64()
	pb.Region.Start = readMarker(r)
	pb.Region.End = readMarker(r)
	pb.Region.WarmupStart = readMarker(r)

	s := &exec.Snapshot{}
	s.Steps = r.u64()
	memLen := r.u64()
	if r.err == nil && memLen > 1<<32 {
		return nil, fmt.Errorf("pinball: implausible memory size %d: %w", memLen, artifact.ErrCorrupt)
	}
	// Grow incrementally rather than trusting the declared length: a
	// corrupted-but-plausible count must fail at the real end of input,
	// not commit gigabytes first.
	s.Mem = make([]uint64, 0, min(memLen, uint64(1<<16)))
	for i := uint64(0); i < memLen && r.err == nil; i++ {
		s.Mem = append(s.Mem, r.u64())
	}
	nThreads := r.u64()
	if r.err == nil && nThreads > 1<<16 {
		return nil, fmt.Errorf("pinball: implausible thread count %d: %w", nThreads, artifact.ErrCorrupt)
	}
	for i := uint64(0); i < nThreads && r.err == nil; i++ {
		var t exec.ThreadSnapshot
		for j := range t.R {
			t.R[j] = r.i64()
		}
		for j := range t.F {
			t.F[j] = floatFromBits(r.u64())
		}
		t.State = exec.ThreadState(r.u64())
		t.Cur = readFrame(r)
		stackLen := r.u64()
		if r.err == nil && stackLen > 1<<20 {
			return nil, fmt.Errorf("pinball: implausible stack depth %d: %w", stackLen, artifact.ErrCorrupt)
		}
		for j := uint64(0); j < stackLen && r.err == nil; j++ {
			t.Stack = append(t.Stack, readFrame(r))
		}
		t.ICount = r.u64()
		t.Futex = r.u64()
		s.Threads = append(s.Threads, t)
	}
	pb.Start = s

	nLogs := r.u64()
	if r.err == nil && nLogs > 1<<16 {
		return nil, fmt.Errorf("pinball: implausible syscall log count %d: %w", nLogs, artifact.ErrCorrupt)
	}
	for i := uint64(0); i < nLogs && r.err == nil; i++ {
		n := r.u64()
		if r.err == nil && n > 1<<32 {
			return nil, fmt.Errorf("pinball: implausible syscall log length %d: %w", n, artifact.ErrCorrupt)
		}
		log := make([]int64, 0, min(n, uint64(1<<16)))
		for j := uint64(0); j < n && r.err == nil; j++ {
			log = append(log, r.i64())
		}
		pb.Syscalls = append(pb.Syscalls, log)
	}

	nSched := r.u64()
	if r.err == nil && nSched > 1<<32 {
		return nil, fmt.Errorf("pinball: implausible schedule length %d: %w", nSched, artifact.ErrCorrupt)
	}
	for i := uint64(0); i < nSched && r.err == nil; i++ {
		tid := int(r.u64())
		n := uint32(r.u64())
		pb.Schedule = append(pb.Schedule, exec.ScheduleEntry{Tid: tid, N: n})
	}
	if r.err != nil {
		return nil, fmt.Errorf("pinball: decode: %w", r.err)
	}
	// Verify the trailing whole-file hash (read raw, not through raw()).
	want := r.sum
	var tail [8]byte
	if n, err := io.ReadFull(r.r, tail[:]); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return nil, fmt.Errorf("pinball: reading integrity hash: %w at byte offset %d", artifact.ErrTruncated, r.off+int64(n))
		}
		return nil, fmt.Errorf("pinball: reading integrity hash: %w", err)
	}
	if got := binary.LittleEndian.Uint64(tail[:]); got != want {
		return nil, fmt.Errorf("pinball: file integrity hash mismatch (file %#x, computed %#x): %w", got, want, artifact.ErrCorrupt)
	}
	if err := pb.Verify(); err != nil {
		return nil, err
	}
	return pb, nil
}

// Save writes the pinball to a file. Injection site "pinball.save" can
// fail the write (Transient) or corrupt the written bytes (Corrupt) —
// the torn-write scenario the loader's integrity hash must catch.
func (pb *Pinball) Save(path string) error {
	if err := faults.Check("pinball.save"); err != nil {
		return fmt.Errorf("pinball: save %s: %w", path, err)
	}
	if faults.Enabled() {
		// Buffer through memory so an armed Corrupt rule can damage the
		// byte stream before it reaches disk; the zero-cost direct path
		// below stays in effect whenever injection is off.
		var buf bytes.Buffer
		if err := pb.Write(&buf); err != nil {
			return err
		}
		data := buf.Bytes()
		faults.CorruptBytes("pinball.save", data)
		return os.WriteFile(path, data, 0o644)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := pb.Write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Load reads a pinball from a file and verifies it. Errors carry the
// file path and wrap the artifact sentinels (plus the byte offset for
// truncation), so directory sweeps can classify and quarantine bad
// files. Injection site "pinball.load" can fail the read or corrupt the
// bytes after they leave disk.
func Load(path string) (*Pinball, error) {
	if err := faults.Check("pinball.load"); err != nil {
		return nil, fmt.Errorf("pinball: load %s: %w", path, err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	faults.CorruptBytes("pinball.load", data)
	pb, err := ReadFrom(bytes.NewReader(data))
	if err != nil {
		return nil, fmt.Errorf("load %s: %w", path, err)
	}
	return pb, nil
}

func writeMarker(w *writer, m bbv.Marker) {
	w.u64(m.PC)
	w.u64(m.Count)
	if m.IsEnd {
		w.u64(1)
	} else {
		w.u64(0)
	}
}

func readMarker(r *reader) bbv.Marker {
	m := bbv.Marker{PC: r.u64(), Count: r.u64()}
	m.IsEnd = r.u64() == 1
	return m
}

func writeFrame(w *writer, f exec.FrameRef) {
	w.u64(uint64(f.Image))
	w.u64(uint64(f.Routine))
	w.u64(uint64(f.Block))
	w.u64(uint64(f.Index))
}

func readFrame(r *reader) exec.FrameRef {
	return exec.FrameRef{
		Image:   int(r.u64()),
		Routine: int(r.u64()),
		Block:   int(r.u64()),
		Index:   int(r.u64()),
	}
}

func floatBits(f float64) uint64     { return math.Float64bits(f) }
func floatFromBits(b uint64) float64 { return math.Float64frombits(b) }
