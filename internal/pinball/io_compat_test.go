package pinball

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"flag"
	"io"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"looppoint/internal/bbv"
	"looppoint/internal/exec"
	"looppoint/internal/omp"
	"looppoint/internal/testprog"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata golden files")

// streamWriter is a faithful copy of the streaming encoder the
// repository shipped before the slab fast path: a bufio sink with a
// one-byte-at-a-time FNV-1a over every payload byte. It exists only to
// pin AppendBinary byte-identical to the historical format.
type streamWriter struct {
	w   *bufio.Writer
	sum uint64
	err error
}

func (w *streamWriter) raw(b []byte) {
	if w.err != nil {
		return
	}
	for _, c := range b {
		w.sum ^= uint64(c)
		w.sum *= 1099511628211
	}
	_, w.err = w.w.Write(b)
}

func (w *streamWriter) u64(v uint64) {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], v)
	w.raw(buf[:])
}

func (w *streamWriter) str(s string) {
	w.u64(uint64(len(s)))
	w.raw([]byte(s))
}

func (w *streamWriter) marker(m bbv.Marker) {
	w.u64(m.PC)
	w.u64(m.Count)
	if m.IsEnd {
		w.u64(1)
	} else {
		w.u64(0)
	}
}

func (w *streamWriter) frame(f exec.FrameRef) {
	w.u64(uint64(f.Image))
	w.u64(uint64(f.Routine))
	w.u64(uint64(f.Block))
	w.u64(uint64(f.Index))
}

func writeStreamed(pb *Pinball, dst io.Writer) error {
	w := &streamWriter{w: bufio.NewWriter(dst), sum: 14695981039346656037}
	if _, err := w.w.WriteString(magic); err != nil {
		return err
	}
	w.u64(uint64(version))
	w.str(pb.Name)
	w.u64(uint64(pb.NumThreads))
	w.u64(pb.MemChecksum)
	w.u64(pb.FinalChecksum)
	w.u64(pb.WarmupSteps)
	w.u64(pb.StartHitsAtSnapshot)
	w.u64(pb.EndHitsAtSnapshot)
	w.marker(pb.Region.Start)
	w.marker(pb.Region.End)
	w.marker(pb.Region.WarmupStart)
	s := pb.Start
	w.u64(s.Steps)
	w.u64(uint64(len(s.Mem)))
	for _, word := range s.Mem {
		w.u64(word)
	}
	w.u64(uint64(len(s.Threads)))
	for _, t := range s.Threads {
		for _, r := range t.R {
			w.u64(uint64(r))
		}
		for _, f := range t.F {
			w.u64(math.Float64bits(f))
		}
		w.u64(uint64(t.State))
		w.frame(t.Cur)
		w.u64(uint64(len(t.Stack)))
		for _, fr := range t.Stack {
			w.frame(fr)
		}
		w.u64(t.ICount)
		w.u64(t.Futex)
	}
	w.u64(uint64(len(s.Futexes)))
	for _, q := range s.Futexes {
		w.u64(q.Addr)
		w.u64(uint64(len(q.Tids)))
		for _, tid := range q.Tids {
			w.u64(uint64(tid))
		}
	}
	w.u64(uint64(len(s.OS)))
	for _, word := range s.OS {
		w.u64(word)
	}
	w.u64(uint64(len(pb.Syscalls)))
	for _, log := range pb.Syscalls {
		w.u64(uint64(len(log)))
		for _, v := range log {
			w.u64(uint64(v))
		}
	}
	w.u64(uint64(len(pb.Schedule)))
	for _, e := range pb.Schedule {
		w.u64(uint64(e.Tid))
		w.u64(uint64(e.N))
	}
	if w.err != nil {
		return w.err
	}
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], w.sum)
	if _, err := w.w.Write(buf[:]); err != nil {
		return err
	}
	return w.w.Flush()
}

// compatPinballs records pinballs over varied shapes: thread counts,
// schedules, syscall traffic, and a region pinball with warmup (stack
// depth and marker fields populated).
func compatPinballs(t *testing.T) []*Pinball {
	t.Helper()
	var pbs []*Pinball
	for _, rec := range []struct {
		name string
		make func() (*Pinball, error)
	}{
		{"phased", func() (*Pinball, error) { return Record(testprog.Phased(2, 2, 30, omp.Passive), 5, 0) }},
		{"syscalls", func() (*Pinball, error) { return Record(testprog.WithSyscalls(4, 60, omp.Passive), 11, 16) }},
		{"active", func() (*Pinball, error) { return Record(testprog.Phased(3, 1, 20, omp.Active), 1, 8) }},
	} {
		pb, err := rec.make()
		if err != nil {
			t.Fatalf("%s: %v", rec.name, err)
		}
		pbs = append(pbs, pb)
	}
	return pbs
}

// TestAppendBinaryMatchesStreamingWriter pins the slab encoder
// byte-for-byte to the historical streaming writer across varied
// pinball shapes, and EncodedSize to the exact output length.
func TestAppendBinaryMatchesStreamingWriter(t *testing.T) {
	for i, pb := range compatPinballs(t) {
		var want bytes.Buffer
		if err := writeStreamed(pb, &want); err != nil {
			t.Fatal(err)
		}
		got := pb.AppendBinary(nil)
		if !bytes.Equal(got, want.Bytes()) {
			t.Fatalf("pinball %d: slab encoding differs from streaming encoding (%d vs %d bytes)", i, len(got), want.Len())
		}
		if sz := pb.EncodedSize(); sz != len(got) {
			t.Fatalf("pinball %d: EncodedSize %d, actual %d", i, sz, len(got))
		}
	}
}

// TestDecodeMatchesReadFrom: both loaders accept the same bytes and
// produce deeply equal pinballs.
func TestDecodeMatchesReadFrom(t *testing.T) {
	for i, pb := range compatPinballs(t) {
		data := pb.AppendBinary(nil)
		fromStream, err := ReadFrom(bytes.NewReader(data))
		if err != nil {
			t.Fatalf("pinball %d: ReadFrom: %v", i, err)
		}
		fromSlab, err := Decode(data)
		if err != nil {
			t.Fatalf("pinball %d: Decode: %v", i, err)
		}
		if !reflect.DeepEqual(fromStream, fromSlab) {
			t.Fatalf("pinball %d: Decode and ReadFrom disagree", i)
		}
		if !reflect.DeepEqual(fromSlab.Start, pb.Start) {
			t.Fatalf("pinball %d: decoded snapshot differs from original", i)
		}
	}
}

// TestGoldenPinballBytes pins the on-disk format against a committed
// golden file, so any future encoder change that silently alters the
// byte layout (magic, version, field order, checksum) fails here.
// Regenerate with: go test ./internal/pinball/ -run Golden -update
func TestGoldenPinballBytes(t *testing.T) {
	pb, err := Record(testprog.Phased(2, 2, 30, omp.Passive), 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	got := pb.AppendBinary(nil)
	golden := filepath.Join("testdata", "phased-2x2x30-seed5.pinball")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (regenerate with -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("encoding differs from golden file (%d vs %d bytes): the on-disk format changed", len(got), len(want))
	}
	if _, err := Load(golden); err != nil {
		t.Fatalf("Load golden: %v", err)
	}
	if _, err := LoadMapped(golden); err != nil {
		t.Fatalf("LoadMapped golden: %v", err)
	}
}

// TestLoadMappedMatchesLoad: the zero-copy path returns the same
// pinball as the copying loader.
func TestLoadMappedMatchesLoad(t *testing.T) {
	pb, err := Record(testprog.WithSyscalls(4, 60, omp.Passive), 11, 16)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "m.pinball")
	if err := pb.Save(path); err != nil {
		t.Fatal(err)
	}
	viaCopy, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	viaMap, err := LoadMapped(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(viaCopy, viaMap) {
		t.Fatal("LoadMapped and Load disagree")
	}
}

// TestAppendBinarySteadyStateAllocs: encoding into a buffer with enough
// capacity — the steady state of a save loop that reuses its slab —
// performs zero heap allocations.
func TestAppendBinarySteadyStateAllocs(t *testing.T) {
	pb, err := Record(testprog.Phased(2, 2, 30, omp.Passive), 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	buf := pb.AppendBinary(nil)
	if allocs := testing.AllocsPerRun(20, func() {
		buf = pb.AppendBinary(buf[:0])
	}); allocs != 0 {
		t.Fatalf("steady-state AppendBinary: %.1f allocs/op, want 0", allocs)
	}
}
