package pool

import (
	"context"
	"testing"
)

// spinWork is a small CPU-bound kernel: enough work per item that the
// pool's scheduling overhead is amortized, little enough that a
// -benchtime 1x smoke run stays fast.
func spinWork(seed uint64) uint64 {
	h := seed + 0x9e3779b97f4a7c15
	for i := 0; i < 20_000; i++ {
		h ^= h << 13
		h ^= h >> 7
		h ^= h << 17
	}
	return h
}

// BenchmarkMapWithFanOut measures the pool's fan-out throughput on
// CPU-bound items at the width implied by GOMAXPROCS — run it with
// -cpu 1,2,4,8 to get the multi-core scaling curve (items are
// independent, so throughput should scale with real cores and flatten
// once widths oversubscribe the host).
func BenchmarkMapWithFanOut(b *testing.B) {
	const items = 64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, _, err := MapWith(context.Background(), items, Options{},
			func(_ context.Context, i int) (uint64, error) {
				return spinWork(uint64(i)), nil
			})
		if err != nil {
			b.Fatal(err)
		}
		if len(out) != items {
			b.Fatal("short result")
		}
	}
}

// BenchmarkMapWithSerial is the same workload forced to width 1 — the
// denominator for the scaling curve regardless of -cpu.
func BenchmarkMapWithSerial(b *testing.B) {
	const items = 64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, _, err := MapWith(context.Background(), items, Options{Width: 1},
			func(_ context.Context, i int) (uint64, error) {
				return spinWork(uint64(i)), nil
			})
		if err != nil {
			b.Fatal(err)
		}
		if len(out) != items {
			b.Fatal("short result")
		}
	}
}
