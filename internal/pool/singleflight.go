package pool

import (
	"runtime/debug"
	"sync"
)

// flightCall is one in-flight computation shared by concurrent callers.
type flightCall[V any] struct {
	done chan struct{}
	val  V
	err  error
}

// Flight deduplicates concurrent calls for the same key: while one
// caller executes fn, later callers for the same key block and receive
// the same result instead of duplicating the work (the cache-stampede
// fix for harness.Evaluator). Completed keys are forgotten immediately —
// Flight is a dedup layer for in-flight work, not a cache; durable
// memoization stays with the caller.
//
// The zero value is ready to use.
type Flight[V any] struct {
	mu    sync.Mutex
	calls map[string]*flightCall[V]
}

// Do executes fn under key, or — if a call for key is already in flight —
// waits for it and returns its result. shared reports whether the result
// came from another caller's execution. A panic in fn is re-raised in
// the executing caller and surfaced as an error to the waiters, so no
// goroutine is left blocked.
func (f *Flight[V]) Do(key string, fn func() (V, error)) (val V, err error, shared bool) {
	f.mu.Lock()
	if f.calls == nil {
		f.calls = make(map[string]*flightCall[V])
	}
	if c, ok := f.calls[key]; ok {
		f.mu.Unlock()
		<-c.done
		return c.val, c.err, true
	}
	c := &flightCall[V]{done: make(chan struct{})}
	f.calls[key] = c
	f.mu.Unlock()

	normal := false
	defer func() {
		if !normal {
			c.err = &PanicError{Value: recover(), Stack: debug.Stack()}
		}
		f.mu.Lock()
		delete(f.calls, key)
		f.mu.Unlock()
		close(c.done)
		if !normal {
			panic(c.err)
		}
	}()
	c.val, c.err = fn()
	normal = true
	return c.val, c.err, false
}
