// Package pool provides the bounded-concurrency execution layer shared
// by the whole repository: a worker pool with a configurable width,
// first-error cancellation, and panic propagation (pool.Run / pool.Map),
// plus a singleflight-style deduplicator (pool.Flight) so concurrent
// callers of the same expensive computation share one in-flight result.
//
// LoopPoint's checkpoints make region simulations independent (paper
// Section III-J), which is what licenses running them concurrently at
// all; this package is what turns that independence into bounded,
// deterministic host-side parallelism. Every fan-out in the repository
// (core.SimulateRegionsN, the harness experiments, lpsim's checkpoint
// directory mode) goes through Run/Map, and results are always collected
// by item index, so output is ordering-stable regardless of the width:
// the same seed produces byte-identical reports at width 1 and width N.
package pool

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"
)

// DefaultWidth is the width used when a caller passes width <= 0: one
// worker per available CPU.
func DefaultWidth() int {
	if n := runtime.GOMAXPROCS(0); n > 1 {
		return n
	}
	return 1
}

// PanicError wraps a panic recovered in a pool worker so it can be
// re-raised on the caller's goroutine with the worker's stack attached.
type PanicError struct {
	Value any
	Stack []byte
}

func (p *PanicError) Error() string {
	return fmt.Sprintf("pool: worker panic: %v\n%s", p.Value, p.Stack)
}

// Options extends Run/Map with the fault-tolerance knobs the sampling
// pipeline uses. The zero value reproduces the historical Run/Map
// behavior exactly: DefaultWidth workers, one attempt per item, no
// timeout, strict first-error cancellation with panic re-raise.
type Options struct {
	// Width bounds concurrent workers; <= 0 means DefaultWidth.
	Width int
	// Attempts is the per-item attempt budget (<= 1 means a single
	// attempt). Failed attempts are retried with Retry's capped
	// exponential backoff; Permanent-wrapped errors and *PanicError stop
	// early.
	Attempts int
	// Backoff is the delay before the second attempt, doubling each
	// retry (default 1ms when retries are armed).
	Backoff time.Duration
	// MaxBackoff caps the doubling (default 250ms).
	MaxBackoff time.Duration
	// ItemTimeout bounds each attempt; 0 means no timeout. See Retry for
	// the abandoned-goroutine semantics on CPU-bound work: Run/RunWith fn
	// side effects must tolerate a concurrent abandoned attempt, while
	// MapWith results are published only after a non-abandoned attempt
	// succeeds, so pure value-returning fn need no extra care.
	ItemTimeout time.Duration
	// Degraded switches the pool from all-or-nothing to collect-what-you-
	// can: an item's failure (after its attempt budget) no longer cancels
	// siblings, and a panic in a worker is downgraded to that item's
	// *PanicError result instead of being re-raised. Per-item errors come
	// back in the []error slice; callers decide how much failure is
	// tolerable.
	Degraded bool
	// JitterSeed seeds the deterministic full-jitter stream applied to
	// Retry's backoff (each delay is drawn uniformly from [0, d] where d
	// is the capped exponential schedule). Zero draws a distinct seed per
	// Retry call from a process-wide counter, which desynchronizes
	// concurrent retriers; tests that need an exact, reproducible delay
	// schedule fix the seed. RunWith/MapWith derive a distinct per-item
	// stream from a fixed seed, so sibling items never back off in
	// lockstep.
	JitterSeed uint64
	// NoJitter disables backoff jitter entirely: delays follow the exact
	// Backoff, 2×Backoff, … doubling. Only for tests that script precise
	// timing; production callers should keep jitter to avoid synchronized
	// retry storms.
	NoJitter bool
}

// Run executes fn(ctx, i) for every i in [0, n) on at most width
// concurrent workers (width <= 0 means DefaultWidth). The first error
// cancels the derived context and stops unstarted items; items already
// running observe ctx.Done(). When several items fail before
// cancellation lands, the error of the lowest index is returned, so the
// reported error does not depend on goroutine scheduling. A panic in fn
// is recovered, the pool drains, and the panic is re-raised on the
// calling goroutine wrapped in *PanicError.
func Run(ctx context.Context, width, n int, fn func(ctx context.Context, i int) error) error {
	_, err := RunWith(ctx, n, Options{Width: width}, fn)
	return err
}

// RunWith is Run with Options. It returns the per-item error slice
// (indexed like the items, nil entries for successes) and an aggregate
// error. In strict mode (Degraded false) the aggregate is the
// lowest-index item error, matching Run. In degraded mode the aggregate
// reflects only caller-context cancellation; item failures — including
// recovered worker panics as *PanicError — are reported solely through
// the slice, and every item gets its chance to run.
//
// Once the sweep is cancelled — by the caller's context or, in strict
// mode, by an earlier item's failure — the remaining items are not run;
// each gets the cancellation error in its slot instead of a silent nil,
// so callers can always tell "never ran" from "succeeded". An abandoned
// caller (context cancelled mid-queue) therefore stops the workers at
// their next item boundary rather than leaving them grinding through
// the rest of the queue.
func RunWith(ctx context.Context, n int, opts Options, fn func(ctx context.Context, i int) error) ([]error, error) {
	if n <= 0 {
		return nil, ctx.Err()
	}
	width := opts.Width
	if width <= 0 {
		width = DefaultWidth()
	}
	if width > n {
		width = n
	}
	parent := ctx
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	item := fn
	if opts.Attempts > 1 || opts.ItemTimeout > 0 {
		item = func(ctx context.Context, i int) error {
			iopts := opts
			if iopts.JitterSeed != 0 {
				iopts.JitterSeed = MixSeed(iopts.JitterSeed, uint64(i))
			}
			return Retry(ctx, iopts, func(ctx context.Context) error { return fn(ctx, i) })
		}
	}

	errs := make([]error, n)
	var (
		next      atomic.Int64
		wg        sync.WaitGroup
		panicOnce sync.Once
		panicked  *PanicError
	)
	for w := 0; w < width; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				// In degraded mode only the caller's context stops the
				// sweep (cancel is never called on item failure), so this
				// one check serves both modes. A cancelled sweep still
				// claims the remaining items, marking each with the
				// cancellation error: claims are monotonic, so these
				// markers sit above every index that actually ran, and the
				// strict-mode lowest-index scan still reports the organic
				// failure that triggered the cancel.
				if err := ctx.Err(); err != nil {
					errs[i] = err
					continue
				}
				func() {
					defer func() {
						if r := recover(); r != nil {
							pe, ok := r.(*PanicError)
							if !ok {
								pe = &PanicError{Value: r, Stack: debug.Stack()}
							}
							if opts.Degraded {
								errs[i] = pe
								return
							}
							panicOnce.Do(func() { panicked = pe })
							cancel()
						}
					}()
					err := item(ctx, i)
					if err == nil {
						return
					}
					// Retry surfaces worker panics as *PanicError errors;
					// strict mode owes the caller a re-raise.
					var pe *PanicError
					if !opts.Degraded && errors.As(err, &pe) {
						panic(pe)
					}
					errs[i] = err
					if !opts.Degraded {
						cancel()
					}
				}()
			}
		}()
	}
	wg.Wait()
	if panicked != nil {
		panic(panicked)
	}
	if !opts.Degraded {
		for _, err := range errs {
			if err != nil {
				return errs, err
			}
		}
	}
	return errs, parent.Err()
}

// Map runs fn over every index in [0, n) with Run's bounding and
// cancellation semantics and returns the results in index order — the
// ordering-stability contract every report in this repository relies on.
// On error the partial results are discarded.
func Map[T any](ctx context.Context, width, n int, fn func(ctx context.Context, i int) (T, error)) ([]T, error) {
	out, _, err := MapWith(ctx, n, Options{Width: width}, fn)
	if err != nil {
		return nil, err
	}
	return out, nil
}

// MapWith is Map with Options. Results come back in index order. In
// degraded mode a failed item leaves its zero value in the result slice
// with the cause at the same index of the error slice, and the surviving
// results are kept — the collect-what-you-can contract degradation in
// core builds on. In strict mode a failure returns the aggregate error
// and the partial results should be discarded, as with Map.
//
// Retries and ItemTimeout are applied here via RetryValue rather than
// through RunWith's wrapper, so the shared result slice is written only
// by the pool worker after an attempt RetryValue actually waited for
// succeeds: an attempt abandoned by ItemTimeout has its value discarded
// inside RetryValue and can never race a later attempt's write or the
// caller's read of the results.
func MapWith[T any](ctx context.Context, n int, opts Options, fn func(ctx context.Context, i int) (T, error)) ([]T, []error, error) {
	out := make([]T, n)
	retried := opts.Attempts > 1 || opts.ItemTimeout > 0
	runOpts := opts
	runOpts.Attempts = 0
	runOpts.ItemTimeout = 0
	errs, err := RunWith(ctx, n, runOpts, func(ctx context.Context, i int) error {
		var v T
		var ferr error
		if retried {
			iopts := opts
			if iopts.JitterSeed != 0 {
				iopts.JitterSeed = MixSeed(iopts.JitterSeed, uint64(i))
			}
			v, ferr = RetryValue(ctx, iopts, func(ctx context.Context) (T, error) { return fn(ctx, i) })
		} else {
			v, ferr = fn(ctx, i)
		}
		if ferr != nil {
			return ferr
		}
		out[i] = v
		return nil
	})
	return out, errs, err
}
