// Package pool provides the bounded-concurrency execution layer shared
// by the whole repository: a worker pool with a configurable width,
// first-error cancellation, and panic propagation (pool.Run / pool.Map),
// plus a singleflight-style deduplicator (pool.Flight) so concurrent
// callers of the same expensive computation share one in-flight result.
//
// LoopPoint's checkpoints make region simulations independent (paper
// Section III-J), which is what licenses running them concurrently at
// all; this package is what turns that independence into bounded,
// deterministic host-side parallelism. Every fan-out in the repository
// (core.SimulateRegionsN, the harness experiments, lpsim's checkpoint
// directory mode) goes through Run/Map, and results are always collected
// by item index, so output is ordering-stable regardless of the width:
// the same seed produces byte-identical reports at width 1 and width N.
package pool

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// DefaultWidth is the width used when a caller passes width <= 0: one
// worker per available CPU.
func DefaultWidth() int {
	if n := runtime.GOMAXPROCS(0); n > 1 {
		return n
	}
	return 1
}

// PanicError wraps a panic recovered in a pool worker so it can be
// re-raised on the caller's goroutine with the worker's stack attached.
type PanicError struct {
	Value any
	Stack []byte
}

func (p *PanicError) Error() string {
	return fmt.Sprintf("pool: worker panic: %v\n%s", p.Value, p.Stack)
}

// Run executes fn(ctx, i) for every i in [0, n) on at most width
// concurrent workers (width <= 0 means DefaultWidth). The first error
// cancels the derived context and stops unstarted items; items already
// running observe ctx.Done(). When several items fail before
// cancellation lands, the error of the lowest index is returned, so the
// reported error does not depend on goroutine scheduling. A panic in fn
// is recovered, the pool drains, and the panic is re-raised on the
// calling goroutine wrapped in *PanicError.
func Run(ctx context.Context, width, n int, fn func(ctx context.Context, i int) error) error {
	if n <= 0 {
		return ctx.Err()
	}
	if width <= 0 {
		width = DefaultWidth()
	}
	if width > n {
		width = n
	}
	parent := ctx
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	errs := make([]error, n)
	var (
		next      atomic.Int64
		wg        sync.WaitGroup
		panicOnce sync.Once
		panicked  *PanicError
	)
	for w := 0; w < width; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || ctx.Err() != nil {
					return
				}
				func() {
					defer func() {
						if r := recover(); r != nil {
							panicOnce.Do(func() {
								panicked = &PanicError{Value: r, Stack: debug.Stack()}
							})
							cancel()
						}
					}()
					if err := fn(ctx, i); err != nil {
						errs[i] = err
						cancel()
					}
				}()
			}
		}()
	}
	wg.Wait()
	if panicked != nil {
		panic(panicked)
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return parent.Err()
}

// Map runs fn over every index in [0, n) with Run's bounding and
// cancellation semantics and returns the results in index order — the
// ordering-stability contract every report in this repository relies on.
// On error the partial results are discarded.
func Map[T any](ctx context.Context, width, n int, fn func(ctx context.Context, i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := Run(ctx, width, n, func(ctx context.Context, i int) error {
		v, err := fn(ctx, i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
