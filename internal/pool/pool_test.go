package pool

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestRunBoundedWidth verifies that observed concurrency never exceeds
// the requested width, across a table of widths and item counts.
func TestRunBoundedWidth(t *testing.T) {
	cases := []struct {
		name  string
		width int
		items int
	}{
		{"width1", 1, 16},
		{"width2", 2, 16},
		{"width4", 4, 32},
		{"width8-few-items", 8, 3},
		{"wider-than-items", 64, 5},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			var cur, peak, ran atomic.Int64
			err := Run(context.Background(), c.width, c.items, func(ctx context.Context, i int) error {
				n := cur.Add(1)
				for {
					p := peak.Load()
					if n <= p || peak.CompareAndSwap(p, n) {
						break
					}
				}
				time.Sleep(time.Millisecond)
				cur.Add(-1)
				ran.Add(1)
				return nil
			})
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			bound := int64(c.width)
			if c.items < c.width {
				bound = int64(c.items)
			}
			if p := peak.Load(); p > bound {
				t.Errorf("observed concurrency %d exceeds width %d", p, bound)
			}
			if ran.Load() != int64(c.items) {
				t.Errorf("ran %d items, want %d", ran.Load(), c.items)
			}
		})
	}
}

// TestRunEdgeCases covers the zero-item and one-item shapes.
func TestRunEdgeCases(t *testing.T) {
	cases := []struct {
		name    string
		width   int
		items   int
		wantRun int
	}{
		{"zero-items", 4, 0, 0},
		{"negative-items", 4, -3, 0},
		{"one-item", 4, 1, 1},
		{"zero-width-defaults", 0, 4, 4},
		{"negative-width-defaults", -1, 4, 4},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			var ran atomic.Int64
			err := Run(context.Background(), c.width, c.items, func(ctx context.Context, i int) error {
				ran.Add(1)
				return nil
			})
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			if ran.Load() != int64(c.wantRun) {
				t.Errorf("ran %d, want %d", ran.Load(), c.wantRun)
			}
		})
	}
}

// TestRunFirstErrorCancels verifies that an error stops unstarted work
// and that running items can observe the cancellation.
func TestRunFirstErrorCancels(t *testing.T) {
	boom := errors.New("boom")
	var started atomic.Int64
	err := Run(context.Background(), 2, 100, func(ctx context.Context, i int) error {
		started.Add(1)
		if i == 0 {
			return fmt.Errorf("item 0: %w", boom)
		}
		select {
		case <-ctx.Done():
		case <-time.After(50 * time.Millisecond):
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
	// Width 2 and an immediate failure on item 0: far fewer than 100
	// items may start before cancellation is observed.
	if s := started.Load(); s > 10 {
		t.Errorf("%d items started after first error; cancellation not short-circuiting", s)
	}
}

// TestRunLowestIndexErrorWins verifies the deterministic error choice
// when several items fail concurrently.
func TestRunLowestIndexErrorWins(t *testing.T) {
	var gate sync.WaitGroup
	gate.Add(4)
	err := Run(context.Background(), 4, 4, func(ctx context.Context, i int) error {
		// All four fail together so every errs slot is populated before
		// cancellation can skip any of them.
		gate.Done()
		gate.Wait()
		return fmt.Errorf("item %d failed", i)
	})
	if err == nil || err.Error() != "item 0 failed" {
		t.Errorf("err = %v, want item 0's error", err)
	}
}

// TestRunPanicPropagates verifies a worker panic re-raises on the caller
// goroutine as *PanicError with the original value attached.
func TestRunPanicPropagates(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("panic did not propagate")
		}
		pe, ok := r.(*PanicError)
		if !ok {
			t.Fatalf("recovered %T, want *PanicError", r)
		}
		if pe.Value != "kaboom" {
			t.Errorf("panic value = %v, want kaboom", pe.Value)
		}
		if !strings.Contains(pe.Error(), "kaboom") {
			t.Errorf("PanicError message missing value: %s", pe.Error())
		}
	}()
	_ = Run(context.Background(), 2, 8, func(ctx context.Context, i int) error {
		if i == 3 {
			panic("kaboom")
		}
		return nil
	})
	t.Fatal("Run returned normally despite panic")
}

// TestRunParentCancellation verifies a canceled parent context surfaces
// as the returned error when no item fails.
func TestRunParentCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var once sync.Once
	err := Run(ctx, 1, 50, func(ctx context.Context, i int) error {
		once.Do(cancel)
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
}

// TestMapOrderStable verifies Map returns results indexed by item, not
// by completion order — the determinism contract.
func TestMapOrderStable(t *testing.T) {
	n := 32
	got, err := Map(context.Background(), 8, n, func(ctx context.Context, i int) (int, error) {
		// Earlier items sleep longer so completion order inverts index
		// order; the result slice must still be in index order.
		time.Sleep(time.Duration(n-i) * 100 * time.Microsecond)
		return i * i, nil
	})
	if err != nil {
		t.Fatalf("Map: %v", err)
	}
	for i, v := range got {
		if v != i*i {
			t.Fatalf("got[%d] = %d, want %d", i, v, i*i)
		}
	}
}

// TestMapErrorDiscardsResults verifies Map returns nil results on error.
func TestMapErrorDiscardsResults(t *testing.T) {
	got, err := Map(context.Background(), 2, 4, func(ctx context.Context, i int) (int, error) {
		if i == 2 {
			return 0, errors.New("nope")
		}
		return i, nil
	})
	if err == nil {
		t.Fatal("no error")
	}
	if got != nil {
		t.Errorf("partial results %v returned with error", got)
	}
}

// TestFlightDedupsConcurrentCallers verifies N concurrent callers of the
// same key execute fn exactly once and all receive its result.
func TestFlightDedupsConcurrentCallers(t *testing.T) {
	var f Flight[int]
	var execs atomic.Int64
	release := make(chan struct{})
	const callers = 16

	var wg, ready sync.WaitGroup
	ready.Add(callers)
	vals := make([]int, callers)
	shared := make([]bool, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ready.Done()
			v, err, sh := f.Do("key", func() (int, error) {
				execs.Add(1)
				<-release // hold the call open so everyone piles on
				return 42, nil
			})
			if err != nil {
				t.Errorf("caller %d: %v", i, err)
			}
			vals[i], shared[i] = v, sh
		}(i)
	}
	// Let every goroutine reach Do before releasing the first call.
	ready.Wait()
	time.Sleep(10 * time.Millisecond)
	close(release)
	wg.Wait()

	if n := execs.Load(); n != 1 {
		t.Errorf("fn executed %d times, want 1", n)
	}
	sharedCount := 0
	for i := 0; i < callers; i++ {
		if vals[i] != 42 {
			t.Errorf("caller %d got %d", i, vals[i])
		}
		if shared[i] {
			sharedCount++
		}
	}
	if sharedCount != callers-1 {
		t.Errorf("%d callers marked shared, want %d", sharedCount, callers-1)
	}
}

// TestFlightDistinctKeysRunIndependently verifies different keys do not
// serialize on each other.
func TestFlightDistinctKeysRunIndependently(t *testing.T) {
	var f Flight[string]
	var execs atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			key := fmt.Sprintf("key-%d", i)
			v, err, _ := f.Do(key, func() (string, error) {
				execs.Add(1)
				return key, nil
			})
			if err != nil || v != key {
				t.Errorf("key %s: v=%q err=%v", key, v, err)
			}
		}(i)
	}
	wg.Wait()
	if n := execs.Load(); n != 4 {
		t.Errorf("executed %d, want 4", n)
	}
}

// TestFlightErrorSharedWithWaiters verifies an error from the executing
// call reaches attached waiters, and the key is forgotten afterwards.
func TestFlightErrorSharedWithWaiters(t *testing.T) {
	var f Flight[int]
	boom := errors.New("boom")
	started := make(chan struct{})

	var wval int
	var werr error
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		<-started
		wval, werr, _ = f.Do("k", func() (int, error) { return 5, nil })
	}()
	_, err, _ := f.Do("k", func() (int, error) {
		close(started)
		time.Sleep(20 * time.Millisecond) // let the waiter attach
		return 0, boom
	})
	wg.Wait()
	if !errors.Is(err, boom) {
		t.Errorf("executor err = %v", err)
	}
	// The waiter either attached in time (shares boom) or arrived after
	// the key was forgotten (runs its own fn and gets 5).
	if werr != nil && !errors.Is(werr, boom) {
		t.Errorf("waiter err = %v, want boom", werr)
	}
	if werr == nil && wval != 5 {
		t.Errorf("fresh waiter got %d, want 5", wval)
	}

	// Key forgotten: a later call executes again.
	v, err, shared := f.Do("k", func() (int, error) { return 7, nil })
	if v != 7 || err != nil || shared {
		t.Errorf("post-error call: v=%d err=%v shared=%v", v, err, shared)
	}
}

// TestFlightPanicUnblocksWaiters verifies a panicking fn re-raises in
// the executor while attached waiters receive a *PanicError instead of
// hanging forever.
func TestFlightPanicUnblocksWaiters(t *testing.T) {
	var f Flight[int]
	started := make(chan struct{})

	var wval int
	var werr error
	done := make(chan struct{})
	go func() {
		defer close(done)
		<-started
		wval, werr, _ = f.Do("k", func() (int, error) { return 1, nil })
	}()

	func() {
		defer func() {
			if recover() == nil {
				t.Error("executor panic swallowed")
			}
		}()
		f.Do("k", func() (int, error) {
			close(started)
			time.Sleep(20 * time.Millisecond) // let the waiter attach
			panic("flight panic")
		})
	}()
	<-done
	// The waiter either attached (gets *PanicError) or arrived after the
	// key was forgotten (executes fn itself and succeeds with 1).
	if werr != nil {
		var pe *PanicError
		if !errors.As(werr, &pe) {
			t.Errorf("waiter err = %v, want *PanicError", werr)
		}
	} else if wval != 1 {
		t.Errorf("fresh waiter got %d, want 1", wval)
	}
}
