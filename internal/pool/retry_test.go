package pool

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"looppoint/internal/faults"
)

// TestRetryTransientSucceeds: a fault that fires a bounded number of
// times is absorbed by an attempt budget one larger.
func TestRetryTransientSucceeds(t *testing.T) {
	p := faults.NewPlan(1, faults.Rule{Site: "work", Kind: faults.Transient, Rate: 1, Count: 2})
	var calls atomic.Int64
	err := Retry(context.Background(), Options{Attempts: 3}, func(ctx context.Context) error {
		calls.Add(1)
		return p.Check("work")
	})
	if err != nil {
		t.Fatalf("Retry: %v", err)
	}
	if calls.Load() != 3 {
		t.Fatalf("calls = %d, want 3", calls.Load())
	}
}

// TestRetryExhaustsBudget: the last attempt's error is returned.
func TestRetryExhaustsBudget(t *testing.T) {
	p := faults.NewPlan(1, faults.Rule{Site: "work", Kind: faults.Transient, Rate: 1})
	err := Retry(context.Background(), Options{Attempts: 3}, func(ctx context.Context) error {
		return p.Check("work")
	})
	if !errors.Is(err, faults.ErrInjected) {
		t.Fatalf("err = %v, want injected", err)
	}
	if p.Fired("work") != 3 {
		t.Fatalf("fired %d times, want 3", p.Fired("work"))
	}
}

// TestRetryPermanentStopsEarly: Permanent-wrapped errors burn one
// attempt only and come back unwrapped.
func TestRetryPermanentStopsEarly(t *testing.T) {
	sentinel := errors.New("bad artifact")
	var calls int
	err := Retry(context.Background(), Options{Attempts: 5}, func(ctx context.Context) error {
		calls++
		return Permanent(fmt.Errorf("load: %w", sentinel))
	})
	if calls != 1 {
		t.Fatalf("calls = %d, want 1", calls)
	}
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want wrapped sentinel", err)
	}
	var perm *permanentError
	if errors.As(err, &perm) {
		t.Fatalf("Permanent wrapper leaked to caller")
	}
	if Permanent(nil) != nil {
		t.Fatalf("Permanent(nil) != nil")
	}
}

// TestRetryPanicIsPermanent: a panicking attempt is reported once as
// *PanicError, not retried.
func TestRetryPanicIsPermanent(t *testing.T) {
	var calls int
	err := Retry(context.Background(), Options{Attempts: 5}, func(ctx context.Context) error {
		calls++
		panic("kaboom")
	})
	if calls != 1 {
		t.Fatalf("calls = %d, want 1", calls)
	}
	var pe *PanicError
	if !errors.As(err, &pe) || pe.Value != "kaboom" {
		t.Fatalf("err = %v, want *PanicError(kaboom)", err)
	}
}

// TestRetryItemTimeout: a slow attempt is abandoned at the deadline and
// the next attempt can succeed.
func TestRetryItemTimeout(t *testing.T) {
	var calls atomic.Int64
	release := make(chan struct{})
	err := Retry(context.Background(), Options{Attempts: 2, ItemTimeout: 10 * time.Millisecond}, func(ctx context.Context) error {
		if calls.Add(1) == 1 {
			<-release // first attempt hangs past the deadline
		}
		return nil
	})
	close(release)
	if err != nil {
		t.Fatalf("Retry: %v", err)
	}
	if calls.Load() != 2 {
		t.Fatalf("calls = %d, want 2", calls.Load())
	}
}

// TestMapWithAbandonedAttemptDiscarded: an attempt abandoned by
// ItemTimeout must not publish its value into the shared result slice —
// the retry's winning attempt owns the slot. Under the old wiring the
// abandoned goroutine wrote out[i] after MapWith returned (a torn-write
// race -race flags and this assertion catches).
func TestMapWithAbandonedAttemptDiscarded(t *testing.T) {
	var calls atomic.Int64
	proceed := make(chan struct{})  // released after MapWith returns
	finished := make(chan struct{}) // closed when the abandoned attempt returns
	out, errs, err := MapWith(context.Background(), 1,
		Options{Attempts: 2, ItemTimeout: 5 * time.Millisecond},
		func(ctx context.Context, i int) (int, error) {
			if calls.Add(1) == 1 {
				defer close(finished)
				<-proceed // hang past the deadline, then produce a stale value
				return 999, nil
			}
			return 42, nil
		})
	if err != nil || errs[0] != nil {
		t.Fatalf("MapWith: err=%v errs=%v", err, errs)
	}
	// Let the abandoned first attempt complete, then prove its value was
	// discarded rather than overwriting the winner's.
	close(proceed)
	<-finished
	if out[0] != 42 {
		t.Fatalf("out[0] = %d, want the retry's 42 (abandoned attempt leaked its value)", out[0])
	}
}

// TestRetryCtxCancelWins: caller cancellation beats the attempt budget
// and is reported as the context error.
func TestRetryCtxCancelWins(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := Retry(ctx, Options{Attempts: 3}, func(ctx context.Context) error {
		t.Fatalf("attempt ran under canceled context")
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestRunWithDegradedCollectsAll: degraded mode runs every item, turns
// panics into per-item *PanicError results, and never cancels siblings.
func TestRunWithDegradedCollectsAll(t *testing.T) {
	const n = 16
	var ran atomic.Int64
	errs, err := RunWith(context.Background(), n, Options{Width: 4, Degraded: true}, func(ctx context.Context, i int) error {
		ran.Add(1)
		switch i {
		case 3:
			return errors.New("item 3 failed")
		case 7:
			panic("item 7 crashed")
		}
		return nil
	})
	if err != nil {
		t.Fatalf("aggregate err = %v", err)
	}
	if ran.Load() != n {
		t.Fatalf("ran %d items, want %d", ran.Load(), n)
	}
	for i, e := range errs {
		switch i {
		case 3:
			if e == nil {
				t.Fatalf("item 3 error missing")
			}
		case 7:
			var pe *PanicError
			if !errors.As(e, &pe) || pe.Value != "item 7 crashed" {
				t.Fatalf("item 7: %v, want *PanicError", e)
			}
		default:
			if e != nil {
				t.Fatalf("item %d: unexpected error %v", i, e)
			}
		}
	}
}

// TestRunWithStrictMatchesRun: the zero Options preserve historical Run
// semantics — lowest-index error, sibling cancellation, panic re-raise.
func TestRunWithStrictMatchesRun(t *testing.T) {
	errs, err := RunWith(context.Background(), 8, Options{Width: 1}, func(ctx context.Context, i int) error {
		if i >= 2 {
			return fmt.Errorf("item %d", i)
		}
		return nil
	})
	if err == nil || err.Error() != "item 2" {
		t.Fatalf("err = %v, want item 2", err)
	}
	if errs[2] == nil {
		t.Fatalf("per-item slice missing the failure")
	}

	defer func() {
		var pe *PanicError
		r := recover()
		if err, ok := r.(error); !ok || !errors.As(err, &pe) {
			t.Fatalf("recover = %v, want *PanicError", r)
		}
	}()
	RunWith(context.Background(), 4, Options{Attempts: 2}, func(ctx context.Context, i int) error {
		if i == 1 {
			panic("strict crash")
		}
		return nil
	})
	t.Fatalf("strict panic was not re-raised")
}

// TestMapWithDegradedKeepsSurvivors: failed items leave zero values but
// surviving results are returned in index order.
func TestMapWithDegradedKeepsSurvivors(t *testing.T) {
	out, errs, err := MapWith(context.Background(), 6, Options{Degraded: true}, func(ctx context.Context, i int) (int, error) {
		if i == 4 {
			return 0, errors.New("nope")
		}
		return i * 10, nil
	})
	if err != nil {
		t.Fatalf("aggregate err = %v", err)
	}
	for i := range out {
		if i == 4 {
			if errs[i] == nil || out[i] != 0 {
				t.Fatalf("item 4: out=%d errs=%v", out[i], errs[i])
			}
			continue
		}
		if out[i] != i*10 || errs[i] != nil {
			t.Fatalf("item %d: out=%d errs=%v", i, out[i], errs[i])
		}
	}
}

// TestMapWithRetriesPerItem: per-item attempts absorb a transient fault
// rate across a wide map, byte-identically to a clean run.
func TestMapWithRetriesPerItem(t *testing.T) {
	seed := faults.SeedFromEnv(1)
	p := faults.NewPlan(seed, faults.Rule{Site: "map.item", Kind: faults.Transient, Rate: 3, Count: 8})
	defer faults.Enable(p)()
	out, errs, err := MapWith(context.Background(), 32, Options{Width: 4, Attempts: 10}, func(ctx context.Context, i int) (int, error) {
		if err := faults.Check("map.item"); err != nil {
			return 0, err
		}
		return i, nil
	})
	if err != nil {
		t.Fatalf("aggregate err = %v (seed %d)", err, seed)
	}
	for i, v := range out {
		if v != i || errs[i] != nil {
			t.Fatalf("item %d: out=%d errs=%v", i, v, errs[i])
		}
	}
}

// TestBackoffDelayJitterDeterministic: a fixed JitterSeed reproduces the
// exact delay schedule, every delay stays within the capped exponential
// envelope, and distinct seeds give distinct (desynchronized) schedules.
func TestBackoffDelayJitterDeterministic(t *testing.T) {
	opts := Options{Backoff: 4 * time.Millisecond, MaxBackoff: 64 * time.Millisecond, JitterSeed: 7}
	schedule := func(seed uint64) []time.Duration {
		o := opts
		o.JitterSeed = seed
		state := JitterState(o)
		var ds []time.Duration
		for a := 1; a <= 8; a++ {
			ds = append(ds, BackoffDelay(o, a, &state))
		}
		return ds
	}
	first, second := schedule(7), schedule(7)
	for a, d := range first {
		if d != second[a] {
			t.Fatalf("attempt %d: same seed gave %v then %v", a+1, d, second[a])
		}
		env := opts.Backoff << a
		if env > opts.MaxBackoff || env <= 0 {
			env = opts.MaxBackoff
		}
		if d < 0 || d > env {
			t.Fatalf("attempt %d: delay %v outside [0, %v]", a+1, d, env)
		}
	}
	other := schedule(8)
	same := true
	for a := range first {
		if first[a] != other[a] {
			same = false
		}
	}
	if same {
		t.Fatalf("seeds 7 and 8 produced identical schedules %v", first)
	}
}

// TestBackoffDelayNoJitter: NoJitter restores the exact historical
// doubling, capped at MaxBackoff.
func TestBackoffDelayNoJitter(t *testing.T) {
	opts := Options{Backoff: 2 * time.Millisecond, MaxBackoff: 10 * time.Millisecond, NoJitter: true}
	state := JitterState(opts)
	want := []time.Duration{2, 4, 8, 10, 10}
	for a, w := range want {
		if d := BackoffDelay(opts, a+1, &state); d != w*time.Millisecond {
			t.Fatalf("attempt %d: delay %v, want %v", a+1, d, w*time.Millisecond)
		}
	}
}

// TestMixSeedDecorrelatesItems: sibling items of one sweep must not
// share a jitter stream, or they would all back off in lockstep.
func TestMixSeedDecorrelatesItems(t *testing.T) {
	seen := map[uint64]uint64{}
	for i := uint64(0); i < 64; i++ {
		s := MixSeed(42, i)
		if s == 0 {
			t.Fatalf("item %d: zero stream (would fall back to the global counter)", i)
		}
		if prev, dup := seen[s]; dup {
			t.Fatalf("items %d and %d share jitter stream %#x", prev, i, s)
		}
		seen[s] = i
	}
}

// TestRunWithCancelMarksUnrunItems: cancelling the caller's context
// mid-queue stops the sweep at the next item boundary and marks every
// item that never ran with the cancellation error — abandoned callers
// must not leave workers grinding through the rest of the queue.
func TestRunWithCancelMarksUnrunItems(t *testing.T) {
	const n = 64
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int64
	errs, err := RunWith(ctx, n, Options{Width: 1}, func(ctx context.Context, i int) error {
		ran.Add(1)
		if i == 0 {
			cancel()
			<-ctx.Done()
			return ctx.Err()
		}
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("aggregate err = %v, want context.Canceled", err)
	}
	if got := ran.Load(); got != 1 {
		t.Fatalf("%d items ran after cancellation, want 1", got)
	}
	for i, e := range errs {
		if !errors.Is(e, context.Canceled) {
			t.Fatalf("item %d: err = %v, want context.Canceled marker", i, e)
		}
	}
}

// TestMapWithCancelMarksUnrunItems: same contract through MapWith in
// degraded mode — the per-item error slice distinguishes "never ran"
// (ctx.Err()) from "succeeded" (nil) after a mid-queue cancellation.
func TestMapWithCancelMarksUnrunItems(t *testing.T) {
	const n = 32
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int64
	_, errs, err := MapWith(ctx, n, Options{Width: 2, Degraded: true}, func(ctx context.Context, i int) (int, error) {
		if ran.Add(1) == 2 {
			cancel()
		}
		<-ctx.Done()
		return 0, ctx.Err()
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("aggregate err = %v, want context.Canceled", err)
	}
	if got := ran.Load(); got != 2 {
		t.Fatalf("%d items ran, want exactly the 2 admitted before cancellation", got)
	}
	marked := 0
	for i, e := range errs {
		if e == nil {
			t.Fatalf("item %d: nil error after cancelled sweep", i)
		}
		if errors.Is(e, context.Canceled) {
			marked++
		}
	}
	if marked != n {
		t.Fatalf("%d items marked cancelled, want %d", marked, n)
	}
}

// TestRunWithStrictFailurePrecedesMarkers: after an organic item failure
// cancels a strict sweep, the aggregate must still be the organic error,
// not a cancellation marker from a skipped later item.
func TestRunWithStrictFailurePrecedesMarkers(t *testing.T) {
	organic := errors.New("item 1 broke")
	errs, err := RunWith(context.Background(), 16, Options{Width: 1}, func(ctx context.Context, i int) error {
		if i == 1 {
			return organic
		}
		return nil
	})
	if !errors.Is(err, organic) {
		t.Fatalf("aggregate err = %v, want the organic failure", err)
	}
	if errs[0] != nil || !errors.Is(errs[1], organic) {
		t.Fatalf("errs[0..1] = %v, %v", errs[0], errs[1])
	}
	for i := 2; i < 16; i++ {
		if !errors.Is(errs[i], context.Canceled) {
			t.Fatalf("item %d: err = %v, want cancellation marker", i, errs[i])
		}
	}
}
