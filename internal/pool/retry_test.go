package pool

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"looppoint/internal/faults"
)

// TestRetryTransientSucceeds: a fault that fires a bounded number of
// times is absorbed by an attempt budget one larger.
func TestRetryTransientSucceeds(t *testing.T) {
	p := faults.NewPlan(1, faults.Rule{Site: "work", Kind: faults.Transient, Rate: 1, Count: 2})
	var calls atomic.Int64
	err := Retry(context.Background(), Options{Attempts: 3}, func(ctx context.Context) error {
		calls.Add(1)
		return p.Check("work")
	})
	if err != nil {
		t.Fatalf("Retry: %v", err)
	}
	if calls.Load() != 3 {
		t.Fatalf("calls = %d, want 3", calls.Load())
	}
}

// TestRetryExhaustsBudget: the last attempt's error is returned.
func TestRetryExhaustsBudget(t *testing.T) {
	p := faults.NewPlan(1, faults.Rule{Site: "work", Kind: faults.Transient, Rate: 1})
	err := Retry(context.Background(), Options{Attempts: 3}, func(ctx context.Context) error {
		return p.Check("work")
	})
	if !errors.Is(err, faults.ErrInjected) {
		t.Fatalf("err = %v, want injected", err)
	}
	if p.Fired("work") != 3 {
		t.Fatalf("fired %d times, want 3", p.Fired("work"))
	}
}

// TestRetryPermanentStopsEarly: Permanent-wrapped errors burn one
// attempt only and come back unwrapped.
func TestRetryPermanentStopsEarly(t *testing.T) {
	sentinel := errors.New("bad artifact")
	var calls int
	err := Retry(context.Background(), Options{Attempts: 5}, func(ctx context.Context) error {
		calls++
		return Permanent(fmt.Errorf("load: %w", sentinel))
	})
	if calls != 1 {
		t.Fatalf("calls = %d, want 1", calls)
	}
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want wrapped sentinel", err)
	}
	var perm *permanentError
	if errors.As(err, &perm) {
		t.Fatalf("Permanent wrapper leaked to caller")
	}
	if Permanent(nil) != nil {
		t.Fatalf("Permanent(nil) != nil")
	}
}

// TestRetryPanicIsPermanent: a panicking attempt is reported once as
// *PanicError, not retried.
func TestRetryPanicIsPermanent(t *testing.T) {
	var calls int
	err := Retry(context.Background(), Options{Attempts: 5}, func(ctx context.Context) error {
		calls++
		panic("kaboom")
	})
	if calls != 1 {
		t.Fatalf("calls = %d, want 1", calls)
	}
	var pe *PanicError
	if !errors.As(err, &pe) || pe.Value != "kaboom" {
		t.Fatalf("err = %v, want *PanicError(kaboom)", err)
	}
}

// TestRetryItemTimeout: a slow attempt is abandoned at the deadline and
// the next attempt can succeed.
func TestRetryItemTimeout(t *testing.T) {
	var calls atomic.Int64
	release := make(chan struct{})
	err := Retry(context.Background(), Options{Attempts: 2, ItemTimeout: 10 * time.Millisecond}, func(ctx context.Context) error {
		if calls.Add(1) == 1 {
			<-release // first attempt hangs past the deadline
		}
		return nil
	})
	close(release)
	if err != nil {
		t.Fatalf("Retry: %v", err)
	}
	if calls.Load() != 2 {
		t.Fatalf("calls = %d, want 2", calls.Load())
	}
}

// TestMapWithAbandonedAttemptDiscarded: an attempt abandoned by
// ItemTimeout must not publish its value into the shared result slice —
// the retry's winning attempt owns the slot. Under the old wiring the
// abandoned goroutine wrote out[i] after MapWith returned (a torn-write
// race -race flags and this assertion catches).
func TestMapWithAbandonedAttemptDiscarded(t *testing.T) {
	var calls atomic.Int64
	proceed := make(chan struct{})  // released after MapWith returns
	finished := make(chan struct{}) // closed when the abandoned attempt returns
	out, errs, err := MapWith(context.Background(), 1,
		Options{Attempts: 2, ItemTimeout: 5 * time.Millisecond},
		func(ctx context.Context, i int) (int, error) {
			if calls.Add(1) == 1 {
				defer close(finished)
				<-proceed // hang past the deadline, then produce a stale value
				return 999, nil
			}
			return 42, nil
		})
	if err != nil || errs[0] != nil {
		t.Fatalf("MapWith: err=%v errs=%v", err, errs)
	}
	// Let the abandoned first attempt complete, then prove its value was
	// discarded rather than overwriting the winner's.
	close(proceed)
	<-finished
	if out[0] != 42 {
		t.Fatalf("out[0] = %d, want the retry's 42 (abandoned attempt leaked its value)", out[0])
	}
}

// TestRetryCtxCancelWins: caller cancellation beats the attempt budget
// and is reported as the context error.
func TestRetryCtxCancelWins(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := Retry(ctx, Options{Attempts: 3}, func(ctx context.Context) error {
		t.Fatalf("attempt ran under canceled context")
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestRunWithDegradedCollectsAll: degraded mode runs every item, turns
// panics into per-item *PanicError results, and never cancels siblings.
func TestRunWithDegradedCollectsAll(t *testing.T) {
	const n = 16
	var ran atomic.Int64
	errs, err := RunWith(context.Background(), n, Options{Width: 4, Degraded: true}, func(ctx context.Context, i int) error {
		ran.Add(1)
		switch i {
		case 3:
			return errors.New("item 3 failed")
		case 7:
			panic("item 7 crashed")
		}
		return nil
	})
	if err != nil {
		t.Fatalf("aggregate err = %v", err)
	}
	if ran.Load() != n {
		t.Fatalf("ran %d items, want %d", ran.Load(), n)
	}
	for i, e := range errs {
		switch i {
		case 3:
			if e == nil {
				t.Fatalf("item 3 error missing")
			}
		case 7:
			var pe *PanicError
			if !errors.As(e, &pe) || pe.Value != "item 7 crashed" {
				t.Fatalf("item 7: %v, want *PanicError", e)
			}
		default:
			if e != nil {
				t.Fatalf("item %d: unexpected error %v", i, e)
			}
		}
	}
}

// TestRunWithStrictMatchesRun: the zero Options preserve historical Run
// semantics — lowest-index error, sibling cancellation, panic re-raise.
func TestRunWithStrictMatchesRun(t *testing.T) {
	errs, err := RunWith(context.Background(), 8, Options{Width: 1}, func(ctx context.Context, i int) error {
		if i >= 2 {
			return fmt.Errorf("item %d", i)
		}
		return nil
	})
	if err == nil || err.Error() != "item 2" {
		t.Fatalf("err = %v, want item 2", err)
	}
	if errs[2] == nil {
		t.Fatalf("per-item slice missing the failure")
	}

	defer func() {
		var pe *PanicError
		r := recover()
		if err, ok := r.(error); !ok || !errors.As(err, &pe) {
			t.Fatalf("recover = %v, want *PanicError", r)
		}
	}()
	RunWith(context.Background(), 4, Options{Attempts: 2}, func(ctx context.Context, i int) error {
		if i == 1 {
			panic("strict crash")
		}
		return nil
	})
	t.Fatalf("strict panic was not re-raised")
}

// TestMapWithDegradedKeepsSurvivors: failed items leave zero values but
// surviving results are returned in index order.
func TestMapWithDegradedKeepsSurvivors(t *testing.T) {
	out, errs, err := MapWith(context.Background(), 6, Options{Degraded: true}, func(ctx context.Context, i int) (int, error) {
		if i == 4 {
			return 0, errors.New("nope")
		}
		return i * 10, nil
	})
	if err != nil {
		t.Fatalf("aggregate err = %v", err)
	}
	for i := range out {
		if i == 4 {
			if errs[i] == nil || out[i] != 0 {
				t.Fatalf("item 4: out=%d errs=%v", out[i], errs[i])
			}
			continue
		}
		if out[i] != i*10 || errs[i] != nil {
			t.Fatalf("item %d: out=%d errs=%v", i, out[i], errs[i])
		}
	}
}

// TestMapWithRetriesPerItem: per-item attempts absorb a transient fault
// rate across a wide map, byte-identically to a clean run.
func TestMapWithRetriesPerItem(t *testing.T) {
	seed := faults.SeedFromEnv(1)
	p := faults.NewPlan(seed, faults.Rule{Site: "map.item", Kind: faults.Transient, Rate: 3, Count: 8})
	defer faults.Enable(p)()
	out, errs, err := MapWith(context.Background(), 32, Options{Width: 4, Attempts: 10}, func(ctx context.Context, i int) (int, error) {
		if err := faults.Check("map.item"); err != nil {
			return 0, err
		}
		return i, nil
	})
	if err != nil {
		t.Fatalf("aggregate err = %v (seed %d)", err, seed)
	}
	for i, v := range out {
		if v != i || errs[i] != nil {
			t.Fatalf("item %d: out=%d errs=%v", i, v, errs[i])
		}
	}
}
