package pool

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"sync/atomic"
	"time"
)

// Default backoff schedule when retries are armed with zero knobs. Each
// delay is full-jittered — drawn uniformly from [0, d] where d follows
// the capped doubling — so many jobs failing together never retry in
// lockstep (a synchronized retry storm re-kills the very resource the
// backoff is protecting). The jitter stream is seeded (Options.JitterSeed)
// and pure, so tests reproduce exact schedules; Options.NoJitter restores
// the bare doubling.
const (
	DefaultBackoff    = time.Millisecond
	DefaultMaxBackoff = 250 * time.Millisecond
)

// splitmix64 is the SplitMix64 finalizer: a cheap bijective avalanche
// used both to step the jitter PRNG and to derive independent per-item
// streams from one seed.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// MixSeed derives the jitter stream for item i from a caller-fixed seed,
// so sibling items of one sweep back off on decorrelated schedules while
// the whole sweep stays reproducible. RunWith/MapWith use it to give
// each pool item its own stream; the campaign coordinator uses it the
// same way to give each campaign job a decorrelated, seeded backoff.
func MixSeed(seed, i uint64) uint64 { return splitmix64(seed ^ splitmix64(i+1)) }

// jitterCounter hands each unseeded Retry call a distinct stream.
var jitterCounter atomic.Uint64

// JitterState returns the initial jitter-PRNG state for one retry loop
// under opts: the fixed JitterSeed when set, else a fresh process-unique
// stream. Callers hand the state to BackoffDelay by pointer.
func JitterState(opts Options) uint64 {
	if opts.JitterSeed != 0 {
		return opts.JitterSeed
	}
	return splitmix64(jitterCounter.Add(1))
}

// BackoffDelay returns the sleep before retry attempt a (a >= 1, i.e.
// the delay between attempt a and attempt a+1) under opts' backoff
// policy: Backoff<<(a-1) capped at MaxBackoff, full-jittered to a
// uniform draw from [0, d] unless opts.NoJitter. state is the jitter
// PRNG, advanced in place — a pure function of (seed, call sequence),
// so a fixed JitterSeed reproduces the schedule exactly.
func BackoffDelay(opts Options, a int, state *uint64) time.Duration {
	backoff := opts.Backoff
	if backoff <= 0 {
		backoff = DefaultBackoff
	}
	maxBackoff := opts.MaxBackoff
	if maxBackoff <= 0 {
		maxBackoff = DefaultMaxBackoff
	}
	if a < 1 {
		a = 1
	}
	d := backoff << (a - 1)
	if d > maxBackoff || d <= 0 { // <= 0 guards shift overflow
		d = maxBackoff
	}
	if opts.NoJitter {
		return d
	}
	*state = splitmix64(*state)
	return time.Duration(*state % uint64(d+1))
}

// permanentError marks an error as non-retryable.
type permanentError struct{ err error }

func (p *permanentError) Error() string { return p.err.Error() }
func (p *permanentError) Unwrap() error { return p.err }

// Permanent wraps err so Retry stops immediately instead of burning the
// remaining attempt budget — for failures where retrying the same input
// cannot help (corrupt artifacts, validation errors). Retry returns the
// unwrapped error. Permanent(nil) is nil.
func Permanent(err error) error {
	if err == nil {
		return nil
	}
	return &permanentError{err}
}

// Retry runs fn up to opts.Attempts times (minimum one), sleeping a
// capped exponential backoff between attempts: Backoff, 2×Backoff,
// 4×Backoff, … capped at MaxBackoff, each delay full-jittered (see
// BackoffDelay; Options.JitterSeed/NoJitter control the stream). It
// stops early and returns immediately when fn
// succeeds, when the error is wrapped with Permanent, when the attempt
// panicked (reported as a *PanicError error — a bug won't be fixed by
// rerunning it), or when ctx is done.
//
// When opts.ItemTimeout > 0 each attempt gets its own deadline via a
// derived context. Because the simulation kernels are CPU-bound and do
// not poll ctx, the attempt runs on a helper goroutine and a timeout
// ABANDONS it: Retry returns (and may start the next attempt) while the
// stale attempt finishes in the background. Callers opting into
// ItemTimeout must pass fn whose side effects tolerate a concurrent
// abandoned run; fn that only computes a value and writes shared state
// afterwards should use RetryValue, which discards an abandoned
// attempt's value instead of letting it race the winner's.
func Retry(ctx context.Context, opts Options, fn func(ctx context.Context) error) error {
	_, err := RetryValue(ctx, opts, func(ctx context.Context) (struct{}, error) {
		return struct{}{}, fn(ctx)
	})
	return err
}

// RetryValue is Retry for value-producing attempts. Each attempt's
// result travels from the attempt goroutine to the caller through a
// buffered channel, so when a timeout abandons an attempt the value it
// eventually produces is dropped on the floor — never published — and
// only the returned value (from the attempt RetryValue actually waited
// for) is visible to the caller. This is what lets MapWith write shared
// result slices safely under ItemTimeout.
func RetryValue[T any](ctx context.Context, opts Options, fn func(ctx context.Context) (T, error)) (T, error) {
	attempts := opts.Attempts
	if attempts <= 0 {
		attempts = 1
	}
	jitter := JitterState(opts)
	var (
		zero T
		err  error
	)
	for a := 0; a < attempts; a++ {
		if a > 0 {
			t := time.NewTimer(BackoffDelay(opts, a, &jitter))
			select {
			case <-ctx.Done():
				t.Stop()
				return zero, ctx.Err()
			case <-t.C:
			}
		}
		if ctx.Err() != nil {
			return zero, ctx.Err()
		}
		var v T
		v, err = attemptOnce(ctx, opts.ItemTimeout, fn)
		if err == nil {
			return v, nil
		}
		var perm *permanentError
		if errors.As(err, &perm) {
			return zero, perm.err
		}
		var pe *PanicError
		if errors.As(err, &pe) {
			return zero, err
		}
		if ctx.Err() != nil {
			return zero, err
		}
	}
	return zero, err
}

// attemptOnce runs one attempt, converting a panic into a *PanicError
// error and enforcing the per-attempt timeout. On timeout the attempt
// goroutine keeps running, but its eventual result lands in the buffered
// channel nobody reads — abandoned values are discarded, not published.
func attemptOnce[T any](ctx context.Context, timeout time.Duration, fn func(ctx context.Context) (T, error)) (T, error) {
	if timeout <= 0 {
		return protect(ctx, fn)
	}
	actx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	type result struct {
		v   T
		err error
	}
	done := make(chan result, 1)
	go func() {
		v, err := protect(actx, fn)
		done <- result{v, err}
	}()
	var zero T
	select {
	case r := <-done:
		return r.v, r.err
	case <-actx.Done():
		if err := ctx.Err(); err != nil {
			return zero, err
		}
		return zero, fmt.Errorf("pool: attempt timed out after %v: %w", timeout, actx.Err())
	}
}

// protect runs fn, converting a panic into a *PanicError error.
func protect[T any](ctx context.Context, fn func(ctx context.Context) (T, error)) (v T, err error) {
	defer func() {
		if r := recover(); r != nil {
			var zero T
			v = zero
			if pe, ok := r.(*PanicError); ok {
				err = pe
				return
			}
			err = &PanicError{Value: r, Stack: debug.Stack()}
		}
	}()
	return fn(ctx)
}
