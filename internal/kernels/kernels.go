// Package kernels provides reusable loop-kernel emitters for building
// synthetic workloads in the mini-ISA. Each kernel emits a self-contained
// loop nest into the routine under construction, partitioned across
// threads via the tid register, with memory-access patterns chosen to
// exercise the cache hierarchy and branch predictor in characteristic
// ways (streaming, stencil, random access, histogram, data-dependent
// branches). Workload definitions in internal/workloads compose kernels
// into phase structures that mirror the benchmarks the paper evaluates.
package kernels

import (
	"fmt"

	"looppoint/internal/isa"
)

// Emitter tracks the current block while kernels append control flow to a
// routine. Kernels use scratch registers R0–R7 and F0–F7 and leave
// R8–R15/F8–F15 untouched for the surrounding driver code.
type Emitter struct {
	P   *isa.Program
	R   *isa.Routine
	Cur *isa.Block
	n   int
}

// NewEmitter starts emitting into routine r from block entry.
func NewEmitter(p *isa.Program, r *isa.Routine, entry *isa.Block) *Emitter {
	return &Emitter{P: p, R: r, Cur: entry}
}

// NewBlock appends a fresh block without linking it; callers branch to it.
func (e *Emitter) NewBlock(label string) *isa.Block {
	e.n++
	return e.R.NewBlock(fmt.Sprintf("%s_%d", label, e.n))
}

// continueIn switches emission to a new block that the caller has already
// branched to.
func (e *Emitter) continueIn(b *isa.Block) { e.Cur = b }

// Partition describes how loop iterations split across threads.
type Partition struct {
	// Chunk is the per-thread iteration count for thread 0.
	Chunk int64
	// SkewChunk adds SkewChunk×tid iterations per thread, producing the
	// heterogeneous behaviour of workloads like 657.xz_s.2 (Figure 3).
	SkewChunk int64
}

// Equal splits n iterations per thread evenly.
func Equal(n int64) Partition { return Partition{Chunk: n} }

// Skewed gives thread t base + t×skew iterations.
func Skewed(base, skew int64) Partition { return Partition{Chunk: base, SkewChunk: skew} }

// Max returns the largest per-thread count across nthreads.
func (p Partition) Max(nthreads int) int64 {
	return p.Chunk + p.SkewChunk*int64(nthreads-1)
}

// ArrayWords returns the number of words an array must hold for every
// thread's slice (plus guard words for stencil halos).
func (p Partition) ArrayWords(nthreads int) uint64 {
	return uint64(p.Max(nthreads))*uint64(nthreads) + 2
}

// emitCount computes the thread's iteration count into reg (clobbers rTmp).
func (p Partition) emitCount(b *isa.Block, reg, rTmp isa.Reg) {
	b.IMovI(reg, p.Chunk)
	if p.SkewChunk != 0 {
		b.IMovI(rTmp, p.SkewChunk)
		b.IOp(isa.OpIMul, rTmp, isa.RegTid, rTmp)
		b.IOp(isa.OpIAdd, reg, reg, rTmp)
	}
}

// emitThreadBase computes base + tid*stridePerThread into reg.
func emitThreadBase(b *isa.Block, reg isa.Reg, base uint64, stridePerThread int64) {
	b.IMovI(reg, stridePerThread)
	b.IOp(isa.OpIMul, reg, isa.RegTid, reg)
	b.IOpI(isa.OpIAdd, reg, reg, int64(base))
}

// Scratch register roles shared by the kernels below.
const (
	rBase  isa.Reg = 0 // thread-local array base
	rIdx   isa.Reg = 1 // loop induction variable
	rCount isa.Reg = 2 // iteration bound
	rAddr  isa.Reg = 3 // effective address
	rVal   isa.Reg = 4
	rTmp   isa.Reg = 5
	rTmp2  isa.Reg = 6
	rTmp3  isa.Reg = 7
)

// StreamFMA emits a streaming triad: for i in thread-slice:
// a[i] = a[i]*scale + add. Unit stride; floating point.
func (e *Emitter) StreamFMA(arr uint64, part Partition, scale, add float64) {
	b := e.Cur
	emitThreadBase(b, rBase, arr, part.Max(e.P.NumThreads()))
	part.emitCount(b, rCount, rTmp)
	b.IMovI(rIdx, 0)
	b.FMovI(1, scale)
	loop := e.NewBlock("stream")
	cont := e.NewBlock("stream_done")
	b.BrCondI(isa.CondGT, rCount, 0, loop, cont)

	loop.IOp(isa.OpIAdd, rAddr, rBase, rIdx)
	loop.FLoad(0, rAddr, 0)
	loop.FMovI(2, add)
	loop.FMA(2, 0, 1) // f2 = add + a[i]*scale
	loop.FStore(rAddr, 0, 2)
	loop.IOpI(isa.OpIAdd, rIdx, rIdx, 1)
	loop.BrCond(isa.CondLT, rIdx, rCount, loop, cont)
	e.continueIn(cont)
}

// Stencil3 emits a 3-point stencil: dst[i] = (src[i-1]+src[i]+src[i+1])/3
// over the thread's slice (offset by one to stay in bounds).
func (e *Emitter) Stencil3(src, dst uint64, part Partition) {
	b := e.Cur
	emitThreadBase(b, rBase, src+1, part.Max(e.P.NumThreads()))
	part.emitCount(b, rCount, rTmp)
	b.IMovI(rIdx, 0)
	b.IMovI(rTmp3, int64(dst)-int64(src)) // dst offset from src
	b.FMovI(3, 1.0/3.0)
	loop := e.NewBlock("stencil")
	cont := e.NewBlock("stencil_done")
	b.BrCondI(isa.CondGT, rCount, 0, loop, cont)

	loop.IOp(isa.OpIAdd, rAddr, rBase, rIdx)
	loop.FLoad(0, rAddr, -1)
	loop.FLoad(1, rAddr, 0)
	loop.FLoad(2, rAddr, 1)
	loop.FOp(isa.OpFAdd, 0, 0, 1)
	loop.FOp(isa.OpFAdd, 0, 0, 2)
	loop.FOp(isa.OpFMul, 0, 0, 3)
	loop.IOp(isa.OpIAdd, rTmp, rAddr, rTmp3)
	loop.FStore(rTmp, 0, 0)
	loop.IOpI(isa.OpIAdd, rIdx, rIdx, 1)
	loop.BrCond(isa.CondLT, rIdx, rCount, loop, cont)
	e.continueIn(cont)
}

// StridedLoad emits an FFT-like strided sweep: for i in slice:
// acc += a[(i*stride) mod span]; the stride defeats spatial locality.
func (e *Emitter) StridedLoad(arr uint64, span int64, stride int64, part Partition) {
	b := e.Cur
	part.emitCount(b, rCount, rTmp)
	b.IMovI(rIdx, 0)
	b.IMovI(rTmp2, stride)
	loop := e.NewBlock("strided")
	cont := e.NewBlock("strided_done")
	b.BrCondI(isa.CondGT, rCount, 0, loop, cont)

	loop.IOp(isa.OpIMul, rAddr, rIdx, rTmp2)
	loop.IOpI(isa.OpIRem, rAddr, rAddr, span)
	loop.IOpI(isa.OpIAdd, rAddr, rAddr, int64(arr))
	loop.FLoad(0, rAddr, 0)
	loop.FOp(isa.OpFAdd, 7, 7, 0)
	loop.IOpI(isa.OpIAdd, rIdx, rIdx, 1)
	loop.BrCond(isa.CondLT, rIdx, rCount, loop, cont)
	e.continueIn(cont)
}

// RandomWalk emits a cache-hostile random-access loop using an LCG:
// idx = (idx*a + c) mod span; v = mem[arr+idx]; mem[arr+idx] = v+1.
func (e *Emitter) RandomWalk(arr uint64, span int64, part Partition) {
	b := e.Cur
	part.emitCount(b, rCount, rTmp)
	b.IMovI(rIdx, 0)
	b.IOpI(isa.OpIAdd, rVal, isa.RegTid, 12345) // per-thread LCG state
	loop := e.NewBlock("rwalk")
	cont := e.NewBlock("rwalk_done")
	b.BrCondI(isa.CondGT, rCount, 0, loop, cont)

	loop.IOpI(isa.OpIMul, rVal, rVal, 1103515245)
	loop.IOpI(isa.OpIAdd, rVal, rVal, 12345)
	loop.IOpI(isa.OpIAnd, rVal, rVal, (1<<31)-1)
	loop.IOpI(isa.OpIRem, rAddr, rVal, span)
	loop.IOpI(isa.OpIAdd, rAddr, rAddr, int64(arr))
	loop.ILoad(rTmp, rAddr, 0)
	loop.IOpI(isa.OpIAdd, rTmp, rTmp, 1)
	loop.IStore(rAddr, 0, rTmp)
	loop.IOpI(isa.OpIAdd, rIdx, rIdx, 1)
	loop.BrCond(isa.CondLT, rIdx, rCount, loop, cont)
	e.continueIn(cont)
}

// ReduceSum emits a thread-local floating-point reduction over the
// thread's slice into F6 (callers combine across threads with
// omp.EmitReduceF afterwards).
func (e *Emitter) ReduceSum(arr uint64, part Partition) {
	b := e.Cur
	emitThreadBase(b, rBase, arr, part.Max(e.P.NumThreads()))
	part.emitCount(b, rCount, rTmp)
	b.IMovI(rIdx, 0)
	b.FMovI(6, 0)
	loop := e.NewBlock("reduce")
	cont := e.NewBlock("reduce_done")
	b.BrCondI(isa.CondGT, rCount, 0, loop, cont)

	loop.IOp(isa.OpIAdd, rAddr, rBase, rIdx)
	loop.FLoad(0, rAddr, 0)
	loop.FOp(isa.OpFAdd, 6, 6, 0)
	loop.IOpI(isa.OpIAdd, rIdx, rIdx, 1)
	loop.BrCond(isa.CondLT, rIdx, rCount, loop, cont)
	e.continueIn(cont)
}

// Histogram emits an integer-sort-style histogram: for i in slice:
// bucket = a[i] mod buckets; hist[bucket]++ — with atomic increments when
// shared is true (NPB is-style) or plain stores into per-thread bins.
func (e *Emitter) Histogram(arr, hist uint64, buckets int64, shared bool, part Partition) {
	b := e.Cur
	emitThreadBase(b, rBase, arr, part.Max(e.P.NumThreads()))
	part.emitCount(b, rCount, rTmp)
	b.IMovI(rIdx, 0)
	if !shared {
		b.IMovI(rTmp3, buckets)
		b.IOp(isa.OpIMul, rTmp3, isa.RegTid, rTmp3)
		b.IOpI(isa.OpIAdd, rTmp3, rTmp3, int64(hist)) // per-thread bins
	} else {
		b.IMovI(rTmp3, int64(hist))
	}
	loop := e.NewBlock("hist")
	cont := e.NewBlock("hist_done")
	b.BrCondI(isa.CondGT, rCount, 0, loop, cont)

	loop.IOp(isa.OpIAdd, rAddr, rBase, rIdx)
	loop.ILoad(rVal, rAddr, 0)
	loop.IOpI(isa.OpIAnd, rVal, rVal, (1<<31)-1) // clamp sign before mod
	loop.IOpI(isa.OpIRem, rVal, rVal, buckets)
	loop.IOp(isa.OpIAdd, rVal, rVal, rTmp3)
	if shared {
		loop.IMovI(rTmp, 1)
		loop.AtomicAdd(rTmp2, rVal, 0, rTmp)
	} else {
		loop.ILoad(rTmp, rVal, 0)
		loop.IOpI(isa.OpIAdd, rTmp, rTmp, 1)
		loop.IStore(rVal, 0, rTmp)
	}
	loop.IOpI(isa.OpIAdd, rIdx, rIdx, 1)
	loop.BrCond(isa.CondLT, rIdx, rCount, loop, cont)
	e.continueIn(cont)
}

// BranchyCompress emits an xz-like data-dependent loop: load a byte-ish
// value, branch on its low bits down two different paths (defeating the
// branch predictor on incompressible data), and accumulate a rolling
// checksum with a serial dependency.
func (e *Emitter) BranchyCompress(arr uint64, part Partition) {
	b := e.Cur
	emitThreadBase(b, rBase, arr, part.Max(e.P.NumThreads()))
	part.emitCount(b, rCount, rTmp)
	b.IMovI(rIdx, 0)
	b.IMovI(rVal, 0) // checksum
	loop := e.NewBlock("compress")
	lit := e.NewBlock("literal")
	match := e.NewBlock("match")
	latch := e.NewBlock("compress_latch")
	cont := e.NewBlock("compress_done")
	b.BrCondI(isa.CondGT, rCount, 0, loop, cont)

	loop.IOp(isa.OpIAdd, rAddr, rBase, rIdx)
	loop.ILoad(rTmp, rAddr, 0)
	loop.IOpI(isa.OpIAnd, rTmp2, rTmp, 3)
	loop.BrCondI(isa.CondEQ, rTmp2, 0, match, lit)
	// Literal path: cheap.
	lit.IOpI(isa.OpIMul, rVal, rVal, 31)
	lit.IOp(isa.OpIAdd, rVal, rVal, rTmp)
	lit.Br(latch)
	// Match path: extra dependent lookup (match table).
	match.IOpI(isa.OpIAnd, rTmp3, rTmp, 255)
	match.IOpI(isa.OpIAdd, rTmp3, rTmp3, int64(arr))
	match.ILoad(rTmp3, rTmp3, 0)
	match.IOp(isa.OpIXor, rVal, rVal, rTmp3)
	match.IOpI(isa.OpIShr, rTmp3, rVal, 7)
	match.IOp(isa.OpIAdd, rVal, rVal, rTmp3)
	match.Br(latch)
	// Store the input byte back unchanged: compression reads its input
	// and emits to a stream; the input block is not mutated, so repeated
	// passes see the same data (stable phase behaviour across steps).
	latch.IStore(rAddr, 0, rTmp)
	latch.IOpI(isa.OpIAdd, rIdx, rIdx, 1)
	latch.BrCond(isa.CondLT, rIdx, rCount, loop, cont)
	e.continueIn(cont)
}

// DynamicFor wraps a body emitter in a dynamic-scheduling chunk-grab
// loop: threads repeatedly fetch-add the shared counter for the next
// chunk until total iterations are exhausted. body receives the emitter
// positioned in the chunk body with the chunk start index in R8.
func (e *Emitter) DynamicFor(counter uint64, total, chunk int64, emitDynNext func(b *isa.Block, dst isa.Reg), body func(e *Emitter)) {
	head := e.NewBlock("dyn_head")
	bodyBlk := e.NewBlock("dyn_body")
	cont := e.NewBlock("dyn_done")
	e.Cur.Br(head)
	// R8 = chunk start (from the runtime's fetch-add).
	emitDynNext(head, 8)
	head.BrCondI(isa.CondGE, 8, total, cont, bodyBlk)
	e.continueIn(bodyBlk)
	body(e)
	e.Cur.Br(head)
	e.continueIn(cont)
}

// ChunkStream emits a streaming FMA over [start, start+chunk) of arr,
// where the start index is provided at run time in startReg (used as the
// body of dynamically scheduled loops). Clobbers R0–R3 and F0–F2.
func (e *Emitter) ChunkStream(arr uint64, chunk int64, startReg isa.Reg) {
	b := e.Cur
	b.IOpI(isa.OpIAdd, rBase, startReg, int64(arr))
	b.IMovI(rIdx, 0)
	b.FMovI(1, 1.000001)
	loop := e.NewBlock("chunk")
	cont := e.NewBlock("chunk_done")
	b.Br(loop)
	loop.IOp(isa.OpIAdd, rAddr, rBase, rIdx)
	loop.FLoad(0, rAddr, 0)
	loop.FMovI(2, 0.5)
	loop.FMA(2, 0, 1)
	loop.FStore(rAddr, 0, 2)
	loop.IOpI(isa.OpIAdd, rIdx, rIdx, 1)
	loop.BrCondI(isa.CondLT, rIdx, chunk, loop, cont)
	e.continueIn(cont)
}

// SeededInit emits a one-time data initialization loop executed by thread
// 0 only (others skip): mem[arr+i] = (i*mult) mod modv + addv.
func (e *Emitter) SeededInit(arr uint64, n, mult, modv, addv int64) {
	b := e.Cur
	initB := e.NewBlock("init")
	loop := e.NewBlock("init_loop")
	cont := e.NewBlock("init_done")
	b.BrCondI(isa.CondEQ, isa.RegTid, 0, initB, cont)
	initB.IMovI(rIdx, 0)
	if n > 0 {
		initB.Br(loop)
	} else {
		initB.Br(cont)
	}
	loop.IOpI(isa.OpIMul, rVal, rIdx, mult)
	loop.IOpI(isa.OpIRem, rVal, rVal, modv)
	loop.IOpI(isa.OpIAdd, rVal, rVal, addv)
	loop.IOpI(isa.OpIAdd, rAddr, rIdx, int64(arr))
	loop.IStore(rAddr, 0, rVal)
	loop.IOpI(isa.OpIAdd, rIdx, rIdx, 1)
	loop.BrCondI(isa.CondLT, rIdx, n, loop, cont)
	e.continueIn(cont)
}
