package kernels

import (
	"math"
	"testing"
	"testing/quick"

	"looppoint/internal/exec"
	"looppoint/internal/isa"
)

// harness builds a single-threaded (or N-threaded) program whose entry
// emits the kernels supplied by build and halts.
func runKernels(t *testing.T, nthreads int, memWords uint64, build func(p *isa.Program, e *Emitter)) *exec.Machine {
	t.Helper()
	p := isa.NewProgram("kern", nthreads)
	p.Alloc("space", memWords)
	main := p.AddImage("main", false)
	r := main.NewRoutine("kmain")
	entry := r.NewBlock("entry")
	e := NewEmitter(p, r, entry)
	build(p, e)
	e.Cur.Halt()
	for tid := 0; tid < nthreads; tid++ {
		p.SetEntry(tid, r)
	}
	if err := p.Link(); err != nil {
		t.Fatalf("Link: %v", err)
	}
	m := exec.NewMachine(p, 1)
	if err := m.Run(exec.RunOpts{}); err != nil {
		t.Fatalf("Run: %v", err)
	}
	return m
}

func TestStreamFMAComputes(t *testing.T) {
	const n = 16
	var base uint64
	m := runKernels(t, 1, 4096, func(p *isa.Program, e *Emitter) {
		base, _ = p.Symbol("space")
		// Store 2.0 into each slot first via SeededInit-like float init:
		// simpler: run StreamFMA over zeroed memory: a[i] = 0*s + c = c.
		e.StreamFMA(base, Equal(n), 3.0, 1.5)
	})
	for i := uint64(0); i < n; i++ {
		got := math.Float64frombits(m.LoadWord(base + i))
		if got != 1.5 { // 0*3 + 1.5
			t.Fatalf("a[%d] = %v, want 1.5", i, got)
		}
	}
}

func TestStreamFMAPartitionsThreads(t *testing.T) {
	const n = 8
	const threads = 4
	var base uint64
	m := runKernels(t, threads, 4096, func(p *isa.Program, e *Emitter) {
		base, _ = p.Symbol("space")
		e.StreamFMA(base, Equal(n), 0, 7.0)
	})
	// Every thread's slice must be written: n*threads consecutive slots.
	for i := uint64(0); i < n*threads; i++ {
		if got := math.Float64frombits(m.LoadWord(base + i)); got != 7.0 {
			t.Fatalf("slot %d = %v, want 7 (thread slice unwritten)", i, got)
		}
	}
}

func TestStencil3Averages(t *testing.T) {
	const n = 8
	var src, dst uint64
	p := isa.NewProgram("stencil", 1)
	src = p.Alloc("src", 64)
	dst = p.Alloc("dst", 64)
	main := p.AddImage("main", false)
	r := main.NewRoutine("kmain")
	entry := r.NewBlock("entry")
	// Fill src with 3.0.
	for i := int64(0); i < 16; i++ {
		entry.FMovI(0, 3.0)
		entry.IMovI(1, int64(src)+i)
		entry.FStore(1, 0, 0)
	}
	e := NewEmitter(p, r, entry)
	e.Stencil3(src, dst, Equal(n))
	e.Cur.Halt()
	p.SetEntry(0, r)
	if err := p.Link(); err != nil {
		t.Fatal(err)
	}
	m := exec.NewMachine(p, 1)
	if err := m.Run(exec.RunOpts{}); err != nil {
		t.Fatal(err)
	}
	for i := uint64(1); i <= n; i++ {
		got := math.Float64frombits(m.LoadWord(dst + i))
		if math.Abs(got-3.0) > 1e-12 {
			t.Fatalf("dst[%d] = %v, want 3.0", i, got)
		}
	}
}

func TestHistogramCountsEverything(t *testing.T) {
	const n, buckets = 32, 8
	for _, shared := range []bool{true, false} {
		p := isa.NewProgram("hist", 2)
		arr := p.Alloc("arr", 256)
		histWords := uint64(buckets)
		if !shared {
			histWords *= 2 // per-thread bins
		}
		hist := p.Alloc("hist", histWords)
		main := p.AddImage("main", false)
		r := main.NewRoutine("kmain")
		entry := r.NewBlock("entry")
		e := NewEmitter(p, r, entry)
		e.SeededInit(arr, 2*n, 7, 1000, 0)
		// Barrier-free sync: both threads just run; init is thread-0 only
		// so give thread 1 no dependence on the data values — it still
		// counts 0-valued entries into bucket 0.
		e.Histogram(arr, hist, buckets, shared, Equal(n))
		e.Cur.Halt()
		p.SetEntry(0, r)
		p.SetEntry(1, r)
		if err := p.Link(); err != nil {
			t.Fatal(err)
		}
		m := exec.NewMachine(p, 1)
		if err := m.Run(exec.RunOpts{}); err != nil {
			t.Fatal(err)
		}
		var total int64
		for i := uint64(0); i < histWords; i++ {
			total += int64(m.LoadWord(hist + i))
		}
		if total != 2*n {
			t.Errorf("shared=%v: histogram total %d, want %d", shared, total, 2*n)
		}
	}
}

func TestRandomWalkStaysInBounds(t *testing.T) {
	// The walk touches only [arr, arr+span); out-of-bounds would panic
	// the interpreter, so completing the run is the assertion.
	runKernels(t, 2, 8192, func(p *isa.Program, e *Emitter) {
		base, _ := p.Symbol("space")
		e.RandomWalk(base, 1000, Equal(500))
	})
}

func TestBranchyCompressDeterministic(t *testing.T) {
	run := func() uint64 {
		var base uint64
		m := runKernels(t, 1, 8192, func(p *isa.Program, e *Emitter) {
			base, _ = p.Symbol("space")
			e.SeededInit(base, 600, 2654435761, 1<<20, 0)
			e.BranchyCompress(base, Equal(512))
		})
		return m.LoadWord(base + 100)
	}
	if run() != run() {
		t.Error("BranchyCompress not deterministic")
	}
}

func TestPartitionProperties(t *testing.T) {
	f := func(chunk, skew uint16, threads uint8) bool {
		n := int(threads%16) + 1
		p := Skewed(int64(chunk), int64(skew))
		// Max is the last thread's count; ArrayWords covers all slices.
		maxCount := p.Max(n)
		if maxCount != int64(chunk)+int64(skew)*int64(n-1) {
			return false
		}
		return p.ArrayWords(n) >= uint64(maxCount)*uint64(n)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	if Equal(10).Max(4) != 10 {
		t.Error("Equal partition must not skew")
	}
}

func TestChunkStream(t *testing.T) {
	var base uint64
	m := runKernels(t, 1, 4096, func(p *isa.Program, e *Emitter) {
		base, _ = p.Symbol("space")
		e.Cur.IMovI(8, 4) // start index in R8
		e.ChunkStream(base, 8, 8)
	})
	// Elements [4, 12) were rewritten to 0*1.000001 + 0.5.
	for i := uint64(4); i < 12; i++ {
		if got := math.Float64frombits(m.LoadWord(base + i)); got != 0.5 {
			t.Fatalf("chunk element %d = %v, want 0.5", i, got)
		}
	}
	if m.LoadWord(base+3) != 0 || m.LoadWord(base+12) != 0 {
		t.Error("chunk wrote outside its bounds")
	}
}

func TestStridedLoadAccumulates(t *testing.T) {
	m := runKernels(t, 1, 4096, func(p *isa.Program, e *Emitter) {
		base, _ := p.Symbol("space")
		e.SeededInit(base, 100, 1, 100, 1)
		e.StridedLoad(base, 100, 7, Equal(50))
	})
	// F7 accumulated positive integer-bit-pattern floats; thread still
	// terminated — that plus determinism is the contract.
	if m.Threads[0].State != exec.StateHalted {
		t.Error("did not halt")
	}
}
