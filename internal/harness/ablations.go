package harness

import (
	"fmt"

	"looppoint/internal/core"
	"looppoint/internal/omp"
	"looppoint/internal/results"
	"looppoint/internal/timing"
)

// AblationRow is one configuration's outcome in an ablation sweep.
type AblationRow struct {
	Config     string
	ErrPct     float64
	LoopPoints int
	Regions    int
	TheoPar    float64
}

// AblationResult is a one-application design-choice sweep.
type AblationResult struct {
	Title string
	App   string
	Rows  []AblationRow
}

// Render formats an ablation table.
func (r *AblationResult) Render() string {
	t := &results.Table{
		Title:   fmt.Sprintf("%s (%s)", r.Title, r.App),
		Headers: []string{"config", "runtime err %", "looppoints", "regions", "theo parallel x"},
	}
	for _, row := range r.Rows {
		t.AddRow(row.Config, row.ErrPct, row.LoopPoints, row.Regions, row.TheoPar)
	}
	return t.String()
}

// runVariant evaluates one configuration variant on one app.
func (e *Evaluator) runVariant(name string, policy omp.WaitPolicy, label string, mutate func(*core.Config)) (AblationRow, error) {
	app, err := e.BuildApp(name, policy, e.Opts.trainInput(), e.Opts.Threads)
	if err != nil {
		return AblationRow{}, err
	}
	cfg := e.Opts.config()
	mutate(&cfg)
	e.logf("ablation %s: %s", name, label)
	rep, err := core.Run(app.Prog, cfg, timing.Gainestown(app.Prog.NumThreads()),
		core.RunOpts{SimulateFull: true, Width: e.Opts.Parallelism})
	if err != nil {
		return AblationRow{}, fmt.Errorf("harness: ablation %s/%s: %w", name, label, err)
	}
	return AblationRow{
		Config:     label,
		ErrPct:     rep.RuntimeErrPct,
		LoopPoints: len(rep.Selection.Points),
		Regions:    len(rep.Selection.Analysis.Profile.Regions),
		TheoPar:    rep.Speedups.TheoreticalParallel,
	}, nil
}

// variant is one named configuration mutation in an ablation sweep.
type variant struct {
	label  string
	mutate func(*core.Config)
}

// runVariants evaluates a sweep's variants on the worker pool, returning
// rows in sweep order regardless of completion order.
func (e *Evaluator) runVariants(app string, policy omp.WaitPolicy, vs []variant) ([]AblationRow, error) {
	return forEach(e, vs, func(v variant) (AblationRow, error) {
		return e.runVariant(app, policy, v.label, v.mutate)
	})
}

// AblationSpinFilter toggles synchronization-library filtering on an
// active-wait workload with imbalanced threads (npb-lu's wavefront skew),
// where barrier spin time is substantial. Note the result carefully:
// with loop markers retained, turning the filter off mostly inflates the
// unit of work uniformly, which Equation 2's ratios absorb — the large
// Section II errors need the *combination* of unfiltered counts with raw
// instruction-count boundaries (see NaiveSimPoint).
func (e *Evaluator) AblationSpinFilter() (*AblationResult, error) {
	const app = "npb-lu"
	res := &AblationResult{Title: "Ablation: spin-loop filtering (active wait)", App: app}
	rows, err := e.runVariants(app, omp.Active, []variant{
		{"filter on (LoopPoint)", func(c *core.Config) {}},
		{"filter off", func(c *core.Config) { c.NoSpinFilter = true }},
	})
	if err != nil {
		return nil, err
	}
	res.Rows = rows
	return res, nil
}

// AblationGlobalBBV compares per-thread-concatenated global BBVs against
// naive summation on the heterogeneous 657.xz_s.2 (Section III-B).
func (e *Evaluator) AblationGlobalBBV() (*AblationResult, error) {
	const app = "657.xz_s.2"
	res := &AblationResult{Title: "Ablation: concatenated vs summed per-thread BBVs", App: app}
	rows, err := e.runVariants(app, omp.Passive, []variant{
		{"concatenated (LoopPoint)", func(c *core.Config) {}},
		{"summed", func(c *core.Config) { c.SumBBVs = true }},
	})
	if err != nil {
		return nil, err
	}
	res.Rows = rows
	return res, nil
}

// AblationFlowControl toggles the flow-control scheduler during analysis
// on a host with emulated load imbalance (Section III-B: flow control
// "stabilize[s] the collected profile for any thread imbalance that is
// caused by external events on the host processor"). Both variants record
// on the same biased host — threads 0 and 1 receive 8× scheduling quanta —
// and only the flow-control window changes.
func (e *Evaluator) AblationFlowControl() (*AblationResult, error) {
	const app = "657.xz_s.2"
	bias := []int{8, 8, 1, 1}
	res := &AblationResult{Title: "Ablation: flow control under host imbalance", App: app}
	rows, err := e.runVariants(app, omp.Active, []variant{
		{"flow control on (LoopPoint)", func(c *core.Config) { c.HostBias = bias }},
		// A huge window effectively disables flow control: the biased
		// host's skew lands in the recorded profile uncorrected.
		{"flow control off", func(c *core.Config) {
			c.HostBias = bias
			c.FlowWindow = 1 << 40
		}},
	})
	if err != nil {
		return nil, err
	}
	res.Rows = rows
	return res, nil
}

// AblationSliceSize sweeps the per-thread slice unit (Section III-B
// discusses the tension: small slices are warmup-sensitive and numerous,
// large slices leave too few intervals to cluster).
func (e *Evaluator) AblationSliceSize() (*AblationResult, error) {
	const app = "603.bwaves_s.1"
	res := &AblationResult{Title: "Ablation: slice size (per-thread units)", App: app}
	var vs []variant
	for _, unit := range []uint64{25_000, 50_000, 100_000, 200_000, 400_000} {
		u := unit
		vs = append(vs, variant{fmt.Sprintf("%dK", u/1000),
			func(c *core.Config) { c.SliceUnit = u }})
	}
	rows, err := e.runVariants(app, omp.Active, vs)
	if err != nil {
		return nil, err
	}
	res.Rows = rows
	return res, nil
}

// AblationMaxK sweeps the maximum cluster count (paper: maxK = 50) on a
// phase-rich application; clamping below the true phase count forces
// dissimilar regions into one cluster and the error rises, while raising
// maxK beyond what the BIC selects changes nothing.
func (e *Evaluator) AblationMaxK() (*AblationResult, error) {
	const app = "621.wrf_s.1"
	res := &AblationResult{Title: "Ablation: maxK", App: app}
	var vs []variant
	for _, k := range []int{1, 2, 5, 50} {
		kk := k
		vs = append(vs, variant{fmt.Sprintf("maxK=%d", kk),
			func(c *core.Config) { c.MaxK = kk }})
	}
	rows, err := e.runVariants(app, omp.Active, vs)
	if err != nil {
		return nil, err
	}
	res.Rows = rows
	return res, nil
}

// AblationVariableSlices compares fixed-budget slicing against
// phase-aligned variable-length slicing (Section III-B's alternative).
func (e *Evaluator) AblationVariableSlices() (*AblationResult, error) {
	const app = "627.cam4_s.1"
	res := &AblationResult{Title: "Ablation: fixed vs variable-length slices", App: app}
	rows, err := e.runVariants(app, omp.Passive, []variant{
		{"fixed-length (LoopPoint)", func(c *core.Config) {}},
		{"variable-length", func(c *core.Config) { c.VariableSlices = true }},
	})
	if err != nil {
		return nil, err
	}
	res.Rows = rows
	return res, nil
}

// AblationPrefetcher evaluates the same application, with the same
// microarchitecture-independent looppoint selection, on systems with a
// next-line hardware prefetcher enabled — the "new hardware without an
// analytical model" scenario the paper argues sampled simulation must
// support (Section VI): the analysis never saw the prefetcher, yet the
// sample predicts the modified machine.
func (e *Evaluator) AblationPrefetcher() (*AblationResult, error) {
	const appName = "649.fotonik3d_s.1"
	res := &AblationResult{Title: "Ablation: hardware prefetcher (next-N-line)", App: appName}
	app, err := e.BuildApp(appName, omp.Passive, e.Opts.trainInput(), e.Opts.Threads)
	if err != nil {
		return nil, err
	}
	rows, err := forEach(e, []int{0, 1, 2}, func(lines int) (AblationRow, error) {
		simCfg := timing.Gainestown(app.Prog.NumThreads())
		simCfg.PrefetchNextLines = lines
		e.logf("ablation %s: prefetch %d lines", appName, lines)
		rep, err := core.Run(app.Prog, e.Opts.config(), simCfg,
			core.RunOpts{SimulateFull: true, Width: e.Opts.Parallelism})
		if err != nil {
			return AblationRow{}, err
		}
		return AblationRow{
			Config:     fmt.Sprintf("prefetch %d lines", lines),
			ErrPct:     rep.RuntimeErrPct,
			LoopPoints: len(rep.Selection.Points),
			Regions:    len(rep.Selection.Analysis.Profile.Regions),
			TheoPar:    rep.Speedups.TheoreticalParallel,
		}, nil
	})
	if err != nil {
		return nil, err
	}
	res.Rows = rows
	return res, nil
}

// AblationWarmup compares warmup strategies for region simulation
// (Section III-F).
func (e *Evaluator) AblationWarmup() (*AblationResult, error) {
	const app = "619.lbm_s.1"
	res := &AblationResult{Title: "Ablation: region warmup", App: app}
	rows, err := e.runVariants(app, omp.Passive, []variant{
		{"checkpoint + warmup region", func(c *core.Config) {}},
		{"checkpoint, cold start", func(c *core.Config) { c.Warmup = timing.WarmupNone }},
		{"binary-driven, perfect warmup", func(c *core.Config) { c.RegionSim = core.RegionSimBinaryDriven }},
		{"binary-driven, cold", func(c *core.Config) {
			c.RegionSim = core.RegionSimBinaryDriven
			c.Warmup = timing.WarmupNone
		}},
	})
	if err != nil {
		return nil, err
	}
	res.Rows = rows
	return res, nil
}
