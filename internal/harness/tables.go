package harness

import (
	"fmt"

	"looppoint/internal/results"
	"looppoint/internal/timing"
	"looppoint/internal/workloads"
)

// TableI renders the simulated system configuration (paper Table I).
func TableI() string {
	cfg := timing.Gainestown(8)
	t := &results.Table{
		Title:   "Table I: primary characteristics of the simulated system",
		Headers: []string{"component", "features"},
	}
	t.AddRow("Processor", fmt.Sprintf("8 & 16 cores, Gainestown-like microarch. (%s model)", cfg.Kind))
	t.AddRow("Core", fmt.Sprintf("%.2f GHz, %d entry ROB, %d-wide", cfg.FreqGHz, cfg.ROB, cfg.Dispatch))
	t.AddRow("Branch predictor", "Pentium M (bimodal + gshare + chooser)")
	t.AddRow("L1-I cache", cfg.L1I.String())
	t.AddRow("L1-D cache", cfg.L1D.String())
	t.AddRow("L2 cache", cfg.L2.String())
	t.AddRow("L3 cache", cfg.L3.String())
	t.AddRow("DRAM", fmt.Sprintf("%d cycles beyond L3", cfg.MemLatency))
	return t.String()
}

// TableII renders the SPEC CPU2017 speed application attributes
// (paper Table II).
func TableII() string {
	t := &results.Table{
		Title:   "Table II: SPEC CPU2017 speed application attributes",
		Headers: []string{"application", "lang", "KLOC", "application area"},
	}
	seen := map[string]bool{}
	for _, s := range workloads.SpecSuite() {
		base := s.Name[:len(s.Name)-2] // strip .1/.2 input suffix
		if seen[base] {
			continue
		}
		seen[base] = true
		t.AddRow(base, s.Lang, s.KLOC, s.Area)
	}
	return t.String()
}

// TableIII renders the synchronization-primitive matrix (paper Table III).
func TableIII() string {
	t := &results.Table{
		Title:   "Table III: SPEC CPU2017 speed synchronization primitives used",
		Headers: []string{"application", "sta4", "dyn4", "bar", "ma", "si", "red", "at", "lck"},
	}
	yn := func(b bool) string {
		if b {
			return "Y"
		}
		return ""
	}
	for _, s := range workloads.SpecSuite() {
		t.AddRow(s.Name, yn(s.Sync.Sta4), yn(s.Sync.Dyn4), yn(s.Sync.Bar), yn(s.Sync.Ma),
			yn(s.Sync.Si), yn(s.Sync.Red), yn(s.Sync.At), yn(s.Sync.Lck))
	}
	return t.String()
}
