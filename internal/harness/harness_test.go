package harness

import (
	"strings"
	"testing"

	"looppoint/internal/workloads"
)

// smokeOpts shrinks every experiment to test-class inputs and a small
// slice unit so the whole harness exercises in seconds.
func smokeOpts() Options {
	return Options{
		Quick:         true,
		SliceUnit:     2000,
		InputOverride: workloads.InputTest,
	}
}

func smokeEvaluator() *Evaluator { return NewEvaluator(smokeOpts()) }

func TestTablesRender(t *testing.T) {
	for name, s := range map[string]string{
		"TableI": TableI(), "TableII": TableII(), "TableIII": TableIII(),
	} {
		if len(s) < 100 {
			t.Errorf("%s suspiciously short:\n%s", name, s)
		}
	}
	if !strings.Contains(TableI(), "2.66 GHz") {
		t.Error("Table I missing frequency")
	}
	if !strings.Contains(TableII(), "657.xz_s") {
		t.Error("Table II missing xz")
	}
	if !strings.Contains(TableIII(), "sta4") {
		t.Error("Table III missing sync columns")
	}
	if strings.Count(TableII(), "\n") < 10 {
		t.Error("Table II too few applications")
	}
}

func TestAppLists(t *testing.T) {
	full := Options{}.fill()
	if len(full.SpecApps()) != 14 || len(full.NPBApps()) != 9 {
		t.Errorf("full app lists: %d SPEC, %d NPB", len(full.SpecApps()), len(full.NPBApps()))
	}
	quick := Options{Quick: true}.fill()
	if len(quick.SpecApps()) >= 14 || len(quick.NPBApps()) >= 9 {
		t.Error("quick lists not smaller")
	}
	for _, name := range quick.SpecApps() {
		if _, ok := workloads.Lookup(name); !ok {
			t.Errorf("quick app %s unknown", name)
		}
	}
}

func TestFig5aSmoke(t *testing.T) {
	e := smokeEvaluator()
	res, err := e.Fig5a()
	if err != nil {
		t.Fatalf("Fig5a: %v", err)
	}
	if len(res.Rows) != len(e.Opts.SpecApps()) {
		t.Fatalf("rows = %d, want %d", len(res.Rows), len(e.Opts.SpecApps()))
	}
	for _, r := range res.Rows {
		if r.Active < 0 || r.Passive < 0 || r.Active > 100 || r.Passive > 100 {
			t.Errorf("%s: implausible errors %+v", r.App, r)
		}
	}
	out := res.Render()
	if !strings.Contains(out, "AVERAGE") {
		t.Errorf("render missing average:\n%s", out)
	}
	// Fig7 and Fig8 reuse the cached reports — must be fast and consistent.
	f7, err := e.Fig7()
	if err != nil {
		t.Fatalf("Fig7: %v", err)
	}
	if len(f7.Rows) != 2*len(res.Rows) {
		t.Errorf("Fig7 rows = %d, want %d", len(f7.Rows), 2*len(res.Rows))
	}
	if s := f7.Render(); !strings.Contains(s, "L2 MPKI") {
		t.Error("Fig7 render incomplete")
	}
	f8, err := e.Fig8()
	if err != nil {
		t.Fatalf("Fig8: %v", err)
	}
	for _, r := range f8.Rows {
		if r.TheoreticalParallel < r.TheoreticalSerial {
			t.Errorf("%s: parallel < serial speedup", r.App)
		}
	}
	if s := f8.Render(); !strings.Contains(s, "#") {
		t.Error("Fig8 chart missing bars")
	}
}

func TestFig6And10Smoke(t *testing.T) {
	e := smokeEvaluator()
	f6, err := e.Fig6()
	if err != nil {
		t.Fatalf("Fig6: %v", err)
	}
	if len(f6.Rows) != len(e.Opts.NPBApps()) {
		t.Fatalf("Fig6 rows = %d", len(f6.Rows))
	}
	if s := f6.Render(); !strings.Contains(s, "16 threads") {
		t.Error("Fig6 render incomplete")
	}
	f10, err := e.Fig10()
	if err != nil {
		t.Fatalf("Fig10: %v", err)
	}
	for _, r := range f10.Rows {
		if r.Parallel8 <= 0 || r.Parallel16 <= 0 {
			t.Errorf("%s: zero actual speedups %+v", r.App, r)
		}
	}
}

func TestFig9Smoke(t *testing.T) {
	e := smokeEvaluator()
	res, err := e.Fig9()
	if err != nil {
		t.Fatalf("Fig9: %v", err)
	}
	sawInapplicable := false
	for _, r := range res.Rows {
		if r.App == "657.xz_s.2" && !r.BPApplicable {
			sawInapplicable = true
		}
		if r.LPParallel <= 0 {
			t.Errorf("%s: no LoopPoint speedup", r.App)
		}
	}
	if !sawInapplicable {
		t.Error("BarrierPoint unexpectedly applicable to 657.xz_s.2")
	}
	if s := res.Render(); !strings.Contains(s, "n/a (no barriers)") {
		t.Errorf("render missing inapplicability:\n%s", s)
	}
}

func TestFig1Smoke(t *testing.T) {
	e := smokeEvaluator()
	res, err := e.Fig1()
	if err != nil {
		t.Fatalf("Fig1: %v", err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("Fig1 rows = %d, want 4", len(res.Rows))
	}
	for _, r := range res.Rows {
		if !(r.FullDetail > r.LoopPoint) {
			t.Errorf("%s: full detail (%.0f) not slower than LoopPoint (%.0f)",
				r.Label, r.FullDetail, r.LoopPoint)
		}
		if !(r.FullDetail > r.TimeBased) {
			t.Errorf("%s: full detail not slower than time-based", r.Label)
		}
	}
	if s := res.Render(); !strings.Contains(s, "LoopPoint") {
		t.Error("Fig1 render incomplete")
	}
}

func TestFig3And4Smoke(t *testing.T) {
	e := smokeEvaluator()
	f3, err := e.Fig3()
	if err != nil {
		t.Fatalf("Fig3: %v", err)
	}
	xz := f3.Shares["657.xz_s.2"]
	if len(xz) != 4 {
		t.Fatalf("xz thread share series = %d threads", len(xz))
	}
	if s := f3.Render(); !strings.Contains(s, "thread 0") {
		t.Error("Fig3 render incomplete")
	}
	f4, err := e.Fig4()
	if err != nil {
		t.Fatalf("Fig4: %v", err)
	}
	if len(f4.FullTrace) < 2 || len(f4.RegionTrace) < 1 {
		t.Errorf("Fig4 traces too short: %d full, %d region", len(f4.FullTrace), len(f4.RegionTrace))
	}
	if s := f4.Render(); !strings.Contains(s, "full run") {
		t.Error("Fig4 render incomplete")
	}
}

func TestConstrainedSmoke(t *testing.T) {
	e := smokeEvaluator()
	res, err := e.Constrained()
	if err != nil {
		t.Fatalf("Constrained: %v", err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	if s := res.Render(); !strings.Contains(s, "constrained") {
		t.Error("render incomplete")
	}
}

func TestAblationsSmoke(t *testing.T) {
	e := smokeEvaluator()
	for name, fn := range map[string]func() (*AblationResult, error){
		"spinfilter":  e.AblationSpinFilter,
		"globalbbv":   e.AblationGlobalBBV,
		"flowcontrol": e.AblationFlowControl,
		"warmup":      e.AblationWarmup,
	} {
		res, err := fn()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(res.Rows) < 2 {
			t.Errorf("%s: %d rows", name, len(res.Rows))
		}
		if res.Render() == "" {
			t.Errorf("%s: empty render", name)
		}
	}
}

func TestHybridSmoke(t *testing.T) {
	e := smokeEvaluator()
	res, err := e.Hybrid()
	if err != nil {
		t.Fatalf("Hybrid: %v", err)
	}
	if len(res.Rows) != len(e.Opts.SpecApps()) {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, r := range res.Rows {
		if r.App == "657.xz_s.2" {
			if r.Choice != "looppoint" || r.BPApplies {
				t.Errorf("xz hybrid row wrong: %+v", r)
			}
		}
	}
	if s := res.Render(); !strings.Contains(s, "chosen") {
		t.Error("render incomplete")
	}
}

func TestNewAblationsSmoke(t *testing.T) {
	e := smokeEvaluator()
	for name, fn := range map[string]func() (*AblationResult, error){
		"prefetcher":     e.AblationPrefetcher,
		"variableslices": e.AblationVariableSlices,
	} {
		res, err := fn()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(res.Rows) < 2 || res.Render() == "" {
			t.Errorf("%s: bad result", name)
		}
	}
}

func TestNaiveSimPointSmoke(t *testing.T) {
	e := smokeEvaluator()
	res, err := e.NaiveSimPoint()
	if err != nil {
		t.Fatalf("NaiveSimPoint: %v", err)
	}
	if len(res.Rows) != 2*len(e.Opts.SpecApps()) {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	if s := res.Render(); !strings.Contains(s, "naive") {
		t.Error("render incomplete")
	}
}
