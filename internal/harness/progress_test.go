package harness

import (
	"testing"

	"looppoint/internal/core"
	"looppoint/internal/omp"
)

// TestConfigFingerprintIgnoresProgressKnobs: the durable-progress knobs
// relocate mid-job checkpoints; they cannot change what an evaluation
// computes, so they must not invalidate a resume journal — and the
// shared stats pointer must not leak an address into the fingerprint.
func TestConfigFingerprintIgnoresProgressKnobs(t *testing.T) {
	base := smokeOpts().fill()
	with := base
	with.ProgressDir = "/tmp/progress"
	with.ProgressEvery = 4096
	with.Progress = &core.ProgressStats{}
	if configFingerprint(base) != configFingerprint(with) {
		t.Fatal("progress knobs changed the journal config fingerprint")
	}
	again := with
	again.Progress = &core.ProgressStats{} // different allocation, same fingerprint
	if configFingerprint(with) != configFingerprint(again) {
		t.Fatal("fingerprint depends on the stats pointer identity")
	}
}

// TestEvaluatorProgressResumeIdentical: an evaluation run with
// -progress-dir produces the same report as one without, and a fresh
// evaluator pointed at the same directory resumes the durable epochs
// and the region journal instead of recomputing from step 0 — the
// harness-level half of the crash-only contract (the core tests kill
// the process mid-epoch; here the "crash" is simply a new process image
// with an empty cache).
func TestEvaluatorProgressResumeIdentical(t *testing.T) {
	key := ReportKey{App: "644.nab_s.1", Policy: omp.Passive}

	ref := NewEvaluator(smokeOpts())
	key.Input = ref.Opts.trainInput()
	key.Threads = ref.Opts.Threads
	refRep, err := ref.Report(key)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	optsA := smokeOpts()
	optsA.ProgressDir = dir
	optsA.Progress = &core.ProgressStats{}
	repA, err := NewEvaluator(optsA).Report(key)
	if err != nil {
		t.Fatal(err)
	}
	if repA.Summary() != refRep.Summary() {
		t.Fatalf("durable run diverged from stateless run:\n%s\nvs\n%s", repA.Summary(), refRep.Summary())
	}
	saves, fails, recov, _, _ := optsA.Progress.Snapshot()
	if saves == 0 || fails != 0 {
		t.Fatalf("first durable run: saves=%d fails=%d, want saves>0 fails=0", saves, fails)
	}
	if recov != 0 {
		t.Fatalf("first durable run recovered %d times with an empty progress dir", recov)
	}

	// A fresh evaluator (empty memoization cache, no resume journal) over
	// the same progress dir must resume rather than recompute.
	optsB := smokeOpts()
	optsB.ProgressDir = dir
	optsB.Progress = &core.ProgressStats{}
	repB, err := NewEvaluator(optsB).Report(key)
	if err != nil {
		t.Fatal(err)
	}
	if repB.Summary() != refRep.Summary() {
		t.Fatalf("resumed run diverged from stateless run:\n%s\nvs\n%s", repB.Summary(), refRep.Summary())
	}
	_, _, recovB, stepsB, _ := optsB.Progress.Snapshot()
	if recovB == 0 || stepsB == 0 {
		t.Fatalf("restart over a warm progress dir: recoveries=%d steps_saved=%d, want both > 0", recovB, stepsB)
	}
}
