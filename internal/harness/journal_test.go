package harness

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"looppoint/internal/bbv"
	"looppoint/internal/core"
	"looppoint/internal/stats"
)

// stubReport builds a minimal rehydratable report for journal tests.
func stubReport(name string, regions, points int) *core.Report {
	return &core.Report{
		Name: name,
		Selection: &core.Selection{
			Analysis: &core.Analysis{
				Profile: &bbv.Profile{Regions: make([]*bbv.Region, regions)},
			},
			Points: make([]core.LoopPoint, points),
		},
		Predicted: core.Prediction{Cycles: float64(1000 * (regions + 1))},
	}
}

// writeTestJournal appends the given keys as records and returns the
// journal file's bytes.
func writeTestJournal(t *testing.T, path, config string, keys ...string) []byte {
	t.Helper()
	j, err := openJournal(path, config)
	if err != nil {
		t.Fatal(err)
	}
	for i, key := range keys {
		if err := j.append(key, stubReport(key, i+1, i+1)); err != nil {
			t.Fatalf("append %s: %v", key, err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestJournalTornFinalRecordTruncation simulates a SIGKILL mid-append —
// every possible torn prefix of the final record — and requires that
// (a) loading alone drops only the torn record, and (b) reopening for
// append repairs the tail so a subsequent append is not corrupt-
// concatenated onto the torn bytes (which would lose both records).
func TestJournalTornFinalRecordTruncation(t *testing.T) {
	dir := t.TempDir()
	config := "#cfg"
	full := writeTestJournal(t, filepath.Join(dir, "ref.jsonl"), config, "a", "b", "c")

	lines := bytes.SplitAfter(full, []byte("\n"))
	if len(lines) < 3 || len(lines[2]) == 0 {
		t.Fatalf("journal does not have 3 lines: %q", full)
	}
	prefix := len(full) - len(lines[2]) // bytes of the two intact records

	// Sample torn lengths across the final record, including 1 byte and
	// all-but-the-newline.
	finalLen := len(lines[2])
	cuts := []int{1, finalLen / 4, finalLen / 2, finalLen - 2, finalLen - 1}
	for _, cut := range cuts {
		if cut < 1 || cut >= finalLen {
			continue
		}
		path := filepath.Join(dir, "torn.jsonl")
		if err := os.WriteFile(path, full[:prefix+cut], 0o644); err != nil {
			t.Fatal(err)
		}

		// (a) A plain load must survive the torn tail: both intact
		// records restore, the torn one is dropped. The sole exception
		// is a tear that lost only the trailing newline — the record
		// bytes are complete, so the scanner still restores it.
		wantRestored, wantDropped := 2, 1
		if cut == finalLen-1 {
			wantRestored, wantDropped = 3, 0
		}
		restored, dropped, _, err := loadJournal(path, config)
		if err != nil {
			t.Fatalf("cut %d: loadJournal: %v", cut, err)
		}
		if len(restored) != wantRestored || dropped != wantDropped {
			t.Fatalf("cut %d: restored %d dropped %d, want %d/%d", cut, len(restored), dropped, wantRestored, wantDropped)
		}

		// (b) Reopening for append repairs the tail; the next record
		// must land on its own line and survive a reload losslessly.
		j, err := openJournal(path, config)
		if err != nil {
			t.Fatalf("cut %d: reopen: %v", cut, err)
		}
		if err := j.append("d", stubReport("d", 4, 4)); err != nil {
			t.Fatalf("cut %d: append after repair: %v", cut, err)
		}
		if err := j.Close(); err != nil {
			t.Fatal(err)
		}
		restored, dropped, _, err = loadJournal(path, config)
		if err != nil {
			t.Fatalf("cut %d: reload: %v", cut, err)
		}
		if len(restored) != 3 || dropped != 0 {
			t.Fatalf("cut %d: after repair restored %d dropped %d, want 3/0 (torn tail leaked into the new record)", cut, len(restored), dropped)
		}
		if restored["d"] == nil || restored["d"].Name != "d" {
			t.Fatalf("cut %d: appended record missing after repair", cut)
		}
		if _, err := os.Stat(path + ".repair"); !os.IsNotExist(err) {
			t.Fatalf("cut %d: repair temp file left behind", cut)
		}
	}
}

// TestJournalAppendWithoutRepairLosesBoth documents the failure mode the
// tail repair exists for: appending straight onto a torn final line (as
// the pre-repair code did) merges torn bytes and the new record into one
// corrupt line. The repair path must never regress to this.
func TestJournalAppendWithoutRepairLosesBoth(t *testing.T) {
	dir := t.TempDir()
	config := "#cfg"
	full := writeTestJournal(t, filepath.Join(dir, "ref.jsonl"), config, "a", "b")

	// Tear the final record and append WITHOUT repair (raw O_APPEND).
	path := filepath.Join(dir, "torn.jsonl")
	if err := os.WriteFile(path, full[:len(full)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	raw := &journal{config: config, f: f}
	if err := raw.append("c", stubReport("c", 3, 3)); err != nil {
		t.Fatal(err)
	}
	if err := raw.Close(); err != nil {
		t.Fatal(err)
	}
	restored, dropped, _, err := loadJournal(path, config)
	if err != nil {
		t.Fatal(err)
	}
	if len(restored) != 1 || dropped != 1 {
		t.Fatalf("raw append: restored %d dropped %d — expected the torn+new merged line to be lost (1 restored, 1 dropped)", len(restored), dropped)
	}
}

// intervalsReport builds a rehydratable report carrying a confidence-
// interval block with bit-patterns that exercise float round-tripping
// (repeating binary fractions, subnormal-adjacent magnitudes).
func intervalsReport(name string) *core.Report {
	rep := stubReport(name, 5, 3)
	rep.Intervals = &core.Intervals{
		Level:        0.95,
		Cycles:       stats.Interval{Mean: 1.0 / 3.0, HalfWidth: 2.0 / 7.0},
		Seconds:      stats.Interval{Mean: 1.2345678901234567e-9, HalfWidth: 9.87654321e-12},
		Instructions: stats.Interval{Mean: 1e15 + 1, HalfWidth: 0.1},
		BranchMisses: stats.Interval{Mean: 42, HalfWidth: 0},
		Branches:     stats.Interval{Mean: 0.30000000000000004, HalfWidth: 1e-300},
		L1DMisses:    stats.Interval{Mean: 7, HalfWidth: 0.5},
		L2Misses:     stats.Interval{Mean: 3, HalfWidth: 0.25},
		L3Misses:     stats.Interval{Mean: 1, HalfWidth: 0.125},
	}
	return rep
}

// TestJournalIntervalsRoundTrip pins the confidence-interval block to a
// byte-identical journal round-trip: a journaled report's Intervals must
// rehydrate to exactly the same JSON bytes (hence the same float bits),
// and a nil Intervals must stay nil rather than rehydrating as a zero
// struct.
func TestJournalIntervalsRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "journal.jsonl")
	config := "#cfg"
	j, err := openJournal(path, config)
	if err != nil {
		t.Fatal(err)
	}
	withIV := intervalsReport("with-iv")
	if err := j.append("with-iv", withIV); err != nil {
		t.Fatal(err)
	}
	if err := j.append("point-only", stubReport("point-only", 2, 2)); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	restored, dropped, _, err := loadJournal(path, config)
	if err != nil {
		t.Fatal(err)
	}
	if dropped != 0 || len(restored) != 2 {
		t.Fatalf("restored %d dropped %d, want 2/0", len(restored), dropped)
	}
	got := restored["with-iv"]
	if got == nil || got.Intervals == nil {
		t.Fatal("intervals lost in journal round-trip")
	}
	want, err := json.Marshal(withIV.Intervals)
	if err != nil {
		t.Fatal(err)
	}
	have, err := json.Marshal(got.Intervals)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want, have) {
		t.Fatalf("intervals not byte-identical after round-trip:\n want %s\n have %s", want, have)
	}
	if !reflect.DeepEqual(withIV.Intervals, got.Intervals) {
		t.Fatalf("intervals differ structurally: want %+v have %+v", withIV.Intervals, got.Intervals)
	}
	if po := restored["point-only"]; po == nil || po.Intervals != nil {
		t.Fatalf("nil Intervals must rehydrate as nil, got %+v", po.Intervals)
	}
}

// TestJournalIntervalsTornRecord tears a record carrying the new
// interval fields at several byte offsets: the torn line must be dropped
// whole (never a half-parsed interval) while intact interval records
// load losslessly.
func TestJournalIntervalsTornRecord(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "journal.jsonl")
	config := "#cfg"
	j, err := openJournal(path, config)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.append("intact", intervalsReport("intact")); err != nil {
		t.Fatal(err)
	}
	if err := j.append("torn", intervalsReport("torn")); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.SplitAfter(full, []byte("\n"))
	if len(lines) < 2 {
		t.Fatalf("expected 2 journal lines, got %q", full)
	}
	prefix := len(lines[0])
	finalLen := len(lines[1])
	for _, cut := range []int{1, finalLen / 3, finalLen / 2, finalLen - 2} {
		if cut < 1 || cut >= finalLen-1 {
			continue
		}
		torn := filepath.Join(dir, "torn.jsonl")
		if err := os.WriteFile(torn, full[:prefix+cut], 0o644); err != nil {
			t.Fatal(err)
		}
		restored, dropped, _, err := loadJournal(torn, config)
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		if len(restored) != 1 || dropped != 1 {
			t.Fatalf("cut %d: restored %d dropped %d, want 1/1", cut, len(restored), dropped)
		}
		got := restored["intact"]
		if got == nil || got.Intervals == nil || got.Intervals.Level != 0.95 {
			t.Fatalf("cut %d: intact interval record damaged: %+v", cut, got)
		}
	}
}
