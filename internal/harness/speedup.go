package harness

import (
	"errors"
	"fmt"

	"looppoint/internal/baselines"
	"looppoint/internal/core"
	"looppoint/internal/omp"
	"looppoint/internal/results"
	"looppoint/internal/workloads"
)

// SpeedupRow is one application's speedups (Figure 8).
type SpeedupRow struct {
	App                 string
	TheoreticalSerial   float64
	TheoreticalParallel float64
	ActualSerial        float64
	ActualParallel      float64
}

// Fig8Result reproduces Figure 8: theoretical vs. actual, serial vs.
// parallel speedups for SPEC train with the active wait policy.
type Fig8Result struct {
	Rows []SpeedupRow
}

// Fig8 computes speedups from the train evaluations.
func (e *Evaluator) Fig8() (*Fig8Result, error) {
	rows, err := forEach(e, e.Opts.SpecApps(), func(app string) (SpeedupRow, error) {
		rep, err := e.Report(ReportKey{
			App: app, Policy: omp.Active, Input: e.Opts.trainInput(),
			Threads: e.Opts.Threads, Full: true,
		})
		if err != nil {
			return SpeedupRow{}, err
		}
		return SpeedupRow{
			App:                 app,
			TheoreticalSerial:   rep.Speedups.TheoreticalSerial,
			TheoreticalParallel: rep.Speedups.TheoreticalParallel,
			ActualSerial:        rep.Speedups.ActualSerial,
			ActualParallel:      rep.Speedups.ActualParallel,
		}, nil
	})
	if err != nil {
		return nil, err
	}
	return &Fig8Result{Rows: rows}, nil
}

// Render formats Figure 8 as a table plus a log-scale chart.
func (r *Fig8Result) Render() string {
	t := &results.Table{
		Title: "Fig8: LoopPoint speedups (SPEC train, active)",
		Headers: []string{"application", "theo serial", "theo parallel",
			"actual serial", "actual parallel"},
	}
	chart := &results.BarChart{Title: "theoretical parallel speedup (log scale)", Log: true}
	for _, row := range r.Rows {
		t.AddRow(row.App, row.TheoreticalSerial, row.TheoreticalParallel,
			row.ActualSerial, row.ActualParallel)
		chart.Add(row.App, row.TheoreticalParallel)
	}
	return t.String() + "\n" + chart.String()
}

// RefSpeedupRow compares LoopPoint and BarrierPoint on ref inputs.
type RefSpeedupRow struct {
	App string
	// LoopPoint theoretical speedups.
	LPSerial, LPParallel float64
	// BarrierPoint theoretical speedups; Applicable is false for
	// barrier-free applications (657.xz_s).
	BPSerial, BPParallel float64
	BPApplicable         bool
}

// Fig9Result reproduces Figure 9: LoopPoint vs. BarrierPoint theoretical
// speedup on SPEC ref inputs (passive wait policy). Ref runs are analyzed
// and sampled but never fully simulated — exactly the regime the paper
// targets (full ref simulation would take months to years, Figure 1).
type Fig9Result struct {
	Rows []RefSpeedupRow
}

// Fig9 runs the ref-input analysis for both methodologies.
func (e *Evaluator) Fig9() (*Fig9Result, error) {
	rows, err := forEach(e, e.Opts.SpecApps(), func(name string) (RefSpeedupRow, error) {
		sel, app, err := e.AnalyzeOnly(name, omp.Passive, e.Opts.refInput(), e.Opts.Threads)
		if err != nil {
			return RefSpeedupRow{}, err
		}
		lp := core.ComputeTheoretical(sel)
		row := RefSpeedupRow{App: name, LPSerial: lp.TheoreticalSerial, LPParallel: lp.TheoreticalParallel}

		bpa, err := baselines.AnalyzeBarrierPoint(app.Prog, app.Runtime.BarrierReleaseAddr(), e.Opts.config())
		switch {
		case errors.Is(err, baselines.ErrNoBarriers):
			row.BPApplicable = false
		case err != nil:
			return RefSpeedupRow{}, err
		default:
			bsel, err := baselines.SelectBarrierPoint(bpa)
			if err != nil {
				return RefSpeedupRow{}, err
			}
			bp := core.ComputeTheoretical(bsel)
			row.BPApplicable = true
			row.BPSerial, row.BPParallel = bp.TheoreticalSerial, bp.TheoreticalParallel
		}
		return row, nil
	})
	if err != nil {
		return nil, err
	}
	return &Fig9Result{Rows: rows}, nil
}

// Render formats Figure 9.
func (r *Fig9Result) Render() string {
	t := &results.Table{
		Title: "Fig9: theoretical speedup, SPEC ref inputs (passive)",
		Headers: []string{"application", "LoopPoint serial", "LoopPoint parallel",
			"BarrierPoint serial", "BarrierPoint parallel"},
	}
	for _, row := range r.Rows {
		bs, bp := "n/a (no barriers)", ""
		if row.BPApplicable {
			bs = fmt.Sprintf("%.1f", row.BPSerial)
			bp = fmt.Sprintf("%.1f", row.BPParallel)
		}
		t.AddRow(row.App, row.LPSerial, row.LPParallel, bs, bp)
	}
	return t.String()
}

// NPBSpeedupRow is one NPB application's actual speedups at 8/16 cores.
type NPBSpeedupRow struct {
	App                   string
	Parallel8, Parallel16 float64
	Serial8, Serial16     float64
}

// Fig10Result reproduces Figure 10: NPB actual speedups, 8 vs. 16 cores,
// class C, passive.
type Fig10Result struct {
	Rows []NPBSpeedupRow
}

// Fig10 measures actual speedups on the NPB suite.
func (e *Evaluator) Fig10() (*Fig10Result, error) {
	rows, err := forEach(e, e.Opts.NPBApps(), func(app string) (NPBSpeedupRow, error) {
		row := NPBSpeedupRow{App: app}
		for _, threads := range []int{8, 16} {
			rep, err := e.Report(ReportKey{
				App: app, Policy: omp.Passive, Input: e.Opts.npbInput(),
				Threads: threads, Full: true,
			})
			if err != nil {
				return NPBSpeedupRow{}, err
			}
			if threads == 8 {
				row.Parallel8, row.Serial8 = rep.Speedups.ActualParallel, rep.Speedups.ActualSerial
			} else {
				row.Parallel16, row.Serial16 = rep.Speedups.ActualParallel, rep.Speedups.ActualSerial
			}
		}
		return row, nil
	})
	if err != nil {
		return nil, err
	}
	return &Fig10Result{Rows: rows}, nil
}

// Render formats Figure 10.
func (r *Fig10Result) Render() string {
	t := &results.Table{
		Title: "Fig10: NPB actual speedups (class C, passive)",
		Headers: []string{"application", "serial 8c", "parallel 8c",
			"serial 16c", "parallel 16c"},
	}
	for _, row := range r.Rows {
		t.AddRow(row.App, row.Serial8, row.Parallel8, row.Serial16, row.Parallel16)
	}
	return t.String()
}

// Fig1Row is one suite×input evaluation-time estimate.
type Fig1Row struct {
	Label string
	// Seconds at paper scale (instruction counts × workloads.Scale at
	// 100 KIPS detailed simulation speed), averaged across the suite;
	// Max* carries the largest application.
	FullDetail, TimeBased, BarrierPoint, LoopPoint float64
}

// Fig1Result reproduces Figure 1: approximate time to evaluate the
// benchmark suites under each methodology, assuming infinite simulation
// resources (the longest region bounds parallel sampled simulation) and
// 100 KIPS detailed simulation speed.
type Fig1Result struct {
	Rows  []Fig1Row
	Model baselines.SimCostModel
}

// Fig1 profiles each suite×input combination and applies the simulation
// cost model. Instruction counts are multiplied by workloads.Scale to
// place the estimates at the paper's scale.
func (e *Evaluator) Fig1() (*Fig1Result, error) {
	res := &Fig1Result{Model: baselines.DefaultCostModel()}
	combos := []struct {
		label string
		apps  []string
		input workloads.InputClass
	}{
		{"SPEC train", e.Opts.SpecApps(), e.Opts.trainInput()},
		{"SPEC ref", e.Opts.SpecApps(), e.Opts.refInput()},
		{"NPB C", e.Opts.NPBApps(), e.Opts.npbInput()},
		{"NPB D", e.Opts.NPBApps(), e.Opts.npbLargeInput()},
	}
	for _, cb := range combos {
		var row Fig1Row
		row.Label = cb.label
		// Per-app cost estimates computed on the pool; the deterministic
		// part is that contributions are summed in app order below.
		contribs, err := forEach(e, cb.apps, func(name string) (Fig1Row, error) {
			sel, app, err := e.AnalyzeOnly(name, omp.Passive, cb.input, e.Opts.Threads)
			if err != nil {
				return Fig1Row{}, err
			}
			prof := sel.Analysis.Profile
			total := float64(prof.TotalICount) * workloads.Scale
			var largest float64
			for _, lp := range sel.Points {
				if f := float64(lp.Region.UnfilteredLen()); f > largest {
					largest = f
				}
			}
			largest *= workloads.Scale

			bpLargest := total // BarrierPoint degenerates to the whole app without barriers
			if bpa, err := baselines.AnalyzeBarrierPoint(app.Prog, app.Runtime.BarrierReleaseAddr(), e.Opts.config()); err == nil {
				st := baselines.RegionStats(bpa)
				bpLargest = float64(st.LargestRegion) * workloads.Scale
			}
			return Fig1Row{
				FullDetail:   res.Model.FullDetail(total),
				TimeBased:    res.Model.TimeBasedTime(total, 0.01),
				BarrierPoint: res.Model.SampledParallelTime(bpLargest),
				LoopPoint:    res.Model.SampledParallelTime(largest),
			}, nil
		})
		if err != nil {
			return nil, err
		}
		for _, c := range contribs {
			row.FullDetail += c.FullDetail
			row.TimeBased += c.TimeBased
			row.BarrierPoint += c.BarrierPoint
			row.LoopPoint += c.LoopPoint
		}
		if n := float64(len(contribs)); n > 0 {
			row.FullDetail /= n
			row.TimeBased /= n
			row.BarrierPoint /= n
			row.LoopPoint /= n
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Render formats Figure 1 with human time units.
func (r *Fig1Result) Render() string {
	t := &results.Table{
		Title: "Fig1: estimated evaluation time per methodology (100 KIPS detail, parallel resources)",
		Headers: []string{"suite/input", "full detail", "time-based",
			"BarrierPoint", "LoopPoint"},
	}
	for _, row := range r.Rows {
		t.AddRow(row.Label, results.Seconds(row.FullDetail), results.Seconds(row.TimeBased),
			results.Seconds(row.BarrierPoint), results.Seconds(row.LoopPoint))
	}
	return t.String()
}
