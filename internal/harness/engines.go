package harness

import (
	"fmt"

	"looppoint/internal/omp"
	"looppoint/internal/results"
	"looppoint/internal/simpoint"
)

// EngineRow is one (application, engine) evaluation in the selection-
// engine comparison.
type EngineRow struct {
	App    string
	Engine string
	// Points is the number of simulated looppoints (draws).
	Points int
	// RuntimeErrPct is the prediction error versus the full simulation.
	RuntimeErrPct float64
	// Runtime carries the predicted runtime and, for multi-draw engines,
	// its half-width at Level; HalfWidth is 0 for point estimates.
	RuntimeSec       float64
	RuntimeHalfWidth float64
	// CyclesMean/CyclesHalfWidth mirror Runtime for the cycle count.
	CyclesMean      float64
	CyclesHalfWidth float64
	// Level is the interval confidence level (0 when no interval exists).
	Level float64
	// Covered reports whether the runtime interval contains the measured
	// full-simulation runtime (always false for point estimates).
	Covered bool
}

// EnginesResult compares every registered selection engine on the same
// applications: prediction error of the classic medoid rule, the
// stratified multi-draw engine (with its confidence interval), and the
// prior-work baselines, all under one region definition and budget.
type EnginesResult struct {
	Rows []EngineRow
}

// Engines evaluates the given engines (nil = every registered engine)
// over the configured SPEC subset with full-simulation ground truth.
func (e *Evaluator) Engines(engines []string) (*EnginesResult, error) {
	if engines == nil {
		engines = simpoint.SelectorNames()
	}
	apps := e.Opts.SpecApps()
	if !e.Opts.Quick && len(apps) > 4 {
		// The full SPEC sweep times every engine; cap the comparison at a
		// representative prefix so the experiment stays tractable.
		apps = apps[:4]
	}
	res := &EnginesResult{}
	perApp, err := forEach(e, apps, func(name string) ([]EngineRow, error) {
		var rows []EngineRow
		for _, engine := range engines {
			rep, err := e.Report(ReportKey{
				App: name, Policy: omp.Active, Input: e.Opts.trainInput(),
				Threads: e.Opts.Threads, Full: true, Selector: engine,
			})
			if err != nil {
				return nil, err
			}
			row := EngineRow{
				App:    name,
				Engine: engine,
				// Selection.Points survives journal rehydration (Regions
				// does not), so resumed campaigns render the same counts.
				Points:        len(rep.Selection.Points),
				RuntimeErrPct: rep.RuntimeErrPct,
				RuntimeSec:    rep.Predicted.Seconds,
			}
			if rep.Intervals != nil {
				iv := rep.Intervals
				row.RuntimeSec = iv.Seconds.Mean
				row.RuntimeHalfWidth = iv.Seconds.HalfWidth
				row.CyclesMean = iv.Cycles.Mean
				row.CyclesHalfWidth = iv.Cycles.HalfWidth
				row.Level = iv.Level
				if rep.Full != nil {
					row.Covered = iv.Seconds.Covers(rep.Full.RuntimeSeconds())
				}
			} else {
				row.CyclesMean = rep.Predicted.Cycles
			}
			rows = append(rows, row)
		}
		return rows, nil
	})
	if err != nil {
		return nil, err
	}
	for _, rows := range perApp {
		res.Rows = append(res.Rows, rows...)
	}
	return res, nil
}

// Render formats the engine comparison. Multi-draw engines show
// mean ± half-width cells; point-estimate engines show plain means.
func (r *EnginesResult) Render() string {
	t := &results.Table{
		Title: "selection engines: prediction error and confidence intervals",
		Headers: []string{"application", "engine", "points", "runtime err %",
			"runtime s", "cycles", "level", "covered"},
	}
	for _, row := range r.Rows {
		var runtime, cycles interface{} = row.RuntimeSec, row.CyclesMean
		level, covered := "-", "-"
		if row.Level > 0 {
			runtime = results.FormatCI(row.RuntimeSec, row.RuntimeHalfWidth)
			cycles = results.FormatCI(row.CyclesMean, row.CyclesHalfWidth)
			level = fmt.Sprintf("%.0f%%", row.Level*100)
			if row.Covered {
				covered = "yes"
			} else {
				covered = "no"
			}
		}
		t.AddRow(row.App, row.Engine, row.Points, row.RuntimeErrPct,
			runtime, cycles, level, covered)
	}
	return t.String()
}
