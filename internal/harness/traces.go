package harness

import (
	"fmt"

	"looppoint/internal/bbv"
	"looppoint/internal/core"
	"looppoint/internal/omp"
	"looppoint/internal/results"
	"looppoint/internal/timing"
)

// Fig3Result reproduces Figure 3: per-thread share of the per-slice
// filtered instruction count as the application progresses, showing
// homogeneous (imagick) versus non-homogeneous (657.xz_s.2) behaviour.
type Fig3Result struct {
	Apps   []string
	Shares map[string][][]float64 // app -> [thread][slice]
}

// Fig3 profiles the two contrast applications.
func (e *Evaluator) Fig3() (*Fig3Result, error) {
	res := &Fig3Result{Shares: make(map[string][][]float64)}
	for _, name := range []string{"638.imagick_s.1", "657.xz_s.2"} {
		app, err := e.BuildApp(name, omp.Passive, e.Opts.trainInput(), e.Opts.Threads)
		if err != nil {
			return nil, err
		}
		a, err := core.Analyze(app.Prog, e.Opts.config())
		if err != nil {
			return nil, err
		}
		byRegion := a.Profile.ThreadShare() // [slice][thread]
		nt := app.Prog.NumThreads()
		byThread := make([][]float64, nt)
		for t := 0; t < nt; t++ {
			for _, shares := range byRegion {
				byThread[t] = append(byThread[t], shares[t])
			}
		}
		res.Apps = append(res.Apps, name)
		res.Shares[name] = byThread
	}
	return res, nil
}

// Render formats Figure 3 as per-thread sparklines.
func (r *Fig3Result) Render() string {
	out := ""
	for _, app := range r.Apps {
		s := &results.Series{Title: fmt.Sprintf("Fig3: per-thread instruction share per slice — %s", app)}
		for t, data := range r.Shares[app] {
			s.Names = append(s.Names, fmt.Sprintf("thread %d", t))
			s.Data = append(s.Data, data)
		}
		out += s.String() + "\n"
	}
	return out
}

// Fig4Result reproduces Figure 4: the IPC-over-time trace of a full
// application run next to the trace of one representative region chosen
// by LoopPoint, with its (PC, count) boundaries.
type Fig4Result struct {
	App          string
	FullTrace    []timing.IPCSample
	RegionTrace  []timing.IPCSample
	RegionStart  bbv.Marker
	RegionEnd    bbv.Marker
	RegionWeight float64
}

// Fig4 traces 638.imagick_s.1 (train) and its heaviest looppoint.
func (e *Evaluator) Fig4() (*Fig4Result, error) {
	const name = "638.imagick_s.1"
	app, err := e.BuildApp(name, omp.Passive, e.Opts.trainInput(), e.Opts.Threads)
	if err != nil {
		return nil, err
	}
	a, err := core.Analyze(app.Prog, e.Opts.config())
	if err != nil {
		return nil, err
	}
	sel, err := core.Select(a)
	if err != nil {
		return nil, err
	}
	// Heaviest looppoint (largest multiplier × size).
	best := sel.Points[0]
	for _, lp := range sel.Points {
		if lp.Multiplier*float64(lp.Region.Filtered) > best.Multiplier*float64(best.Region.Filtered) {
			best = lp
		}
	}

	sim, err := timing.New(timing.Gainestown(app.Prog.NumThreads()), app.Prog)
	if err != nil {
		return nil, err
	}
	interval := a.Profile.TotalICount / 400
	if interval == 0 {
		interval = 1
	}
	sim.Trace = timing.NewIPCTrace(interval)
	if _, err := sim.SimulateFull(); err != nil {
		return nil, err
	}
	full := sim.Trace.Samples

	sim2, err := timing.New(timing.Gainestown(app.Prog.NumThreads()), app.Prog)
	if err != nil {
		return nil, err
	}
	sim2.Trace = timing.NewIPCTrace(best.Region.UnfilteredLen() / 60)
	if _, err := sim2.SimulateRegion(best.Region.Start, best.Region.End, timing.WarmupFunctional); err != nil {
		return nil, err
	}
	return &Fig4Result{
		App:          name,
		FullTrace:    full,
		RegionTrace:  sim2.Trace.Samples,
		RegionStart:  best.Region.Start,
		RegionEnd:    best.Region.End,
		RegionWeight: best.Multiplier,
	}, nil
}

// Render formats Figure 4.
func (r *Fig4Result) Render() string {
	toSeries := func(samples []timing.IPCSample) []float64 {
		var out []float64
		for _, s := range samples {
			out = append(out, s.IPC)
		}
		return out
	}
	s := &results.Series{
		Title: fmt.Sprintf("Fig4: IPC over time — %s (full run vs. region %v..%v, multiplier %.1f)",
			r.App, r.RegionStart, r.RegionEnd, r.RegionWeight),
		Names: []string{"full run", "region"},
		Data:  [][]float64{toSeries(r.FullTrace), toSeries(r.RegionTrace)},
	}
	return s.String()
}
