package harness

import (
	"fmt"
	"strings"

	"looppoint/internal/omp"
	"looppoint/internal/results"
	"looppoint/internal/timing"
)

// ErrRow is one application's prediction errors under both wait policies.
type ErrRow struct {
	App     string
	Active  float64
	Passive float64
}

// AccuracyResult reproduces Figure 5a (and, with the in-order core,
// Figure 5b): per-application runtime prediction error for active and
// passive wait policies.
type AccuracyResult struct {
	Figure     string
	Core       timing.CoreKind
	Rows       []ErrRow
	AvgActive  float64
	AvgPassive float64
}

// Fig5a measures runtime prediction errors on SPEC CPU2017 train inputs
// with 8 threads, unconstrained simulation, both wait policies.
func (e *Evaluator) Fig5a() (*AccuracyResult, error) {
	return e.accuracy("Fig5a", timing.OOO)
}

// Fig5b repeats Figure 5a's experiment on the in-order core model: the
// looppoints are selected by the same microarchitecture-independent
// analysis, demonstrating portability across core types.
func (e *Evaluator) Fig5b() (*AccuracyResult, error) {
	return e.accuracy("Fig5b", timing.InOrder)
}

func (e *Evaluator) accuracy(figure string, kind timing.CoreKind) (*AccuracyResult, error) {
	res := &AccuracyResult{Figure: figure, Core: kind}
	rows, err := forEach(e, e.Opts.SpecApps(), func(app string) (ErrRow, error) {
		row := ErrRow{App: app}
		for _, policy := range []omp.WaitPolicy{omp.Active, omp.Passive} {
			rep, err := e.Report(ReportKey{
				App: app, Policy: policy, Input: e.Opts.trainInput(),
				Threads: e.Opts.Threads, Core: kind, Full: true,
			})
			if err != nil {
				return ErrRow{}, err
			}
			if policy == omp.Active {
				row.Active = rep.RuntimeErrPct
			} else {
				row.Passive = rep.RuntimeErrPct
			}
		}
		return row, nil
	})
	if err != nil {
		return nil, err
	}
	res.Rows = rows
	for _, r := range res.Rows {
		res.AvgActive += r.Active
		res.AvgPassive += r.Passive
	}
	if n := float64(len(res.Rows)); n > 0 {
		res.AvgActive /= n
		res.AvgPassive /= n
	}
	return res, nil
}

// Render formats the result as the paper's figure data.
func (r *AccuracyResult) Render() string {
	t := &results.Table{
		Title:   fmt.Sprintf("%s: runtime prediction error %% (SPEC train, %v core, unconstrained)", r.Figure, r.Core),
		Headers: []string{"application", "active %", "passive %"},
	}
	for _, row := range r.Rows {
		t.AddRow(row.App, row.Active, row.Passive)
	}
	t.AddRow("AVERAGE", r.AvgActive, r.AvgPassive)
	return t.String()
}

// NPBThreadRow is one NPB application's error at two thread counts.
type NPBThreadRow struct {
	App         string
	Err8, Err16 float64
}

// Fig6Result reproduces Figure 6: NPB runtime prediction error at 8 and
// 16 threads (class C, passive).
type Fig6Result struct {
	Rows        []NPBThreadRow
	Avg8, Avg16 float64
}

// Fig6 evaluates the NPB suite at 8 and 16 threads.
func (e *Evaluator) Fig6() (*Fig6Result, error) {
	res := &Fig6Result{}
	rows, err := forEach(e, e.Opts.NPBApps(), func(app string) (NPBThreadRow, error) {
		row := NPBThreadRow{App: app}
		for _, threads := range []int{8, 16} {
			rep, err := e.Report(ReportKey{
				App: app, Policy: omp.Passive, Input: e.Opts.npbInput(),
				Threads: threads, Full: true,
			})
			if err != nil {
				return NPBThreadRow{}, err
			}
			if threads == 8 {
				row.Err8 = rep.RuntimeErrPct
			} else {
				row.Err16 = rep.RuntimeErrPct
			}
		}
		return row, nil
	})
	if err != nil {
		return nil, err
	}
	res.Rows = rows
	for _, r := range res.Rows {
		res.Avg8 += r.Err8
		res.Avg16 += r.Err16
	}
	if n := float64(len(res.Rows)); n > 0 {
		res.Avg8 /= n
		res.Avg16 /= n
	}
	return res, nil
}

// Render formats Figure 6.
func (r *Fig6Result) Render() string {
	t := &results.Table{
		Title:   "Fig6: NPB (class C, passive) runtime prediction error %",
		Headers: []string{"application", "8 threads %", "16 threads %"},
	}
	for _, row := range r.Rows {
		t.AddRow(row.App, row.Err8, row.Err16)
	}
	t.AddRow("AVERAGE", r.Avg8, r.Avg16)
	return t.String()
}

// MetricsRow carries Figure 7's per-application metric comparisons.
type MetricsRow struct {
	App            string
	Policy         string
	CyclesErrPct   float64
	BranchMPKIDiff float64
	L2MPKIDiff     float64
	L3MPKIDiff     float64
}

// Fig7Result reproduces Figures 7a–7c: prediction quality for cycles
// (percent error) and branch/L2 MPKI (absolute differences — the paper
// reports absolute diffs because the base values are small).
type Fig7Result struct {
	Rows []MetricsRow
}

// Fig7 extracts metric predictions from the Figure 5a runs.
func (e *Evaluator) Fig7() (*Fig7Result, error) {
	res := &Fig7Result{}
	perApp, err := forEach(e, e.Opts.SpecApps(), func(app string) ([]MetricsRow, error) {
		var rows []MetricsRow
		for _, policy := range []omp.WaitPolicy{omp.Active, omp.Passive} {
			rep, err := e.Report(ReportKey{
				App: app, Policy: policy, Input: e.Opts.trainInput(),
				Threads: e.Opts.Threads, Full: true,
			})
			if err != nil {
				return nil, err
			}
			rows = append(rows, MetricsRow{
				App:            app,
				Policy:         policy.String(),
				CyclesErrPct:   rep.CyclesErrPct,
				BranchMPKIDiff: rep.BranchMPKIDiff,
				L2MPKIDiff:     rep.L2MPKIDiff,
				L3MPKIDiff:     rep.L3MPKIDiff,
			})
		}
		return rows, nil
	})
	if err != nil {
		return nil, err
	}
	for _, rows := range perApp {
		res.Rows = append(res.Rows, rows...)
	}
	return res, nil
}

// Render formats Figure 7.
func (r *Fig7Result) Render() string {
	t := &results.Table{
		Title: "Fig7: metric prediction (SPEC train, 8 threads, unconstrained)",
		Headers: []string{"application", "policy", "cycles err %",
			"branch MPKI |diff|", "L2 MPKI |diff|", "L3 MPKI |diff|"},
	}
	var b strings.Builder
	for _, row := range r.Rows {
		t.AddRow(row.App, row.Policy, row.CyclesErrPct, row.BranchMPKIDiff,
			row.L2MPKIDiff, row.L3MPKIDiff)
	}
	b.WriteString(t.String())
	return b.String()
}
