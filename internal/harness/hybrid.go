package harness

import (
	"fmt"

	"looppoint/internal/baselines"
	"looppoint/internal/omp"
	"looppoint/internal/results"
)

// HybridRow is one application's hybrid-methodology outcome.
type HybridRow struct {
	App       string
	Choice    string
	LPSerial  float64
	BPSerial  float64
	BPApplies bool
}

// HybridResult reproduces the Section V-B suggestion of a hybrid
// approach: per application, use BarrierPoint when its many small
// inter-barrier regions beat LoopPoint's sample, and LoopPoint otherwise
// (always for barrier-free applications).
type HybridResult struct {
	Rows []HybridRow
}

// Hybrid runs the hybrid analysis over the SPEC subset on train inputs.
func (e *Evaluator) Hybrid() (*HybridResult, error) {
	rows, err := forEach(e, e.Opts.SpecApps(), func(name string) (HybridRow, error) {
		app, err := e.BuildApp(name, omp.Passive, e.Opts.trainInput(), e.Opts.Threads)
		if err != nil {
			return HybridRow{}, err
		}
		e.logf("hybrid analysis of %s", name)
		h, err := baselines.AnalyzeHybrid(app.Prog, app.Runtime.BarrierReleaseAddr(), e.Opts.config())
		if err != nil {
			return HybridRow{}, fmt.Errorf("harness: hybrid %s: %w", name, err)
		}
		return HybridRow{
			App:       name,
			Choice:    string(h.Choice),
			LPSerial:  h.LoopPoint.TheoreticalSerial,
			BPSerial:  h.BarrierPoint.TheoreticalSerial,
			BPApplies: h.BarrierPointApplicable,
		}, nil
	})
	if err != nil {
		return nil, err
	}
	return &HybridResult{Rows: rows}, nil
}

// Render formats the hybrid comparison.
func (r *HybridResult) Render() string {
	t := &results.Table{
		Title:   "SecV-B hybrid: per-app methodology choice (train, passive)",
		Headers: []string{"application", "LoopPoint serial x", "BarrierPoint serial x", "chosen"},
	}
	for _, row := range r.Rows {
		bp := "n/a"
		if row.BPApplies {
			bp = fmt.Sprintf("%.2f", row.BPSerial)
		}
		t.AddRow(row.App, row.LPSerial, bp, row.Choice)
	}
	return t.String()
}
