package harness

import (
	"context"
	"errors"
	"sync"
	"testing"

	"looppoint/internal/core"
	"looppoint/internal/omp"
)

// TestReportsDeterministicAcrossParallelism pins the central guarantee
// of the parallel evaluation engine: the same seed produces byte-
// identical rendered reports and an identical extrapolated prediction
// at every worker-pool width. Host-time-derived metrics (actual
// speedups) are excluded by construction — Fig5a and Fig9 render only
// model-derived numbers.
func TestReportsDeterministicAcrossParallelism(t *testing.T) {
	type outcome struct {
		fig5a string
		fig9  string
		pred  core.Prediction
	}
	run := func(j int) outcome {
		opts := smokeOpts()
		opts.Parallelism = j
		e := NewEvaluator(opts)
		f5, err := e.Fig5a()
		if err != nil {
			t.Fatalf("j=%d: Fig5a: %v", j, err)
		}
		f9, err := e.Fig9()
		if err != nil {
			t.Fatalf("j=%d: Fig9: %v", j, err)
		}
		rep, err := e.Report(ReportKey{
			App: "603.bwaves_s.1", Policy: omp.Active, Input: e.Opts.trainInput(),
			Threads: e.Opts.Threads, Full: true,
		})
		if err != nil {
			t.Fatalf("j=%d: Report: %v", j, err)
		}
		return outcome{fig5a: f5.Render(), fig9: f9.Render(), pred: rep.Predicted}
	}

	base := run(1)
	for _, j := range []int{4, 8} {
		got := run(j)
		if got.fig5a != base.fig5a {
			t.Errorf("Fig5a render differs between j=1 and j=%d:\n--- j=1\n%s\n--- j=%d\n%s",
				j, base.fig5a, j, got.fig5a)
		}
		if got.fig9 != base.fig9 {
			t.Errorf("Fig9 render differs between j=1 and j=%d", j)
		}
		if got.pred != base.pred {
			t.Errorf("prediction differs between j=1 and j=%d:\nj=1: %+v\nj=%d: %+v",
				j, base.pred, j, got.pred)
		}
	}
}

// TestReportSingleflightNoStampede fires many concurrent Report calls
// for one key and requires exactly one underlying evaluation: the
// singleflight layer must collapse the stampede, and every caller must
// receive the same cached report.
func TestReportSingleflightNoStampede(t *testing.T) {
	opts := smokeOpts()
	opts.Parallelism = 8
	e := NewEvaluator(opts)
	key := ReportKey{
		App: "644.nab_s.1", Policy: omp.Passive, Input: e.Opts.trainInput(),
		Threads: e.Opts.Threads, Full: true,
	}

	const callers = 16
	reps := make([]*core.Report, callers)
	errs := make([]error, callers)
	start := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			reps[i], errs[i] = e.Report(key)
		}(i)
	}
	close(start)
	wg.Wait()

	for i := 0; i < callers; i++ {
		if errs[i] != nil {
			t.Fatalf("caller %d: %v", i, errs[i])
		}
		if reps[i] != reps[0] {
			t.Errorf("caller %d received a different report instance", i)
		}
	}
	if n := e.Evaluations(); n != 1 {
		t.Errorf("evaluations = %d, want 1 (stampede not collapsed)", n)
	}
	// A later call must hit the cache without re-evaluating.
	if _, err := e.Report(key); err != nil {
		t.Fatal(err)
	}
	if n := e.Evaluations(); n != 1 {
		t.Errorf("evaluations after cached call = %d, want 1", n)
	}
}

// TestReportsIdenticalAcrossEnginePaths pins the other axis of the
// determinism guarantee: the block-batched fast path and the
// per-instruction reference engine must render byte-identical figures
// and produce an identical extrapolated prediction. Together with
// TestReportsDeterministicAcrossParallelism this means neither -j nor
// -slowpath may change any model-derived output.
func TestReportsIdenticalAcrossEnginePaths(t *testing.T) {
	type outcome struct {
		fig5a string
		fig9  string
		pred  core.Prediction
	}
	run := func(slow bool) outcome {
		opts := smokeOpts()
		opts.Parallelism = 4
		opts.SlowPath = slow
		e := NewEvaluator(opts)
		f5, err := e.Fig5a()
		if err != nil {
			t.Fatalf("slow=%v: Fig5a: %v", slow, err)
		}
		f9, err := e.Fig9()
		if err != nil {
			t.Fatalf("slow=%v: Fig9: %v", slow, err)
		}
		rep, err := e.Report(ReportKey{
			App: "603.bwaves_s.1", Policy: omp.Active, Input: e.Opts.trainInput(),
			Threads: e.Opts.Threads, Full: true,
		})
		if err != nil {
			t.Fatalf("slow=%v: Report: %v", slow, err)
		}
		return outcome{fig5a: f5.Render(), fig9: f9.Render(), pred: rep.Predicted}
	}

	fast, slow := run(false), run(true)
	if fast.fig5a != slow.fig5a {
		t.Errorf("Fig5a render differs between engine paths:\n--- fast\n%s\n--- slow\n%s",
			fast.fig5a, slow.fig5a)
	}
	if fast.fig9 != slow.fig9 {
		t.Errorf("Fig9 render differs between engine paths")
	}
	if fast.pred != slow.pred {
		t.Errorf("prediction differs between engine paths:\nfast: %+v\nslow: %+v",
			fast.pred, slow.pred)
	}
}

// TestReportCtxCancelledFailsFast: a cancelled context fails the
// evaluation before any work (or journaling) happens, and the failure is
// not cached — a later call with a live context evaluates normally.
func TestReportCtxCancelledFailsFast(t *testing.T) {
	e := smokeEvaluator()
	k := ReportKey{App: "644.nab_s.1", Policy: omp.Passive, Input: e.Opts.trainInput(), Threads: e.Opts.Threads}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := e.ReportCtx(ctx, k); !errors.Is(err, context.Canceled) {
		t.Fatalf("ReportCtx err = %v, want context.Canceled", err)
	}
	if n := e.Evaluations(); n != 0 {
		t.Fatalf("%d evaluations ran under a cancelled context, want 0", n)
	}
	if _, _, err := e.AnalyzeOnlyCtx(ctx, "644.nab_s.1", omp.Passive, e.Opts.trainInput(), e.Opts.Threads); !errors.Is(err, context.Canceled) {
		t.Fatalf("AnalyzeOnlyCtx err = %v, want context.Canceled", err)
	}
	rep, err := e.ReportCtx(context.Background(), k)
	if err != nil {
		t.Fatalf("ReportCtx after cancellation was sticky: %v", err)
	}
	if rep == nil || e.Evaluations() != 1 {
		t.Fatalf("live-context evaluation did not run (evals=%d)", e.Evaluations())
	}
}
