// Package harness drives the experiments that regenerate every table and
// figure of the paper's evaluation (Section V). Each Fig*/Table*/
// ablation function returns a typed result with a Render method; the
// lpreport command and the repository's benchmarks are thin wrappers
// around these entry points.
//
// Experiments are expensive (each application evaluation records,
// profiles, clusters, simulates regions, and optionally simulates the
// full application), so the Evaluator memoizes per-application reports
// and the Options.Quick flag restricts suites to representative subsets.
package harness

import (
	"fmt"
	"io"
	"sync"

	"looppoint/internal/core"
	"looppoint/internal/omp"
	"looppoint/internal/timing"
	"looppoint/internal/workloads"
)

// Options configures an experiment run.
type Options struct {
	// Quick restricts suites to a representative subset so a full report
	// finishes in minutes on a laptop; the complete suites are used when
	// false.
	Quick bool
	// Threads is the SPEC thread count (paper: 8; 657.xz_s pins its own).
	Threads int
	// SliceUnit overrides the per-thread slice size (0 = default 100 K).
	SliceUnit uint64
	// Seed drives all randomized steps.
	Seed uint64
	// Log, when non-nil, receives progress lines.
	Log io.Writer
	// InputOverride, when set, replaces every experiment's input class
	// (train, ref, C, D) with the given one — smoke-testing only; the
	// figures are defined on their paper inputs.
	InputOverride workloads.InputClass
}

// trainInput returns the SPEC accuracy-experiment input class.
func (o Options) trainInput() workloads.InputClass {
	if o.InputOverride != "" {
		return o.InputOverride
	}
	return workloads.InputTrain
}

// refInput returns the SPEC speedup-study input class.
func (o Options) refInput() workloads.InputClass {
	if o.InputOverride != "" {
		return o.InputOverride
	}
	return workloads.InputRef
}

// npbInput returns the NPB problem class.
func (o Options) npbInput() workloads.InputClass {
	if o.InputOverride != "" {
		return o.InputOverride
	}
	return workloads.ClassC
}

// npbLargeInput returns the larger NPB class used by Figure 1.
func (o Options) npbLargeInput() workloads.InputClass {
	if o.InputOverride != "" {
		return o.InputOverride
	}
	return workloads.ClassD
}

func (o Options) fill() Options {
	if o.Threads == 0 {
		o.Threads = 8
	}
	if o.Seed == 0 {
		o.Seed = 42
	}
	return o
}

func (o Options) config() core.Config {
	cfg := core.DefaultConfig()
	cfg.Seed = o.Seed
	if o.SliceUnit != 0 {
		cfg.SliceUnit = o.SliceUnit
	}
	return cfg
}

func (o Options) logf(format string, args ...interface{}) {
	if o.Log != nil {
		fmt.Fprintf(o.Log, format+"\n", args...)
	}
}

// SpecApps returns the SPEC CPU2017 workload names used by the run.
func (o Options) SpecApps() []string {
	if o.Quick {
		return []string{"603.bwaves_s.1", "638.imagick_s.1", "644.nab_s.1", "657.xz_s.2"}
	}
	var names []string
	for _, s := range workloads.SpecSuite() {
		names = append(names, s.Name)
	}
	return names
}

// NPBApps returns the NPB workload names used by the run.
func (o Options) NPBApps() []string {
	if o.Quick {
		return []string{"npb-cg", "npb-ep", "npb-is"}
	}
	var names []string
	for _, s := range workloads.NPBSuite() {
		names = append(names, s.Name)
	}
	return names
}

// Evaluator memoizes end-to-end application reports across experiments
// (Figures 5a, 7, and 8 share the same underlying runs, as in the paper).
type Evaluator struct {
	Opts Options

	mu         sync.Mutex
	reports    map[string]*core.Report
	apps       map[string]*workloads.App
	selections map[string]*core.Selection
}

// NewEvaluator creates an evaluator.
func NewEvaluator(opts Options) *Evaluator {
	return &Evaluator{
		Opts:       opts.fill(),
		reports:    make(map[string]*core.Report),
		apps:       make(map[string]*workloads.App),
		selections: make(map[string]*core.Selection),
	}
}

// BuildApp constructs (and caches) a workload instance.
func (e *Evaluator) BuildApp(name string, policy omp.WaitPolicy, input workloads.InputClass, threads int) (*workloads.App, error) {
	key := fmt.Sprintf("%s/%v/%s/%d", name, policy, input, threads)
	e.mu.Lock()
	app, ok := e.apps[key]
	e.mu.Unlock()
	if ok {
		return app, nil
	}
	spec, ok2 := workloads.Lookup(name)
	if !ok2 {
		return nil, fmt.Errorf("harness: unknown workload %q", name)
	}
	app, err := spec.Build(workloads.BuildParams{Threads: threads, Input: input, Policy: policy})
	if err != nil {
		return nil, err
	}
	e.mu.Lock()
	e.apps[key] = app
	e.mu.Unlock()
	return app, nil
}

// ReportKey identifies one memoized evaluation.
type ReportKey struct {
	App     string
	Policy  omp.WaitPolicy
	Input   workloads.InputClass
	Threads int
	Core    timing.CoreKind
	Full    bool
}

// Report runs (or returns the cached) end-to-end LoopPoint evaluation.
func (e *Evaluator) Report(k ReportKey) (*core.Report, error) {
	key := fmt.Sprintf("%+v", k)
	e.mu.Lock()
	rep, ok := e.reports[key]
	e.mu.Unlock()
	if ok {
		return rep, nil
	}
	app, err := e.BuildApp(k.App, k.Policy, k.Input, k.Threads)
	if err != nil {
		return nil, err
	}
	simCfg := timing.Gainestown(app.Prog.NumThreads())
	if k.Core == timing.InOrder {
		simCfg = timing.InOrderConfig(app.Prog.NumThreads())
	}
	e.Opts.logf("evaluating %s (%v, %s, %d threads, %v core, full=%v)",
		k.App, k.Policy, k.Input, app.Prog.NumThreads(), k.Core, k.Full)
	rep, err = core.Run(app.Prog, e.Opts.config(), simCfg, core.RunOpts{
		SimulateFull: k.Full, Parallel: true,
	})
	if err != nil {
		return nil, fmt.Errorf("harness: %s: %w", k.App, err)
	}
	e.mu.Lock()
	e.reports[key] = rep
	e.mu.Unlock()
	return rep, nil
}

// AnalyzeOnly runs analysis and selection without any timing simulation
// (used for the ref-input speedup studies, where full simulation is the
// very thing being avoided).
func (e *Evaluator) AnalyzeOnly(name string, policy omp.WaitPolicy, input workloads.InputClass, threads int) (*core.Selection, *workloads.App, error) {
	app, err := e.BuildApp(name, policy, input, threads)
	if err != nil {
		return nil, nil, err
	}
	key := fmt.Sprintf("%s/%v/%s/%d", name, policy, input, threads)
	e.mu.Lock()
	sel, ok := e.selections[key]
	e.mu.Unlock()
	if ok {
		return sel, app, nil
	}
	e.Opts.logf("analyzing %s (%v, %s)", name, policy, input)
	a, err := core.Analyze(app.Prog, e.Opts.config())
	if err != nil {
		return nil, nil, err
	}
	sel, err = core.Select(a)
	if err != nil {
		return nil, nil, err
	}
	e.mu.Lock()
	e.selections[key] = sel
	e.mu.Unlock()
	return sel, app, nil
}
