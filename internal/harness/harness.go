// Package harness drives the experiments that regenerate every table and
// figure of the paper's evaluation (Section V). Each Fig*/Table*/
// ablation function returns a typed result with a Render method; the
// lpreport command and the repository's benchmarks are thin wrappers
// around these entry points.
//
// Experiments are expensive (each application evaluation records,
// profiles, clusters, simulates regions, and optionally simulates the
// full application), so the Evaluator memoizes per-application reports
// behind a singleflight layer — concurrent callers of the same key share
// one evaluation — and every experiment fans its applications out across
// a bounded worker pool (Options.Parallelism, the -j flag). Results are
// collected in application order, so rendered reports are byte-identical
// at every parallelism level; the Options.Quick flag restricts suites to
// representative subsets.
package harness

import (
	"context"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"looppoint/internal/artifact"
	"looppoint/internal/core"
	"looppoint/internal/faults"
	"looppoint/internal/omp"
	"looppoint/internal/pool"
	"looppoint/internal/timing"
	"looppoint/internal/workloads"
)

// Options configures an experiment run.
type Options struct {
	// Quick restricts suites to a representative subset so a full report
	// finishes in minutes on a laptop; the complete suites are used when
	// false.
	Quick bool
	// Threads is the SPEC thread count (paper: 8; 657.xz_s pins its own).
	Threads int
	// SliceUnit overrides the per-thread slice size (0 = default 100 K).
	SliceUnit uint64
	// Seed drives all randomized steps.
	Seed uint64
	// Parallelism bounds how many application evaluations (and, within
	// each, region simulations) run concurrently — the -j flag. Zero
	// means one worker per CPU. Results are deterministic and
	// ordering-stable at every setting.
	Parallelism int
	// Log, when non-nil, receives progress lines.
	Log io.Writer
	// InputOverride, when set, replaces every experiment's input class
	// (train, ref, C, D) with the given one — smoke-testing only; the
	// figures are defined on their paper inputs.
	InputOverride workloads.InputClass
	// SlowPath forces every evaluation onto the per-instruction reference
	// engine instead of the block-batched fast path (the -slowpath flag).
	// Reports are byte-identical either way; the flag exists for
	// cross-checking the two engines.
	SlowPath bool
	// Resume names a journal file (JSONL) of completed evaluations. When
	// set, reports already journaled are rehydrated instead of re-run,
	// and every new evaluation is appended — a killed campaign restarts
	// where it stopped. Corrupt journal lines are dropped, and records
	// journaled under a different evaluator configuration (slice, seed,
	// slowpath, degraded/retry knobs) are skipped with a warning rather
	// than served as this run's numbers; a journal that cannot be opened
	// is logged and ignored (the run proceeds fresh).
	Resume string
	// Degraded tolerates per-region simulation failures inside each
	// evaluation (see core.RunOpts.Degraded).
	Degraded bool
	// Retries is the per-region attempt budget (<= 1: single attempt).
	Retries int
	// RegionTimeout bounds each region-simulation attempt (0: none).
	RegionTimeout time.Duration
	// MinCoverage is the degraded-mode residual-coverage floor
	// (0: core.DefaultMinCoverage; negative: no floor).
	MinCoverage float64
	// ProgressDir, when set, makes every evaluation crash-only: analysis
	// epochs and completed region simulations checkpoint durably under
	// this directory, and a restarted evaluation of the same key resumes
	// from its last durable epoch instead of step 0 (the -progress-dir
	// flag; see core.Config.ProgressDir).
	ProgressDir string
	// ProgressEvery is the durable-epoch length in schedule steps
	// (0 = the analysis shard width; see core.Config.ProgressEvery).
	ProgressEvery uint64
	// Progress, when non-nil, receives the durable-progress counters of
	// every evaluation (shared with the serving layer's /v1/stats).
	Progress *core.ProgressStats
	// Selector names the selection engine ("" = "simpoint"; see
	// simpoint.SelectorNames) — the -selector flag.
	Selector string
	// SampleBudget caps the stratified engine's total region draws
	// (0 = the engine default of twice the cluster count).
	SampleBudget int
	// Confidence is the interval level for multi-draw engines
	// (0 = simpoint.DefaultConfidence).
	Confidence float64
}

// trainInput returns the SPEC accuracy-experiment input class.
func (o Options) trainInput() workloads.InputClass {
	if o.InputOverride != "" {
		return o.InputOverride
	}
	return workloads.InputTrain
}

// refInput returns the SPEC speedup-study input class.
func (o Options) refInput() workloads.InputClass {
	if o.InputOverride != "" {
		return o.InputOverride
	}
	return workloads.InputRef
}

// npbInput returns the NPB problem class.
func (o Options) npbInput() workloads.InputClass {
	if o.InputOverride != "" {
		return o.InputOverride
	}
	return workloads.ClassC
}

// npbLargeInput returns the larger NPB class used by Figure 1.
func (o Options) npbLargeInput() workloads.InputClass {
	if o.InputOverride != "" {
		return o.InputOverride
	}
	return workloads.ClassD
}

func (o Options) fill() Options {
	if o.Threads == 0 {
		o.Threads = 8
	}
	if o.Seed == 0 {
		o.Seed = 42
	}
	if o.Parallelism <= 0 {
		o.Parallelism = pool.DefaultWidth()
	}
	return o
}

func (o Options) config() core.Config {
	cfg := core.DefaultConfig()
	cfg.Seed = o.Seed
	if o.SliceUnit != 0 {
		cfg.SliceUnit = o.SliceUnit
	}
	cfg.SlowPath = o.SlowPath
	// The clustering stage (projection + BIC sweep) shares the -j width;
	// selections are byte-identical at every setting.
	cfg.ClusterWorkers = o.Parallelism
	cfg.Selector = o.Selector
	cfg.SampleBudget = o.SampleBudget
	cfg.Confidence = o.Confidence
	cfg.ProgressDir = o.ProgressDir
	cfg.ProgressEvery = o.ProgressEvery
	cfg.Progress = o.Progress
	return cfg
}

// progressKey derives the durable-progress job key for one analysis:
// stable across restarts (it hashes only the identifying strings) and
// filename-safe. Keyed on the workload identity plus the selection
// engine — not the report class — so an analyze job, a simulate job, and
// a report job over the same workload resume each other's analysis
// epochs and region journal; core's config fingerprint rejects any
// progress the key alone would conflate.
func progressKey(app string, policy omp.WaitPolicy, input workloads.InputClass, threads int, selector string) string {
	key := fmt.Sprintf("analysis/%s/%v/%s/%d/%s", app, policy, input, threads, selector)
	return fmt.Sprintf("%016x", artifact.Checksum([]byte(key)))
}

// SpecApps returns the SPEC CPU2017 workload names used by the run.
func (o Options) SpecApps() []string {
	if o.Quick {
		return []string{"603.bwaves_s.1", "638.imagick_s.1", "644.nab_s.1", "657.xz_s.2"}
	}
	var names []string
	for _, s := range workloads.SpecSuite() {
		names = append(names, s.Name)
	}
	return names
}

// NPBApps returns the NPB workload names used by the run.
func (o Options) NPBApps() []string {
	if o.Quick {
		return []string{"npb-cg", "npb-ep", "npb-is"}
	}
	var names []string
	for _, s := range workloads.NPBSuite() {
		names = append(names, s.Name)
	}
	return names
}

// Evaluator memoizes end-to-end application reports across experiments
// (Figures 5a, 7, and 8 share the same underlying runs, as in the paper).
// All entry points are safe for concurrent use: caches sit behind a
// singleflight layer, so two goroutines requesting the same key trigger
// exactly one evaluation and share its result.
type Evaluator struct {
	Opts Options

	mu         sync.Mutex
	reports    map[string]*core.Report
	apps       map[string]*workloads.App
	selections map[string]*core.Selection

	reportFlight pool.Flight[*core.Report]
	appFlight    pool.Flight[*workloads.App]
	selFlight    pool.Flight[*core.Selection]

	journal  *journal
	restored int

	logMu sync.Mutex
	evals atomic.Int64
}

// NewEvaluator creates an evaluator. When Options.Resume names a
// journal, previously completed evaluations are rehydrated into the
// report cache and new ones are appended as they finish.
func NewEvaluator(opts Options) *Evaluator {
	e := &Evaluator{
		Opts:       opts.fill(),
		reports:    make(map[string]*core.Report),
		apps:       make(map[string]*workloads.App),
		selections: make(map[string]*core.Selection),
	}
	if opts.Resume != "" {
		config := configFingerprint(e.Opts)
		restored, dropped, mismatched, err := loadJournal(opts.Resume, config)
		if err != nil {
			e.logf("resume: cannot read journal %s: %v (starting fresh)", opts.Resume, err)
		} else {
			e.reports = restored
			e.restored = len(restored)
			if dropped > 0 {
				e.logf("resume: dropped %d corrupt journal line(s) from %s", dropped, opts.Resume)
			}
			if mismatched > 0 {
				e.logf("resume: skipped %d journal record(s) in %s computed under a different configuration (slice/seed/slowpath/degraded/retry flags); they will be re-evaluated", mismatched, opts.Resume)
			}
			if len(restored) > 0 {
				e.logf("resume: restored %d completed evaluation(s) from %s", len(restored), opts.Resume)
			}
		}
		j, err := openJournal(opts.Resume, config)
		if err != nil {
			e.logf("resume: cannot append to journal %s: %v (journaling disabled)", opts.Resume, err)
		} else {
			e.journal = j
		}
	}
	return e
}

// Restored returns how many completed evaluations were rehydrated from
// the resume journal.
func (e *Evaluator) Restored() int { return e.restored }

// Close releases the resume journal, if any.
func (e *Evaluator) Close() error {
	if e.journal == nil {
		return nil
	}
	return e.journal.Close()
}

// Evaluations returns how many end-to-end report evaluations have
// actually executed (cache and singleflight hits do not count) — the
// observable the stampede regression test pins down.
func (e *Evaluator) Evaluations() int64 { return e.evals.Load() }

// logf emits one progress line; serialized so concurrent evaluations do
// not interleave partial lines on the shared writer.
func (e *Evaluator) logf(format string, args ...interface{}) {
	if e.Opts.Log == nil {
		return
	}
	e.logMu.Lock()
	defer e.logMu.Unlock()
	fmt.Fprintf(e.Opts.Log, format+"\n", args...)
}

// forEach runs fn over items on the evaluator's worker pool and returns
// the per-item results in input order regardless of completion order —
// the invariant that keeps reports byte-identical at every -j.
func forEach[T, R any](e *Evaluator, items []T, fn func(T) (R, error)) ([]R, error) {
	return pool.Map(context.Background(), e.Opts.Parallelism, len(items),
		func(_ context.Context, i int) (R, error) { return fn(items[i]) })
}

// BuildApp constructs (and caches) a workload instance. Concurrent
// requests for the same instance share one build.
func (e *Evaluator) BuildApp(name string, policy omp.WaitPolicy, input workloads.InputClass, threads int) (*workloads.App, error) {
	key := fmt.Sprintf("%s/%v/%s/%d", name, policy, input, threads)
	e.mu.Lock()
	app, ok := e.apps[key]
	e.mu.Unlock()
	if ok {
		return app, nil
	}
	app, err, _ := e.appFlight.Do(key, func() (*workloads.App, error) {
		e.mu.Lock()
		app, ok := e.apps[key]
		e.mu.Unlock()
		if ok {
			return app, nil
		}
		spec, ok2 := workloads.Lookup(name)
		if !ok2 {
			return nil, fmt.Errorf("harness: unknown workload %q", name)
		}
		app, err := spec.Build(workloads.BuildParams{Threads: threads, Input: input, Policy: policy})
		if err != nil {
			return nil, err
		}
		e.mu.Lock()
		e.apps[key] = app
		e.mu.Unlock()
		return app, nil
	})
	return app, err
}

// ReportKey identifies one memoized evaluation.
type ReportKey struct {
	App     string
	Policy  omp.WaitPolicy
	Input   workloads.InputClass
	Threads int
	Core    timing.CoreKind
	Full    bool
	// Selector overrides the evaluator's selection engine for this
	// evaluation ("" = Options.Selector) — the engine-comparison
	// experiment evaluates one application under several engines.
	Selector string
}

// Report runs (or returns the cached) end-to-end LoopPoint evaluation.
// Concurrent callers of the same key block on one in-flight evaluation
// instead of duplicating the record/profile/cluster/simulate run.
func (e *Evaluator) Report(k ReportKey) (*core.Report, error) {
	return e.ReportCtx(context.Background(), k)
}

// ReportCtx is Report under a caller context: cancellation or deadline
// expiry stops the evaluation at the next phase or region boundary with
// ctx's error instead of finishing the remaining work — the contract the
// serving layer's per-request deadlines rely on. Cache hits ignore ctx.
//
// Singleflight caveat: concurrent callers of the same key share the
// first caller's evaluation, so cancelling that first caller's context
// fails the shared attempt for everyone waiting on it (failures are not
// cached; a later call re-evaluates). Callers that must not be coupled
// should use distinct keys or an outer retry.
func (e *Evaluator) ReportCtx(ctx context.Context, k ReportKey) (*core.Report, error) {
	key := fmt.Sprintf("%+v", k)
	e.mu.Lock()
	rep, ok := e.reports[key]
	e.mu.Unlock()
	if ok {
		return rep, nil
	}
	rep, err, _ := e.reportFlight.Do(key, func() (*core.Report, error) {
		e.mu.Lock()
		rep, ok := e.reports[key]
		e.mu.Unlock()
		if ok {
			return rep, nil
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		// Injection site "harness.report" lets the fault suite kill an
		// experiment campaign between evaluations and exercise the
		// resume journal.
		if err := faults.Check("harness.report"); err != nil {
			return nil, fmt.Errorf("harness: %s: %w", k.App, err)
		}
		e.evals.Add(1)
		app, err := e.BuildApp(k.App, k.Policy, k.Input, k.Threads)
		if err != nil {
			return nil, err
		}
		simCfg := timing.Gainestown(app.Prog.NumThreads())
		if k.Core == timing.InOrder {
			simCfg = timing.InOrderConfig(app.Prog.NumThreads())
		}
		e.logf("evaluating %s (%v, %s, %d threads, %v core, full=%v)",
			k.App, k.Policy, k.Input, app.Prog.NumThreads(), k.Core, k.Full)
		start := time.Now()
		cfg := e.Opts.config()
		if k.Selector != "" {
			cfg.Selector = k.Selector
		}
		cfg.ProgressKey = progressKey(k.App, k.Policy, k.Input, k.Threads, cfg.Selector)
		rep, err = core.RunCtx(ctx, app.Prog, cfg, simCfg, core.RunOpts{
			SimulateFull: k.Full, Width: e.Opts.Parallelism,
			Degraded: e.Opts.Degraded, Retries: e.Opts.Retries,
			RegionTimeout: e.Opts.RegionTimeout, MinCoverage: e.Opts.MinCoverage,
		})
		if err != nil {
			return nil, fmt.Errorf("harness: %s: %w", k.App, err)
		}
		e.logf("evaluated %s (%v, %s) in %v",
			k.App, k.Policy, k.Input, time.Since(start).Round(time.Millisecond))
		e.mu.Lock()
		e.reports[key] = rep
		e.mu.Unlock()
		if e.journal != nil {
			if jerr := e.journal.append(key, rep); jerr != nil {
				e.logf("resume: journal append failed: %v (journaling disabled)", jerr)
			}
		}
		return rep, nil
	})
	return rep, err
}

// AnalyzeOnly runs analysis and selection without any timing simulation
// (used for the ref-input speedup studies, where full simulation is the
// very thing being avoided). Concurrent callers share one analysis.
func (e *Evaluator) AnalyzeOnly(name string, policy omp.WaitPolicy, input workloads.InputClass, threads int) (*core.Selection, *workloads.App, error) {
	return e.AnalyzeOnlyCtx(context.Background(), name, policy, input, threads)
}

// AnalyzeOnlyCtx is AnalyzeOnly under a caller context. Analysis is one
// CPU-bound phase, so cancellation is honored at phase boundaries (the
// same singleflight coupling as ReportCtx applies).
func (e *Evaluator) AnalyzeOnlyCtx(ctx context.Context, name string, policy omp.WaitPolicy, input workloads.InputClass, threads int) (*core.Selection, *workloads.App, error) {
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	app, err := e.BuildApp(name, policy, input, threads)
	if err != nil {
		return nil, nil, err
	}
	key := fmt.Sprintf("%s/%v/%s/%d", name, policy, input, threads)
	e.mu.Lock()
	sel, ok := e.selections[key]
	e.mu.Unlock()
	if ok {
		return sel, app, nil
	}
	sel, err, _ = e.selFlight.Do(key, func() (*core.Selection, error) {
		e.mu.Lock()
		sel, ok := e.selections[key]
		e.mu.Unlock()
		if ok {
			return sel, nil
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		e.logf("analyzing %s (%v, %s)", name, policy, input)
		start := time.Now()
		cfg := e.Opts.config()
		cfg.ProgressKey = progressKey(name, policy, input, threads, cfg.Selector)
		a, err := core.Analyze(app.Prog, cfg)
		if err != nil {
			return nil, err
		}
		sel, err = core.Select(a)
		if err != nil {
			return nil, err
		}
		e.logf("analyzed %s (%v, %s) in %v", name, policy, input,
			time.Since(start).Round(time.Millisecond))
		e.mu.Lock()
		e.selections[key] = sel
		e.mu.Unlock()
		return sel, nil
	})
	if err != nil {
		return nil, nil, err
	}
	return sel, app, nil
}
