package harness

import (
	"looppoint/internal/baselines"
	"looppoint/internal/core"
	"looppoint/internal/exec"
	"looppoint/internal/omp"
	"looppoint/internal/pinball"
	"looppoint/internal/results"
	"looppoint/internal/timing"
)

// NaiveRow compares the naive multi-threaded SimPoint adaptation with
// LoopPoint on one application.
type NaiveRow struct {
	App          string
	Policy       string
	NaiveErrPct  float64
	LoopPointErr float64
}

// NaiveResult reproduces Section II's motivating measurement: the naive
// instruction-count SimPoint adaptation versus LoopPoint, both wait
// policies (the paper reports naive errors of 25% on average and up to
// 68.44% for active runs).
type NaiveResult struct {
	Rows []NaiveRow
}

// NaiveSimPoint runs the comparison on the configured SPEC subset.
func (e *Evaluator) NaiveSimPoint() (*NaiveResult, error) {
	res := &NaiveResult{}
	perApp, err := forEach(e, e.Opts.SpecApps(), func(name string) ([]NaiveRow, error) {
		var rows []NaiveRow
		for _, policy := range []omp.WaitPolicy{omp.Active, omp.Passive} {
			rep, err := e.Report(ReportKey{
				App: name, Policy: policy, Input: e.Opts.trainInput(),
				Threads: e.Opts.Threads, Full: true,
			})
			if err != nil {
				return nil, err
			}
			app, err := e.BuildApp(name, policy, e.Opts.trainInput(), e.Opts.Threads)
			if err != nil {
				return nil, err
			}
			na, err := baselines.NaiveSimPointAnalysis(app.Prog, e.Opts.config())
			if err != nil {
				return nil, err
			}
			nsel, err := baselines.SelectNaive(na)
			if err != nil {
				return nil, err
			}
			nres, err := core.SimulateRegionsN(nsel, timing.Gainestown(app.Prog.NumThreads()), e.Opts.Parallelism)
			if err != nil {
				return nil, err
			}
			npred := core.Extrapolate(nres, timing.Gainestown(1).FreqGHz)
			nerr := core.PercentError(npred.Seconds, rep.Full.RuntimeSeconds())
			rows = append(rows, NaiveRow{
				App: name, Policy: policy.String(),
				NaiveErrPct: nerr, LoopPointErr: rep.RuntimeErrPct,
			})
		}
		return rows, nil
	})
	if err != nil {
		return nil, err
	}
	for _, rows := range perApp {
		res.Rows = append(res.Rows, rows...)
	}
	return res, nil
}

// Render formats the naive-SimPoint comparison.
func (r *NaiveResult) Render() string {
	t := &results.Table{
		Title:   "Section II: naive MT-SimPoint vs LoopPoint runtime error %",
		Headers: []string{"application", "policy", "naive %", "LoopPoint %"},
	}
	for _, row := range r.Rows {
		t.AddRow(row.App, row.Policy, row.NaiveErrPct, row.LoopPointErr)
	}
	return t.String()
}

// ConstrainedRow compares constrained (pinball-replay) with unconstrained
// region simulation for one application.
type ConstrainedRow struct {
	App               string
	ConstrainedErrPct float64
	UnconstrainedErr  float64
}

// ConstrainedResult reproduces Section V-A1's constrained-replay
// observation: replaying recorded thread order inserts artificial stalls
// and can mispredict runtime badly (up to 19.6% on 657.xz_s.2), while
// unconstrained simulation of the same regions stays accurate.
type ConstrainedResult struct {
	Rows []ConstrainedRow
}

// Constrained measures both simulation styles on low- and high-sync apps.
func (e *Evaluator) Constrained() (*ConstrainedResult, error) {
	apps := []string{"657.xz_s.2", "603.bwaves_s.1"}
	res := &ConstrainedResult{}
	for _, name := range apps {
		rep, err := e.Report(ReportKey{
			App: name, Policy: omp.Active, Input: e.Opts.trainInput(),
			Threads: e.Opts.Threads, Full: true,
		})
		if err != nil {
			return nil, err
		}
		app, err := e.BuildApp(name, omp.Active, e.Opts.trainInput(), e.Opts.Threads)
		if err != nil {
			return nil, err
		}
		// Constrained: simulate the whole recorded pinball under replay
		// ordering and compare with the unconstrained full run.
		sim, err := timing.New(timing.Gainestown(app.Prog.NumThreads()), app.Prog)
		if err != nil {
			return nil, err
		}
		pb := rep.Selection.Analysis.Pinball
		if pb == nil {
			// A report rehydrated from the resume journal carries no
			// analysis pinball; recording is fully seeded, so re-recording
			// reproduces the exact pinball the original analysis used.
			cfg := e.Opts.config()
			pb, err = pinball.RecordWithOptions(app.Prog, cfg.Seed,
				exec.RunOpts{FlowWindow: cfg.FlowWindow})
			if err != nil {
				return nil, err
			}
		}
		cst, err := sim.SimulateConstrained(pb)
		if err != nil {
			return nil, err
		}
		cerr := core.PercentError(cst.RuntimeSeconds(), rep.Full.RuntimeSeconds())
		res.Rows = append(res.Rows, ConstrainedRow{
			App:               name,
			ConstrainedErrPct: cerr,
			UnconstrainedErr:  rep.RuntimeErrPct,
		})
	}
	return res, nil
}

// Render formats the constrained-simulation comparison.
func (r *ConstrainedResult) Render() string {
	t := &results.Table{
		Title:   "SecV-A1: constrained replay vs unconstrained sampling, runtime error %",
		Headers: []string{"application", "constrained %", "unconstrained (LoopPoint) %"},
	}
	for _, row := range r.Rows {
		t.AddRow(row.App, row.ConstrainedErrPct, row.UnconstrainedErr)
	}
	return t.String()
}
