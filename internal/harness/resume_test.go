package harness

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"looppoint/internal/faults"
	"looppoint/internal/omp"
)

func resumeKeys(e *Evaluator) []ReportKey {
	return []ReportKey{
		{App: "603.bwaves_s.1", Policy: omp.Active, Input: e.Opts.trainInput(),
			Threads: e.Opts.Threads, Full: true},
		{App: "644.nab_s.1", Policy: omp.Passive, Input: e.Opts.trainInput(),
			Threads: e.Opts.Threads, Full: true},
	}
}

// TestResumeJournalSkipsCompletedWork kills a campaign between
// evaluations with an injected fault, restarts it against the same
// journal, and requires (a) the journaled report is rehydrated without
// re-evaluating and (b) the resumed reports match an uninterrupted run
// byte-for-byte.
func TestResumeJournalSkipsCompletedWork(t *testing.T) {
	jpath := filepath.Join(t.TempDir(), "journal.jsonl")

	// Uninterrupted reference run (no journal, no faults).
	ref := NewEvaluator(smokeOpts())
	refKeys := resumeKeys(ref)
	refSums := make([]string, len(refKeys))
	for i, k := range refKeys {
		rep, err := ref.Report(k)
		if err != nil {
			t.Fatal(err)
		}
		refSums[i] = rep.Summary()
	}

	// Run 1: the first evaluation completes and is journaled; the fault
	// then kills every later evaluation (After skips the first
	// invocation of the site).
	opts := smokeOpts()
	opts.Resume = jpath
	e1 := NewEvaluator(opts)
	restore := faults.Enable(faults.NewPlan(1,
		faults.Rule{Site: "harness.report", Kind: faults.Transient, Rate: 1, After: 1}))
	keys := resumeKeys(e1)
	rep0, err := e1.Report(keys[0])
	if err != nil {
		t.Fatalf("first report under fault plan: %v", err)
	}
	if _, err := e1.Report(keys[1]); !errors.Is(err, faults.ErrInjected) {
		t.Fatalf("second report: err = %v, want injected kill", err)
	}
	restore()
	if err := e1.Close(); err != nil {
		t.Fatal(err)
	}
	if got := rep0.Summary(); got != refSums[0] {
		t.Errorf("faulted run report differs from reference:\n%s\n%s", got, refSums[0])
	}

	// Run 2: a fresh evaluator resumes from the journal.
	e2 := NewEvaluator(opts)
	defer e2.Close()
	if e2.Restored() != 1 {
		t.Fatalf("restored %d reports, want 1", e2.Restored())
	}
	r0, err := e2.Report(keys[0])
	if err != nil {
		t.Fatal(err)
	}
	if n := e2.Evaluations(); n != 0 {
		t.Errorf("journaled report was re-evaluated (%d evaluations)", n)
	}
	if got := r0.Summary(); got != refSums[0] {
		t.Errorf("rehydrated summary differs:\n got %s\nwant %s", got, refSums[0])
	}
	r1, err := e2.Report(keys[1])
	if err != nil {
		t.Fatal(err)
	}
	if n := e2.Evaluations(); n != 1 {
		t.Errorf("evaluations after resume = %d, want 1", n)
	}
	if got := r1.Summary(); got != refSums[1] {
		t.Errorf("resumed summary differs:\n got %s\nwant %s", got, refSums[1])
	}

	// The second run appended its evaluation: a third evaluator restores
	// both.
	e3 := NewEvaluator(opts)
	defer e3.Close()
	if e3.Restored() != 2 {
		t.Errorf("restored %d reports after full campaign, want 2", e3.Restored())
	}
}

// TestResumeJournalRejectsCorruptLines: torn or bit-flipped journal
// lines are dropped on restart instead of poisoning the cache.
func TestResumeJournalRejectsCorruptLines(t *testing.T) {
	jpath := filepath.Join(t.TempDir(), "journal.jsonl")
	opts := smokeOpts()
	opts.Resume = jpath
	e1 := NewEvaluator(opts)
	k := resumeKeys(e1)[0]
	if _, err := e1.Report(k); err != nil {
		t.Fatal(err)
	}
	if err := e1.Close(); err != nil {
		t.Fatal(err)
	}

	data, err := os.ReadFile(jpath)
	if err != nil {
		t.Fatal(err)
	}
	// A torn half-line (killed mid-write) plus a checksum-violating flip
	// of the good line.
	flipped := append([]byte(nil), data...)
	flipped[len(flipped)/2] ^= 0x10
	flipped = append(flipped, data[:len(data)/3]...)
	if err := os.WriteFile(jpath, flipped, 0o644); err != nil {
		t.Fatal(err)
	}

	e2 := NewEvaluator(opts)
	defer e2.Close()
	if e2.Restored() != 0 {
		t.Fatalf("restored %d reports from corrupt journal, want 0", e2.Restored())
	}
	if _, err := e2.Report(k); err != nil {
		t.Fatalf("evaluation after corrupt journal: %v", err)
	}
	if n := e2.Evaluations(); n != 1 {
		t.Errorf("evaluations = %d, want 1 (corrupt record must not satisfy the cache)", n)
	}
}

// TestResumeJournalRejectsConfigMismatch: a journal written under one
// evaluator configuration must not satisfy a resume under another —
// -slice (like -seed or -slowpath) changes every report's numbers
// without appearing in the ReportKey, so rehydrating across it would
// silently serve wrong tables.
func TestResumeJournalRejectsConfigMismatch(t *testing.T) {
	jpath := filepath.Join(t.TempDir(), "journal.jsonl")
	opts := smokeOpts()
	opts.Resume = jpath
	e1 := NewEvaluator(opts)
	k := resumeKeys(e1)[0]
	if _, err := e1.Report(k); err != nil {
		t.Fatal(err)
	}
	if err := e1.Close(); err != nil {
		t.Fatal(err)
	}

	// Same key set, different slice unit: the journaled record is valid
	// but was computed under another configuration.
	mopts := opts
	mopts.SliceUnit = opts.config().SliceUnit * 2
	e2 := NewEvaluator(mopts)
	defer e2.Close()
	if e2.Restored() != 0 {
		t.Fatalf("restored %d reports across a config change, want 0", e2.Restored())
	}
	if _, err := e2.Report(k); err != nil {
		t.Fatal(err)
	}
	if n := e2.Evaluations(); n != 1 {
		t.Errorf("evaluations = %d, want 1 (mismatched record must not satisfy the cache)", n)
	}

	// The matching configuration still resumes both runs' records.
	e3 := NewEvaluator(opts)
	defer e3.Close()
	if e3.Restored() != 1 {
		t.Errorf("restored %d reports under the original config, want 1", e3.Restored())
	}
}

// TestDegradedEvaluatorSurvivesRegionLoss: with a region fault injected
// and degraded mode on, an evaluation completes and the report carries
// the loss.
func TestDegradedEvaluatorSurvivesRegionLoss(t *testing.T) {
	opts := smokeOpts()
	opts.Degraded = true
	opts.MinCoverage = 0.01
	opts.Parallelism = 1
	e := NewEvaluator(opts)
	defer faults.Enable(faults.NewPlan(1,
		faults.Rule{Site: "core.region.sim", Kind: faults.Transient, Rate: 1, Count: 1}))()
	rep, err := e.Report(resumeKeys(e)[0])
	if err != nil {
		t.Fatalf("degraded evaluation failed: %v", err)
	}
	if !rep.Degradation.Degraded() {
		t.Error("report does not record the injected region loss")
	}
}
