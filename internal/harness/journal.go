package harness

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"sync"
	"time"

	"looppoint/internal/artifact"
	"looppoint/internal/bbv"
	"looppoint/internal/core"
	"looppoint/internal/timing"
)

// The resume journal makes a long experiment campaign restartable: every
// completed evaluation appends one self-checksummed JSONL record keyed
// by its ReportKey, and a fresh Evaluator pointed at the same journal
// rehydrates those reports instead of redoing the record/profile/
// cluster/simulate work. Records hold the scalar subset of a
// core.Report that the tables and figures consume (prediction, errors,
// speedups, degradation, and the selection's region/looppoint counts) —
// everything the renderers read, nothing that cannot be serialized.
// Lines that fail their checksum or do not parse are dropped silently:
// a torn final line from a killed run must not poison the restart.
//
// ReportKey alone does not pin down a report's numbers — -slice, -seed,
// -slowpath, and the degraded/retry knobs all change what an evaluation
// produces without appearing in the key. Each record therefore also
// carries a fingerprint of the evaluator configuration it was computed
// under, and resume skips (with a warning) records whose fingerprint
// does not match the current run instead of silently serving numbers
// from a different configuration.

// journalConfigVersion is bumped whenever the journaled record schema or
// the fingerprinted configuration surface changes, invalidating older
// journals wholesale. v2: records gained the confidence-interval block
// and the fingerprinted config gained the selection-engine knobs.
// v3: the core config grew the durable-progress fields (excluded from
// the fingerprint below, but they shift the %+v rendering).
const journalConfigVersion = 3

// configFingerprint hashes the evaluator configuration that determines a
// report's numbers beyond its ReportKey: the resolved core config
// (slice unit, seed, slow path, …) plus the degraded-mode and retry
// knobs. Threads and input are omitted — they are part of every
// ReportKey — as are Parallelism, Quick, Log, and Resume, which cannot
// change report bytes. The durable-progress knobs are zeroed first:
// they move where mid-job checkpoints live, never what an evaluation
// computes (and the stats pointer would render as an address, breaking
// fingerprint stability across restarts).
func configFingerprint(o Options) string {
	o.ProgressDir, o.ProgressEvery, o.Progress = "", 0, nil
	sig := fmt.Sprintf("v%d|cfg=%+v|degraded=%v|retries=%d|region_timeout=%v|min_coverage=%v",
		journalConfigVersion, o.config(), o.Degraded, o.Retries, o.RegionTimeout, o.MinCoverage)
	return fmt.Sprintf("%#x", artifact.Checksum([]byte(sig)))
}

// reportData is the journaled scalar subset of a core.Report.
type reportData struct {
	Name           string            `json:"name"`
	NumRegions     int               `json:"num_regions"`
	NumPoints      int               `json:"num_points"`
	Predicted      core.Prediction   `json:"predicted"`
	Full           *timing.Stats     `json:"full,omitempty"`
	FullHostTimeNS int64             `json:"full_host_time_ns,omitempty"`
	RuntimeErrPct  float64           `json:"runtime_err_pct"`
	CyclesErrPct   float64           `json:"cycles_err_pct"`
	BranchMPKIDiff float64           `json:"branch_mpki_diff"`
	L1DMPKIDiff    float64           `json:"l1d_mpki_diff"`
	L2MPKIDiff     float64           `json:"l2_mpki_diff"`
	L3MPKIDiff     float64           `json:"l3_mpki_diff"`
	Speedups       core.Speedups     `json:"speedups"`
	Degradation    *core.Degradation `json:"degradation,omitempty"`
	// Intervals round-trips the confidence-interval block byte-identically
	// (omitted for point-estimate engines, where it is nil).
	Intervals *core.Intervals `json:"intervals,omitempty"`
}

func newReportData(rep *core.Report) reportData {
	return reportData{
		Name:           rep.Name,
		NumRegions:     len(rep.Selection.Analysis.Profile.Regions),
		NumPoints:      len(rep.Selection.Points),
		Predicted:      rep.Predicted,
		Full:           rep.Full,
		FullHostTimeNS: int64(rep.FullHostTime),
		RuntimeErrPct:  rep.RuntimeErrPct,
		CyclesErrPct:   rep.CyclesErrPct,
		BranchMPKIDiff: rep.BranchMPKIDiff,
		L1DMPKIDiff:    rep.L1DMPKIDiff,
		L2MPKIDiff:     rep.L2MPKIDiff,
		L3MPKIDiff:     rep.L3MPKIDiff,
		Speedups:       rep.Speedups,
		Degradation:    rep.Degradation,
		Intervals:      rep.Intervals,
	}
}

// report rehydrates a journaled record into a core.Report. The selection
// is a stub carrying only the region/looppoint counts the renderers
// read; consumers needing the analysis pinball (Constrained) re-record
// it deterministically.
func (d reportData) report() *core.Report {
	sel := &core.Selection{
		Analysis: &core.Analysis{
			Profile: &bbv.Profile{Regions: make([]*bbv.Region, d.NumRegions)},
		},
		Points: make([]core.LoopPoint, d.NumPoints),
	}
	return &core.Report{
		Name:           d.Name,
		Selection:      sel,
		Predicted:      d.Predicted,
		Degradation:    d.Degradation,
		Intervals:      d.Intervals,
		Full:           d.Full,
		FullHostTime:   time.Duration(d.FullHostTimeNS),
		RuntimeErrPct:  d.RuntimeErrPct,
		CyclesErrPct:   d.CyclesErrPct,
		BranchMPKIDiff: d.BranchMPKIDiff,
		L1DMPKIDiff:    d.L1DMPKIDiff,
		L2MPKIDiff:     d.L2MPKIDiff,
		L3MPKIDiff:     d.L3MPKIDiff,
		Speedups:       d.Speedups,
	}
}

// journalRecord is the checksummed unit: the memoization key, the
// fingerprint of the configuration the report was computed under, and
// the report data. The on-disk line format is the shared checksummed
// envelope (artifact.ChecksumLine/VerifyLine).
type journalRecord struct {
	Key    string     `json:"key"`
	Config string     `json:"config"`
	Report reportData `json:"report"`
}

// journal appends completed evaluations to a JSONL file.
type journal struct {
	config string // fingerprint stamped on every appended record
	mu     sync.Mutex
	f      *os.File
	dead   bool // a write failed; stop appending, keep evaluating
}

// loadJournal parses an existing journal file into rehydrated reports.
// A missing file yields an empty map. Lines that fail their checksum or
// do not parse are skipped and counted in dropped; well-formed records
// whose config fingerprint differs from config (including records from
// before fingerprinting existed) are skipped and counted in mismatched —
// they are valid journal lines, just from a different run configuration.
func loadJournal(path, config string) (restored map[string]*core.Report, dropped, mismatched int, err error) {
	restored = make(map[string]*core.Report)
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return restored, 0, 0, nil
	}
	if err != nil {
		return nil, 0, 0, err
	}
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(nil, 16<<20)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		recBytes, ok := artifact.VerifyLine(line)
		if !ok {
			dropped++
			continue
		}
		var rec journalRecord
		if json.Unmarshal(recBytes, &rec) != nil || rec.Key == "" {
			dropped++
			continue
		}
		if rec.Config != config {
			mismatched++
			continue
		}
		restored[rec.Key] = rec.Report.report()
	}
	if err := sc.Err(); err != nil {
		return nil, 0, 0, err
	}
	return restored, dropped, mismatched, nil
}

// openJournal opens (creating if needed) the journal for appending
// records stamped with the given config fingerprint. A final line torn
// by a mid-write kill is truncated away first (artifact.RepairTornTail,
// crash-safe), so the next append starts on a fresh line instead of
// corrupt-concatenating with the torn bytes (which would lose both the
// torn record and the new one).
func openJournal(path, config string) (*journal, error) {
	if err := artifact.RepairTornTail(path); err != nil {
		return nil, err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	return &journal{config: config, f: f}, nil
}

// append writes one completed evaluation. The line is checksummed so a
// restart can reject records torn by a mid-write kill, and fsynced so a
// SIGKILL right after a drain checkpoint (the serving layer journals
// in-flight work on SIGTERM) never loses an acknowledged record to the
// page cache.
func (j *journal) append(key string, rep *core.Report) error {
	rec, err := json.Marshal(journalRecord{Key: key, Config: j.config, Report: newReportData(rep)})
	if err != nil {
		return err
	}
	line, err := artifact.ChecksumLine(rec)
	if err != nil {
		return err
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.dead {
		return nil
	}
	if _, err := j.f.Write(append(line, '\n')); err != nil {
		j.dead = true
		return err
	}
	if err := j.f.Sync(); err != nil {
		j.dead = true
		return err
	}
	return nil
}

// Close releases the journal's file handle.
func (j *journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.f.Close()
}
