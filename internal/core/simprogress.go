package core

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"sync"
	"time"

	"looppoint/internal/artifact"
	"looppoint/internal/faults"
	"looppoint/internal/timing"
)

// Durable region-simulation progress. With Config.ProgressDir set, the
// fault-tolerant sweep journals every completed region's statistics as
// one checksummed JSONL line (the shared artifact envelope), fsynced
// before the result is used. A killed sweep restarted over the same
// selection and simulator configuration replays nothing it already
// finished: recovered regions are served from the journal — including
// their recorded host time, so speedup accounting stays deterministic —
// and only the remainder is simulated. Torn final lines (SIGKILL
// mid-write) are truncated away on open; lines that fail their checksum
// or belong to a different selection/configuration are skipped. The
// journal shares the "core.progress.save"/"core.progress.load" fault
// sites with the analysis epochs: saves are best-effort, loads fall
// back to simulating from scratch.

// simRecord is one journaled region result. The looppoint itself is not
// serialized — the restart's own selection provides it (the fingerprint
// pins both selections identical); only the simulated statistics and
// host time carry over.
type simRecord struct {
	Fp         string        `json:"fp"`
	Region     int           `json:"region"`
	Stats      *timing.Stats `json:"stats"`
	HostTimeNS int64         `json:"host_time_ns"`
}

// simFingerprint pins everything that determines a region's simulated
// statistics: the analysis fingerprint, the simulator configuration, the
// warmup/region-sim knobs, and the exact region boundaries of every
// selected looppoint.
func simFingerprint(sel *Selection, simCfg timing.Config) string {
	a := sel.Analysis
	cfg := a.Config
	var bounds []byte
	for _, lp := range sel.Points {
		bounds = fmt.Appendf(bounds, "|%d:%d:%d", lp.Region.Index, lp.Region.StartICount, lp.Region.EndICount)
	}
	sig := fmt.Sprintf("v%d|%s|sim=%+v|warmup=%d|wregions=%d|mode=%d|seed=%d|slow=%v|points=%s",
		progressVersion, progressFingerprint(a.Prog, &cfg), simCfg,
		cfg.Warmup, cfg.WarmupRegions, cfg.RegionSim, cfg.Seed, cfg.SlowPath, bounds)
	return fmt.Sprintf("%016x", artifact.Checksum([]byte(sig)))
}

// simProgress is the open journal for one sweep. All methods are safe
// for concurrent use (the sweep fans out) and for nil receivers — a nil
// journal records and recovers nothing.
type simProgress struct {
	fp        string
	ps        *ProgressStats
	recovered map[int]RegionResult

	mu   sync.Mutex
	f    *os.File
	dead bool
}

// openSimProgress opens (creating if needed) the sweep's journal and
// loads every recoverable region result. Any failure to open or read
// degrades to an empty journal — durable progress never wedges a sweep.
func openSimProgress(sel *Selection, simCfg timing.Config) *simProgress {
	a := sel.Analysis
	cfg := a.Config
	if cfg.ProgressDir == "" || a.Prog == nil || cfg.SlowPath {
		return nil
	}
	if err := os.MkdirAll(cfg.ProgressDir, 0o755); err != nil {
		return nil
	}
	sp := &simProgress{
		fp:        simFingerprint(sel, simCfg),
		ps:        cfg.Progress,
		recovered: make(map[int]RegionResult),
	}
	path := progressBase(cfg.ProgressDir, a.Prog, &cfg) + ".sim.progress"
	sp.load(path, sel)
	if err := artifact.RepairTornTail(path); err == nil {
		if f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644); err == nil {
			sp.f = f
		}
	}
	if sp.f == nil {
		sp.dead = true
	}
	return sp
}

// load reads the journal's valid lines, keeping those that match this
// sweep's fingerprint. Injection site "core.progress.load" can fail the
// read (no recovery, simulate everything) or corrupt the bytes after
// they leave disk (corrupted lines fail their checksums and drop).
func (sp *simProgress) load(path string, sel *Selection) {
	if err := faults.Check("core.progress.load"); err != nil {
		return
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return
	}
	faults.CorruptBytes("core.progress.load", data)
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(nil, 16<<20)
	var stepsSaved uint64
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		recBytes, ok := artifact.VerifyLine(line)
		if !ok {
			continue
		}
		var rec simRecord
		if json.Unmarshal(recBytes, &rec) != nil || rec.Fp != sp.fp || rec.Stats == nil {
			continue
		}
		if rec.Region < 0 || rec.Region >= len(sel.Points) {
			continue
		}
		if _, dup := sp.recovered[rec.Region]; dup {
			continue
		}
		lp := sel.Points[rec.Region]
		sp.recovered[rec.Region] = RegionResult{
			Point:    lp,
			Stats:    rec.Stats,
			HostTime: time.Duration(rec.HostTimeNS),
		}
		stepsSaved += lp.Region.UnfilteredLen()
	}
	if len(sp.recovered) > 0 {
		sp.ps.countRecovery(stepsSaved)
	}
}

// lookup serves a recovered region, if the journal has it.
func (sp *simProgress) lookup(i int) (RegionResult, bool) {
	if sp == nil {
		return RegionResult{}, false
	}
	r, ok := sp.recovered[i]
	return r, ok
}

// record journals one completed region durably (checksummed line +
// fsync). Best-effort: failures — including an injected Transient at
// "core.progress.save" — are counted and swallowed; an injected Corrupt
// flips bytes in the line, which the load-side checksum catches.
func (sp *simProgress) record(i int, res RegionResult) {
	if sp == nil {
		return
	}
	rec, err := json.Marshal(simRecord{
		Fp: sp.fp, Region: i, Stats: res.Stats, HostTimeNS: int64(res.HostTime),
	})
	if err != nil {
		sp.ps.countSaveFailure()
		return
	}
	line, err := artifact.ChecksumLine(rec)
	if err != nil {
		sp.ps.countSaveFailure()
		return
	}
	if err := faults.Check("core.progress.save"); err != nil {
		sp.ps.countSaveFailure()
		return
	}
	faults.CorruptBytes("core.progress.save", line)
	sp.mu.Lock()
	defer sp.mu.Unlock()
	if sp.dead {
		sp.ps.countSaveFailure()
		return
	}
	if _, err := sp.f.Write(append(line, '\n')); err != nil {
		sp.dead = true
		sp.ps.countSaveFailure()
		return
	}
	if err := sp.f.Sync(); err != nil {
		sp.dead = true
		sp.ps.countSaveFailure()
		return
	}
	sp.ps.countSave()
}

// close releases the journal's file handle.
func (sp *simProgress) close() {
	if sp == nil || sp.f == nil {
		return
	}
	sp.f.Close()
}
