package core

import (
	"math"
	"testing"

	"looppoint/internal/omp"
	"looppoint/internal/testprog"
	"looppoint/internal/timing"
)

func testConfig() Config {
	cfg := DefaultConfig()
	cfg.SliceUnit = 1500 // small program, small slices
	cfg.FlowWindow = 512
	return cfg
}

func TestAnalyzeProducesRegionsAndMarkers(t *testing.T) {
	p := testprog.Phased(4, 10, 150, omp.Passive)
	a, err := Analyze(p, testConfig())
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	if len(a.Profile.Regions) < 3 {
		t.Fatalf("only %d regions", len(a.Profile.Regions))
	}
	if len(a.Markers) == 0 || len(a.Loops.Loops) == 0 {
		t.Fatal("no markers or loops identified")
	}
	for _, m := range a.Markers {
		blk, ok := p.BlockByAddr(m)
		if !ok {
			t.Fatalf("marker %#x is not a block address", m)
		}
		if blk.Routine.Image.Sync {
			t.Errorf("marker %#x lives in sync image", m)
		}
	}
}

func TestMultipliersConserveWork(t *testing.T) {
	// Invariant (Eq. 2): Σ_j multiplier_j × filtered_j over looppoints
	// equals the total filtered instruction count.
	p := testprog.Phased(4, 12, 150, omp.Active)
	a, err := Analyze(p, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	sel, err := Select(a)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, lp := range sel.Points {
		sum += lp.Multiplier * float64(lp.Region.Filtered)
	}
	total := float64(a.Profile.TotalFiltered)
	if math.Abs(sum-total)/total > 1e-9 {
		t.Errorf("multiplier mass %.1f != total filtered %.1f", sum, total)
	}
	sizes := 0
	for _, lp := range sel.Points {
		sizes += lp.ClusterSize
	}
	if sizes != len(a.Profile.Regions) {
		t.Errorf("cluster sizes sum to %d, want %d regions", sizes, len(a.Profile.Regions))
	}
}

func TestEndToEndPredictionError(t *testing.T) {
	// The headline result at miniature scale: sampled simulation must
	// predict the full-run runtime within a few percent for a regular,
	// phased workload, for both wait policies (Figure 5a's shape).
	for _, policy := range []omp.WaitPolicy{omp.Passive, omp.Active} {
		p := testprog.Phased(4, 12, 200, policy)
		rep, err := Run(p, testConfig(), timing.Gainestown(4), RunOpts{SimulateFull: true, Parallel: true})
		if err != nil {
			t.Fatalf("policy %v: Run: %v", policy, err)
		}
		if rep.RuntimeErrPct > 12 {
			t.Errorf("policy %v: runtime error %.2f%% too high (%s)", policy, rep.RuntimeErrPct, rep.Summary())
		}
		if len(rep.Selection.Points) >= len(rep.Selection.Analysis.Profile.Regions) {
			t.Errorf("policy %v: no reduction: %d looppoints for %d regions",
				policy, len(rep.Selection.Points), len(rep.Selection.Analysis.Profile.Regions))
		}
		if rep.Speedups.TheoreticalSerial <= 1 {
			t.Errorf("policy %v: theoretical serial speedup %.2f <= 1", policy, rep.Speedups.TheoreticalSerial)
		}
		if rep.Speedups.TheoreticalParallel < rep.Speedups.TheoreticalSerial {
			t.Errorf("policy %v: parallel speedup below serial", policy)
		}
	}
}

func TestSelfSamplingIdentity(t *testing.T) {
	// Property: when every region is its own cluster (maxK large, BIC
	// threshold forcing max clusters), extrapolation over ALL regions
	// simulated in their positions reproduces the full run's instruction
	// count almost exactly (cycles differ only through warmup effects).
	p := testprog.Phased(2, 6, 150, omp.Passive)
	cfg := testConfig()
	a, err := Analyze(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sel, err := Select(a)
	if err != nil {
		t.Fatal(err)
	}
	regions, err := SimulateRegions(sel, timing.Gainestown(2), false)
	if err != nil {
		t.Fatal(err)
	}
	pred := Extrapolate(regions, 2.66)

	sim, err := timing.New(timing.Gainestown(2), p)
	if err != nil {
		t.Fatal(err)
	}
	full, err := sim.SimulateFull()
	if err != nil {
		t.Fatal(err)
	}
	if e := PercentError(pred.Instructions, float64(full.Instructions)); e > 10 {
		t.Errorf("instruction extrapolation off by %.2f%%", e)
	}
}

func TestPercentError(t *testing.T) {
	cases := []struct{ p, a, want float64 }{
		{110, 100, 10},
		{90, 100, 10},
		{0, 0, 0},
		{5, 0, 100},
		{100, 100, 0},
	}
	for _, c := range cases {
		if got := PercentError(c.p, c.a); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("PercentError(%v,%v) = %v, want %v", c.p, c.a, got, c.want)
		}
	}
}

func TestHeterogeneousThreadsKeepClusters(t *testing.T) {
	// A heterogeneous workload (Figure 3's 657.xz_s.2 pattern) must
	// still produce a valid selection; per-thread concatenated vectors
	// keep imbalance visible.
	p := testprog.Heterogeneous(4, 10, 120, omp.Passive)
	a, err := Analyze(p, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	shares := a.Profile.ThreadShare()
	// Later threads do more work: verify imbalance shows in the profile.
	imbalanced := false
	for _, s := range shares {
		if len(s) == 4 && s[3] > s[0]*1.5 {
			imbalanced = true
			break
		}
	}
	if !imbalanced {
		t.Error("heterogeneous workload shows no per-thread imbalance in profile")
	}
	if _, err := Select(a); err != nil {
		t.Fatal(err)
	}
}

func TestRunWithoutFullSim(t *testing.T) {
	p := testprog.Phased(2, 6, 100, omp.Passive)
	rep, err := Run(p, testConfig(), timing.Gainestown(2), RunOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Full != nil {
		t.Error("full simulation ran despite being disabled")
	}
	if rep.Predicted.Cycles <= 0 {
		t.Error("no predicted cycles")
	}
	if rep.Summary() == "" {
		t.Error("empty summary")
	}
}

func TestParallelAndSerialRegionSimsAgree(t *testing.T) {
	p := testprog.Phased(2, 8, 120, omp.Passive)
	a, err := Analyze(p, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	sel, err := Select(a)
	if err != nil {
		t.Fatal(err)
	}
	serial, err := SimulateRegions(sel, timing.Gainestown(2), false)
	if err != nil {
		t.Fatal(err)
	}
	par, err := SimulateRegions(sel, timing.Gainestown(2), true)
	if err != nil {
		t.Fatal(err)
	}
	for i := range serial {
		if serial[i].Stats.Cycles != par[i].Stats.Cycles ||
			serial[i].Stats.Instructions != par[i].Stats.Instructions {
			t.Errorf("region %d differs between serial and parallel simulation", i)
		}
	}
}

func TestSymmetricMarkerBoundariesStayOnEpisodeLeaders(t *testing.T) {
	// Regression test for mid-burst boundaries: with a symmetric
	// timestep header (all N threads enter once per step), region
	// boundaries must land on episode-leader counts (count ≡ 1 mod N),
	// so that the work inside each region is interleaving-invariant.
	p := testprog.Phased(4, 12, 150, omp.Passive)
	a, err := Analyze(p, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range a.Profile.Regions {
		if r.End.IsEnd || r.End.PC == 0 {
			continue
		}
		blk, ok := p.BlockByAddr(r.End.PC)
		if !ok {
			t.Fatalf("marker %v not a block", r.End)
		}
		n := a.Graph.Nodes[blk.Global]
		if n == nil || !n.Symmetric(4) {
			continue
		}
		if (r.End.Count-1)%4 != 0 {
			t.Errorf("region %d ends mid-burst at %v (symmetric marker)", r.Index, r.End)
		}
	}
}

func TestRegionSimulationsMatchProfiledWork(t *testing.T) {
	// Regression test for the 603.bwaves_s.2 instability: every
	// looppoint's checkpoint simulation must retire approximately the
	// instructions its profiled region contains — a boundary placed
	// mid-burst collapses or doubles the measured span.
	p := testprog.Phased(8, 10, 120, omp.Passive)
	cfg := testConfig()
	cfg.SliceUnit = 2000
	a, err := Analyze(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sel, err := Select(a)
	if err != nil {
		t.Fatal(err)
	}
	results, err := SimulateRegions(sel, timing.Gainestown(8), false)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		got := float64(r.Stats.Instructions)
		want := float64(r.Point.Region.UnfilteredLen())
		if got < 0.5*want || got > 1.8*want {
			t.Errorf("region %d simulated %0.f instructions, profile has %0.f",
				r.Point.Region.Index, got, want)
		}
	}
}
