package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"looppoint/internal/omp"
	"looppoint/internal/testprog"
	"looppoint/internal/timing"
)

// TestSimulateRegionsCtxCancelledStopsSweep: a cancelled context stops
// the region sweep at the next region boundary instead of draining the
// queue — RunCtx/SimulateRegionsOptCtx surface ctx's error, and the
// per-item contract marks unstarted regions rather than running them.
func TestSimulateRegionsCtxCancelledStopsSweep(t *testing.T) {
	p := testprog.Phased(4, 10, 150, omp.Passive)
	a, err := Analyze(p, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	sel, err := Select(a)
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	if _, _, err := SimulateRegionsOptCtx(ctx, sel, timing.Gainestown(p.NumThreads()), SimOpts{Width: 1}); !errors.Is(err, context.Canceled) {
		t.Fatalf("SimulateRegionsOptCtx err = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("cancelled sweep took %v — queue was drained instead of abandoned", elapsed)
	}
	if _, err := RunCtx(ctx, p, testConfig(), timing.Gainestown(p.NumThreads()), RunOpts{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("RunCtx err = %v, want context.Canceled", err)
	}
	if _, err := SimulateRegionsNCtx(ctx, sel, timing.Gainestown(p.NumThreads()), 2); !errors.Is(err, context.Canceled) {
		t.Fatalf("SimulateRegionsNCtx err = %v, want context.Canceled", err)
	}
}

// TestRunCtxBackgroundMatchesRun: the ctx variants are pure plumbing —
// under a background context they produce byte-identical reports.
func TestRunCtxBackgroundMatchesRun(t *testing.T) {
	p := testprog.Phased(4, 10, 150, omp.Passive)
	cfg := testConfig()
	simCfg := timing.Gainestown(p.NumThreads())
	plain, err := Run(p, cfg, simCfg, RunOpts{Width: 2})
	if err != nil {
		t.Fatal(err)
	}
	viaCtx, err := RunCtx(context.Background(), p, cfg, simCfg, RunOpts{Width: 2})
	if err != nil {
		t.Fatal(err)
	}
	if plain.Summary() != viaCtx.Summary() {
		t.Fatalf("RunCtx diverged:\n%s\n%s", plain.Summary(), viaCtx.Summary())
	}
	if plain.Predicted != viaCtx.Predicted {
		t.Fatalf("predictions diverged: %+v vs %+v", plain.Predicted, viaCtx.Predicted)
	}
}
