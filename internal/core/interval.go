package core

import (
	"looppoint/internal/stats"
	"looppoint/internal/timing"
)

// Intervals carries per-metric confidence intervals around an
// extrapolated Prediction: each metric's stratified ratio estimate with
// its symmetric half-width at Level. Intervals exist only for selection
// engines that draw at least two representatives from some stratum
// (within-stratum variance is otherwise not estimable — the classic
// pick-the-medoid rule always yields a pure point estimate), so
// consumers must treat a nil *Intervals as "point estimate only".
type Intervals struct {
	Level        float64        `json:"level"`
	Cycles       stats.Interval `json:"cycles"`
	Seconds      stats.Interval `json:"seconds"`
	Instructions stats.Interval `json:"instructions"`
	BranchMisses stats.Interval `json:"branch_misses"`
	Branches     stats.Interval `json:"branches"`
	L1DMisses    stats.Interval `json:"l1d_misses"`
	L2Misses     stats.Interval `json:"l2_misses"`
	L3Misses     stats.Interval `json:"l3_misses"`
}

// regionMetrics enumerates the extrapolated metrics in Intervals order.
var regionMetrics = []struct {
	name string
	get  func(*timing.Stats) float64
}{
	{"cycles", func(s *timing.Stats) float64 { return s.Cycles }},
	{"instructions", func(s *timing.Stats) float64 { return float64(s.Instructions) }},
	{"branch_misses", func(s *timing.Stats) float64 { return float64(s.BranchMisses) }},
	{"branches", func(s *timing.Stats) float64 { return float64(s.Branches) }},
	{"l1d_misses", func(s *timing.Stats) float64 { return float64(s.L1DMisses) }},
	{"l2_misses", func(s *timing.Stats) float64 { return float64(s.L2Misses) }},
	{"l3_misses", func(s *timing.Stats) float64 { return float64(s.L3Misses) }},
}

// ComputeIntervals derives per-metric confidence intervals from the
// simulated region results of a multi-draw selection. Each metric is
// treated as a per-work rate (metric / filtered instructions); per
// stratum the rate sample yields W_h·r̄_h with a finite-population-
// corrected variance (stats.StratifiedEstimate). Returns nil when the
// selection carries no strata (journal-restored stubs), when no stratum
// holds two or more simulated draws, or when level is out of (0, 1) —
// the cases where a half-width would be fiction.
//
// In degraded mode the results list only holds surviving regions; the
// per-stratum sample sizes shrink accordingly, so intervals widen rather
// than silently overstate confidence.
func ComputeIntervals(sel *Selection, results []RegionResult, freqGHz, level float64) *Intervals {
	if sel == nil || sel.Sample == nil || !(level > 0 && level < 1) {
		return nil
	}
	strata := sel.Sample.Strata
	// Group surviving results by stratum, keeping per-metric rates.
	rates := make([][][]float64, len(regionMetrics))
	for m := range rates {
		rates[m] = make([][]float64, len(strata))
	}
	multiDraw := false
	for _, r := range results {
		h := r.Point.Cluster
		if h < 0 || h >= len(strata) || r.Point.Region.Filtered == 0 {
			continue
		}
		w := float64(r.Point.Region.Filtered)
		for m, metric := range regionMetrics {
			rates[m][h] = append(rates[m][h], metric.get(r.Stats)/w)
		}
		if len(rates[0][h]) >= 2 {
			multiDraw = true
		}
	}
	if !multiDraw {
		return nil
	}

	estimate := func(m int) stats.Interval {
		samples := make([]stats.StratumSample, 0, len(strata))
		for h, st := range strata {
			var work float64
			for _, member := range st.Members {
				work += float64(sel.Analysis.Profile.Regions[member].Filtered)
			}
			samples = append(samples, stats.StratumSample{
				Work: work, Size: st.Size(), Rates: rates[m][h],
			})
		}
		return stats.StratifiedEstimate(samples, level)
	}

	iv := &Intervals{Level: level}
	iv.Cycles = estimate(0)
	iv.Instructions = estimate(1)
	iv.BranchMisses = estimate(2)
	iv.Branches = estimate(3)
	iv.L1DMisses = estimate(4)
	iv.L2Misses = estimate(5)
	iv.L3Misses = estimate(6)
	// Seconds is cycles rescaled; half-widths scale linearly.
	hz := freqGHz * 1e9
	if hz > 0 {
		iv.Seconds = stats.Interval{
			Mean:      iv.Cycles.Mean / hz,
			HalfWidth: iv.Cycles.HalfWidth / hz,
		}
	}
	return iv
}
