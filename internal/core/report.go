package core

import (
	"context"
	"fmt"
	"time"

	"looppoint/internal/isa"
	"looppoint/internal/pool"
	"looppoint/internal/timing"
)

// Speedups captures the paper's four speedup definitions (Section V-B).
type Speedups struct {
	// Theoretical: reduction in filtered instructions to simulate in
	// detail; serial sums all looppoints, parallel is bounded by the
	// largest one.
	TheoreticalSerial   float64
	TheoreticalParallel float64
	// Actual: reduction in measured simulation (host) time.
	ActualSerial   float64
	ActualParallel float64
}

// ComputeTheoretical derives instruction-count speedups from a selection.
func ComputeTheoretical(sel *Selection) Speedups {
	total := float64(sel.Analysis.Profile.TotalFiltered)
	var sum, max float64
	for _, lp := range sel.Points {
		f := float64(lp.Region.Filtered)
		sum += f
		if f > max {
			max = f
		}
	}
	var s Speedups
	if sum > 0 {
		s.TheoreticalSerial = total / sum
	}
	if max > 0 {
		s.TheoreticalParallel = total / max
	}
	return s
}

// AddActual fills in measured-time speedups given the full-simulation
// host time and the per-region host times.
func (s *Speedups) AddActual(fullTime time.Duration, regions []RegionResult) {
	var sum, max time.Duration
	for _, r := range regions {
		sum += r.HostTime
		if r.HostTime > max {
			max = r.HostTime
		}
	}
	if sum > 0 {
		s.ActualSerial = float64(fullTime) / float64(sum)
	}
	if max > 0 {
		s.ActualParallel = float64(fullTime) / float64(max)
	}
}

// Report is the complete outcome of an end-to-end LoopPoint evaluation of
// one application: selection, region simulations, extrapolation, and —
// when the full run was simulated — prediction errors.
type Report struct {
	Name      string
	Selection *Selection
	Regions   []RegionResult
	Predicted Prediction

	// Degradation is non-nil when the region sweep ran in degraded mode
	// and lost regions; Predicted is then the coverage-reweighted
	// estimate.
	Degradation *Degradation

	// Intervals carries per-metric confidence intervals around Predicted
	// (mean ± half-width at Intervals.Level). Nil for point-estimate
	// selection engines — only engines drawing two or more
	// representatives from some stratum make variance estimable.
	Intervals *Intervals

	Full         *timing.Stats
	FullHostTime time.Duration

	// Errors versus the full simulation (valid when Full != nil).
	RuntimeErrPct  float64
	CyclesErrPct   float64
	BranchMPKIDiff float64
	L1DMPKIDiff    float64
	L2MPKIDiff     float64
	L3MPKIDiff     float64

	Speedups Speedups
}

// RunOpts controls an end-to-end run.
type RunOpts struct {
	// SimulateFull runs the whole-application detailed simulation to
	// compute prediction errors (skipped for ref-scale inputs, where the
	// paper also only reports speedups).
	SimulateFull bool
	// Parallel simulates looppoints concurrently (one pool worker per
	// CPU when Width is zero).
	Parallel bool
	// Width bounds the number of concurrently simulated looppoints.
	// Zero falls back to one worker per CPU when Parallel is set and to
	// serial simulation otherwise. The prediction is identical at every
	// width; only host time changes.
	Width int
	// Degraded tolerates per-region simulation failures: failed regions
	// are dropped, recorded in Report.Degradation, and the prediction is
	// reweighted by the residual coverage.
	Degraded bool
	// Retries is the per-region attempt budget (<= 1: single attempt).
	Retries int
	// RegionTimeout bounds each region-simulation attempt (0: none).
	RegionTimeout time.Duration
	// MinCoverage is the degraded-mode residual-coverage floor
	// (0: DefaultMinCoverage; negative: no floor).
	MinCoverage float64
}

// width resolves the effective pool width.
func (o RunOpts) width() int {
	if o.Width > 0 {
		return o.Width
	}
	if o.Parallel {
		return pool.DefaultWidth()
	}
	return 1
}

// Run performs the complete LoopPoint flow on one program: analyze,
// select, simulate the looppoints, extrapolate, and (optionally) compare
// against the full detailed simulation.
func Run(prog *isa.Program, cfg Config, simCfg timing.Config, opts RunOpts) (*Report, error) {
	return RunCtx(context.Background(), prog, cfg, simCfg, opts)
}

// RunCtx is Run under a caller context. The analysis and full-simulation
// phases are CPU-bound kernels that do not poll ctx, so cancellation is
// honored at phase boundaries and — within the region sweep — at region
// boundaries; a cancelled run returns ctx's error instead of finishing
// the remaining work.
func RunCtx(ctx context.Context, prog *isa.Program, cfg Config, simCfg timing.Config, opts RunOpts) (*Report, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	a, err := Analyze(prog, cfg)
	if err != nil {
		return nil, err
	}
	sel, err := Select(a)
	if err != nil {
		return nil, err
	}
	regions, deg, err := SimulateRegionsOptCtx(ctx, sel, simCfg, SimOpts{
		Width:         opts.width(),
		Degraded:      opts.Degraded,
		Attempts:      opts.Retries,
		RegionTimeout: opts.RegionTimeout,
		MinCoverage:   opts.MinCoverage,
	})
	if err != nil {
		return nil, err
	}
	rep := &Report{
		Name:        prog.Name,
		Selection:   sel,
		Regions:     regions,
		Degradation: deg,
		Predicted:   ExtrapolateDegraded(regions, simCfg.FreqGHz, deg),
		Intervals:   ComputeIntervals(sel, regions, simCfg.FreqGHz, sel.Analysis.Config.Confidence),
		Speedups:    ComputeTheoretical(sel),
	}
	if opts.SimulateFull {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		start := time.Now()
		sim, err := timing.New(simCfg, prog)
		if err != nil {
			return nil, err
		}
		sim.Seed = cfg.Seed
		sim.SlowPath = cfg.SlowPath // no-op today: full runs are entirely detailed
		full, err := sim.SimulateFull()
		if err != nil {
			return nil, fmt.Errorf("core: full simulation of %s: %w", prog.Name, err)
		}
		rep.Full = full
		rep.FullHostTime = time.Since(start)
		rep.computeErrors()
		rep.Speedups.AddActual(rep.FullHostTime, regions)
	}
	return rep, nil
}

func (r *Report) computeErrors() {
	full := r.Full
	r.CyclesErrPct = PercentError(r.Predicted.Cycles, full.Cycles)
	r.RuntimeErrPct = PercentError(r.Predicted.Seconds, full.RuntimeSeconds())
	r.BranchMPKIDiff = absDiff(r.Predicted.BranchMPKI(), full.BranchMPKI())
	r.L1DMPKIDiff = absDiff(r.Predicted.L1DMPKI(), full.L1DMPKI())
	r.L2MPKIDiff = absDiff(r.Predicted.L2MPKI(), full.L2MPKI())
	r.L3MPKIDiff = absDiff(r.Predicted.L3MPKI(), full.L3MPKI())
}

func absDiff(a, b float64) float64 {
	if a > b {
		return a - b
	}
	return b - a
}

// Summary renders a one-line report.
func (r *Report) Summary() string {
	s := fmt.Sprintf("%s: %d regions -> %d looppoints", r.Name,
		len(r.Selection.Analysis.Profile.Regions), len(r.Selection.Points))
	if r.Degradation.Degraded() {
		s += fmt.Sprintf(" [degraded: %s]", r.Degradation.Summary())
	}
	if r.Intervals != nil {
		s += fmt.Sprintf(", runtime %s s (%.0f%% CI)",
			r.Intervals.Seconds, r.Intervals.Level*100)
	}
	if r.Full != nil {
		s += fmt.Sprintf(", runtime err %.2f%%", r.RuntimeErrPct)
	}
	s += fmt.Sprintf(", theoretical speedup %.1fx serial / %.1fx parallel",
		r.Speedups.TheoreticalSerial, r.Speedups.TheoreticalParallel)
	return s
}
