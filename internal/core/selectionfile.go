package core

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"looppoint/internal/bbv"
)

// SelectionFile is the JSON-serializable form of a region selection — the
// analogue of the paper artifact's <basename>.Data directory: everything
// a downstream simulation campaign needs to locate and weight the chosen
// regions, without the profile itself.
type SelectionFile struct {
	// Program identifies the analyzed application.
	Program string `json:"program"`
	Threads int    `json:"threads"`
	// SliceUnit and Seed record the analysis parameters for provenance.
	SliceUnit uint64 `json:"slice_unit"`
	Seed      uint64 `json:"seed"`
	// TotalFiltered is the whole-program unit-of-work count.
	TotalFiltered uint64 `json:"total_filtered_instructions"`
	TotalRegions  int    `json:"total_regions"`
	// Points are the selected looppoints.
	Points []SelectionPoint `json:"looppoints"`
}

// SelectionPoint is one looppoint's portable description.
type SelectionPoint struct {
	Region      int        `json:"region"`
	Start       MarkerJSON `json:"start"`
	End         MarkerJSON `json:"end"`
	Filtered    uint64     `json:"filtered_instructions"`
	Multiplier  float64    `json:"multiplier"`
	ClusterSize int        `json:"cluster_size"`
	// Spread is the cluster's mean member-to-representative distance in
	// the projected BBV space (confidence proxy; 0 = perfectly tight).
	Spread float64 `json:"spread"`
}

// MarkerJSON is the JSON form of a (PC, count) marker.
type MarkerJSON struct {
	PC    uint64 `json:"pc,omitempty"`
	Count uint64 `json:"count,omitempty"`
	Kind  string `json:"kind,omitempty"` // "start", "end", "icount", or "" (pc marker)
}

func toMarkerJSON(m bbv.Marker) MarkerJSON {
	switch {
	case m.IsEnd:
		return MarkerJSON{Kind: "end"}
	case m.IsStart():
		return MarkerJSON{Kind: "start"}
	case m.IsICount():
		return MarkerJSON{Kind: "icount", Count: m.Count}
	default:
		return MarkerJSON{PC: m.PC, Count: m.Count}
	}
}

// Marker converts back to a bbv.Marker.
func (m MarkerJSON) Marker() (bbv.Marker, error) {
	switch m.Kind {
	case "end":
		return bbv.Marker{IsEnd: true}, nil
	case "start":
		return bbv.Marker{}, nil
	case "icount":
		return bbv.Marker{Count: m.Count}, nil
	case "":
		if m.PC == 0 {
			return bbv.Marker{}, fmt.Errorf("core: pc marker without pc")
		}
		return bbv.Marker{PC: m.PC, Count: m.Count}, nil
	}
	return bbv.Marker{}, fmt.Errorf("core: unknown marker kind %q", m.Kind)
}

// File converts a selection to its portable form.
func (s *Selection) File() *SelectionFile {
	a := s.Analysis
	f := &SelectionFile{
		Program:       a.Prog.Name,
		Threads:       a.Prog.NumThreads(),
		SliceUnit:     a.Config.SliceUnit,
		Seed:          a.Config.Seed,
		TotalFiltered: a.Profile.TotalFiltered,
		TotalRegions:  len(a.Profile.Regions),
	}
	for _, lp := range s.Points {
		f.Points = append(f.Points, SelectionPoint{
			Region:      lp.Region.Index,
			Start:       toMarkerJSON(lp.Region.Start),
			End:         toMarkerJSON(lp.Region.End),
			Filtered:    lp.Region.Filtered,
			Multiplier:  lp.Multiplier,
			ClusterSize: lp.ClusterSize,
			Spread:      lp.Spread,
		})
	}
	return f
}

// WriteJSON writes the selection file.
func (f *SelectionFile) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(f)
}

// SaveJSON writes the selection file to path.
func (f *SelectionFile) SaveJSON(path string) error {
	fd, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := f.WriteJSON(fd); err != nil {
		fd.Close()
		return err
	}
	return fd.Close()
}

// LoadSelectionFile reads and validates a selection file.
func LoadSelectionFile(r io.Reader) (*SelectionFile, error) {
	var f SelectionFile
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&f); err != nil {
		return nil, fmt.Errorf("core: selection file: %w", err)
	}
	if f.Program == "" || f.Threads < 1 || len(f.Points) == 0 {
		return nil, fmt.Errorf("core: selection file incomplete (program %q, %d threads, %d points)",
			f.Program, f.Threads, len(f.Points))
	}
	var mass float64
	for i, p := range f.Points {
		if _, err := p.Start.Marker(); err != nil {
			return nil, fmt.Errorf("core: point %d start: %w", i, err)
		}
		if _, err := p.End.Marker(); err != nil {
			return nil, fmt.Errorf("core: point %d end: %w", i, err)
		}
		if p.Multiplier < 1 {
			return nil, fmt.Errorf("core: point %d multiplier %f < 1", i, p.Multiplier)
		}
		mass += p.Multiplier * float64(p.Filtered)
	}
	if f.TotalFiltered > 0 {
		if ratio := mass / float64(f.TotalFiltered); ratio < 0.99 || ratio > 1.01 {
			return nil, fmt.Errorf("core: selection file multiplier mass %.3f of total work (corrupted?)", ratio)
		}
	}
	return &f, nil
}
